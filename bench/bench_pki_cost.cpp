// E5 — §4 claim: PKI operations cost "roughly 600 ms" in software and are
// independent of the DCF size (their count does not depend on content).
//
// Sweeps the DCF size across four orders of magnitude and reports the
// PKI-phase milliseconds (constant) next to the symmetric milliseconds
// (linear in size) for the software profile — the mechanism behind the
// Figure 5 mix shift and the different hardware payoffs in Figures 6/7.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "model/analytic.h"
#include "model/report.h"

namespace {

using namespace omadrm::model;  // NOLINT

void print_reproduction() {
  std::printf(
      "=== §4 — PKI software cost vs DCF size (1 install, 1 playback) ===\n\n");
  std::printf("%12s %14s %18s %14s\n", "DCF size", "PKI [ms]",
              "symmetric [ms]", "total [ms]");
  auto sw = ArchitectureProfile::pure_software();
  for (std::size_t kb : {3u, 30u, 300u, 3584u, 35840u}) {
    UseCaseSpec spec;
    spec.name = "sweep";
    spec.content_bytes = kb * 1024;
    spec.playbacks = 1;
    UseCaseReport r = analytic_use_case(spec, sw);
    double pki_ms = sw.cycles_to_ms(r.ledger.pki_cycles());
    double sym_ms = sw.cycles_to_ms(r.ledger.symmetric_cycles());
    std::printf("%9zu KB %14.1f %18.1f %14.1f\n", kb, pki_ms, sym_ms,
                pki_ms + sym_ms);
  }
  std::printf("%s",
              ("\n" + format_comparison(
                          "PKI total, software (paper §4)", kPaperPkiSoftwareMs,
                          sw.cycles_to_ms(
                              analytic_use_case(UseCaseSpec::ringtone(), sw)
                                  .ledger.pki_cycles()),
                          "ms"))
                  .c_str());
  std::printf(
      "\nThe PKI column is constant: RSA operations happen only in the\n"
      "one-time phases and never touch content bytes. Hardware PKI saves\n"
      "those ~600 ms once per license — the paper questions whether that\n"
      "justifies the gate cost (§4).\n\n");
}

void BM_AnalyticSweepPoint(benchmark::State& state) {
  auto sw = ArchitectureProfile::pure_software();
  UseCaseSpec spec;
  spec.name = "sweep";
  spec.content_bytes = static_cast<std::size_t>(state.range(0));
  spec.playbacks = 1;
  for (auto _ : state) {
    UseCaseReport r = analytic_use_case(spec, sw);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_AnalyticSweepPoint)->Arg(30 << 10)->Arg(3584 << 10);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
