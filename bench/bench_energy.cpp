// E9 — §3/§5 energy estimate.
//
// The paper takes energy as directly proportional to processing cycles
// ("a first very rough estimate") and reports, from ongoing measurements,
// that the hardware/software gap is *wider* for energy than for time. We
// print the proportional estimate for both use cases and a sensitivity
// row showing how the gap widens as dedicated macros are credited with
// lower energy per cycle.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "model/analytic.h"
#include "model/energy.h"
#include "model/report.h"

namespace {

using namespace omadrm::model;  // NOLINT

void print_reproduction() {
  std::printf("=== §3/§5 — first-order energy model (normalized units) ===\n\n");
  std::size_t count = 0;
  const ArchitectureProfile* variants =
      ArchitectureProfile::paper_variants(&count);

  for (const UseCaseSpec& spec :
       {UseCaseSpec::ringtone(), UseCaseSpec::music_player()}) {
    std::printf("--- %s ---\n", spec.name.c_str());
    std::printf("%-8s %16s | %-26s\n", "variant", "E (energy~cycles)",
                "E with HW macro at 25% / 10% energy per cycle");
    double sw_energy = 0;
    for (std::size_t i = 0; i < count; ++i) {
      UseCaseReport r = analytic_use_case(spec, variants[i]);
      EnergyModel proportional;           // paper's assumption
      EnergyModel quarter{1.0, 0.25};     // plausible macro efficiency
      EnergyModel tenth{1.0, 0.10};
      double e = proportional.energy_units(r.ledger);
      if (i == 0) sw_energy = e;
      std::printf("%-8s %16.3e | %12.3e   /  %12.3e   (gap vs SW: %5.1fx / %5.1fx)\n",
                  variants[i].name.c_str(), e, quarter.energy_units(r.ledger),
                  tenth.energy_units(r.ledger),
                  sw_energy / quarter.energy_units(r.ledger),
                  sw_energy / tenth.energy_units(r.ledger));
    }
    std::printf("\n");
  }
  std::printf(
      "With energy == cycles the energy gaps equal the Figure 6/7 time\n"
      "gaps; crediting macros with lower per-cycle energy widens them —\n"
      "the paper's §5 observation.\n\n");
}

void BM_EnergyEvaluation(benchmark::State& state) {
  auto profile = ArchitectureProfile::full_hardware();
  UseCaseSpec spec = UseCaseSpec::music_player();
  EnergyModel m{1.0, 0.25};
  for (auto _ : state) {
    UseCaseReport r = analytic_use_case(spec, profile);
    double e = m.energy_units(r.ledger);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_EnergyEvaluation);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
