// Networked fleet benchmark: a real ri_server process on localhost,
// N threaded device agents driving it through net::SocketTransport.
//
// This is the PR 2 seam cashing out: the agents run the exact
// production stack — AcquisitionSession state machines under the
// retry-policy driver, roap::ReliableTransport, and now a framed-TCP
// transport instead of the in-process one — against a server they only
// share a PKI seed with (net::Realm), not an address space.
//
// Per agent-count scale: every agent owns one persistent connection,
// registers (4-pass), then streams RO acquisitions; the acquisition
// phase starts on a barrier so the throughput window measures N truly
// concurrent clients. Reported per scale: exchanges/s at the server,
// p50/p95 acquisition latency (p99 only when the sample count supports
// a distinct tail — >= kP99MinSamples — so a 16-sample run never
// reports p95 == p99 noise as a tail figure), mean registration time.
// The bench asserts zero transport errors and zero server refusals
// across the whole run — on a quiet loopback the retry stack must be
// pure accounting — then SIGTERMs the server and asserts a clean drain
// (exit status 0).
//
// After the agent-count scales, a worker sweep respawns the server at
// --workers 1/2/4/8 and drives the peak agent count against each,
// emitting exchanges_per_s_vs_workers — the scaling curve of the
// sharded RI core (on a multi-core host it rises with workers; on a
// single hardware thread it measures the overhead of concurrency,
// honestly flat).
//
// Last, an overload sweep: the server is respawned throttled (--workers
// 1 --max-queue-depth 2) and a fleet several times that capacity bursts
// against it, so the bounded job queue MUST shed — every shed comes
// back as a busy frame (kBusyFrameType -> kServerBusy) that the retry
// stack absorbs with backoff. This point measures the loaded-shedding
// path itself: shed rate, end-to-end acquisition p50/p99 through the
// busy-retry storm, and that every session still completes. It reports
// into a separate "overload" JSON section, exempt from the zero-refusal
// assertion the quiet-loopback scales enforce (sheds here are the whole
// point); the binary instead exits nonzero if any session failed
// outright or if the throttled server never shed at all.
//
// Output: human summary on stdout + JSON (default BENCH_net.json) for
// scripts/check_bench_regression.py (bench kind "net_fleet").
//
// Usage: bench_net_fleet [--quick] [--json <path>] [--server <path>]
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "agent/drm_agent.h"
#include "common/random.h"
#include "net/realm.h"
#include "net/socket_transport.h"
#include "roap/retry.h"
#include "roap/transport.h"

namespace {

using namespace omadrm;  // NOLINT

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t idx = std::min(
      sorted.size() - 1, static_cast<std::size_t>(
                             static_cast<double>(sorted.size()) * p));
  return sorted[idx];
}

// ---------------------------------------------------------------------------
// Server process control.
// ---------------------------------------------------------------------------

struct ServerProc {
  pid_t pid = -1;
  int out_fd = -1;  // server stdout (the LISTENING line)
  std::uint16_t port = 0;
};

/// Tail percentiles need enough samples to be distinct from p95; below
/// this, p99 is omitted from the report rather than echoing the max.
constexpr std::size_t kP99MinSamples = 100;

ServerProc spawn_server(const std::string& binary, std::uint64_t seed,
                        std::size_t workers,
                        const std::vector<std::string>& extra_args = {}) {
  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (pid == 0) {
    ::dup2(pipefd[1], STDOUT_FILENO);
    ::close(pipefd[0]);
    ::close(pipefd[1]);
    const std::string seed_str = std::to_string(seed);
    const std::string workers_str = std::to_string(workers);
    std::vector<const char*> argv_vec = {
        binary.c_str(), "--port",    "0",
        "--seed",       seed_str.c_str(), "--workers",
        workers_str.c_str(), "--stats"};
    for (const std::string& a : extra_args) argv_vec.push_back(a.c_str());
    argv_vec.push_back(nullptr);
    ::execv(binary.c_str(), const_cast<char* const*>(argv_vec.data()));
    std::fprintf(stderr, "exec %s: %s\n", binary.c_str(),
                 std::strerror(errno));
    std::_Exit(127);
  }
  ::close(pipefd[1]);

  // Parse "LISTENING <port>\n" from the child's stdout.
  std::string line;
  char c;
  while (::read(pipefd[0], &c, 1) == 1 && c != '\n') line.push_back(c);
  unsigned port = 0;
  if (std::sscanf(line.c_str(), "LISTENING %u", &port) != 1 || port == 0) {
    std::fprintf(stderr, "server did not report a port (got \"%s\")\n",
                 line.c_str());
    ::kill(pid, SIGKILL);
    std::exit(1);
  }
  ServerProc sp;
  sp.pid = pid;
  sp.out_fd = pipefd[0];
  sp.port = static_cast<std::uint16_t>(port);
  return sp;
}

/// SIGTERM + waitpid; returns true when the server drained and exited 0.
bool stop_server(ServerProc& sp) {
  ::kill(sp.pid, SIGTERM);
  int status = 0;
  if (::waitpid(sp.pid, &status, 0) != sp.pid) return false;
  ::close(sp.out_fd);
  sp.pid = -1;
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

// ---------------------------------------------------------------------------
// Fleet run at one agent-count scale.
// ---------------------------------------------------------------------------

struct ScaleResult {
  std::size_t agents = 0;
  std::size_t acqs_per_agent = 0;
  std::size_t samples = 0;  // total acquisition latencies collected
  double registration_ms_avg = 0;
  double exchanges_per_s = 0;
  double p50 = 0, p95 = 0, p99 = 0;
  bool p99_valid = false;  // samples >= kP99MinSamples
  std::uint64_t transport_errors = 0;
  std::uint64_t server_refusals = 0;
  std::uint64_t reconnects = 0;
  bool ok = true;
};

ScaleResult run_scale(net::Realm& realm, std::uint16_t port,
                      std::size_t n_agents, std::size_t acqs,
                      const std::string& tag) {
  ScaleResult out;
  out.agents = n_agents;
  out.acqs_per_agent = acqs;

  // Agents are minted on the main thread (the realm rng is not
  // thread-safe); each worker thread then owns its agent + connection.
  // `tag` keeps device ids unique per measurement point so every point
  // registers a fresh population (no replay-cache crosstalk between
  // sweep points).
  std::vector<std::unique_ptr<agent::DrmAgent>> agents;
  agents.reserve(n_agents);
  for (std::size_t i = 0; i < n_agents; ++i) {
    agents.push_back(realm.make_agent("dev:fleet-" + tag + "-" +
                                      std::to_string(i) + "-" +
                                      std::to_string(n_agents)));
  }

  std::mutex barrier_mu;
  std::condition_variable barrier_cv;
  std::size_t registered = 0;
  bool go = false;

  std::vector<std::vector<double>> latencies(n_agents);
  std::vector<double> reg_ms(n_agents, 0);
  std::atomic<bool> failed{false};
  std::atomic<std::uint64_t> transport_errors{0}, refusals{0}, reconnects{0};

  auto worker = [&](std::size_t idx) {
    net::SocketTransport::Config tc;
    tc.port = port;
    net::SocketTransport sock(tc);
    roap::RetryPolicy policy;
    DeterministicRng rng(0x5EED0 + idx);
    roap::ReliableTransport reliable(sock, policy, rng);
    agent::DrmAgent& dev = *agents[idx];

    const auto reg_start = Clock::now();
    if (!dev.register_with(reliable, net::kRealmNow, policy).ok()) {
      failed.store(true);
    }
    reg_ms[idx] = ms_since(reg_start);

    {
      std::unique_lock<std::mutex> lock(barrier_mu);
      ++registered;
      barrier_cv.notify_all();
      barrier_cv.wait(lock, [&] { return go; });
    }
    if (failed.load()) return;

    latencies[idx].reserve(acqs);
    for (std::size_t a = 0; a < acqs; ++a) {
      const auto t0 = Clock::now();
      if (!dev.acquire_ro(reliable, net::kRealmRiId, net::kRealmRoId,
                          net::kRealmNow, policy)
               .ok()) {
        failed.store(true);
        return;
      }
      latencies[idx].push_back(ms_since(t0));
    }
    transport_errors.fetch_add(sock.stats().transport_errors);
    refusals.fetch_add(sock.stats().server_refusals);
    reconnects.fetch_add(sock.stats().reconnects);
  };

  std::vector<std::thread> threads;
  threads.reserve(n_agents);
  for (std::size_t i = 0; i < n_agents; ++i) threads.emplace_back(worker, i);

  Clock::time_point acq_start;
  {
    std::unique_lock<std::mutex> lock(barrier_mu);
    barrier_cv.wait(lock, [&] { return registered == n_agents; });
    go = true;
    acq_start = Clock::now();
    barrier_cv.notify_all();
  }
  for (std::thread& t : threads) t.join();
  const double acq_total_ms = ms_since(acq_start);

  if (failed.load()) {
    out.ok = false;
    return out;
  }

  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  out.samples = all.size();
  out.p50 = percentile(all, 0.50);
  out.p95 = percentile(all, 0.95);
  out.p99_valid = all.size() >= kP99MinSamples;
  if (out.p99_valid) out.p99 = percentile(all, 0.99);
  out.exchanges_per_s =
      static_cast<double>(all.size()) / (acq_total_ms / 1000.0);
  for (double r : reg_ms) out.registration_ms_avg += r;
  out.registration_ms_avg /= static_cast<double>(n_agents);
  out.transport_errors = transport_errors.load();
  out.server_refusals = refusals.load();
  out.reconnects = reconnects.load();
  return out;
}

// ---------------------------------------------------------------------------
// Overload sweep: a fleet bursting against a deliberately throttled
// server, measuring the busy-shed path instead of asserting it silent.
// ---------------------------------------------------------------------------

struct OverloadResult {
  std::size_t agents = 0;
  std::size_t acqs_per_agent = 0;
  std::size_t workers = 0;
  std::size_t max_queue_depth = 0;
  std::size_t samples = 0;
  std::uint64_t sheds = 0;            // busy frames observed client-side
  std::uint64_t sessions_failed = 0;  // sessions that failed outright
  double shed_rate = 0;  // sheds / (sheds + served acquisitions)
  double exchanges_per_s = 0;
  double p50 = 0, p99 = 0;
};

OverloadResult run_overload(net::Realm& realm, std::uint16_t port,
                            std::size_t n_agents, std::size_t acqs,
                            std::size_t workers, std::size_t queue_depth) {
  OverloadResult out;
  out.agents = n_agents;
  out.acqs_per_agent = acqs;
  out.workers = workers;
  out.max_queue_depth = queue_depth;

  std::vector<std::unique_ptr<agent::DrmAgent>> agents;
  agents.reserve(n_agents);
  for (std::size_t i = 0; i < n_agents; ++i) {
    agents.push_back(
        realm.make_agent("dev:overload-" + std::to_string(i)));
  }

  std::mutex barrier_mu;
  std::condition_variable barrier_cv;
  std::size_t registered = 0;
  bool go = false;

  std::vector<std::vector<double>> latencies(n_agents);
  std::atomic<std::uint64_t> sheds{0}, failed{0};

  auto worker = [&](std::size_t idx) {
    net::SocketTransport::Config tc;
    tc.port = port;
    net::SocketTransport sock(tc);
    // The whole point is riding out sheds, so the policy gets an
    // effectively unbounded attempt budget under a wall-clock deadline:
    // the exponential backoff (2ms -> 200ms) is what decongests the
    // herd, and a session that cannot land within a minute means the
    // server stopped serving, not "try harder".
    roap::RetryPolicy policy;
    policy.max_attempts = 1024;
    policy.deadline_ms = 60000;
    policy.base_backoff_ms = 2;
    policy.max_backoff_ms = 200;
    DeterministicRng rng(0x10AD + idx);
    roap::ReliableTransport reliable(sock, policy, rng);
    agent::DrmAgent& dev = *agents[idx];

    if (!dev.register_with(reliable, net::kRealmNow, policy).ok()) {
      failed.fetch_add(1);
    }
    {
      std::unique_lock<std::mutex> lock(barrier_mu);
      ++registered;
      barrier_cv.notify_all();
      barrier_cv.wait(lock, [&] { return go; });
    }

    latencies[idx].reserve(acqs);
    for (std::size_t a = 0; a < acqs; ++a) {
      const auto t0 = Clock::now();
      if (!dev.acquire_ro(reliable, net::kRealmRiId, net::kRealmRoId,
                          net::kRealmNow, policy)
               .ok()) {
        failed.fetch_add(1);
        break;
      }
      latencies[idx].push_back(ms_since(t0));
    }
    sheds.fetch_add(sock.stats().server_busy);
  };

  std::vector<std::thread> threads;
  threads.reserve(n_agents);
  for (std::size_t i = 0; i < n_agents; ++i) threads.emplace_back(worker, i);

  Clock::time_point acq_start;
  {
    std::unique_lock<std::mutex> lock(barrier_mu);
    barrier_cv.wait(lock, [&] { return registered == n_agents; });
    go = true;
    acq_start = Clock::now();
    barrier_cv.notify_all();
  }
  for (std::thread& t : threads) t.join();
  const double acq_total_ms = ms_since(acq_start);

  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  out.samples = all.size();
  out.p50 = percentile(all, 0.50);
  out.p99 = percentile(all, 0.99);
  out.sheds = sheds.load();
  out.sessions_failed = failed.load();
  if (out.sheds + out.samples > 0) {
    out.shed_rate = static_cast<double>(out.sheds) /
                    static_cast<double>(out.sheds + out.samples);
  }
  if (acq_total_ms > 0) {
    out.exchanges_per_s =
        static_cast<double>(all.size()) / (acq_total_ms / 1000.0);
  }
  return out;
}

std::string default_server_path(const char* argv0) {
  std::string path(argv0);
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return "./ri_server";
  return path.substr(0, slash + 1) + "ri_server";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_net.json";
  std::string server_path = default_server_path(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--server") == 0 && i + 1 < argc) {
      server_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json <path>] [--server <path>]\n",
                   argv[0]);
      return 2;
    }
  }
  ::signal(SIGPIPE, SIG_IGN);

  const std::uint64_t seed = net::kDefaultRealmSeed;
  std::vector<std::size_t> scales =
      quick ? std::vector<std::size_t>{8}
            : std::vector<std::size_t>{1, 8, 32, 64};
  const std::size_t acqs = quick ? 4 : 16;
  // The lone agent gets extra acquisitions: its sample count is
  // agents * acqs, and 16 samples cannot support a tail percentile.
  const std::size_t solo_acqs = quick ? 4 : 128;
  const std::size_t default_workers = 4;  // RiServer::Config default

  std::printf("=== networked fleet benchmark (framed TCP, RSA-%zu) ===\n\n",
              net::kRealmRsaBits);
  std::printf("spawning %s ...\n", server_path.c_str());
  ServerProc server = spawn_server(server_path, seed, default_workers);
  std::printf("server pid %d listening on 127.0.0.1:%u\n\n",
              static_cast<int>(server.pid),
              static_cast<unsigned>(server.port));

  // The client-side realm replays the server's trust prefix from the
  // same seed; this is the cross-process half of the handshake.
  net::Realm realm(seed);

  bool all_ok = true;
  const auto check = [&all_ok](const ScaleResult& r, const char* what) {
    if (!r.ok || r.transport_errors != 0 || r.server_refusals != 0) {
      std::fprintf(stderr,
                   "FAIL: %s %zu agents: ok=%d transport_errors=%llu "
                   "refusals=%llu\n",
                   what, r.agents, r.ok ? 1 : 0,
                   static_cast<unsigned long long>(r.transport_errors),
                   static_cast<unsigned long long>(r.server_refusals));
      all_ok = false;
    }
  };
  const auto print_scale = [](const ScaleResult& r) {
    char p99[32];
    if (r.p99_valid) {
      std::snprintf(p99, sizeof p99, "%7.2f ms", r.p99);
    } else {
      std::snprintf(p99, sizeof p99, "   (n=%zu)", r.samples);
    }
    std::printf("%3zu agents x %3zu acq: %8.1f exch/s   p50 %7.2f ms   "
                "p95 %7.2f ms   p99 %s   reg %7.1f ms/agent\n",
                r.agents, r.acqs_per_agent, r.exchanges_per_s, r.p50, r.p95,
                p99, r.registration_ms_avg);
  };

  std::vector<ScaleResult> results;
  for (std::size_t n : scales) {
    ScaleResult r = run_scale(realm, server.port, n,
                              n == 1 ? solo_acqs : acqs, "s");
    check(r, "scale");
    print_scale(r);
    results.push_back(r);
  }

  bool clean_exit = stop_server(server);
  std::printf("\nserver drain on SIGTERM: %s\n",
              clean_exit ? "clean (exit 0)" : "FAILED");
  if (!clean_exit) all_ok = false;

  // Worker sweep: same agent fleet size, one server per worker count.
  // Each point gets a fresh server process (and a fresh device
  // population via the tag) so the points are independent.
  const std::size_t sweep_agents = quick ? 8 : 64;
  const std::size_t sweep_acqs = quick ? 4 : 8;
  std::vector<std::size_t> worker_counts =
      quick ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4, 8};
  struct SweepPoint {
    std::size_t workers = 0;
    ScaleResult r;
  };
  std::vector<SweepPoint> sweep;
  std::printf("\n--- exchanges/s vs server workers (%zu agents) ---\n",
              sweep_agents);
  for (std::size_t w : worker_counts) {
    ServerProc sp = spawn_server(server_path, seed, w);
    ScaleResult r = run_scale(realm, sp.port, sweep_agents, sweep_acqs,
                              "w" + std::to_string(w));
    check(r, "sweep");
    if (!stop_server(sp)) {
      std::fprintf(stderr, "FAIL: unclean drain at %zu workers\n", w);
      clean_exit = false;
      all_ok = false;
    }
    std::printf("%2zu workers: %8.1f exch/s   p50 %6.2f ms\n", w,
                r.exchanges_per_s, r.p50);
    sweep.push_back(SweepPoint{w, r});
  }

  // Overload sweep: one worker, a 2-deep job queue, and a fleet whose
  // burst is an order of magnitude over that capacity. Sheds are
  // expected and measured here, not forbidden — the failure modes are a
  // session that never completes or a throttled server that never says
  // busy (i.e. the admission control is not actually engaging).
  const std::size_t ov_agents = quick ? 12 : 24;
  const std::size_t ov_acqs = quick ? 4 : 8;
  const std::size_t ov_queue = 2;
  std::printf("\n--- overload: %zu agents vs 1 worker, queue depth %zu ---\n",
              ov_agents, ov_queue);
  ServerProc ov_server =
      spawn_server(server_path, seed, /*workers=*/1,
                   {"--max-queue-depth", std::to_string(ov_queue)});
  OverloadResult ov = run_overload(realm, ov_server.port, ov_agents, ov_acqs,
                                   /*workers=*/1, ov_queue);
  if (!stop_server(ov_server)) {
    std::fprintf(stderr, "FAIL: unclean drain after overload sweep\n");
    clean_exit = false;
    all_ok = false;
  }
  std::printf("%3zu agents x %3zu acq: %8.1f exch/s   shed rate %5.1f%% "
              "(%llu sheds)   p50 %7.2f ms   p99 %7.2f ms\n",
              ov.agents, ov.acqs_per_agent, ov.exchanges_per_s,
              100.0 * ov.shed_rate,
              static_cast<unsigned long long>(ov.sheds), ov.p50, ov.p99);
  if (ov.sessions_failed != 0) {
    std::fprintf(stderr,
                 "FAIL: overload: %llu session(s) failed outright — busy "
                 "sheds must stay retriable\n",
                 static_cast<unsigned long long>(ov.sessions_failed));
    all_ok = false;
  }
  if (ov.sheds == 0) {
    std::fprintf(stderr,
                 "FAIL: overload: throttled server never shed — admission "
                 "control did not engage\n");
    all_ok = false;
  }

  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  json << "{\n"
       << "  \"bench\": \"net_fleet\",\n"
       << "  \"config\": {\"rsa_bits\": " << net::kRealmRsaBits
       << ", \"transport\": \"framed_tcp\", \"crc\": true, \"quick\": "
       << (quick ? "true" : "false") << "},\n"
       << "  \"server_clean_exit\": " << (clean_exit ? "true" : "false")
       << ",\n"
       << "  \"scales\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScaleResult& r = results[i];
    // p99 is emitted only when the sample count supports a tail distinct
    // from p95; consumers treat an absent key as "not measured".
    char p99[64] = "";
    if (r.p99_valid) {
      std::snprintf(p99, sizeof p99, "\"acquisition_ms_p99\": %.3f, ",
                    r.p99);
    }
    char buf[640];
    std::snprintf(buf, sizeof buf,
                  "    {\"agents\": %zu, \"acquisitions_per_agent\": %zu, "
                  "\"samples\": %zu, "
                  "\"exchanges_per_s\": %.1f, \"acquisition_ms_p50\": %.3f, "
                  "\"acquisition_ms_p95\": %.3f, %s"
                  "\"registration_ms_avg\": %.2f, "
                  "\"transport_errors\": %llu, \"server_refusals\": %llu, "
                  "\"reconnects\": %llu}%s\n",
                  r.agents, r.acqs_per_agent, r.samples, r.exchanges_per_s,
                  r.p50, r.p95, p99, r.registration_ms_avg,
                  static_cast<unsigned long long>(r.transport_errors),
                  static_cast<unsigned long long>(r.server_refusals),
                  static_cast<unsigned long long>(r.reconnects),
                  i + 1 < results.size() ? "," : "");
    json << buf;
  }
  json << "  ],\n"
       << "  \"workers_sweep_agents\": " << sweep_agents << ",\n"
       << "  \"exchanges_per_s_vs_workers\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"workers\": %zu, \"exchanges_per_s\": %.1f, "
                  "\"transport_errors\": %llu, \"server_refusals\": %llu}%s\n",
                  p.workers, p.r.exchanges_per_s,
                  static_cast<unsigned long long>(p.r.transport_errors),
                  static_cast<unsigned long long>(p.r.server_refusals),
                  i + 1 < sweep.size() ? "," : "");
    json << buf;
  }
  json << "  ],\n";
  {
    // The overload section is deliberately outside "scales": its sheds
    // are by design, so the zero-refusal gate must not see them.
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "  \"overload\": {\"agents\": %zu, \"acquisitions_per_agent\": %zu, "
        "\"server_workers\": %zu, \"max_queue_depth\": %zu, "
        "\"samples\": %zu, \"sheds\": %llu, \"sessions_failed\": %llu, "
        "\"shed_rate\": %.4f, \"exchanges_per_s\": %.1f, "
        "\"acquisition_ms_p50\": %.3f, \"acquisition_ms_p99\": %.3f}\n",
        ov.agents, ov.acqs_per_agent, ov.workers, ov.max_queue_depth,
        ov.samples, static_cast<unsigned long long>(ov.sheds),
        static_cast<unsigned long long>(ov.sessions_failed), ov.shed_rate,
        ov.exchanges_per_s, ov.p50, ov.p99);
    json << buf;
  }
  json << "}\n";
  std::printf("wrote %s\n", json_path.c_str());

  return all_ok ? 0 : 1;
}
