// E3 — Figure 6: Music Player use case, total execution time under the
// three architecture variants (SW / SW+HW / HW) at 200 MHz.
//
// Reproduction target (paper's log-scale bar labels): 7730 / 800 / 190 ms.
// The table below is generated from the *executed* protocol (real crypto,
// metered terminal); the benchmark section measures one full protocol
// execution per variant, which is the expensive path.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "model/report.h"
#include "model/usecase.h"

namespace {

using namespace omadrm::model;  // NOLINT

void print_reproduction() {
  std::printf(
      "=== Figure 6 — Music Player (3.5 MB DCF, 5 playbacks), 200 MHz ===\n\n");
  VariantMs model = run_variants(UseCaseSpec::music_player());
  std::printf("%s", format_comparison("SW    (all software)",
                                      kPaperFig6MusicPlayer.sw, model.sw,
                                      "ms")
                        .c_str());
  std::printf("%s", format_comparison("SW/HW (AES+SHA-1 macros)",
                                      kPaperFig6MusicPlayer.swhw, model.swhw,
                                      "ms")
                        .c_str());
  std::printf("%s", format_comparison("HW    (all macros)",
                                      kPaperFig6MusicPlayer.hw, model.hw,
                                      "ms")
                        .c_str());
  std::printf(
      "\nShape check: SW -> SW/HW speedup %.1fx (paper: \"cut to almost a\n"
      "tenth\"), SW/HW -> HW speedup %.1fx.\n\n",
      model.sw / model.swhw, model.swhw / model.hw);
}

void run_variant_benchmark(benchmark::State& state,
                           const ArchitectureProfile& profile) {
  UseCaseSpec spec = UseCaseSpec::music_player();
  double modeled_ms = 0;
  for (auto _ : state) {
    UseCaseReport r = run_use_case(spec, profile);
    modeled_ms = r.total_ms();
    benchmark::DoNotOptimize(r);
  }
  state.counters["modeled_ms_at_200MHz"] = modeled_ms;
}

void BM_MusicPlayer_SW(benchmark::State& state) {
  run_variant_benchmark(state, ArchitectureProfile::pure_software());
}
BENCHMARK(BM_MusicPlayer_SW)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_MusicPlayer_SWHW(benchmark::State& state) {
  run_variant_benchmark(state, ArchitectureProfile::symmetric_hardware());
}
BENCHMARK(BM_MusicPlayer_SWHW)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_MusicPlayer_HW(benchmark::State& state) {
  run_variant_benchmark(state, ArchitectureProfile::full_hardware());
}
BENCHMARK(BM_MusicPlayer_HW)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
