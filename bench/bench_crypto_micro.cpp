// E8 — microbenchmarks of the real software substrate on the host:
// the full primitive set OMA DRM 2 mandates (§2.4.5), protocol-level
// composites (KEM wrap/unwrap, full consumption path), and the BigInt
// kernels under RSA.
#include <benchmark/benchmark.h>

#include "bigint/montgomery.h"
#include "common/random.h"
#include "crypto/aes_wrap.h"
#include "crypto/hmac.h"
#include "crypto/kdf2.h"
#include "crypto/modes.h"
#include "crypto/sha1.h"
#include "rsa/kem.h"
#include "rsa/pss.h"

namespace {

using namespace omadrm;  // NOLINT

void BM_AesCbcEncrypt(benchmark::State& state) {
  DeterministicRng rng(1);
  Bytes key = rng.bytes(16), iv = rng.bytes(16);
  Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Bytes ct = crypto::aes_cbc_encrypt(key, iv, data);
    benchmark::DoNotOptimize(ct);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AesCbcEncrypt)->Arg(1 << 10)->Arg(30 << 10)->Arg(1 << 20);

void BM_AesCbcDecrypt(benchmark::State& state) {
  DeterministicRng rng(2);
  Bytes key = rng.bytes(16), iv = rng.bytes(16);
  Bytes ct = crypto::aes_cbc_encrypt(
      key, iv, rng.bytes(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    Bytes pt = crypto::aes_cbc_decrypt(key, iv, ct);
    benchmark::DoNotOptimize(pt);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AesCbcDecrypt)->Arg(1 << 10)->Arg(30 << 10)->Arg(1 << 20);

void BM_AesKeyWrap(benchmark::State& state) {
  DeterministicRng rng(3);
  Bytes kek = rng.bytes(16);
  Bytes data = rng.bytes(32);  // K_MAC || K_REK
  for (auto _ : state) {
    Bytes wrapped = crypto::aes_wrap(kek, data);
    benchmark::DoNotOptimize(wrapped);
  }
}
BENCHMARK(BM_AesKeyWrap);

void BM_AesKeyUnwrap(benchmark::State& state) {
  DeterministicRng rng(4);
  Bytes kek = rng.bytes(16);
  Bytes wrapped = crypto::aes_wrap(kek, rng.bytes(32));
  for (auto _ : state) {
    auto out = crypto::aes_unwrap(kek, wrapped);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_AesKeyUnwrap);

void BM_Sha1Throughput(benchmark::State& state) {
  DeterministicRng rng(5);
  Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Bytes d = crypto::Sha1::hash(data);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1Throughput)->Arg(30 << 10)->Arg(3670016);

void BM_HmacRoPayload(benchmark::State& state) {
  // HMAC over a typical Rights Object MAC payload (~1 KB).
  DeterministicRng rng(6);
  Bytes key = rng.bytes(16);
  Bytes payload = rng.bytes(1100);
  for (auto _ : state) {
    Bytes tag = crypto::HmacSha1::mac(key, payload);
    benchmark::DoNotOptimize(tag);
  }
}
BENCHMARK(BM_HmacRoPayload);

void BM_Kdf2(benchmark::State& state) {
  DeterministicRng rng(7);
  Bytes z = rng.bytes(128);
  for (auto _ : state) {
    Bytes kek = crypto::kdf2_sha1(z, 16);
    benchmark::DoNotOptimize(kek);
  }
}
BENCHMARK(BM_Kdf2);

void BM_PssSign1024(benchmark::State& state) {
  DeterministicRng rng(8);
  rsa::PrivateKey key = rsa::generate_key(1024, rng);
  Bytes msg = rng.bytes(1500);
  for (auto _ : state) {
    Bytes sig = rsa::pss_sign(key, msg, rng);
    benchmark::DoNotOptimize(sig);
  }
}
BENCHMARK(BM_PssSign1024);

void BM_PssVerify1024(benchmark::State& state) {
  DeterministicRng rng(9);
  rsa::PrivateKey key = rsa::generate_key(1024, rng);
  Bytes msg = rng.bytes(1500);
  Bytes sig = rsa::pss_sign(key, msg, rng);
  for (auto _ : state) {
    bool ok = rsa::pss_verify(key.public_key(), msg, sig);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_PssVerify1024);

void BM_KemWrapKeys(benchmark::State& state) {
  DeterministicRng rng(10);
  rsa::PrivateKey key = rsa::generate_key(1024, rng);
  Bytes material = rng.bytes(32);
  for (auto _ : state) {
    Bytes c = rsa::kem_wrap_keys(key.public_key(), material, rng);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_KemWrapKeys);

void BM_KemUnwrapKeys(benchmark::State& state) {
  DeterministicRng rng(11);
  rsa::PrivateKey key = rsa::generate_key(1024, rng);
  Bytes c = rsa::kem_wrap_keys(key.public_key(), rng.bytes(32), rng);
  for (auto _ : state) {
    auto out = rsa::kem_unwrap_keys(key, c);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_KemUnwrapKeys);

void BM_MontgomeryMul1024(benchmark::State& state) {
  DeterministicRng rng(12);
  bigint::BigInt m = bigint::BigInt::random_bits(1024, rng);
  if (m.is_even()) m = m + bigint::BigInt(1);
  bigint::MontgomeryCtx ctx(m);
  bigint::BigInt a = ctx.to_mont(bigint::BigInt::random_below(m, rng));
  bigint::BigInt b = ctx.to_mont(bigint::BigInt::random_below(m, rng));
  for (auto _ : state) {
    bigint::BigInt c = ctx.mont_mul(a, b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_MontgomeryMul1024);

void BM_RsaKeygen1024(benchmark::State& state) {
  std::uint64_t seed = 100;
  for (auto _ : state) {
    DeterministicRng rng(seed++);
    rsa::PrivateKey key = rsa::generate_key(1024, rng);
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_RsaKeygen1024)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
