// E7 — ablation: Domain Rights Objects (paper §2.3 / §2.4.3).
//
// The paper's headline use cases exclude domain functionality "for the
// sake of simplicity". This bench quantifies what it costs: a Domain RO
// replaces the installation RSADP with a symmetric unwrap but adds the
// mandatory RO signature verification, and the one-time JoinDomain pass
// adds one more sign/verify/decapsulate round.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "model/analytic.h"
#include "model/report.h"
#include "model/usecase.h"

namespace {

using namespace omadrm::model;  // NOLINT

void print_reproduction() {
  std::printf("=== Ablation — Device RO vs Domain RO ===\n\n");
  std::printf("%-14s %-10s %12s %12s %12s\n", "use case", "RO type", "SW ms",
              "SW/HW ms", "HW ms");
  for (const UseCaseSpec& base :
       {UseCaseSpec::ringtone(), UseCaseSpec::music_player()}) {
    for (bool domain : {false, true}) {
      UseCaseSpec spec = base;
      spec.domain_ro = domain;
      VariantMs v = run_variants(spec, /*analytic=*/true);
      std::printf("%-14s %-10s %12.1f %12.1f %12.1f\n", base.name.c_str(),
                  domain ? "domain" : "device", v.sw, v.swhw, v.hw);
    }
  }

  auto sw = ArchitectureProfile::pure_software();
  UseCaseSpec dev = UseCaseSpec::ringtone();
  UseCaseSpec dom = dev;
  dom.domain_ro = true;
  UseCaseReport rd = analytic_use_case(dev, sw);
  UseCaseReport rm = analytic_use_case(dom, sw);
  std::printf(
      "\nDelta (Ringtone, software): %+.1f ms — the JoinDomain round adds\n"
      "1 RSA private (sign) + 1 private (decapsulate K_D) + 1 public op;\n"
      "installation swaps RSADP (private) for the mandatory RO signature\n"
      "check (public). Installation itself gets cheaper; joining costs more.\n\n",
      rm.total_ms() - rd.total_ms());
  std::printf("Installation-phase ms (software): device %.1f vs domain %.1f\n\n",
              sw.cycles_to_ms(rd.ledger.cycles_by_phase(Phase::kInstallation)),
              sw.cycles_to_ms(rm.ledger.cycles_by_phase(Phase::kInstallation)));
}

void BM_ExecutedDomainRingtone(benchmark::State& state) {
  UseCaseSpec spec = UseCaseSpec::ringtone();
  spec.domain_ro = true;
  for (auto _ : state) {
    UseCaseReport r = run_use_case(spec, ArchitectureProfile::pure_software());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ExecutedDomainRingtone)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
