// E4 — Figure 7: Ringtone use case, total execution time under the three
// architecture variants (SW / SW+HW / HW) at 200 MHz.
//
// Reproduction target (paper's log-scale bar labels): 900 / 620 / 12 ms.
// The paper's discussion point: "In the Ringtone use case, the significant
// step occurs when providing PKI hardware support", and the SW/HW column
// (~620 ms) is the "roughly 600 ms" of pure-software PKI work.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "model/report.h"
#include "model/usecase.h"

namespace {

using namespace omadrm::model;  // NOLINT

void print_reproduction() {
  std::printf(
      "=== Figure 7 — Ringtone (30 KB DCF, 25 accesses), 200 MHz ===\n\n");
  VariantMs model = run_variants(UseCaseSpec::ringtone());
  std::printf("%s", format_comparison("SW    (all software)",
                                      kPaperFig7Ringtone.sw, model.sw, "ms")
                        .c_str());
  std::printf("%s", format_comparison("SW/HW (AES+SHA-1 macros)",
                                      kPaperFig7Ringtone.swhw, model.swhw,
                                      "ms")
                        .c_str());
  std::printf("%s", format_comparison("HW    (all macros)",
                                      kPaperFig7Ringtone.hw, model.hw, "ms")
                        .c_str());

  // §4's PKI claim, measured from the executed SW run.
  UseCaseReport sw_run =
      run_use_case(UseCaseSpec::ringtone(), ArchitectureProfile::pure_software());
  double pki_ms = sw_run.ledger.profile().cycles_to_ms(
      sw_run.ledger.pki_cycles());
  std::printf("%s", format_comparison("PKI total in software (§4)",
                                      kPaperPkiSoftwareMs, pki_ms, "ms")
                        .c_str());
  std::printf(
      "\nShape check: SW -> SW/HW speedup %.2fx (modest), SW/HW -> HW\n"
      "speedup %.1fx (the PKI step dominates).\n\n",
      model.sw / model.swhw, model.swhw / model.hw);
}

void run_variant_benchmark(benchmark::State& state,
                           const ArchitectureProfile& profile) {
  UseCaseSpec spec = UseCaseSpec::ringtone();
  double modeled_ms = 0;
  for (auto _ : state) {
    UseCaseReport r = run_use_case(spec, profile);
    modeled_ms = r.total_ms();
    benchmark::DoNotOptimize(r);
  }
  state.counters["modeled_ms_at_200MHz"] = modeled_ms;
}

void BM_Ringtone_SW(benchmark::State& state) {
  run_variant_benchmark(state, ArchitectureProfile::pure_software());
}
BENCHMARK(BM_Ringtone_SW)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Ringtone_SWHW(benchmark::State& state) {
  run_variant_benchmark(state, ArchitectureProfile::symmetric_hardware());
}
BENCHMARK(BM_Ringtone_SWHW)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Ringtone_HW(benchmark::State& state) {
  run_variant_benchmark(state, ArchitectureProfile::full_hardware());
}
BENCHMARK(BM_Ringtone_HW)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
