// Secure-storage benchmark: the commit path every stateful constraint
// burn now rides (a grant is only delivered after its burn is durable),
// plus reload costs — the "reboot latency" of a terminal whose state
// actually persists.
//
// Measured:
//
//   memory      MemoryStore commits/s (burn-sized records) — the
//               interface floor with no medium behind it.
//   buffered    FileStore with fsync disabled: sealed journal append +
//               counter bump + in-RAM apply, durable against process
//               death. The CI regression gate rides on this number (the
//               fsync-on figure is disk hardware, not code).
//   durable     FileStore with fsync enabled: the full power-loss-proof
//               commit (journal fsync + counter rename + dir fsync).
//   load        journal replay and post-compaction snapshot load of the
//               accumulated image (fresh FileStore on the same dir).
//   agent       DrmAgent::open_content per-grant latency with and
//               without a bound (buffered) FileStore — the end-to-end
//               price of crash-safe burns on the §2.4.4 hot path.
//
// Output: human-readable summary + JSON (default BENCH_store.json),
// gated in CI by scripts/check_bench_regression.py (kind "state_store").
//
// Usage: bench_state_store [--quick] [--json <path>]
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "agent/drm_agent.h"
#include "ci/content_issuer.h"
#include "common/random.h"
#include "pki/authority.h"
#include "provider/provider.h"
#include "ri/rights_issuer.h"
#include "roap/transport.h"
#include "store/file_store.h"
#include "store/memory_store.h"
#include "store/state_store.h"

namespace {

using namespace omadrm;
using Clock = std::chrono::steady_clock;

double ns_since(Clock::time_point start) {
  return std::chrono::duration<double, std::nano>(Clock::now() - start)
      .count();
}

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1));
  return v[idx];
}

/// Burn-record sized value: the binary "st/<ro-id>" record is 105 bytes.
constexpr std::size_t kValueBytes = 105;
constexpr std::size_t kHotKeys = 32;

store::Transaction burn_tx(std::size_t i, const Bytes& value) {
  store::Transaction tx;
  tx.put("st/ro:bench-" + std::to_string(i % kHotKeys), value);
  return tx;
}

struct CommitStats {
  double commits_per_s = 0;
  double p50_us = 0;
  double p95_us = 0;
};

CommitStats run_commits(store::StateStore& s, std::size_t iters,
                        const Bytes& value) {
  std::vector<double> lat_ns;
  lat_ns.reserve(iters);
  const Clock::time_point t0 = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    const Clock::time_point c0 = Clock::now();
    Result<> r = s.commit(burn_tx(i, value));
    if (!r.ok()) {
      std::fprintf(stderr, "commit failed: %s\n", r.describe().c_str());
      std::exit(1);
    }
    lat_ns.push_back(ns_since(c0));
  }
  const double total_s = ns_since(t0) / 1e9;
  CommitStats out;
  out.commits_per_s = static_cast<double>(iters) / total_s;
  out.p50_us = percentile(lat_ns, 0.50) / 1e3;
  out.p95_us = percentile(lat_ns, 0.95) / 1e3;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_store.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json <path>]\n", argv[0]);
      return 2;
    }
  }

  const std::size_t mem_iters = quick ? 50'000 : 200'000;
  const std::size_t buf_iters = quick ? 5'000 : 20'000;
  const std::size_t dur_iters = quick ? 50 : 200;
  const std::size_t agent_iters = quick ? 300 : 2'000;

  DeterministicRng rng(0x5709E);
  const Bytes value = rng.bytes(kValueBytes);
  const Bytes seal = store::derive_storage_key(to_bytes("bench-kdev"));

  const std::filesystem::path base =
      std::filesystem::temp_directory_path() /
      ("omadrm_bench_store_" + std::to_string(::getpid()));
  std::filesystem::remove_all(base);
  struct Cleanup {
    const std::filesystem::path& p;
    ~Cleanup() {
      std::error_code ec;
      std::filesystem::remove_all(p, ec);
    }
  } cleanup{base};

  // -- memory ---------------------------------------------------------------
  store::MemoryStore mem;
  const CommitStats mem_stats = run_commits(mem, mem_iters, value);

  // -- file, buffered (the gated number) ------------------------------------
  store::FileStore::Options buffered;
  buffered.durable_fsync = false;
  store::FileStore fs_buf((base / "buffered").string(), seal, buffered);
  if (!fs_buf.load().ok()) return 1;
  const CommitStats buf_stats = run_commits(fs_buf, buf_iters, value);

  // -- file, durable fsync --------------------------------------------------
  store::FileStore fs_dur((base / "durable").string(), seal,
                          store::FileStore::Options());
  if (!fs_dur.load().ok()) return 1;
  const CommitStats dur_stats = run_commits(fs_dur, dur_iters, value);

  // -- load: journal replay vs snapshot -------------------------------------
  const std::size_t replay_commits = quick ? 2'000 : 10'000;
  store::FileStore::Options no_compact = buffered;
  no_compact.compact_after_bytes = ~std::size_t{0};
  double replay_ms = 0, snapshot_ms = 0;
  {
    store::FileStore writer((base / "load").string(), seal, no_compact);
    if (!writer.load().ok()) return 1;
    for (std::size_t i = 0; i < replay_commits; ++i) {
      if (!writer.commit(burn_tx(i, value)).ok()) return 1;
    }
    {
      store::FileStore reader((base / "load").string(), seal, no_compact);
      const Clock::time_point t0 = Clock::now();
      if (!reader.load().ok()) return 1;
      replay_ms = ns_since(t0) / 1e6;
    }
    if (!writer.compact().ok()) return 1;
    {
      store::FileStore reader((base / "load").string(), seal, no_compact);
      const Clock::time_point t0 = Clock::now();
      if (!reader.load().ok()) return 1;
      snapshot_ms = ns_since(t0) / 1e6;
    }
  }

  // -- agent: per-grant cost with and without the durable-burn barrier ------
  const std::uint64_t now = 1100000000;
  const pki::Validity validity{now - 86400, now + 365 * 86400};
  pki::CertificationAuthority ca("CMLA Root", 1024, validity, rng);
  ci::ContentIssuer ci("content.example", provider::plain_provider(), rng);
  ri::RightsIssuer ri("ri.example", "http://ri.example/roap", ca, validity,
                      provider::plain_provider(), rng);
  agent::DrmAgent device("device-01", ca.root_certificate(),
                         provider::plain_provider(), rng);
  device.provision(
      ca.issue("device-01", device.public_key(), validity, rng));
  roap::InProcessTransport transport(ri, now);

  Bytes content = rng.bytes(4096);
  dcf::Headers h;
  h.content_type = "audio/mpeg";
  h.content_id = "cid:bench@content.example";
  h.rights_issuer_url = ri.url();
  dcf::Dcf dcf = ci.package(h, content);
  ri::LicenseOffer offer;
  offer.ro_id = "ro:bench";
  offer.content_id = h.content_id;
  offer.dcf_hash = dcf.hash();
  rel::Permission play;
  play.type = rel::PermissionType::kPlay;  // unconstrained: every grant
                                           // still burns `used`
  offer.permissions = {play};
  offer.kcek = *ci.kcek_for(h.content_id);
  ri.add_offer(offer);

  if (!device.register_with(transport, now).ok()) return 1;
  auto acq = device.acquire_ro(transport, "ri.example", "ro:bench", now);
  if (!acq.ok()) return 1;
  if (device.install_ro(*acq, now) != StatusCode::kOk) return 1;

  auto open_loop = [&](std::size_t iters) {
    const Clock::time_point t0 = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
      agent::ContentSession s =
          device.open_content(dcf, rel::PermissionType::kPlay, now);
      if (!s.ok()) {
        std::fprintf(stderr, "open_content failed: %s\n",
                     to_string(s.status()));
        std::exit(1);
      }
    }
    return ns_since(t0) / 1e3 / static_cast<double>(iters);  // us/open
  };

  const double open_unbound_us = open_loop(agent_iters);
  store::FileStore agent_fs((base / "agent").string(),
                            store::derive_storage_key(device.device_key()),
                            buffered);
  if (!device.bind_store(agent_fs).ok()) return 1;
  const double open_bound_us = open_loop(agent_iters);

  // -- report ---------------------------------------------------------------
  std::printf("state-store commit throughput (burn-sized records, %zu hot "
              "keys)\n", kHotKeys);
  std::printf("  memory          %10.0f commits/s  (p50 %6.2f us)\n",
              mem_stats.commits_per_s, mem_stats.p50_us);
  std::printf("  file buffered   %10.0f commits/s  (p50 %6.2f us, p95 "
              "%6.2f us)\n",
              buf_stats.commits_per_s, buf_stats.p50_us, buf_stats.p95_us);
  std::printf("  file durable    %10.0f commits/s  (p50 %6.2f us, p95 "
              "%6.2f us)\n",
              dur_stats.commits_per_s, dur_stats.p50_us, dur_stats.p95_us);
  std::printf("load after %zu commits: journal replay %.2f ms, snapshot "
              "%.2f ms\n",
              replay_commits, replay_ms, snapshot_ms);
  std::printf("agent open_content: %6.2f us unbound -> %6.2f us store-"
              "backed (+%.2f us/grant for crash-safe burns)\n",
              open_unbound_us, open_bound_us,
              open_bound_us - open_unbound_us);

  std::ofstream js(json_path);
  js << "{\n  \"bench\": \"state_store\",\n";
  js << "  \"config\": {\"quick\": " << (quick ? "true" : "false")
     << ", \"value_bytes\": " << kValueBytes
     << ", \"hot_keys\": " << kHotKeys << "},\n";
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "  \"memory\": {\"commits_per_s\": %.1f, \"commit_us_p50\": "
                "%.3f},\n",
                mem_stats.commits_per_s, mem_stats.p50_us);
  js << buf;
  std::snprintf(buf, sizeof buf,
                "  \"file_buffered\": {\"commits_per_s\": %.1f, "
                "\"commit_us_p50\": %.3f, \"commit_us_p95\": %.3f},\n",
                buf_stats.commits_per_s, buf_stats.p50_us, buf_stats.p95_us);
  js << buf;
  std::snprintf(buf, sizeof buf,
                "  \"file_durable\": {\"commits_per_s\": %.1f, "
                "\"commit_us_p50\": %.3f, \"commit_us_p95\": %.3f},\n",
                dur_stats.commits_per_s, dur_stats.p50_us, dur_stats.p95_us);
  js << buf;
  std::snprintf(buf, sizeof buf,
                "  \"load\": {\"journal_commits\": %zu, \"replay_ms\": %.2f, "
                "\"snapshot_ms\": %.2f},\n",
                replay_commits, replay_ms, snapshot_ms);
  js << buf;
  std::snprintf(buf, sizeof buf,
                "  \"agent\": {\"open_unbound_us\": %.2f, "
                "\"open_bound_us\": %.2f, \"overhead_us\": %.2f}\n",
                open_unbound_us, open_bound_us,
                open_bound_us - open_unbound_us);
  js << buf << "}\n";
  return 0;
}
