// Session-level ROAP benchmark: one 4-pass registration followed by N
// 2-pass RO acquisitions against a 3-certificate chain
// (RI <- intermediate CA <- root), with the crypto caches on vs. off.
// Every exchange crosses the serialized transport boundary
// (roap::Envelope through roap::InProcessTransport), the same path
// production traffic takes.
//
// Reported:
//
//   modes        cached / uncached_crypto / uncached_no_context, the
//                paper's §2.4.1 story: the RI Context and the crypto
//                caches amortize certificate-chain verification.
//   latency      p50/p95 over the per-exchange latencies of the cached
//                mode and of the fleet scenario, alongside the averages.
//   per-stage    microbenchmarks of each wire-path stage on captured
//                traffic — serialize / parse / base64 / sha1 / wrap /
//                from_wire — plus the RSA sign/verify legs, so the
//                cost split between crypto and message handling is
//                explicit instead of inferred.
//   allocations  a global operator-new counter. The wire path
//                (streaming serialize into reused buffers, zero-copy
//                arena parse, pooled envelopes) must perform ZERO heap
//                allocations per operation at steady state — the bench
//                asserts this and exits nonzero on regression. The full
//                exchange count (message structs, RSA, sessions) is
//                reported for tracking.
//   fleet        64 agents x 1 RI through the single envelope dispatch
//                entry point: server-side fan-in throughput.
//
// Output: human-readable summary on stdout + JSON (default
// BENCH_roap.json) so the perf trajectory is tracked across PRs.
//
// Usage: bench_roap_session [--quick] [--json <path>]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "agent/drm_agent.h"
#include "agent/sessions.h"
#include "bigint/mont_cache.h"
#include "common/base64.h"
#include "common/random.h"
#include "crypto/sha1.h"
#include "pki/authority.h"
#include "provider/provider.h"
#include "ri/rights_issuer.h"
#include "roap/envelope.h"
#include "roap/retry.h"
#include "roap/transport.h"
#include "rsa/pss.h"
#include "rsa/rsa.h"
#include "xml/node.h"
#include "xml/writer.h"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator-new in the process bumps it.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace omadrm;  // NOLINT

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::uint64_t allocs_now() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

constexpr std::uint64_t kNow = 1100000000;
constexpr std::size_t kRsaBits = 1024;

struct Percentiles {
  double p50 = 0;
  double p95 = 0;
};

Percentiles percentiles(std::vector<double>& samples) {
  Percentiles out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  out.p50 = samples[samples.size() / 2];
  out.p95 = samples[std::min(samples.size() - 1,
                             samples.size() * 95 / 100)];
  return out;
}

struct ModeResult {
  double full_ms_avg = 0;
  double verify_ms_avg = 0;
  Percentiles full_ms;
  double allocs_per_exchange = 0;
};

struct Session {
  DeterministicRng rng{0xBE7C4};
  pki::Validity validity{kNow - 86400, kNow + 365 * 86400};
  pki::CertificationAuthority ca{"CMLA Root", kRsaBits, validity, rng};
  pki::SubordinateAuthority ica{"CMLA Intermediate", kRsaBits, ca, validity,
                                rng};
  provider::PlainCryptoProvider provider;
  ri::RightsIssuer ri{"ri:bench", "http://ri.bench/roap", ca, validity,
                      provider, rng, &ica, kRsaBits};
  roap::InProcessTransport transport{ri, kNow};
  agent::DrmAgent device{"dev:bench", ca.root_certificate(), provider, rng,
                         kRsaBits};

  Session() {
    device.provision(
        ca.issue("dev:bench", device.public_key(), validity, rng));
    ri::LicenseOffer offer;
    offer.ro_id = "ro:bench";
    offer.content_id = "cid:bench@content";
    offer.dcf_hash = Bytes(20, 0xab);
    rel::Permission play;
    play.type = rel::PermissionType::kPlay;
    offer.permissions = {play};
    offer.kcek = rng.bytes(16);
    ri.add_offer(offer);
  }
};

/// One RO acquisition per iteration over the serialized transport, with
/// the agent-side verification hot path (context revalidation + response
/// verification, i.e. AcquisitionSession::conclude on the already-parsed
/// message) timed separately from the full exchange.
ModeResult run_acquisitions(Session& s, std::size_t iterations) {
  ModeResult out;
  out.full_ms.p50 = 0;
  std::vector<double> latencies;
  latencies.reserve(iterations);
  const std::uint64_t allocs_start = allocs_now();
  for (std::size_t i = 0; i < iterations; ++i) {
    const auto full_start = Clock::now();

    // Request building (context check + device RSASSA-PSS sign), the wire
    // round trip, and the RI's server-side handling are part of the full
    // exchange; the signing legs are identical in both cache modes.
    agent::AcquisitionSession session(s.device, "ri:bench", "ro:bench",
                                      kNow);
    auto request_env = session.request();
    if (!request_env.ok()) {
      std::fprintf(stderr, "request %zu failed: %s\n", i,
                   request_env.describe().c_str());
      std::exit(1);
    }
    roap::Envelope response_env = s.transport.request(*request_env);
    roap::RoResponse response = response_env.open<roap::RoResponse>();

    const auto verify_start = Clock::now();
    auto result = session.conclude(response);
    out.verify_ms_avg += ms_since(verify_start);

    const double full = ms_since(full_start);
    out.full_ms_avg += full;
    latencies.push_back(full);
    if (!result.ok()) {
      std::fprintf(stderr, "acquisition %zu failed: %s\n", i,
                   result.describe().c_str());
      std::exit(1);
    }
  }
  out.allocs_per_exchange =
      static_cast<double>(allocs_now() - allocs_start) /
      static_cast<double>(iterations);
  out.full_ms_avg /= static_cast<double>(iterations);
  out.verify_ms_avg /= static_cast<double>(iterations);
  out.full_ms = percentiles(latencies);
  return out;
}

void set_caches_enabled(Session& s, bool enabled) {
  bigint::set_montgomery_cache_enabled(enabled);
  s.device.chain_verifier().set_enabled(enabled);
  s.ri.device_chain_verifier().set_enabled(enabled);
}

/// The no-persistence baseline: every acquisition pays a full 4-pass
/// registration first, because without a stored (and still-valid) RI
/// Context the device may not start the 2-pass protocol.
double run_acquisitions_no_context(Session& s, std::size_t iterations) {
  double total_ms = 0;
  for (std::size_t i = 0; i < iterations; ++i) {
    const auto start = Clock::now();
    if (!s.device.register_with(s.transport, kNow).ok()) {
      std::fprintf(stderr, "re-registration %zu failed\n", i);
      std::exit(1);
    }
    auto result = s.device.acquire_ro(s.transport, "ri:bench", "ro:bench",
                                      kNow);
    total_ms += ms_since(start);
    if (!result.ok()) {
      std::fprintf(stderr, "no-context acquisition %zu failed: %s\n", i,
                   result.describe().c_str());
      std::exit(1);
    }
  }
  return total_ms / static_cast<double>(iterations);
}

// ---------------------------------------------------------------------------
// Per-stage breakdown on captured traffic.
// ---------------------------------------------------------------------------

struct Stage {
  const char* name;
  double us_per_op = 0;
  double allocs_per_op = 0;
};

template <typename Fn>
Stage run_stage(const char* name, std::size_t iters, Fn&& fn) {
  // Warm-up pass so pools/arenas/buffer capacities settle before both
  // the timer and the allocation counter start.
  fn();
  fn();
  const std::uint64_t a0 = allocs_now();
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) fn();
  Stage s;
  s.name = name;
  s.us_per_op = ms_since(t0) * 1000.0 / static_cast<double>(iters);
  s.allocs_per_op = static_cast<double>(allocs_now() - a0) /
                    static_cast<double>(iters);
  return s;
}

struct StageBreakdown {
  Stage serialize, parse, b64, sha1, wrap, from_wire, open, sign, verify;
  std::size_t request_bytes = 0;
  std::size_t response_bytes = 0;
};

/// Captures one request/response exchange, then times each wire-path
/// stage in isolation on the captured documents. The wire stages
/// (serialize, parse, wrap, from_wire) must be allocation-free at steady
/// state; the caller asserts on the reported counts.
StageBreakdown run_stage_breakdown(Session& s, std::size_t iters) {
  StageBreakdown out;

  // Capture a live exchange.
  agent::AcquisitionSession session(s.device, "ri:bench", "ro:bench", kNow);
  auto request_env = session.request();
  if (!request_env.ok()) {
    std::fprintf(stderr, "stage capture failed\n");
    std::exit(1);
  }
  roap::Envelope response_env = s.transport.request(*request_env);
  const roap::RoRequest request = request_env->open<roap::RoRequest>();
  const roap::RoResponse response = response_env.open<roap::RoResponse>();
  const std::string request_wire = request_env->wire();
  const std::string response_wire = response_env.wire();
  out.request_bytes = request_wire.size();
  out.response_bytes = response_wire.size();

  // Wire stages on reused buffers — the steady state of the transport.
  std::string buf;
  out.serialize = run_stage("serialize", iters, [&] {
    xml::Writer w(buf);
    response.write(w);
  });
  xml::Arena arena;
  out.parse = run_stage("parse", iters, [&] {
    arena.reset();
    (void)xml::parse_in(arena, response_wire);
  });
  const Bytes blob = to_bytes(response_wire);
  std::string b64_buf;
  Bytes decode_buf;
  out.b64 = run_stage("base64", iters, [&] {
    b64_buf.clear();
    base64_encode_into(blob, b64_buf);
    decode_buf.clear();
    base64_decode_into(b64_buf, decode_buf);
  });
  const Bytes payload = response.payload();
  out.sha1 = run_stage("sha1", iters, [&] {
    (void)crypto::Sha1::hash(payload);
  });
  out.wrap = run_stage("wrap", iters, [&] {
    (void)roap::Envelope::wrap(response);
  });
  out.from_wire = run_stage("from_wire", iters, [&] {
    (void)roap::Envelope::from_wire(response_wire);
  });
  out.open = run_stage("open", iters, [&] {
    (void)response_env.open<roap::RoResponse>();
  });

  // The RSA legs, on a key of the deployed size.
  DeterministicRng rng{0x51A9E};
  rsa::PrivateKey key = rsa::generate_key(kRsaBits, rng);
  rsa::PublicKey pub{key.n, key.e};
  const std::size_t rsa_iters = std::max<std::size_t>(iters / 8, 8);
  out.sign = run_stage("pss_sign", rsa_iters, [&] {
    (void)rsa::pss_sign(key, payload, rng);
  });
  const Bytes sig = rsa::pss_sign(key, payload, rng);
  out.verify = run_stage("pss_verify", rsa_iters, [&] {
    (void)rsa::pss_verify(pub, payload, sig);
  });
  return out;
}

// ---------------------------------------------------------------------------
// Fleet scenario.
// ---------------------------------------------------------------------------

struct MultiAgentResult {
  std::size_t agents = 0;
  std::size_t acquisitions_per_agent = 0;
  double registration_ms_avg = 0;   // per agent, cold caches
  double acquisition_ms_avg = 0;    // per exchange, warm contexts
  Percentiles acquisition_ms;
  double exchanges_per_s = 0;       // acquisition throughput at the RI
  double allocs_per_exchange = 0;
};

/// N devices share one Rights Issuer through the single envelope dispatch
/// entry point: the server-side fan-in scenario. Each agent registers
/// once (its own chain walk on both ends), then streams acquisitions
/// whose per-message cost rides the caches and the recycled wire
/// buffers.
MultiAgentResult run_multi_agent(Session& s, std::size_t n_agents,
                                 std::size_t acqs_per_agent) {
  MultiAgentResult out;
  out.agents = n_agents;
  out.acquisitions_per_agent = acqs_per_agent;

  std::vector<std::unique_ptr<agent::DrmAgent>> agents;
  agents.reserve(n_agents);
  for (std::size_t i = 0; i < n_agents; ++i) {
    auto dev = std::make_unique<agent::DrmAgent>(
        "dev:fleet-" + std::to_string(i), s.ca.root_certificate(),
        s.provider, s.rng, kRsaBits);
    dev->provision(
        s.ca.issue(dev->device_id(), dev->public_key(), s.validity, s.rng));
    agents.push_back(std::move(dev));
  }

  // The fleet runs the production stack: every envelope goes through the
  // ReliableTransport decorator and every session through the retry-policy
  // driver. On this fault-free loopback both layers must be pure overhead
  // accounting (no resends) — CI gates the throughput against the
  // pre-retry baseline.
  roap::RetryPolicy policy;
  roap::ReliableTransport reliable(s.transport, policy, s.rng);

  const auto reg_start = Clock::now();
  for (auto& dev : agents) {
    if (!dev->register_with(reliable, kNow, policy).ok()) {
      std::fprintf(stderr, "fleet registration failed\n");
      std::exit(1);
    }
  }
  out.registration_ms_avg =
      ms_since(reg_start) / static_cast<double>(n_agents);

  std::vector<double> latencies;
  latencies.reserve(n_agents * acqs_per_agent);
  const std::uint64_t a0 = allocs_now();
  const auto acq_start = Clock::now();
  for (std::size_t round = 0; round < acqs_per_agent; ++round) {
    for (auto& dev : agents) {
      const auto t0 = Clock::now();
      if (!dev->acquire_ro(reliable, "ri:bench", "ro:bench", kNow, policy)
               .ok()) {
        std::fprintf(stderr, "fleet acquisition failed\n");
        std::exit(1);
      }
      latencies.push_back(ms_since(t0));
    }
  }
  const double acq_ms = ms_since(acq_start);
  const double exchanges =
      static_cast<double>(n_agents * acqs_per_agent);
  out.allocs_per_exchange =
      static_cast<double>(allocs_now() - a0) / exchanges;
  out.acquisition_ms_avg = acq_ms / exchanges;
  out.acquisition_ms = percentiles(latencies);
  out.exchanges_per_s = exchanges / (acq_ms / 1000.0);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_roap.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json <path>]\n", argv[0]);
      return 2;
    }
  }
  const std::size_t iterations = quick ? 10 : 50;
  const std::size_t stage_iters = quick ? 200 : 2000;
  const std::size_t fleet_agents = quick ? 8 : 64;
  const std::size_t fleet_acqs = quick ? 2 : 4;

  std::printf("=== ROAP session benchmark (RSA-%zu, 3-cert chain) ===\n\n",
              kRsaBits);
  Session s;

  // Registration, cold: chain-verdict cache empty, Montgomery contexts
  // for the RI/intermediate moduli not yet seen.
  auto reg_start = Clock::now();
  Result<> reg = s.device.register_with(s.transport, kNow);
  const double registration_first_ms = ms_since(reg_start);
  if (!reg.ok()) {
    std::fprintf(stderr, "registration failed: %s\n",
                 reg.describe().c_str());
    return 1;
  }

  // Registration, warm: the RI chain and the device chain both hit their
  // verdict caches; only the message signatures are recomputed.
  reg_start = Clock::now();
  reg = s.device.register_with(s.transport, kNow);
  const double registration_repeat_ms = ms_since(reg_start);
  if (!reg.ok()) {
    std::fprintf(stderr, "re-registration failed\n");
    return 1;
  }

  bigint::reset_montgomery_cache_stats();
  s.device.chain_verifier().reset_stats();
  ModeResult cached = run_acquisitions(s, iterations);
  const bigint::MontCacheStats mont = bigint::montgomery_cache_stats();
  const pki::ChainCacheStats chain = s.device.chain_verifier().stats();

  set_caches_enabled(s, false);
  ModeResult uncached = run_acquisitions(s, iterations);
  const double no_context_full_ms =
      run_acquisitions_no_context(s, iterations);
  set_caches_enabled(s, true);
  // Leave the session consistent: re-register once with caches back on.
  if (!s.device.register_with(s.transport, kNow).ok()) {
    std::fprintf(stderr, "final re-registration failed\n");
    return 1;
  }

  const StageBreakdown stages = run_stage_breakdown(s, stage_iters);

  // Multi-agent fan-in through the same dispatch path.
  const MultiAgentResult fleet = run_multi_agent(s, fleet_agents, fleet_acqs);

  const double speedup_verify = uncached.verify_ms_avg / cached.verify_ms_avg;
  const double speedup_crypto = uncached.full_ms_avg / cached.full_ms_avg;
  const double speedup_full = no_context_full_ms / cached.full_ms_avg;

  std::printf("registration        cold %8.2f ms   warm %8.2f ms\n",
              registration_first_ms, registration_repeat_ms);
  std::printf("acquisition         cached %6.3f ms   p50 %6.3f   p95 %6.3f\n",
              cached.full_ms_avg, cached.full_ms.p50, cached.full_ms.p95);
  std::printf("  crypto caches off        %6.3f ms   speedup %.2fx\n",
              uncached.full_ms_avg, speedup_crypto);
  std::printf("  no RI context            %6.3f ms   speedup %.2fx\n",
              no_context_full_ms, speedup_full);
  std::printf("agent verify path   cached %6.3f ms   uncached %6.3f ms   "
              "speedup %.2fx\n",
              cached.verify_ms_avg, uncached.verify_ms_avg, speedup_verify);
  std::printf("allocs/exchange     %.0f (full protocol, steady state)\n",
              cached.allocs_per_exchange);
  std::printf("mont cache          %llu hits / %llu misses\n",
              static_cast<unsigned long long>(mont.hits),
              static_cast<unsigned long long>(mont.misses));
  std::printf("chain cache         %llu hits / %llu misses\n",
              static_cast<unsigned long long>(chain.hits),
              static_cast<unsigned long long>(chain.misses));

  std::printf("\nper-stage (request %zu B, response %zu B):\n",
              stages.request_bytes, stages.response_bytes);
  const Stage* all_stages[] = {&stages.serialize, &stages.parse, &stages.b64,
                               &stages.sha1,      &stages.wrap,  &stages.from_wire,
                               &stages.open,      &stages.sign,  &stages.verify};
  for (const Stage* st : all_stages) {
    std::printf("  %-10s %9.2f us/op   %6.2f allocs/op\n", st->name,
                st->us_per_op, st->allocs_per_op);
  }

  std::printf("\nmulti-agent         %zu agents x %zu acq: reg %6.2f "
              "ms/agent,\n                    acq %6.3f ms (p50 %6.3f, p95 "
              "%6.3f), %.0f exch/s, %.0f allocs/exch\n",
              fleet.agents, fleet.acquisitions_per_agent,
              fleet.registration_ms_avg, fleet.acquisition_ms_avg,
              fleet.acquisition_ms.p50, fleet.acquisition_ms.p95,
              fleet.exchanges_per_s, fleet.allocs_per_exchange);
  std::printf(
      "\nThe no-RI-context row is the paper's point: without the cached,\n"
      "verified RI Context every license fetch pays a full 4-pass\n"
      "registration (chain walk + OCSP + message signatures). The caches\n"
      "collapse that to one signed request/response pair; the arena DOM,\n"
      "streaming serializer, and pooled envelope buffers make the wire\n"
      "boundary itself allocation-free.\n");

  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  char buf[4096];
  std::snprintf(
      buf, sizeof buf,
      "{\n"
      "  \"bench\": \"roap_session\",\n"
      "  \"config\": {\"rsa_bits\": %zu, \"chain_len\": 3, "
      "\"iterations\": %zu, \"quick\": %s, \"transport\": "
      "\"envelope_wire\"},\n"
      "  \"registration_first_ms\": %.3f,\n"
      "  \"registration_repeat_ms\": %.3f,\n"
      "  \"ro_acquisition\": {\n"
      "    \"cached\": {\"full_ms_avg\": %.4f, \"full_ms_p50\": %.4f, "
      "\"full_ms_p95\": %.4f, \"verify_path_ms_avg\": %.4f, "
      "\"allocs_per_exchange\": %.1f},\n"
      "    \"uncached_crypto\": {\"full_ms_avg\": %.4f, "
      "\"verify_path_ms_avg\": %.4f},\n"
      "    \"uncached_no_context\": {\"full_ms_avg\": %.4f},\n"
      "    \"speedup_crypto_caches\": %.2f,\n"
      "    \"speedup_verify_path\": %.2f,\n"
      "    \"speedup_vs_no_context\": %.2f\n"
      "  },\n"
      "  \"per_stage_us\": {\"serialize\": %.3f, \"parse\": %.3f, "
      "\"base64\": %.3f, \"sha1\": %.3f, \"wrap\": %.3f, \"from_wire\": "
      "%.3f, \"open\": %.3f, \"pss_sign\": %.3f, \"pss_verify\": %.3f},\n"
      "  \"wire_allocs_per_op\": {\"serialize\": %.2f, \"parse\": %.2f, "
      "\"wrap\": %.2f, \"from_wire\": %.2f},\n"
      "  \"multi_agent\": {\"agents\": %zu, \"acquisitions_per_agent\": "
      "%zu, \"registration_ms_avg\": %.3f, \"acquisition_ms_avg\": %.4f, "
      "\"acquisition_ms_p50\": %.4f, \"acquisition_ms_p95\": %.4f, "
      "\"exchanges_per_s\": %.1f, \"allocs_per_exchange\": %.1f},\n"
      "  \"cache_stats\": {\"mont_hits\": %llu, \"mont_misses\": %llu, "
      "\"chain_hits\": %llu, \"chain_misses\": %llu}\n"
      "}\n",
      kRsaBits, iterations, quick ? "true" : "false", registration_first_ms,
      registration_repeat_ms, cached.full_ms_avg, cached.full_ms.p50,
      cached.full_ms.p95, cached.verify_ms_avg, cached.allocs_per_exchange,
      uncached.full_ms_avg, uncached.verify_ms_avg, no_context_full_ms,
      speedup_crypto, speedup_verify, speedup_full, stages.serialize.us_per_op,
      stages.parse.us_per_op, stages.b64.us_per_op, stages.sha1.us_per_op,
      stages.wrap.us_per_op, stages.from_wire.us_per_op,
      stages.open.us_per_op, stages.sign.us_per_op, stages.verify.us_per_op,
      stages.serialize.allocs_per_op, stages.parse.allocs_per_op,
      stages.wrap.allocs_per_op, stages.from_wire.allocs_per_op,
      fleet.agents, fleet.acquisitions_per_agent, fleet.registration_ms_avg,
      fleet.acquisition_ms_avg, fleet.acquisition_ms.p50,
      fleet.acquisition_ms.p95, fleet.exchanges_per_s,
      fleet.allocs_per_exchange,
      static_cast<unsigned long long>(mont.hits),
      static_cast<unsigned long long>(mont.misses),
      static_cast<unsigned long long>(chain.hits),
      static_cast<unsigned long long>(chain.misses));
  json << buf;
  std::printf("\nwrote %s\n", json_path.c_str());

  // Hard invariant: the wire path — streaming serialize into a reused
  // buffer, zero-copy parse into a warm arena, pooled envelope wrap /
  // from_wire — performs zero steady-state heap allocations.
  bool wire_clean = true;
  for (const Stage* st : {&stages.serialize, &stages.parse, &stages.wrap,
                          &stages.from_wire}) {
    if (st->allocs_per_op != 0) {
      std::fprintf(stderr,
                   "FAIL: wire stage '%s' allocates (%.2f allocs/op); the "
                   "steady state must be allocation-free\n",
                   st->name, st->allocs_per_op);
      wire_clean = false;
    }
  }
  if (!wire_clean) return 1;

  // Acceptance target: the cacheable part of the RO-acquisition path (the
  // signing legs are irreducible device work in both modes, per the
  // paper's own cost model).
  if (speedup_verify < 3.0) {
    std::fprintf(stderr,
                 "WARNING: verify-path speedup %.2fx below the 3x target\n",
                 speedup_verify);
  }
  return 0;
}
