// Session-level ROAP benchmark: one 4-pass registration followed by N
// 2-pass RO acquisitions against a 3-certificate chain
// (RI <- intermediate CA <- root), with the crypto caches on vs. off.
// Every exchange crosses the serialized transport boundary
// (roap::Envelope through roap::InProcessTransport), the same path
// production traffic takes.
//
// This is the software counterpart of the paper's §2.4.1 observation: the
// expensive part of talking to a Rights Issuer is verifying its
// certificate chain, and the RI Context exists precisely so that work is
// done once. "Cached" runs with the Montgomery-context cache and the
// chain-verdict cache enabled (the default); "uncached" disables both,
// which restores the naive per-message behavior.
//
// Three single-agent modes:
//   cached              the default: RI context + both crypto caches warm.
//   uncached_crypto     Montgomery/chain caches disabled but the RI
//                       context kept — every message re-walks the chain.
//   uncached_no_context the paper's true baseline: nothing persists, so
//                       each acquisition must be preceded by a full 4-pass
//                       registration (a device without a valid RI Context
//                       cannot legally send an RoRequest at all).
//
// Reported per mode:
//   full_ms        the complete exchange (device signing, wire
//                  serialize/parse, and RI-side work included — those are
//                  cache-independent)
//   verify_ms      the agent-side hot path the caches target: RI-context
//                  revalidation + ROResponse verification
//                  (AcquisitionSession::conclude on the parsed message;
//                  XML parsing is deliberately outside this window — it
//                  is cache-independent I/O cost)
//
// A multi-agent scenario (N devices × 1 RI, all through the single
// envelope dispatch entry point) measures the server-side fan-in the
// transport redesign enables.
//
// Output: human-readable summary on stdout + JSON (default BENCH_roap.json)
// so the perf trajectory is tracked across PRs.
//
// Usage: bench_roap_session [--quick] [--json <path>]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "agent/drm_agent.h"
#include "agent/sessions.h"
#include "bigint/mont_cache.h"
#include "common/random.h"
#include "pki/authority.h"
#include "provider/provider.h"
#include "ri/rights_issuer.h"
#include "roap/envelope.h"
#include "roap/transport.h"

namespace {

using namespace omadrm;  // NOLINT

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

constexpr std::uint64_t kNow = 1100000000;
constexpr std::size_t kRsaBits = 1024;

struct ModeResult {
  double full_ms_avg = 0;
  double verify_ms_avg = 0;
};

struct Session {
  DeterministicRng rng{0xBE7C4};
  pki::Validity validity{kNow - 86400, kNow + 365 * 86400};
  pki::CertificationAuthority ca{"CMLA Root", kRsaBits, validity, rng};
  pki::SubordinateAuthority ica{"CMLA Intermediate", kRsaBits, ca, validity,
                                rng};
  provider::PlainCryptoProvider provider;
  ri::RightsIssuer ri{"ri:bench", "http://ri.bench/roap", ca, validity,
                      provider, rng, &ica, kRsaBits};
  roap::InProcessTransport transport{ri, kNow};
  agent::DrmAgent device{"dev:bench", ca.root_certificate(), provider, rng,
                         kRsaBits};

  Session() {
    device.provision(
        ca.issue("dev:bench", device.public_key(), validity, rng));
    ri::LicenseOffer offer;
    offer.ro_id = "ro:bench";
    offer.content_id = "cid:bench@content";
    offer.dcf_hash = Bytes(20, 0xab);
    rel::Permission play;
    play.type = rel::PermissionType::kPlay;
    offer.permissions = {play};
    offer.kcek = rng.bytes(16);
    ri.add_offer(offer);
  }
};

/// One RO acquisition per iteration over the serialized transport, with
/// the agent-side verification hot path (context revalidation + response
/// verification, i.e. AcquisitionSession::conclude on the already-parsed
/// message) timed separately from the full exchange.
ModeResult run_acquisitions(Session& s, std::size_t iterations) {
  ModeResult out;
  for (std::size_t i = 0; i < iterations; ++i) {
    const auto full_start = Clock::now();

    // Request building (context check + device RSASSA-PSS sign), the wire
    // round trip, and the RI's server-side handling are part of the full
    // exchange; the signing legs are identical in both cache modes.
    agent::AcquisitionSession session(s.device, "ri:bench", "ro:bench",
                                      kNow);
    auto request_env = session.request();
    if (!request_env.ok()) {
      std::fprintf(stderr, "request %zu failed: %s\n", i,
                   request_env.describe().c_str());
      std::exit(1);
    }
    roap::Envelope response_env = s.transport.request(*request_env);
    roap::RoResponse response = response_env.open<roap::RoResponse>();

    const auto verify_start = Clock::now();
    auto result = session.conclude(response);
    out.verify_ms_avg += ms_since(verify_start);

    out.full_ms_avg += ms_since(full_start);
    if (!result.ok()) {
      std::fprintf(stderr, "acquisition %zu failed: %s\n", i,
                   result.describe().c_str());
      std::exit(1);
    }
  }
  out.full_ms_avg /= static_cast<double>(iterations);
  out.verify_ms_avg /= static_cast<double>(iterations);
  return out;
}

void set_caches_enabled(Session& s, bool enabled) {
  bigint::set_montgomery_cache_enabled(enabled);
  s.device.chain_verifier().set_enabled(enabled);
  s.ri.device_chain_verifier().set_enabled(enabled);
}

/// The no-persistence baseline: every acquisition pays a full 4-pass
/// registration first, because without a stored (and still-valid) RI
/// Context the device may not start the 2-pass protocol.
double run_acquisitions_no_context(Session& s, std::size_t iterations) {
  double total_ms = 0;
  for (std::size_t i = 0; i < iterations; ++i) {
    const auto start = Clock::now();
    if (!s.device.register_with(s.transport, kNow).ok()) {
      std::fprintf(stderr, "re-registration %zu failed\n", i);
      std::exit(1);
    }
    auto result = s.device.acquire_ro(s.transport, "ri:bench", "ro:bench",
                                      kNow);
    total_ms += ms_since(start);
    if (!result.ok()) {
      std::fprintf(stderr, "no-context acquisition %zu failed: %s\n", i,
                   result.describe().c_str());
      std::exit(1);
    }
  }
  return total_ms / static_cast<double>(iterations);
}

struct MultiAgentResult {
  std::size_t agents = 0;
  std::size_t acquisitions_per_agent = 0;
  double registration_ms_avg = 0;   // per agent, cold caches
  double acquisition_ms_avg = 0;    // per exchange, warm contexts
  double exchanges_per_s = 0;       // acquisition throughput at the RI
};

/// N devices share one Rights Issuer through the single envelope dispatch
/// entry point: the server-side fan-in scenario. Each agent registers
/// once (its own chain walk on both ends), then streams acquisitions
/// whose per-message cost rides the caches.
MultiAgentResult run_multi_agent(Session& s, std::size_t n_agents,
                                 std::size_t acqs_per_agent) {
  MultiAgentResult out;
  out.agents = n_agents;
  out.acquisitions_per_agent = acqs_per_agent;

  std::vector<std::unique_ptr<agent::DrmAgent>> agents;
  agents.reserve(n_agents);
  for (std::size_t i = 0; i < n_agents; ++i) {
    auto dev = std::make_unique<agent::DrmAgent>(
        "dev:fleet-" + std::to_string(i), s.ca.root_certificate(),
        s.provider, s.rng, kRsaBits);
    dev->provision(
        s.ca.issue(dev->device_id(), dev->public_key(), s.validity, s.rng));
    agents.push_back(std::move(dev));
  }

  const auto reg_start = Clock::now();
  for (auto& dev : agents) {
    if (!dev->register_with(s.transport, kNow).ok()) {
      std::fprintf(stderr, "fleet registration failed\n");
      std::exit(1);
    }
  }
  out.registration_ms_avg =
      ms_since(reg_start) / static_cast<double>(n_agents);

  const auto acq_start = Clock::now();
  for (std::size_t round = 0; round < acqs_per_agent; ++round) {
    for (auto& dev : agents) {
      if (!dev->acquire_ro(s.transport, "ri:bench", "ro:bench", kNow).ok()) {
        std::fprintf(stderr, "fleet acquisition failed\n");
        std::exit(1);
      }
    }
  }
  const double acq_ms = ms_since(acq_start);
  const double exchanges =
      static_cast<double>(n_agents * acqs_per_agent);
  out.acquisition_ms_avg = acq_ms / exchanges;
  out.exchanges_per_s = exchanges / (acq_ms / 1000.0);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_roap.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json <path>]\n", argv[0]);
      return 2;
    }
  }
  const std::size_t iterations = quick ? 10 : 50;

  std::printf("=== ROAP session benchmark (RSA-%zu, 3-cert chain) ===\n\n",
              kRsaBits);
  Session s;

  // Registration, cold: chain-verdict cache empty, Montgomery contexts
  // for the RI/intermediate moduli not yet seen.
  auto reg_start = Clock::now();
  Result<> reg = s.device.register_with(s.transport, kNow);
  const double registration_first_ms = ms_since(reg_start);
  if (!reg.ok()) {
    std::fprintf(stderr, "registration failed: %s\n",
                 reg.describe().c_str());
    return 1;
  }

  // Registration, warm: the RI chain and the device chain both hit their
  // verdict caches; only the message signatures are recomputed.
  reg_start = Clock::now();
  reg = s.device.register_with(s.transport, kNow);
  const double registration_repeat_ms = ms_since(reg_start);
  if (!reg.ok()) {
    std::fprintf(stderr, "re-registration failed\n");
    return 1;
  }

  bigint::reset_montgomery_cache_stats();
  s.device.chain_verifier().reset_stats();
  ModeResult cached = run_acquisitions(s, iterations);
  const bigint::MontCacheStats mont = bigint::montgomery_cache_stats();
  const pki::ChainCacheStats chain = s.device.chain_verifier().stats();

  set_caches_enabled(s, false);
  ModeResult uncached = run_acquisitions(s, iterations);
  const double no_context_full_ms =
      run_acquisitions_no_context(s, iterations);
  set_caches_enabled(s, true);
  // Leave the session consistent: re-register once with caches back on.
  if (!s.device.register_with(s.transport, kNow).ok()) {
    std::fprintf(stderr, "final re-registration failed\n");
    return 1;
  }

  // Multi-agent fan-in through the same dispatch path.
  const MultiAgentResult fleet =
      run_multi_agent(s, quick ? 4 : 8, quick ? 2 : 5);

  const double speedup_verify = uncached.verify_ms_avg / cached.verify_ms_avg;
  const double speedup_crypto = uncached.full_ms_avg / cached.full_ms_avg;
  const double speedup_full = no_context_full_ms / cached.full_ms_avg;

  std::printf("registration        cold %8.2f ms   warm %8.2f ms\n",
              registration_first_ms, registration_repeat_ms);
  std::printf("acquisition         cached %6.2f ms\n", cached.full_ms_avg);
  std::printf("  crypto caches off        %6.2f ms   speedup %.2fx\n",
              uncached.full_ms_avg, speedup_crypto);
  std::printf("  no RI context            %6.2f ms   speedup %.2fx\n",
              no_context_full_ms, speedup_full);
  std::printf("agent verify path   cached %6.3f ms   uncached %6.3f ms   "
              "speedup %.2fx\n",
              cached.verify_ms_avg, uncached.verify_ms_avg, speedup_verify);
  std::printf("mont cache          %llu hits / %llu misses\n",
              static_cast<unsigned long long>(mont.hits),
              static_cast<unsigned long long>(mont.misses));
  std::printf("chain cache         %llu hits / %llu misses\n",
              static_cast<unsigned long long>(chain.hits),
              static_cast<unsigned long long>(chain.misses));
  std::printf("multi-agent         %zu agents x %zu acq: reg %6.2f ms/agent, "
              "acq %6.2f ms, %.0f exch/s\n",
              fleet.agents, fleet.acquisitions_per_agent,
              fleet.registration_ms_avg, fleet.acquisition_ms_avg,
              fleet.exchanges_per_s);
  std::printf(
      "\nThe no-RI-context row is the paper's point: without the cached,\n"
      "verified RI Context every license fetch pays a full 4-pass\n"
      "registration (chain walk + OCSP + message signatures). The caches\n"
      "collapse that to one signed request/response pair.\n");

  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  char buf[3072];
  std::snprintf(
      buf, sizeof buf,
      "{\n"
      "  \"bench\": \"roap_session\",\n"
      "  \"config\": {\"rsa_bits\": %zu, \"chain_len\": 3, "
      "\"iterations\": %zu, \"quick\": %s, \"transport\": "
      "\"envelope_wire\"},\n"
      "  \"registration_first_ms\": %.3f,\n"
      "  \"registration_repeat_ms\": %.3f,\n"
      "  \"ro_acquisition\": {\n"
      "    \"cached\": {\"full_ms_avg\": %.4f, \"verify_path_ms_avg\": "
      "%.4f},\n"
      "    \"uncached_crypto\": {\"full_ms_avg\": %.4f, "
      "\"verify_path_ms_avg\": %.4f},\n"
      "    \"uncached_no_context\": {\"full_ms_avg\": %.4f},\n"
      "    \"speedup_crypto_caches\": %.2f,\n"
      "    \"speedup_verify_path\": %.2f,\n"
      "    \"speedup_vs_no_context\": %.2f\n"
      "  },\n"
      "  \"multi_agent\": {\"agents\": %zu, \"acquisitions_per_agent\": "
      "%zu, \"registration_ms_avg\": %.3f, \"acquisition_ms_avg\": %.4f, "
      "\"exchanges_per_s\": %.1f},\n"
      "  \"cache_stats\": {\"mont_hits\": %llu, \"mont_misses\": %llu, "
      "\"chain_hits\": %llu, \"chain_misses\": %llu}\n"
      "}\n",
      kRsaBits, iterations, quick ? "true" : "false", registration_first_ms,
      registration_repeat_ms, cached.full_ms_avg, cached.verify_ms_avg,
      uncached.full_ms_avg, uncached.verify_ms_avg, no_context_full_ms,
      speedup_crypto, speedup_verify, speedup_full, fleet.agents,
      fleet.acquisitions_per_agent, fleet.registration_ms_avg,
      fleet.acquisition_ms_avg, fleet.exchanges_per_s,
      static_cast<unsigned long long>(mont.hits),
      static_cast<unsigned long long>(mont.misses),
      static_cast<unsigned long long>(chain.hits),
      static_cast<unsigned long long>(chain.misses));
  json << buf;
  std::printf("\nwrote %s\n", json_path.c_str());

  // Acceptance target: the cacheable part of the RO-acquisition path (the
  // signing legs are irreducible device work in both modes, per the
  // paper's own cost model).
  if (speedup_verify < 3.0) {
    std::fprintf(stderr,
                 "WARNING: verify-path speedup %.2fx below the 3x target\n",
                 speedup_verify);
  }
  return 0;
}
