// Session-level ROAP benchmark: one 4-pass registration followed by N
// 2-pass RO acquisitions against a 3-certificate chain
// (RI <- intermediate CA <- root), with the crypto caches on vs. off.
//
// This is the software counterpart of the paper's §2.4.1 observation: the
// expensive part of talking to a Rights Issuer is verifying its
// certificate chain, and the RI Context exists precisely so that work is
// done once. "Cached" runs with the Montgomery-context cache and the
// chain-verdict cache enabled (the default); "uncached" disables both,
// which restores the naive per-message behavior.
//
// Three modes:
//   cached              the default: RI context + both crypto caches warm.
//   uncached_crypto     Montgomery/chain caches disabled but the RI
//                       context kept — every message re-walks the chain.
//   uncached_no_context the paper's true baseline: nothing persists, so
//                       each acquisition must be preceded by a full 4-pass
//                       registration (a device without a valid RI Context
//                       cannot legally send an RoRequest at all).
//
// Reported per mode:
//   full_ms        the complete exchange (device signing and RI-side work
//                  included — those are cache-independent)
//   verify_ms      the agent-side hot path the caches target: RI-context
//                  chain validation + RoResponse processing
//
// Output: human-readable summary on stdout + JSON (default BENCH_roap.json)
// so the perf trajectory is tracked across PRs.
//
// Usage: bench_roap_session [--quick] [--json <path>]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "agent/drm_agent.h"
#include "bigint/mont_cache.h"
#include "common/random.h"
#include "pki/authority.h"
#include "provider/provider.h"
#include "ri/rights_issuer.h"

namespace {

using namespace omadrm;  // NOLINT

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

constexpr std::uint64_t kNow = 1100000000;
constexpr std::size_t kRsaBits = 1024;

struct ModeResult {
  double full_ms_avg = 0;
  double verify_ms_avg = 0;
};

struct Session {
  DeterministicRng rng{0xBE7C4};
  pki::Validity validity{kNow - 86400, kNow + 365 * 86400};
  pki::CertificationAuthority ca{"CMLA Root", kRsaBits, validity, rng};
  pki::SubordinateAuthority ica{"CMLA Intermediate", kRsaBits, ca, validity,
                                rng};
  provider::PlainCryptoProvider provider;
  ri::RightsIssuer ri{"ri:bench", "http://ri.bench/roap", ca, validity,
                      provider, rng, &ica, kRsaBits};
  agent::DrmAgent device{"dev:bench", ca.root_certificate(), provider, rng,
                         kRsaBits};

  Session() {
    device.provision(
        ca.issue("dev:bench", device.public_key(), validity, rng));
    ri::LicenseOffer offer;
    offer.ro_id = "ro:bench";
    offer.content_id = "cid:bench@content";
    offer.dcf_hash = Bytes(20, 0xab);
    rel::Permission play;
    play.type = rel::PermissionType::kPlay;
    offer.permissions = {play};
    offer.kcek = rng.bytes(16);
    ri.add_offer(offer);
  }
};

/// One RO acquisition per iteration, with the agent-side verification hot
/// path (context chain validation + response processing) timed separately
/// from the full exchange.
ModeResult run_acquisitions(Session& s, std::size_t iterations) {
  ModeResult out;
  for (std::size_t i = 0; i < iterations; ++i) {
    const auto full_start = Clock::now();

    // Request building (device RSASSA-PSS sign) and the RI's server-side
    // handling are part of the full exchange but identical in both modes.
    roap::RoRequest request =
        s.device.build_ro_request("ri:bench", "ro:bench");
    roap::RoResponse response = s.ri.handle_ro_request(request, kNow);

    const auto verify_start = Clock::now();
    const agent::RiContext* ctx = s.device.ri_context("ri:bench");
    auto verdict = s.device.chain_verifier().revalidate(
        ctx->verified_chain, ctx->ri_chain, kNow);
    agent::AcquireResult result = s.device.process_ro_response(response);
    out.verify_ms_avg += ms_since(verify_start);

    out.full_ms_avg += ms_since(full_start);
    if (verdict->status != pki::CertStatus::kValid ||
        result.status != agent::AgentStatus::kOk) {
      std::fprintf(stderr, "acquisition %zu failed: %s\n", i,
                   agent::to_string(result.status));
      std::exit(1);
    }
  }
  out.full_ms_avg /= static_cast<double>(iterations);
  out.verify_ms_avg /= static_cast<double>(iterations);
  return out;
}

void set_caches_enabled(Session& s, bool enabled) {
  bigint::set_montgomery_cache_enabled(enabled);
  s.device.chain_verifier().set_enabled(enabled);
  s.ri.device_chain_verifier().set_enabled(enabled);
}

/// The no-persistence baseline: every acquisition pays a full 4-pass
/// registration first, because without a stored (and still-valid) RI
/// Context the device may not start the 2-pass protocol.
double run_acquisitions_no_context(Session& s, std::size_t iterations) {
  double total_ms = 0;
  for (std::size_t i = 0; i < iterations; ++i) {
    const auto start = Clock::now();
    if (s.device.register_with(s.ri, kNow) != agent::AgentStatus::kOk) {
      std::fprintf(stderr, "re-registration %zu failed\n", i);
      std::exit(1);
    }
    agent::AcquireResult result = s.device.acquire_ro(s.ri, "ro:bench", kNow);
    total_ms += ms_since(start);
    if (result.status != agent::AgentStatus::kOk) {
      std::fprintf(stderr, "no-context acquisition %zu failed: %s\n", i,
                   agent::to_string(result.status));
      std::exit(1);
    }
  }
  return total_ms / static_cast<double>(iterations);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_roap.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json <path>]\n", argv[0]);
      return 2;
    }
  }
  const std::size_t iterations = quick ? 10 : 50;

  std::printf("=== ROAP session benchmark (RSA-%zu, 3-cert chain) ===\n\n",
              kRsaBits);
  Session s;

  // Registration, cold: chain-verdict cache empty, Montgomery contexts
  // for the RI/intermediate moduli not yet seen.
  auto reg_start = Clock::now();
  agent::AgentStatus reg = s.device.register_with(s.ri, kNow);
  const double registration_first_ms = ms_since(reg_start);
  if (reg != agent::AgentStatus::kOk) {
    std::fprintf(stderr, "registration failed: %s\n", agent::to_string(reg));
    return 1;
  }

  // Registration, warm: the RI chain and the device chain both hit their
  // verdict caches; only the message signatures are recomputed.
  reg_start = Clock::now();
  reg = s.device.register_with(s.ri, kNow);
  const double registration_repeat_ms = ms_since(reg_start);
  if (reg != agent::AgentStatus::kOk) {
    std::fprintf(stderr, "re-registration failed\n");
    return 1;
  }

  bigint::reset_montgomery_cache_stats();
  s.device.chain_verifier().reset_stats();
  ModeResult cached = run_acquisitions(s, iterations);
  const bigint::MontCacheStats mont = bigint::montgomery_cache_stats();
  const pki::ChainCacheStats chain = s.device.chain_verifier().stats();

  set_caches_enabled(s, false);
  ModeResult uncached = run_acquisitions(s, iterations);
  const double no_context_full_ms =
      run_acquisitions_no_context(s, iterations);
  set_caches_enabled(s, true);
  // Leave the session consistent: re-register once with caches back on.
  if (s.device.register_with(s.ri, kNow) != agent::AgentStatus::kOk) {
    std::fprintf(stderr, "final re-registration failed\n");
    return 1;
  }

  const double speedup_verify = uncached.verify_ms_avg / cached.verify_ms_avg;
  const double speedup_crypto = uncached.full_ms_avg / cached.full_ms_avg;
  const double speedup_full = no_context_full_ms / cached.full_ms_avg;

  std::printf("registration        cold %8.2f ms   warm %8.2f ms\n",
              registration_first_ms, registration_repeat_ms);
  std::printf("acquisition         cached %6.2f ms\n", cached.full_ms_avg);
  std::printf("  crypto caches off        %6.2f ms   speedup %.2fx\n",
              uncached.full_ms_avg, speedup_crypto);
  std::printf("  no RI context            %6.2f ms   speedup %.2fx\n",
              no_context_full_ms, speedup_full);
  std::printf("agent verify path   cached %6.3f ms   uncached %6.3f ms   "
              "speedup %.2fx\n",
              cached.verify_ms_avg, uncached.verify_ms_avg, speedup_verify);
  std::printf("mont cache          %llu hits / %llu misses\n",
              static_cast<unsigned long long>(mont.hits),
              static_cast<unsigned long long>(mont.misses));
  std::printf("chain cache         %llu hits / %llu misses\n",
              static_cast<unsigned long long>(chain.hits),
              static_cast<unsigned long long>(chain.misses));
  std::printf(
      "\nThe no-RI-context row is the paper's point: without the cached,\n"
      "verified RI Context every license fetch pays a full 4-pass\n"
      "registration (chain walk + OCSP + message signatures). The caches\n"
      "collapse that to one signed request/response pair.\n");

  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  char buf[2048];
  std::snprintf(
      buf, sizeof buf,
      "{\n"
      "  \"bench\": \"roap_session\",\n"
      "  \"config\": {\"rsa_bits\": %zu, \"chain_len\": 3, "
      "\"iterations\": %zu, \"quick\": %s},\n"
      "  \"registration_first_ms\": %.3f,\n"
      "  \"registration_repeat_ms\": %.3f,\n"
      "  \"ro_acquisition\": {\n"
      "    \"cached\": {\"full_ms_avg\": %.4f, \"verify_path_ms_avg\": "
      "%.4f},\n"
      "    \"uncached_crypto\": {\"full_ms_avg\": %.4f, "
      "\"verify_path_ms_avg\": %.4f},\n"
      "    \"uncached_no_context\": {\"full_ms_avg\": %.4f},\n"
      "    \"speedup_crypto_caches\": %.2f,\n"
      "    \"speedup_verify_path\": %.2f,\n"
      "    \"speedup_vs_no_context\": %.2f\n"
      "  },\n"
      "  \"cache_stats\": {\"mont_hits\": %llu, \"mont_misses\": %llu, "
      "\"chain_hits\": %llu, \"chain_misses\": %llu}\n"
      "}\n",
      kRsaBits, iterations, quick ? "true" : "false", registration_first_ms,
      registration_repeat_ms, cached.full_ms_avg, cached.verify_ms_avg,
      uncached.full_ms_avg, uncached.verify_ms_avg, no_context_full_ms,
      speedup_crypto, speedup_verify, speedup_full,
      static_cast<unsigned long long>(mont.hits),
      static_cast<unsigned long long>(mont.misses),
      static_cast<unsigned long long>(chain.hits),
      static_cast<unsigned long long>(chain.misses));
  json << buf;
  std::printf("\nwrote %s\n", json_path.c_str());

  // Acceptance target: the cacheable part of the RO-acquisition path (the
  // signing legs are irreducible device work in both modes, per the
  // paper's own cost model).
  if (speedup_verify < 3.0) {
    std::fprintf(stderr,
                 "WARNING: verify-path speedup %.2fx below the 3x target\n",
                 speedup_verify);
  }
  return 0;
}
