// E6 — ablation: where does each hardware macro pay off?
//
// The paper's two use cases are single points in a (DCF size × playback
// count) space. This bench sweeps that space with the analytic model and
// reports the SW / SW+HW and SW+HW / HW speedups, locating the crossover
// between "symmetric macros dominate" (big files, many plays — Figure 6's
// regime) and "PKI macro dominates" (small files — Figure 7's regime).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "model/analytic.h"
#include "model/report.h"

namespace {

using namespace omadrm::model;  // NOLINT

VariantMs eval(std::size_t bytes, std::size_t plays) {
  UseCaseSpec spec;
  spec.name = "grid";
  spec.content_bytes = bytes;
  spec.playbacks = plays;
  return run_variants(spec, /*analytic=*/true);
}

void print_reproduction() {
  std::printf(
      "=== Ablation — hardware payoff across (DCF size x playbacks) ===\n\n");
  std::printf("%10s %8s | %10s %10s %10s | %12s %12s\n", "size", "plays",
              "SW ms", "SW/HW ms", "HW ms", "sym speedup", "pki speedup");
  const std::size_t sizes[] = {3u << 10, 30u << 10, 300u << 10,
                               3670016u, 35u << 20};
  const std::size_t plays[] = {1, 5, 25, 100};
  for (std::size_t size : sizes) {
    for (std::size_t p : plays) {
      VariantMs v = eval(size, p);
      std::printf("%7zu KB %8zu | %10.1f %10.1f %10.1f | %11.1fx %11.1fx\n",
                  size >> 10, p, v.sw, v.swhw, v.hw, v.sw / v.swhw,
                  v.swhw / v.hw);
    }
  }

  // Locate the size where symmetric work equals PKI work (1 playback):
  // below it the Ringtone regime, above it the Music Player regime.
  auto sw_profile = ArchitectureProfile::pure_software();
  std::size_t lo = 1 << 10, hi = 64 << 20;
  while (lo + 1024 < hi) {
    std::size_t mid = (lo + hi) / 2;
    UseCaseSpec spec;
    spec.name = "xover";
    spec.content_bytes = mid;
    spec.playbacks = 1;
    UseCaseReport r = analytic_use_case(spec, sw_profile);
    if (r.ledger.symmetric_cycles() < r.ledger.pki_cycles()) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  std::printf(
      "\nCrossover (software profile, 1 playback): symmetric work overtakes\n"
      "PKI work at a DCF size of ~%zu KB. The paper's Ringtone (30 KB) sits\n"
      "well below it, the Music Player (3.5 MB) well above — which is why\n"
      "the two figures recommend different macros.\n\n",
      lo >> 10);
}

void BM_GridEvaluation(benchmark::State& state) {
  for (auto _ : state) {
    VariantMs v = eval(300 << 10, 10);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_GridEvaluation);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
