// Content-path benchmark: the steady-state cost of OMA DRM 2 once ROAP
// is amortized — per-access DCF integrity hashing and bulk AES-CBC
// decryption of the media payload (paper §2.4.4, Table 1's symmetric
// rows; the Music Player / Ringtone use cases are exactly this loop).
//
// Measured per payload size (4 KiB .. 16 MiB):
//
//   open        DrmAgent::open_content over a zero-copy DcfReader — the
//               one-time per-access work (C2dev unwrap, RO MAC, DCF-hash
//               binding, REL check, CEK unwrap, AES-schedule cache hit),
//               reported separately from the per-chunk cost.
//   stream      ContentSession::read draining the payload through a
//               reused chunk buffer: the fused CBC core on the cached
//               key schedule. MUST be allocation-free at steady state —
//               the bench asserts this with a global operator-new
//               counter and exits nonzero on regression.
//   one-shot    crypto::aes_cbc_decrypt: fresh key schedule + fresh
//               result buffer per call (the new code's one-shot tier).
//   legacy      a faithful copy of the pre-streaming implementation
//               (per-call key schedule, byte-at-a-time XOR, per-block
//               stack copies, an extra whole-payload unpad copy) — the
//               baseline the ≥3x acceptance target is measured against.
//   sha1        streaming SHA-1 over the serialized container (the
//               integrity-hash half of the content path).
//
// Output: human-readable summary + JSON (default BENCH_dcf.json), gated
// in CI by scripts/check_bench_regression.py.
//
// Usage: bench_dcf_stream [--quick] [--json <path>]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include "agent/drm_agent.h"
#include "ci/content_issuer.h"
#include "common/random.h"
#include "crypto/aes.h"
#include "crypto/modes.h"
#include "crypto/sha1.h"
#include "dcf/dcf.h"
#include "dcf/dcf_reader.h"
#include "pki/authority.h"
#include "provider/provider.h"
#include "ri/rights_issuer.h"
#include "roap/transport.h"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator-new in the process bumps it.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace omadrm;  // NOLINT

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::uint64_t allocs_now() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

constexpr std::uint64_t kNow = 1100000000;
constexpr std::size_t kRsaBits = 1024;
constexpr std::size_t kChunkBytes = 256 * 1024;

double mbps(std::size_t bytes, std::size_t iters, double total_ms) {
  return static_cast<double>(bytes) * static_cast<double>(iters) /
         (total_ms / 1000.0) / (1024.0 * 1024.0);
}

// ---------------------------------------------------------------------------
// The pre-streaming decrypt path, kept verbatim as the measurement
// baseline: per-call key schedule, byte-at-a-time XOR, a 16-byte stack
// copy per block, and pkcs7_unpad's whole-payload copy at the end.
// ---------------------------------------------------------------------------

Bytes legacy_pkcs7_unpad(ByteView data, std::size_t block_size) {
  if (data.empty() || data.size() % block_size != 0) {
    throw Error(ErrorKind::kFormat, "pkcs7: bad padded length");
  }
  std::uint8_t pad = data.back();
  if (pad == 0 || pad > block_size) {
    throw Error(ErrorKind::kFormat, "pkcs7: bad padding byte");
  }
  for (std::size_t i = data.size() - pad; i < data.size(); ++i) {
    if (data[i] != pad) {
      throw Error(ErrorKind::kFormat, "pkcs7: inconsistent padding");
    }
  }
  return Bytes(data.begin(),
               data.begin() + static_cast<std::ptrdiff_t>(data.size() - pad));
}

Bytes legacy_cbc_decrypt(ByteView key, ByteView iv, ByteView ciphertext) {
  crypto::Aes aes(key);
  Bytes padded(ciphertext.size());
  std::uint8_t chain[crypto::Aes::kBlockSize];
  std::memcpy(chain, iv.data(), crypto::Aes::kBlockSize);
  for (std::size_t off = 0; off < ciphertext.size();
       off += crypto::Aes::kBlockSize) {
    std::uint8_t block[crypto::Aes::kBlockSize];
    aes.decrypt_block(ciphertext.data() + off, block);
    for (std::size_t i = 0; i < crypto::Aes::kBlockSize; ++i) {
      padded[off + i] = block[i] ^ chain[i];
    }
    std::memcpy(chain, ciphertext.data() + off, crypto::Aes::kBlockSize);
  }
  return legacy_pkcs7_unpad(padded, crypto::Aes::kBlockSize);
}

// ---------------------------------------------------------------------------
// Fixture: one CA / RI / device, one installed RO per payload size.
// ---------------------------------------------------------------------------

struct Fixture {
  DeterministicRng rng{0xDCF5EED};
  pki::Validity validity{kNow - 86400, kNow + 365 * 86400};
  pki::CertificationAuthority ca{"CMLA Root", kRsaBits, validity, rng};
  provider::PlainCryptoProvider provider;
  ci::ContentIssuer issuer{"content.bench", provider, rng};
  ri::RightsIssuer ri{"ri:bench", "http://ri.bench/roap", ca, validity,
                      provider, rng, nullptr, kRsaBits};
  roap::InProcessTransport transport{ri, kNow};
  agent::DrmAgent device{"dev:bench", ca.root_certificate(), provider, rng,
                         kRsaBits};

  Fixture() {
    device.provision(
        ca.issue("dev:bench", device.public_key(), validity, rng));
    if (!device.register_with(transport, kNow).ok()) {
      std::fprintf(stderr, "registration failed\n");
      std::exit(1);
    }
  }

  struct Installed {
    dcf::Dcf dcf;
    Bytes wire;
    Bytes kcek;
    std::string ro_id;
  };

  Installed install_content(std::size_t payload_bytes) {
    Installed out;
    const std::string tag = std::to_string(payload_bytes);
    dcf::Headers headers;
    headers.content_type = "audio/mpeg";
    headers.content_id = "cid:bench-" + tag + "@content.bench";
    headers.rights_issuer_url = ri.url();
    headers.textual = {{"Title", "Bench " + tag}};
    Bytes content = rng.bytes(payload_bytes);
    out.dcf = issuer.package(headers, content);
    out.wire = out.dcf.serialize();
    out.kcek = *issuer.kcek_for(headers.content_id);
    out.ro_id = "ro:bench-" + tag;

    ri::LicenseOffer offer;
    offer.ro_id = out.ro_id;
    offer.content_id = headers.content_id;
    offer.dcf_hash = out.dcf.hash();
    rel::Permission play;
    play.type = rel::PermissionType::kPlay;  // unconstrained
    offer.permissions = {play};
    offer.kcek = out.kcek;
    ri.add_offer(offer);

    auto acquired = device.acquire_ro(transport, "ri:bench", out.ro_id, kNow);
    if (!acquired.ok() ||
        device.install_ro(*acquired, kNow) != agent::AgentStatus::kOk) {
      std::fprintf(stderr, "acquire/install failed for %s\n", tag.c_str());
      std::exit(1);
    }
    return out;
  }
};

struct SizeResult {
  std::size_t payload_bytes = 0;   // plaintext size
  std::size_t cipher_bytes = 0;    // payload_bytes rounded up one block
  double open_us = 0;
  double open_allocs = 0;
  double stream_mbps = 0;
  double oneshot_mbps = 0;
  double legacy_mbps = 0;
  double sha1_mbps = 0;
  double read_allocs_per_drain = 0;
};

SizeResult run_size(Fixture& fx, std::size_t payload_bytes,
                    std::size_t work_budget_bytes) {
  SizeResult out;
  out.payload_bytes = payload_bytes;
  Fixture::Installed c = fx.install_content(payload_bytes);
  dcf::DcfReader reader = dcf::DcfReader::parse(c.wire);
  out.cipher_bytes = reader.encrypted_payload().size();
  const std::size_t iters = std::clamp<std::size_t>(
      work_budget_bytes / std::max<std::size_t>(payload_bytes, 1), 3, 512);

  // Correctness anchor: the streamed plaintext equals the one-shot path.
  {
    agent::ContentSession s =
        fx.device.open_content(reader, rel::PermissionType::kPlay, kNow);
    if (!s.ok() || s.read_all() != dcf::decrypt_dcf(c.dcf, c.kcek)) {
      std::fprintf(stderr, "stream/one-shot mismatch at %zu bytes\n",
                   payload_bytes);
      std::exit(1);
    }
  }

  // Open latency: the one-time per-access half, on a warm AES cache.
  {
    const std::size_t open_iters = 64;
    (void)fx.device.open_content(reader, rel::PermissionType::kPlay, kNow);
    const std::uint64_t a0 = allocs_now();
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < open_iters; ++i) {
      agent::ContentSession s =
          fx.device.open_content(reader, rel::PermissionType::kPlay, kNow);
      if (!s.ok()) std::exit(1);
    }
    out.open_us = ms_since(t0) * 1000.0 / static_cast<double>(open_iters);
    out.open_allocs = static_cast<double>(allocs_now() - a0) /
                      static_cast<double>(open_iters);
  }

  // Streaming drain through a reused chunk buffer: rewind() restarts the
  // same granted access, so the loop is pure decrypt work.
  {
    agent::ContentSession s =
        fx.device.open_content(reader, rel::PermissionType::kPlay, kNow);
    std::vector<std::uint8_t> chunk(kChunkBytes);
    auto drain = [&] {
      s.rewind();
      while (s.read(std::span<std::uint8_t>(chunk.data(), chunk.size())) >
             0) {
      }
    };
    drain();  // warm-up: buffer capacities and caches settle
    const std::uint64_t a0 = allocs_now();
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) drain();
    out.stream_mbps = mbps(payload_bytes, iters, ms_since(t0));
    out.read_allocs_per_drain = static_cast<double>(allocs_now() - a0) /
                                static_cast<double>(iters);
  }

  // One-shot tier: fresh key schedule + fresh buffer per call.
  {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
      (void)crypto::aes_cbc_decrypt(c.kcek, reader.iv(),
                                    reader.encrypted_payload());
    }
    out.oneshot_mbps = mbps(payload_bytes, iters, ms_since(t0));
  }

  // Pre-streaming baseline.
  {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
      (void)legacy_cbc_decrypt(c.kcek, reader.iv(),
                               reader.encrypted_payload());
    }
    out.legacy_mbps = mbps(payload_bytes, iters, ms_since(t0));
  }

  // Container integrity hashing (streaming SHA-1, no re-serialization).
  {
    const auto t0 = Clock::now();
    std::uint8_t digest[crypto::Sha1::kDigestSize];
    for (std::size_t i = 0; i < iters; ++i) {
      crypto::Sha1 h;
      h.update(c.wire);
      h.finish_into(digest);
    }
    out.sha1_mbps = mbps(c.wire.size(), iters, ms_since(t0));
  }

  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_dcf.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json <path>]\n", argv[0]);
      return 2;
    }
  }

  std::vector<std::size_t> sizes = {4 * 1024, 64 * 1024, 1024 * 1024};
  if (!quick) sizes.push_back(16 * 1024 * 1024);
  const std::size_t work_budget = quick ? 16u * 1024 * 1024
                                        : 96u * 1024 * 1024;

  const bool aesni = crypto::Aes(Bytes(16, 0)).has_accel();
  std::printf("=== DCF content-path benchmark (AES-NI %s) ===\n\n",
              aesni ? "on" : "off");

  Fixture fx;
  std::vector<SizeResult> results;
  for (std::size_t size : sizes) {
    results.push_back(run_size(fx, size, work_budget));
    const SizeResult& r = results.back();
    std::printf(
        "%8zu KiB  open %6.2f us (%2.0f allocs)   stream %8.1f MB/s   "
        "one-shot %8.1f MB/s   legacy %7.1f MB/s (%4.1fx)   sha1 %7.1f "
        "MB/s\n",
        r.payload_bytes / 1024, r.open_us, r.open_allocs, r.stream_mbps,
        r.oneshot_mbps, r.legacy_mbps, r.stream_mbps / r.legacy_mbps,
        r.sha1_mbps);
  }

  const SizeResult& largest = results.back();
  const double speedup = largest.stream_mbps / largest.legacy_mbps;
  const agent::AesCacheStats& cache = fx.device.aes_context_cache().stats();
  std::printf(
      "\naes context cache   %llu hits / %llu misses\n"
      "largest payload     stream %.1f MB/s = %.1fx the pre-streaming "
      "one-shot path\n",
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses), largest.stream_mbps,
      speedup);
  std::printf(
      "\nThe split is the paper's content-path story: open_content pays the\n"
      "per-access trust decisions once (RO MAC, DCF-hash binding, CEK\n"
      "unwrap, cached AES schedule), then read() streams CBC block runs\n"
      "into a reused buffer with zero allocations.\n");

  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  json << "{\n"
       << "  \"bench\": \"dcf_stream\",\n"
       << "  \"config\": {\"rsa_bits\": " << kRsaBits
       << ", \"chunk_bytes\": " << kChunkBytes
       << ", \"quick\": " << (quick ? "true" : "false")
       << ", \"aesni\": " << (aesni ? "true" : "false") << "},\n"
       << "  \"sizes\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "    {\"payload_bytes\": %zu, \"cipher_bytes\": %zu, "
        "\"open_us\": %.2f, \"open_allocs\": %.1f, "
        "\"stream_decrypt_mbps\": %.1f, \"oneshot_decrypt_mbps\": %.1f, "
        "\"legacy_oneshot_decrypt_mbps\": %.1f, "
        "\"speedup_stream_vs_legacy\": %.2f, \"sha1_mbps\": %.1f, "
        "\"read_allocs_per_drain\": %.2f}%s\n",
        r.payload_bytes, r.cipher_bytes, r.open_us, r.open_allocs,
        r.stream_mbps, r.oneshot_mbps, r.legacy_mbps,
        r.stream_mbps / r.legacy_mbps, r.sha1_mbps, r.read_allocs_per_drain,
        i + 1 < results.size() ? "," : "");
    json << buf;
  }
  char tail[160];
  std::snprintf(tail, sizeof tail,
                "  ],\n  \"aes_cache\": {\"hits\": %llu, \"misses\": %llu}\n}\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses));
  json << tail;
  std::printf("\nwrote %s\n", json_path.c_str());

  // Hard invariant: steady-state read() performs zero heap allocations.
  bool clean = true;
  for (const SizeResult& r : results) {
    if (r.read_allocs_per_drain != 0) {
      std::fprintf(stderr,
                   "FAIL: steady-state read() allocates (%.2f allocs/drain "
                   "at %zu bytes)\n",
                   r.read_allocs_per_drain, r.payload_bytes);
      clean = false;
    }
  }
  if (!clean) return 1;

  if (speedup < 3.0) {
    std::fprintf(stderr,
                 "WARNING: stream decrypt speedup %.2fx below the 3x "
                 "acceptance target at %zu bytes%s\n",
                 speedup, largest.payload_bytes,
                 aesni ? "" : " (no AES-NI on this host)");
  }
  return 0;
}
