// E1 — Table 1: per-algorithm execution costs in hardware and software.
//
// Prints the paper's cost table as embedded in the model (the model input),
// then uses google-benchmark to measure our *actual* software primitives on
// the host, reporting bytes/second and a derived cycles-per-128-bit-block
// figure for qualitative comparison with the ARM9 column. Host numbers are
// expected to differ from the paper's ARM9 figures (different ISA, cache,
// compiler) — the model always uses the published coefficients.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/random.h"
#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "crypto/modes.h"
#include "crypto/sha1.h"
#include "model/cost_table.h"
#include "rsa/rsa.h"

namespace {

using namespace omadrm;           // NOLINT
using namespace omadrm::model;    // NOLINT

void print_model_table() {
  std::printf("=== Table 1 — execution costs per algorithm (model input) ===\n");
  std::printf("%-28s %-26s %-26s\n", "Algorithm", "Software [cycles]",
              "Hardware [cycles]");
  CostTable t = CostTable::paper_table1();
  for (std::size_t i = 0; i < kAlgorithmCount; ++i) {
    Algorithm a = static_cast<Algorithm>(i);
    const AlgoCost& sw = t.cost(a, Engine::kSoftware);
    const AlgoCost& hw = t.cost(a, Engine::kHardware);
    const char* unit = (a == Algorithm::kRsaPublic ||
                        a == Algorithm::kRsaPrivate)
                           ? "1024 bit"
                           : "128 bit";
    char swbuf[64], hwbuf[64];
    std::snprintf(swbuf, sizeof swbuf, "%.0f + %.0f/%s", sw.fixed_cycles,
                  sw.cycles_per_block, unit);
    std::snprintf(hwbuf, sizeof hwbuf, "%.0f + %.0f/%s", hw.fixed_cycles,
                  hw.cycles_per_block, unit);
    std::printf("%-28s %-26s %-26s\n", to_string(a), swbuf, hwbuf);
  }
  std::printf(
      "\n(Host measurements below are our real C++ primitives; the model\n"
      " charges the published ARM9/macro coefficients above, not these.)\n\n");
}

// --- host measurements of the real software primitives --------------------

void BM_AesEncryptBlock(benchmark::State& state) {
  DeterministicRng rng(1);
  Bytes key = rng.bytes(16);
  crypto::Aes aes(key);
  std::uint8_t block[16] = {};
  for (auto _ : state) {
    aes.encrypt_block(block, block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_AesEncryptBlock);

void BM_AesDecryptBlock(benchmark::State& state) {
  DeterministicRng rng(2);
  Bytes key = rng.bytes(16);
  crypto::Aes aes(key);
  std::uint8_t block[16] = {};
  for (auto _ : state) {
    aes.decrypt_block(block, block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_AesDecryptBlock);

void BM_AesKeySchedule(benchmark::State& state) {
  DeterministicRng rng(3);
  Bytes key = rng.bytes(16);
  for (auto _ : state) {
    crypto::Aes aes(key);
    benchmark::DoNotOptimize(aes);
  }
}
BENCHMARK(BM_AesKeySchedule);

void BM_Sha1(benchmark::State& state) {
  DeterministicRng rng(4);
  Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Bytes digest = crypto::Sha1::hash(data);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_HmacSha1(benchmark::State& state) {
  DeterministicRng rng(5);
  Bytes key = rng.bytes(16);
  Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Bytes tag = crypto::HmacSha1::mac(key, data);
    benchmark::DoNotOptimize(tag);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha1)->Arg(64)->Arg(4096);

void BM_Rsa1024PublicOp(benchmark::State& state) {
  DeterministicRng rng(6);
  rsa::PrivateKey key = rsa::generate_key(1024, rng);
  bigint::BigInt m = bigint::BigInt::random_below(key.n, rng);
  for (auto _ : state) {
    bigint::BigInt c = rsa::rsaep(key.public_key(), m);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_Rsa1024PublicOp);

void BM_Rsa1024PrivateOp(benchmark::State& state) {
  DeterministicRng rng(7);
  rsa::PrivateKey key = rsa::generate_key(1024, rng);
  bigint::BigInt c = bigint::BigInt::random_below(key.n, rng);
  for (auto _ : state) {
    bigint::BigInt m = rsa::rsadp(key, c);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_Rsa1024PrivateOp);

void BM_Rsa1024PrivateOpNoCrt(benchmark::State& state) {
  DeterministicRng rng(8);
  rsa::PrivateKey key = rsa::generate_key(1024, rng);
  key.has_crt = false;
  bigint::BigInt c = bigint::BigInt::random_below(key.n, rng);
  for (auto _ : state) {
    bigint::BigInt m = rsa::rsadp(key, c);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_Rsa1024PrivateOpNoCrt);

}  // namespace

int main(int argc, char** argv) {
  print_model_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
