// Seeded chaos soak: a fleet of DRM Agents drives registrations, RO
// acquisitions, count-constrained consumption, and domain churn against
// one Rights Issuer through a FaultyTransport that drops, corrupts,
// replays, and reorders envelopes — while both ends' durable stores
// randomly refuse commits and agents are killed between handshake passes
// and rebuilt from their stores (DrmAgent::from_store).
//
// Every protocol operation runs under the fault-tolerant session driver
// (roap::RetryPolicy), and the soak asserts the driver's whole contract:
//
//   termination   every policy-driven session ends kOk or with a
//                 TERMINAL code (RetryPolicy::classify) — a retriable
//                 code leaking out of a driver is a violation;
//   no leaks      after a final TTL sweep the RI holds zero pending
//                 registration sessions, no matter how many handshakes
//                 were killed or lost mid-flight;
//   conservation  per agent, successful burns + remaining count equals
//                 the installed RO's initial count — replay-cache hits,
//                 resends, and store refusals never mint or lose grants;
//   reconcile     rebooting every agent via from_store reproduces the
//                 live agent's state, and a fresh RI bound to the same
//                 store agrees on the registered-device set.
//
// Determinism: the whole run is a pure function of the seed (one
// DeterministicRng drives key generation, fault draws, retry jitter and
// scheduling). On any violation the harness prints the seed and the
// exact command to replay it byte-for-byte, then exits 1.
//
// Usage: chaos_soak [--seed S | --seeds N] [--agents N] [--ops N]
//                   [--drop P] [--corrupt P] [--replay P] [--delay P]
//                   [--store-fail P] [--kill P] [--quick] [--socket]
//                   [--ri-store-dir DIR] [--failpoints SPEC]
//                   [--json <path>]
// Env:   CHAOS_SEED=S  equivalent to --seed S (CI replay hook).
//
// --socket swaps the in-process loopback for the real network stack: an
// in-process net::RiServer (ephemeral port, worker pool) wrapping the
// same RightsIssuer, with the FaultyTransport layered over a
// net::SocketTransport. Every drop/corrupt/replay/delay fault then
// happens against real framed-TCP exchanges — corrupted requests cross
// the wire and come back as server refusal frames — while the soak's
// invariants (termination, leaks, conservation, reconciliation) stay
// bit-for-bit the same contract. The server is drained before the final
// invariant sweep so the RI is quiescent when inspected.
//
// --ri-store-dir DIR swaps the RI's MemoryStore for a real sealed
// FileStore (one fresh subdirectory per seed) behind a GroupCommitStore,
// so every RI commit rides the journal + fsync path. --failpoints SPEC
// arms the deterministic failpoint registry (common/failpoint.h) with a
// "site=spec;site=spec" string before each seed — e.g.
// "store.journal.write=error-every-5:ENOSPC" makes every 5th journal
// append fail like a full disk. Injected store errors surface as refused
// commits, which the soak already treats as degraded-mode behavior; the
// failpoints are disarmed before the final invariant sweep (a healthy
// store is the precondition for the leak/reconcile checks, exactly as
// with fail_next_commits).
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "agent/drm_agent.h"
#include "agent/sessions.h"
#include "ci/content_issuer.h"
#include "common/bytes.h"
#include "common/error.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "dcf/dcf.h"
#include "net/concurrent_issuer.h"
#include "net/server.h"
#include "net/socket_transport.h"
#include "pki/authority.h"
#include "provider/provider.h"
#include "ri/rights_issuer.h"
#include "roap/retry.h"
#include "roap/transport.h"
#include "store/file_store.h"
#include "store/group_commit_store.h"
#include "store/memory_store.h"
#include "store/state_store.h"

namespace {

using namespace omadrm;  // NOLINT
using agent::DrmAgent;

constexpr std::uint64_t kNow = 1100000000;

struct Options {
  std::uint64_t seed = 1;      // first (or only) seed
  std::size_t seeds = 5;       // how many consecutive seeds to run
  std::size_t agents = 64;
  std::size_t ops = 8;         // operations per agent per seed
  double drop = 0.05;
  double corrupt = 0.04;
  double replay = 0.03;
  double delay = 0.02;         // combined wire fault rate: 14%
  double store_fail = 0.05;    // per-op chance a store refuses its commit
  double kill = 0.05;          // per-op chance of a mid-handshake kill
  bool socket = false;         // faults over real framed TCP
  std::size_t workers = 2;     // server worker threads in --socket mode
  std::string ri_store_dir;    // non-empty: RI on a sealed FileStore
  std::string failpoints;      // non-empty: armed before every seed
  std::string json_path = "BENCH_chaos.json";
};

/// One uniform draw against probability `p` (seeded, 2^20 resolution).
bool chance(Rng& rng, double p) {
  if (p <= 0) return false;
  return static_cast<double>(rng.uniform(std::uint64_t{1} << 20)) /
             static_cast<double>(std::uint64_t{1} << 20) <
         p;
}

struct AgentSlot {
  std::string id;
  Bytes kdev;  // the hardware-held key, saved for from_store reboots
  std::unique_ptr<store::MemoryStore> store;
  std::unique_ptr<DrmAgent> dev;
  bool installed = false;
  std::uint32_t initial_count = 0;
  std::uint64_t burns = 0;
};

struct SeedTally {
  std::uint64_t ops = 0;
  std::uint64_t ok = 0;
  std::uint64_t kills = 0;
  std::uint64_t reboots = 0;
  std::uint64_t store_faults_armed = 0;
  std::map<StatusCode, std::uint64_t> terminal;  // failures by code
};

class SeedRun {
 public:
  SeedRun(std::uint64_t seed, const Options& opt)
      : seed_(seed), opt_(opt), rng_(seed) {}

  /// Runs the soak for this seed; returns true when every invariant held.
  bool run();

  const SeedTally& tally() const { return tally_; }

 private:
  void violation(const char* what, const std::string& detail);
  /// Classifies a finished policy-driven session: kOk and terminal codes
  /// are legitimate ends; a retriable code means the driver gave up
  /// without converting it — the bug this soak exists to catch.
  void check_outcome(const char* op, const AgentSlot& slot, StatusCode code);
  void arm_store_faults(AgentSlot& slot);
  void kill_mid_handshake(AgentSlot& slot);
  void step(AgentSlot& slot);
  bool final_invariants(std::vector<AgentSlot>& fleet);

  std::uint64_t seed_;
  const Options& opt_;
  DeterministicRng rng_;
  SeedTally tally_;
  bool failed_ = false;

  pki::Validity validity_{kNow - 86400, kNow + 365 * 86400};
  std::unique_ptr<pki::CertificationAuthority> ca_;
  std::unique_ptr<ci::ContentIssuer> ci_;
  std::unique_ptr<ri::RightsIssuer> ri_;
  // Exactly one of the two RI stores is live: the MemoryStore default,
  // or (--ri-store-dir) a sealed FileStore behind a GroupCommitStore.
  // ri_state_ points at whichever one the RI is bound to.
  std::unique_ptr<store::MemoryStore> ri_store_;
  std::unique_ptr<store::FileStore> ri_file_store_;
  std::unique_ptr<store::GroupCommitStore> ri_group_store_;
  store::StateStore* ri_state_ = nullptr;
  std::unique_ptr<roap::InProcessTransport> loopback_;
  // --socket mode: server + client transport, destroyed before the RI.
  std::unique_ptr<net::ConcurrentIssuer> cissuer_;
  std::unique_ptr<net::RiServer> server_;
  std::unique_ptr<net::SocketTransport> sock_;
  std::unique_ptr<roap::FaultyTransport> net_;
  dcf::Dcf dcf_;
  roap::RetryPolicy policy_;
};

void SeedRun::violation(const char* what, const std::string& detail) {
  failed_ = true;
  std::fprintf(stderr,
               "chaos_soak: INVARIANT VIOLATION [%s] %s\n"
               "  seed %" PRIu64
               " — replay this exact run with:\n"
               "    chaos_soak --seed %" PRIu64
               " --agents %zu --ops %zu --drop %g --corrupt %g --replay %g"
               " --delay %g --store-fail %g --kill %g\n"
               "  (or CHAOS_SEED=%" PRIu64 " with the same shape flags)\n",
               what, detail.c_str(), seed_, seed_, opt_.agents, opt_.ops,
               opt_.drop, opt_.corrupt, opt_.replay, opt_.delay,
               opt_.store_fail, opt_.kill, seed_);
  if (!opt_.ri_store_dir.empty() || !opt_.failpoints.empty()) {
    std::fprintf(stderr, "  plus:%s%s%s%s%s\n",
                 opt_.ri_store_dir.empty() ? "" : " --ri-store-dir ",
                 opt_.ri_store_dir.c_str(),
                 opt_.failpoints.empty() ? "" : " --failpoints \"",
                 opt_.failpoints.c_str(),
                 opt_.failpoints.empty() ? "" : "\"");
  }
}

void SeedRun::check_outcome(const char* op, const AgentSlot& slot,
                            StatusCode code) {
  ++tally_.ops;
  if (code == StatusCode::kOk) {
    ++tally_.ok;
    return;
  }
  ++tally_.terminal[code];
  if (roap::RetryPolicy::retriable(code)) {
    violation("termination", std::string(op) + " on " + slot.id +
                                 " ended with retriable code " +
                                 to_string(code) +
                                 " — the session driver leaked a transient");
  }
}

void SeedRun::arm_store_faults(AgentSlot& slot) {
  // File-backed RI stores fault through the failpoint registry instead
  // of fail_next_commits; the draw is still made so the rng stream (and
  // so every wire fault downstream) is identical across store backends.
  if (chance(rng_, opt_.store_fail) && ri_store_) {
    ri_store_->fail_next_commits(1);
    ++tally_.store_faults_armed;
  }
  if (chance(rng_, opt_.store_fail)) {
    slot.store->fail_next_commits(1);
    ++tally_.store_faults_armed;
  }
}

/// Kill-point between handshake passes: the agent sends its DeviceHello
/// (the RI now holds a pending session and a nonce for it), then dies
/// before the RegistrationRequest. The replacement process is rebuilt
/// from the durable store alone plus the hardware key.
void SeedRun::kill_mid_handshake(AgentSlot& slot) {
  ++tally_.kills;
  agent::RegistrationSession reg(*slot.dev, kNow);
  auto hello = reg.hello();
  if (hello.ok()) {
    try {
      (void)net_->request(*hello);
    } catch (const Error&) {
      // the hello itself may be lost; the kill happens either way
    }
  }
  auto rebooted = DrmAgent::from_store(*slot.store, slot.kdev,
                                       ca_->root_certificate(),
                                       provider::plain_provider(), rng_);
  if (!rebooted.ok()) {
    violation("reboot", slot.id + ": from_store failed after kill: " +
                            rebooted.describe());
    return;
  }
  slot.dev = std::make_unique<DrmAgent>(std::move(*rebooted));
  ++tally_.reboots;
}

void SeedRun::step(AgentSlot& slot) {
  arm_store_faults(slot);

  if (chance(rng_, opt_.kill)) {
    kill_mid_handshake(slot);
    return;
  }

  DrmAgent& dev = *slot.dev;
  if (!dev.has_ri_context(ri_->ri_id())) {
    check_outcome("register", slot,
                  dev.register_with(*net_, kNow, policy_).code());
    return;
  }

  const std::uint64_t pick = rng_.uniform(100);
  if (!slot.installed || pick < 15) {
    auto acq = dev.acquire_ro(*net_, ri_->ri_id(), "ro:soak", kNow, policy_);
    check_outcome("acquire", slot, acq.code());
    if (acq.ok() && !slot.installed) {
      // Install exactly once so the count budget is minted exactly once;
      // conservation is then: burns + remaining == initial, forever.
      const auto inst = dev.install_ro(*acq, kNow);
      if (inst == StatusCode::kOk) {
        slot.installed = true;
        auto rem = dev.remaining_count("ro:soak", rel::PermissionType::kPlay);
        if (!rem) {
          violation("conservation",
                    slot.id + ": installed count RO reports no count");
          return;
        }
        slot.initial_count = *rem;
      }
      // A refused install (agent store down) is fine: retried next round.
    }
  } else if (pick < 55) {
    if (slot.burns < slot.initial_count) {
      auto res = dev.consume(dcf_, rel::PermissionType::kPlay, kNow);
      if (res.status == StatusCode::kOk) ++slot.burns;
      // Refusals (store down) and denials (budget spent) are legitimate;
      // the final conservation check arbitrates.
    }
  } else if (pick < 75) {
    check_outcome(
        "join", slot,
        dev.join_domain(*net_, ri_->ri_id(), "domain:soak", kNow, policy_)
            .code());
  } else if (pick < 85 && dev.has_domain_key("domain:soak")) {
    check_outcome(
        "leave", slot,
        dev.leave_domain(*net_, ri_->ri_id(), "domain:soak", kNow, policy_)
            .code());
  } else {
    // Re-registration: a fresh handshake supersedes the old context and
    // exercises the RI's pending-session supersession sweep.
    check_outcome("re-register", slot,
                  dev.register_with(*net_, kNow, policy_).code());
  }

  // The network occasionally times out its reordering queue.
  if (chance(rng_, 0.2)) net_->discard_delayed();
}

bool SeedRun::final_invariants(std::vector<AgentSlot>& fleet) {
  // In socket mode, drain the server first: the invariant sweep below
  // inspects the RI directly and needs it quiescent.
  if (server_) server_->stop();

  // 1. No pending-session leaks: after the TTL passes, the sweep leaves
  // nothing behind — killed and abandoned handshakes all die. Heal the
  // store first: the fault injector arms "fail the NEXT commit" before
  // each op, and an op that never commits (RO issuing persists nothing,
  // a dropped request never reaches the RI) leaves it armed — a refused
  // sweep commit legitimately defers that shard's GC to a later sweep,
  // which is degraded-mode behavior, not a leak. Armed failpoints are
  // the file-backed equivalent and are disarmed for the same reason.
  if (ri_store_) ri_store_->fail_next_commits(0);
  failpoint::reset_all();
  net_->discard_delayed();
  (void)ri_->expire_pending_sessions(kNow + ri::kPendingSessionTtl + 1);
  if (ri_->pending_session_count() != 0) {
    violation("leak", std::to_string(ri_->pending_session_count()) +
                          " pending sessions survived the TTL sweep");
  }

  for (AgentSlot& slot : fleet) {
    // 2. Grant conservation: burns + remaining == initial.
    if (slot.installed) {
      auto rem =
          slot.dev->remaining_count("ro:soak", rel::PermissionType::kPlay);
      if (!rem) {
        violation("conservation", slot.id + ": installed RO vanished");
        continue;
      }
      if (slot.burns + *rem != slot.initial_count) {
        violation("conservation",
                  slot.id + ": burns " + std::to_string(slot.burns) +
                      " + remaining " + std::to_string(*rem) +
                      " != initial " + std::to_string(slot.initial_count));
      }
    }

    // 3. Store reconciliation: a reboot from the durable store alone
    // reproduces the live agent.
    auto rebooted = DrmAgent::from_store(*slot.store, slot.kdev,
                                         ca_->root_certificate(),
                                         provider::plain_provider(), rng_);
    if (!rebooted.ok()) {
      violation("reconcile",
                slot.id + ": from_store failed: " + rebooted.describe());
      continue;
    }
    if (rebooted->has_ri_context(ri_->ri_id()) !=
        slot.dev->has_ri_context(ri_->ri_id())) {
      violation("reconcile", slot.id + ": RI context differs after reboot");
    }
    if (slot.installed) {
      auto live =
          slot.dev->remaining_count("ro:soak", rel::PermissionType::kPlay);
      auto back =
          rebooted->remaining_count("ro:soak", rel::PermissionType::kPlay);
      if (!back || !live || *back != *live) {
        violation("reconcile", slot.id + ": burned count differs after reboot");
      }
    }
  }

  // 4. RI/agent agreement: a fresh RI process bound to the same store
  // sees the same registered-device set as the live instance.
  ri::RightsIssuer twin(ri_->ri_id(), ri_->url(), *ca_, validity_,
                        provider::plain_provider(), rng_);
  auto bound = twin.bind_store(*ri_state_);
  if (!bound.ok()) {
    violation("reconcile", "RI twin bind_store failed: " + bound.describe());
  } else {
    for (const AgentSlot& slot : fleet) {
      if (twin.is_registered(slot.id) != ri_->is_registered(slot.id)) {
        violation("reconcile",
                  slot.id + ": registration differs between live RI and "
                            "store-rebuilt twin");
      }
    }
  }
  return !failed_;
}

bool SeedRun::run() {
  ca_ = std::make_unique<pki::CertificationAuthority>("CMLA Root", 1024,
                                                      validity_, rng_);
  ci_ = std::make_unique<ci::ContentIssuer>(
      "content.example", provider::plain_provider(), rng_);
  ri_ = std::make_unique<ri::RightsIssuer>("ri:soak", "http://ri/soak", *ca_,
                                           validity_,
                                           provider::plain_provider(), rng_);
  if (opt_.ri_store_dir.empty()) {
    ri_store_ = std::make_unique<store::MemoryStore>();
    ri_state_ = ri_store_.get();
  } else {
    // One fresh sealed FileStore per seed: a stale journal from an
    // earlier run would otherwise pre-register half the fleet.
    const std::string dir =
        opt_.ri_store_dir + "/seed-" + std::to_string(seed_);
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    store::FileStore::Options fo;
    fo.recover_torn_tail = true;
    ri_file_store_ = std::make_unique<store::FileStore>(
        dir,
        store::derive_storage_key(
            to_bytes("chaos-ri:" + std::to_string(seed_))),
        fo);
    ri_group_store_ = std::make_unique<store::GroupCommitStore>(
        *ri_file_store_);
    ri_state_ = ri_group_store_.get();
  }
  if (auto bound = ri_->bind_store(*ri_state_); !bound.ok()) {
    violation("setup", "RI bind_store: " + bound.describe());
    return false;
  }
  if (!opt_.failpoints.empty()) {
    try {
      failpoint::arm_from_spec(opt_.failpoints);
    } catch (const Error& e) {
      violation("setup", std::string("bad --failpoints: ") + e.what());
      return false;
    }
  }
  ri_->create_domain("domain:soak", /*max_members=*/16);

  Bytes content = rng_.bytes(1500);
  dcf::Headers headers;
  headers.content_type = "audio/mpeg";
  headers.content_id = "cid:soak@content.example";
  headers.rights_issuer_url = ri_->url();
  dcf_ = ci_->package(headers, content);

  ri::LicenseOffer offer;
  offer.ro_id = "ro:soak";
  offer.content_id = headers.content_id;
  offer.dcf_hash = dcf_.hash();
  rel::Permission play;
  play.type = rel::PermissionType::kPlay;
  play.constraint.count = 5;
  offer.permissions = {play};
  offer.kcek = *ci_->kcek_for(headers.content_id);
  ri_->add_offer(offer);

  if (opt_.socket) {
    // The real network stack wrapping the same RI: an in-process server
    // on an ephemeral port, and the fault injector over framed TCP.
    cissuer_ = std::make_unique<net::ConcurrentIssuer>(*ri_);
    net::RiServer::Config sc;
    sc.now = kNow;
    sc.workers = opt_.workers;
    server_ = std::make_unique<net::RiServer>(*cissuer_, sc);
    try {
      server_->start();
    } catch (const Error& e) {
      violation("setup", std::string("RiServer start: ") + e.what());
      return false;
    }
    net::SocketTransport::Config tc;
    tc.port = server_->port();
    sock_ = std::make_unique<net::SocketTransport>(tc);
    net_ = std::make_unique<roap::FaultyTransport>(*sock_, rng_);
  } else {
    loopback_ = std::make_unique<roap::InProcessTransport>(*ri_, kNow);
    net_ = std::make_unique<roap::FaultyTransport>(*loopback_, rng_);
  }
  net_->set_drop_rate(opt_.drop);
  net_->set_corrupt_rate(opt_.corrupt);
  net_->set_replay_rate(opt_.replay);
  net_->set_delay_rate(opt_.delay);

  // Enough budget to ride out the configured fault rates; virtual clock,
  // so the backoffs cost nothing real.
  policy_.max_attempts = 8;
  policy_.deadline_ms = 0;
  policy_.base_backoff_ms = 1;
  policy_.max_backoff_ms = 16;
  policy_.max_restarts = 2;

  std::vector<AgentSlot> fleet(opt_.agents);
  for (std::size_t i = 0; i < opt_.agents; ++i) {
    AgentSlot& slot = fleet[i];
    slot.id = "dev:soak-" + std::to_string(i);
    slot.store = std::make_unique<store::MemoryStore>();
    slot.dev = std::make_unique<DrmAgent>(slot.id, ca_->root_certificate(),
                                          provider::plain_provider(), rng_);
    slot.dev->provision(
        ca_->issue(slot.id, slot.dev->public_key(), validity_, rng_));
    if (auto bound = slot.dev->bind_store(*slot.store); !bound.ok()) {
      violation("setup", slot.id + " bind_store: " + bound.describe());
      return false;
    }
    slot.kdev = slot.dev->device_key();
  }

  for (std::size_t op = 0; op < opt_.ops && !failed_; ++op) {
    for (AgentSlot& slot : fleet) {
      step(slot);
      if (failed_) break;
    }
  }
  if (failed_) return false;
  return final_invariants(fleet);
}

void print_tally(std::uint64_t seed, const SeedTally& t, bool clean) {
  std::printf("seed %-12" PRIu64 " %s  ops %-5" PRIu64 " ok %-5" PRIu64
              " kills %-3" PRIu64 " reboots %-3" PRIu64
              " store-faults %-3" PRIu64 "\n",
              seed, clean ? "CLEAN  " : "FAILED ", t.ops, t.ok, t.kills,
              t.reboots, t.store_faults_armed);
  for (const auto& [code, n] : t.terminal) {
    std::printf("    terminal %-20s x%" PRIu64 "\n", to_string(code), n);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  bool single_seed = false;
  if (const char* env = std::getenv("CHAOS_SEED")) {
    opt.seed = std::strtoull(env, nullptr, 10);
    single_seed = true;
  }
  for (int i = 1; i < argc; ++i) {
    auto num = [&](std::uint64_t& out) {
      if (i + 1 >= argc) return false;
      out = std::strtoull(argv[++i], nullptr, 10);
      return true;
    };
    auto rate = [&](double& out) {
      if (i + 1 >= argc) return false;
      out = std::strtod(argv[++i], nullptr);
      return true;
    };
    std::uint64_t v = 0;
    if (std::strcmp(argv[i], "--seed") == 0 && num(opt.seed)) {
      single_seed = true;
    } else if (std::strcmp(argv[i], "--seeds") == 0 && num(v)) {
      opt.seeds = static_cast<std::size_t>(v);
    } else if (std::strcmp(argv[i], "--agents") == 0 && num(v)) {
      opt.agents = static_cast<std::size_t>(v);
    } else if (std::strcmp(argv[i], "--ops") == 0 && num(v)) {
      opt.ops = static_cast<std::size_t>(v);
    } else if (std::strcmp(argv[i], "--drop") == 0 && rate(opt.drop)) {
    } else if (std::strcmp(argv[i], "--corrupt") == 0 && rate(opt.corrupt)) {
    } else if (std::strcmp(argv[i], "--replay") == 0 && rate(opt.replay)) {
    } else if (std::strcmp(argv[i], "--delay") == 0 && rate(opt.delay)) {
    } else if (std::strcmp(argv[i], "--store-fail") == 0 &&
               rate(opt.store_fail)) {
    } else if (std::strcmp(argv[i], "--kill") == 0 && rate(opt.kill)) {
    } else if (std::strcmp(argv[i], "--socket") == 0) {
      opt.socket = true;
    } else if (std::strcmp(argv[i], "--workers") == 0 && num(v)) {
      opt.workers = static_cast<std::size_t>(v);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      opt.agents = 8;
      opt.seeds = 2;
      opt.ops = 5;
    } else if (std::strcmp(argv[i], "--ri-store-dir") == 0 && i + 1 < argc) {
      opt.ri_store_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--failpoints") == 0 && i + 1 < argc) {
      opt.failpoints = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--seed S | --seeds N] [--agents N] [--ops N]\n"
          "          [--drop P] [--corrupt P] [--replay P] [--delay P]\n"
          "          [--store-fail P] [--kill P] [--quick] [--socket]\n"
          "          [--workers N] [--ri-store-dir DIR]\n"
          "          [--failpoints \"site=spec;site=spec\"] [--json <path>]\n",
          argv[0]);
      return 2;
    }
  }
  if (single_seed) opt.seeds = 1;

  std::printf("chaos soak: %zu seed(s) from %" PRIu64
              ", %zu agents x %zu ops, faults drop=%g corrupt=%g replay=%g "
              "delay=%g store-fail=%g kill=%g, transport=%s\n",
              opt.seeds, opt.seed, opt.agents, opt.ops, opt.drop, opt.corrupt,
              opt.replay, opt.delay, opt.store_fail, opt.kill,
              opt.socket ? "framed-tcp" : "in-process");
  if (!opt.ri_store_dir.empty()) {
    std::printf("RI store: sealed FileStore under %s (one dir per seed)\n",
                opt.ri_store_dir.c_str());
  }
  if (!opt.failpoints.empty()) {
    std::printf("failpoints: %s\n", opt.failpoints.c_str());
  }

  std::size_t clean = 0;
  std::uint64_t total_ops = 0, total_ok = 0, total_kills = 0;
  for (std::size_t i = 0; i < opt.seeds; ++i) {
    const std::uint64_t seed = opt.seed + i;
    SeedRun run(seed, opt);
    bool ok = false;
    try {
      ok = run.run();
    } catch (const std::exception& e) {
      // A store so broken that even fixture setup cannot commit (e.g.
      // --failpoints error-every-1) fails the seed instead of the
      // process.
      std::fprintf(stderr, "chaos_soak: seed %" PRIu64 " aborted: %s\n",
                   seed, e.what());
    }
    print_tally(seed, run.tally(), ok);
    if (ok) ++clean;
    total_ops += run.tally().ops;
    total_ok += run.tally().ok;
    total_kills += run.tally().kills;
  }

  std::ofstream json(opt.json_path);
  if (json) {
    json << "{\n  \"bench\": \"chaos_soak\",\n"
         << "  \"ri_store\": \""
         << (opt.ri_store_dir.empty() ? "memory" : "file") << "\",\n"
         << "  \"failpoints\": \"" << opt.failpoints << "\",\n"
         << "  \"seeds\": " << opt.seeds << ",\n  \"first_seed\": " << opt.seed
         << ",\n  \"agents\": " << opt.agents << ",\n  \"ops\": " << opt.ops
         << ",\n  \"total_ops\": " << total_ops
         << ",\n  \"ok_ops\": " << total_ok
         << ",\n  \"kills\": " << total_kills
         << ",\n  \"clean_seeds\": " << clean << "\n}\n";
  }

  if (clean != opt.seeds) {
    std::fprintf(stderr, "chaos soak: %zu/%zu seeds FAILED\n",
                 opt.seeds - clean, opt.seeds);
    return 1;
  }
  std::printf("chaos soak: all %zu seed(s) clean (%" PRIu64 "/%" PRIu64
              " ops ok)\n",
              clean, total_ok, total_ops);
  return 0;
}
