// E2 — Figure 5: relative importance of the cryptographic algorithms in
// both use cases (pure-software terminal).
//
// The paper's stacked bars show, per use case, the percentage of total
// processing time spent in each algorithm. We regenerate the series from
// a full protocol execution and cross-check with the analytic model; the
// google-benchmark section times the analytic evaluation itself (the
// quantity swept by the ablation benches).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "model/analytic.h"
#include "model/report.h"
#include "model/usecase.h"

namespace {

using namespace omadrm::model;  // NOLINT

void print_reproduction() {
  std::printf(
      "=== Figure 5 — relative importance of cryptographic algorithms ===\n"
      "(software-only terminal, share of total processing time)\n\n");
  auto sw = ArchitectureProfile::pure_software();
  for (const UseCaseSpec& spec :
       {UseCaseSpec::ringtone(), UseCaseSpec::music_player()}) {
    UseCaseReport executed = run_use_case(spec, sw);
    std::printf("--- %s (executed protocol) ---\n", spec.name.c_str());
    std::printf("%s\n", format_share_table(executed).c_str());
  }
  std::printf(
      "Paper's qualitative claim: \"Because of the larger file size, AES and\n"
      "SHA-1 become much more important in the Music Player use case whereas\n"
      "in the Ringtone use case the PKI algorithms that prevail during the\n"
      "registration-/installation-phases play a greater role.\"\n\n");

  // Print the two-bar summary the figure actually shows.
  std::printf("%-14s %12s %12s\n", "use case", "PKI share", "AES+SHA share");
  for (const UseCaseSpec& spec :
       {UseCaseSpec::ringtone(), UseCaseSpec::music_player()}) {
    UseCaseReport r = analytic_use_case(spec, sw);
    double pki = r.share(Algorithm::kRsaPublic) +
                 r.share(Algorithm::kRsaPrivate);
    double symmetric = 1.0 - pki;
    std::printf("%-14s %11.1f%% %11.1f%%\n", spec.name.c_str(), pki * 100,
                symmetric * 100);
  }
  std::printf("\n");
}

void BM_AnalyticModelRingtone(benchmark::State& state) {
  auto sw = ArchitectureProfile::pure_software();
  UseCaseSpec spec = UseCaseSpec::ringtone();
  for (auto _ : state) {
    UseCaseReport r = analytic_use_case(spec, sw);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_AnalyticModelRingtone);

void BM_AnalyticModelMusicPlayer(benchmark::State& state) {
  auto sw = ArchitectureProfile::pure_software();
  UseCaseSpec spec = UseCaseSpec::music_player();
  for (auto _ : state) {
    UseCaseReport r = analytic_use_case(spec, sw);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_AnalyticModelMusicPlayer);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
