// Envelope / wire-boundary tests: every ROAP message type survives a full
// serialize→parse round trip bit-identically (field equality), and
// malformed wire input — truncated documents, wrong root elements,
// type-confused opens, stripped signatures — is rejected cleanly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.h"
#include "common/hex.h"
#include "common/random.h"
#include "roap/envelope.h"
#include "roap/messages.h"
#include "xml/xml.h"

namespace omadrm::roap {
namespace {

using omadrm::DeterministicRng;
using omadrm::Error;

rel::Rights sample_rights(DeterministicRng& rng) {
  rel::Rights r;
  r.ro_id = "ro:rt";
  r.content_id = "cid:rt@example";
  r.dcf_hash = rng.bytes(20);
  rel::Permission play;
  play.type = rel::PermissionType::kPlay;
  play.constraint.count = 7;
  r.permissions = {play};
  return r;
}

ProtectedRo sample_ro(DeterministicRng& rng, bool domain) {
  ProtectedRo ro;
  ro.rights = sample_rights(rng);
  ro.wrapped_keys = rng.bytes(domain ? 40 : 168);
  ro.enc_kcek = rng.bytes(24);
  ro.mac = rng.bytes(20);
  ro.ri_id = "ri.example";
  if (domain) {
    ro.is_domain_ro = true;
    ro.domain_id = "domain:home";
    ro.domain_generation = 3;
    ro.signature = rng.bytes(128);
  }
  return ro;
}

/// parse(serialize(msg)) must equal msg, via the envelope boundary and
/// via the raw document.
template <typename Msg>
void expect_round_trip(const Msg& msg) {
  // Through the envelope (the transport path).
  Envelope env = Envelope::wrap(msg);
  Envelope back = Envelope::from_wire(env.wire());
  EXPECT_EQ(back.type(), MessageTraits<Msg>::kType);
  EXPECT_EQ(back.template open<Msg>(), msg);
  // Through the raw document (storage / out-of-band path).
  EXPECT_EQ(Msg::from_xml(xml::parse(env.wire())), msg);
}

TEST(EnvelopeRoundTrip, EveryMessageType) {
  DeterministicRng rng(0xE1);

  DeviceHello hello;
  hello.device_id = "device-01";
  hello.algorithms = {"SHA-1", "RSA-PSS", "KDF2"};
  hello.device_nonce = rng.bytes(kNonceLen);
  expect_round_trip(hello);

  RiHello ri_hello;
  ri_hello.status = Status::kSuccess;
  ri_hello.ri_id = "ri.example";
  ri_hello.session_id = "s-17";
  ri_hello.algorithms = {"SHA-1"};
  ri_hello.ri_nonce = rng.bytes(kNonceLen);
  expect_round_trip(ri_hello);

  RegistrationRequest reg_req;
  reg_req.session_id = "s-17";
  reg_req.device_id = "device-01";
  reg_req.device_nonce = rng.bytes(kNonceLen);
  reg_req.ri_nonce = rng.bytes(kNonceLen);
  reg_req.certificate_der = rng.bytes(480);
  reg_req.ocsp_nonce = rng.bytes(kNonceLen);
  reg_req.signature = rng.bytes(128);
  expect_round_trip(reg_req);

  RegistrationResponse reg_resp;
  reg_resp.status = Status::kSuccess;
  reg_resp.session_id = "s-17";
  reg_resp.ri_id = "ri.example";
  reg_resp.ri_url = "http://ri.example/roap";
  reg_resp.ri_certificate_der = rng.bytes(500);
  reg_resp.ri_certificate_chain_der = {rng.bytes(490), rng.bytes(470)};
  reg_resp.ocsp_response_der = rng.bytes(220);
  reg_resp.signature = rng.bytes(128);
  expect_round_trip(reg_resp);

  RoRequest ro_req;
  ro_req.device_id = "device-01";
  ro_req.ri_id = "ri.example";
  ro_req.ro_id = "ro:rt";
  ro_req.domain_id = "domain:home";
  ro_req.device_nonce = rng.bytes(kNonceLen);
  ro_req.signature = rng.bytes(128);
  expect_round_trip(ro_req);

  RoResponse ro_resp;
  ro_resp.status = Status::kSuccess;
  ro_resp.device_id = "device-01";
  ro_resp.ri_id = "ri.example";
  ro_resp.device_nonce = ro_req.device_nonce;
  ro_resp.ros = {sample_ro(rng, false), sample_ro(rng, true)};
  ro_resp.signature = rng.bytes(128);
  expect_round_trip(ro_resp);

  JoinDomainRequest join_req;
  join_req.device_id = "device-01";
  join_req.ri_id = "ri.example";
  join_req.domain_id = "domain:home";
  join_req.device_nonce = rng.bytes(kNonceLen);
  join_req.signature = rng.bytes(128);
  expect_round_trip(join_req);

  JoinDomainResponse join_resp;
  join_resp.status = Status::kSuccess;
  join_resp.domain_id = "domain:home";
  join_resp.generation = 5;
  join_resp.wrapped_domain_key = rng.bytes(152);
  join_resp.signature = rng.bytes(128);
  expect_round_trip(join_resp);

  LeaveDomainRequest leave_req;
  leave_req.device_id = "device-01";
  leave_req.ri_id = "ri.example";
  leave_req.domain_id = "domain:home";
  leave_req.device_nonce = rng.bytes(kNonceLen);
  leave_req.signature = rng.bytes(128);
  expect_round_trip(leave_req);

  LeaveDomainResponse leave_resp;
  leave_resp.status = Status::kSuccess;
  leave_resp.domain_id = "domain:home";
  leave_resp.device_nonce = leave_req.device_nonce;
  leave_resp.signature = rng.bytes(128);
  expect_round_trip(leave_resp);

  RoAcquisitionTrigger trigger;
  trigger.ri_id = "ri.example";
  trigger.ri_url = "http://ri.example/roap";
  trigger.ro_id = "ro:rt";
  trigger.content_id = "cid:rt@example";
  trigger.domain_id = "domain:home";
  expect_round_trip(trigger);
}

TEST(EnvelopeRoundTrip, FailureStatusesRoundTrip) {
  // Error responses (no payload, no signature) are wire documents too.
  for (Status st : {Status::kAbort, Status::kNotRegistered,
                    Status::kSignatureInvalid, Status::kUnknownRoId,
                    Status::kAccessDenied}) {
    RoResponse resp;
    resp.status = st;
    resp.device_id = "d";
    resp.ri_id = "r";
    resp.device_nonce = Bytes(kNonceLen, 0x5a);
    expect_round_trip(resp);
  }
}

TEST(EnvelopeRoundTrip, OptionalFieldsAbsent) {
  DeterministicRng rng(0xE2);
  // Unsigned device RO, no domain fields, empty algorithm lists.
  ProtectedRo ro = sample_ro(rng, false);
  RoResponse resp;
  resp.status = Status::kSuccess;
  resp.device_id = "d";
  resp.ri_id = "r";
  resp.device_nonce = rng.bytes(kNonceLen);
  resp.ros = {ro};
  expect_round_trip(resp);

  DeviceHello hello;
  hello.device_id = "d";
  hello.device_nonce = rng.bytes(kNonceLen);
  expect_round_trip(hello);

  RoRequest req;  // no domain, no signature
  req.device_id = "d";
  req.ri_id = "r";
  req.ro_id = "ro:1";
  req.device_nonce = rng.bytes(kNonceLen);
  expect_round_trip(req);
}

TEST(EnvelopeMalformed, TruncatedDocumentsRejected) {
  DeterministicRng rng(0xE3);
  RoRequest req;
  req.device_id = "device-01";
  req.ri_id = "ri.example";
  req.ro_id = "ro:1";
  req.device_nonce = rng.bytes(kNonceLen);
  req.signature = rng.bytes(128);
  const std::string wire = Envelope::wrap(req).wire();

  // Every strict prefix must be rejected at the boundary (truncation can
  // never silently yield a message).
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, wire.size() / 4,
                          wire.size() / 2, wire.size() - 1}) {
    EXPECT_THROW(Envelope::from_wire(wire.substr(0, len)), Error)
        << "prefix length " << len;
  }
}

TEST(EnvelopeMalformed, UnknownRootRejected) {
  EXPECT_THROW(Envelope::from_wire("<roap:fooRequest/>"), Error);
  EXPECT_THROW(Envelope::from_wire("<o-ex:rights/>"), Error);
  EXPECT_THROW(Envelope::from_wire("plain text"), Error);
  EXPECT_THROW(Envelope::from_wire(""), Error);
}

TEST(EnvelopeMalformed, OpenChecksTypeBeforeParsing) {
  DeviceHello hello;
  hello.device_id = "d";
  hello.device_nonce = Bytes(kNonceLen, 1);
  Envelope env = Envelope::wrap(hello);
  EXPECT_EQ(env.type(), MessageType::kDeviceHello);
  // Opening as a different message is a type error (kProtocol), and must
  // not be confused with a parse error.
  try {
    (void)env.open<RoResponse>();
    FAIL() << "type-confused open succeeded";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kProtocol);
  }
  // The correct open still works afterwards.
  EXPECT_EQ(env.open<DeviceHello>(), hello);
}

TEST(EnvelopeMalformed, MissingRequiredChildRejected) {
  // Structurally valid XML with the right root but gutted content must be
  // rejected when opened (required children absent).
  Envelope env = Envelope::from_wire("<roap:registrationRequest/>");
  EXPECT_EQ(env.type(), MessageType::kRegistrationRequest);
  EXPECT_THROW((void)env.open<RegistrationRequest>(), Error);

  Envelope ro = Envelope::from_wire(
      "<roap:roResponse status=\"Success\"></roap:roResponse>");
  EXPECT_THROW((void)ro.open<RoResponse>(), Error);
}

TEST(EnvelopeMalformed, SignatureStrippingIsDetectable) {
  DeterministicRng rng(0xE4);
  RoRequest req;
  req.device_id = "device-01";
  req.ri_id = "ri.example";
  req.ro_id = "ro:1";
  req.device_nonce = rng.bytes(kNonceLen);
  req.signature = rng.bytes(128);

  // An attacker removing <roap:signature> still yields a parseable
  // document (the element is optional on the wire so unsigned drafts can
  // be built) — but the parsed message visibly has no signature, which
  // every verifier treats as invalid.
  xml::Element doc = req.to_xml();
  auto& kids = doc.children();
  std::erase_if(kids, [](const xml::Element& c) {
    return c.name() == "roap:signature";
  });
  RoRequest stripped =
      Envelope::from_wire(doc.serialize()).open<RoRequest>();
  EXPECT_TRUE(stripped.signature.empty());
  EXPECT_NE(stripped, req);
  // And the signed payload is unchanged by stripping — what was signed is
  // exactly what survives.
  EXPECT_EQ(stripped.payload(), req.payload());
}

TEST(EnvelopeMalformed, TypeNamesAreStable) {
  EXPECT_STREQ(to_string(MessageType::kRegistrationRequest),
               "RegistrationRequest");
  EXPECT_STREQ(root_element(MessageType::kRegistrationRequest),
               "roap:registrationRequest");
  EXPECT_TRUE(is_request(MessageType::kRoRequest));
  EXPECT_FALSE(is_request(MessageType::kRoResponse));
  EXPECT_FALSE(is_request(MessageType::kRoAcquisitionTrigger));
}

// ---------------------------------------------------------------------------
// Envelope value semantics over the pooled buffers: the retained DOM
// aliases the retained wire bytes, so moves must keep it valid, copies
// must re-derive it, and recycled buffers must never leak content
// between envelopes.
// ---------------------------------------------------------------------------

RoRequest sample_request(DeterministicRng& rng, const std::string& ro_id) {
  RoRequest req;
  req.device_id = "device-01";
  req.ri_id = "ri.example";
  req.ro_id = ro_id;
  req.device_nonce = rng.bytes(kNonceLen);
  req.signature = rng.bytes(128);
  return req;
}

TEST(EnvelopeSemantics, MoveKeepsParsedViewValid) {
  DeterministicRng rng(0xD1);
  RoRequest req = sample_request(rng, "ro:move");
  Envelope a = Envelope::wrap(req);
  const std::string wire = a.wire();
  Envelope b = std::move(a);
  EXPECT_TRUE(a.empty());
  EXPECT_THROW(a.doc(), Error);
  EXPECT_EQ(b.wire(), wire);
  EXPECT_EQ(b.open<RoRequest>(), req);
  Envelope c;
  c = std::move(b);
  EXPECT_EQ(c.open<RoRequest>(), req);
}

TEST(EnvelopeSemantics, CopyReparsesIndependently) {
  DeterministicRng rng(0xD2);
  RoRequest req = sample_request(rng, "ro:copy");
  Envelope a = Envelope::wrap(req);
  Envelope b = a;
  EXPECT_EQ(a.wire(), b.wire());
  // Destroying the original must not invalidate the copy's DOM.
  a = Envelope();
  EXPECT_EQ(b.open<RoRequest>(), req);
}

TEST(EnvelopeSemantics, RecycledBuffersDoNotLeakContent) {
  DeterministicRng rng(0xD3);
  // Churn envelopes through the pool with different payload sizes; each
  // must see exactly its own message.
  for (int i = 0; i < 100; ++i) {
    RoRequest req = sample_request(
        rng, "ro:churn-" + std::string(static_cast<std::size_t>(i % 7), 'x') +
                 std::to_string(i));
    Envelope env = Envelope::wrap(req);
    Envelope back = Envelope::from_wire(env.wire());
    ASSERT_EQ(back.open<RoRequest>(), req) << "iteration " << i;
  }
}

TEST(EnvelopeSemantics, WrapParsesItsOwnBytes) {
  // The invariant the transport relies on: an envelope's DOM is the
  // parse of its serialized bytes, so wrap() and from_wire() agree.
  DeterministicRng rng(0xD4);
  RoRequest req = sample_request(rng, "ro:inv");
  Envelope wrapped = Envelope::wrap(req);
  Envelope rewired = Envelope::from_wire(wrapped.wire());
  EXPECT_EQ(wrapped.type(), rewired.type());
  EXPECT_EQ(wrapped.doc().name(), rewired.doc().name());
  EXPECT_EQ(wrapped.open<RoRequest>(), rewired.open<RoRequest>());
}

}  // namespace
}  // namespace omadrm::roap
