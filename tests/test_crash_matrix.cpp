// Failpoint registry semantics + the crash-recovery matrix.
//
// The matrix is the tentpole robustness artifact: for EVERY store-layer
// failpoint site in the compiled-in catalog, fork a real FileStore/
// DrmAgent burn workload, arm a crash at that site, let the process die
// mid-operation (_exit, no flushing — the closest a test gets to pulling
// the plug), then reload the torn medium in the parent and prove the
// crash-safety contract held:
//
//   zero refunds   every grant the client OBSERVED is burned in storage
//                  (remaining <= budget - delivered);
//   at most one    at most one burn can be charged-but-undelivered (the
//   in flight      one whose commit the crash interrupted);
//   no rollback    the reload never reports kStoreRollback — a crash is
//                  not a replay attack.
//
// Sites are enumerated from failpoint::catalog(), so a new store I/O
// site added without a matrix entry fails the test instead of silently
// escaping coverage.
//
// The second half exercises the same contract end to end through the
// ri_server BINARY: spawn it with --store-dir and a crash armed via
// OMADRM_FAILPOINTS (inherited through exec — the env-arming path),
// drive real ROAP sessions at it until it dies with kCrashExitCode,
// restart it on the same directory, and require it to come back serving.
#include <gtest/gtest.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "agent/drm_agent.h"
#include "agent/sessions.h"
#include "ci/content_issuer.h"
#include "common/error.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "net/realm.h"
#include "net/socket_transport.h"
#include "pki/authority.h"
#include "provider/provider.h"
#include "ri/rights_issuer.h"
#include "roap/retry.h"
#include "store/file_store.h"
#include "store/group_commit_store.h"
#include "store/state_store.h"

namespace omadrm {
namespace {

using agent::AgentStatus;
using agent::DrmAgent;
using store::FileStore;

// ---------------------------------------------------------------------------
// Failpoint registry semantics
// ---------------------------------------------------------------------------

struct FailpointGuard {
  ~FailpointGuard() { failpoint::reset_all(); }
};

TEST(Failpoint, UnarmedSitesProceedForFree) {
  FailpointGuard guard;
  const auto a = failpoint::fire("nothing.armed.anywhere");
  EXPECT_EQ(a.op, failpoint::Op::kProceed);
  EXPECT_EQ(failpoint::check("nothing.armed.anywhere"), 0);
  // Dormant registry: hits are not even counted.
  EXPECT_EQ(failpoint::hits("nothing.armed.anywhere"), 0u);
}

TEST(Failpoint, ErrorOnceFiresExactlyOnceThenDisarms) {
  FailpointGuard guard;
  failpoint::arm("site.a", "error-once:ENOSPC");
  const auto first = failpoint::fire("site.a");
  EXPECT_EQ(first.op, failpoint::Op::kError);
  EXPECT_EQ(first.err, ENOSPC);
  EXPECT_EQ(failpoint::fire("site.a").op, failpoint::Op::kProceed);
  EXPECT_EQ(failpoint::fire("site.a").op, failpoint::Op::kProceed);
}

TEST(Failpoint, ErrorEveryNFiresPeriodically) {
  FailpointGuard guard;
  failpoint::arm("site.b", "error-every-3:EIO");
  int errors = 0;
  for (int i = 0; i < 9; ++i) {
    if (failpoint::fire("site.b").op == failpoint::Op::kError) ++errors;
  }
  EXPECT_EQ(errors, 3);
}

TEST(Failpoint, NthHitFiresExactlyTheNthHit) {
  FailpointGuard guard;
  failpoint::arm("site.c", "nth-hit-3");
  EXPECT_EQ(failpoint::fire("site.c").op, failpoint::Op::kProceed);
  EXPECT_EQ(failpoint::fire("site.c").op, failpoint::Op::kProceed);
  const auto third = failpoint::fire("site.c");
  EXPECT_EQ(third.op, failpoint::Op::kError);
  EXPECT_EQ(third.err, EIO);  // default errno
  EXPECT_EQ(failpoint::fire("site.c").op, failpoint::Op::kProceed);
}

TEST(Failpoint, HitCountersCountWhileAnySiteIsArmed) {
  FailpointGuard guard;
  failpoint::arm("site.armed", "error-once");
  (void)failpoint::fire("site.other");
  (void)failpoint::fire("site.other");
  EXPECT_EQ(failpoint::hits("site.other"), 2u);
}

TEST(Failpoint, OffDisarmsAndResetAllClears) {
  FailpointGuard guard;
  failpoint::arm("site.d", "error-every-1");
  EXPECT_EQ(failpoint::fire("site.d").op, failpoint::Op::kError);
  failpoint::arm("site.d", "off");
  EXPECT_EQ(failpoint::fire("site.d").op, failpoint::Op::kProceed);
  failpoint::reset_all();
  EXPECT_EQ(failpoint::hits("site.d"), 0u);
}

TEST(Failpoint, MultiSpecArmsEverySite) {
  FailpointGuard guard;
  failpoint::arm_from_spec(
      "site.x=error-once:EPIPE; site.y=error-every-2:ECONNRESET");
  const auto x = failpoint::fire("site.x");
  EXPECT_EQ(x.op, failpoint::Op::kError);
  EXPECT_EQ(x.err, EPIPE);
  EXPECT_EQ(failpoint::fire("site.y").op, failpoint::Op::kProceed);
  EXPECT_EQ(failpoint::fire("site.y").op, failpoint::Op::kError);
}

TEST(Failpoint, MalformedSpecsThrowFormat) {
  FailpointGuard guard;
  for (const char* bad :
       {"", "error-every-0", "error-every-x", "frobnicate", "crash-0",
        "error-once:EWHATEVER"}) {
    EXPECT_THROW(failpoint::arm("site.bad", bad), Error) << bad;
  }
  EXPECT_THROW(failpoint::arm_from_spec("no-equals-sign"), Error);
}

TEST(Failpoint, CatalogListsEveryStoreAndServerSite) {
  // The matrix below iterates this catalog; pin the sites the rest of
  // this PR wired in so a rename breaks loudly here, not silently there.
  std::vector<std::string> names;
  for (const auto& site : failpoint::catalog()) names.push_back(site.name);
  for (const char* expected :
       {"store.journal.write", "store.journal.fsync", "store.counter.pwrite",
        "store.counter.replace.rename", "store.snapshot.replace.rename",
        "store.compact.truncate", "store.load.open",
        "store.group_commit.commit", "net.server.send"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "catalog lost site " << expected;
  }
}

// ---------------------------------------------------------------------------
// Crash-recovery matrix over every store failpoint site
// ---------------------------------------------------------------------------

struct TempDir {
  std::filesystem::path path;

  explicit TempDir(const std::string& tag) {
    static int counter = 0;
    path = std::filesystem::temp_directory_path() /
           ("omadrm_crashmx_" + tag + "_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    std::filesystem::remove_all(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

constexpr std::uint64_t kNow = 1100000000;
const pki::Validity kValidity{kNow - 86400, kNow + 365 * 86400};
constexpr std::uint32_t kBudget = 30;

/// How to shape the workload so a given site is actually reached.
struct SiteWorkload {
  bool durable_fsync = false;  // fsync-tier sites need the durable path
  bool compact = false;        // tiny compact_after_bytes forces compaction
  bool group_commit = false;   // route commits through GroupCommitStore
  bool crash_on_reload = false;  // site fires in load(), not commit()
};

const std::map<std::string, SiteWorkload>& site_workloads() {
  static const std::map<std::string, SiteWorkload> m = {
      {"store.journal.write", {}},
      {"store.journal.fsync", {.durable_fsync = true}},
      {"store.counter.pwrite", {}},
      {"store.counter.replace.open", {.durable_fsync = true}},
      {"store.counter.replace.write", {.durable_fsync = true}},
      {"store.counter.replace.fsync", {.durable_fsync = true}},
      {"store.counter.replace.rename", {.durable_fsync = true}},
      {"store.snapshot.replace.open", {.compact = true}},
      {"store.snapshot.replace.write", {.compact = true}},
      {"store.snapshot.replace.fsync",
       {.durable_fsync = true, .compact = true}},
      {"store.snapshot.replace.rename", {.compact = true}},
      {"store.compact.truncate", {.compact = true}},
      {"store.compact.fsync", {.durable_fsync = true, .compact = true}},
      {"store.load.open", {.crash_on_reload = true}},
      {"store.group_commit.commit", {.group_commit = true}},
  };
  return m;
}

/// The matrix workload, one site per fork. Parent-side it builds the full
/// PKI + agent + store fixture and delivers two grants; the child then
/// arms a crash at `site` and keeps burning until the site kills it.
/// Every grant the (parent or child) client observes is reported through
/// `delivered`; the parent reloads the torn directory and checks the
/// contract.
void run_crash_site(const std::string& site, const SiteWorkload& w) {
  SCOPED_TRACE("site=" + site);
  TempDir dir(site);

  DeterministicRng rng(0x57E);
  pki::CertificationAuthority ca("CMLA Root", 1024, kValidity, rng);
  ci::ContentIssuer ci("content.example", provider::plain_provider(), rng);
  ri::RightsIssuer ri("ri.example", "http://ri.example/roap", ca, kValidity,
                      provider::plain_provider(), rng);
  DrmAgent device("device-01", ca.root_certificate(),
                  provider::plain_provider(), rng);
  device.provision(ca.issue("device-01", device.public_key(), kValidity, rng));
  roap::InProcessTransport tx(ri, kNow);

  Bytes content = rng.bytes(1500);
  dcf::Headers h;
  h.content_type = "audio/mpeg";
  h.content_id = "cid:crashmx@content.example";
  h.rights_issuer_url = ri.url();
  dcf::Dcf dcf = ci.package(h, content);
  ri::LicenseOffer offer;
  offer.ro_id = "ro:crashmx";
  offer.content_id = h.content_id;
  offer.dcf_hash = dcf.hash();
  rel::Permission play;
  play.type = rel::PermissionType::kPlay;
  play.constraint.count = kBudget;
  offer.permissions = {play};
  offer.kcek = *ci.kcek_for(h.content_id);
  ri.add_offer(offer);

  FileStore::Options opts;
  opts.durable_fsync = w.durable_fsync;
  if (w.compact) opts.compact_after_bytes = 1;  // compact after every commit
  FileStore fs(dir.str(), store::derive_storage_key(device.device_key()),
               opts);
  std::unique_ptr<store::GroupCommitStore> group;
  if (w.group_commit) {
    group = std::make_unique<store::GroupCommitStore>(fs);
    ASSERT_TRUE(device.bind_store(*group).ok());
  } else {
    ASSERT_TRUE(device.bind_store(fs).ok());
  }
  ASSERT_EQ(device.register_with(tx, kNow), AgentStatus::kOk);
  auto acq = device.acquire_ro(tx, "ri.example", "ro:crashmx", kNow);
  ASSERT_EQ(acq, AgentStatus::kOk);
  ASSERT_EQ(device.install_ro(*acq, kNow), AgentStatus::kOk);

  // Two grants delivered pre-fork, durably committed.
  std::size_t delivered = 0;
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(device.consume(dcf, rel::PermissionType::kPlay, kNow).status,
              AgentStatus::kOk);
    ++delivered;
  }

  int pipefd[2];
  ASSERT_EQ(::pipe(pipefd), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // --- child: no gtest machinery, communicate via pipe + exit code ---
    ::close(pipefd[0]);
    failpoint::arm(site, "crash");
    if (w.crash_on_reload) {
      // The load-path site can only fire in a fresh load of the medium.
      FileStore::Options ropts = opts;
      ropts.recover_torn_tail = true;
      FileStore fs2(dir.str(),
                    store::derive_storage_key(device.device_key()), ropts);
      (void)fs2.load();  // crash fires in here
      ::_exit(0);        // site never fired: parent fails the matrix
    }
    for (std::uint32_t i = 0; i < kBudget; ++i) {
      if (device.consume(dcf, rel::PermissionType::kPlay, kNow).status !=
          AgentStatus::kOk) {
        ::_exit(91);  // refused before the crash fired: unexpected
      }
      // The grant was observed AFTER the commit — exactly the client's
      // view. A crash inside the next consume's commit means this byte
      // was never written, which is what "undelivered" means.
      const char one = 1;
      if (::write(pipefd[1], &one, 1) != 1) ::_exit(92);
    }
    ::_exit(0);  // burned the whole budget without crashing
  }

  // --- parent ---
  ::close(pipefd[1]);
  char buf[64];
  ssize_t n;
  while ((n = ::read(pipefd[0], buf, sizeof buf)) > 0) {
    delivered += static_cast<std::size_t>(n);
  }
  ::close(pipefd[0]);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "child died by signal";
  ASSERT_EQ(WEXITSTATUS(status), failpoint::kCrashExitCode)
      << "the armed site was never reached by this workload shape";

  // Reload the torn medium. A crash mid-append may leave a torn trailing
  // frame; the owner-of-the-medium reboot policy drops it.
  FileStore::Options recover = opts;
  recover.recover_torn_tail = true;
  FileStore fs2(dir.str(), store::derive_storage_key(device.device_key()),
                recover);
  auto rebooted =
      DrmAgent::from_store(fs2, device.device_key(), ca.root_certificate(),
                           provider::plain_provider(), rng);
  ASSERT_NE(rebooted.code(), StatusCode::kStoreRollback)
      << "crash misread as a rollback attack: " << rebooted.describe();
  ASSERT_TRUE(rebooted.ok()) << rebooted.describe();

  const auto remaining =
      rebooted->remaining_count("ro:crashmx", rel::PermissionType::kPlay);
  ASSERT_TRUE(remaining.has_value());
  // Zero refunds: every observed grant is burned on the medium.
  EXPECT_LE(*remaining, kBudget - delivered)
      << "a delivered grant was refunded by the crash";
  // Conservative by at most the single in-flight burn the crash cut.
  EXPECT_GE(*remaining + delivered + 1, kBudget)
      << "more than one undelivered grant was charged";
}

TEST(CrashMatrix, EveryStoreSiteRecoversWithZeroRefunds) {
  std::size_t covered = 0;
  for (const auto& site : failpoint::catalog()) {
    const auto it = site_workloads().find(site.name);
    if (it == site_workloads().end()) {
      // Only non-store sites may be absent from the matrix.
      EXPECT_EQ(std::string(site.name).rfind("store.", 0), std::string::npos)
          << "store site " << site.name << " has no crash-matrix workload";
      continue;
    }
    run_crash_site(it->first, it->second);
    if (HasFatalFailure()) return;
    ++covered;
  }
  EXPECT_EQ(covered, site_workloads().size());
}

// ---------------------------------------------------------------------------
// The same contract through the ri_server binary (env-armed failpoints)
// ---------------------------------------------------------------------------

const char* server_binary() {
  const char* env = ::getenv("RI_SERVER_BIN");
  return env != nullptr ? env : "./ri_server";  // ctest runs in build dir
}

struct ServerProc {
  pid_t pid = -1;
  std::uint16_t port = 0;

  ~ServerProc() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      int status = 0;
      (void)::waitpid(pid, &status, 0);
    }
  }

  /// Blocks until the child exits; returns its wait status.
  int wait() {
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid) return -1;
    pid = -1;
    return status;
  }
};

/// fork+exec ri_server; OMADRM_FAILPOINTS crosses the exec boundary via
/// the environment (the static-init arming path under test). Returns a
/// running server whose LISTENING line has been parsed, or pid == -1.
ServerProc spawn_server(const std::vector<std::string>& extra_args,
                        const std::string& failpoints) {
  ServerProc proc;
  int out[2];
  if (::pipe(out) != 0) return proc;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(out[0]);
    ::close(out[1]);
    return proc;
  }
  if (pid == 0) {
    ::close(out[0]);
    ::dup2(out[1], STDOUT_FILENO);
    ::close(out[1]);
    if (!failpoints.empty()) {
      ::setenv("OMADRM_FAILPOINTS", failpoints.c_str(), 1);
    } else {
      ::unsetenv("OMADRM_FAILPOINTS");
    }
    std::vector<std::string> args = {server_binary(), "--port", "0",
                                     "--workers", "2"};
    args.insert(args.end(), extra_args.begin(), extra_args.end());
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }
  ::close(out[1]);
  // Read "LISTENING <port>\n".
  std::string line;
  char c;
  while (line.size() < 64 && ::read(out[0], &c, 1) == 1 && c != '\n') {
    line.push_back(c);
  }
  ::close(out[0]);
  if (line.rfind("LISTENING ", 0) == 0) {
    proc.pid = pid;
    proc.port = static_cast<std::uint16_t>(std::atoi(line.c_str() + 10));
  } else {
    ::kill(pid, SIGKILL);
    int status = 0;
    (void)::waitpid(pid, &status, 0);
  }
  return proc;
}

TEST(CrashMatrix, RiServerSurvivesMidCommitCrashAndRestartsServing) {
  if (::access(server_binary(), X_OK) != 0) {
    GTEST_SKIP() << "ri_server binary not found at " << server_binary();
  }
  TempDir dir("riserver");

  // Phase 1: a server whose 3rd journal append dies mid-write. The store
  // only commits on state-mutating exchanges, so a couple of sessions
  // reach the armed site quickly.
  ServerProc crashing = spawn_server(
      {"--store-dir", dir.str()}, "store.journal.write=crash-3");
  ASSERT_GT(crashing.pid, 0) << "server with crash armed failed to start";

  net::Realm realm;  // default seed matches the server's default --seed
  roap::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.deadline_ms = 4000;
  int ok_sessions = 0;
  for (int i = 0; i < 8; ++i) {
    auto dev = realm.make_agent("dev:crash-" + std::to_string(i));
    net::SocketTransport::Config tc;
    tc.port = crashing.port;
    tc.connect_timeout_ms = 1000;
    tc.read_timeout_ms = 1000;
    net::SocketTransport t(tc);
    DeterministicRng rng(0xCA11 + i);
    roap::ReliableTransport reliable(t, policy, rng);
    try {
      if (dev->register_with(reliable, net::kRealmNow, policy).ok()) {
        ++ok_sessions;
        continue;
      }
    } catch (const Error&) {
      // transport loss: the server just died mid-commit
    }
    break;
  }
  const int status = crashing.wait();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), failpoint::kCrashExitCode)
      << "server exited " << WEXITSTATUS(status)
      << " instead of crashing at the armed site (ok_sessions="
      << ok_sessions << ")";

  // Phase 2: restart on the torn directory, nothing armed. It must come
  // back LISTENING (recover_torn_tail reboot policy) and serve sessions.
  ServerProc recovered = spawn_server({"--store-dir", dir.str()}, "");
  ASSERT_GT(recovered.pid, 0)
      << "server failed to restart on the post-crash store";
  auto dev = realm.make_agent("dev:post-crash");
  net::SocketTransport::Config tc;
  tc.port = recovered.port;
  net::SocketTransport t(tc);
  DeterministicRng rng(0xCA11 + 99);
  roap::ReliableTransport reliable(t, policy, rng);
  ASSERT_TRUE(dev->register_with(reliable, net::kRealmNow, policy).ok());
  ASSERT_TRUE(dev->acquire_ro(reliable, net::kRealmRiId, net::kRealmRoId,
                              net::kRealmNow, policy)
                  .ok());
}

}  // namespace
}  // namespace omadrm
