// Network stack tests: frame codec hostility, socket transport failure
// mapping, RiServer lifecycle under concurrent clients, and the overload
// machinery — load shedding, slow-reader/slow-loris disconnects, and the
// busy-frame contract — plus EINTR-resilience of the socket helpers.
#include <gtest/gtest.h>

#include <csignal>
#include <poll.h>
#include <pthread.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#ifdef __linux__
#include <dirent.h>
#endif

#include "agent/drm_agent.h"
#include "common/error.h"
#include "common/random.h"
#include "net/concurrent_issuer.h"
#include "net/frame.h"
#include "net/realm.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/socket_transport.h"
#include "roap/retry.h"
#include "roap/transport.h"

namespace omadrm::net {
namespace {

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

std::string encoded(std::uint8_t type, std::string_view payload,
                    bool with_crc = true) {
  std::string out;
  encode_frame(type, payload, out, with_crc);
  return out;
}

TEST(Frame, RoundTripWithAndWithoutCrc) {
  for (bool crc : {true, false}) {
    FrameDecoder dec;
    dec.feed(encoded(3, "hello world", crc));
    auto f = dec.next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->type, 3);
    EXPECT_EQ(f->crc, crc);
    EXPECT_EQ(f->payload, "hello world");
    EXPECT_FALSE(dec.next().has_value());
    EXPECT_EQ(dec.buffered(), 0u);
  }
}

TEST(Frame, EmptyPayloadRoundTrips) {
  FrameDecoder dec;
  dec.feed(encoded(7, ""));
  auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, 7);
  EXPECT_TRUE(f->payload.empty());
}

// Every strict prefix of a valid frame must yield "incomplete" — never a
// frame, never a format error. This is the truncation sweep at every
// byte offset the wire can cut a frame at.
TEST(Frame, TruncationAtEveryOffsetIsIncompleteNotError) {
  const std::string wire = encoded(2, "truncate me anywhere", true);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder dec;
    dec.feed(std::string_view(wire).substr(0, cut));
    std::optional<Frame> f;
    EXPECT_NO_THROW(f = dec.next()) << "cut at offset " << cut;
    EXPECT_FALSE(f.has_value()) << "cut at offset " << cut;
    // The remainder completes the frame: no state was corrupted.
    dec.feed(std::string_view(wire).substr(cut));
    auto whole = dec.next();
    ASSERT_TRUE(whole.has_value()) << "cut at offset " << cut;
    EXPECT_EQ(whole->payload, "truncate me anywhere");
  }
}

TEST(Frame, OneByteAtATimeDelivery) {
  const std::string wire =
      encoded(1, "first", true) + encoded(2, "second", false);
  FrameDecoder dec;
  std::vector<Frame> got;
  for (char c : wire) {
    dec.feed(std::string_view(&c, 1));
    while (auto f = dec.next()) got.push_back(std::move(*f));
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].type, 1);
  EXPECT_EQ(got[0].payload, "first");
  EXPECT_EQ(got[1].type, 2);
  EXPECT_EQ(got[1].payload, "second");
}

TEST(Frame, BadMagicRejectedAtFirstByte) {
  FrameDecoder dec;
  dec.feed("X");  // not 0x4F
  EXPECT_THROW(dec.next(), Error);
}

TEST(Frame, BadSecondMagicRejectedAtSecondByte) {
  FrameDecoder dec;
  dec.feed("O!");
  EXPECT_THROW(dec.next(), Error);
}

TEST(Frame, UnknownVersionRejected) {
  std::string wire = encoded(1, "x");
  wire[2] = 99;
  FrameDecoder dec;
  dec.feed(wire);
  EXPECT_THROW(dec.next(), Error);
}

TEST(Frame, UnknownFlagsRejected) {
  std::string wire = encoded(1, "x");
  wire[4] = static_cast<char>(0x80);
  FrameDecoder dec;
  dec.feed(wire);
  EXPECT_THROW(dec.next(), Error);
}

// An announced length over the cap is rejected from the header alone —
// before any payload is buffered.
TEST(Frame, OversizedLengthRejectedFromHeaderAlone) {
  std::string wire = encoded(1, "small");
  wire[5] = 0x7F;  // length := 0x7Fxxxxxx, far over any cap
  FrameDecoder dec(/*max_payload=*/1024);
  dec.feed(wire.substr(0, kFrameHeaderSize));  // header only, no payload
  EXPECT_THROW(dec.next(), Error);
}

TEST(Frame, LengthExactlyAtCapAccepted) {
  const std::string payload(64, 'p');
  FrameDecoder dec(/*max_payload=*/64);
  dec.feed(encoded(1, payload));
  auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->payload.size(), 64u);
}

TEST(Frame, CrcMismatchRejected) {
  std::string wire = encoded(1, "checksummed");
  wire[kFrameHeaderSize] ^= 0x01;  // flip one payload bit
  FrameDecoder dec;
  dec.feed(wire);
  EXPECT_THROW(dec.next(), Error);
}

// Any single-bit flip anywhere in a CRC'd frame must be detected: the
// decoder either throws (magic/version/flags/length/CRC) or — never —
// silently returns the original frame.
TEST(Frame, EverysingleBitFlipIsDetected) {
  const std::string wire = encoded(9, "integrity sweep", true);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mangled = wire;
      mangled[i] = static_cast<char>(mangled[i] ^ (1 << bit));
      FrameDecoder dec;
      dec.feed(mangled);
      bool detected = false;
      try {
        auto f = dec.next();
        // A length-shrinking flip can leave a partial frame: incomplete
        // counts as detected (the stream stalls instead of lying). The
        // one flip that can hand back the intact payload is stripping
        // the CRC flag — which then strands the orphaned trailer in the
        // buffer, desynchronizing the stream: residue is detection too.
        detected = !f.has_value() || f->type != 9 ||
                   f->payload != "integrity sweep" || dec.buffered() != 0;
      } catch (const Error&) {
        detected = true;
      }
      EXPECT_TRUE(detected) << "undetected flip at byte " << i << " bit "
                            << bit;
    }
  }
}

TEST(Frame, GarbageAfterValidFrameRejected) {
  FrameDecoder dec;
  dec.feed(encoded(1, "fine"));
  dec.feed("this is not a frame header");
  auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->payload, "fine");
  EXPECT_THROW(dec.next(), Error);
}

TEST(Frame, ResetDropsBufferedBytes) {
  FrameDecoder dec;
  dec.feed("garbage");
  dec.reset();
  EXPECT_EQ(dec.buffered(), 0u);
  dec.feed(encoded(1, "clean"));
  auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->payload, "clean");
}

TEST(Frame, LongStreamCompactionKeepsDecoding) {
  // Enough frames to trip the consumed-prefix compaction repeatedly.
  FrameDecoder dec;
  const std::string one = encoded(1, std::string(700, 'z'));
  std::size_t got = 0;
  for (int i = 0; i < 64; ++i) {
    dec.feed(one);
    while (dec.next()) ++got;
  }
  EXPECT_EQ(got, 64u);
}

// ---------------------------------------------------------------------------
// Shared realm + server harness
// ---------------------------------------------------------------------------

Realm& shared_realm() {
  static Realm realm(0xC0FFEE);
  return realm;
}

struct ServerHarness {
  explicit ServerHarness(RiServer::Config config = {}) : issuer(shared_realm().issuer()) {
    config.now = kRealmNow;
    server = std::make_unique<RiServer>(issuer, config);
    server->start();
  }
  SocketTransport::Config client_config() const {
    SocketTransport::Config tc;
    tc.port = server->port();
    return tc;
  }
  ConcurrentIssuer issuer;
  std::unique_ptr<RiServer> server;
};

// ---------------------------------------------------------------------------
// SocketTransport failure mapping
// ---------------------------------------------------------------------------

TEST(SocketTransport, ConnectRefusedThrowsTransport) {
  // Grab an ephemeral port, then close it: connecting must be refused.
  std::uint16_t port = 0;
  { Socket l = listen_tcp("127.0.0.1", 0, 1, &port); }
  SocketTransport::Config tc;
  tc.port = port;
  tc.connect_timeout_ms = 500;
  SocketTransport t(tc);
  try {
    (void)t.request_raw("x");
    FAIL() << "expected kTransport";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kTransport);
  }
  EXPECT_EQ(t.stats().transport_errors, 1u);
  EXPECT_FALSE(t.connected());
}

TEST(SocketTransport, SilentPeerTimesOutAsTransport) {
  // A listener that accepts but never replies: the read deadline must
  // fire and surface as a retriable transport loss.
  std::uint16_t port = 0;
  Socket listener = listen_tcp("127.0.0.1", 0, 4, &port);
  SocketTransport::Config tc;
  tc.port = port;
  tc.read_timeout_ms = 150;
  SocketTransport t(tc);
  const std::uint64_t t0 = steady_ms();
  try {
    (void)t.request_raw("anyone home?");
    FAIL() << "expected kTransport";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kTransport);
  }
  EXPECT_GE(steady_ms() - t0, 100u);  // it waited, not failed instantly
  EXPECT_FALSE(t.connected());        // poisoned connection was dropped
}

TEST(SocketTransport, ServerRefusalFrameThrowsTransportAndRecovers) {
  ServerHarness h;
  SocketTransport t(h.client_config());
  // Raw garbage parses as no ROAP document server-side: the worker
  // answers with an error frame, which the client maps to a retriable
  // refusal.
  try {
    (void)t.request_raw("<not-roap/>");
    FAIL() << "expected kTransport";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kTransport);
  }
  EXPECT_EQ(t.stats().server_refusals, 1u);
  // The next honest exchange reconnects and succeeds end to end.
  auto dev = shared_realm().make_agent("dev:refusal-recovery");
  roap::RetryPolicy policy;
  ASSERT_TRUE(dev->register_with(t, kRealmNow, policy).ok());
  EXPECT_GE(t.stats().reconnects, 1u);
}

TEST(SocketTransport, FrameDesyncBytesFromRawSocketGetErrorFrame) {
  ServerHarness h;
  // Speak raw TCP, violating the framing itself (bad magic): the server
  // must answer with an error frame and close.
  Socket s = connect_tcp("127.0.0.1", h.server->port(), 1000);
  send_all(s.fd(), "garbage that is not a frame", 1000);
  FrameDecoder dec;
  char buf[4096];
  std::optional<Frame> reply;
  const std::uint64_t deadline = steady_ms() + 2000;
  while (!reply.has_value()) {
    const std::size_t n = recv_some_until(s.fd(), buf, sizeof buf, deadline);
    ASSERT_GT(n, 0u) << "server closed before sending the error frame";
    dec.feed(std::string_view(buf, n));
    reply = dec.next();
  }
  EXPECT_EQ(reply->type, kErrorFrameType);
  // ...and then the connection is closed (EOF, not a hang).
  EXPECT_EQ(recv_some_until(s.fd(), buf, sizeof buf, steady_ms() + 2000), 0u);
  EXPECT_EQ(h.server->stats().frame_desyncs.load(), 1u);
}

TEST(SocketTransport, FaultyTransportComposesOverSockets) {
  ServerHarness h;
  SocketTransport sock(h.client_config());
  DeterministicRng rng(0xFA11);
  roap::FaultyTransport faulty(sock, rng);
  auto dev = shared_realm().make_agent("dev:faulty-socket");
  roap::RetryPolicy policy;

  // Corrupt-request fault: the mangled bytes cross the wire, the server
  // refuses them, and the retry driver resends — the session still lands.
  faulty.inject(roap::FaultyTransport::Fault::kCorruptRequest);
  ASSERT_TRUE(dev->register_with(faulty, kRealmNow, policy).ok());
  EXPECT_EQ(faulty.stats().corrupted, 1u);
  EXPECT_GE(sock.stats().server_refusals + sock.stats().transport_errors, 1u);

  // Drop faults behave identically to the in-process decorator.
  faulty.inject(roap::FaultyTransport::Fault::kDropResponse);
  ASSERT_TRUE(dev->acquire_ro(faulty, kRealmRiId, kRealmRoId, kRealmNow,
                              policy)
                  .ok());
}

// ---------------------------------------------------------------------------
// Server lifecycle
// ---------------------------------------------------------------------------

#ifdef __linux__
std::size_t open_fd_count() {
  std::size_t n = 0;
  DIR* d = ::opendir("/proc/self/fd");
  if (!d) return 0;
  while (::readdir(d) != nullptr) ++n;
  ::closedir(d);
  return n;
}
#endif

void run_concurrent_fleet(bool use_epoll) {
  RiServer::Config sc;
  sc.use_epoll = use_epoll;
  sc.workers = 3;
  ServerHarness h(sc);

  constexpr std::size_t kAgents = 8;
  constexpr std::size_t kAcqs = 3;
  std::vector<std::unique_ptr<agent::DrmAgent>> agents;
  for (std::size_t i = 0; i < kAgents; ++i) {
    agents.push_back(shared_realm().make_agent(
        "dev:life-" + std::string(use_epoll ? "e" : "p") + std::to_string(i)));
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kAgents; ++i) {
    threads.emplace_back([&, i] {
      SocketTransport t(h.client_config());
      roap::RetryPolicy policy;
      DeterministicRng rng(0x11fe + i);
      roap::ReliableTransport reliable(t, policy, rng);
      if (!agents[i]->register_with(reliable, kRealmNow, policy).ok()) {
        ++failures;
        return;
      }
      for (std::size_t a = 0; a < kAcqs; ++a) {
        if (!agents[i]
                 ->acquire_ro(reliable, kRealmRiId, kRealmRoId, kRealmNow,
                              policy)
                 .ok()) {
          ++failures;
          return;
        }
      }
      if (t.stats().transport_errors != 0) ++failures;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  const std::uint64_t served = h.server->stats().served.load();
  EXPECT_GE(served, kAgents * (2 + kAcqs));  // 2 frames per registration
  EXPECT_EQ(h.server->stats().refusals.load(), 0u);
  EXPECT_EQ(h.server->stats().frame_desyncs.load(), 0u);

  h.server->stop();
  EXPECT_FALSE(h.server->running());
  EXPECT_EQ(h.server->active_connections(), 0u);
}

TEST(RiServer, ConcurrentFleetEpoll) { run_concurrent_fleet(true); }
TEST(RiServer, ConcurrentFleetPollFallback) { run_concurrent_fleet(false); }

TEST(RiServer, GracefulStopIsIdempotentAndPortIsReusable) {
#ifdef __linux__
  const std::size_t fds_before = open_fd_count();
#endif
  std::uint16_t port = 0;
  {
    ServerHarness h;
    port = h.server->port();
    SocketTransport t(h.client_config());
    auto dev = shared_realm().make_agent("dev:restart");
    roap::RetryPolicy policy;
    ASSERT_TRUE(dev->register_with(t, kRealmNow, policy).ok());
    h.server->stop();
    h.server->stop();  // idempotent
    EXPECT_FALSE(h.server->running());

    // Same port is immediately reusable (SO_REUSEADDR + clean close).
    ConcurrentIssuer issuer2(shared_realm().issuer());
    RiServer::Config sc;
    sc.port = port;
    sc.now = kRealmNow;
    RiServer second(issuer2, sc);
    second.start();
    EXPECT_EQ(second.port(), port);
    SocketTransport t2(t.config());
    ASSERT_TRUE(dev->register_with(t2, kRealmNow, policy).ok());
    second.stop();
  }
#ifdef __linux__
  EXPECT_EQ(open_fd_count(), fds_before) << "server leaked descriptors";
#endif
}

TEST(RiServer, IdleConnectionsAreSwept) {
  RiServer::Config sc;
  sc.idle_timeout_ms = 150;
  ServerHarness h(sc);
  Socket s = connect_tcp("127.0.0.1", h.server->port(), 1000);
  // Never send anything: the sweep must cut us loose.
  char buf[16];
  const std::size_t n =
      recv_some_until(s.fd(), buf, sizeof buf, steady_ms() + 3000);
  EXPECT_EQ(n, 0u);  // orderly EOF from the idle sweep
  EXPECT_GE(h.server->stats().idle_closed.load(), 1u);
}

TEST(RiServer, OverCapacityConnectionsAreRejected) {
  RiServer::Config sc;
  sc.max_connections = 2;
  ServerHarness h(sc);
  Socket a = connect_tcp("127.0.0.1", h.server->port(), 1000);
  Socket b = connect_tcp("127.0.0.1", h.server->port(), 1000);
  // Give the acceptor a beat to register both.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Socket c = connect_tcp("127.0.0.1", h.server->port(), 1000);
  char buf[16];
  // The third connection is accepted by the kernel then closed by the
  // server: the next read sees EOF.
  EXPECT_EQ(recv_some_until(c.fd(), buf, sizeof buf, steady_ms() + 2000), 0u);
  EXPECT_GE(h.server->stats().rejected.load(), 1u);
}

// ---------------------------------------------------------------------------
// Overload protection: shedding, slow readers, slow loris, busy frames
// ---------------------------------------------------------------------------

TEST(RiServer, FloodedQueueShedsWithBusyFramesAndRecovers) {
  RiServer::Config sc;
  sc.workers = 1;
  sc.max_queue_depth = 4;
  sc.max_inflight_per_conn = 0;  // isolate queue-depth shedding
  ServerHarness h(sc);

  // One burst of 64 pipelined frames in a single send. The event loop
  // decodes them in one pass; at most a handful fit the depth-4 queue,
  // the rest MUST come back as busy frames — never buffered, never OOM.
  constexpr std::size_t kFrames = 64;
  Socket s = connect_tcp("127.0.0.1", h.server->port(), 1000);
  std::string burst;
  for (std::size_t i = 0; i < kFrames; ++i) {
    encode_frame(1, "<flood/>", burst);
  }
  send_all(s.fd(), burst, 2000);

  // Exactly one reply per request frame: busy (shed) or error (the
  // worker's refusal of the unparseable document). Nothing is dropped.
  FrameDecoder dec;
  std::size_t busy = 0, error = 0;
  char buf[16 * 1024];
  const std::uint64_t deadline = steady_ms() + 5000;
  while (busy + error < kFrames) {
    const std::size_t n = recv_some_until(s.fd(), buf, sizeof buf, deadline);
    ASSERT_GT(n, 0u) << "server closed mid-flood after " << (busy + error)
                     << " replies";
    dec.feed(std::string_view(buf, n));
    while (auto f = dec.next()) {
      if (f->type == kBusyFrameType) {
        ++busy;
      } else {
        EXPECT_EQ(f->type, kErrorFrameType);
        ++error;
      }
    }
  }
  EXPECT_GT(busy, 0u) << "a depth-4 queue absorbed a 64-frame burst?";
  EXPECT_EQ(h.server->stats().shed.load(), busy);
  EXPECT_EQ(h.server->stats().frames_in.load(), kFrames);
  EXPECT_EQ(h.server->stats().refusals.load(), error);

  // Shed is stateless: the same server immediately serves honest
  // traffic once the burst passes.
  SocketTransport t(h.client_config());
  auto dev = shared_realm().make_agent("dev:after-flood");
  roap::RetryPolicy policy;
  ASSERT_TRUE(dev->register_with(t, kRealmNow, policy).ok());
}

TEST(RiServer, InflightCapShedsPipeliningConnection) {
  RiServer::Config sc;
  sc.workers = 1;
  sc.max_queue_depth = 0;         // unbounded queue: isolate the conn cap
  sc.max_inflight_per_conn = 2;
  ServerHarness h(sc);

  constexpr std::size_t kFrames = 32;
  Socket s = connect_tcp("127.0.0.1", h.server->port(), 1000);
  std::string burst;
  for (std::size_t i = 0; i < kFrames; ++i) {
    encode_frame(1, "<pipeline/>", burst);
  }
  send_all(s.fd(), burst, 2000);

  FrameDecoder dec;
  std::size_t replies = 0, busy = 0;
  char buf[16 * 1024];
  const std::uint64_t deadline = steady_ms() + 5000;
  while (replies < kFrames) {
    const std::size_t n = recv_some_until(s.fd(), buf, sizeof buf, deadline);
    ASSERT_GT(n, 0u);
    dec.feed(std::string_view(buf, n));
    while (auto f = dec.next()) {
      ++replies;
      if (f->type == kBusyFrameType) ++busy;
    }
  }
  EXPECT_GT(busy, 0u) << "inflight cap 2 absorbed a 32-frame pipeline?";
  EXPECT_EQ(h.server->stats().shed.load(), busy);
}

TEST(RiServer, SlowReaderTripsOutboxCapAndIsDisconnected) {
  RiServer::Config sc;
  sc.workers = 2;
  // Pathologically tiny cap: the FIRST undrained reply already exceeds
  // it, making the trip deterministic instead of racing the flush.
  sc.max_outbox_bytes = 16;
  ServerHarness h(sc);

  Socket s = connect_tcp("127.0.0.1", h.server->port(), 1000);
  std::string one;
  encode_frame(1, "<slow-reader/>", one);
  send_all(s.fd(), one, 1000);

  // The reply (~60 bytes) lands in the outbox, blows the cap at deliver
  // time, and the event loop closes us: EOF, not a reply.
  char buf[4096];
  EXPECT_EQ(recv_some_until(s.fd(), buf, sizeof buf, steady_ms() + 3000), 0u);
  EXPECT_EQ(h.server->stats().slow_reader_closed.load(), 1u);
}

TEST(RiServer, SlowLorisPartialFrameIsClosedOnReadProgressTimeout) {
  RiServer::Config sc;
  sc.read_progress_timeout_ms = 100;
  sc.idle_timeout_ms = 60000;  // far away: the stall closes us, not idleness
  ServerHarness h(sc);

  Socket s = connect_tcp("127.0.0.1", h.server->port(), 1000);
  send_all(s.fd(), "OD", 1000);  // valid magic, then... nothing
  char buf[16];
  EXPECT_EQ(recv_some_until(s.fd(), buf, sizeof buf, steady_ms() + 3000), 0u);
  EXPECT_GE(h.server->stats().stalled_closed.load(), 1u);
  EXPECT_EQ(h.server->stats().idle_closed.load(), 0u);
}

TEST(SocketTransport, BusyFrameThrowsKBusyAndKeepsTheConnection) {
  // A hand-rolled peer that answers every frame with kBusyFrameType,
  // deterministically — no queue race needed to observe the contract.
  std::uint16_t port = 0;
  Socket listener = listen_tcp("127.0.0.1", 0, 4, &port);
  std::thread peer([&] {
    pollfd pfd{listener.fd(), POLLIN, 0};
    if (::poll(&pfd, 1, 5000) <= 0) return;
    Socket conn(::accept(listener.fd(), nullptr, nullptr));
    if (!conn.valid()) return;
    FrameDecoder dec;
    char buf[4096];
    std::size_t answered = 0;
    const std::uint64_t deadline = steady_ms() + 5000;
    while (answered < 2) {
      std::size_t n = 0;
      try {
        n = recv_some_until(conn.fd(), buf, sizeof buf, deadline);
      } catch (const Error&) {
        return;
      }
      if (n == 0) return;
      dec.feed(std::string_view(buf, n));
      while (auto f = dec.next()) {
        std::string out;
        encode_frame(kBusyFrameType, "server busy: test peer", out, f->crc);
        send_all(conn.fd(), out, 1000);
        ++answered;
      }
    }
  });

  SocketTransport::Config tc;
  tc.port = port;
  SocketTransport t(tc);
  for (int i = 0; i < 2; ++i) {
    try {
      (void)t.request_raw("<x/>");
      FAIL() << "expected kBusy";
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kBusy);
    }
    // The stream answered in lockstep: the connection survives a shed
    // and the backed-off resend reuses it instead of reconnecting.
    EXPECT_TRUE(t.connected());
  }
  EXPECT_EQ(t.stats().server_busy, 2u);
  EXPECT_EQ(t.stats().connects, 1u);
  EXPECT_EQ(t.stats().reconnects, 0u);
  peer.join();
}

// ---------------------------------------------------------------------------
// EINTR resilience: the socket helpers under a signal storm
// ---------------------------------------------------------------------------

TEST(Socket, TransfersSurviveAnEintrSignalStorm) {
  // A no-op handler installed WITHOUT SA_RESTART: every blocking syscall
  // on the pounded thread really returns EINTR instead of restarting.
  // The connect/send/recv/poll loops must absorb all of it.
  struct sigaction sa {};
  sa.sa_handler = [](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  struct sigaction old {};
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  ServerHarness h;
  std::atomic<bool> stop{false};
  const pthread_t victim = ::pthread_self();
  std::thread pounder([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      ::pthread_kill(victim, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  SocketTransport::Config tc = h.client_config();
  tc.read_timeout_ms = 10000;
  tc.write_timeout_ms = 10000;
  SocketTransport t(tc);
  // Large unparseable payloads force multi-chunk sends and reads under
  // the storm; the server refuses each one (kTransport), which also
  // exercises connect_tcp on every reconnect.
  const std::string big(600 * 1024, 'x');
  for (int i = 0; i < 4; ++i) {
    try {
      (void)t.request_raw(big);
      FAIL() << "expected a refusal";
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kTransport) << e.what();
    }
  }
  // And an honest multi-pass session lands under the same storm.
  auto dev = shared_realm().make_agent("dev:eintr-storm");
  roap::RetryPolicy policy;
  EXPECT_TRUE(dev->register_with(t, kRealmNow, policy).ok());

  stop.store(true);
  pounder.join();
  ASSERT_EQ(::sigaction(SIGUSR1, &old, nullptr), 0);
}

TEST(ConcurrentIssuer, CountsExchangesAndSurvivesHammering) {
  ConcurrentIssuer issuer(shared_realm().issuer());
  ServerHarness* h = nullptr;  // not needed; hammer the wrapper directly
  (void)h;
  auto dev = shared_realm().make_agent("dev:hammer");
  roap::InProcessTransport loop(shared_realm().issuer(), kRealmNow);
  roap::RetryPolicy policy;
  ASSERT_TRUE(dev->register_with(loop, kRealmNow, policy).ok());
  const auto before = issuer.stats().exchanges;
  std::vector<std::thread> threads;
  std::atomic<int> refused{0};
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      for (int k = 0; k < 8; ++k) {
        // Unparseable content must come back as a thrown refusal, and the
        // lock must serialize all of it without tearing RI state.
        try {
          (void)issuer.handle(roap::Envelope::from_wire(
                                  "<roap:roResponse xmlns:roap=\"x\"/>"),
                              kRealmNow);
        } catch (const Error&) {
          ++refused;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(issuer.stats().exchanges - before, 32u);
  // The RI behind the wrapper still serves honest traffic.
  ASSERT_TRUE(dev->acquire_ro(loop, kRealmRiId, kRealmRoId, kRealmNow,
                              policy)
                  .ok());
}

TEST(ConcurrentIssuer, StatsBlockFormatsIssuerAndPerShardLines) {
  // The format `ri_server --stats` prints: one aggregate line, then one
  // line per shard that actually saw traffic (idle shards elided). A
  // private realm keeps the shard population deterministic: one device
  // registers, so exactly one shard line must appear.
  Realm realm(0xFACE);
  ConcurrentIssuer issuer(realm.issuer());
  auto dev = realm.make_agent("dev:stats-format");
  roap::InProcessTransport loop(realm.issuer(), kRealmNow);
  roap::RetryPolicy policy;
  ASSERT_TRUE(dev->register_with(loop, kRealmNow, policy).ok());

  const std::string block = format_issuer_stats(issuer);
  // Aggregate header with every counter the ops runbook greps for.
  EXPECT_EQ(block.rfind("issuer: exchanges=", 0), 0u) << block;
  for (const char* field :
       {" contended=", " replay_hits=", " replay_misses=", " hit_rate="}) {
    EXPECT_NE(block.find(field), std::string::npos) << block;
  }
  // One device → one active shard, formatted shard[NN]: with the same
  // fields; the other kShardCount-1 idle shards are elided.
  const auto shard_at = block.find("shard[");
  ASSERT_NE(shard_at, std::string::npos) << block;
  EXPECT_NE(block.find("]: exchanges=", shard_at), std::string::npos) << block;
  EXPECT_NE(block.find("hit_rate=", shard_at), std::string::npos) << block;
  std::size_t shard_lines = 0;
  for (auto at = shard_at; at != std::string::npos;
       at = block.find("shard[", at + 1)) {
    ++shard_lines;
  }
  EXPECT_EQ(shard_lines, 1u);
  EXPECT_EQ(block.back(), '\n');
}

}  // namespace
}  // namespace omadrm::net
