// End-to-end integration tests: CA + Content Issuer + Rights Issuer +
// DRM Agent running the complete OMA DRM 2 consumption process, plus
// failure injection at each trust boundary.
#include <gtest/gtest.h>

#include "agent/drm_agent.h"
#include "ci/content_issuer.h"
#include "common/error.h"
#include "common/random.h"
#include "pki/authority.h"
#include "provider/provider.h"
#include "ri/rights_issuer.h"
#include "roap/envelope.h"
#include "roap/transport.h"

namespace omadrm {
namespace {

using agent::AgentStatus;
using agent::DrmAgent;

constexpr std::uint64_t kNow = 1100000000;
const pki::Validity kValidity{kNow - 86400, kNow + 365 * 86400};

/// Expensive fixtures (three RSA-1024 key generations) shared by the whole
/// suite; per-test state (offers, registrations) is layered on top.
class DrmEcosystem : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<DeterministicRng>(0xEC0);
    ca_ = std::make_unique<pki::CertificationAuthority>("CMLA Root", 1024,
                                                        kValidity, *rng_);
    ci_ = std::make_unique<ci::ContentIssuer>("content.example",
                                              provider::plain_provider(),
                                              *rng_);
    ri_ = std::make_unique<ri::RightsIssuer>(
        "ri.example", "http://ri.example/roap", *ca_, kValidity,
        provider::plain_provider(), *rng_);
    device_ = std::make_unique<DrmAgent>("device-01", ca_->root_certificate(),
                                         provider::plain_provider(), *rng_);
    device_->provision(
        ca_->issue("device-01", device_->public_key(), kValidity, *rng_));
    transport_ =
        std::make_unique<roap::InProcessTransport>(*ri_, kNow);
  }

  roap::InProcessTransport& tx() { return *transport_; }

  /// Packages `size` bytes of synthetic content and adds a play license.
  dcf::Dcf setup_content(const std::string& tag, std::size_t size,
                         std::uint32_t count_limit = 0,
                         bool domain_ro = false) {
    Bytes content = rng_->bytes(size);
    content_ = content;
    dcf::Headers h;
    h.content_type = "audio/mpeg";
    h.content_id = "cid:" + tag + "@content.example";
    h.rights_issuer_url = ri_->url();
    dcf::Dcf dcf = ci_->package(h, content);

    ri::LicenseOffer offer;
    offer.ro_id = "ro:" + tag;
    offer.content_id = h.content_id;
    offer.dcf_hash = dcf.hash();
    rel::Permission play;
    play.type = rel::PermissionType::kPlay;
    if (count_limit > 0) play.constraint.count = count_limit;
    offer.permissions = {play};
    offer.kcek = *ci_->kcek_for(h.content_id);
    if (domain_ro) {
      offer.domain_ro = true;
      offer.domain_id = "domain:home";
      ri_->create_domain(offer.domain_id);
    }
    ri_->add_offer(offer);
    return dcf;
  }

  std::unique_ptr<DeterministicRng> rng_;
  std::unique_ptr<pki::CertificationAuthority> ca_;
  std::unique_ptr<ci::ContentIssuer> ci_;
  std::unique_ptr<ri::RightsIssuer> ri_;
  std::unique_ptr<DrmAgent> device_;
  std::unique_ptr<roap::InProcessTransport> transport_;
  Bytes content_;
};

TEST_F(DrmEcosystem, FullLifecycleDeviceRo) {
  dcf::Dcf dcf = setup_content("track", 50000, /*count_limit=*/3);

  // Registration establishes the RI context.
  EXPECT_FALSE(device_->has_ri_context("ri.example"));
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  ASSERT_TRUE(device_->has_ri_context("ri.example"));
  EXPECT_TRUE(ri_->is_registered("device-01"));
  const agent::RiContext* ctx = device_->ri_context("ri.example");
  ASSERT_NE(ctx, nullptr);
  EXPECT_EQ(ctx->ri_url, "http://ri.example/roap");

  // Acquisition delivers a protected RO.
  auto acq = device_->acquire_ro(tx(), "ri.example", "ro:track", kNow);
  ASSERT_EQ(acq, AgentStatus::kOk);
  EXPECT_FALSE(acq->is_domain_ro);
  EXPECT_TRUE(acq->signature.empty());  // device ROs unsigned by default

  // Installation re-wraps the keys under K_DEV.
  ASSERT_EQ(device_->install_ro(*acq, kNow), AgentStatus::kOk);
  EXPECT_EQ(device_->installed_count(), 1u);
  EXPECT_EQ(*device_->remaining_count("ro:track", rel::PermissionType::kPlay),
            3u);

  // Consumption: three grants, then the count is exhausted.
  for (int i = 0; i < 3; ++i) {
    agent::ConsumeResult r =
        device_->consume(dcf, rel::PermissionType::kPlay, kNow + 100 + i);
    ASSERT_EQ(r.status, AgentStatus::kOk) << "play " << i;
    EXPECT_EQ(r.content, content_);
  }
  agent::ConsumeResult denied =
      device_->consume(dcf, rel::PermissionType::kPlay, kNow + 200);
  EXPECT_EQ(denied.status, AgentStatus::kPermissionDenied);
  EXPECT_EQ(denied.decision, rel::Decision::kCountExhausted);
}

TEST_F(DrmEcosystem, AcquisitionRequiresRegistration) {
  setup_content("gated", 1000);
  auto acq = device_->acquire_ro(tx(), "ri.example", "ro:gated", kNow);
  EXPECT_EQ(acq, AgentStatus::kNoRiContext);
}

TEST_F(DrmEcosystem, RiRejectsUnregisteredDeviceServerSide) {
  setup_content("gate2", 1000);
  roap::RoRequest req;
  req.device_id = "ghost-device";
  req.ri_id = ri_->ri_id();
  req.ro_id = "ro:gate2";
  req.device_nonce = rng_->bytes(roap::kNonceLen);
  req.signature = Bytes(128, 0);
  // Server-side requests now enter through the uniform envelope dispatch.
  roap::RoResponse resp = ri_->handle(roap::Envelope::wrap(req), kNow)
                              .open<roap::RoResponse>();
  EXPECT_EQ(resp.status, roap::Status::kNotRegistered);
}

TEST_F(DrmEcosystem, UnknownRoIdReported) {
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  auto acq = device_->acquire_ro(tx(), "ri.example", "ro:nonexistent", kNow);
  EXPECT_EQ(acq, AgentStatus::kUnknownRoId);  // merged RI-reported status
}

TEST_F(DrmEcosystem, RevokedDeviceCannotRegister) {
  setup_content("revoked", 1000);
  ca_->revoke(device_->certificate().serial());
  EXPECT_EQ(device_->register_with(tx(), kNow), AgentStatus::kRiAborted);
  EXPECT_FALSE(ri_->is_registered("device-01"));
}

TEST_F(DrmEcosystem, ExpiredDeviceCertificateRejected) {
  // Register far past the certificate's validity (server clock too).
  tx().set_now(kValidity.not_after + 1000);
  EXPECT_EQ(device_->register_with(tx(), kValidity.not_after + 1000),
            AgentStatus::kRiAborted);
}

TEST_F(DrmEcosystem, UnprovisionedAgentCannotRegister) {
  DrmAgent fresh("device-02", ca_->root_certificate(),
                 provider::plain_provider(), *rng_, 512);
  EXPECT_EQ(fresh.register_with(tx(), kNow), AgentStatus::kNotProvisioned);
}

TEST_F(DrmEcosystem, ForeignCaDeviceRejected) {
  // A device certified by a different root must not register.
  pki::CertificationAuthority other_ca("Rogue CA", 1024, kValidity, *rng_);
  DrmAgent rogue("rogue-01", other_ca.root_certificate(),
                 provider::plain_provider(), *rng_);
  rogue.provision(
      other_ca.issue("rogue-01", rogue.public_key(), kValidity, *rng_));
  EXPECT_EQ(rogue.register_with(tx(), kNow), AgentStatus::kRiAborted);
}

TEST_F(DrmEcosystem, TamperedRoFailsMacCheck) {
  dcf::Dcf dcf = setup_content("mac", 1000);
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  auto acq = device_->acquire_ro(tx(), "ri.example", "ro:mac", kNow);
  ASSERT_EQ(acq, AgentStatus::kOk);

  roap::ProtectedRo tampered = *acq;
  tampered.rights.content_id = "cid:other@content.example";
  EXPECT_EQ(device_->install_ro(tampered, kNow), AgentStatus::kMacMismatch);

  roap::ProtectedRo bad_mac = *acq;
  bad_mac.mac[0] ^= 1;
  EXPECT_EQ(device_->install_ro(bad_mac, kNow), AgentStatus::kMacMismatch);

  roap::ProtectedRo bad_keys = *acq;
  bad_keys.wrapped_keys[140] ^= 1;  // inside C2
  EXPECT_EQ(device_->install_ro(bad_keys, kNow), AgentStatus::kUnwrapFailed);
}

TEST_F(DrmEcosystem, RoForAnotherDeviceCannotBeInstalled) {
  setup_content("stolen", 1000);
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  auto acq = device_->acquire_ro(tx(), "ri.example", "ro:stolen", kNow);
  ASSERT_EQ(acq, AgentStatus::kOk);

  DrmAgent thief("thief-01", ca_->root_certificate(),
                 provider::plain_provider(), *rng_);
  thief.provision(
      ca_->issue("thief-01", thief.public_key(), kValidity, *rng_));
  ASSERT_EQ(thief.register_with(tx(), kNow), AgentStatus::kOk);
  // C1 was encrypted for device-01's key; the thief's RSADP yields a wrong
  // KEK and the AES-UNWRAP integrity check catches it.
  EXPECT_EQ(thief.install_ro(*acq, kNow), AgentStatus::kUnwrapFailed);
}

TEST_F(DrmEcosystem, TamperedDcfFailsHashCheck) {
  dcf::Dcf dcf = setup_content("hash", 2000);
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  auto acq = device_->acquire_ro(tx(), "ri.example", "ro:hash", kNow);
  ASSERT_EQ(acq, AgentStatus::kOk);
  ASSERT_EQ(device_->install_ro(*acq, kNow), AgentStatus::kOk);

  Bytes wire = dcf.serialize();
  wire[wire.size() - 1] ^= 1;  // flip a payload byte
  dcf::Dcf tampered = dcf::Dcf::parse(wire);
  agent::ConsumeResult r =
      device_->consume(tampered, rel::PermissionType::kPlay, kNow);
  EXPECT_EQ(r.status, AgentStatus::kDcfHashMismatch);

  // The original still plays.
  EXPECT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
}

TEST_F(DrmEcosystem, ConsumeWithoutInstalledRo) {
  dcf::Dcf dcf = setup_content("orphan", 500);
  agent::ConsumeResult r =
      device_->consume(dcf, rel::PermissionType::kPlay, kNow);
  EXPECT_EQ(r.status, AgentStatus::kNotInstalled);
}

TEST_F(DrmEcosystem, PermissionTypeEnforced) {
  dcf::Dcf dcf = setup_content("playonly", 500);
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  auto acq = device_->acquire_ro(tx(), "ri.example", "ro:playonly", kNow);
  ASSERT_EQ(acq, AgentStatus::kOk);
  ASSERT_EQ(device_->install_ro(*acq, kNow), AgentStatus::kOk);
  agent::ConsumeResult r =
      device_->consume(dcf, rel::PermissionType::kPrint, kNow);
  EXPECT_EQ(r.status, AgentStatus::kPermissionDenied);
  EXPECT_EQ(r.decision, rel::Decision::kNoSuchPermission);
}

TEST_F(DrmEcosystem, DomainRoSharedAcrossDevices) {
  dcf::Dcf dcf = setup_content("shared", 3000, 0, /*domain_ro=*/true);

  // First device joins the domain and installs the RO.
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  ASSERT_EQ(device_->join_domain(tx(), "ri.example", "domain:home", kNow),
            AgentStatus::kOk);
  EXPECT_TRUE(device_->has_domain_key("domain:home"));
  auto acq = device_->acquire_ro(tx(), "ri.example", "ro:shared", kNow);
  ASSERT_EQ(acq, AgentStatus::kOk);
  ASSERT_TRUE(acq->is_domain_ro);
  ASSERT_FALSE(acq->signature.empty());  // mandatory for domain ROs
  ASSERT_EQ(device_->install_ro(*acq, kNow), AgentStatus::kOk);
  EXPECT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);

  // Second device: registers, joins the same domain, and can install the
  // *same* Rights Object without contacting the RI about it again.
  DrmAgent second("device-02", ca_->root_certificate(),
                  provider::plain_provider(), *rng_);
  second.provision(
      ca_->issue("device-02", second.public_key(), kValidity, *rng_));
  ASSERT_EQ(second.register_with(tx(), kNow), AgentStatus::kOk);
  ASSERT_EQ(second.join_domain(tx(), "ri.example", "domain:home", kNow),
            AgentStatus::kOk);
  ASSERT_EQ(second.install_ro(*acq, kNow), AgentStatus::kOk);
  EXPECT_EQ(second.consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);

  // A device outside the domain cannot install it.
  DrmAgent outsider("device-03", ca_->root_certificate(),
                    provider::plain_provider(), *rng_);
  outsider.provision(
      ca_->issue("device-03", outsider.public_key(), kValidity, *rng_));
  ASSERT_EQ(outsider.register_with(tx(), kNow), AgentStatus::kOk);
  EXPECT_EQ(outsider.install_ro(*acq, kNow), AgentStatus::kNoDomainKey);
}

TEST_F(DrmEcosystem, DomainRoRequiresMembershipAtRi) {
  setup_content("members", 1000, 0, /*domain_ro=*/true);
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  // Not a member yet: the RI refuses to deliver the domain RO.
  auto acq = device_->acquire_ro(tx(), "ri.example", "ro:members", kNow);
  EXPECT_EQ(acq, AgentStatus::kAccessDenied);  // merged RI-reported status
  ASSERT_EQ(device_->join_domain(tx(), "ri.example", "domain:home", kNow),
            AgentStatus::kOk);
  EXPECT_EQ(device_->acquire_ro(tx(), "ri.example", "ro:members", kNow),
            AgentStatus::kOk);
}

TEST_F(DrmEcosystem, DomainMemberLimit) {
  ri_->create_domain("domain:tiny", /*max_members=*/1);
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  ASSERT_EQ(device_->join_domain(tx(), "ri.example", "domain:tiny", kNow),
            AgentStatus::kOk);

  DrmAgent second("device-02", ca_->root_certificate(),
                  provider::plain_provider(), *rng_);
  second.provision(
      ca_->issue("device-02", second.public_key(), kValidity, *rng_));
  ASSERT_EQ(second.register_with(tx(), kNow), AgentStatus::kOk);
  EXPECT_EQ(second.join_domain(tx(), "ri.example", "domain:tiny", kNow),
            AgentStatus::kAccessDenied);
  // Re-joining as an existing member is idempotent.
  EXPECT_EQ(device_->join_domain(tx(), "ri.example", "domain:tiny", kNow),
            AgentStatus::kOk);
}

TEST_F(DrmEcosystem, SignedDeviceRoVerifiedAtInstall) {
  dcf::Dcf dcf = setup_content("signed", 800);
  ri_->set_sign_device_ros(true);
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  auto acq = device_->acquire_ro(tx(), "ri.example", "ro:signed", kNow);
  ASSERT_EQ(acq, AgentStatus::kOk);
  ASSERT_FALSE(acq->signature.empty());
  ASSERT_EQ(device_->install_ro(*acq, kNow), AgentStatus::kOk);

  roap::ProtectedRo bad = *acq;
  bad.signature[5] ^= 1;
  EXPECT_EQ(device_->install_ro(bad, kNow),
            AgentStatus::kRoSignatureInvalid);
  EXPECT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
}

TEST_F(DrmEcosystem, MultipleRosForSameContent) {
  // Two licenses for one DCF: a 1-play RO and an unlimited RO. When the
  // first is exhausted the agent falls through to the second (§2.4.3:
  // "there might be more than one Rights Object for a DCF").
  dcf::Dcf dcf = setup_content("multi", 600, /*count_limit=*/1);
  ri::LicenseOffer second_offer;
  second_offer.ro_id = "ro:multi-unlimited";
  second_offer.content_id = dcf.headers().content_id;
  second_offer.dcf_hash = dcf.hash();
  rel::Permission play;
  play.type = rel::PermissionType::kPlay;
  second_offer.permissions = {play};
  second_offer.kcek = *ci_->kcek_for(dcf.headers().content_id);
  ri_->add_offer(second_offer);

  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  for (const char* ro_id : {"ro:multi", "ro:multi-unlimited"}) {
    auto acq = device_->acquire_ro(tx(), "ri.example", ro_id, kNow);
    ASSERT_EQ(acq, AgentStatus::kOk);
    ASSERT_EQ(device_->install_ro(*acq, kNow), AgentStatus::kOk);
  }
  // First play consumes the limited RO, every later play the unlimited one.
  for (int i = 0; i < 4; ++i) {
    agent::ConsumeResult r =
        device_->consume(dcf, rel::PermissionType::kPlay, kNow + i);
    ASSERT_EQ(r.status, AgentStatus::kOk) << i;
    EXPECT_EQ(r.content, content_);
  }
  EXPECT_EQ(*device_->remaining_count("ro:multi", rel::PermissionType::kPlay),
            0u);
}

TEST_F(DrmEcosystem, ReinstallResetsState) {
  dcf::Dcf dcf = setup_content("reinstall", 400, /*count_limit=*/1);
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  auto acq = device_->acquire_ro(tx(), "ri.example", "ro:reinstall", kNow);
  ASSERT_EQ(acq, AgentStatus::kOk);
  ASSERT_EQ(device_->install_ro(*acq, kNow), AgentStatus::kOk);
  ASSERT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
  ASSERT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kPermissionDenied);
  // Re-installing the same RO resets its (device-local) usage state.
  ASSERT_EQ(device_->install_ro(*acq, kNow), AgentStatus::kOk);
  EXPECT_EQ(device_->installed_count(), 1u);
  EXPECT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
}

TEST_F(DrmEcosystem, RoSurvivesXmlTransport) {
  // The protected RO round-trips through its XML wire form and still
  // installs and plays — proving the whole chain is carried in-band.
  dcf::Dcf dcf = setup_content("wire", 1200);
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  auto acq = device_->acquire_ro(tx(), "ri.example", "ro:wire", kNow);
  ASSERT_EQ(acq, AgentStatus::kOk);

  std::string wire = acq->to_xml().serialize();
  roap::ProtectedRo reparsed = roap::ProtectedRo::from_xml(xml::parse(wire));
  ASSERT_EQ(device_->install_ro(reparsed, kNow), AgentStatus::kOk);
  EXPECT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
}

}  // namespace
}  // namespace omadrm
