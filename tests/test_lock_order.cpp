// Death tests for the runtime lock-order validator
// (common/ordered_mutex.{h,cpp}).
//
// These use CheckedOrderedMutex — the always-validated instantiation —
// so they pin the validator's behavior in EVERY build flavor, including
// Release where the production OrderedMutex alias compiles the checks
// out. Each death test asserts on the rank pair in the abort message,
// so reordering an acquisition (or weakening the validator) fails here
// rather than deadlocking some future soak run.
//
// The positive tests also pin the corrected global order:
// ISSUE 10's prose put store(3) before meta(4), but on_device_hello
// holds meta_mu_ across StateStore::persist() — the real order is
// shard < stripe < meta < store.front < store.backing, and that is what
// LockRank encodes. See the rank table in common/ordered_mutex.h.

#include <gtest/gtest.h>

#include "common/ordered_mutex.h"

namespace omadrm {
namespace {

using common_test_rank = LockRank;

TEST(LockOrderDeath, StripeBeforeShardIsRankInversion) {
  CheckedOrderedMutex stripe{LockRank::kRiDomainStripe, "test.stripe"};
  CheckedOrderedMutex shard{LockRank::kRiShard, "test.shard"};
  EXPECT_DEATH(
      {
        CheckedMutexLock outer(stripe);
        CheckedMutexLock inner(shard);  // rank 10 under rank 20: boom
      },
      "lock-order violation \\(rank inversion\\): acquiring \"test\\.shard\" "
      "\\(rank 10\\) while already holding \"test\\.stripe\" \\(rank 20\\)");
}

TEST(LockOrderDeath, StoreBeforeStripeIsRankInversion) {
  CheckedOrderedMutex store{LockRank::kStoreBacking, "test.store"};
  CheckedOrderedMutex stripe{LockRank::kRiDomainStripe, "test.stripe"};
  EXPECT_DEATH(
      {
        CheckedMutexLock outer(store);
        CheckedMutexLock inner(stripe);
      },
      "rank inversion.*\"test\\.stripe\" \\(rank 20\\) while already "
      "holding \"test\\.store\" \\(rank 50\\)");
}

TEST(LockOrderDeath, TwoOfAKindSameRankDistinctMutexes) {
  // Two device shards at once would deadlock against a thread locking
  // them in the opposite order — same-rank nesting is banned outright.
  CheckedOrderedMutex a{LockRank::kRiShard, "test.shard_a"};
  CheckedOrderedMutex b{LockRank::kRiShard, "test.shard_b"};
  EXPECT_DEATH(
      {
        CheckedMutexLock outer(a);
        CheckedMutexLock inner(b);
      },
      "lock-order violation \\(two of a kind\\).*\"test\\.shard_b\" "
      "\\(rank 10\\) while already holding \"test\\.shard_a\" \\(rank 10\\)");
}

TEST(LockOrderDeath, RecursiveAcquisitionAborts) {
  CheckedOrderedMutex mu{LockRank::kRng, "test.rng"};
  EXPECT_DEATH(
      {
        CheckedMutexLock outer(mu);
        mu.lock();  // self-deadlock on a non-recursive mutex
      },
      "lock-order violation \\(recursive acquisition\\)");
}

TEST(LockOrderDeath, TryLockIsValidatedToo) {
  // try_lock on a fresh mutex SUCCEEDS, so the deadlock the validator
  // exists for can't happen here — but a successful try_lock still
  // enters the held set out of order, poisoning every later check. The
  // validator treats it exactly like lock().
  CheckedOrderedMutex meta{LockRank::kRiMeta, "test.meta"};
  CheckedOrderedMutex shard{LockRank::kRiShard, "test.shard"};
  EXPECT_DEATH(
      {
        CheckedMutexLock outer(meta);
        (void)shard.try_lock();
      },
      "rank inversion.*\"test\\.shard\" \\(rank 10\\) while already "
      "holding \"test\\.meta\" \\(rank 30\\)");
}

TEST(LockOrderDeath, AssertHeldOnUnheldMutexAborts) {
  CheckedOrderedMutex mu{LockRank::kNetJobs, "test.jobs"};
  EXPECT_DEATH(mu.assert_held(),
               "assert_held\\(\"test\\.jobs\"\\) failed");
}

TEST(LockOrderDeath, AbortMessageCarriesBothBacktraces) {
  CheckedOrderedMutex outer_mu{LockRank::kStoreFront, "test.front"};
  CheckedOrderedMutex inner_mu{LockRank::kRiShard, "test.shard"};
  EXPECT_DEATH(
      {
        CheckedMutexLock outer(outer_mu);
        CheckedMutexLock inner(inner_mu);
      },
      "held lock \"test\\.front\" was acquired at:(.|\n)*offending "
      "acquisition of \"test\\.shard\" at:");
}

// ---- positive cases: the canonical order must stay silent -------------

TEST(LockOrder, FullCanonicalChainNests) {
  // shard < stripe < meta < store.front < store.backing < verdict <
  // mont < rng < net ranks < failpoint: one nested walk through every
  // rank in the table must not trip the validator.
  CheckedOrderedMutex shard{LockRank::kRiShard, "t.shard"};
  CheckedOrderedMutex stripe{LockRank::kRiDomainStripe, "t.stripe"};
  CheckedOrderedMutex meta{LockRank::kRiMeta, "t.meta"};
  CheckedOrderedMutex front{LockRank::kStoreFront, "t.front"};
  CheckedOrderedMutex backing{LockRank::kStoreBacking, "t.backing"};
  CheckedOrderedMutex verdict{LockRank::kChainVerdict, "t.verdict"};
  CheckedOrderedMutex mont{LockRank::kMontStripe, "t.mont"};
  CheckedOrderedMutex rng{LockRank::kRng, "t.rng"};
  CheckedOrderedMutex fp{LockRank::kFailpoint, "t.failpoint"};
  {
    CheckedMutexLock l1(shard);
    CheckedMutexLock l2(stripe);
    CheckedMutexLock l3(meta);  // meta BEFORE store: the corrected order
    CheckedMutexLock l4(front);
    CheckedMutexLock l5(backing);
    CheckedMutexLock l6(verdict);
    CheckedMutexLock l7(mont);
    CheckedMutexLock l8(rng);
    CheckedMutexLock l9(fp);
    fp.assert_held();
    shard.assert_held();
  }
  // All released; a fresh acquisition of the lowest rank must be clean.
  CheckedMutexLock again(shard);
}

TEST(LockOrder, MidStackReleaseKeepsValidatorConsistent) {
  // on_device_hello's pattern: take meta, drop it mid-scope, go on to
  // the store. The held stack must support releasing from the middle.
  CheckedOrderedMutex shard{LockRank::kRiShard, "t.shard"};
  CheckedOrderedMutex meta{LockRank::kRiMeta, "t.meta"};
  CheckedOrderedMutex backing{LockRank::kStoreBacking, "t.backing"};
  CheckedMutexLock l1(shard);
  meta.lock();
  meta.unlock();  // mid-stack for what follows
  CheckedMutexLock l3(backing);
  backing.assert_held();
  shard.assert_held();
}

TEST(LockOrder, SequentialSameRankIsFine) {
  // The cross-shard TTL sweep: one shard at a time, never two at once.
  CheckedOrderedMutex a{LockRank::kRiShard, "t.shard_a"};
  CheckedOrderedMutex b{LockRank::kRiShard, "t.shard_b"};
  { CheckedMutexLock la(a); }
  { CheckedMutexLock lb(b); }
  { CheckedMutexLock la(a); }
}

TEST(LockOrder, SuccessfulTryLockTracksAsHeld) {
  CheckedOrderedMutex mu{LockRank::kNetConn, "t.conn"};
  ASSERT_TRUE(mu.try_lock());
  mu.assert_held();
  mu.unlock();
}

}  // namespace
}  // namespace omadrm
