// Tests for the KDF2 key derivation function (structure + properties).
#include <gtest/gtest.h>

#include "common/hex.h"
#include "common/random.h"
#include "crypto/kdf2.h"
#include "crypto/sha1.h"

namespace omadrm::crypto {
namespace {

TEST(Kdf2, FirstBlockIsHashOfZAndCounterOne) {
  // By construction T(1) = SHA-1(Z || 00000001); pin the structure.
  Bytes z = to_bytes("shared-secret");
  Bytes expected = Sha1::hash(concat({z, from_hex("00000001")}));
  EXPECT_EQ(kdf2_sha1(z, 20), expected);
}

TEST(Kdf2, SecondBlockUsesCounterTwo) {
  Bytes z = to_bytes("shared-secret");
  Bytes t1 = Sha1::hash(concat({z, from_hex("00000001")}));
  Bytes t2 = Sha1::hash(concat({z, from_hex("00000002")}));
  Bytes out = kdf2_sha1(z, 40);
  EXPECT_EQ(Bytes(out.begin(), out.begin() + 20), t1);
  EXPECT_EQ(Bytes(out.begin() + 20, out.end()), t2);
}

TEST(Kdf2, TruncatesToRequestedLength) {
  Bytes z = to_bytes("z");
  for (std::size_t len : {0u, 1u, 16u, 19u, 20u, 21u, 39u, 40u, 100u}) {
    EXPECT_EQ(kdf2_sha1(z, len).size(), len);
  }
}

TEST(Kdf2, PrefixConsistency) {
  // KDF output for a shorter length is a prefix of the longer output.
  Bytes z = to_bytes("prefix-check");
  Bytes long_out = kdf2_sha1(z, 64);
  for (std::size_t len : {1u, 16u, 20u, 33u, 63u}) {
    Bytes short_out = kdf2_sha1(z, len);
    EXPECT_EQ(short_out, Bytes(long_out.begin(),
                               long_out.begin() +
                                   static_cast<std::ptrdiff_t>(len)));
  }
}

TEST(Kdf2, DifferentSecretsDifferentKeys) {
  EXPECT_NE(kdf2_sha1(to_bytes("a"), 16), kdf2_sha1(to_bytes("b"), 16));
}

TEST(Kdf2, OtherInfoChangesOutput) {
  Bytes z = to_bytes("z");
  EXPECT_NE(kdf2_sha1(z, 16, to_bytes("ctx1")),
            kdf2_sha1(z, 16, to_bytes("ctx2")));
  EXPECT_NE(kdf2_sha1(z, 16), kdf2_sha1(z, 16, to_bytes("ctx")));
}

TEST(Kdf2, Deterministic) {
  DeterministicRng rng(5);
  Bytes z = rng.bytes(128);
  EXPECT_EQ(kdf2_sha1(z, 16), kdf2_sha1(z, 16));
}

}  // namespace
}  // namespace omadrm::crypto
