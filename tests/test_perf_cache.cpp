// Tests for the ROAP hot-path caches: Montgomery context cache + power
// tables (bigint layer), the certificate-chain verdict cache (pki layer),
// and their wiring into the DRM Agent / Rights Issuer — including the
// metered-op accounting that shows cache hits cost zero RSA operations.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "agent/content_session.h"
#include "agent/drm_agent.h"
#include "bigint/bigint.h"
#include "ci/content_issuer.h"
#include "dcf/dcf.h"
#include "bigint/mont_cache.h"
#include "bigint/montgomery.h"
#include "common/error.h"
#include "common/random.h"
#include "model/arch.h"
#include "model/ledger.h"
#include "model/metered.h"
#include "pki/authority.h"
#include "pki/chain.h"
#include "provider/provider.h"
#include "ri/rights_issuer.h"
#include "roap/transport.h"
#include "rsa/pss.h"
#include "rsa/rsa.h"

namespace omadrm {
namespace {

using bigint::BigInt;
using bigint::MontgomeryCtx;
using bigint::PowerTable;

// ---------------------------------------------------------------------------
// Montgomery / RSA edge cases
// ---------------------------------------------------------------------------

const BigInt kOddModulus("0xb4c1f68f9a3d2e155f0e3a4d8b92c671");

TEST(MontgomeryEdge, EvenModulusRejected) {
  EXPECT_THROW(MontgomeryCtx(BigInt(std::uint64_t{100})), Error);
  EXPECT_THROW(MontgomeryCtx(BigInt{}), Error);
  EXPECT_THROW(MontgomeryCtx(BigInt(-7)), Error);
  EXPECT_THROW(bigint::shared_montgomery_ctx(BigInt(std::uint64_t{64})),
               Error);
}

TEST(MontgomeryEdge, ExponentZeroIsOne) {
  MontgomeryCtx ctx(kOddModulus);
  EXPECT_EQ(ctx.mod_exp(BigInt(std::uint64_t{12345}), BigInt{}),
            BigInt(std::uint64_t{1}));
  // 0^0 == 1 by the PKCS#1 convention the generic path follows too.
  EXPECT_EQ(ctx.mod_exp(BigInt{}, BigInt{}), BigInt(std::uint64_t{1}));
  // Degenerate modulus 1: everything is congruent to 0.
  MontgomeryCtx one(BigInt(std::uint64_t{1}));
  EXPECT_TRUE(one.mod_exp(BigInt{}, BigInt{}).is_zero());
}

TEST(MontgomeryEdge, BaseZero) {
  MontgomeryCtx ctx(kOddModulus);
  EXPECT_TRUE(ctx.mod_exp(BigInt{}, BigInt(std::uint64_t{17})).is_zero());
  EXPECT_TRUE(
      ctx.mod_exp(BigInt{}, BigInt("0x10001000100010001")).is_zero());
}

TEST(MontgomeryEdge, BaseMinusOne) {
  MontgomeryCtx ctx(kOddModulus);
  const BigInt minus_one = kOddModulus - BigInt(std::uint64_t{1});
  // (m-1)^even == 1, (m-1)^odd == m-1 (mod m).
  EXPECT_EQ(ctx.mod_exp(minus_one, BigInt(std::uint64_t{2})),
            BigInt(std::uint64_t{1}));
  EXPECT_EQ(ctx.mod_exp(minus_one, BigInt(std::uint64_t{65537})), minus_one);
  const BigInt big_even("0x1000000000000000000000000000");
  EXPECT_EQ(ctx.mod_exp(minus_one, big_even), BigInt(std::uint64_t{1}));
}

TEST(MontgomeryEdge, ShortAndLongExponentPathsAgree) {
  // 65537 rides the plain square-and-multiply path, big exponents the
  // 4-bit window; both must agree with the naive reference.
  DeterministicRng rng(0x5EED);
  MontgomeryCtx ctx(kOddModulus);
  for (int i = 0; i < 10; ++i) {
    BigInt base = BigInt::random_below(kOddModulus, rng);
    BigInt short_exp(std::uint64_t{65537});
    BigInt long_exp = BigInt::random_below(kOddModulus, rng);
    // Naive reference: square-and-multiply over plain arithmetic.
    auto reference = [&](const BigInt& b, const BigInt& e) {
      BigInt result(std::uint64_t{1});
      for (std::size_t bit = e.bit_length(); bit-- > 0;) {
        result = (result * result).mod(kOddModulus);
        if (e.bit(bit)) result = (result * b).mod(kOddModulus);
      }
      return result;
    };
    EXPECT_EQ(ctx.mod_exp(base, short_exp), reference(base, short_exp));
    EXPECT_EQ(ctx.mod_exp(base, long_exp), reference(base, long_exp));
  }
}

TEST(PowerTableTest, MatchesPlainExponentiation) {
  DeterministicRng rng(0xAB1E);
  MontgomeryCtx ctx(kOddModulus);
  BigInt base = BigInt::random_below(kOddModulus, rng);
  PowerTable table = ctx.make_power_table(base);
  EXPECT_EQ(table.base(), base);
  EXPECT_EQ(table.modulus(), kOddModulus);
  for (int i = 0; i < 5; ++i) {
    BigInt exp = BigInt::random_below(kOddModulus, rng);
    EXPECT_EQ(ctx.mod_exp(table, exp), ctx.mod_exp(base, exp));
  }
  EXPECT_EQ(ctx.mod_exp(table, BigInt{}), BigInt(std::uint64_t{1}));
}

TEST(PowerTableTest, RejectsForeignModulus) {
  MontgomeryCtx ctx(kOddModulus);
  MontgomeryCtx other(BigInt(std::uint64_t{0xfffffffb}));
  PowerTable table = other.make_power_table(BigInt(std::uint64_t{2}));
  EXPECT_THROW(ctx.mod_exp(table, BigInt(std::uint64_t{3})), Error);
  EXPECT_THROW(ctx.mod_exp(PowerTable{}, BigInt(std::uint64_t{3})), Error);
}

TEST(MontCacheTest, HitsAndInvalidation) {
  bigint::clear_montgomery_cache();
  bigint::reset_montgomery_cache_stats();

  auto a = bigint::shared_montgomery_ctx(kOddModulus);
  auto b = bigint::shared_montgomery_ctx(kOddModulus);
  EXPECT_EQ(a.get(), b.get());  // identical shared context
  bigint::MontCacheStats stats = bigint::montgomery_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);

  bigint::clear_montgomery_cache();
  auto c = bigint::shared_montgomery_ctx(kOddModulus);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(bigint::montgomery_cache_stats().misses, 2u);

  // Disabled: every call builds a fresh context (all misses, no sharing).
  bigint::set_montgomery_cache_enabled(false);
  auto d = bigint::shared_montgomery_ctx(kOddModulus);
  auto e = bigint::shared_montgomery_ctx(kOddModulus);
  EXPECT_NE(d.get(), e.get());
  stats = bigint::montgomery_cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  bigint::set_montgomery_cache_enabled(true);

  // Old handles stay valid regardless of cache churn.
  EXPECT_EQ(a->mod_exp(BigInt(std::uint64_t{2}), BigInt(std::uint64_t{10})),
            BigInt(std::uint64_t{1024}));
}

TEST(RsaEdge, HostileEvenModulusFailsVerificationGracefully) {
  // A crafted certificate can carry an even RSA modulus; that must come
  // back as a failed verification, not as a thrown Montgomery error that
  // unwinds through the ROAP handlers.
  rsa::PublicKey evil;
  evil.n = BigInt(std::uint64_t{1}) << 512;  // even
  evil.e = BigInt(std::uint64_t{65537});
  Bytes message{1, 2, 3};
  Bytes signature(evil.byte_length(), 0x42);
  EXPECT_FALSE(rsa::pss_verify(evil, message, signature));
}

TEST(RsaCrt, CrtAndPlainPathsAgree) {
  DeterministicRng rng(0xC47);
  rsa::PrivateKey key = rsa::generate_key(512, rng);
  ASSERT_TRUE(key.has_crt);
  rsa::PrivateKey plain = key;
  plain.has_crt = false;

  BigInt c = BigInt::random_below(key.n, rng);
  EXPECT_EQ(rsa::rsadp(key, c), rsa::rsadp(plain, c));
  EXPECT_EQ(rsa::rsasp1(key, c), rsa::rsasp1(plain, c));
  // Round trip through the public primitive.
  EXPECT_EQ(rsa::rsaep(key.public_key(), rsa::rsadp(key, c)), c);
}

// ---------------------------------------------------------------------------
// Chain verifier
// ---------------------------------------------------------------------------

constexpr std::uint64_t kNow = 1100000000;
const pki::Validity kValidity{kNow - 86400, kNow + 365 * 86400};

class ChainFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<DeterministicRng>(0xCAFE);
    ca_ = std::make_unique<pki::CertificationAuthority>("Root", 512,
                                                        kValidity, *rng_);
    ica_ = std::make_unique<pki::SubordinateAuthority>("Mid", 512, *ca_,
                                                       kValidity, *rng_);
    leaf_key_ = rsa::generate_key(512, *rng_);
    leaf_ = ica_->issue("leaf", leaf_key_.public_key(), kValidity, *rng_);
    chain_ = {leaf_, ica_->certificate()};
  }

  std::unique_ptr<DeterministicRng> rng_;
  std::unique_ptr<pki::CertificationAuthority> ca_;
  std::unique_ptr<pki::SubordinateAuthority> ica_;
  rsa::PrivateKey leaf_key_;
  pki::Certificate leaf_;
  std::vector<pki::Certificate> chain_;
};

TEST_F(ChainFixture, CacheHitReturnsIdenticalVerdict) {
  pki::ChainVerifier verifier(ca_->root_certificate());
  auto first = verifier.verify(chain_, kNow);
  ASSERT_EQ(first->status, pki::CertStatus::kValid);
  EXPECT_EQ(first->serials.size(), 2u);
  EXPECT_EQ(first->leaf_subject_cn, "leaf");

  auto second = verifier.verify(chain_, kNow + 1000);
  EXPECT_EQ(first.get(), second.get());  // the very same verdict object
  EXPECT_EQ(verifier.stats().hits, 1u);
  EXPECT_EQ(verifier.stats().misses, 1u);
}

TEST_F(ChainFixture, RevalidateUsesHandleWithoutHashing) {
  pki::ChainVerifier verifier(ca_->root_certificate());
  auto handle = verifier.verify(chain_, kNow);
  auto again = verifier.revalidate(handle, chain_, kNow + 5);
  EXPECT_EQ(handle.get(), again.get());
  EXPECT_EQ(verifier.stats().hits, 1u);

  // A null handle falls back to the fingerprint lookup.
  auto from_cache = verifier.revalidate(nullptr, chain_, kNow);
  EXPECT_EQ(from_cache.get(), handle.get());
  EXPECT_EQ(verifier.stats().hits, 2u);
}

TEST_F(ChainFixture, ExpiredChainIsNotServedFromCache) {
  pki::ChainVerifier verifier(ca_->root_certificate());
  auto valid = verifier.verify(chain_, kNow);
  ASSERT_EQ(valid->status, pki::CertStatus::kValid);

  const std::uint64_t after_expiry = kValidity.not_after + 10;
  auto expired = verifier.verify(chain_, after_expiry);
  EXPECT_EQ(expired->status, pki::CertStatus::kExpired);
  EXPECT_GE(verifier.stats().invalidations, 1u);  // stale entry dropped

  // The stale handle is rejected by revalidate as well.
  auto handle_result = verifier.revalidate(valid, chain_, after_expiry);
  EXPECT_EQ(handle_result->status, pki::CertStatus::kExpired);

  // Failure verdicts are never cached.
  verifier.reset_stats();
  verifier.verify(chain_, after_expiry);
  verifier.verify(chain_, after_expiry);
  EXPECT_EQ(verifier.stats().hits, 0u);
}

TEST_F(ChainFixture, RevocationInvalidatesCachedVerdict) {
  pki::ChainVerifier verifier(ca_->root_certificate());
  auto handle = verifier.verify(chain_, kNow);
  ASSERT_EQ(handle->status, pki::CertStatus::kValid);

  verifier.invalidate_serial(leaf_.serial());
  EXPECT_EQ(verifier.stats().invalidations, 1u);

  // Revocation is durable: the cached verdict, outstanding handles, AND
  // any future walk of a chain containing the serial are all rejected.
  auto after = verifier.revalidate(handle, chain_, kNow);
  EXPECT_EQ(after->status, pki::CertStatus::kRevoked);
  auto again = verifier.verify(chain_, kNow);
  EXPECT_EQ(again->status, pki::CertStatus::kRevoked);
  EXPECT_EQ(verifier.stats().hits, 0u);

  // A sibling chain under the same (unrevoked) intermediate still works.
  rsa::PrivateKey k2 = rsa::generate_key(512, *rng_);
  pki::Certificate leaf2 = ica_->issue("leaf-ok", k2.public_key(), kValidity,
                                       *rng_);
  EXPECT_EQ(verifier.verify({leaf2, ica_->certificate()}, kNow)->status,
            pki::CertStatus::kValid);
}

TEST_F(ChainFixture, TamperedAndMismatchedChains) {
  pki::ChainVerifier verifier(ca_->root_certificate());

  pki::Certificate tampered = leaf_;
  Bytes bad_sig = tampered.signature();
  bad_sig[0] ^= 0x01;
  tampered.set_signature(bad_sig);
  EXPECT_EQ(verifier.verify({tampered, ica_->certificate()}, kNow)->status,
            pki::CertStatus::kBadSignature);

  // Leaf presented without its intermediate: issuer CN doesn't match root.
  EXPECT_EQ(verifier.verify({leaf_}, kNow)->status,
            pki::CertStatus::kIssuerMismatch);

  EXPECT_THROW(verifier.verify({}, kNow), Error);
}

TEST_F(ChainFixture, NonCaIntermediateRejected) {
  // A root-issued *end-entity* certificate (e.g. another device's) must
  // not be able to vouch for a rogue RI as a chain intermediate.
  EXPECT_TRUE(ica_->certificate().is_ca());
  rsa::PrivateKey rogue_key = rsa::generate_key(512, *rng_);
  pki::Certificate rogue_issuer =
      ca_->issue("rogue-device", rogue_key.public_key(), kValidity, *rng_);
  EXPECT_FALSE(rogue_issuer.is_ca());

  rsa::PrivateKey fake_ri_key = rsa::generate_key(512, *rng_);
  pki::Certificate fake_ri(BigInt(std::uint64_t{999999}), "rogue-device",
                           "fake-ri", kValidity, fake_ri_key.public_key());
  fake_ri.set_signature(rsa::pss_sign(rogue_key, fake_ri.tbs_der(), *rng_));

  pki::ChainVerifier verifier(ca_->root_certificate());
  EXPECT_EQ(verifier.verify({fake_ri, rogue_issuer}, kNow)->status,
            pki::CertStatus::kIssuerMismatch);
}

TEST_F(ChainFixture, ExpiredRootRejectsOtherwiseValidChain) {
  DeterministicRng rng2(0x711);
  const pki::Validity short_root{kNow - 86400, kNow + 100};
  pki::CertificationAuthority shortca("ShortRoot", 512, short_root, rng2);
  rsa::PrivateKey lk = rsa::generate_key(512, rng2);
  pki::Certificate leaf = shortca.issue("leaf2", lk.public_key(), kValidity,
                                        rng2);

  pki::ChainVerifier verifier(shortca.root_certificate());
  EXPECT_EQ(verifier.verify({leaf}, kNow)->status, pki::CertStatus::kValid);
  // The leaf is still inside its own window, but the anchor is not: a
  // dead root must not keep vouching (and the cached verdict's window is
  // the intersection, so this is a recompute, not a stale hit).
  EXPECT_EQ(verifier.verify({leaf}, kNow + 200)->status,
            pki::CertStatus::kExpired);
}

TEST_F(ChainFixture, EpochRestampKeepsHandlesAlive) {
  pki::ChainVerifier verifier(ca_->root_certificate());
  auto handle = verifier.verify(chain_, kNow);

  // A second chain under the same intermediate, then revoke only it:
  // the epoch bump retires all handles, but our entry survives the map.
  rsa::PrivateKey k2 = rsa::generate_key(512, *rng_);
  pki::Certificate leaf2 = ica_->issue("leaf2", k2.public_key(), kValidity,
                                       *rng_);
  verifier.verify({leaf2, ica_->certificate()}, kNow);
  verifier.invalidate_serial(leaf2.serial());

  // Stale-epoch handle falls back to the map hit, which re-stamps the
  // surviving verdict…
  auto r1 = verifier.revalidate(handle, chain_, kNow);
  EXPECT_EQ(r1.get(), handle.get());
  // …so the next revalidation rides the O(1) handle path again.
  auto r2 = verifier.revalidate(r1, chain_, kNow);
  EXPECT_EQ(r2.get(), handle.get());
  pki::ChainCacheStats s = verifier.stats();
  EXPECT_EQ(s.misses, 2u);  // only the two initial walks
  EXPECT_EQ(s.hits, 2u);
}

TEST_F(ChainFixture, DisabledVerifierNeverCaches) {
  pki::ChainVerifier verifier(ca_->root_certificate());
  verifier.set_enabled(false);
  auto a = verifier.verify(chain_, kNow);
  auto b = verifier.verify(chain_, kNow);
  EXPECT_EQ(a->status, pki::CertStatus::kValid);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(verifier.stats().hits, 0u);
  EXPECT_EQ(verifier.stats().misses, 2u);
}

// ---------------------------------------------------------------------------
// Agent / RI wiring: chains through ROAP, metered op accounting
// ---------------------------------------------------------------------------

TEST(CachedRoap, IntermediateChainFlowsThroughRegistration) {
  DeterministicRng rng(0x11A);
  pki::CertificationAuthority ca("Root", 512, kValidity, rng);
  pki::SubordinateAuthority ica("Mid", 512, ca, kValidity, rng);
  provider::PlainCryptoProvider& plain = provider::plain_provider();
  ri::RightsIssuer ri("ri:x", "http://ri/roap", ca, kValidity, plain, rng,
                      &ica, 512);
  agent::DrmAgent device("dev:x", ca.root_certificate(), plain, rng, 512);
  device.provision(ca.issue("dev:x", device.public_key(), kValidity, rng));

  roap::InProcessTransport tx(ri, kNow);
  ASSERT_EQ(device.register_with(tx, kNow), agent::AgentStatus::kOk);
  const agent::RiContext* ctx = device.ri_context("ri:x");
  ASSERT_NE(ctx, nullptr);
  ASSERT_EQ(ctx->ri_chain.size(), 2u);  // RI leaf + intermediate
  EXPECT_EQ(ctx->ri_chain[1].subject_cn(), "Mid");
  ASSERT_NE(ctx->verified_chain, nullptr);
  EXPECT_EQ(ctx->verified_chain->status, pki::CertStatus::kValid);

  // Registration verified the 2-link chain once (a miss); nothing has hit
  // the cache yet.
  EXPECT_EQ(device.chain_verifier().stats().misses, 1u);

  ri::LicenseOffer offer;
  offer.ro_id = "ro:x";
  offer.content_id = "cid:x";
  offer.dcf_hash = Bytes(20, 1);
  rel::Permission play;
  play.type = rel::PermissionType::kPlay;
  offer.permissions = {play};
  offer.kcek = rng.bytes(16);
  ri.add_offer(offer);

  auto acq = device.acquire_ro(tx, "ri:x", "ro:x", kNow + 60);
  EXPECT_EQ(acq, agent::AgentStatus::kOk);
  // Context revalidation rode the verdict handle — once before sending,
  // once at response processing: two hits, no second walk.
  EXPECT_EQ(device.chain_verifier().stats().hits, 2u);
  EXPECT_EQ(device.chain_verifier().stats().misses, 1u);

  // Acquisition after the RI certificate expires: the cached verdict ages
  // out and the context is reported expired.
  auto late = device.acquire_ro(tx, "ri:x", "ro:x", kValidity.not_after + 100);
  EXPECT_EQ(late, agent::AgentStatus::kRiContextExpired);
}

TEST(CachedRoap, MeteredAcquisitionChargesNoChainRsa) {
  DeterministicRng rng(0x22B);
  model::CycleLedger ledger(model::ArchitectureProfile::pure_software());
  model::MeteredCryptoProvider metered(ledger);
  pki::CertificationAuthority ca("Root", 512, kValidity, rng);
  pki::SubordinateAuthority ica("Mid", 512, ca, kValidity, rng);
  ri::RightsIssuer ri("ri:m", "http://ri/roap", ca, kValidity,
                      provider::plain_provider(), rng, &ica, 512);
  agent::DrmAgent device("dev:m", ca.root_certificate(), metered, rng, 512);
  device.provision(ca.issue("dev:m", device.public_key(), kValidity, rng));

  ri::LicenseOffer offer;
  offer.ro_id = "ro:m";
  offer.content_id = "cid:m";
  offer.dcf_hash = Bytes(20, 2);
  rel::Permission play;
  play.type = rel::PermissionType::kPlay;
  offer.permissions = {play};
  offer.kcek = rng.bytes(16);
  ri.add_offer(offer);

  roap::InProcessTransport tx(ri, kNow);
  ASSERT_EQ(device.register_with(tx, kNow), agent::AgentStatus::kOk);
  // Registration with a 2-link chain: 2 chain RSAVP1 + OCSP + message.
  EXPECT_EQ(ledger.ops_by_algorithm(model::Algorithm::kRsaPublic), 4u);
  const std::uint64_t reg_private =
      ledger.ops_by_algorithm(model::Algorithm::kRsaPrivate);

  ASSERT_EQ(device.acquire_ro(tx, "ri:m", "ro:m", kNow + 5),
            agent::AgentStatus::kOk);
  // The cached acquisition charges exactly one public (response signature)
  // and one private (request signature) op — both context revalidations
  // (pre-send and at response processing) were free.
  EXPECT_EQ(ledger.ops_by_algorithm(model::Algorithm::kRsaPublic), 5u);
  EXPECT_EQ(ledger.ops_by_algorithm(model::Algorithm::kRsaPrivate),
            reg_private + 1);

  // With the verdict cache disabled the same exchange re-walks the chain
  // at both revalidation points: four extra RSAVP1 ops per acquisition.
  device.chain_verifier().set_enabled(false);
  ASSERT_EQ(device.acquire_ro(tx, "ri:m", "ro:m", kNow + 10),
            agent::AgentStatus::kOk);
  EXPECT_EQ(ledger.ops_by_algorithm(model::Algorithm::kRsaPublic), 10u);
  device.chain_verifier().set_enabled(true);
}

TEST(CachedRoap, RevokedRiInvalidatesAgentCache) {
  DeterministicRng rng(0x33C);
  pki::CertificationAuthority ca("Root", 512, kValidity, rng);
  provider::PlainCryptoProvider& plain = provider::plain_provider();
  ri::RightsIssuer ri("ri:r", "http://ri/roap", ca, kValidity, plain, rng,
                      nullptr, 512);
  agent::DrmAgent device("dev:r", ca.root_certificate(), plain, rng, 512);
  device.provision(ca.issue("dev:r", device.public_key(), kValidity, rng));

  roap::InProcessTransport tx(ri, kNow);
  ASSERT_EQ(device.register_with(tx, kNow), agent::AgentStatus::kOk);

  ca.revoke(ri.certificate().serial());
  agent::DrmAgent second("dev:r2", ca.root_certificate(), plain, rng, 512);
  second.provision(ca.issue("dev:r2", second.public_key(), kValidity, rng));
  EXPECT_EQ(second.register_with(tx, kNow),
            agent::AgentStatus::kCertificateRevoked);
  // The revoked chain verdict was cached during the attempt, then
  // invalidated when the OCSP staple reported the revocation.
  EXPECT_EQ(second.chain_verifier().stats().invalidations, 1u);
}

TEST(CachedRoap, PersistedContextKeepsChain) {
  DeterministicRng rng(0x44D);
  pki::CertificationAuthority ca("Root", 512, kValidity, rng);
  pki::SubordinateAuthority ica("Mid", 512, ca, kValidity, rng);
  provider::PlainCryptoProvider& plain = provider::plain_provider();
  ri::RightsIssuer ri("ri:p", "http://ri/roap", ca, kValidity, plain, rng,
                      &ica, 512);
  agent::DrmAgent device("dev:p", ca.root_certificate(), plain, rng, 512);
  device.provision(ca.issue("dev:p", device.public_key(), kValidity, rng));
  roap::InProcessTransport tx(ri, kNow);
  ASSERT_EQ(device.register_with(tx, kNow), agent::AgentStatus::kOk);

  Bytes blob = device.export_state();
  agent::DrmAgent rebooted("dev:tmp", ca.root_certificate(), plain, rng, 512);
  rebooted.import_state(blob);

  const agent::RiContext* ctx = rebooted.ri_context("ri:p");
  ASSERT_NE(ctx, nullptr);
  ASSERT_EQ(ctx->ri_chain.size(), 2u);
  EXPECT_EQ(ctx->ri_chain[1].subject_cn(), "Mid");

  ri::LicenseOffer offer;
  offer.ro_id = "ro:p";
  offer.content_id = "cid:p";
  offer.dcf_hash = Bytes(20, 3);
  rel::Permission play;
  play.type = rel::PermissionType::kPlay;
  offer.permissions = {play};
  offer.kcek = rng.bytes(16);
  ri.add_offer(offer);

  // The imported context re-verifies (miss) and then serves hits.
  EXPECT_EQ(rebooted.acquire_ro(tx, "ri:p", "ro:p", kNow + 1),
            agent::AgentStatus::kOk);
  EXPECT_EQ(rebooted.acquire_ro(tx, "ri:p", "ro:p", kNow + 2),
            agent::AgentStatus::kOk);
  EXPECT_GE(rebooted.chain_verifier().stats().hits, 1u);
}

// ---------------------------------------------------------------------------
// AES context cache (content path)
// ---------------------------------------------------------------------------

TEST(AesContextCache, HitsMissesAndLru) {
  DeterministicRng rng(0xAE5);
  agent::AesContextCache cache(2);

  const Bytes k1 = rng.bytes(16);
  const Bytes k2 = rng.bytes(16);
  const Bytes k3 = rng.bytes(16);

  auto a = cache.get(k1, "ro:1");
  auto b = cache.get(k1, "ro:1");
  EXPECT_EQ(a.get(), b.get());  // same shared schedule
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);

  // Fill to capacity, then evict the least recently used (k2: k1 was
  // refreshed by the hit above, then k3 lands on top).
  (void)cache.get(k2, "ro:2");
  (void)cache.get(k1, "ro:1");
  (void)cache.get(k3, "ro:3");
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
  auto c = cache.get(k2, "ro:2");  // k2 must rebuild
  EXPECT_EQ(cache.stats().misses, 4u);

  // Evicted handles keep working — sessions pin their schedules.
  std::uint8_t pt[16] = {1, 2, 3};
  std::uint8_t ct[16];
  a->encrypt_block(pt, ct);
  std::uint8_t back[16];
  a->decrypt_block(ct, back);
  EXPECT_EQ(std::memcmp(pt, back, 16), 0);
  (void)c;
}

TEST(AesContextCache, InvalidationAndDisable) {
  DeterministicRng rng(0xAE6);
  agent::AesContextCache cache(8);
  const Bytes k1 = rng.bytes(16);
  const Bytes k2 = rng.bytes(16);

  (void)cache.get(k1, "ro:x");
  (void)cache.get(k2, "ro:y");
  cache.invalidate_ro("ro:x");
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.size(), 1u);
  (void)cache.get(k1, "ro:x");  // rebuilt after invalidation
  EXPECT_EQ(cache.stats().misses, 3u);
  (void)cache.get(k2, "ro:y");  // untouched entry still hits
  EXPECT_EQ(cache.stats().hits, 1u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);

  cache.set_enabled(false);
  auto a = cache.get(k1, "ro:x");
  auto b = cache.get(k1, "ro:x");
  EXPECT_NE(a.get(), b.get());  // every get builds fresh
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------------
// Agent wiring: cache across consume calls, invalidation on RO replace,
// and metered content-path parity (the streaming rewrite must charge the
// paper's per-access costs identically to the historical one-shot path).
// ---------------------------------------------------------------------------

struct ContentFixture {
  DeterministicRng rng{0xD00D};
  pki::CertificationAuthority ca{"Root", 512, kValidity, rng};
  ci::ContentIssuer ci{"ci", provider::plain_provider(), rng};
  ri::RightsIssuer ri{"ri:cc", "http://ri/roap", ca, kValidity,
                      provider::plain_provider(), rng, nullptr, 512};

  ri::LicenseOffer make_offer(const dcf::Dcf& dcf, const std::string& ro_id,
                              const std::string& content_id,
                              const Bytes& kcek) {
    ri::LicenseOffer offer;
    offer.ro_id = ro_id;
    offer.content_id = content_id;
    offer.dcf_hash = dcf.hash();
    rel::Permission play;
    play.type = rel::PermissionType::kPlay;
    offer.permissions = {play};
    offer.kcek = kcek;
    return offer;
  }
};

TEST(AesContextCache, AgentConsumeHitsAndReinstallInvalidates) {
  ContentFixture fx;
  agent::DrmAgent device("dev:cc", fx.ca.root_certificate(),
                         provider::plain_provider(), fx.rng, 512);
  device.provision(
      fx.ca.issue("dev:cc", device.public_key(), kValidity, fx.rng));
  roap::InProcessTransport tx(fx.ri, kNow);
  ASSERT_TRUE(device.register_with(tx, kNow).ok());

  Bytes content = fx.rng.bytes(5000);
  dcf::Headers h;
  h.content_type = "audio/mpeg";
  h.content_id = "cid:cc";
  h.rights_issuer_url = fx.ri.url();
  dcf::Dcf dcf = fx.ci.package(h, content);
  fx.ri.add_offer(
      fx.make_offer(dcf, "ro:cc", "cid:cc", *fx.ci.kcek_for("cid:cc")));

  auto acq = device.acquire_ro(tx, "ri:cc", "ro:cc", kNow);
  ASSERT_TRUE(acq.ok());
  ASSERT_EQ(device.install_ro(*acq, kNow), agent::AgentStatus::kOk);

  // First access builds the schedule, later accesses ride the cache.
  device.aes_context_cache().reset_stats();
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(
        device.consume(dcf, rel::PermissionType::kPlay, kNow + i).status,
        agent::AgentStatus::kOk);
  }
  EXPECT_EQ(device.aes_context_cache().stats().misses, 1u);
  EXPECT_EQ(device.aes_context_cache().stats().hits, 2u);

  // Reinstalling the RO (same id) drops its cached schedule.
  ASSERT_EQ(device.install_ro(*acq, kNow), agent::AgentStatus::kOk);
  EXPECT_GE(device.aes_context_cache().stats().invalidations, 1u);
  ASSERT_EQ(device.consume(dcf, rel::PermissionType::kPlay, kNow + 9).status,
            agent::AgentStatus::kOk);
  EXPECT_EQ(device.aes_context_cache().stats().misses, 2u);
}

TEST(MeteredContentPath, ConsumeChargesThePapersPerAccessCosts) {
  ContentFixture fx;
  model::CycleLedger ledger(model::ArchitectureProfile::pure_software());
  model::MeteredCryptoProvider metered(ledger);
  agent::DrmAgent device("dev:mm", fx.ca.root_certificate(), metered,
                         fx.rng, 512);
  device.provision(
      fx.ca.issue("dev:mm", device.public_key(), kValidity, fx.rng));
  roap::InProcessTransport tx(fx.ri, kNow);
  ASSERT_TRUE(device.register_with(tx, kNow).ok());

  Bytes content = fx.rng.bytes(10000);
  dcf::Headers h;
  h.content_type = "audio/mpeg";
  h.content_id = "cid:mm";
  h.rights_issuer_url = fx.ri.url();
  dcf::Dcf dcf = fx.ci.package(h, content);
  fx.ri.add_offer(
      fx.make_offer(dcf, "ro:mm", "cid:mm", *fx.ci.kcek_for("cid:mm")));
  auto acq = device.acquire_ro(tx, "ri:cc", "ro:mm", kNow);
  ASSERT_TRUE(acq.ok());
  ASSERT_EQ(device.install_ro(*acq, kNow), agent::AgentStatus::kOk);

  // One access = exactly the §2.4.4 charges, even though the hash is
  // served from the container cache and the decrypt streams through a
  // cached key schedule: 1 SHA-1 op over the serialized container, 3
  // AES-decrypt ops (C2dev unwrap, K_CEK unwrap, payload CBC), 1 HMAC.
  const std::uint64_t sha_ops =
      ledger.ops_by_algorithm(model::Algorithm::kSha1);
  const std::uint64_t sha_blocks =
      ledger.blocks_by_algorithm(model::Algorithm::kSha1);
  const std::uint64_t aes_ops =
      ledger.ops_by_algorithm(model::Algorithm::kAesDecrypt);
  const std::uint64_t aes_blocks =
      ledger.blocks_by_algorithm(model::Algorithm::kAesDecrypt);
  const std::uint64_t hmac_ops =
      ledger.ops_by_algorithm(model::Algorithm::kHmacSha1);

  ASSERT_EQ(device.consume(dcf, rel::PermissionType::kPlay, kNow).status,
            agent::AgentStatus::kOk);

  EXPECT_EQ(ledger.ops_by_algorithm(model::Algorithm::kSha1), sha_ops + 1);
  EXPECT_EQ(ledger.blocks_by_algorithm(model::Algorithm::kSha1),
            sha_blocks + (dcf.serialized_size() + 15) / 16);
  EXPECT_EQ(ledger.ops_by_algorithm(model::Algorithm::kAesDecrypt),
            aes_ops + 3);
  // Unwrap block charges: C2dev wraps 32 bytes -> 40-byte blob -> 24
  // blocks; K_CEK wraps 16 bytes -> 24-byte blob -> 12 blocks.
  EXPECT_EQ(ledger.blocks_by_algorithm(model::Algorithm::kAesDecrypt),
            aes_blocks + dcf.encrypted_payload().size() / 16 + 24 + 12);
  EXPECT_EQ(ledger.ops_by_algorithm(model::Algorithm::kHmacSha1),
            hmac_ops + 1);

  // And a second access charges the same again — per access, per the
  // paper, cache or no cache.
  ASSERT_EQ(device.consume(dcf, rel::PermissionType::kPlay, kNow + 1).status,
            agent::AgentStatus::kOk);
  EXPECT_EQ(ledger.ops_by_algorithm(model::Algorithm::kSha1), sha_ops + 2);
  EXPECT_EQ(ledger.ops_by_algorithm(model::Algorithm::kAesDecrypt),
            aes_ops + 6);
}

}  // namespace
}  // namespace omadrm
