// Tests for the DCF container format.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/random.h"
#include "crypto/sha1.h"
#include "dcf/dcf.h"

namespace omadrm::dcf {
namespace {

using omadrm::DeterministicRng;
using omadrm::Error;

Headers sample_headers() {
  Headers h;
  h.content_type = "audio/mpeg";
  h.content_id = "cid:track-1@example.com";
  h.rights_issuer_url = "http://ri.example.com/roap";
  h.textual = {{"Title", "Song"}, {"Author", "Artist & Friends"}};
  return h;
}

TEST(Dcf, MakeAndDecrypt) {
  DeterministicRng rng(1);
  Bytes content = rng.bytes(1000);
  Bytes kcek = rng.bytes(16);
  Bytes iv = rng.bytes(16);
  Dcf d = make_dcf(sample_headers(), content, kcek, iv);
  EXPECT_EQ(d.plaintext_size(), 1000u);
  EXPECT_NE(d.encrypted_payload(), content);
  EXPECT_EQ(decrypt_dcf(d, kcek), content);
}

TEST(Dcf, SerializeParseRoundTrip) {
  DeterministicRng rng(2);
  Bytes content = rng.bytes(333);
  Dcf d = make_dcf(sample_headers(), content, rng.bytes(16), rng.bytes(16));
  Bytes wire = d.serialize();
  Dcf back = Dcf::parse(wire);
  EXPECT_EQ(back, d);
  EXPECT_EQ(back.headers().content_type, "audio/mpeg");
  EXPECT_EQ(back.headers().textual.size(), 2u);
  EXPECT_EQ(back.serialize(), wire);
}

TEST(Dcf, EmptyContentSupported) {
  DeterministicRng rng(3);
  Dcf d = make_dcf(sample_headers(), Bytes{}, rng.bytes(16), rng.bytes(16));
  EXPECT_EQ(d.plaintext_size(), 0u);
  EXPECT_EQ(d.encrypted_payload().size(), 16u);  // one padding block
  EXPECT_EQ(Dcf::parse(d.serialize()), d);
}

TEST(Dcf, HashIsStableAndTamperSensitive) {
  DeterministicRng rng(4);
  Bytes content = rng.bytes(5000);
  Dcf d = make_dcf(sample_headers(), content, rng.bytes(16), rng.bytes(16));
  Bytes h1 = d.hash();
  EXPECT_EQ(h1.size(), crypto::Sha1::kDigestSize);
  EXPECT_EQ(d.hash(), h1);

  // Any change to the serialized container changes the hash.
  Bytes wire = d.serialize();
  wire[wire.size() / 2] ^= 1;
  Dcf tampered = Dcf::parse(wire);
  EXPECT_NE(tampered.hash(), h1);
}

TEST(Dcf, WrongKeyFailsDecrypt) {
  DeterministicRng rng(5);
  Bytes content = rng.bytes(100);
  Bytes kcek = rng.bytes(16);
  Dcf d = make_dcf(sample_headers(), content, kcek, rng.bytes(16));
  Bytes wrong = rng.bytes(16);
  EXPECT_THROW(
      {
        Bytes out = decrypt_dcf(d, wrong);
        if (out == content) throw Error(ErrorKind::kFormat, "impossible");
      },
      Error);
}

TEST(Dcf, ParseRejectsCorruption) {
  DeterministicRng rng(6);
  Dcf d = make_dcf(sample_headers(), rng.bytes(50), rng.bytes(16),
                   rng.bytes(16));
  Bytes wire = d.serialize();

  Bytes bad_magic = wire;
  bad_magic[0] = 'X';
  EXPECT_THROW(Dcf::parse(bad_magic), Error);

  Bytes bad_version = wire;
  bad_version[4] = 9;
  EXPECT_THROW(Dcf::parse(bad_version), Error);

  Bytes truncated(wire.begin(), wire.end() - 3);
  EXPECT_THROW(Dcf::parse(truncated), Error);

  Bytes trailing = wire;
  trailing.push_back(0);
  EXPECT_THROW(Dcf::parse(trailing), Error);

  EXPECT_THROW(Dcf::parse(Bytes{}), Error);
}

TEST(Dcf, RejectsBadIvLength) {
  EXPECT_THROW(Dcf(sample_headers(), Bytes(8, 0), Bytes(16, 0), 0), Error);
}

class DcfSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DcfSizeSweep, RoundTripAcrossSizes) {
  DeterministicRng rng(GetParam());
  Bytes content = rng.bytes(GetParam());
  Bytes kcek = rng.bytes(16);
  Dcf d = make_dcf(sample_headers(), content, kcek, rng.bytes(16));
  Dcf back = Dcf::parse(d.serialize());
  EXPECT_EQ(decrypt_dcf(back, kcek), content);
  // Ciphertext is plaintext rounded up to the next whole block.
  EXPECT_EQ(back.encrypted_payload().size(), (GetParam() / 16 + 1) * 16);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DcfSizeSweep,
                         ::testing::Values(1, 15, 16, 17, 1024, 30 * 1024,
                                           100000));

}  // namespace
}  // namespace omadrm::dcf
