// Tests for the DCF container format and the zero-copy DcfReader.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "common/random.h"
#include "crypto/sha1.h"
#include "dcf/dcf.h"
#include "dcf/dcf_reader.h"

namespace omadrm::dcf {
namespace {

using omadrm::DeterministicRng;
using omadrm::Error;

Headers sample_headers() {
  Headers h;
  h.content_type = "audio/mpeg";
  h.content_id = "cid:track-1@example.com";
  h.rights_issuer_url = "http://ri.example.com/roap";
  h.textual = {{"Title", "Song"}, {"Author", "Artist & Friends"}};
  return h;
}

TEST(Dcf, MakeAndDecrypt) {
  DeterministicRng rng(1);
  Bytes content = rng.bytes(1000);
  Bytes kcek = rng.bytes(16);
  Bytes iv = rng.bytes(16);
  Dcf d = make_dcf(sample_headers(), content, kcek, iv);
  EXPECT_EQ(d.plaintext_size(), 1000u);
  EXPECT_NE(d.encrypted_payload(), content);
  EXPECT_EQ(decrypt_dcf(d, kcek), content);
}

TEST(Dcf, SerializeParseRoundTrip) {
  DeterministicRng rng(2);
  Bytes content = rng.bytes(333);
  Dcf d = make_dcf(sample_headers(), content, rng.bytes(16), rng.bytes(16));
  Bytes wire = d.serialize();
  Dcf back = Dcf::parse(wire);
  EXPECT_EQ(back, d);
  EXPECT_EQ(back.headers().content_type, "audio/mpeg");
  EXPECT_EQ(back.headers().textual.size(), 2u);
  EXPECT_EQ(back.serialize(), wire);
}

TEST(Dcf, EmptyContentSupported) {
  DeterministicRng rng(3);
  Dcf d = make_dcf(sample_headers(), Bytes{}, rng.bytes(16), rng.bytes(16));
  EXPECT_EQ(d.plaintext_size(), 0u);
  EXPECT_EQ(d.encrypted_payload().size(), 16u);  // one padding block
  EXPECT_EQ(Dcf::parse(d.serialize()), d);
}

TEST(Dcf, HashIsStableAndTamperSensitive) {
  DeterministicRng rng(4);
  Bytes content = rng.bytes(5000);
  Dcf d = make_dcf(sample_headers(), content, rng.bytes(16), rng.bytes(16));
  Bytes h1 = d.hash();
  EXPECT_EQ(h1.size(), crypto::Sha1::kDigestSize);
  EXPECT_EQ(d.hash(), h1);

  // Any change to the serialized container changes the hash.
  Bytes wire = d.serialize();
  wire[wire.size() / 2] ^= 1;
  Dcf tampered = Dcf::parse(wire);
  EXPECT_NE(tampered.hash(), h1);
}

TEST(Dcf, WrongKeyFailsDecrypt) {
  DeterministicRng rng(5);
  Bytes content = rng.bytes(100);
  Bytes kcek = rng.bytes(16);
  Dcf d = make_dcf(sample_headers(), content, kcek, rng.bytes(16));
  Bytes wrong = rng.bytes(16);
  EXPECT_THROW(
      {
        Bytes out = decrypt_dcf(d, wrong);
        if (out == content) throw Error(ErrorKind::kFormat, "impossible");
      },
      Error);
}

TEST(Dcf, ParseRejectsCorruption) {
  DeterministicRng rng(6);
  Dcf d = make_dcf(sample_headers(), rng.bytes(50), rng.bytes(16),
                   rng.bytes(16));
  Bytes wire = d.serialize();

  Bytes bad_magic = wire;
  bad_magic[0] = 'X';
  EXPECT_THROW(Dcf::parse(bad_magic), Error);

  Bytes bad_version = wire;
  bad_version[4] = 9;
  EXPECT_THROW(Dcf::parse(bad_version), Error);

  Bytes truncated(wire.begin(), wire.end() - 3);
  EXPECT_THROW(Dcf::parse(truncated), Error);

  Bytes trailing = wire;
  trailing.push_back(0);
  EXPECT_THROW(Dcf::parse(trailing), Error);

  EXPECT_THROW(Dcf::parse(Bytes{}), Error);
}

TEST(Dcf, RejectsBadIvLength) {
  EXPECT_THROW(Dcf(sample_headers(), Bytes(8, 0), Bytes(16, 0), 0), Error);
}

TEST(Dcf, SerializedSizeMatchesSerialize) {
  DeterministicRng rng(7);
  Dcf d = make_dcf(sample_headers(), rng.bytes(777), rng.bytes(16),
                   rng.bytes(16));
  EXPECT_EQ(d.serialized_size(), d.serialize().size());
  Dcf empty = make_dcf(Headers{}, Bytes{}, rng.bytes(16), rng.bytes(16));
  EXPECT_EQ(empty.serialized_size(), empty.serialize().size());
}

TEST(DcfReader, ViewsMatchOwnedParse) {
  DeterministicRng rng(8);
  Dcf d = make_dcf(sample_headers(), rng.bytes(4096), rng.bytes(16),
                   rng.bytes(16));
  const Bytes wire = d.serialize();
  DcfReader r = DcfReader::parse(wire);

  EXPECT_EQ(r.content_type(), d.headers().content_type);
  EXPECT_EQ(r.content_id(), d.headers().content_id);
  EXPECT_EQ(r.rights_issuer_url(), d.headers().rights_issuer_url);
  ASSERT_EQ(r.textual().size(), d.headers().textual.size());
  for (std::size_t i = 0; i < r.textual().size(); ++i) {
    EXPECT_EQ(r.textual()[i].first, d.headers().textual[i].first);
    EXPECT_EQ(r.textual()[i].second, d.headers().textual[i].second);
  }
  EXPECT_TRUE(std::equal(r.iv().begin(), r.iv().end(), d.iv().begin(),
                         d.iv().end()));
  EXPECT_TRUE(std::equal(r.encrypted_payload().begin(),
                         r.encrypted_payload().end(),
                         d.encrypted_payload().begin(),
                         d.encrypted_payload().end()));
  EXPECT_EQ(r.plaintext_size(), d.plaintext_size());

  // The views alias the wire buffer — zero copies of the payload.
  EXPECT_GE(reinterpret_cast<const std::uint8_t*>(r.content_type().data()),
            wire.data());
  EXPECT_EQ(r.encrypted_payload().data(),
            wire.data() + wire.size() - r.encrypted_payload().size());

  // The one-pass hash equals the serialize-then-hash value.
  EXPECT_TRUE(std::equal(r.hash().begin(), r.hash().end(),
                         d.hash().begin(), d.hash().end()));

  // Owned round trip for callers that outlive the buffer.
  EXPECT_EQ(r.to_dcf(), d);
}

TEST(DcfReader, RejectsSameCorruptionAsOwnedParse) {
  DeterministicRng rng(9);
  Dcf d = make_dcf(sample_headers(), rng.bytes(50), rng.bytes(16),
                   rng.bytes(16));
  Bytes wire = d.serialize();

  Bytes bad_magic = wire;
  bad_magic[0] = 'X';
  EXPECT_THROW(DcfReader::parse(bad_magic), Error);

  Bytes bad_version = wire;
  bad_version[4] = 9;
  EXPECT_THROW(DcfReader::parse(bad_version), Error);

  Bytes truncated(wire.begin(), wire.end() - 3);
  EXPECT_THROW(DcfReader::parse(truncated), Error);

  Bytes trailing = wire;
  trailing.push_back(0);
  EXPECT_THROW(DcfReader::parse(trailing), Error);

  EXPECT_THROW(DcfReader::parse(Bytes{}), Error);
}

class DcfSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DcfSizeSweep, RoundTripAcrossSizes) {
  DeterministicRng rng(GetParam());
  Bytes content = rng.bytes(GetParam());
  Bytes kcek = rng.bytes(16);
  Dcf d = make_dcf(sample_headers(), content, kcek, rng.bytes(16));
  Dcf back = Dcf::parse(d.serialize());
  EXPECT_EQ(decrypt_dcf(back, kcek), content);
  // Ciphertext is plaintext rounded up to the next whole block.
  EXPECT_EQ(back.encrypted_payload().size(), (GetParam() / 16 + 1) * 16);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DcfSizeSweep,
                         ::testing::Values(1, 15, 16, 17, 1024, 30 * 1024,
                                           100000));

}  // namespace
}  // namespace omadrm::dcf
