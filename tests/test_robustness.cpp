// Robustness suite: every parser in the stack is fed mutated and garbage
// input. The contract is uniform — malformed input either throws
// omadrm::Error or yields an object that subsequently fails verification;
// nothing crashes, loops, or silently succeeds with corrupted security
// state. (Deterministic mutation fuzzing: every run exercises the same
// inputs.)
#include <gtest/gtest.h>

#include "agent/drm_agent.h"
#include "asn1/der.h"
#include "ci/content_issuer.h"
#include "common/base64.h"
#include "common/error.h"
#include "common/hex.h"
#include "common/random.h"
#include "dcf/dcf.h"
#include "pki/authority.h"
#include "provider/provider.h"
#include "ri/rights_issuer.h"
#include "roap/messages.h"
#include "roap/transport.h"
#include "xml/xml.h"

namespace omadrm {
namespace {

constexpr std::uint64_t kNow = 1100000000;
const pki::Validity kValidity{kNow - 86400, kNow + 365 * 86400};

/// Applies `n` random single-byte mutations.
Bytes mutate(Bytes data, Rng& rng, int n = 1) {
  for (int i = 0; i < n && !data.empty(); ++i) {
    std::size_t pos = rng.uniform(data.size());
    switch (rng.uniform(3)) {
      case 0: data[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform(255)); break;
      case 1: data.erase(data.begin() + static_cast<std::ptrdiff_t>(pos)); break;
      default:
        data.insert(data.begin() + static_cast<std::ptrdiff_t>(pos),
                    static_cast<std::uint8_t>(rng.uniform(256)));
    }
  }
  return data;
}

TEST(Robustness, XmlParserNeverCrashesOnMutations) {
  DeterministicRng rng(0xF00);
  xml::Element doc("roap:roRequest");
  doc.set_attr("id", "x");
  doc.add_text_child("roap:deviceID", "device & <friends>");
  std::string wire = doc.serialize();
  int parsed = 0, rejected = 0;
  for (int i = 0; i < 500; ++i) {
    Bytes m = mutate(to_bytes(wire), rng, 1 + static_cast<int>(rng.uniform(4)));
    try {
      xml::Element e = xml::parse(to_string(m));
      ++parsed;  // structurally still valid XML — fine
    } catch (const Error&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(parsed + rejected, 500);
}

TEST(Robustness, XmlParserOnRandomGarbage) {
  DeterministicRng rng(0xF01);
  for (int i = 0; i < 300; ++i) {
    Bytes garbage = rng.bytes(1 + rng.uniform(200));
    try {
      xml::parse(to_string(garbage));
    } catch (const Error&) {
      // expected almost always
    }
  }
  SUCCEED();
}

TEST(Robustness, DerDecoderOnMutatedCertificates) {
  DeterministicRng rng(0xF02);
  pki::CertificationAuthority ca("Fuzz CA", 512, kValidity, rng);
  rsa::PrivateKey leaf_key = rsa::generate_key(512, rng);
  pki::Certificate cert =
      ca.issue("leaf", leaf_key.public_key(), kValidity, rng);
  Bytes der = cert.to_der();

  int structurally_ok_but_invalid = 0;
  for (int i = 0; i < 400; ++i) {
    Bytes m = mutate(der, rng);
    try {
      pki::Certificate parsed = pki::Certificate::from_der(m);
      // Structure survived the mutation: the signature must not.
      pki::CertStatus status = pki::verify_certificate(
          parsed, ca.public_key(), "Fuzz CA", kNow);
      if (status == pki::CertStatus::kValid) {
        // Only acceptable if the mutation did not change any covered byte
        // (possible when insert+erase cancel out); re-serialize to check.
        EXPECT_EQ(parsed.to_der(), der) << "mutation " << i;
      } else {
        ++structurally_ok_but_invalid;
      }
    } catch (const Error&) {
      // rejected at parse — fine
    }
  }
  EXPECT_GT(structurally_ok_but_invalid, 0);
}

TEST(Robustness, DerDecoderOnRandomGarbage) {
  DeterministicRng rng(0xF03);
  for (int i = 0; i < 300; ++i) {
    Bytes garbage = rng.bytes(1 + rng.uniform(120));
    try {
      asn1::Decoder d(garbage);
      (void)d.read_sequence();
    } catch (const Error&) {
    }
    try {
      pki::Certificate::from_der(garbage);
    } catch (const Error&) {
    }
    try {
      pki::OcspResponse::from_der(garbage);
    } catch (const Error&) {
    }
  }
  SUCCEED();
}

TEST(Robustness, DcfParserOnMutations) {
  DeterministicRng rng(0xF04);
  dcf::Headers h;
  h.content_type = "audio/mpeg";
  h.content_id = "cid:fuzz";
  h.rights_issuer_url = "http://ri/";
  dcf::Dcf d = dcf::make_dcf(h, rng.bytes(500), rng.bytes(16), rng.bytes(16));
  Bytes wire = d.serialize();
  Bytes original_hash = d.hash();

  for (int i = 0; i < 400; ++i) {
    Bytes m = mutate(wire, rng);
    try {
      dcf::Dcf parsed = dcf::Dcf::parse(m);
      // Parsed fine: then the DCF hash binding must catch the change,
      // unless the mutations cancelled out byte-for-byte.
      if (parsed.hash() == original_hash) {
        EXPECT_EQ(parsed.serialize(), wire);
      }
    } catch (const Error&) {
    }
  }
  SUCCEED();
}

class RoMutationFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<DeterministicRng>(0xF05);
    ca_ = std::make_unique<pki::CertificationAuthority>("CMLA Root", 1024,
                                                        kValidity, *rng_);
    ci_ = std::make_unique<ci::ContentIssuer>(
        "c.example", provider::plain_provider(), *rng_);
    ri_ = std::make_unique<ri::RightsIssuer>(
        "ri.example", "http://ri.example/roap", *ca_, kValidity,
        provider::plain_provider(), *rng_);
    device_ = std::make_unique<agent::DrmAgent>(
        "device-01", ca_->root_certificate(), provider::plain_provider(),
        *rng_);
    device_->provision(
        ca_->issue("device-01", device_->public_key(), kValidity, *rng_));

    dcf::Headers h;
    h.content_type = "audio/mpeg";
    h.content_id = "cid:fuzz@c.example";
    h.rights_issuer_url = ri_->url();
    dcf::Dcf dcf = ci_->package(h, rng_->bytes(800));

    ri::LicenseOffer offer;
    offer.ro_id = "ro:fuzz";
    offer.content_id = h.content_id;
    offer.dcf_hash = dcf.hash();
    rel::Permission play;
    play.type = rel::PermissionType::kPlay;
    offer.permissions = {play};
    offer.kcek = *ci_->kcek_for(h.content_id);
    ri_->add_offer(offer);

    roap::InProcessTransport transport(*ri_, kNow);
    ASSERT_EQ(device_->register_with(transport, kNow),
              agent::AgentStatus::kOk);
    auto acq = device_->acquire_ro(transport, "ri.example", "ro:fuzz", kNow);
    ASSERT_EQ(acq, agent::AgentStatus::kOk);
    ro_wire_ = acq->to_xml().serialize();
  }

  std::unique_ptr<DeterministicRng> rng_;
  std::unique_ptr<pki::CertificationAuthority> ca_;
  std::unique_ptr<ci::ContentIssuer> ci_;
  std::unique_ptr<ri::RightsIssuer> ri_;
  std::unique_ptr<agent::DrmAgent> device_;
  std::string ro_wire_;
};

TEST_F(RoMutationFixture, MutatedProtectedRoNeverInstallsCleanly) {
  DeterministicRng mut_rng(0xF06);
  int installed_identical = 0, refused = 0;
  for (int i = 0; i < 250; ++i) {
    Bytes m = mutate(to_bytes(ro_wire_), mut_rng,
                     1 + static_cast<int>(mut_rng.uniform(3)));
    roap::ProtectedRo ro;
    try {
      ro = roap::ProtectedRo::from_xml(xml::parse(to_string(m)));
    } catch (const Error&) {
      ++refused;
      continue;
    }
    agent::AgentStatus status = device_->install_ro(ro, kNow);
    if (status == agent::AgentStatus::kOk) {
      // Installing is only legitimate when the document is semantically
      // unchanged (e.g. whitespace/mutation cancelled out).
      EXPECT_EQ(ro.to_xml().serialize(), ro_wire_) << "mutation " << i;
      ++installed_identical;
    } else {
      ++refused;
    }
  }
  EXPECT_EQ(installed_identical + refused, 250);
  EXPECT_GT(refused, 200);
}

TEST_F(RoMutationFixture, MutatedAgentStateNeverImportsSilently) {
  ASSERT_EQ(device_->install_ro(
                roap::ProtectedRo::from_xml(xml::parse(ro_wire_)), kNow),
            agent::AgentStatus::kOk);
  Bytes image = device_->export_state();
  DeterministicRng mut_rng(0xF07);
  for (int i = 0; i < 150; ++i) {
    Bytes m = mutate(image, mut_rng, 1 + static_cast<int>(mut_rng.uniform(3)));
    agent::DrmAgent scratch("scratch", ca_->root_certificate(),
                            provider::plain_provider(), *rng_, 512);
    try {
      scratch.import_state(m);
      // Import succeeded: state must be internally consistent enough to
      // re-export without crashing.
      Bytes roundtrip = scratch.export_state();
      EXPECT_FALSE(roundtrip.empty());
    } catch (const Error&) {
      // rejected — fine
    }
  }
  SUCCEED();
}

TEST(Robustness, Base64AndHexGarbage) {
  DeterministicRng rng(0xF08);
  for (int i = 0; i < 200; ++i) {
    Bytes garbage = rng.bytes(1 + rng.uniform(64));
    std::string s = to_string(garbage);
    try {
      base64_decode(s);
    } catch (const Error&) {
    }
    try {
      from_hex(s);
    } catch (const Error&) {
    }
  }
  SUCCEED();
}

TEST(Robustness, RoapMessagesFromForeignXml) {
  // Structurally valid XML documents that are not the expected message
  // must be rejected with kFormat, not crash.
  const char* docs[] = {
      "<roap:roResponse status=\"Success\"/>",
      "<roap:registrationResponse status=\"Bogus\"/>",
      "<roap:protectedRO><o-ex:rights/></roap:protectedRO>",
      "<roap:joinDomainResponse status=\"Success\">"
      "<roap:domainID>d</roap:domainID>"
      "<roap:generation>99999999999999</roap:generation>"
      "<roap:domainKey>AAAA</roap:domainKey></roap:joinDomainResponse>",
  };
  for (const char* doc : docs) {
    xml::Element e = xml::parse(doc);
    bool threw = false;
    try {
      (void)roap::RoResponse::from_xml(e);
    } catch (const Error&) {
      threw = true;
    }
    try {
      (void)roap::RegistrationResponse::from_xml(e);
    } catch (const Error&) {
      threw = true;
    }
    try {
      (void)roap::ProtectedRo::from_xml(e);
    } catch (const Error&) {
      threw = true;
    }
    try {
      (void)roap::JoinDomainResponse::from_xml(e);
    } catch (const Error&) {
      threw = true;
    }
    EXPECT_TRUE(threw) << doc;
  }
}

}  // namespace
}  // namespace omadrm
