// Tests for the cycle-cost model: Table 1 values, architecture profiles,
// ledger accounting, metering correctness, and reproduction of the
// paper's Figures 5, 6 and 7 (shape and magnitude).
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "model/analytic.h"
#include "model/energy.h"
#include "model/metered.h"
#include "model/report.h"
#include "model/usecase.h"

namespace omadrm::model {
namespace {

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

TEST(CostTable, PaperValuesVerbatim) {
  CostTable t = CostTable::paper_table1();
  auto sw = [&](Algorithm a) { return t.cost(a, Engine::kSoftware); };
  auto hw = [&](Algorithm a) { return t.cost(a, Engine::kHardware); };

  EXPECT_EQ(sw(Algorithm::kAesEncrypt).fixed_cycles, 360);
  EXPECT_EQ(sw(Algorithm::kAesEncrypt).cycles_per_block, 830);
  EXPECT_EQ(hw(Algorithm::kAesEncrypt).cycles_per_block, 10);

  EXPECT_EQ(sw(Algorithm::kAesDecrypt).fixed_cycles, 950);
  EXPECT_EQ(hw(Algorithm::kAesDecrypt).fixed_cycles, 10);

  EXPECT_EQ(sw(Algorithm::kSha1).cycles_per_block, 400);
  EXPECT_EQ(hw(Algorithm::kSha1).cycles_per_block, 20);

  EXPECT_EQ(sw(Algorithm::kHmacSha1).fixed_cycles, 1200);
  EXPECT_EQ(hw(Algorithm::kHmacSha1).fixed_cycles, 240);

  EXPECT_EQ(sw(Algorithm::kRsaPublic).cycles_per_block, 2160000);
  EXPECT_EQ(hw(Algorithm::kRsaPublic).cycles_per_block, 10000);
  EXPECT_EQ(sw(Algorithm::kRsaPrivate).cycles_per_block, 37740000);
  EXPECT_EQ(hw(Algorithm::kRsaPrivate).cycles_per_block, 260000);
}

TEST(CostTable, Blocks128Rounding) {
  EXPECT_EQ(blocks128(0), 0u);
  EXPECT_EQ(blocks128(1), 1u);
  EXPECT_EQ(blocks128(16), 1u);
  EXPECT_EQ(blocks128(17), 2u);
  EXPECT_EQ(blocks128(3670016), 229376u);  // the 3.5 MB music file
}

// ---------------------------------------------------------------------------
// Architecture profiles
// ---------------------------------------------------------------------------

TEST(Profiles, PaperVariantsConfiguredCorrectly) {
  auto sw = ArchitectureProfile::pure_software();
  auto mixed = ArchitectureProfile::symmetric_hardware();
  auto hw = ArchitectureProfile::full_hardware();

  for (std::size_t i = 0; i < kAlgorithmCount; ++i) {
    Algorithm a = static_cast<Algorithm>(i);
    EXPECT_EQ(sw.engine(a), Engine::kSoftware);
    EXPECT_EQ(hw.engine(a), Engine::kHardware);
  }
  // Mixed: symmetric crypto in hardware, PKI in software.
  EXPECT_EQ(mixed.engine(Algorithm::kAesEncrypt), Engine::kHardware);
  EXPECT_EQ(mixed.engine(Algorithm::kAesDecrypt), Engine::kHardware);
  EXPECT_EQ(mixed.engine(Algorithm::kSha1), Engine::kHardware);
  EXPECT_EQ(mixed.engine(Algorithm::kHmacSha1), Engine::kHardware);
  EXPECT_EQ(mixed.engine(Algorithm::kRsaPublic), Engine::kSoftware);
  EXPECT_EQ(mixed.engine(Algorithm::kRsaPrivate), Engine::kSoftware);

  EXPECT_EQ(sw.clock_hz, 200e6);  // the paper's 200 MHz
}

TEST(Profiles, CycleFormula) {
  auto p = ArchitectureProfile::pure_software();
  // One AES encryption op over 10 blocks: 360 + 830*10.
  EXPECT_DOUBLE_EQ(p.cycles(Algorithm::kAesEncrypt, 1, 10), 8660);
  // Two RSA private ops.
  EXPECT_DOUBLE_EQ(p.cycles(Algorithm::kRsaPrivate, 2, 2), 2 * 37740000.0);
  // ms conversion at 200 MHz.
  EXPECT_DOUBLE_EQ(p.cycles_to_ms(200e6), 1000.0);
}

// ---------------------------------------------------------------------------
// Ledger
// ---------------------------------------------------------------------------

TEST(Ledger, PhaseAndAlgorithmAttribution) {
  CycleLedger ledger(ArchitectureProfile::pure_software());
  ledger.set_phase(Phase::kRegistration);
  ledger.charge(Algorithm::kRsaPrivate, 1, 1);
  {
    CycleLedger::PhaseScope scope(ledger, Phase::kConsumption);
    ledger.charge(Algorithm::kSha1, 1, 100);
  }
  EXPECT_EQ(ledger.phase(), Phase::kRegistration);  // scope restored

  EXPECT_DOUBLE_EQ(ledger.cycles(Phase::kRegistration, Algorithm::kRsaPrivate),
                   37740000.0);
  EXPECT_DOUBLE_EQ(ledger.cycles(Phase::kConsumption, Algorithm::kSha1),
                   40000.0);
  EXPECT_DOUBLE_EQ(ledger.cycles(Phase::kConsumption, Algorithm::kRsaPrivate),
                   0.0);
  EXPECT_DOUBLE_EQ(ledger.total_cycles(), 37780000.0);
  EXPECT_EQ(ledger.ops_by_algorithm(Algorithm::kRsaPrivate), 1u);
  EXPECT_EQ(ledger.blocks_by_algorithm(Algorithm::kSha1), 100u);
  EXPECT_DOUBLE_EQ(ledger.pki_cycles(), 37740000.0);
  EXPECT_DOUBLE_EQ(ledger.symmetric_cycles(), 40000.0);

  ledger.reset();
  EXPECT_DOUBLE_EQ(ledger.total_cycles(), 0.0);
}

TEST(Ledger, EngineAttributionFollowsProfile) {
  CycleLedger ledger(ArchitectureProfile::symmetric_hardware());
  ledger.set_phase(Phase::kConsumption);
  ledger.charge(Algorithm::kSha1, 1, 10);        // hardware in this profile
  ledger.charge(Algorithm::kRsaPublic, 1, 1);    // software
  EXPECT_DOUBLE_EQ(ledger.cycles_by_engine(Engine::kHardware), 200.0);
  EXPECT_DOUBLE_EQ(ledger.cycles_by_engine(Engine::kSoftware), 2160000.0);
}

// ---------------------------------------------------------------------------
// Metered provider: each call charges exactly the documented rule.
// ---------------------------------------------------------------------------

class MeteredFixture : public ::testing::Test {
 protected:
  MeteredFixture()
      : ledger_(ArchitectureProfile::pure_software()), provider_(ledger_) {
    ledger_.set_phase(Phase::kOther);
  }
  CycleLedger ledger_;
  MeteredCryptoProvider provider_;
};

TEST_F(MeteredFixture, Sha1ChargesPerBlock) {
  provider_.sha1(Bytes(160, 0));  // 10 blocks
  EXPECT_DOUBLE_EQ(ledger_.cycles_by_algorithm(Algorithm::kSha1), 4000.0);
  EXPECT_EQ(ledger_.ops_by_algorithm(Algorithm::kSha1), 1u);
}

TEST_F(MeteredFixture, HmacChargesFixedPlusBlocks) {
  provider_.hmac_sha1(Bytes(16, 1), Bytes(32, 0));  // 2 blocks
  EXPECT_DOUBLE_EQ(ledger_.cycles_by_algorithm(Algorithm::kHmacSha1),
                   1200 + 2 * 400.0);
}

TEST_F(MeteredFixture, CbcChargesPaddedBlocks) {
  DeterministicRng rng(1);
  Bytes key = rng.bytes(16), iv = rng.bytes(16);
  Bytes ct = provider_.aes_cbc_encrypt(key, iv, Bytes(32, 0));  // 3 blocks out
  EXPECT_DOUBLE_EQ(ledger_.cycles_by_algorithm(Algorithm::kAesEncrypt),
                   360 + 3 * 830.0);
  provider_.aes_cbc_decrypt(key, iv, ct);
  EXPECT_DOUBLE_EQ(ledger_.cycles_by_algorithm(Algorithm::kAesDecrypt),
                   950 + 3 * 830.0);
}

TEST_F(MeteredFixture, WrapChargesSixPerHalfBlock) {
  DeterministicRng rng(2);
  Bytes kek = rng.bytes(16);
  Bytes wrapped = provider_.aes_wrap(kek, Bytes(32, 7));  // n=4 -> 24 blocks
  EXPECT_DOUBLE_EQ(ledger_.cycles_by_algorithm(Algorithm::kAesEncrypt),
                   360 + 24 * 830.0);
  provider_.aes_unwrap(kek, wrapped);  // 40 bytes -> n=4 -> 24 blocks
  EXPECT_DOUBLE_EQ(ledger_.cycles_by_algorithm(Algorithm::kAesDecrypt),
                   950 + 24 * 830.0);
}

TEST_F(MeteredFixture, KdfChargesShaBlocks) {
  provider_.kdf2(Bytes(128, 3), 16);  // 1 round of SHA1(132 bytes) = 9 blocks
  EXPECT_DOUBLE_EQ(ledger_.cycles_by_algorithm(Algorithm::kSha1),
                   9 * 400.0);
  EXPECT_EQ(MeteredCryptoProvider::kdf2_blocks128(128, 16), 9u);
  EXPECT_EQ(MeteredCryptoProvider::kdf2_blocks128(128, 40), 18u);
}

TEST_F(MeteredFixture, PssChargesHashPlusRsa) {
  DeterministicRng rng(3);
  rsa::PrivateKey key = rsa::generate_key(512, rng);
  Bytes msg(160, 5);  // 10 blocks
  Bytes sig = provider_.pss_sign(key, msg, rng);
  EXPECT_EQ(ledger_.ops_by_algorithm(Algorithm::kRsaPrivate), 1u);
  EXPECT_DOUBLE_EQ(ledger_.cycles_by_algorithm(Algorithm::kSha1),
                   (10 + kPssOverheadBlocks128) * 400.0);
  EXPECT_TRUE(provider_.pss_verify(key.public_key(), msg, sig));
  EXPECT_EQ(ledger_.ops_by_algorithm(Algorithm::kRsaPublic), 1u);
}

TEST_F(MeteredFixture, KemChargesRsaPlusKdf) {
  DeterministicRng rng(4);
  rsa::PrivateKey key = rsa::generate_key(1024, rng);
  rsa::KemEncapsulation enc =
      provider_.kem_encapsulate(key.public_key(), rng);
  EXPECT_EQ(ledger_.ops_by_algorithm(Algorithm::kRsaPublic), 1u);
  Bytes kek = provider_.kem_decapsulate(key, enc.c1);
  EXPECT_EQ(ledger_.ops_by_algorithm(Algorithm::kRsaPrivate), 1u);
  EXPECT_EQ(kek, enc.kek);
  // KDF hashing charged on both sides.
  EXPECT_DOUBLE_EQ(ledger_.cycles_by_algorithm(Algorithm::kSha1),
                   2 * 9 * 400.0);
}

// ---------------------------------------------------------------------------
// The paper's experiments.
// ---------------------------------------------------------------------------

double rel_dev(double model, double paper) {
  return std::abs(model - paper) / paper;
}

class ExecutedUseCases : public ::testing::Test {
 protected:
  // Full protocol executions are expensive (real RSA keygen + megabytes of
  // real AES/SHA-1); run each spec x variant once and share.
  static void SetUpTestSuite() {
    music_ = new VariantMs(run_variants(UseCaseSpec::music_player()));
    ringtone_ = new VariantMs(run_variants(UseCaseSpec::ringtone()));
  }
  static void TearDownTestSuite() {
    delete music_;
    delete ringtone_;
    music_ = nullptr;
    ringtone_ = nullptr;
  }
  static VariantMs music() { return *music_; }
  static VariantMs ringtone() { return *ringtone_; }

 private:
  static VariantMs* music_;
  static VariantMs* ringtone_;
};

VariantMs* ExecutedUseCases::music_ = nullptr;
VariantMs* ExecutedUseCases::ringtone_ = nullptr;

TEST_F(ExecutedUseCases, Figure6MusicPlayerMagnitudes) {
  // Paper: SW 7730 ms, SW/HW 800 ms, HW 190 ms (log-scale chart labels).
  EXPECT_LT(rel_dev(music().sw, kPaperFig6MusicPlayer.sw), 0.10) << music().sw;
  EXPECT_LT(rel_dev(music().swhw, kPaperFig6MusicPlayer.swhw), 0.15)
      << music().swhw;
  EXPECT_LT(rel_dev(music().hw, kPaperFig6MusicPlayer.hw), 0.15)
      << music().hw;
}

TEST_F(ExecutedUseCases, Figure7RingtoneMagnitudes) {
  // Paper: SW 900 ms, SW/HW 620 ms, HW 12 ms.
  EXPECT_LT(rel_dev(ringtone().sw, kPaperFig7Ringtone.sw), 0.10)
      << ringtone().sw;
  EXPECT_LT(rel_dev(ringtone().swhw, kPaperFig7Ringtone.swhw), 0.10)
      << ringtone().swhw;
  EXPECT_LT(rel_dev(ringtone().hw, kPaperFig7Ringtone.hw), 0.30)
      << ringtone().hw;
}

TEST_F(ExecutedUseCases, Figure6ShapeSymmetricHardwareCutsToTenth) {
  // §4: "total processing time can be cut to almost a tenth ... by
  // realizing AES and SHA-1 as dedicated hardware macros".
  EXPECT_GT(music().sw / music().swhw, 8.0);
  EXPECT_LT(music().sw / music().swhw, 12.0);
  // Ordering: SW > SW/HW > HW in both use cases.
  EXPECT_GT(music().sw, music().swhw);
  EXPECT_GT(music().swhw, music().hw);
  EXPECT_GT(ringtone().sw, ringtone().swhw);
  EXPECT_GT(ringtone().swhw, ringtone().hw);
}

TEST_F(ExecutedUseCases, Figure7ShapePkiHardwareIsTheBigStep) {
  // In the Ringtone case the significant step is PKI hardware support:
  // SW -> SW/HW is a modest gain, SW/HW -> HW is dramatic.
  double symmetric_gain = ringtone().sw / ringtone().swhw;
  double pki_gain = ringtone().swhw / ringtone().hw;
  EXPECT_LT(symmetric_gain, 2.0);
  EXPECT_GT(pki_gain, 20.0);
}

TEST(UseCaseModel, Figure5RelativeImportanceShapes) {
  // Figure 5 (software profile): AES + SHA-1 dominate the Music Player
  // case; the PKI private-key operation dominates the Ringtone case.
  // The analytic model is exact enough for shares.
  auto sw = ArchitectureProfile::pure_software();
  UseCaseReport music = analytic_use_case(UseCaseSpec::music_player(), sw);
  UseCaseReport ring = analytic_use_case(UseCaseSpec::ringtone(), sw);

  double music_symmetric = music.share(Algorithm::kAesDecrypt) +
                           music.share(Algorithm::kSha1) +
                           music.share(Algorithm::kAesEncrypt) +
                           music.share(Algorithm::kHmacSha1);
  double music_pki = music.share(Algorithm::kRsaPublic) +
                     music.share(Algorithm::kRsaPrivate);
  EXPECT_GT(music_symmetric, 0.85);
  EXPECT_LT(music_pki, 0.15);

  double ring_pki = ring.share(Algorithm::kRsaPublic) +
                    ring.share(Algorithm::kRsaPrivate);
  EXPECT_GT(ring_pki, 0.60);
  EXPECT_GT(ring.share(Algorithm::kRsaPrivate),
            ring.share(Algorithm::kRsaPublic));
  // AES decryption outweighs SHA-1 in the music case (830 vs 400 per
  // block over the same file, plus the CBC payload).
  EXPECT_GT(music.share(Algorithm::kAesDecrypt),
            music.share(Algorithm::kSha1));
}

TEST(UseCaseModel, PkiSoftwareCostRoughly600Ms) {
  // §4: PKI operations total "roughly 600ms" in software, independent of
  // the use case (identical absolute figures for both).
  auto sw = ArchitectureProfile::pure_software();
  UseCaseReport music = analytic_use_case(UseCaseSpec::music_player(), sw);
  UseCaseReport ring = analytic_use_case(UseCaseSpec::ringtone(), sw);
  double music_pki_ms = sw.cycles_to_ms(music.ledger.pki_cycles());
  double ring_pki_ms = sw.cycles_to_ms(ring.ledger.pki_cycles());
  EXPECT_DOUBLE_EQ(music_pki_ms, ring_pki_ms);  // size-independent
  EXPECT_GT(music_pki_ms, 550.0);
  EXPECT_LT(music_pki_ms, 660.0);
}

TEST(UseCaseModel, RsaOpCountsMatchDesignDoc) {
  // DESIGN.md §4: 3 private + 4 public RSA operations across the one-time
  // phases, none during consumption.
  UseCaseReport r = run_use_case(UseCaseSpec::ringtone(),
                                 ArchitectureProfile::pure_software());
  const CycleLedger& l = r.ledger;
  EXPECT_EQ(l.ops(Phase::kRegistration, Algorithm::kRsaPrivate), 1u);
  EXPECT_EQ(l.ops(Phase::kRegistration, Algorithm::kRsaPublic), 3u);
  EXPECT_EQ(l.ops(Phase::kAcquisition, Algorithm::kRsaPrivate), 1u);
  EXPECT_EQ(l.ops(Phase::kAcquisition, Algorithm::kRsaPublic), 1u);
  EXPECT_EQ(l.ops(Phase::kInstallation, Algorithm::kRsaPrivate), 1u);
  EXPECT_EQ(l.ops(Phase::kInstallation, Algorithm::kRsaPublic), 0u);
  EXPECT_EQ(l.ops(Phase::kConsumption, Algorithm::kRsaPrivate), 0u);
  EXPECT_EQ(l.ops(Phase::kConsumption, Algorithm::kRsaPublic), 0u);
}

TEST(UseCaseModel, AnalyticMatchesExecuted) {
  // The closed-form model must agree with the executed protocol within a
  // small tolerance (nominal vs actual small-message sizes).
  for (bool domain : {false, true}) {
    UseCaseSpec spec = UseCaseSpec::ringtone();
    spec.domain_ro = domain;
    const ArchitectureProfile profiles[] = {
        ArchitectureProfile::pure_software(),
        ArchitectureProfile::symmetric_hardware(),
        ArchitectureProfile::full_hardware()};
    for (const auto& profile : profiles) {
      UseCaseReport executed = run_use_case(spec, profile);
      UseCaseReport analytic = analytic_use_case(spec, profile);
      EXPECT_LT(rel_dev(analytic.total_cycles(), executed.total_cycles()),
                0.02)
          << profile.name << " domain=" << domain
          << " analytic=" << analytic.total_cycles()
          << " executed=" << executed.total_cycles();
      // RSA op counts agree exactly.
      for (Algorithm a : {Algorithm::kRsaPublic, Algorithm::kRsaPrivate}) {
        EXPECT_EQ(analytic.ledger.ops_by_algorithm(a),
                  executed.ledger.ops_by_algorithm(a))
            << profile.name << " domain=" << domain << " " << to_string(a);
      }
    }
  }
}

TEST(UseCaseModel, DomainRoAddsOnePublicOpAtInstall) {
  auto sw = ArchitectureProfile::pure_software();
  UseCaseSpec device_spec = UseCaseSpec::ringtone();
  UseCaseSpec domain_spec = device_spec;
  domain_spec.domain_ro = true;
  UseCaseReport device_ro = analytic_use_case(device_spec, sw);
  UseCaseReport domain_ro = analytic_use_case(domain_spec, sw);
  // Installation: the domain RO trades the RSADP for a signature verify.
  EXPECT_EQ(
      domain_ro.ledger.ops(Phase::kInstallation, Algorithm::kRsaPublic), 1u);
  EXPECT_EQ(
      domain_ro.ledger.ops(Phase::kInstallation, Algorithm::kRsaPrivate), 0u);
  EXPECT_EQ(
      device_ro.ledger.ops(Phase::kInstallation, Algorithm::kRsaPrivate), 1u);
}

TEST(UseCaseModel, CountConstraintDoesNotChangeCost) {
  auto sw = ArchitectureProfile::pure_software();
  UseCaseSpec spec = UseCaseSpec::ringtone();
  spec.play_count_limit = 25;
  UseCaseReport limited = run_use_case(spec, sw);
  UseCaseReport unlimited =
      run_use_case(UseCaseSpec::ringtone(), sw);
  EXPECT_LT(rel_dev(limited.total_cycles(), unlimited.total_cycles()), 0.001);
}

TEST(Energy, ProportionalToCyclesByDefault) {
  auto profile = ArchitectureProfile::symmetric_hardware();
  CycleLedger ledger(profile);
  ledger.set_phase(Phase::kConsumption);
  ledger.charge(Algorithm::kSha1, 1, 1000);      // HW
  ledger.charge(Algorithm::kRsaPrivate, 1, 1);   // SW
  EnergyModel paper_default;
  EXPECT_DOUBLE_EQ(paper_default.energy_units(ledger),
                   ledger.total_cycles());
  // Hardware-efficiency knob widens the gap (§5's hypothesis).
  EnergyModel efficient{1.0, 0.2};
  EXPECT_LT(efficient.energy_units(ledger), ledger.total_cycles());
  EXPECT_DOUBLE_EQ(efficient.energy_units(ledger),
                   ledger.cycles_by_engine(Engine::kSoftware) +
                       0.2 * ledger.cycles_by_engine(Engine::kHardware));
}

TEST(Profiles, ClockScalingIsLinear) {
  // The model's ms figures scale inversely with the clock; cycles do not.
  UseCaseSpec spec = UseCaseSpec::ringtone();
  ArchitectureProfile p200 = ArchitectureProfile::pure_software();
  ArchitectureProfile p400 = p200;
  p400.clock_hz = 400e6;
  UseCaseReport slow = analytic_use_case(spec, p200);
  UseCaseReport fast = analytic_use_case(spec, p400);
  EXPECT_DOUBLE_EQ(slow.total_cycles(), fast.total_cycles());
  EXPECT_NEAR(slow.total_ms() / fast.total_ms(), 2.0, 1e-9);
}

TEST(Profiles, CustomCostTableFlowsThrough) {
  // A designer can evaluate a different RSA implementation by editing the
  // table; the model must honour it.
  UseCaseSpec spec = UseCaseSpec::ringtone();
  ArchitectureProfile base = ArchitectureProfile::pure_software();
  ArchitectureProfile faster_rsa = base;
  faster_rsa.table.software[static_cast<std::size_t>(
      Algorithm::kRsaPrivate)] = {0, 10000000};  // hypothetical faster core
  double base_ms = analytic_use_case(spec, base).total_ms();
  double fast_ms = analytic_use_case(spec, faster_rsa).total_ms();
  // 3 private ops saved (37.74M - 10M) cycles each = 416 ms at 200 MHz.
  EXPECT_NEAR(base_ms - fast_ms, 3 * (37740000.0 - 10000000.0) / 200e3,
              1e-6);
}

TEST(UseCaseModel, PlaybackScalingIsAffine) {
  // Total cycles = one-time phases + plays * per-access cost: evaluating
  // at three play counts must be collinear.
  auto sw = ArchitectureProfile::pure_software();
  auto at_plays = [&](std::size_t n) {
    UseCaseSpec spec = UseCaseSpec::ringtone();
    spec.playbacks = n;
    return analytic_use_case(spec, sw).total_cycles();
  };
  double c1 = at_plays(1), c2 = at_plays(2), c5 = at_plays(5);
  double per_play = c2 - c1;
  EXPECT_NEAR(c5, c1 + 4 * per_play, 1.0);
  EXPECT_GT(per_play, 0);
}

TEST(UseCaseModel, ContentSizeScalingIsAffinePerPlay) {
  auto sw = ArchitectureProfile::pure_software();
  auto at_size = [&](std::size_t kb) {
    UseCaseSpec spec;
    spec.name = "scaling";
    spec.content_bytes = kb * 1024;
    spec.playbacks = 1;
    return analytic_use_case(spec, sw).total_cycles();
  };
  double c64 = at_size(64), c128 = at_size(128), c256 = at_size(256);
  // Doubling size doubles the size-dependent part.
  EXPECT_NEAR(c256 - c128, 2 * (c128 - c64), 2000.0);
}

TEST(UseCaseModel, ExecutedIsDeterministicAcrossRuns) {
  UseCaseSpec spec = UseCaseSpec::ringtone();
  auto sw = ArchitectureProfile::pure_software();
  UseCaseReport a = run_use_case(spec, sw);
  UseCaseReport b = run_use_case(spec, sw);
  EXPECT_DOUBLE_EQ(a.total_cycles(), b.total_cycles());
  for (std::size_t i = 0; i < kAlgorithmCount; ++i) {
    Algorithm alg = static_cast<Algorithm>(i);
    EXPECT_EQ(a.ledger.ops_by_algorithm(alg), b.ledger.ops_by_algorithm(alg));
    EXPECT_EQ(a.ledger.blocks_by_algorithm(alg),
              b.ledger.blocks_by_algorithm(alg));
  }
}

TEST(UseCaseModel, SeedChangesKeysButNotCosts) {
  // Different seed -> different keys/nonces/content, but the *cost
  // structure* (op counts, block counts) is identical: the model is
  // workload-shaped, not value-shaped.
  UseCaseSpec a_spec = UseCaseSpec::ringtone();
  UseCaseSpec b_spec = a_spec;
  b_spec.seed = 777;
  auto sw = ArchitectureProfile::pure_software();
  UseCaseReport a = run_use_case(a_spec, sw);
  UseCaseReport b = run_use_case(b_spec, sw);
  for (Algorithm alg : {Algorithm::kRsaPublic, Algorithm::kRsaPrivate,
                        Algorithm::kAesDecrypt}) {
    EXPECT_EQ(a.ledger.ops_by_algorithm(alg), b.ledger.ops_by_algorithm(alg));
  }
  // Block totals may differ by a few (signature/base64 size jitter), but
  // stay within a fraction of a percent.
  EXPECT_NEAR(a.total_cycles(), b.total_cycles(),
              a.total_cycles() * 0.001);
}

class VariantOrdering
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(VariantOrdering, MoreHardwareNeverSlower) {
  auto [kb, plays] = GetParam();
  UseCaseSpec spec;
  spec.name = "ordering";
  spec.content_bytes = kb * 1024;
  spec.playbacks = plays;
  VariantMs v = run_variants(spec, /*analytic=*/true);
  EXPECT_GE(v.sw, v.swhw);
  EXPECT_GE(v.swhw, v.hw);
  EXPECT_GT(v.hw, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, VariantOrdering,
    ::testing::Combine(::testing::Values(1, 30, 300, 3584),
                       ::testing::Values(1, 5, 25, 100)));

TEST(Report, FormattersProduceStableText) {
  auto sw = ArchitectureProfile::pure_software();
  UseCaseReport r = analytic_use_case(UseCaseSpec::ringtone(), sw);
  std::string share = format_share_table(r);
  EXPECT_NE(share.find("RSA 1024 Private Key Op"), std::string::npos);
  std::string cmp = format_comparison("Fig 7 SW", 900, r.total_ms(), "ms");
  EXPECT_NE(cmp.find("paper"), std::string::npos);
  EXPECT_NE(cmp.find("model"), std::string::npos);
}

}  // namespace
}  // namespace omadrm::model
