// Known-answer and property tests for AES, AES-CBC/PKCS#7, and AES-WRAP.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/hex.h"
#include "common/random.h"
#include "crypto/aes.h"
#include "crypto/aes_wrap.h"
#include "crypto/modes.h"

namespace omadrm::crypto {
namespace {

Bytes block_encrypt(ByteView key, ByteView pt) {
  Aes aes(key);
  Bytes out(16);
  aes.encrypt_block(pt.data(), out.data());
  return out;
}

Bytes block_decrypt(ByteView key, ByteView ct) {
  Aes aes(key);
  Bytes out(16);
  aes.decrypt_block(ct.data(), out.data());
  return out;
}

// FIPS-197 Appendix C known-answer vectors.
TEST(Aes, Fips197Aes128) {
  Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  Bytes ct = block_encrypt(key, pt);
  EXPECT_EQ(to_hex(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
  EXPECT_EQ(block_decrypt(key, ct), pt);
}

TEST(Aes, Fips197Aes192) {
  Bytes key = from_hex("000102030405060708090a0b0c0d0e0f1011121314151617");
  Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  Bytes ct = block_encrypt(key, pt);
  EXPECT_EQ(to_hex(ct), "dda97ca4864cdfe06eaf70a0ec0d7191");
  EXPECT_EQ(block_decrypt(key, ct), pt);
}

TEST(Aes, Fips197Aes256) {
  Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  Bytes ct = block_encrypt(key, pt);
  EXPECT_EQ(to_hex(ct), "8ea2b7ca516745bfeafc49904b496089");
  EXPECT_EQ(block_decrypt(key, ct), pt);
}

TEST(Aes, NistSp800_38aEcbVector) {
  Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  Bytes pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
  EXPECT_EQ(to_hex(block_encrypt(key, pt)),
            "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(Aes, RejectsBadKeySizes) {
  EXPECT_THROW(Aes(Bytes(15, 0)), Error);
  EXPECT_THROW(Aes(Bytes(17, 0)), Error);
  EXPECT_THROW(Aes(Bytes(0, 0)), Error);
  EXPECT_THROW(Aes(Bytes(33, 0)), Error);
}

TEST(Aes, InPlaceOperation) {
  Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  Bytes buf = from_hex("00112233445566778899aabbccddeeff");
  Aes aes(key);
  aes.encrypt_block(buf.data(), buf.data());
  EXPECT_EQ(to_hex(buf), "69c4e0d86a7b0430d8cdb78070b4c55a");
  aes.decrypt_block(buf.data(), buf.data());
  EXPECT_EQ(to_hex(buf), "00112233445566778899aabbccddeeff");
}

class AesRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AesRoundTrip, DecryptInvertsEncrypt) {
  DeterministicRng rng(GetParam());
  Bytes key = rng.bytes(GetParam());
  Aes aes(key);
  for (int i = 0; i < 50; ++i) {
    Bytes pt = rng.bytes(16);
    Bytes ct(16), back(16);
    aes.encrypt_block(pt.data(), ct.data());
    aes.decrypt_block(ct.data(), back.data());
    EXPECT_EQ(back, pt);
    EXPECT_NE(ct, pt);
  }
}

INSTANTIATE_TEST_SUITE_P(KeySizes, AesRoundTrip,
                         ::testing::Values(16, 24, 32));

TEST(Pkcs7, PadUnpadRoundTrip) {
  for (std::size_t len = 0; len < 40; ++len) {
    Bytes data(len, 0x7e);
    Bytes padded = pkcs7_pad(data, 16);
    EXPECT_EQ(padded.size() % 16, 0u);
    EXPECT_GT(padded.size(), data.size());
    EXPECT_EQ(pkcs7_unpad(padded, 16), data);
  }
}

TEST(Pkcs7, FullBlockOfPaddingWhenAligned) {
  Bytes data(16, 1);
  Bytes padded = pkcs7_pad(data, 16);
  EXPECT_EQ(padded.size(), 32u);
  EXPECT_EQ(padded.back(), 16);
}

TEST(Pkcs7, RejectsCorruptPadding) {
  Bytes padded = pkcs7_pad(Bytes(10, 0xaa), 16);
  padded.back() = 0;
  EXPECT_THROW(pkcs7_unpad(padded, 16), Error);
  padded.back() = 17;
  EXPECT_THROW(pkcs7_unpad(padded, 16), Error);
  padded.back() = 6;
  padded[padded.size() - 2] = 5;  // inconsistent interior byte
  EXPECT_THROW(pkcs7_unpad(padded, 16), Error);
  EXPECT_THROW(pkcs7_unpad(Bytes{}, 16), Error);
  EXPECT_THROW(pkcs7_unpad(Bytes(15, 1), 16), Error);
}

TEST(Cbc, NistSp800_38aFirstBlock) {
  Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  Bytes iv = from_hex("000102030405060708090a0b0c0d0e0f");
  Bytes pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
  Bytes ct = aes_cbc_encrypt(key, iv, pt);
  // First block matches the NIST vector; the second is our PKCS#7 padding.
  EXPECT_EQ(to_hex(Bytes(ct.begin(), ct.begin() + 16)),
            "7649abac8119b246cee98e9b12e9197d");
  EXPECT_EQ(aes_cbc_decrypt(key, iv, ct), pt);
}

TEST(Cbc, RoundTripVariousLengths) {
  DeterministicRng rng(33);
  Bytes key = rng.bytes(16);
  Bytes iv = rng.bytes(16);
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 100u, 4096u}) {
    Bytes pt = rng.bytes(len);
    Bytes ct = aes_cbc_encrypt(key, iv, pt);
    EXPECT_EQ(ct.size(), (len / 16 + 1) * 16);
    EXPECT_EQ(aes_cbc_decrypt(key, iv, ct), pt) << "len=" << len;
  }
}

TEST(Cbc, IvChangesCiphertext) {
  DeterministicRng rng(34);
  Bytes key = rng.bytes(16);
  Bytes pt = rng.bytes(64);
  Bytes c1 = aes_cbc_encrypt(key, rng.bytes(16), pt);
  Bytes c2 = aes_cbc_encrypt(key, rng.bytes(16), pt);
  EXPECT_NE(c1, c2);
}

TEST(Cbc, RejectsBadInputs) {
  Bytes key(16, 0), iv(16, 0);
  EXPECT_THROW(aes_cbc_encrypt(key, Bytes(8, 0), Bytes{}), Error);
  EXPECT_THROW(aes_cbc_decrypt(key, iv, Bytes(15, 0)), Error);
  EXPECT_THROW(aes_cbc_decrypt(key, iv, Bytes{}), Error);
}

TEST(Cbc, TamperedCiphertextFailsPadding) {
  // Not guaranteed for arbitrary tampering, but flipping bits in the last
  // block's padding region is overwhelmingly likely to break PKCS#7.
  Bytes key(16, 1), iv(16, 2);
  Bytes pt(20, 3);
  Bytes ct = aes_cbc_encrypt(key, iv, pt);
  Bytes wrong_key(16, 9);
  EXPECT_THROW(
      {
        Bytes out = aes_cbc_decrypt(wrong_key, iv, ct);
        // If padding happened to validate, the content must still differ.
        if (out == pt) throw Error(ErrorKind::kFormat, "impossible");
      },
      Error);
}

TEST(AesWrap, Rfc3394Vector128) {
  // RFC 3394 §4.1: wrap 128 bits of key data with a 128-bit KEK.
  Bytes kek = from_hex("000102030405060708090a0b0c0d0e0f");
  Bytes data = from_hex("00112233445566778899aabbccddeeff");
  Bytes wrapped = aes_wrap(kek, data);
  EXPECT_EQ(to_hex(wrapped),
            "1fa68b0a8112b447aef34bd8fb5a7b829d3e862371d2cfe5");
  auto unwrapped = aes_unwrap(kek, wrapped);
  ASSERT_TRUE(unwrapped.has_value());
  EXPECT_EQ(*unwrapped, data);
}

TEST(AesWrap, RoundTripLengths) {
  DeterministicRng rng(44);
  Bytes kek = rng.bytes(16);
  for (std::size_t len : {16u, 24u, 32u, 40u, 64u}) {
    Bytes data = rng.bytes(len);
    Bytes wrapped = aes_wrap(kek, data);
    EXPECT_EQ(wrapped.size(), len + 8);
    auto back = aes_unwrap(kek, wrapped);
    ASSERT_TRUE(back.has_value()) << "len=" << len;
    EXPECT_EQ(*back, data);
  }
}

TEST(AesWrap, WrongKekDetected) {
  DeterministicRng rng(45);
  Bytes kek = rng.bytes(16);
  Bytes other = rng.bytes(16);
  Bytes wrapped = aes_wrap(kek, rng.bytes(32));
  EXPECT_FALSE(aes_unwrap(other, wrapped).has_value());
}

TEST(AesWrap, TamperDetected) {
  DeterministicRng rng(46);
  Bytes kek = rng.bytes(16);
  Bytes wrapped = aes_wrap(kek, rng.bytes(32));
  for (std::size_t i = 0; i < wrapped.size(); i += 7) {
    Bytes bad = wrapped;
    bad[i] ^= 0x40;
    EXPECT_FALSE(aes_unwrap(kek, bad).has_value()) << "byte " << i;
  }
}

TEST(AesWrap, RejectsBadLengths) {
  Bytes kek(16, 0);
  EXPECT_THROW(aes_wrap(kek, Bytes(8, 0)), Error);    // too short
  EXPECT_THROW(aes_wrap(kek, Bytes(20, 0)), Error);   // not multiple of 8
  EXPECT_THROW(aes_unwrap(kek, Bytes(16, 0)), Error); // too short
  EXPECT_THROW(aes_unwrap(kek, Bytes(25, 0)), Error); // not multiple of 8
}

}  // namespace
}  // namespace omadrm::crypto
