// Real concurrency inside the sharded RightsIssuer — the suite the TSan
// CI job runs. Each test hammers a cross-thread invariant the shard map
// promises:
//
//   - a duplicate request racing its original on another worker resolves
//     to ONE issuance plus byte-identical cached replies (the loser
//     waits on the shard lock, then hits the replay cache);
//   - registrations / acquisitions for different devices proceed on
//     their shards concurrently without tearing counters or sessions;
//   - domain join/leave storms across devices in different shards
//     converge to consistent membership, and the persisted image
//     rebuilds an identical RI;
//   - GroupCommitStore merges concurrent commits into batches without
//     losing, reordering-within-tx, or falsely acknowledging any.
//
// Agents are thread-confined (one device + one transport per thread);
// only the RI and the store are shared — exactly the server's shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "agent/drm_agent.h"
#include "agent/sessions.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "pki/authority.h"
#include "provider/provider.h"
#include "ri/rights_issuer.h"
#include "roap/envelope.h"
#include "roap/messages.h"
#include "roap/transport.h"
#include "store/group_commit_store.h"
#include "store/memory_store.h"

namespace omadrm {
namespace {

using agent::DrmAgent;

constexpr std::uint64_t kNow = 1100000000;
const pki::Validity kValidity{kNow - 86400, kNow + 365 * 86400};

/// Counts the RI's RSA operations — the proof that the loser of a
/// replay-duplicate race pays zero of them.
class CountingProvider final : public provider::PlainCryptoProvider {
 public:
  Bytes pss_sign(const rsa::PrivateKey& key, ByteView message,
                 Rng& rng) override {
    ++signs;
    return PlainCryptoProvider::pss_sign(key, message, rng);
  }
  bool pss_verify(const rsa::PublicKey& key, ByteView message,
                  ByteView signature) override {
    ++verifies;
    return PlainCryptoProvider::pss_verify(key, message, signature);
  }
  rsa::KemEncapsulation kem_encapsulate(const rsa::PublicKey& key,
                                        Rng& rng) override {
    ++encapsulations;
    return PlainCryptoProvider::kem_encapsulate(key, rng);
  }

  std::atomic<std::uint64_t> signs{0};
  std::atomic<std::uint64_t> verifies{0};
  std::atomic<std::uint64_t> encapsulations{0};
  std::uint64_t total() const { return signs + verifies + encapsulations; }
};

/// One thread's worth of client state: its own rng (DrmAgent keeps the
/// reference and draws nonces from it mid-session) and its own agent.
struct Device {
  Device(const std::string& id, pki::CertificationAuthority& ca,
         std::uint64_t seed)
      : rng(seed),
        agent(id, ca.root_certificate(), provider::plain_provider(), rng) {
    agent.provision(ca.issue(id, agent.public_key(), kValidity, rng));
  }
  DeterministicRng rng;
  DrmAgent agent;
};

/// Spin barrier: release all racing threads in the same instant so the
/// interesting interleavings actually happen (a started thread is
/// otherwise likely to finish before the next one launches).
class StartGate {
 public:
  explicit StartGate(int parties) : waiting_(parties) {}
  void arrive_and_wait() {
    waiting_.fetch_sub(1, std::memory_order_acq_rel);
    while (waiting_.load(std::memory_order_acquire) > 0) {
    }
  }

 private:
  std::atomic<int> waiting_;
};

class ConcurrentRi : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<DeterministicRng>(0x5AFE);
    ca_ = std::make_unique<pki::CertificationAuthority>("CMLA Root", 1024,
                                                        kValidity, *rng_);
    ri_ = std::make_unique<ri::RightsIssuer>("ri.example",
                                             "http://ri.example/roap", *ca_,
                                             kValidity, counting_, *rng_);
    ri::LicenseOffer offer;
    offer.ro_id = "ro:conc";
    offer.content_id = "cid:conc@content.example";
    offer.dcf_hash = Bytes(20, 0x24);
    rel::Permission play;
    play.type = rel::PermissionType::kPlay;
    offer.permissions = {play};
    offer.kcek = rng_->bytes(16);
    ri_->add_offer(offer);
  }

  CountingProvider counting_;
  std::unique_ptr<DeterministicRng> rng_;
  std::unique_ptr<pki::CertificationAuthority> ca_;
  std::unique_ptr<ri::RightsIssuer> ri_;
};

// ---------------------------------------------------------------------------
// The replay-duplicate race — the tentpole guarantee
// ---------------------------------------------------------------------------

TEST_F(ConcurrentRi, ReplayDuplicateRaceYieldsOneIssuanceAndIdenticalBytes) {
  Device dev("device-race", *ca_, 0xD1);
  roap::InProcessTransport loop(*ri_, kNow);
  ASSERT_TRUE(dev.agent.register_with(loop, kNow).ok());

  // One signed RoRequest; every thread delivers the SAME bytes, modeling
  // a retry storm fanned across server workers.
  agent::AcquisitionSession session(dev.agent, "ri.example", "ro:conc", kNow);
  auto req = session.request();
  ASSERT_TRUE(req.ok()) << req.describe();
  const roap::Envelope request = *req;

  const std::uint64_t ros_before = ri_->counters().ros_issued;
  const auto replay_before = ri_->replay_cache_stats();

  constexpr int kThreads = 4;
  StartGate gate(kThreads);
  std::vector<std::string> wires(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      gate.arrive_and_wait();
      wires[i] = ri_->handle(request, kNow).wire();
    });
  }
  for (auto& t : threads) t.join();

  // Exactly one thread won the shard lock and minted; everyone else was
  // served the winner's bytes from the cache.
  EXPECT_EQ(ri_->counters().ros_issued - ros_before, 1u);
  for (int i = 1; i < kThreads; ++i) EXPECT_EQ(wires[i], wires[0]);
  const auto replay_after = ri_->replay_cache_stats();
  EXPECT_EQ(replay_after.hits - replay_before.hits,
            static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(replay_after.insertions - replay_before.insertions, 1u);

  // A straggler arriving after the dust settles costs zero RSA ops.
  const std::uint64_t rsa = counting_.total();
  EXPECT_EQ(ri_->handle(request, kNow).wire(), wires[0]);
  EXPECT_EQ(counting_.total(), rsa);

  // And the raced response is a valid, installable RO.
  auto ro = session.conclude(roap::Envelope::from_wire(wires[0]));
  ASSERT_TRUE(ro.ok()) << ro.describe();
  EXPECT_EQ(dev.agent.install_ro(*ro, kNow), agent::AgentStatus::kOk);
}

// ---------------------------------------------------------------------------
// Cross-shard registration / acquisition traffic
// ---------------------------------------------------------------------------

TEST_F(ConcurrentRi, ConcurrentRegistrationsAcrossShardsStayDisjoint) {
  constexpr int kDevices = 8;
  std::vector<std::unique_ptr<Device>> devices;
  std::set<std::size_t> shards_touched;
  for (int i = 0; i < kDevices; ++i) {
    const std::string id = "device-shard-" + std::to_string(i);
    devices.push_back(std::make_unique<Device>(id, *ca_, 0xA0 + i));
    shards_touched.insert(ri::RightsIssuer::shard_of(id));
  }
  // The ids must actually spread; a single hot shard would make this a
  // serialization test, not a sharding test.
  ASSERT_GE(shards_touched.size(), 2u);

  StartGate gate(kDevices);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kDevices; ++i) {
    threads.emplace_back([&, i] {
      roap::InProcessTransport loop(*ri_, kNow);
      gate.arrive_and_wait();
      if (!devices[i]->agent.register_with(loop, kNow).ok()) ++failures;
      if (!devices[i]->agent.acquire_ro(loop, "ri.example", "ro:conc", kNow)
               .ok()) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(ri_->counters().registrations, static_cast<std::uint64_t>(kDevices));
  EXPECT_EQ(ri_->counters().ros_issued, static_cast<std::uint64_t>(kDevices));
  EXPECT_EQ(ri_->pending_session_count(), 0u);
  for (const auto& d : devices) {
    EXPECT_TRUE(ri_->is_registered(d->agent.device_id()));
  }
  // Every request was counted on exactly one shard: 2 registration
  // passes + 1 acquisition per device, no more, no less.
  std::uint64_t exchanges = 0;
  for (const auto& sh : ri_->shard_stats()) exchanges += sh.exchanges;
  EXPECT_EQ(exchanges, static_cast<std::uint64_t>(kDevices * 3));
}

// ---------------------------------------------------------------------------
// Domain join/leave storm + durable rebuild
// ---------------------------------------------------------------------------

TEST_F(ConcurrentRi, DomainStormConvergesAndPersistedImageRebuilds) {
  store::MemoryStore backing;
  store::GroupCommitStore gc(backing);
  ASSERT_TRUE(ri_->bind_store(gc).ok());
  ri_->create_domain("domain:red", 16);
  ri_->create_domain("domain:blue", 16);

  constexpr int kDevices = 6;
  constexpr int kRounds = 8;
  std::vector<std::unique_ptr<Device>> devices;
  for (int i = 0; i < kDevices; ++i) {
    const std::string id = "device-dom-" + std::to_string(i);
    devices.push_back(std::make_unique<Device>(id, *ca_, 0xB0 + i));
    roap::InProcessTransport loop(*ri_, kNow);
    ASSERT_TRUE(devices[i]->agent.register_with(loop, kNow).ok());
  }

  StartGate gate(kDevices);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kDevices; ++i) {
    threads.emplace_back([&, i] {
      const std::string domain = (i % 2 == 0) ? "domain:red" : "domain:blue";
      roap::InProcessTransport loop(*ri_, kNow);
      gate.arrive_and_wait();
      for (int r = 0; r < kRounds; ++r) {
        if (!devices[i]->agent.join_domain(loop, "ri.example", domain, kNow)
                 .ok() ||
            !devices[i]->agent.leave_domain(loop, "ri.example", domain, kNow)
                 .ok()) {
          ++failures;
          return;
        }
      }
      // End joined, so final membership is observable.
      if (!devices[i]->agent.join_domain(loop, "ri.example", domain, kNow)
               .ok()) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  EXPECT_EQ(ri_->counters().domain_joins,
            static_cast<std::uint64_t>(kDevices * (kRounds + 1)));
  EXPECT_EQ(ri_->counters().domain_leaves,
            static_cast<std::uint64_t>(kDevices * kRounds));
  const ri::Domain* red = ri_->domain("domain:red");
  const ri::Domain* blue = ri_->domain("domain:blue");
  ASSERT_NE(red, nullptr);
  ASSERT_NE(blue, nullptr);
  EXPECT_EQ(red->members.size() + blue->members.size(),
            static_cast<std::size_t>(kDevices));
  for (int i = 0; i < kDevices; ++i) {
    const auto& members = (i % 2 == 0) ? red->members : blue->members;
    const std::string id = devices[i]->agent.device_id();
    EXPECT_NE(std::find(members.begin(), members.end(), id), members.end())
        << id << " lost its final join in the storm";
  }

  // Every membership change persisted through the group-commit path.
  const auto st = gc.stats();
  EXPECT_GT(st.committed_txs, 0u);
  EXPECT_GE(st.committed_txs, st.batches);
  EXPECT_GE(st.max_batch, 1u);

  // A restarted RI rebuilt from the store agrees on every outcome.
  DeterministicRng rng2(0x5AFF);
  ri::RightsIssuer ri2("ri.example", "http://ri.example/roap", *ca_,
                       kValidity, counting_, rng2);
  ASSERT_TRUE(ri2.bind_store(backing).ok());
  for (const auto& d : devices) {
    EXPECT_TRUE(ri2.is_registered(d->agent.device_id()));
  }
  const ri::Domain* red2 = ri2.domain("domain:red");
  ASSERT_NE(red2, nullptr);
  EXPECT_EQ(red2->members, red->members);
  EXPECT_EQ(red2->generation, red->generation);
}

// ---------------------------------------------------------------------------
// GroupCommitStore in isolation
// ---------------------------------------------------------------------------

TEST(GroupCommitStore, ConcurrentCommittersAllLandExactlyOnce) {
  store::MemoryStore backing;
  store::GroupCommitStore gc(backing);

  constexpr int kThreads = 8;
  constexpr int kTxPerThread = 25;
  StartGate gate(kThreads);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      gate.arrive_and_wait();
      for (int k = 0; k < kTxPerThread; ++k) {
        store::Transaction tx;
        const std::string key =
            "t" + std::to_string(t) + "/k" + std::to_string(k);
        tx.put(key, Bytes{static_cast<std::uint8_t>(t),
                          static_cast<std::uint8_t>(k)});
        if (!gc.commit(tx).ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(backing.record_count(),
            static_cast<std::size_t>(kThreads * kTxPerThread));
  const auto st = gc.stats();
  EXPECT_EQ(st.committed_txs,
            static_cast<std::uint64_t>(kThreads * kTxPerThread));
  EXPECT_GE(st.committed_txs, st.batches);
  EXPECT_GE(st.batches, 1u);
  EXPECT_GE(st.max_batch, 1u);
  // One backing commit per batch — generation counts batches, and the
  // merged image round-trips every record.
  EXPECT_EQ(backing.generation(), st.batches);
  auto records = gc.load();
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), static_cast<std::size_t>(kThreads * kTxPerThread));
}

TEST(GroupCommitStore, RefusedBackingCommitFailsTheBatchTruthfully) {
  store::MemoryStore backing;
  store::GroupCommitStore gc(backing);

  backing.fail_next_commits(1);
  store::Transaction doomed;
  doomed.put("doomed", Bytes{1});
  EXPECT_FALSE(gc.commit(doomed).ok());
  EXPECT_EQ(backing.record_count(), 0u);
  EXPECT_EQ(gc.stats().committed_txs, 0u);

  // The store heals; the retry lands normally.
  store::Transaction retry;
  retry.put("doomed", Bytes{2});
  ASSERT_TRUE(gc.commit(retry).ok());
  EXPECT_EQ(backing.record_count(), 1u);
  EXPECT_EQ(gc.stats().committed_txs, 1u);
}

TEST(GroupCommitStore, InjectedLeaderFailureReachesEveryBatchedWaiter) {
  // The truthfulness contract under fault injection: when the LEADER's
  // backing commit fails (the store.group_commit.commit failpoint, armed
  // to fail every batch), every thread whose transaction was merged into
  // that batch — leader and parked waiters alike — observes the failure.
  // Nobody is falsely acknowledged, and a rebuild of the backing store
  // agrees: nothing landed.
  store::MemoryStore backing;
  store::GroupCommitStore gc(backing);
  failpoint::arm("store.group_commit.commit", "error-every-1");

  constexpr int kThreads = 8;
  StartGate gate(kThreads);
  std::atomic<int> failed{0}, acked{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      gate.arrive_and_wait();
      store::Transaction tx;
      tx.put("w" + std::to_string(t), Bytes{static_cast<std::uint8_t>(t)});
      const Result<> r = gc.commit(tx);
      if (r.ok()) {
        ++acked;
      } else {
        EXPECT_EQ(r.code(), StatusCode::kStoreFailure);
        ++failed;
      }
    });
  }
  for (auto& th : threads) th.join();
  failpoint::reset_all();

  EXPECT_EQ(acked.load(), 0) << "a waiter was acknowledged for a batch the "
                                "backing store never committed";
  EXPECT_EQ(failed.load(), kThreads);
  EXPECT_EQ(gc.stats().committed_txs, 0u);
  // The rebuild agrees with the refusals: untouched image.
  EXPECT_EQ(backing.generation(), 0u);
  EXPECT_EQ(backing.record_count(), 0u);
  auto records = gc.load();
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());

  // Disarmed, the same traffic lands: the failure mode was injected, not
  // latent.
  store::Transaction tx;
  tx.put("healed", Bytes{1});
  ASSERT_TRUE(gc.commit(tx).ok());
  EXPECT_EQ(backing.record_count(), 1u);
}

TEST_F(ConcurrentRi, ConcurrentHellosReserveUniqueSessions) {
  // Raw DeviceHello storm: every reservation must come back distinct
  // (the atomic lease counter), and every pending session must be
  // sweepable afterwards.
  constexpr int kDevices = 6;
  std::vector<std::unique_ptr<Device>> devices;
  for (int i = 0; i < kDevices; ++i) {
    devices.push_back(std::make_unique<Device>(
        "device-hello-" + std::to_string(i), *ca_, 0xC0 + i));
  }
  StartGate gate(kDevices);
  std::vector<std::string> session_ids(kDevices);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kDevices; ++i) {
    threads.emplace_back([&, i] {
      agent::RegistrationSession reg(devices[i]->agent, kNow);
      auto hello = reg.hello();
      if (!hello.ok()) {
        ++failures;
        return;
      }
      gate.arrive_and_wait();
      const roap::Envelope ri_hello = ri_->handle(*hello, kNow);
      session_ids[i] = ri_hello.open<roap::RiHello>().session_id;
    });
  }
  for (auto& t : threads) t.join();

  ASSERT_EQ(failures.load(), 0);
  std::set<std::string> unique(session_ids.begin(), session_ids.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kDevices));
  EXPECT_EQ(ri_->pending_session_count(), static_cast<std::size_t>(kDevices));
  EXPECT_EQ(ri_->expire_pending_sessions(kNow + ri::kPendingSessionTtl + 1),
            static_cast<std::size_t>(kDevices));
  EXPECT_EQ(ri_->pending_session_count(), 0u);
}

}  // namespace
}  // namespace omadrm
