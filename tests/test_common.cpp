// Unit tests for the common substrate: byte helpers, hex, base64, RNG.
#include <gtest/gtest.h>

#include "common/base64.h"
#include "common/bytes.h"
#include "common/error.h"
#include "common/hex.h"
#include "common/random.h"

namespace omadrm {
namespace {

TEST(Bytes, ConcatJoinsInOrder) {
  Bytes a{1, 2}, b{}, c{3};
  EXPECT_EQ(concat({a, b, c}), (Bytes{1, 2, 3}));
}

TEST(Bytes, ConcatOfNothingIsEmpty) {
  EXPECT_TRUE(concat({}).empty());
}

TEST(Bytes, SliceExtractsRange) {
  Bytes v{0, 1, 2, 3, 4};
  EXPECT_EQ(slice(v, 1, 3), (Bytes{1, 2, 3}));
  EXPECT_EQ(slice(v, 0, 0), Bytes{});
  EXPECT_EQ(slice(v, 5, 0), Bytes{});
}

TEST(Bytes, SliceOutOfRangeThrows) {
  Bytes v{0, 1, 2};
  EXPECT_THROW(slice(v, 2, 2), Error);
  EXPECT_THROW(slice(v, 4, 0), Error);
}

TEST(Bytes, XorBytes) {
  Bytes a{0xff, 0x0f}, b{0x0f, 0x0f};
  EXPECT_EQ(xor_bytes(a, b), (Bytes{0xf0, 0x00}));
  EXPECT_THROW(xor_bytes(a, Bytes{1}), Error);
}

TEST(Bytes, StringRoundTrip) {
  EXPECT_EQ(to_string(to_bytes("hello")), "hello");
  EXPECT_TRUE(to_bytes("").empty());
}

TEST(Bytes, CtEqualSemantics) {
  Bytes a{1, 2, 3}, b{1, 2, 3}, c{1, 2, 4};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, Bytes{1, 2}));
  EXPECT_TRUE(ct_equal(Bytes{}, Bytes{}));
}

TEST(Bytes, BigEndianStores) {
  std::uint8_t buf[8];
  store_be32(0x01020304u, buf);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[3], 0x04);
  EXPECT_EQ(load_be32(buf), 0x01020304u);
  store_be64(0x0102030405060708ull, buf);
  EXPECT_EQ(load_be64(buf), 0x0102030405060708ull);
}

TEST(Hex, EncodeDecode) {
  Bytes data{0xde, 0xad, 0xbe, 0xef};
  EXPECT_EQ(to_hex(data), "deadbeef");
  EXPECT_EQ(from_hex("deadbeef"), data);
  EXPECT_EQ(from_hex("DEADBEEF"), data);
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Hex, RejectsBadInput) {
  EXPECT_THROW(from_hex("abc"), Error);
  EXPECT_THROW(from_hex("zz"), Error);
}

TEST(Base64, KnownVectors) {
  // RFC 4648 §10 test vectors.
  EXPECT_EQ(base64_encode(to_bytes("")), "");
  EXPECT_EQ(base64_encode(to_bytes("f")), "Zg==");
  EXPECT_EQ(base64_encode(to_bytes("fo")), "Zm8=");
  EXPECT_EQ(base64_encode(to_bytes("foo")), "Zm9v");
  EXPECT_EQ(base64_encode(to_bytes("foob")), "Zm9vYg==");
  EXPECT_EQ(base64_encode(to_bytes("fooba")), "Zm9vYmE=");
  EXPECT_EQ(base64_encode(to_bytes("foobar")), "Zm9vYmFy");
}

TEST(Base64, DecodeInvertsEncode) {
  for (std::size_t len = 0; len < 64; ++len) {
    DeterministicRng rng(len);
    Bytes data = rng.bytes(len);
    EXPECT_EQ(base64_decode(base64_encode(data)), data) << "len=" << len;
  }
}

TEST(Base64, RejectsMalformedInput) {
  EXPECT_THROW(base64_decode("Zg"), Error);      // bad length
  EXPECT_THROW(base64_decode("Z==="), Error);    // too much padding
  EXPECT_THROW(base64_decode("Zm=v"), Error);    // data after padding
  EXPECT_THROW(base64_decode("Zm9$"), Error);    // invalid character
  EXPECT_THROW(base64_decode("====AAAA"), Error);  // padding not at end
}

// One case per rejection class of the strict decoder — regression tests
// for the wire hardening (whitespace laundering and non-canonical
// encodings must never round-trip silently).
TEST(Base64, RejectsBadLengths) {
  EXPECT_THROW(base64_decode("Q"), Error);
  EXPECT_THROW(base64_decode("QQQ"), Error);
  EXPECT_THROW(base64_decode("QUJDRE"), Error);
}

TEST(Base64, RejectsEmbeddedWhitespace) {
  // Lenient decoders skip whitespace; this one must not, in any group.
  EXPECT_THROW(base64_decode("QUJD IA=="), Error);   // space, inner group
  EXPECT_THROW(base64_decode("QUJD\nQUJD"), Error);  // newline
  EXPECT_THROW(base64_decode("QUJD\tQUJD"), Error);  // tab
  EXPECT_THROW(base64_decode("QUJDQU \n"), Error);   // trailing, final group
  EXPECT_THROW(base64_decode(" QUJD"), Error);       // leading
  EXPECT_THROW(base64_decode("QQ==\n"), Error);      // trailing newline
}

TEST(Base64, RejectsInvalidCharacters) {
  EXPECT_THROW(base64_decode("QUJD!A=="), Error);
  EXPECT_THROW(base64_decode("QU-D"), Error);   // url-safe alphabet
  EXPECT_THROW(base64_decode("QU_D"), Error);
  EXPECT_THROW(base64_decode(std::string("QU\0D", 4)), Error);  // NUL
}

TEST(Base64, RejectsMisplacedPadding) {
  EXPECT_THROW(base64_decode("=QQQ"), Error);
  EXPECT_THROW(base64_decode("Q=QQ"), Error);
  EXPECT_THROW(base64_decode("QQ=Q"), Error);      // data after padding
  EXPECT_THROW(base64_decode("QQ==QQQQ"), Error);  // padding before end
  EXPECT_THROW(base64_decode("===="), Error);
}

TEST(Base64, RejectsNonCanonicalTrailingBits) {
  // "QQ==" encodes {0x41}; "QR==" names the same byte with dirty
  // trailing bits and must be refused, as must the 2-byte analogue.
  EXPECT_EQ(base64_decode("QQ=="), to_bytes("A"));
  EXPECT_THROW(base64_decode("QR=="), Error);
  EXPECT_THROW(base64_decode("QQ=Q"), Error);
  EXPECT_EQ(base64_decode("QUE="), to_bytes("AA"));
  EXPECT_THROW(base64_decode("QUF="), Error);
}

TEST(Base64, IntoVariantsAppend) {
  std::string text = "prefix:";
  base64_encode_into(to_bytes("foobar"), text);
  EXPECT_EQ(text, "prefix:Zm9vYmFy");
  Bytes out = to_bytes("x");
  base64_decode_into("Zm9vYmFy", out);
  EXPECT_EQ(out, to_bytes("xfoobar"));
}

TEST(Base64, DecodeIntoRollsBackOnRejection) {
  // A rejected decode must leave the output exactly as passed in — no
  // partially decoded tail for callers that catch and continue.
  Bytes out = to_bytes("keep");
  EXPECT_THROW(base64_decode_into("QUJD!A==", out), Error);
  EXPECT_EQ(out, to_bytes("keep"));
  EXPECT_THROW(base64_decode_into("QUJDQUJD\n", out), Error);
  EXPECT_EQ(out, to_bytes("keep"));
}

TEST(Rng, DeterministicAcrossInstances) {
  DeterministicRng a(42), b(42);
  EXPECT_EQ(a.bytes(33), b.bytes(33));
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiverge) {
  DeterministicRng a(1), b(2);
  EXPECT_NE(a.bytes(16), b.bytes(16));
}

TEST(Rng, UniformStaysBelowBound) {
  DeterministicRng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
  EXPECT_THROW(rng.uniform(0), Error);
}

TEST(Rng, UniformCoversRange) {
  DeterministicRng rng(9);
  bool seen[8] = {};
  for (int i = 0; i < 1000; ++i) seen[rng.uniform(8)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(ErrorKindNames, AreStable) {
  EXPECT_STREQ(to_string(ErrorKind::kFormat), "format");
  Error e(ErrorKind::kRange, "boom");
  EXPECT_EQ(e.kind(), ErrorKind::kRange);
  EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
}

}  // namespace
}  // namespace omadrm
