// Unit + property tests for the multiprecision integer substrate.
#include <gtest/gtest.h>

#include <cstdint>

#include "bigint/bigint.h"
#include "bigint/montgomery.h"
#include "bigint/prime.h"
#include "common/error.h"
#include "common/hex.h"
#include "common/random.h"

namespace omadrm::bigint {
namespace {

using omadrm::DeterministicRng;
using omadrm::Error;

TEST(BigIntBasics, ZeroProperties) {
  BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_FALSE(z.is_negative());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_hex(), "0");
  EXPECT_EQ(z.to_dec(), "0");
  EXPECT_EQ(z + z, z);
  EXPECT_EQ(z * BigInt(123), z);
}

TEST(BigIntBasics, FromU64) {
  BigInt v(std::uint64_t{0x1122334455667788ull});
  EXPECT_EQ(v.to_hex(), "1122334455667788");
  EXPECT_EQ(v.to_u64(), 0x1122334455667788ull);
  EXPECT_EQ(v.bit_length(), 61u);
}

TEST(BigIntBasics, DecimalParseAndPrint) {
  BigInt v(std::string_view("123456789012345678901234567890"));
  EXPECT_EQ(v.to_dec(), "123456789012345678901234567890");
  BigInt neg(std::string_view("-42"));
  EXPECT_TRUE(neg.is_negative());
  EXPECT_EQ(neg.to_dec(), "-42");
}

TEST(BigIntBasics, HexParse) {
  BigInt v(std::string_view("0xDeadBeefCafeBabe"));
  EXPECT_EQ(v.to_hex(), "deadbeefcafebabe");
  EXPECT_THROW(BigInt(std::string_view("0x")), Error);
  EXPECT_THROW(BigInt(std::string_view("12a")), Error);
  EXPECT_THROW(BigInt(std::string_view("")), Error);
}

TEST(BigIntBasics, ByteRoundTrip) {
  Bytes raw = from_hex("00ff10203040506070");
  BigInt v = BigInt::from_bytes_be(raw);
  EXPECT_EQ(v.to_hex(), "ff10203040506070");
  EXPECT_EQ(v.to_bytes_be(9), raw);
  EXPECT_EQ(BigInt::from_bytes_be({}).to_hex(), "0");
}

TEST(BigIntBasics, ToBytesPadsToMinLen) {
  BigInt v(std::uint64_t{0xabcd});
  Bytes b = v.to_bytes_be(4);
  EXPECT_EQ(to_hex(b), "0000abcd");
  EXPECT_EQ(to_hex(BigInt{}.to_bytes_be(2)), "0000");
}

TEST(BigIntCompare, Ordering) {
  BigInt a(5), b(7), c(-3);
  EXPECT_LT(a, b);
  EXPECT_GT(a, c);
  EXPECT_LT(c, BigInt{});
  EXPECT_EQ(BigInt(7), b);
  EXPECT_LT(BigInt(-9), c);
}

TEST(BigIntArith, SignedAddSub) {
  BigInt a(100), b(-30);
  EXPECT_EQ((a + b).to_dec(), "70");
  EXPECT_EQ((b + a).to_dec(), "70");
  EXPECT_EQ((b - a).to_dec(), "-130");
  EXPECT_EQ((a - a).to_dec(), "0");
  EXPECT_EQ((-a).to_dec(), "-100");
}

TEST(BigIntArith, CarriesPropagate) {
  BigInt a(std::string_view("0xffffffffffffffffffffffffffffffff"));
  BigInt one(1);
  EXPECT_EQ((a + one).to_hex(), "100000000000000000000000000000000");
  EXPECT_EQ((a + one - one).to_hex(), a.to_hex());
}

TEST(BigIntArith, MultiplySmall) {
  EXPECT_EQ((BigInt(12) * BigInt(10)).to_dec(), "120");
  EXPECT_EQ((BigInt(-12) * BigInt(10)).to_dec(), "-120");
  EXPECT_EQ((BigInt(-12) * BigInt(-10)).to_dec(), "120");
}

TEST(BigIntArith, KnownBigProduct) {
  // 2^128 - 1 squared = 2^256 - 2^129 + 1.
  BigInt a(std::string_view("0xffffffffffffffffffffffffffffffff"));
  BigInt expected =
      (BigInt(1) << 256) - (BigInt(1) << 129) + BigInt(1);
  EXPECT_EQ(a * a, expected);
}

TEST(BigIntArith, DivModInvariantRandom) {
  DeterministicRng rng(1234);
  for (int i = 0; i < 200; ++i) {
    std::size_t abits = 1 + rng.uniform(512);
    std::size_t bbits = 1 + rng.uniform(256);
    BigInt a = BigInt::random_bits(abits, rng);
    BigInt b = BigInt::random_bits(bbits, rng);
    auto dm = a.divmod(b);
    EXPECT_EQ(dm.quotient * b + dm.remainder, a)
        << "a=" << a.to_hex() << " b=" << b.to_hex();
    EXPECT_LT(dm.remainder, b);
    EXPECT_FALSE(dm.remainder.is_negative());
  }
}

TEST(BigIntArith, DivisionByZeroThrows) {
  EXPECT_THROW(BigInt(5).divmod(BigInt{}), Error);
}

TEST(BigIntArith, SignOfQuotientAndRemainder) {
  EXPECT_EQ((BigInt(-7) / BigInt(2)).to_dec(), "-3");
  EXPECT_EQ((BigInt(-7) % BigInt(2)).to_dec(), "-1");
  EXPECT_EQ((BigInt(7) / BigInt(-2)).to_dec(), "-3");
  EXPECT_EQ(BigInt(-7).mod(BigInt(3)).to_dec(), "2");
}

TEST(BigIntArith, AlgorithmDAddBackCase) {
  // Divisor chosen so qhat overestimates and the rare add-back path runs:
  // classic Knuth exercise values.
  BigInt a(std::string_view("0x7fffffff800000010000000000000000"));
  BigInt b(std::string_view("0x800000008000000200000005"));
  auto dm = a.divmod(b);
  EXPECT_EQ(dm.quotient * b + dm.remainder, a);
  EXPECT_LT(dm.remainder, b);
}

TEST(BigIntArith, RingAxiomsAcrossKaratsubaThreshold) {
  // Operand sizes straddle the Karatsuba cutoff (24 limbs = 768 bits), so
  // these identities exercise both multiplication paths and their seam.
  DeterministicRng rng(808);
  for (std::size_t bits : {64u, 512u, 768u, 800u, 1600u, 4096u}) {
    BigInt a = BigInt::random_bits(bits, rng);
    BigInt b = BigInt::random_bits(bits / 2 + 1, rng);
    BigInt c = BigInt::random_bits(bits / 3 + 1, rng);
    EXPECT_EQ(a * b, b * a) << bits;
    EXPECT_EQ((a + b) * c, a * c + b * c) << bits;
    EXPECT_EQ((a * b) * c, a * (b * c)) << bits;
    EXPECT_EQ((a * b) / b, a) << bits;
    EXPECT_EQ((a * b) % b, BigInt{}) << bits;
  }
}

TEST(BigIntArith, SquareViaBinomial) {
  // (a+1)^2 == a^2 + 2a + 1 across widths.
  DeterministicRng rng(809);
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::random_bits(1 + rng.uniform(2000), rng);
    EXPECT_EQ((a + BigInt(1)) * (a + BigInt(1)),
              a * a + (a << 1) + BigInt(1));
  }
}

TEST(BigIntConvert, DecimalRoundTripRandom) {
  DeterministicRng rng(810);
  for (int i = 0; i < 30; ++i) {
    BigInt a = BigInt::random_bits(1 + rng.uniform(700), rng);
    EXPECT_EQ(BigInt(std::string_view(a.to_dec())), a);
    EXPECT_EQ(BigInt(std::string_view("0x" + a.to_hex())), a);
  }
}

TEST(BigIntConvert, BytesRoundTripRandom) {
  DeterministicRng rng(811);
  for (int i = 0; i < 30; ++i) {
    std::size_t len = 1 + rng.uniform(200);
    Bytes raw = rng.bytes(len);
    BigInt v = BigInt::from_bytes_be(raw);
    EXPECT_EQ(BigInt::from_bytes_be(v.to_bytes_be(len)), v);
  }
}

TEST(BigIntShift, LeftRightInverse) {
  DeterministicRng rng(5);
  BigInt v = BigInt::random_bits(300, rng);
  for (std::size_t s : {1u, 31u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ((v << s) >> s, v) << "shift=" << s;
  }
  EXPECT_EQ((v >> 301).to_hex(), "0");
}

TEST(BigIntShift, ShiftMatchesMultiplication) {
  BigInt v(std::string_view("0x123456789abcdef"));
  EXPECT_EQ(v << 5, v * BigInt(32));
  EXPECT_EQ(v >> 4, v / BigInt(16));
}

TEST(BigIntBits, BitAccess) {
  BigInt v(std::uint64_t{0b1010});
  EXPECT_FALSE(v.bit(0));
  EXPECT_TRUE(v.bit(1));
  EXPECT_FALSE(v.bit(2));
  EXPECT_TRUE(v.bit(3));
  EXPECT_FALSE(v.bit(64));
}

TEST(BigIntNumberTheory, Gcd) {
  EXPECT_EQ(BigInt::gcd(BigInt(48), BigInt(36)).to_dec(), "12");
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(5)).to_dec(), "1");
  EXPECT_EQ(BigInt::gcd(BigInt{}, BigInt(9)).to_dec(), "9");
}

TEST(BigIntNumberTheory, ExtGcdBezout) {
  DeterministicRng rng(77);
  for (int i = 0; i < 50; ++i) {
    BigInt a = BigInt::random_bits(1 + rng.uniform(128), rng);
    BigInt b = BigInt::random_bits(1 + rng.uniform(128), rng);
    auto e = BigInt::ext_gcd(a, b);
    EXPECT_EQ(a * e.x + b * e.y, e.g);
    EXPECT_EQ(e.g, BigInt::gcd(a, b));
  }
}

TEST(BigIntNumberTheory, ModInverse) {
  BigInt m(std::string_view("1000000007"));
  DeterministicRng rng(99);
  for (int i = 0; i < 50; ++i) {
    BigInt a = BigInt::random_below(m, rng);
    if (a.is_zero()) continue;
    BigInt inv = BigInt::mod_inverse(a, m);
    EXPECT_EQ((a * inv).mod(m).to_dec(), "1");
  }
  EXPECT_THROW(BigInt::mod_inverse(BigInt(6), BigInt(9)), Error);
}

TEST(BigIntNumberTheory, ModExpSmallKnown) {
  EXPECT_EQ(BigInt::mod_exp(BigInt(4), BigInt(13), BigInt(497)).to_dec(),
            "445");
  EXPECT_EQ(BigInt::mod_exp(BigInt(2), BigInt(10), BigInt(1000)).to_dec(),
            "24");
  EXPECT_EQ(BigInt::mod_exp(BigInt(7), BigInt{}, BigInt(13)).to_dec(), "1");
}

TEST(BigIntNumberTheory, ModExpMatchesNaive) {
  DeterministicRng rng(4242);
  for (int i = 0; i < 20; ++i) {
    BigInt m = BigInt::random_bits(64, rng);
    if (m.is_even()) m = m + BigInt(1);
    BigInt base = BigInt::random_below(m, rng);
    std::uint64_t e = rng.uniform(50);
    BigInt naive(1);
    for (std::uint64_t j = 0; j < e; ++j) naive = (naive * base).mod(m);
    EXPECT_EQ(BigInt::mod_exp(base, BigInt(e), m), naive);
  }
}

TEST(BigIntNumberTheory, ModExpEvenModulus) {
  // Even moduli exercise the non-Montgomery fallback.
  EXPECT_EQ(BigInt::mod_exp(BigInt(3), BigInt(4), BigInt(100)).to_dec(),
            "81");
  EXPECT_EQ(BigInt::mod_exp(BigInt(5), BigInt(3), BigInt(16)).to_dec(),
            "13");
}

TEST(BigIntNumberTheory, FermatLittleTheorem) {
  // a^(p-1) = 1 mod p for prime p and a not divisible by p.
  BigInt p(std::string_view("0xfffffffb"));  // 4294967291, prime
  DeterministicRng rng(31);
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::random_below(p - BigInt(1), rng) + BigInt(1);
    EXPECT_EQ(BigInt::mod_exp(a, p - BigInt(1), p).to_dec(), "1");
  }
}

TEST(Montgomery, MatchesPlainModMul) {
  DeterministicRng rng(2024);
  for (int i = 0; i < 30; ++i) {
    BigInt m = BigInt::random_bits(256, rng);
    if (m.is_even()) m = m + BigInt(1);
    MontgomeryCtx ctx(m);
    BigInt a = BigInt::random_below(m, rng);
    BigInt b = BigInt::random_below(m, rng);
    EXPECT_EQ(ctx.from_mont(ctx.mont_mul(ctx.to_mont(a), ctx.to_mont(b))),
              (a * b).mod(m));
  }
}

TEST(Montgomery, ToFromMontRoundTrip) {
  DeterministicRng rng(11);
  BigInt m = BigInt::random_bits(512, rng);
  if (m.is_even()) m = m + BigInt(1);
  MontgomeryCtx ctx(m);
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::random_below(m, rng);
    EXPECT_EQ(ctx.from_mont(ctx.to_mont(a)), a);
  }
}

TEST(Montgomery, RejectsEvenModulus) {
  EXPECT_THROW(MontgomeryCtx(BigInt(100)), Error);
  EXPECT_THROW(MontgomeryCtx(BigInt{}), Error);
}

TEST(Montgomery, ModExpMatchesGeneric) {
  DeterministicRng rng(314);
  BigInt m = BigInt::random_bits(192, rng);
  if (m.is_even()) m = m + BigInt(1);
  MontgomeryCtx ctx(m);
  for (int i = 0; i < 10; ++i) {
    BigInt base = BigInt::random_below(m, rng);
    BigInt exp = BigInt::random_bits(1 + rng.uniform(192), rng);
    // Generic square-and-multiply reference.
    BigInt ref(1);
    for (std::size_t b = exp.bit_length(); b-- > 0;) {
      ref = (ref * ref).mod(m);
      if (exp.bit(b)) ref = (ref * base).mod(m);
    }
    EXPECT_EQ(ctx.mod_exp(base, exp), ref);
  }
}

TEST(Prime, KnownPrimesAndComposites) {
  DeterministicRng rng(55);
  for (std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 65537ull, 4294967291ull}) {
    EXPECT_TRUE(is_probable_prime(BigInt(p), rng)) << p;
  }
  for (std::uint64_t c : {1ull, 4ull, 100ull, 65535ull, 4294967295ull}) {
    EXPECT_FALSE(is_probable_prime(BigInt(c), rng)) << c;
  }
}

TEST(Prime, CarmichaelNumbersRejected) {
  DeterministicRng rng(56);
  // Fermat pseudoprimes that Miller-Rabin must still reject.
  for (std::uint64_t c : {561ull, 1105ull, 1729ull, 2465ull, 6601ull}) {
    EXPECT_FALSE(is_probable_prime(BigInt(c), rng)) << c;
  }
}

TEST(Prime, MersennePrime) {
  DeterministicRng rng(57);
  BigInt m127 = (BigInt(1) << 127) - BigInt(1);
  EXPECT_TRUE(is_probable_prime(m127, rng));
  EXPECT_FALSE(is_probable_prime(m127 + BigInt(2), rng));
}

class PrimeGeneration : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PrimeGeneration, GeneratesExactWidthOddPrimes) {
  std::size_t bits = GetParam();
  DeterministicRng rng(bits);
  BigInt p = generate_prime(bits, rng);
  EXPECT_EQ(p.bit_length(), bits);
  EXPECT_TRUE(p.is_odd());
  EXPECT_TRUE(p.bit(bits - 2)) << "second-highest bit must be set for RSA";
  DeterministicRng check(999);
  EXPECT_TRUE(is_probable_prime(p, check));
}

INSTANTIATE_TEST_SUITE_P(Widths, PrimeGeneration,
                         ::testing::Values(16, 32, 64, 128, 256));

TEST(RandomBelow, StaysInRangeAndVaries) {
  DeterministicRng rng(123);
  BigInt bound(std::string_view("0x10000000000000000000001"));
  BigInt prev;
  bool varied = false;
  for (int i = 0; i < 100; ++i) {
    BigInt v = BigInt::random_below(bound, rng);
    EXPECT_LT(v, bound);
    EXPECT_FALSE(v.is_negative());
    if (i > 0 && !(v == prev)) varied = true;
    prev = v;
  }
  EXPECT_TRUE(varied);
}

}  // namespace
}  // namespace omadrm::bigint
