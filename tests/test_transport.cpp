// Transport-robustness suite: ROAP sessions driven through a
// FaultyTransport that drops, corrupts, replays, and reorders envelopes.
// The contract under every fault: the agent fails *closed* with the right
// StatusCode, leaves no poisoned state behind, and a plain retry (fresh
// session, fresh nonces) succeeds once the network behaves.
#include <gtest/gtest.h>

#include <memory>

#include "agent/drm_agent.h"
#include "agent/sessions.h"
#include "ci/content_issuer.h"
#include "common/error.h"
#include "common/random.h"
#include "pki/authority.h"
#include "provider/provider.h"
#include "ri/rights_issuer.h"
#include "roap/envelope.h"
#include "roap/transport.h"

namespace omadrm {
namespace {

using agent::AgentStatus;
using agent::DrmAgent;
using roap::FaultyTransport;
using Fault = roap::FaultyTransport::Fault;

constexpr std::uint64_t kNow = 1100000000;
const pki::Validity kValidity{kNow - 86400, kNow + 365 * 86400};

class TransportRobustness : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<DeterministicRng>(0x7A13);
    ca_ = std::make_unique<pki::CertificationAuthority>("CMLA Root", 1024,
                                                        kValidity, *rng_);
    ci_ = std::make_unique<ci::ContentIssuer>(
        "content.example", provider::plain_provider(), *rng_);
    ri_ = std::make_unique<ri::RightsIssuer>(
        "ri.example", "http://ri.example/roap", *ca_, kValidity,
        provider::plain_provider(), *rng_);
    device_ = std::make_unique<DrmAgent>("device-01", ca_->root_certificate(),
                                         provider::plain_provider(), *rng_);
    device_->provision(
        ca_->issue("device-01", device_->public_key(), kValidity, *rng_));
    loopback_ = std::make_unique<roap::InProcessTransport>(*ri_, kNow);
    faulty_ = std::make_unique<FaultyTransport>(*loopback_, *rng_);

    ri::LicenseOffer offer;
    offer.ro_id = "ro:net";
    offer.content_id = "cid:net@content.example";
    offer.dcf_hash = Bytes(20, 0x42);
    rel::Permission play;
    play.type = rel::PermissionType::kPlay;
    offer.permissions = {play};
    offer.kcek = rng_->bytes(16);
    ri_->add_offer(offer);
  }

  FaultyTransport& net() { return *faulty_; }

  std::unique_ptr<DeterministicRng> rng_;
  std::unique_ptr<pki::CertificationAuthority> ca_;
  std::unique_ptr<ci::ContentIssuer> ci_;
  std::unique_ptr<ri::RightsIssuer> ri_;
  std::unique_ptr<DrmAgent> device_;
  std::unique_ptr<roap::InProcessTransport> loopback_;
  std::unique_ptr<FaultyTransport> faulty_;
};

// ---------------------------------------------------------------------------
// Dropped envelopes
// ---------------------------------------------------------------------------

TEST_F(TransportRobustness, DroppedHelloFailsClosedAndRetries) {
  net().inject(Fault::kDropRequest);
  EXPECT_EQ(device_->register_with(net(), kNow),
            AgentStatus::kTransportFailure);
  EXPECT_FALSE(device_->has_ri_context("ri.example"));
  // Honest retry succeeds.
  EXPECT_EQ(device_->register_with(net(), kNow), AgentStatus::kOk);
}

TEST_F(TransportRobustness, DroppedRegistrationResponseFailsClosedAndRetries) {
  // Lose the *fourth* pass: the RI has already registered the device, the
  // agent must still report failure (no context!) and recover by retrying
  // the whole handshake.
  net().inject(Fault::kNone);          // DeviceHello / RIHello exchange
  net().inject(Fault::kDropResponse);  // RegistrationResponse lost
  EXPECT_EQ(device_->register_with(net(), kNow),
            AgentStatus::kTransportFailure);
  EXPECT_FALSE(device_->has_ri_context("ri.example"));
  EXPECT_TRUE(ri_->is_registered("device-01"));  // server side went through

  EXPECT_EQ(device_->register_with(net(), kNow), AgentStatus::kOk);
  EXPECT_TRUE(device_->has_ri_context("ri.example"));
}

TEST_F(TransportRobustness, DroppedRoResponseFailsClosedAndRetries) {
  ASSERT_EQ(device_->register_with(net(), kNow), AgentStatus::kOk);
  net().inject(Fault::kDropResponse);
  auto lost = device_->acquire_ro(net(), "ri.example", "ro:net", kNow);
  EXPECT_EQ(lost, AgentStatus::kTransportFailure);

  auto retry = device_->acquire_ro(net(), "ri.example", "ro:net", kNow);
  ASSERT_EQ(retry, AgentStatus::kOk);
  EXPECT_EQ(device_->install_ro(*retry, kNow), AgentStatus::kOk);
}

// ---------------------------------------------------------------------------
// Corrupted envelopes
// ---------------------------------------------------------------------------

TEST_F(TransportRobustness, CorruptedRequestNeverYieldsALicense) {
  ASSERT_EQ(device_->register_with(net(), kNow), AgentStatus::kOk);
  net().inject(Fault::kCorruptRequest);
  auto acq = device_->acquire_ro(net(), "ri.example", "ro:net", kNow);
  // The mangled request either fails to parse at the RI or fails its
  // signature check there; the agent sees a dead exchange.
  EXPECT_EQ(acq, AgentStatus::kTransportFailure);
  EXPECT_EQ(device_->acquire_ro(net(), "ri.example", "ro:net", kNow),
            AgentStatus::kOk);
}

TEST_F(TransportRobustness, CorruptedResponsesAlwaysFailClosed) {
  // Drive many corrupted acquisition exchanges; every one must fail with
  // a "closed" status (never kOk with tampered content), and an honest
  // retry afterwards must succeed.
  ASSERT_EQ(device_->register_with(net(), kNow), AgentStatus::kOk);
  int malformed = 0, verification = 0;
  for (int i = 0; i < 40; ++i) {
    net().inject(Fault::kCorruptResponse);
    auto acq = device_->acquire_ro(net(), "ri.example", "ro:net", kNow);
    ASSERT_NE(acq, AgentStatus::kOk) << "corrupted exchange " << i;
    switch (acq.code()) {
      case AgentStatus::kMalformedMessage:
        ++malformed;
        break;
      case AgentStatus::kUnexpectedMessage:
      case AgentStatus::kSignatureInvalid:
      case AgentStatus::kNonceMismatch:
      case AgentStatus::kRiAborted:
      case AgentStatus::kNotRegistered:
      case AgentStatus::kUnknownRoId:
      case AgentStatus::kAccessDenied:
        ++verification;
        break;
      default:
        FAIL() << "unexpected status " << acq.describe();
    }
  }
  // Burst errors usually break the XML (malformed); occasionally the
  // document survives parsing and dies at signature/status checks.
  EXPECT_GT(malformed, 0);
  EXPECT_EQ(malformed + verification, 40);

  auto acq = device_->acquire_ro(net(), "ri.example", "ro:net", kNow);
  ASSERT_EQ(acq, AgentStatus::kOk);
  EXPECT_EQ(device_->install_ro(*acq, kNow), AgentStatus::kOk);
}

TEST_F(TransportRobustness, CorruptedRegistrationResponseRejected) {
  net().inject(Fault::kNone);
  net().inject(Fault::kCorruptResponse);
  auto reg = device_->register_with(net(), kNow);
  EXPECT_NE(reg, AgentStatus::kOk);
  EXPECT_FALSE(device_->has_ri_context("ri.example"));
  EXPECT_EQ(device_->register_with(net(), kNow), AgentStatus::kOk);
}

// ---------------------------------------------------------------------------
// Replayed / reordered envelopes
// ---------------------------------------------------------------------------

TEST_F(TransportRobustness, ReplayedResponseRejectedByNonce) {
  ASSERT_EQ(device_->register_with(net(), kNow), AgentStatus::kOk);
  ASSERT_EQ(device_->acquire_ro(net(), "ri.example", "ro:net", kNow),
            AgentStatus::kOk);
  // The network replays the previous ROResponse instead of delivering the
  // fresh one: the nonce binding must catch it.
  net().inject(Fault::kReplayResponse);
  EXPECT_EQ(device_->acquire_ro(net(), "ri.example", "ro:net", kNow),
            AgentStatus::kNonceMismatch);
  EXPECT_EQ(net().stats().replayed, 1u);
  EXPECT_EQ(device_->acquire_ro(net(), "ri.example", "ro:net", kNow),
            AgentStatus::kOk);
}

TEST_F(TransportRobustness, ReplayedJoinResponseCannotRekeyAnotherDomain) {
  ASSERT_EQ(device_->register_with(net(), kNow), AgentStatus::kOk);
  ri_->create_domain("domain:a");
  ri_->create_domain("domain:b");
  ASSERT_EQ(device_->join_domain(net(), "ri.example", "domain:a", kNow),
            AgentStatus::kOk);
  // The network replays domain:a's (validly signed) JoinDomainResponse
  // into the join for domain:b. Same message type, wrong binding: the
  // nonce echo must reject it, and domain:b must not appear joined.
  net().inject(Fault::kReplayResponse);
  EXPECT_EQ(device_->join_domain(net(), "ri.example", "domain:b", kNow),
            AgentStatus::kNonceMismatch);
  EXPECT_FALSE(device_->has_domain_key("domain:b"));
  EXPECT_TRUE(device_->has_domain_key("domain:a"));
  EXPECT_EQ(device_->join_domain(net(), "ri.example", "domain:b", kNow),
            AgentStatus::kOk);
}

TEST_F(TransportRobustness, SubstitutedRoResponseFromAnotherRiRejected) {
  // Two RIs, one device registered with both. A response minted by RI B
  // must not satisfy a session with RI A even if it reaches the agent.
  ri::RightsIssuer other("ri.other", "http://ri.other/roap", *ca_, kValidity,
                         provider::plain_provider(), *rng_);
  roap::InProcessTransport other_loop(other, kNow);
  ASSERT_EQ(device_->register_with(net(), kNow), AgentStatus::kOk);
  ASSERT_EQ(device_->register_with(other_loop, kNow), AgentStatus::kOk);

  ri::LicenseOffer offer;
  offer.ro_id = "ro:net";
  offer.content_id = "cid:net@content.example";
  offer.dcf_hash = Bytes(20, 0x42);
  rel::Permission play;
  play.type = rel::PermissionType::kPlay;
  offer.permissions = {play};
  offer.kcek = rng_->bytes(16);
  other.add_offer(offer);

  agent::AcquisitionSession session(*device_, "ri.example", "ro:net", kNow);
  auto req = session.request();
  ASSERT_EQ(req, AgentStatus::kOk);
  // The request is mis-delivered to (or substituted by) the other RI,
  // which happily answers with its own signature over our nonce.
  roap::Envelope substituted = other_loop.request(*req);
  EXPECT_EQ(session.conclude(substituted), AgentStatus::kNonceMismatch);
}

TEST_F(TransportRobustness, ReplayedResponseAcrossMessageTypesRejected) {
  ASSERT_EQ(device_->register_with(net(), kNow), AgentStatus::kOk);
  ri_->create_domain("domain:net");
  ASSERT_EQ(device_->join_domain(net(), "ri.example", "domain:net", kNow),
            AgentStatus::kOk);
  // A JoinDomainResponse replayed into an acquisition is the wrong type.
  net().inject(Fault::kReplayResponse);
  EXPECT_EQ(device_->acquire_ro(net(), "ri.example", "ro:net", kNow),
            AgentStatus::kUnexpectedMessage);
}

TEST_F(TransportRobustness, ReorderedResponsesRejectedUntilDrained) {
  ASSERT_EQ(device_->register_with(net(), kNow), AgentStatus::kOk);
  // The response to this acquisition is delayed past the timeout...
  net().inject(Fault::kDelayResponse);
  EXPECT_EQ(device_->acquire_ro(net(), "ri.example", "ro:net", kNow),
            AgentStatus::kTransportFailure);
  // ...so the next exchange receives the *stale* response: nonce mismatch.
  EXPECT_EQ(device_->acquire_ro(net(), "ri.example", "ro:net", kNow),
            AgentStatus::kNonceMismatch);
  EXPECT_EQ(net().stats().delayed, 1u);
  // Once the network drops the stale packets, order is restored.
  net().discard_delayed();
  EXPECT_EQ(device_->acquire_ro(net(), "ri.example", "ro:net", kNow),
            AgentStatus::kOk);
}

// ---------------------------------------------------------------------------
// Randomized soak: a lossy network, a persistent device
// ---------------------------------------------------------------------------

TEST_F(TransportRobustness, LossyNetworkSoak) {
  net().set_drop_rate(0.25);
  net().set_corrupt_rate(0.15);

  // Registration: retry until it lands (bounded).
  bool registered = false;
  for (int attempt = 0; attempt < 50 && !registered; ++attempt) {
    registered = device_->register_with(net(), kNow).ok();
  }
  ASSERT_TRUE(registered) << "registration never landed on a lossy network";

  // Acquisitions: every failure must be a closed status; successes must
  // install and be genuine.
  int acquired = 0;
  for (int attempt = 0; attempt < 60; ++attempt) {
    net().discard_delayed();
    auto acq = device_->acquire_ro(net(), "ri.example", "ro:net", kNow);
    if (acq.ok()) {
      ASSERT_EQ(device_->install_ro(*acq, kNow), AgentStatus::kOk);
      ++acquired;
    } else {
      EXPECT_NE(acq.code(), AgentStatus::kOk);
    }
  }
  EXPECT_GT(acquired, 10);
  const FaultyTransport::Stats& st = net().stats();
  EXPECT_GT(st.dropped + st.corrupted, 0u);
}

// ---------------------------------------------------------------------------
// Transport misc
// ---------------------------------------------------------------------------

TEST_F(TransportRobustness, FaultyTransportIsTransparentWhenHonest) {
  // No injected faults, zero rates: stats show clean delivery.
  ASSERT_EQ(device_->register_with(net(), kNow), AgentStatus::kOk);
  const FaultyTransport::Stats& st = net().stats();
  EXPECT_EQ(st.requests, 2u);  // hello + registration request
  EXPECT_EQ(st.delivered, 2u);
  EXPECT_EQ(st.dropped + st.corrupted + st.replayed + st.delayed, 0u);
}

TEST_F(TransportRobustness, ScheduledFaultsConsumeInOrderAndCount) {
  net().set_schedule({Fault::kDropRequest, Fault::kNone, Fault::kDropRequest});
  EXPECT_EQ(net().schedule_remaining(), 3u);
  EXPECT_EQ(device_->register_with(net(), kNow),
            AgentStatus::kTransportFailure);  // entry 1: hello dropped
  EXPECT_EQ(net().schedule_remaining(), 2u);
  EXPECT_EQ(device_->register_with(net(), kNow),
            AgentStatus::kTransportFailure);  // entry 2 honest, 3 drops
  EXPECT_EQ(net().schedule_remaining(), 0u);
  EXPECT_EQ(net().stats().scheduled, 3u);
  // Schedule exhausted: traffic is honest again (rates are all zero).
  EXPECT_EQ(device_->register_with(net(), kNow), AgentStatus::kOk);
}

TEST_F(TransportRobustness, ReplayAndDelayRatesProduceTheirFaults) {
  ASSERT_EQ(device_->register_with(net(), kNow), AgentStatus::kOk);
  net().set_replay_rate(0.3);
  net().set_delay_rate(0.3);
  for (int i = 0; i < 60; ++i) {
    net().discard_delayed();
    auto acq = device_->acquire_ro(net(), "ri.example", "ro:net", kNow);
    if (acq.ok()) {
      EXPECT_EQ(device_->install_ro(*acq, kNow), AgentStatus::kOk);
    }
  }
  EXPECT_GT(net().stats().replayed, 0u);
  EXPECT_GT(net().stats().delayed, 0u);
  EXPECT_EQ(net().stats().dropped + net().stats().corrupted, 0u);
}

TEST_F(TransportRobustness, FaultLogReplaysAnObservedRunExactly) {
  // Probabilistic run: record what the network actually did.
  net().set_drop_rate(0.4);
  auto first = device_->register_with(net(), kNow);
  const std::vector<Fault> observed = net().fault_log();
  ASSERT_FALSE(observed.empty());

  // Feed the log back as a schedule: the second run sees the identical
  // fault sequence — the replay mechanism the chaos soak prints on
  // violation ("rerun with --seed N") rests on this.
  net().set_drop_rate(0);
  net().clear_fault_log();
  DrmAgent replay_device("device-02", ca_->root_certificate(),
                         provider::plain_provider(), *rng_);
  replay_device.provision(
      ca_->issue("device-02", replay_device.public_key(), kValidity, *rng_));
  net().set_schedule(observed);
  auto second = replay_device.register_with(net(), kNow);
  EXPECT_EQ(second.code(), first.code());
  EXPECT_EQ(net().fault_log(), observed);
}

TEST_F(TransportRobustness, InProcessTransportRoundTripsEnvelopes) {
  // The loopback transport performs a full serialize→parse round trip:
  // what comes back is a well-typed envelope, not a shared object.
  agent::RegistrationSession reg(*device_, kNow);
  auto hello = reg.hello();
  ASSERT_EQ(hello, AgentStatus::kOk);
  roap::Envelope reply = loopback_->request(*hello);
  EXPECT_EQ(reply.type(), roap::MessageType::kRiHello);
  roap::RiHello parsed = reply.open<roap::RiHello>();
  EXPECT_EQ(parsed.ri_id, "ri.example");
}

}  // namespace
}  // namespace omadrm
