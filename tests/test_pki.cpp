// Tests for certificates, the CA, chain validation, and OCSP.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/random.h"
#include "pki/authority.h"
#include "pki/certificate.h"
#include "pki/ocsp.h"
#include "rsa/pss.h"

namespace omadrm::pki {
namespace {

using omadrm::DeterministicRng;

constexpr std::uint64_t kNow = 1100000000;
const Validity kValidity{kNow - 86400, kNow + 365 * 86400};

class PkiFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new DeterministicRng(0xCA);
    ca_ = new CertificationAuthority("Test Root CA", 1024, kValidity, *rng_);
    subject_key_ = new rsa::PrivateKey(rsa::generate_key(1024, *rng_));
  }
  static void TearDownTestSuite() {
    delete ca_;
    delete subject_key_;
    delete rng_;
  }

  static CertificationAuthority& ca() { return *ca_; }
  static const rsa::PrivateKey& subject_key() { return *subject_key_; }
  static Rng& rng() { return *rng_; }

 private:
  static DeterministicRng* rng_;
  static CertificationAuthority* ca_;
  static rsa::PrivateKey* subject_key_;
};

DeterministicRng* PkiFixture::rng_ = nullptr;
CertificationAuthority* PkiFixture::ca_ = nullptr;
rsa::PrivateKey* PkiFixture::subject_key_ = nullptr;

TEST_F(PkiFixture, RootIsSelfSignedAndValid) {
  const Certificate& root = ca().root_certificate();
  EXPECT_TRUE(root.is_self_signed());
  EXPECT_EQ(root.serial().to_dec(), "1");
  EXPECT_EQ(verify_certificate(root, root.subject_key(), root.subject_cn(),
                               kNow),
            CertStatus::kValid);
}

TEST_F(PkiFixture, IssueAndVerifyLeaf) {
  Certificate leaf = ca().issue("device-xyz", subject_key().public_key(),
                                kValidity, rng());
  EXPECT_EQ(leaf.issuer_cn(), "Test Root CA");
  EXPECT_EQ(leaf.subject_cn(), "device-xyz");
  EXPECT_FALSE(leaf.is_self_signed());
  EXPECT_EQ(verify_certificate(leaf, ca().public_key(), "Test Root CA", kNow),
            CertStatus::kValid);
  EXPECT_EQ(validate_against_root(leaf, ca().root_certificate(), kNow),
            CertStatus::kValid);
}

TEST_F(PkiFixture, SerialsIncrement) {
  Certificate a = ca().issue("a", subject_key().public_key(), kValidity,
                             rng());
  Certificate b = ca().issue("b", subject_key().public_key(), kValidity,
                             rng());
  EXPECT_LT(a.serial(), b.serial());
}

TEST_F(PkiFixture, DerRoundTrip) {
  Certificate leaf =
      ca().issue("roundtrip", subject_key().public_key(), kValidity, rng());
  Bytes der = leaf.to_der();
  Certificate parsed = Certificate::from_der(der);
  EXPECT_EQ(parsed.subject_cn(), "roundtrip");
  EXPECT_EQ(parsed.issuer_cn(), leaf.issuer_cn());
  EXPECT_EQ(parsed.serial(), leaf.serial());
  EXPECT_EQ(parsed.validity().not_before, leaf.validity().not_before);
  EXPECT_EQ(parsed.validity().not_after, leaf.validity().not_after);
  EXPECT_EQ(parsed.subject_key().n, leaf.subject_key().n);
  EXPECT_EQ(parsed.signature(), leaf.signature());
  // The parsed certificate still verifies.
  EXPECT_EQ(verify_certificate(parsed, ca().public_key(), "Test Root CA",
                               kNow),
            CertStatus::kValid);
}

TEST_F(PkiFixture, TbsIsStable) {
  Certificate leaf =
      ca().issue("stable", subject_key().public_key(), kValidity, rng());
  EXPECT_EQ(leaf.tbs_der(), Certificate::from_der(leaf.to_der()).tbs_der());
}

TEST_F(PkiFixture, DetectsTamperedCertificate) {
  Certificate leaf =
      ca().issue("tamper", subject_key().public_key(), kValidity, rng());
  Bytes der = leaf.to_der();
  // Flip a byte inside the subject name region.
  for (std::size_t i = 40; i < der.size(); i += 97) {
    Bytes bad = der;
    bad[i] ^= 0x01;
    Certificate parsed;
    try {
      parsed = Certificate::from_der(bad);
    } catch (const Error&) {
      continue;  // structurally broken is also an acceptable detection
    }
    EXPECT_NE(verify_certificate(parsed, ca().public_key(), "Test Root CA",
                                 kNow),
              CertStatus::kValid)
        << "byte " << i;
  }
}

TEST_F(PkiFixture, ValidityWindowEnforced) {
  Certificate leaf =
      ca().issue("window", subject_key().public_key(), kValidity, rng());
  EXPECT_EQ(verify_certificate(leaf, ca().public_key(), "Test Root CA",
                               kValidity.not_before - 10),
            CertStatus::kNotYetValid);
  EXPECT_EQ(verify_certificate(leaf, ca().public_key(), "Test Root CA",
                               kValidity.not_after + 10),
            CertStatus::kExpired);
}

TEST_F(PkiFixture, IssuerMismatchDetected) {
  Certificate leaf =
      ca().issue("mismatch", subject_key().public_key(), kValidity, rng());
  EXPECT_EQ(verify_certificate(leaf, ca().public_key(), "Another CA", kNow),
            CertStatus::kIssuerMismatch);
}

TEST_F(PkiFixture, WrongIssuerKeyRejected) {
  Certificate leaf =
      ca().issue("wrongkey", subject_key().public_key(), kValidity, rng());
  EXPECT_EQ(verify_certificate(leaf, subject_key().public_key(),
                               "Test Root CA", kNow),
            CertStatus::kBadSignature);
}

TEST_F(PkiFixture, UnsignedCertificateCannotSerialize) {
  Certificate cert(bigint::BigInt(9), "i", "s", kValidity,
                   subject_key().public_key());
  EXPECT_THROW(cert.to_der(), Error);
}

TEST_F(PkiFixture, RevocationTracking) {
  Certificate leaf =
      ca().issue("revoke-me", subject_key().public_key(), kValidity, rng());
  EXPECT_FALSE(ca().is_revoked(leaf.serial()));
  ca().revoke(leaf.serial());
  EXPECT_TRUE(ca().is_revoked(leaf.serial()));
}

TEST_F(PkiFixture, OcspGoodRevokedUnknown) {
  Certificate leaf =
      ca().issue("ocsp-leaf", subject_key().public_key(), kValidity, rng());
  DeterministicRng local(7);

  OcspRequest req{leaf.serial(), local.bytes(14)};
  OcspResponse resp = ca().ocsp_respond(req, kNow, rng());
  EXPECT_EQ(resp.status(), OcspCertStatus::kGood);
  EXPECT_TRUE(resp.verify(ca().public_key(), req, kNow, 3600));

  ca().revoke(leaf.serial());
  OcspResponse resp2 = ca().ocsp_respond(req, kNow, rng());
  EXPECT_EQ(resp2.status(), OcspCertStatus::kRevoked);

  OcspRequest unknown{bigint::BigInt(99999), local.bytes(14)};
  OcspResponse resp3 = ca().ocsp_respond(unknown, kNow, rng());
  EXPECT_EQ(resp3.status(), OcspCertStatus::kUnknown);
}

TEST_F(PkiFixture, OcspDerRoundTrip) {
  DeterministicRng local(8);
  OcspRequest req{bigint::BigInt(2), local.bytes(14)};
  OcspResponse resp = ca().ocsp_respond(req, kNow, rng());
  OcspResponse parsed = OcspResponse::from_der(resp.to_der());
  EXPECT_EQ(parsed.serial(), resp.serial());
  EXPECT_EQ(parsed.status(), resp.status());
  EXPECT_EQ(parsed.produced_at(), resp.produced_at());
  EXPECT_EQ(parsed.nonce(), resp.nonce());
  EXPECT_TRUE(parsed.verify(ca().public_key(), req, kNow, 3600));

  OcspRequest req_rt = OcspRequest::from_der(req.to_der());
  EXPECT_EQ(req_rt.serial, req.serial);
  EXPECT_EQ(req_rt.nonce, req.nonce);
}

TEST_F(PkiFixture, OcspBindingChecks) {
  DeterministicRng local(9);
  OcspRequest req{bigint::BigInt(2), local.bytes(14)};
  OcspResponse resp = ca().ocsp_respond(req, kNow, rng());

  // Wrong nonce.
  OcspRequest other{bigint::BigInt(2), local.bytes(14)};
  EXPECT_FALSE(resp.verify(ca().public_key(), other, kNow, 3600));
  // Wrong serial.
  OcspRequest wrong_serial{bigint::BigInt(3), req.nonce};
  EXPECT_FALSE(resp.verify(ca().public_key(), wrong_serial, kNow, 3600));
  // Stale.
  EXPECT_FALSE(resp.verify(ca().public_key(), req, kNow + 7200, 3600));
  // From the future.
  EXPECT_FALSE(resp.verify(ca().public_key(), req, kNow - 10, 3600));
  // Wrong responder key.
  EXPECT_FALSE(resp.verify(subject_key().public_key(), req, kNow, 3600));
}

}  // namespace
}  // namespace omadrm::pki
