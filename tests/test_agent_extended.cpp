// Extended DRM Agent behaviours: acquisition triggers, domain key
// generations (leave / upgrade / re-join), and secure-storage persistence
// across simulated reboots.
#include <gtest/gtest.h>

#include "agent/drm_agent.h"
#include "ci/content_issuer.h"
#include "common/error.h"
#include "common/random.h"
#include "pki/authority.h"
#include "provider/provider.h"
#include "ri/rights_issuer.h"

namespace omadrm {
namespace {

using agent::AgentStatus;
using agent::DrmAgent;

constexpr std::uint64_t kNow = 1100000000;
const pki::Validity kValidity{kNow - 86400, kNow + 365 * 86400};

class AgentExtended : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<DeterministicRng>(0xA9E);
    ca_ = std::make_unique<pki::CertificationAuthority>("CMLA Root", 1024,
                                                        kValidity, *rng_);
    ci_ = std::make_unique<ci::ContentIssuer>(
        "content.example", provider::plain_provider(), *rng_);
    ri_ = std::make_unique<ri::RightsIssuer>(
        "ri.example", "http://ri.example/roap", *ca_, kValidity,
        provider::plain_provider(), *rng_);
    device_ = std::make_unique<DrmAgent>("device-01", ca_->root_certificate(),
                                         provider::plain_provider(), *rng_);
    device_->provision(
        ca_->issue("device-01", device_->public_key(), kValidity, *rng_));
  }

  dcf::Dcf setup_content(const std::string& tag, std::size_t size,
                         std::uint32_t count_limit = 0,
                         bool domain_ro = false) {
    content_ = rng_->bytes(size);
    dcf::Headers h;
    h.content_type = "audio/mpeg";
    h.content_id = "cid:" + tag + "@content.example";
    h.rights_issuer_url = ri_->url();
    dcf::Dcf dcf = ci_->package(h, content_);

    ri::LicenseOffer offer;
    offer.ro_id = "ro:" + tag;
    offer.content_id = h.content_id;
    offer.dcf_hash = dcf.hash();
    rel::Permission play;
    play.type = rel::PermissionType::kPlay;
    if (count_limit > 0) play.constraint.count = count_limit;
    offer.permissions = {play};
    offer.kcek = *ci_->kcek_for(h.content_id);
    if (domain_ro) {
      offer.domain_ro = true;
      offer.domain_id = "domain:home";
      ri_->create_domain(offer.domain_id);
    }
    ri_->add_offer(offer);
    return dcf;
  }

  std::unique_ptr<DeterministicRng> rng_;
  std::unique_ptr<pki::CertificationAuthority> ca_;
  std::unique_ptr<ci::ContentIssuer> ci_;
  std::unique_ptr<ri::RightsIssuer> ri_;
  std::unique_ptr<DrmAgent> device_;
  Bytes content_;
};

// ---------------------------------------------------------------------------
// Triggers
// ---------------------------------------------------------------------------

TEST_F(AgentExtended, TriggerDrivesDeviceRoAcquisition) {
  dcf::Dcf dcf = setup_content("trig", 2000);
  ASSERT_EQ(device_->register_with(*ri_, kNow), AgentStatus::kOk);

  roap::RoAcquisitionTrigger trigger = ri_->make_trigger("ro:trig");
  EXPECT_EQ(trigger.content_id, dcf.headers().content_id);
  EXPECT_TRUE(trigger.domain_id.empty());

  agent::AcquireResult acq = device_->handle_trigger(*ri_, trigger, kNow);
  ASSERT_EQ(acq.status, AgentStatus::kOk);
  ASSERT_EQ(device_->install_ro(*acq.ro, kNow), AgentStatus::kOk);
  EXPECT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
}

TEST_F(AgentExtended, TriggerAutoJoinsDomain) {
  dcf::Dcf dcf = setup_content("trigdom", 2000, 0, /*domain_ro=*/true);
  ASSERT_EQ(device_->register_with(*ri_, kNow), AgentStatus::kOk);
  EXPECT_FALSE(device_->has_domain_key("domain:home"));

  roap::RoAcquisitionTrigger trigger = ri_->make_trigger("ro:trigdom");
  EXPECT_EQ(trigger.domain_id, "domain:home");
  agent::AcquireResult acq = device_->handle_trigger(*ri_, trigger, kNow);
  ASSERT_EQ(acq.status, AgentStatus::kOk);
  EXPECT_TRUE(device_->has_domain_key("domain:home"));
  ASSERT_EQ(device_->install_ro(*acq.ro, kNow), AgentStatus::kOk);
  EXPECT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
}

TEST_F(AgentExtended, TriggerFromUnknownRiRejected) {
  setup_content("trigri", 100);
  ASSERT_EQ(device_->register_with(*ri_, kNow), AgentStatus::kOk);
  roap::RoAcquisitionTrigger trigger = ri_->make_trigger("ro:trigri");
  trigger.ri_id = "rogue.example";
  EXPECT_EQ(device_->handle_trigger(*ri_, trigger, kNow).status,
            AgentStatus::kNoRiContext);
}

TEST_F(AgentExtended, TriggerForUnknownOfferThrowsAtRi) {
  EXPECT_THROW(ri_->make_trigger("ro:none"), Error);
}

// ---------------------------------------------------------------------------
// Domain lifecycle: leave, upgrade, re-join
// ---------------------------------------------------------------------------

TEST_F(AgentExtended, LeaveDomainRemovesKeyAndDomainRos) {
  dcf::Dcf dcf = setup_content("leave", 1500, 0, /*domain_ro=*/true);
  ASSERT_EQ(device_->register_with(*ri_, kNow), AgentStatus::kOk);
  ASSERT_EQ(device_->join_domain(*ri_, "domain:home", kNow), AgentStatus::kOk);
  agent::AcquireResult acq = device_->acquire_ro(*ri_, "ro:leave", kNow);
  ASSERT_EQ(acq.status, AgentStatus::kOk);
  ASSERT_EQ(device_->install_ro(*acq.ro, kNow), AgentStatus::kOk);
  ASSERT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);

  ASSERT_EQ(device_->leave_domain(*ri_, "domain:home", kNow),
            AgentStatus::kOk);
  EXPECT_FALSE(device_->has_domain_key("domain:home"));
  EXPECT_EQ(device_->installed_count(), 0u);
  EXPECT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kNotInstalled);
  // The RI no longer counts us as a member.
  agent::AcquireResult again = device_->acquire_ro(*ri_, "ro:leave", kNow);
  EXPECT_EQ(again.status, AgentStatus::kRiAborted);
}

TEST_F(AgentExtended, LeaveKeepsDeviceRosAndOtherDomains) {
  dcf::Dcf dev_dcf = setup_content("keepdev", 800);
  ASSERT_EQ(device_->register_with(*ri_, kNow), AgentStatus::kOk);
  agent::AcquireResult dev_acq = device_->acquire_ro(*ri_, "ro:keepdev", kNow);
  ASSERT_EQ(dev_acq.status, AgentStatus::kOk);
  ASSERT_EQ(device_->install_ro(*dev_acq.ro, kNow), AgentStatus::kOk);

  ri_->create_domain("domain:other");
  ASSERT_EQ(device_->join_domain(*ri_, "domain:other", kNow),
            AgentStatus::kOk);
  ri_->create_domain("domain:gone");
  ASSERT_EQ(device_->join_domain(*ri_, "domain:gone", kNow), AgentStatus::kOk);

  ASSERT_EQ(device_->leave_domain(*ri_, "domain:gone", kNow),
            AgentStatus::kOk);
  EXPECT_TRUE(device_->has_domain_key("domain:other"));
  EXPECT_FALSE(device_->has_domain_key("domain:gone"));
  EXPECT_EQ(device_->installed_count(), 1u);  // the device RO remains
  EXPECT_EQ(device_->consume(dev_dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
}

TEST_F(AgentExtended, LeaveWithoutContextOrMembership) {
  EXPECT_EQ(device_->leave_domain(*ri_, "domain:home", kNow),
            AgentStatus::kNoRiContext);
  ASSERT_EQ(device_->register_with(*ri_, kNow), AgentStatus::kOk);
  EXPECT_EQ(device_->leave_domain(*ri_, "domain:nonexistent", kNow),
            AgentStatus::kRiAborted);
}

TEST_F(AgentExtended, DomainUpgradeForcesRejoin) {
  dcf::Dcf dcf = setup_content("upgrade", 900, 0, /*domain_ro=*/true);
  ASSERT_EQ(device_->register_with(*ri_, kNow), AgentStatus::kOk);
  ASSERT_EQ(device_->join_domain(*ri_, "domain:home", kNow), AgentStatus::kOk);
  EXPECT_EQ(*device_->domain_generation("domain:home"), 1u);

  // The RI rotates the domain key (e.g. a member was compromised).
  ri_->upgrade_domain("domain:home");

  // A new Domain RO is wrapped under generation 2; our key is stale.
  // (The RI also cleared membership, so first prove the membership gate.)
  agent::AcquireResult gated = device_->acquire_ro(*ri_, "ro:upgrade", kNow);
  EXPECT_EQ(gated.status, AgentStatus::kRiAborted);

  ASSERT_EQ(device_->join_domain(*ri_, "domain:home", kNow), AgentStatus::kOk);
  EXPECT_EQ(*device_->domain_generation("domain:home"), 2u);
  agent::AcquireResult acq = device_->acquire_ro(*ri_, "ro:upgrade", kNow);
  ASSERT_EQ(acq.status, AgentStatus::kOk);
  EXPECT_EQ(acq.ro->domain_generation, 2u);
  ASSERT_EQ(device_->install_ro(*acq.ro, kNow), AgentStatus::kOk);
  EXPECT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
}

TEST_F(AgentExtended, StaleGenerationKeyCannotInstallNewRo) {
  setup_content("stale", 700, 0, /*domain_ro=*/true);
  ASSERT_EQ(device_->register_with(*ri_, kNow), AgentStatus::kOk);
  ASSERT_EQ(device_->join_domain(*ri_, "domain:home", kNow), AgentStatus::kOk);

  // A second member acquires an RO *after* the upgrade.
  DrmAgent second("device-02", ca_->root_certificate(),
                  provider::plain_provider(), *rng_);
  second.provision(
      ca_->issue("device-02", second.public_key(), kValidity, *rng_));
  ASSERT_EQ(second.register_with(*ri_, kNow), AgentStatus::kOk);
  ri_->upgrade_domain("domain:home");
  ASSERT_EQ(second.join_domain(*ri_, "domain:home", kNow), AgentStatus::kOk);
  agent::AcquireResult acq = second.acquire_ro(*ri_, "ro:stale", kNow);
  ASSERT_EQ(acq.status, AgentStatus::kOk);

  // device-01 still holds the generation-1 key: installation must be
  // refused with a re-join hint, not a garbage unwrap.
  EXPECT_EQ(device_->install_ro(*acq.ro, kNow), AgentStatus::kNoDomainKey);
  ASSERT_EQ(device_->join_domain(*ri_, "domain:home", kNow), AgentStatus::kOk);
  EXPECT_EQ(device_->install_ro(*acq.ro, kNow), AgentStatus::kOk);
}

// ---------------------------------------------------------------------------
// Relayed ROAP (Unconnected Devices) and the wire dispatcher
// ---------------------------------------------------------------------------

TEST_F(AgentExtended, RelayedRoapOverWireDispatcher) {
  dcf::Dcf dcf = setup_content("relay", 900);

  auto relay = [&](const std::string& req) {
    return ri_->handle_wire(req, kNow);
  };

  // Registration, every pass as serialized XML.
  roap::DeviceHello hello = device_->build_device_hello();
  roap::RiHello ri_hello = roap::RiHello::from_xml(
      xml::parse(relay(hello.to_xml().serialize())));
  roap::RegistrationRequest reg_req =
      device_->build_registration_request(ri_hello);
  roap::RegistrationResponse reg_resp = roap::RegistrationResponse::from_xml(
      xml::parse(relay(reg_req.to_xml().serialize())));
  ASSERT_EQ(device_->process_registration_response(reg_resp, kNow),
            AgentStatus::kOk);
  EXPECT_TRUE(device_->has_ri_context("ri.example"));

  // Acquisition over the wire.
  roap::RoRequest ro_req = device_->build_ro_request("ri.example", "ro:relay");
  roap::RoResponse ro_resp = roap::RoResponse::from_xml(
      xml::parse(relay(ro_req.to_xml().serialize())));
  agent::AcquireResult acq = device_->process_ro_response(ro_resp);
  ASSERT_EQ(acq.status, AgentStatus::kOk);
  ASSERT_EQ(device_->install_ro(*acq.ro, kNow), AgentStatus::kOk);
  EXPECT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
}

TEST_F(AgentExtended, TwoPhaseApiEnforcesOrdering) {
  setup_content("order", 100);
  // Response processing without a request in flight is refused.
  roap::RegistrationResponse stray;
  stray.status = roap::Status::kSuccess;
  EXPECT_EQ(device_->process_registration_response(stray, kNow),
            AgentStatus::kNonceMismatch);
  roap::RoResponse stray_ro;
  EXPECT_EQ(device_->process_ro_response(stray_ro).status,
            AgentStatus::kNonceMismatch);
  roap::JoinDomainResponse stray_join;
  EXPECT_EQ(device_->process_join_domain_response(stray_join),
            AgentStatus::kNonceMismatch);
  // Request builders require their preconditions.
  EXPECT_THROW(device_->build_registration_request(roap::RiHello{}), Error);
  EXPECT_THROW(device_->build_ro_request("ri.example", "ro:order"), Error);
  EXPECT_THROW(device_->build_join_domain_request("ri.example", "d"), Error);
}

TEST_F(AgentExtended, ReplayedRoResponseRejected) {
  dcf::Dcf dcf = setup_content("replay", 300);
  ASSERT_EQ(device_->register_with(*ri_, kNow), AgentStatus::kOk);
  roap::RoRequest req = device_->build_ro_request("ri.example", "ro:replay");
  roap::RoResponse resp = ri_->handle_ro_request(req, kNow);
  ASSERT_EQ(device_->process_ro_response(resp).status, AgentStatus::kOk);
  // Replaying the same (valid) response without a fresh request fails.
  EXPECT_EQ(device_->process_ro_response(resp).status,
            AgentStatus::kNonceMismatch);
  // And it cannot satisfy a *different* request either.
  device_->build_ro_request("ri.example", "ro:replay");
  EXPECT_EQ(device_->process_ro_response(resp).status,
            AgentStatus::kNonceMismatch);
}

TEST_F(AgentExtended, WireDispatcherRejectsUnknownMessages) {
  EXPECT_THROW(ri_->handle_wire("<roap:unknownMessage/>", kNow), Error);
  EXPECT_THROW(ri_->handle_wire("not xml", kNow), Error);
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

TEST_F(AgentExtended, StateSurvivesReboot) {
  dcf::Dcf dcf = setup_content("persist", 1200, /*count_limit=*/3);
  ASSERT_EQ(device_->register_with(*ri_, kNow), AgentStatus::kOk);
  agent::AcquireResult acq = device_->acquire_ro(*ri_, "ro:persist", kNow);
  ASSERT_EQ(acq.status, AgentStatus::kOk);
  ASSERT_EQ(device_->install_ro(*acq.ro, kNow), AgentStatus::kOk);
  ASSERT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);  // burn one play

  Bytes image = device_->export_state();

  // "Reboot": a fresh agent object restores the secure-storage image.
  DrmAgent rebooted("blank", ca_->root_certificate(),
                    provider::plain_provider(), *rng_, 512);
  rebooted.import_state(image);

  EXPECT_EQ(rebooted.device_id(), "device-01");
  EXPECT_TRUE(rebooted.is_provisioned());
  EXPECT_TRUE(rebooted.has_ri_context("ri.example"));
  EXPECT_EQ(rebooted.installed_count(), 1u);
  // Consumption state persisted: 2 of 3 plays left.
  EXPECT_EQ(*rebooted.remaining_count("ro:persist",
                                      rel::PermissionType::kPlay),
            2u);

  // The restored agent can keep consuming with the restored K_DEV...
  EXPECT_EQ(rebooted.consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
  EXPECT_EQ(rebooted.consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
  EXPECT_EQ(rebooted.consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kPermissionDenied);

  // ...and can still run new ROAP exchanges with its restored RSA key.
  dcf::Dcf more = setup_content("persist2", 600);
  agent::AcquireResult acq2 = rebooted.acquire_ro(*ri_, "ro:persist2", kNow);
  ASSERT_EQ(acq2.status, AgentStatus::kOk);
  ASSERT_EQ(rebooted.install_ro(*acq2.ro, kNow), AgentStatus::kOk);
  EXPECT_EQ(rebooted.consume(more, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
}

TEST_F(AgentExtended, PersistenceCoversDomains) {
  dcf::Dcf dcf = setup_content("pdom", 800, 0, /*domain_ro=*/true);
  ASSERT_EQ(device_->register_with(*ri_, kNow), AgentStatus::kOk);
  ASSERT_EQ(device_->join_domain(*ri_, "domain:home", kNow), AgentStatus::kOk);
  agent::AcquireResult acq = device_->acquire_ro(*ri_, "ro:pdom", kNow);
  ASSERT_EQ(acq.status, AgentStatus::kOk);
  ASSERT_EQ(device_->install_ro(*acq.ro, kNow), AgentStatus::kOk);

  DrmAgent rebooted("blank", ca_->root_certificate(),
                    provider::plain_provider(), *rng_, 512);
  rebooted.import_state(device_->export_state());
  EXPECT_TRUE(rebooted.has_domain_key("domain:home"));
  EXPECT_EQ(*rebooted.domain_generation("domain:home"), 1u);
  EXPECT_EQ(rebooted.consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
}

TEST_F(AgentExtended, ImportRejectsGarbage) {
  DrmAgent blank("blank", ca_->root_certificate(),
                 provider::plain_provider(), *rng_, 512);
  EXPECT_THROW(blank.import_state(to_bytes("not xml at all")), Error);
  EXPECT_THROW(blank.import_state(to_bytes("<wrong-root/>")), Error);
}

TEST_F(AgentExtended, ExportImportRoundTripIsStable) {
  setup_content("stable", 300);
  ASSERT_EQ(device_->register_with(*ri_, kNow), AgentStatus::kOk);
  agent::AcquireResult acq = device_->acquire_ro(*ri_, "ro:stable", kNow);
  ASSERT_EQ(acq.status, AgentStatus::kOk);
  ASSERT_EQ(device_->install_ro(*acq.ro, kNow), AgentStatus::kOk);

  Bytes image1 = device_->export_state();
  DrmAgent rebooted("blank", ca_->root_certificate(),
                    provider::plain_provider(), *rng_, 512);
  rebooted.import_state(image1);
  Bytes image2 = rebooted.export_state();
  EXPECT_EQ(image1, image2);
}

}  // namespace
}  // namespace omadrm
