// Extended DRM Agent behaviours: acquisition triggers, domain key
// generations (leave / upgrade / re-join), and secure-storage persistence
// across simulated reboots.
#include <gtest/gtest.h>

#include "agent/drm_agent.h"
#include "agent/sessions.h"
#include "ci/content_issuer.h"
#include "common/error.h"
#include "common/random.h"
#include "pki/authority.h"
#include "provider/provider.h"
#include "ri/rights_issuer.h"
#include "roap/envelope.h"
#include "roap/transport.h"

namespace omadrm {
namespace {

using agent::AgentStatus;
using agent::DrmAgent;

constexpr std::uint64_t kNow = 1100000000;
const pki::Validity kValidity{kNow - 86400, kNow + 365 * 86400};

class AgentExtended : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<DeterministicRng>(0xA9E);
    ca_ = std::make_unique<pki::CertificationAuthority>("CMLA Root", 1024,
                                                        kValidity, *rng_);
    ci_ = std::make_unique<ci::ContentIssuer>(
        "content.example", provider::plain_provider(), *rng_);
    ri_ = std::make_unique<ri::RightsIssuer>(
        "ri.example", "http://ri.example/roap", *ca_, kValidity,
        provider::plain_provider(), *rng_);
    device_ = std::make_unique<DrmAgent>("device-01", ca_->root_certificate(),
                                         provider::plain_provider(), *rng_);
    device_->provision(
        ca_->issue("device-01", device_->public_key(), kValidity, *rng_));
    transport_ = std::make_unique<roap::InProcessTransport>(*ri_, kNow);
  }

  roap::InProcessTransport& tx() { return *transport_; }

  dcf::Dcf setup_content(const std::string& tag, std::size_t size,
                         std::uint32_t count_limit = 0,
                         bool domain_ro = false) {
    content_ = rng_->bytes(size);
    dcf::Headers h;
    h.content_type = "audio/mpeg";
    h.content_id = "cid:" + tag + "@content.example";
    h.rights_issuer_url = ri_->url();
    dcf::Dcf dcf = ci_->package(h, content_);

    ri::LicenseOffer offer;
    offer.ro_id = "ro:" + tag;
    offer.content_id = h.content_id;
    offer.dcf_hash = dcf.hash();
    rel::Permission play;
    play.type = rel::PermissionType::kPlay;
    if (count_limit > 0) play.constraint.count = count_limit;
    offer.permissions = {play};
    offer.kcek = *ci_->kcek_for(h.content_id);
    if (domain_ro) {
      offer.domain_ro = true;
      offer.domain_id = "domain:home";
      ri_->create_domain(offer.domain_id);
    }
    ri_->add_offer(offer);
    return dcf;
  }

  std::unique_ptr<DeterministicRng> rng_;
  std::unique_ptr<pki::CertificationAuthority> ca_;
  std::unique_ptr<ci::ContentIssuer> ci_;
  std::unique_ptr<ri::RightsIssuer> ri_;
  std::unique_ptr<DrmAgent> device_;
  std::unique_ptr<roap::InProcessTransport> transport_;
  Bytes content_;
};

// ---------------------------------------------------------------------------
// Triggers
// ---------------------------------------------------------------------------

TEST_F(AgentExtended, TriggerDrivesDeviceRoAcquisition) {
  dcf::Dcf dcf = setup_content("trig", 2000);
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);

  roap::RoAcquisitionTrigger trigger = ri_->make_trigger("ro:trig");
  EXPECT_EQ(trigger.content_id, dcf.headers().content_id);
  EXPECT_TRUE(trigger.domain_id.empty());

  auto acq = device_->handle_trigger(tx(), trigger, kNow);
  ASSERT_EQ(acq, AgentStatus::kOk);
  ASSERT_EQ(device_->install_ro(*acq, kNow), AgentStatus::kOk);
  EXPECT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
}

TEST_F(AgentExtended, TriggerAutoJoinsDomain) {
  dcf::Dcf dcf = setup_content("trigdom", 2000, 0, /*domain_ro=*/true);
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  EXPECT_FALSE(device_->has_domain_key("domain:home"));

  roap::RoAcquisitionTrigger trigger = ri_->make_trigger("ro:trigdom");
  EXPECT_EQ(trigger.domain_id, "domain:home");
  auto acq = device_->handle_trigger(tx(), trigger, kNow);
  ASSERT_EQ(acq, AgentStatus::kOk);
  EXPECT_TRUE(device_->has_domain_key("domain:home"));
  ASSERT_EQ(device_->install_ro(*acq, kNow), AgentStatus::kOk);
  EXPECT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
}

TEST_F(AgentExtended, TriggerFromUnknownRiRejected) {
  setup_content("trigri", 100);
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  roap::RoAcquisitionTrigger trigger = ri_->make_trigger("ro:trigri");
  trigger.ri_id = "rogue.example";
  EXPECT_EQ(device_->handle_trigger(tx(), trigger, kNow),
            AgentStatus::kNoRiContext);
}

TEST_F(AgentExtended, TriggerForUnknownOfferThrowsAtRi) {
  EXPECT_THROW(ri_->make_trigger("ro:none"), Error);
}

// ---------------------------------------------------------------------------
// Domain lifecycle: leave, upgrade, re-join
// ---------------------------------------------------------------------------

TEST_F(AgentExtended, LeaveDomainRemovesKeyAndDomainRos) {
  dcf::Dcf dcf = setup_content("leave", 1500, 0, /*domain_ro=*/true);
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  ASSERT_EQ(device_->join_domain(tx(), "ri.example", "domain:home", kNow), AgentStatus::kOk);
  auto acq = device_->acquire_ro(tx(), "ri.example", "ro:leave", kNow);
  ASSERT_EQ(acq, AgentStatus::kOk);
  ASSERT_EQ(device_->install_ro(*acq, kNow), AgentStatus::kOk);
  ASSERT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);

  ASSERT_EQ(device_->leave_domain(tx(), "ri.example", "domain:home", kNow),
            AgentStatus::kOk);
  EXPECT_FALSE(device_->has_domain_key("domain:home"));
  EXPECT_EQ(device_->installed_count(), 0u);
  EXPECT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kNotInstalled);
  // The RI no longer counts us as a member.
  auto again = device_->acquire_ro(tx(), "ri.example", "ro:leave", kNow);
  EXPECT_EQ(again, AgentStatus::kAccessDenied);
}

TEST_F(AgentExtended, LeaveKeepsDeviceRosAndOtherDomains) {
  dcf::Dcf dev_dcf = setup_content("keepdev", 800);
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  auto dev_acq = device_->acquire_ro(tx(), "ri.example", "ro:keepdev", kNow);
  ASSERT_EQ(dev_acq, AgentStatus::kOk);
  ASSERT_EQ(device_->install_ro(*dev_acq, kNow), AgentStatus::kOk);

  ri_->create_domain("domain:other");
  ASSERT_EQ(device_->join_domain(tx(), "ri.example", "domain:other", kNow),
            AgentStatus::kOk);
  ri_->create_domain("domain:gone");
  ASSERT_EQ(device_->join_domain(tx(), "ri.example", "domain:gone", kNow), AgentStatus::kOk);

  ASSERT_EQ(device_->leave_domain(tx(), "ri.example", "domain:gone", kNow),
            AgentStatus::kOk);
  EXPECT_TRUE(device_->has_domain_key("domain:other"));
  EXPECT_FALSE(device_->has_domain_key("domain:gone"));
  EXPECT_EQ(device_->installed_count(), 1u);  // the device RO remains
  EXPECT_EQ(device_->consume(dev_dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
}

TEST_F(AgentExtended, LeaveWithoutContextOrMembership) {
  EXPECT_EQ(device_->leave_domain(tx(), "ri.example", "domain:home", kNow),
            AgentStatus::kNoRiContext);
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  EXPECT_EQ(
      device_->leave_domain(tx(), "ri.example", "domain:nonexistent", kNow),
      AgentStatus::kAccessDenied);
}

TEST_F(AgentExtended, DomainUpgradeForcesRejoin) {
  dcf::Dcf dcf = setup_content("upgrade", 900, 0, /*domain_ro=*/true);
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  ASSERT_EQ(device_->join_domain(tx(), "ri.example", "domain:home", kNow), AgentStatus::kOk);
  EXPECT_EQ(*device_->domain_generation("domain:home"), 1u);

  // The RI rotates the domain key (e.g. a member was compromised).
  ri_->upgrade_domain("domain:home");

  // A new Domain RO is wrapped under generation 2; our key is stale.
  // (The RI also cleared membership, so first prove the membership gate.)
  auto gated = device_->acquire_ro(tx(), "ri.example", "ro:upgrade", kNow);
  EXPECT_EQ(gated, AgentStatus::kAccessDenied);

  ASSERT_EQ(device_->join_domain(tx(), "ri.example", "domain:home", kNow), AgentStatus::kOk);
  EXPECT_EQ(*device_->domain_generation("domain:home"), 2u);
  auto acq = device_->acquire_ro(tx(), "ri.example", "ro:upgrade", kNow);
  ASSERT_EQ(acq, AgentStatus::kOk);
  EXPECT_EQ(acq->domain_generation, 2u);
  ASSERT_EQ(device_->install_ro(*acq, kNow), AgentStatus::kOk);
  EXPECT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
}

TEST_F(AgentExtended, StaleGenerationKeyCannotInstallNewRo) {
  setup_content("stale", 700, 0, /*domain_ro=*/true);
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  ASSERT_EQ(device_->join_domain(tx(), "ri.example", "domain:home", kNow), AgentStatus::kOk);

  // A second member acquires an RO *after* the upgrade.
  DrmAgent second("device-02", ca_->root_certificate(),
                  provider::plain_provider(), *rng_);
  second.provision(
      ca_->issue("device-02", second.public_key(), kValidity, *rng_));
  ASSERT_EQ(second.register_with(tx(), kNow), AgentStatus::kOk);
  ri_->upgrade_domain("domain:home");
  ASSERT_EQ(second.join_domain(tx(), "ri.example", "domain:home", kNow),
            AgentStatus::kOk);
  auto acq = second.acquire_ro(tx(), "ri.example", "ro:stale", kNow);
  ASSERT_EQ(acq, AgentStatus::kOk);

  // device-01 still holds the generation-1 key: installation must be
  // refused with a re-join hint, not a garbage unwrap.
  EXPECT_EQ(device_->install_ro(*acq, kNow), AgentStatus::kNoDomainKey);
  ASSERT_EQ(device_->join_domain(tx(), "ri.example", "domain:home", kNow),
            AgentStatus::kOk);
  EXPECT_EQ(device_->install_ro(*acq, kNow), AgentStatus::kOk);
}

// ---------------------------------------------------------------------------
// Relayed ROAP (Unconnected Devices) and the wire dispatcher
// ---------------------------------------------------------------------------

TEST_F(AgentExtended, RelayedRoapThroughSessionHalves) {
  dcf::Dcf dcf = setup_content("relay", 900);

  // The proxy's side of the exchange: opaque serialized documents in and
  // out of the RI's raw wire entry point.
  auto relay = [&](const roap::Envelope& req) {
    return roap::Envelope::from_wire(ri_->handle_wire(req.wire(), kNow));
  };

  // Registration, every pass as serialized XML.
  agent::RegistrationSession reg(*device_, kNow);
  auto hello = reg.hello();
  ASSERT_EQ(hello, AgentStatus::kOk);
  auto reg_req = reg.request(relay(*hello));
  ASSERT_EQ(reg_req, AgentStatus::kOk);
  ASSERT_EQ(reg.conclude(relay(*reg_req)), AgentStatus::kOk);
  EXPECT_EQ(reg.state(), agent::RegistrationSession::State::kComplete);
  EXPECT_TRUE(device_->has_ri_context("ri.example"));

  // Acquisition over the wire.
  agent::AcquisitionSession acq_session(*device_, "ri.example", "ro:relay",
                                        kNow);
  auto ro_req = acq_session.request();
  ASSERT_EQ(ro_req, AgentStatus::kOk);
  auto acq = acq_session.conclude(relay(*ro_req));
  ASSERT_EQ(acq, AgentStatus::kOk);
  ASSERT_EQ(device_->install_ro(*acq, kNow), AgentStatus::kOk);
  EXPECT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
}

TEST_F(AgentExtended, SessionsEnforceOrdering) {
  setup_content("order", 100);
  // Concluding without a request in flight is a state-machine misuse.
  {
    agent::RegistrationSession reg(*device_, kNow);
    EXPECT_THROW(
        (void)reg.conclude(roap::Envelope::wrap(roap::RegistrationResponse{})),
        Error);
    EXPECT_THROW((void)reg.request(roap::RiHello{}), Error);
  }
  // An acquisition/domain session without an RI context fails closed.
  {
    agent::AcquisitionSession acq(*device_, "ri.example", "ro:order", kNow);
    EXPECT_EQ(acq.request(), AgentStatus::kNoRiContext);
    EXPECT_EQ(acq.state(), agent::AcquisitionSession::State::kFailed);
  }
  {
    agent::DomainSession join(*device_, agent::DomainSession::Kind::kJoin,
                              "ri.example", "d", kNow);
    EXPECT_EQ(join.request(), AgentStatus::kNoRiContext);
  }
  // A response of the wrong type is an expected (non-throwing) failure.
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  agent::AcquisitionSession acq(*device_, "ri.example", "ro:order", kNow);
  ASSERT_EQ(acq.request(), AgentStatus::kOk);
  EXPECT_EQ(acq.conclude(roap::Envelope::wrap(roap::JoinDomainResponse{})),
            AgentStatus::kUnexpectedMessage);
  // A wrong-type delivery is retriable (a stale or reordered packet): the
  // session stays re-drivable instead of parking kFailed, so a fresh
  // delivery can still conclude it — here with the real response.
  EXPECT_EQ(acq.state(), agent::AcquisitionSession::State::kAwaitResponse);
}

TEST_F(AgentExtended, AbandonedSessionLeavesNoPendingState) {
  setup_content("abandon", 100);
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);

  // Build a request, capture the RI's (valid) response... then abandon
  // the session. The response must not be usable by any later session:
  // the nonce died with its owner.
  roap::Envelope orphan_response;
  {
    agent::AcquisitionSession dying(*device_, "ri.example", "ro:abandon",
                                    kNow);
    auto req = dying.request();
    ASSERT_EQ(req, AgentStatus::kOk);
    orphan_response = tx().request(*req);
  }
  agent::AcquisitionSession fresh(*device_, "ri.example", "ro:abandon", kNow);
  ASSERT_EQ(fresh.request(), AgentStatus::kOk);
  EXPECT_EQ(fresh.conclude(orphan_response), AgentStatus::kNonceMismatch);
}

TEST_F(AgentExtended, ReplayedRoResponseRejected) {
  dcf::Dcf dcf = setup_content("replay", 300);
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  agent::AcquisitionSession first(*device_, "ri.example", "ro:replay", kNow);
  auto req = first.request();
  ASSERT_EQ(req, AgentStatus::kOk);
  roap::Envelope resp = tx().request(*req);
  ASSERT_EQ(first.conclude(resp), AgentStatus::kOk);
  // Replaying the same (valid) response into a completed session throws
  // (state misuse)...
  EXPECT_THROW((void)first.conclude(resp), Error);
  // ...and it cannot satisfy a *different* session either: fresh nonce.
  agent::AcquisitionSession second(*device_, "ri.example", "ro:replay", kNow);
  ASSERT_EQ(second.request(), AgentStatus::kOk);
  EXPECT_EQ(second.conclude(resp), AgentStatus::kNonceMismatch);
}

TEST_F(AgentExtended, WireDispatcherRejectsUnknownMessages) {
  setup_content("nodisp", 100);
  EXPECT_THROW(ri_->handle_wire("<roap:unknownMessage/>", kNow), Error);
  EXPECT_THROW(ri_->handle_wire("not xml", kNow), Error);
  // Response documents and triggers are not servable requests.
  EXPECT_THROW(
      ri_->handle(roap::Envelope::wrap(roap::RoResponse{}), kNow), Error);
  roap::Envelope trigger = roap::Envelope::wrap(ri_->make_trigger("ro:nodisp"));
  EXPECT_THROW(ri_->handle(trigger, kNow), Error);
}

TEST_F(AgentExtended, PendingRiSessionsExpireAndSupersede) {
  setup_content("gc", 100);
  EXPECT_EQ(ri_->pending_session_count(), 0u);

  // Two abandoned hellos from the same device: the second supersedes the
  // first, so only one pending session remains.
  for (int i = 0; i < 2; ++i) {
    agent::RegistrationSession reg(*device_, kNow);
    auto hello = reg.hello();
    ASSERT_EQ(hello, AgentStatus::kOk);
    (void)tx().request(*hello);  // RIHello discarded: handshake abandoned
  }
  EXPECT_EQ(ri_->pending_session_count(), 1u);

  // A different device's pending handshake coexists...
  DrmAgent second("device-02", ca_->root_certificate(),
                  provider::plain_provider(), *rng_);
  second.provision(
      ca_->issue("device-02", second.public_key(), kValidity, *rng_));
  agent::RegistrationSession reg2(second, kNow);
  auto hello2 = reg2.hello();
  ASSERT_EQ(hello2, AgentStatus::kOk);
  (void)tx().request(*hello2);
  EXPECT_EQ(ri_->pending_session_count(), 2u);

  // ...until the TTL garbage-collects both abandoned handshakes.
  tx().set_now(kNow + ri::kPendingSessionTtl + 1);
  ASSERT_EQ(device_->register_with(tx(), kNow + ri::kPendingSessionTtl + 1),
            AgentStatus::kOk);
  EXPECT_EQ(ri_->pending_session_count(), 0u);
}

TEST_F(AgentExtended, StaleRiSessionCannotCompleteRegistration) {
  setup_content("stalegc", 100);
  // Start a handshake, then let it sit past the RI's TTL before sending
  // the RegistrationRequest: the RI must not complete it (one-shot, fresh
  // nonces) — but the answer is the typed restart-from-DeviceHello signal
  // (kSessionExpired), NOT a kAbort refusal: a device whose retry raced
  // the TTL did nothing wrong and must know to restart cleanly instead of
  // treating the RI as hostile.
  agent::RegistrationSession reg(*device_, kNow);
  auto hello = reg.hello();
  ASSERT_EQ(hello, AgentStatus::kOk);
  roap::Envelope ri_hello = tx().request(*hello);
  auto req = reg.request(ri_hello);
  ASSERT_EQ(req, AgentStatus::kOk);

  tx().set_now(kNow + ri::kPendingSessionTtl + 60);
  roap::Envelope resp = tx().request(*req);
  EXPECT_EQ(reg.conclude(resp), AgentStatus::kSessionExpired);
  EXPECT_EQ(reg.state(), agent::RegistrationSession::State::kFailed);
  EXPECT_FALSE(device_->has_ri_context("ri.example"));

  // The policy driver turns that signal into an automatic restart with
  // fresh nonces — the whole handshake succeeds in one run() call.
  agent::RegistrationSession retry(*device_,
                                   kNow + ri::kPendingSessionTtl + 60);
  roap::RetryPolicy policy;
  DeterministicRng pacing(0xFEED);
  EXPECT_EQ(retry.run(tx(), policy, pacing), AgentStatus::kOk);
  EXPECT_TRUE(device_->has_ri_context("ri.example"));
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

TEST_F(AgentExtended, StateSurvivesReboot) {
  dcf::Dcf dcf = setup_content("persist", 1200, /*count_limit=*/3);
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  auto acq = device_->acquire_ro(tx(), "ri.example", "ro:persist", kNow);
  ASSERT_EQ(acq, AgentStatus::kOk);
  ASSERT_EQ(device_->install_ro(*acq, kNow), AgentStatus::kOk);
  ASSERT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);  // burn one play

  Bytes image = device_->export_state();

  // "Reboot": a fresh agent object restores the secure-storage image.
  DrmAgent rebooted("blank", ca_->root_certificate(),
                    provider::plain_provider(), *rng_, 512);
  rebooted.import_state(image);

  EXPECT_EQ(rebooted.device_id(), "device-01");
  EXPECT_TRUE(rebooted.is_provisioned());
  EXPECT_TRUE(rebooted.has_ri_context("ri.example"));
  EXPECT_EQ(rebooted.installed_count(), 1u);
  // Consumption state persisted: 2 of 3 plays left.
  EXPECT_EQ(*rebooted.remaining_count("ro:persist",
                                      rel::PermissionType::kPlay),
            2u);

  // The restored agent can keep consuming with the restored K_DEV...
  EXPECT_EQ(rebooted.consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
  EXPECT_EQ(rebooted.consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
  EXPECT_EQ(rebooted.consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kPermissionDenied);

  // ...and can still run new ROAP exchanges with its restored RSA key.
  dcf::Dcf more = setup_content("persist2", 600);
  auto acq2 = rebooted.acquire_ro(tx(), "ri.example", "ro:persist2", kNow);
  ASSERT_EQ(acq2, AgentStatus::kOk);
  ASSERT_EQ(rebooted.install_ro(*acq2, kNow), AgentStatus::kOk);
  EXPECT_EQ(rebooted.consume(more, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
}

TEST_F(AgentExtended, PersistenceCoversDomains) {
  dcf::Dcf dcf = setup_content("pdom", 800, 0, /*domain_ro=*/true);
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  ASSERT_EQ(device_->join_domain(tx(), "ri.example", "domain:home", kNow), AgentStatus::kOk);
  auto acq = device_->acquire_ro(tx(), "ri.example", "ro:pdom", kNow);
  ASSERT_EQ(acq, AgentStatus::kOk);
  ASSERT_EQ(device_->install_ro(*acq, kNow), AgentStatus::kOk);

  DrmAgent rebooted("blank", ca_->root_certificate(),
                    provider::plain_provider(), *rng_, 512);
  rebooted.import_state(device_->export_state());
  EXPECT_TRUE(rebooted.has_domain_key("domain:home"));
  EXPECT_EQ(*rebooted.domain_generation("domain:home"), 1u);
  EXPECT_EQ(rebooted.consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
}

TEST_F(AgentExtended, ImportRejectsGarbage) {
  DrmAgent blank("blank", ca_->root_certificate(),
                 provider::plain_provider(), *rng_, 512);
  EXPECT_THROW(blank.import_state(to_bytes("not xml at all")), Error);
  EXPECT_THROW(blank.import_state(to_bytes("<wrong-root/>")), Error);
}

TEST_F(AgentExtended, ExportImportRoundTripIsStable) {
  setup_content("stable", 300);
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  auto acq = device_->acquire_ro(tx(), "ri.example", "ro:stable", kNow);
  ASSERT_EQ(acq, AgentStatus::kOk);
  ASSERT_EQ(device_->install_ro(*acq, kNow), AgentStatus::kOk);

  Bytes image1 = device_->export_state();
  DrmAgent rebooted("blank", ca_->root_certificate(),
                    provider::plain_provider(), *rng_, 512);
  rebooted.import_state(image1);
  Bytes image2 = rebooted.export_state();
  EXPECT_EQ(image1, image2);
}

}  // namespace
}  // namespace omadrm
