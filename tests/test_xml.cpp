// Tests for the XML DOM parser and serializer.
#include <gtest/gtest.h>

#include "common/error.h"
#include "xml/xml.h"

namespace omadrm::xml {
namespace {

using omadrm::Error;

TEST(XmlBuild, AttributesAndChildren) {
  Element root("rights");
  root.set_attr("id", "ro-1");
  root.set_attr("version", "2.0");
  root.add_text_child("asset", "cid:song");
  EXPECT_EQ(*root.attr("id"), "ro-1");
  EXPECT_EQ(root.require_attr("version"), "2.0");
  EXPECT_EQ(root.attr("missing"), nullptr);
  EXPECT_THROW(root.require_attr("missing"), Error);
  EXPECT_EQ(root.child_text("asset"), "cid:song");
  EXPECT_THROW(root.require_child("nope"), Error);
}

TEST(XmlBuild, SetAttrOverwrites) {
  Element e("x");
  e.set_attr("k", "1");
  e.set_attr("k", "2");
  EXPECT_EQ(*e.attr("k"), "2");
  EXPECT_EQ(e.attrs().size(), 1u);
}

TEST(XmlSerialize, SelfClosingAndNested) {
  Element root("a");
  root.add_child(Element("b"));
  Element c("c");
  c.set_text("hi");
  root.add_child(std::move(c));
  EXPECT_EQ(root.serialize(), "<a><b/><c>hi</c></a>");
}

TEST(XmlSerialize, EscapesSpecials) {
  Element e("t");
  e.set_text("a<b&c>d");
  e.set_attr("q", "say \"hi\" & 'bye'");
  std::string s = e.serialize();
  EXPECT_NE(s.find("a&lt;b&amp;c&gt;d"), std::string::npos);
  EXPECT_NE(s.find("&quot;hi&quot;"), std::string::npos);
  Element back = parse(s);
  EXPECT_EQ(back.text(), "a<b&c>d");
  EXPECT_EQ(*back.attr("q"), "say \"hi\" & 'bye'");
}

TEST(XmlParse, BasicDocument) {
  Element e = parse("<root a=\"1\" b='two'><kid>text</kid><kid2/></root>");
  EXPECT_EQ(e.name(), "root");
  EXPECT_EQ(*e.attr("a"), "1");
  EXPECT_EQ(*e.attr("b"), "two");
  EXPECT_EQ(e.children().size(), 2u);
  EXPECT_EQ(e.child_text("kid"), "text");
}

TEST(XmlParse, DeclarationCommentsAndWhitespace) {
  Element e = parse(
      "<?xml version=\"1.0\"?>\n"
      "<!-- top comment -->\n"
      "<doc>\n  <!-- inner -->\n  <x>1</x>\n</doc>\n");
  EXPECT_EQ(e.name(), "doc");
  EXPECT_EQ(e.children().size(), 1u);
  EXPECT_EQ(e.text(), "");  // formatting whitespace dropped
}

TEST(XmlParse, Entities) {
  Element e = parse("<t>&lt;tag&gt; &amp; &quot;x&quot; &apos;y&apos;</t>");
  EXPECT_EQ(e.text(), "<tag> & \"x\" 'y'");
}

TEST(XmlParse, NumericCharacterReferences) {
  Element e = parse("<t>&#65;&#x42;&#xe9;</t>");
  EXPECT_EQ(e.text(), "AB\xc3\xa9");  // é in UTF-8
}

TEST(XmlParse, MixedContentKeepsText) {
  Element e = parse("<t>hello <b>bold</b> world</t>");
  EXPECT_EQ(e.children().size(), 1u);
  EXPECT_EQ(e.text(), "hello  world");
}

TEST(XmlParse, NamespacePrefixedNames) {
  Element e = parse("<o-ex:rights o-ex:id=\"r1\"><o-dd:play/></o-ex:rights>");
  EXPECT_EQ(e.name(), "o-ex:rights");
  EXPECT_EQ(*e.attr("o-ex:id"), "r1");
  EXPECT_EQ(e.children()[0].name(), "o-dd:play");
}

TEST(XmlParse, RejectsMalformed) {
  EXPECT_THROW(parse(""), Error);
  EXPECT_THROW(parse("<a>"), Error);
  EXPECT_THROW(parse("<a></b>"), Error);
  EXPECT_THROW(parse("<a x=1/>"), Error);          // unquoted attribute
  EXPECT_THROW(parse("<a x=\"1\" x=\"2\"/>"), Error);  // duplicate attr
  EXPECT_THROW(parse("<a>&bogus;</a>"), Error);
  EXPECT_THROW(parse("<a/><b/>"), Error);          // two roots
  EXPECT_THROW(parse("<a><![CDATA[x]]></a>"), Error);
  EXPECT_THROW(parse("text only"), Error);
  EXPECT_THROW(parse("<1bad/>"), Error);
}

TEST(XmlRoundTrip, StructurePreserved) {
  Element root("o-ex:rights");
  root.set_attr("o-ex:id", "ro42");
  Element& agreement = root.add_child(Element("agreement"));
  agreement.add_text_child("context", "cid:a&b");
  Element& perm = agreement.add_child(Element("permission"));
  perm.add_child(Element("play"));

  Element back = parse(root.serialize());
  EXPECT_EQ(back, root);
  // Pretty-printing must round-trip to the same structure too.
  EXPECT_EQ(parse(root.serialize(true)), root);
}

TEST(XmlRoundTrip, DeepNesting) {
  Element root("l0");
  Element* cur = &root;
  for (int i = 1; i < 40; ++i) {
    cur = &cur->add_child(Element("l" + std::to_string(i)));
  }
  cur->set_text("deep");
  Element back = parse(root.serialize());
  EXPECT_EQ(back, root);
}

TEST(XmlChildren, NamedLookup) {
  Element e = parse("<r><x>1</x><y>2</y><x>3</x></r>");
  auto xs = e.children_named("x");
  ASSERT_EQ(xs.size(), 2u);
  EXPECT_EQ(xs[0]->text(), "1");
  EXPECT_EQ(xs[1]->text(), "3");
}

}  // namespace
}  // namespace omadrm::xml
