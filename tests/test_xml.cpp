// Tests for the XML DOM parser and serializer.
#include <gtest/gtest.h>

#include "common/error.h"
#include "xml/xml.h"

namespace omadrm::xml {
namespace {

using omadrm::Error;

TEST(XmlBuild, AttributesAndChildren) {
  Element root("rights");
  root.set_attr("id", "ro-1");
  root.set_attr("version", "2.0");
  root.add_text_child("asset", "cid:song");
  EXPECT_EQ(*root.attr("id"), "ro-1");
  EXPECT_EQ(root.require_attr("version"), "2.0");
  EXPECT_EQ(root.attr("missing"), nullptr);
  EXPECT_THROW(root.require_attr("missing"), Error);
  EXPECT_EQ(root.child_text("asset"), "cid:song");
  EXPECT_THROW(root.require_child("nope"), Error);
}

TEST(XmlBuild, SetAttrOverwrites) {
  Element e("x");
  e.set_attr("k", "1");
  e.set_attr("k", "2");
  EXPECT_EQ(*e.attr("k"), "2");
  EXPECT_EQ(e.attrs().size(), 1u);
}

TEST(XmlSerialize, SelfClosingAndNested) {
  Element root("a");
  root.add_child(Element("b"));
  Element c("c");
  c.set_text("hi");
  root.add_child(std::move(c));
  EXPECT_EQ(root.serialize(), "<a><b/><c>hi</c></a>");
}

TEST(XmlSerialize, EscapesSpecials) {
  Element e("t");
  e.set_text("a<b&c>d");
  e.set_attr("q", "say \"hi\" & 'bye'");
  std::string s = e.serialize();
  EXPECT_NE(s.find("a&lt;b&amp;c&gt;d"), std::string::npos);
  EXPECT_NE(s.find("&quot;hi&quot;"), std::string::npos);
  Element back = parse(s);
  EXPECT_EQ(back.text(), "a<b&c>d");
  EXPECT_EQ(*back.attr("q"), "say \"hi\" & 'bye'");
}

TEST(XmlParse, BasicDocument) {
  Element e = parse("<root a=\"1\" b='two'><kid>text</kid><kid2/></root>");
  EXPECT_EQ(e.name(), "root");
  EXPECT_EQ(*e.attr("a"), "1");
  EXPECT_EQ(*e.attr("b"), "two");
  EXPECT_EQ(e.children().size(), 2u);
  EXPECT_EQ(e.child_text("kid"), "text");
}

TEST(XmlParse, DeclarationCommentsAndWhitespace) {
  Element e = parse(
      "<?xml version=\"1.0\"?>\n"
      "<!-- top comment -->\n"
      "<doc>\n  <!-- inner -->\n  <x>1</x>\n</doc>\n");
  EXPECT_EQ(e.name(), "doc");
  EXPECT_EQ(e.children().size(), 1u);
  EXPECT_EQ(e.text(), "");  // formatting whitespace dropped
}

TEST(XmlParse, Entities) {
  Element e = parse("<t>&lt;tag&gt; &amp; &quot;x&quot; &apos;y&apos;</t>");
  EXPECT_EQ(e.text(), "<tag> & \"x\" 'y'");
}

TEST(XmlParse, NumericCharacterReferences) {
  Element e = parse("<t>&#65;&#x42;&#xe9;</t>");
  EXPECT_EQ(e.text(), "AB\xc3\xa9");  // é in UTF-8
}

TEST(XmlParse, MixedContentKeepsText) {
  Element e = parse("<t>hello <b>bold</b> world</t>");
  EXPECT_EQ(e.children().size(), 1u);
  EXPECT_EQ(e.text(), "hello  world");
}

TEST(XmlParse, NamespacePrefixedNames) {
  Element e = parse("<o-ex:rights o-ex:id=\"r1\"><o-dd:play/></o-ex:rights>");
  EXPECT_EQ(e.name(), "o-ex:rights");
  EXPECT_EQ(*e.attr("o-ex:id"), "r1");
  EXPECT_EQ(e.children()[0].name(), "o-dd:play");
}

TEST(XmlParse, RejectsMalformed) {
  EXPECT_THROW(parse(""), Error);
  EXPECT_THROW(parse("<a>"), Error);
  EXPECT_THROW(parse("<a></b>"), Error);
  EXPECT_THROW(parse("<a x=1/>"), Error);          // unquoted attribute
  EXPECT_THROW(parse("<a x=\"1\" x=\"2\"/>"), Error);  // duplicate attr
  EXPECT_THROW(parse("<a>&bogus;</a>"), Error);
  EXPECT_THROW(parse("<a/><b/>"), Error);          // two roots
  EXPECT_THROW(parse("<a><![CDATA[x]]></a>"), Error);
  EXPECT_THROW(parse("text only"), Error);
  EXPECT_THROW(parse("<1bad/>"), Error);
}

TEST(XmlRoundTrip, StructurePreserved) {
  Element root("o-ex:rights");
  root.set_attr("o-ex:id", "ro42");
  Element& agreement = root.add_child(Element("agreement"));
  agreement.add_text_child("context", "cid:a&b");
  Element& perm = agreement.add_child(Element("permission"));
  perm.add_child(Element("play"));

  Element back = parse(root.serialize());
  EXPECT_EQ(back, root);
  // Pretty-printing must round-trip to the same structure too.
  EXPECT_EQ(parse(root.serialize(true)), root);
}

TEST(XmlRoundTrip, DeepNesting) {
  Element root("l0");
  Element* cur = &root;
  for (int i = 1; i < 40; ++i) {
    cur = &cur->add_child(Element("l" + std::to_string(i)));
  }
  cur->set_text("deep");
  Element back = parse(root.serialize());
  EXPECT_EQ(back, root);
}

TEST(XmlChildren, NamedLookup) {
  Element e = parse("<r><x>1</x><y>2</y><x>3</x></r>");
  auto xs = e.children_named("x");
  ASSERT_EQ(xs.size(), 2u);
  EXPECT_EQ(xs[0]->text(), "1");
  EXPECT_EQ(xs[1]->text(), "3");
}

// ---------------------------------------------------------------------------
// Zero-copy arena parser (Node DOM)
// ---------------------------------------------------------------------------

TEST(NodeParse, BasicDocumentAndLookup) {
  Arena arena;
  const std::string doc =
      "<root a=\"1\" b='two'><kid>text</kid><kid2/><kid>more</kid></root>";
  const Node& n = parse_in(arena, doc);
  EXPECT_EQ(n.name(), "root");
  ASSERT_NE(n.attr("a"), nullptr);
  EXPECT_EQ(*n.attr("a"), "1");
  EXPECT_EQ(n.require_attr("b"), "two");
  EXPECT_EQ(n.attr("missing"), nullptr);
  EXPECT_THROW(n.require_attr("missing"), Error);
  EXPECT_EQ(n.child_count(), 3u);
  EXPECT_EQ(n.child_text("kid"), "text");
  EXPECT_THROW(n.require_child("nope"), Error);
  std::size_t kids = 0;
  for (const Node* k : n.children_named("kid")) {
    EXPECT_TRUE(k->text() == "text" || k->text() == "more");
    ++kids;
  }
  EXPECT_EQ(kids, 2u);
}

TEST(NodeParse, ViewsAliasTheDocumentWhenEscapeFree) {
  Arena arena;
  const std::string doc = "<r name=\"plain\">payload</r>";
  const Node& n = parse_in(arena, doc);
  const char* begin = doc.data();
  const char* end = doc.data() + doc.size();
  // Zero-copy: names, attribute values, and text point into `doc`.
  EXPECT_TRUE(n.name().data() >= begin && n.name().data() < end);
  EXPECT_TRUE(n.attr("name")->data() >= begin && n.attr("name")->data() < end);
  EXPECT_TRUE(n.text().data() >= begin && n.text().data() < end);
}

TEST(NodeParse, EntityDecodingFallsBackToArena) {
  Arena arena;
  const std::string doc = "<r q='a&amp;b &#65;'>x &lt;&gt; y</r>";
  const Node& n = parse_in(arena, doc);
  EXPECT_EQ(*n.attr("q"), "a&b A");
  EXPECT_EQ(n.text(), "x <> y");
}

TEST(NodeParse, AdjacentTextRunsConcatenate) {
  Arena arena;
  const Node& n = parse_in(arena, "<t>a<b/>c<b/>d</t>");
  EXPECT_EQ(n.text(), "acd");
  // Comments split runs too.
  Arena arena2;
  const Node& m = parse_in(arena2, "<t>one<!-- x -->two</t>");
  EXPECT_EQ(m.text(), "onetwo");
}

TEST(NodeParse, AttributeQuoteVariants) {
  Arena arena;
  const Node& n =
      parse_in(arena, "<r a=\"d'quote\" b='s\"quote' c = 'spaced'/>");
  EXPECT_EQ(*n.attr("a"), "d'quote");
  EXPECT_EQ(*n.attr("b"), "s\"quote");
  EXPECT_EQ(*n.attr("c"), "spaced");
}

TEST(NodeParse, ArenaResetReusesStorage) {
  Arena arena;
  const std::string doc = "<r a='1'><x>one</x><y>two</y></r>";
  (void)parse_in(arena, doc);
  const std::size_t cap = arena.capacity();
  for (int i = 0; i < 64; ++i) {
    arena.reset();
    const Node& n = parse_in(arena, doc);
    EXPECT_EQ(n.child_text("x"), "one");
  }
  EXPECT_EQ(arena.capacity(), cap);  // steady state: no further growth
}

TEST(NodeParse, DeepNestingWithinLimit) {
  std::string doc;
  const int depth = 100;
  for (int i = 0; i < depth; ++i) doc += "<d>";
  doc += "x";
  for (int i = 0; i < depth; ++i) doc += "</d>";
  Arena arena;
  const Node* n = &parse_in(arena, doc);
  for (int i = 1; i < depth; ++i) n = n->first_child();
  EXPECT_EQ(n->text(), "x");
}

TEST(NodeParse, PathologicalNestingRejectedNotCrash) {
  std::string doc;
  for (int i = 0; i < 5000; ++i) doc += "<d>";
  Arena arena;
  EXPECT_THROW(parse_in(arena, doc), Error);
  // The Element entry point rides the same core and is equally safe.
  EXPECT_THROW(parse(doc), Error);
}

TEST(NodeParse, TruncationFuzzEveryOffset) {
  // A document exercising attributes, both quote styles, entities,
  // character references, comments, nesting, and self-closing tags.
  // Every strict prefix must be cleanly rejected — never accepted, never
  // a crash — because a truncated envelope is the most common corrupt
  // wire input.
  const std::string doc =
      "<?xml version=\"1.0\"?><!-- hdr --><roap:msg a=\"1&amp;2\" "
      "b='&#65;'><kid>t&lt;x</kid><!-- c --><leaf/></roap:msg>";
  Arena arena;
  (void)parse_in(arena, doc);  // the full document parses
  for (std::size_t len = 0; len < doc.size(); ++len) {
    arena.reset();
    EXPECT_THROW(parse_in(arena, doc.substr(0, len)), Error)
        << "prefix length " << len << " unexpectedly accepted";
  }
}

// ---------------------------------------------------------------------------
// Streaming writer
// ---------------------------------------------------------------------------

TEST(XmlWriter, BuildsCompactDocuments) {
  std::string out;
  Writer w(out);
  w.open("a");
  w.attr("k", "v");
  w.open("b");
  w.close();
  w.text_element("c", "hi");
  w.close();
  EXPECT_TRUE(w.finished());
  EXPECT_EQ(out, "<a k=\"v\"><b/><c>hi</c></a>");
}

TEST(XmlWriter, ReusesBufferCapacity) {
  std::string out;
  {
    Writer w(out);
    w.open("big");
    w.text(std::string(512, 'x'));
    w.close();
  }
  const std::size_t cap = out.capacity();
  Writer w2(out);  // clears content, keeps capacity
  w2.open("small");
  w2.close();
  EXPECT_EQ(out, "<small/>");
  EXPECT_EQ(out.capacity(), cap);
}

TEST(XmlWriter, MatchesElementSerialization) {
  Element root("o-ex:rights");
  root.set_attr("o-ex:id", "ro&1");
  Element& kid = root.add_child(Element("kid"));
  kid.set_text("a<b");
  root.add_child(Element("empty"));

  std::string streamed;
  Writer w(streamed);
  w.open("o-ex:rights");
  w.attr("o-ex:id", "ro&1");
  w.text_element("kid", "a<b");
  w.open("empty");
  w.close();
  w.close();
  EXPECT_EQ(streamed, root.serialize());
}

TEST(XmlWriter, MisuseThrows) {
  std::string out;
  Writer w(out);
  EXPECT_THROW(w.close(), Error);            // nothing open
  EXPECT_THROW(w.text("x"), Error);          // outside root
  w.open("a");
  w.text("body");
  EXPECT_THROW(w.attr("k", "v"), Error);     // tag already sealed
  w.close();
  EXPECT_THROW(w.open("second-root"), Error);
}

// ---------------------------------------------------------------------------
// Escaping: byte-exact round trips, including control characters in
// attribute values.
// ---------------------------------------------------------------------------

TEST(XmlEscape, ControlCharactersRoundTripByteExact) {
  Element e("t");
  e.set_text("line1\r\nline2");
  e.set_attr("q", "tab\there\r\nnext");
  const std::string wire = e.serialize();
  // \r in text and \r \n \t in attributes must travel as character
  // references, never as raw bytes a normalizing parser would mangle.
  EXPECT_EQ(wire.find('\r'), std::string::npos);
  EXPECT_NE(wire.find("&#13;"), std::string::npos);
  EXPECT_NE(wire.find("&#10;"), std::string::npos);
  EXPECT_NE(wire.find("&#9;"), std::string::npos);

  Element back = parse(wire);
  EXPECT_EQ(back.text(), "line1\r\nline2");
  EXPECT_EQ(*back.attr("q"), "tab\there\r\nnext");
  // Serialize → parse → serialize is a fixed point.
  EXPECT_EQ(back.serialize(), wire);
}

TEST(XmlEscape, ReserveIsExact) {
  std::string out;
  escape_text_into("a&b<c>d\re", out);
  EXPECT_EQ(out, "a&amp;b&lt;c&gt;d&#13;e");
  std::string attr;
  escape_attr_into("\"'\t\n\r", attr);
  EXPECT_EQ(attr, "&quot;&apos;&#9;&#10;&#13;");
}

}  // namespace
}  // namespace omadrm::xml
