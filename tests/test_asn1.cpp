// Tests for the DER encoder/decoder.
#include <gtest/gtest.h>

#include "asn1/der.h"
#include "asn1/oid.h"
#include "common/error.h"
#include "common/hex.h"

namespace omadrm::asn1 {
namespace {

using bigint::BigInt;
using omadrm::Error;

TEST(DerEncode, ShortAndLongLengths) {
  Encoder e;
  e.write_octet_string(Bytes(5, 0xaa));
  EXPECT_EQ(to_hex(e.bytes()).substr(0, 4), "0405");

  Encoder e2;
  e2.write_octet_string(Bytes(200, 0xbb));
  // 200 > 127 -> long form: 04 81 C8.
  EXPECT_EQ(to_hex(e2.bytes()).substr(0, 6), "0481c8");

  Encoder e3;
  e3.write_octet_string(Bytes(300, 0xcc));
  EXPECT_EQ(to_hex(e3.bytes()).substr(0, 8), "0482012c");
}

TEST(DerInteger, MinimalEncoding) {
  auto enc = [](std::int64_t v) {
    Encoder e;
    e.write_integer(v);
    return to_hex(e.bytes());
  };
  EXPECT_EQ(enc(0), "020100");
  EXPECT_EQ(enc(127), "02017f");
  EXPECT_EQ(enc(128), "02020080");  // needs the leading zero
  EXPECT_EQ(enc(256), "02020100");
  EXPECT_EQ(enc(-1), "0201ff");
  EXPECT_EQ(enc(-128), "020180");
}

TEST(DerInteger, RoundTripSmall) {
  for (std::int64_t v : {0ll, 1ll, 127ll, 128ll, 255ll, 256ll, 65535ll,
                         -1ll, -127ll, -128ll, -129ll, 1234567890123ll}) {
    Encoder e;
    e.write_integer(v);
    Decoder d(e.bytes());
    EXPECT_EQ(d.read_small_integer(), v) << v;
    EXPECT_TRUE(d.at_end());
  }
}

TEST(DerInteger, BignumRoundTrip) {
  BigInt v(std::string_view("0x00f1e2d3c4b5a6978812345678"));
  Encoder e;
  e.write_integer(v);
  Decoder d(e.bytes());
  EXPECT_EQ(d.read_integer(), v);
}

TEST(DerInteger, BignumHighBitGetsZeroPrefix) {
  BigInt v(std::string_view("0xff"));
  Encoder e;
  e.write_integer(v);
  EXPECT_EQ(to_hex(e.bytes()), "020200ff");
  Decoder d(e.bytes());
  EXPECT_EQ(d.read_integer(), v);
}

TEST(DerBoolean, CanonicalOnly) {
  Encoder e;
  e.write_boolean(true);
  e.write_boolean(false);
  Decoder d(e.bytes());
  EXPECT_TRUE(d.read_boolean());
  EXPECT_FALSE(d.read_boolean());
  // 0x01 as boolean content is non-canonical DER.
  Bytes bad = from_hex("010101");
  Decoder d2(bad);
  EXPECT_THROW(d2.read_boolean(), Error);
}

TEST(DerOid, KnownEncodings) {
  Encoder e;
  e.write_oid("1.2.840.113549.1.1.10");  // RSASSA-PSS
  EXPECT_EQ(to_hex(e.bytes()), "06092a864886f70d01010a");
  Decoder d(e.bytes());
  EXPECT_EQ(d.read_oid(), "1.2.840.113549.1.1.10");
}

TEST(DerOid, Sha1Oid) {
  Encoder e;
  e.write_oid(oid::kSha1);  // 1.3.14.3.2.26
  EXPECT_EQ(to_hex(e.bytes()), "06052b0e03021a");
  Decoder d(e.bytes());
  EXPECT_EQ(d.read_oid(), "1.3.14.3.2.26");
}

TEST(DerOid, RejectsMalformed) {
  Encoder e;
  EXPECT_THROW(e.write_oid(""), Error);
  EXPECT_THROW(e.write_oid("1"), Error);
  EXPECT_THROW(e.write_oid("1..2"), Error);
  EXPECT_THROW(e.write_oid("1.2."), Error);
  EXPECT_THROW(e.write_oid("3.1"), Error);
  EXPECT_THROW(e.write_oid("1.40"), Error);
  EXPECT_THROW(e.write_oid("a.b"), Error);
}

TEST(DerStrings, RoundTrip) {
  Encoder e;
  e.write_utf8_string("hello wörld");
  e.write_printable_string("Example CA");
  Decoder d(e.bytes());
  EXPECT_EQ(d.read_utf8_string(), "hello wörld");
  EXPECT_EQ(d.read_printable_string(), "Example CA");
}

TEST(DerBitOctetNull, RoundTrip) {
  Encoder e;
  e.write_bit_string(from_hex("deadbeef"));
  e.write_octet_string(from_hex("0102"));
  e.write_null();
  Decoder d(e.bytes());
  EXPECT_EQ(d.read_bit_string(), from_hex("deadbeef"));
  EXPECT_EQ(d.read_octet_string(), from_hex("0102"));
  EXPECT_NO_THROW(d.read_null());
  EXPECT_TRUE(d.at_end());
}

TEST(DerUtcTime, RoundTripKnownDates) {
  // 2004-08-27 12:00:00 UTC and other representative instants.
  for (std::uint64_t t : {1093608000ull, 0ull, 946684800ull, 1100000000ull,
                          1735689600ull}) {
    Encoder e;
    e.write_utc_time(t);
    Decoder d(e.bytes());
    EXPECT_EQ(d.read_utc_time(), t) << t;
  }
}

TEST(DerUtcTime, EncodesCalendarFields) {
  // 2000-01-01T00:00:00Z -> "000101000000Z".
  Encoder e;
  e.write_utc_time(946684800);
  Decoder d(e.bytes());
  ByteView content(e.bytes());
  // Skip tag+length (2 bytes).
  std::string text(content.begin() + 2, content.end());
  EXPECT_EQ(text, "000101000000Z");
  (void)d;
}

TEST(DerNesting, SequenceAndExplicit) {
  Encoder inner;
  inner.write_integer(std::int64_t{42});
  inner.write_utf8_string("x");
  Encoder outer;
  outer.write_sequence(inner.bytes());
  Encoder wrapped;
  wrapped.write_explicit(3, outer.bytes());

  Decoder d(wrapped.bytes());
  Decoder exp = d.read_explicit(3);
  Decoder seq = exp.read_sequence();
  EXPECT_EQ(seq.read_small_integer(), 42);
  EXPECT_EQ(seq.read_utf8_string(), "x");
  EXPECT_TRUE(seq.at_end());
}

TEST(DerDecode, RejectsTruncatedAndTrailing) {
  Encoder e;
  e.write_octet_string(Bytes(10, 1));
  Bytes good = e.take();

  Bytes truncated(good.begin(), good.end() - 1);
  Decoder d1(truncated);
  EXPECT_THROW(d1.read_octet_string(), Error);

  Bytes oversize = good;
  oversize[1] = 0x20;  // claims more content than present
  Decoder d2(oversize);
  EXPECT_THROW(d2.read_octet_string(), Error);
}

TEST(DerDecode, RejectsWrongTag) {
  Encoder e;
  e.write_null();
  Decoder d(e.bytes());
  EXPECT_THROW(d.read_octet_string(), Error);
}

TEST(DerDecode, RejectsNonMinimalLength) {
  // 0x04 0x81 0x05 ... : long form used for a length < 0x80.
  Bytes bad = from_hex("04810500000000000000");
  Decoder d(bad);
  EXPECT_THROW(d.read_octet_string(), Error);
}

TEST(DerDecode, RawTlvPreservesBytes) {
  Encoder inner;
  inner.write_integer(std::int64_t{7});
  Encoder e;
  e.write_sequence(inner.bytes());
  e.write_null();
  Decoder d(e.bytes());
  Bytes raw = d.read_raw_tlv();
  EXPECT_EQ(to_hex(raw), "3003020107");
  EXPECT_NO_THROW(d.read_null());
}

}  // namespace
}  // namespace omadrm::asn1
