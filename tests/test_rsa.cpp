// Tests for RSA primitives, RSASSA-PSS, and the OMA RSA-KEM key transport.
//
// Key generation for RSA-1024 is exercised once in a fixture shared across
// tests (deterministic seed), keeping the suite fast while still covering
// real-size keys.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/hex.h"
#include "common/random.h"
#include "rsa/kem.h"
#include "rsa/pss.h"
#include "rsa/rsa.h"

namespace omadrm::rsa {
namespace {

using omadrm::DeterministicRng;
using omadrm::Error;

class RsaFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DeterministicRng rng(0xD41);
    key_ = new PrivateKey(generate_key(1024, rng));
  }
  static void TearDownTestSuite() {
    delete key_;
    key_ = nullptr;
  }
  static const PrivateKey& key() { return *key_; }

 private:
  static PrivateKey* key_;
};

PrivateKey* RsaFixture::key_ = nullptr;

TEST_F(RsaFixture, GeneratedKeyShape) {
  EXPECT_EQ(key().n.bit_length(), 1024u);
  EXPECT_EQ(key().byte_length(), 128u);
  EXPECT_EQ(key().e.to_dec(), "65537");
  EXPECT_TRUE(key().has_crt);
  EXPECT_EQ(key().p * key().q, key().n);
  EXPECT_GT(key().p, key().q);
}

TEST_F(RsaFixture, EncryptDecryptRoundTrip) {
  DeterministicRng rng(1);
  for (int i = 0; i < 5; ++i) {
    BigInt m = BigInt::random_below(key().n, rng);
    BigInt c = rsaep(key().public_key(), m);
    EXPECT_EQ(rsadp(key(), c), m);
  }
}

TEST_F(RsaFixture, SignVerifyPrimitivesRoundTrip) {
  DeterministicRng rng(2);
  BigInt m = BigInt::random_below(key().n, rng);
  BigInt s = rsasp1(key(), m);
  EXPECT_EQ(rsavp1(key().public_key(), s), m);
}

TEST_F(RsaFixture, CrtMatchesPlainExponentiation) {
  DeterministicRng rng(3);
  BigInt c = BigInt::random_below(key().n, rng);
  PrivateKey plain = key();
  plain.has_crt = false;
  EXPECT_EQ(rsadp(key(), c), rsadp(plain, c));
}

TEST_F(RsaFixture, PrimitivesRejectOutOfRange) {
  EXPECT_THROW(rsaep(key().public_key(), key().n), Error);
  EXPECT_THROW(rsadp(key(), key().n + BigInt(1)), Error);
  EXPECT_THROW(rsaep(key().public_key(), BigInt(-1)), Error);
}

TEST(RsaSmallKeys, DifferentSizesWork) {
  for (std::size_t bits : {256u, 512u}) {
    DeterministicRng rng(bits);
    PrivateKey k = generate_key(bits, rng);
    EXPECT_EQ(k.n.bit_length(), bits);
    BigInt m(std::uint64_t{0x1234567});
    EXPECT_EQ(rsadp(k, rsaep(k.public_key(), m)), m);
  }
}

TEST(RsaKeyGen, RejectsBadSizes) {
  DeterministicRng rng(1);
  EXPECT_THROW(generate_key(32, rng), Error);
  EXPECT_THROW(generate_key(127, rng), Error);
}

TEST(I2osp, PadsAndRejects) {
  EXPECT_EQ(to_hex(i2osp(BigInt(0x1234), 4)), "00001234");
  EXPECT_EQ(to_hex(i2osp(BigInt{}, 2)), "0000");
  EXPECT_THROW(i2osp(BigInt(0x123456), 2), Error);
  EXPECT_THROW(i2osp(BigInt(-5), 4), Error);
  EXPECT_EQ(os2ip(from_hex("00001234")).to_hex(), "1234");
}

TEST(Mgf1, ExpandsDeterministically) {
  Bytes seed = to_bytes("seed");
  Bytes m1 = mgf1_sha1(seed, 48);
  Bytes m2 = mgf1_sha1(seed, 48);
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(m1.size(), 48u);
  // Prefix property mirrors the counter construction.
  EXPECT_EQ(mgf1_sha1(seed, 20),
            Bytes(m1.begin(), m1.begin() + 20));
  EXPECT_NE(mgf1_sha1(to_bytes("other"), 48), m1);
}

TEST_F(RsaFixture, PssSignVerify) {
  DeterministicRng rng(7);
  Bytes msg = to_bytes("ROAP RegistrationRequest payload");
  Bytes sig = pss_sign(key(), msg, rng);
  EXPECT_EQ(sig.size(), key().byte_length());
  EXPECT_TRUE(pss_verify(key().public_key(), msg, sig));
}

TEST_F(RsaFixture, PssRejectsTamperedMessage) {
  DeterministicRng rng(8);
  Bytes msg = to_bytes("original message");
  Bytes sig = pss_sign(key(), msg, rng);
  EXPECT_FALSE(pss_verify(key().public_key(), to_bytes("forged message"),
                          sig));
}

TEST_F(RsaFixture, PssRejectsTamperedSignature) {
  DeterministicRng rng(9);
  Bytes msg = to_bytes("message");
  Bytes sig = pss_sign(key(), msg, rng);
  for (std::size_t i = 0; i < sig.size(); i += 17) {
    Bytes bad = sig;
    bad[i] ^= 0x01;
    EXPECT_FALSE(pss_verify(key().public_key(), msg, bad)) << "byte " << i;
  }
  EXPECT_FALSE(pss_verify(key().public_key(), msg,
                          ByteView(sig).subspan(1)));
}

TEST_F(RsaFixture, PssSignaturesAreRandomizedButBothVerify) {
  DeterministicRng rng(10);
  Bytes msg = to_bytes("salted scheme");
  Bytes s1 = pss_sign(key(), msg, rng);
  Bytes s2 = pss_sign(key(), msg, rng);
  EXPECT_NE(s1, s2);  // fresh salt each time
  EXPECT_TRUE(pss_verify(key().public_key(), msg, s1));
  EXPECT_TRUE(pss_verify(key().public_key(), msg, s2));
}

TEST_F(RsaFixture, PssWrongKeyRejects) {
  DeterministicRng rng(11);
  PrivateKey other = generate_key(512, rng);
  Bytes msg = to_bytes("message");
  Bytes sig = pss_sign(key(), msg, rng);
  EXPECT_FALSE(pss_verify(other.public_key(), msg, sig));
}

TEST(EmsaPss, EncodeVerifyDirect) {
  DeterministicRng rng(12);
  Bytes msg = to_bytes("direct encoding test");
  Bytes em = emsa_pss_encode(msg, 1023, rng);
  EXPECT_EQ(em.size(), 128u);
  EXPECT_EQ(em.back(), 0xbc);
  EXPECT_TRUE(emsa_pss_verify(msg, em, 1023));
  EXPECT_FALSE(emsa_pss_verify(to_bytes("other"), em, 1023));
  Bytes bad = em;
  bad[50] ^= 1;
  EXPECT_FALSE(emsa_pss_verify(msg, bad, 1023));
}

TEST(EmsaPss, KeyTooSmallThrows) {
  DeterministicRng rng(13);
  EXPECT_THROW(emsa_pss_encode(to_bytes("m"), 128, rng), Error);
}

TEST_F(RsaFixture, KemEncapsulateDecapsulate) {
  DeterministicRng rng(14);
  KemEncapsulation enc = kem_encapsulate(key().public_key(), rng);
  EXPECT_EQ(enc.c1.size(), 128u);
  EXPECT_EQ(enc.kek.size(), kKekLen);
  EXPECT_EQ(kem_decapsulate(key(), enc.c1), enc.kek);
}

TEST_F(RsaFixture, KemWrapUnwrapKeys) {
  DeterministicRng rng(15);
  // K_MAC || K_REK : 32 bytes, as in the paper's Figure 3.
  Bytes key_material = rng.bytes(32);
  Bytes c = kem_wrap_keys(key().public_key(), key_material, rng);
  EXPECT_EQ(c.size(), 128u + 40u);  // C1 (1024 bit) + AES-WRAP(32B)
  auto back = kem_unwrap_keys(key(), c);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, key_material);
}

TEST_F(RsaFixture, KemWrongKeyFailsCleanly) {
  DeterministicRng rng(16);
  PrivateKey other = generate_key(1024, rng);
  Bytes c = kem_wrap_keys(key().public_key(), rng.bytes(32), rng);
  EXPECT_FALSE(kem_unwrap_keys(other, c).has_value());
}

TEST_F(RsaFixture, KemTamperedCFails) {
  DeterministicRng rng(17);
  Bytes c = kem_wrap_keys(key().public_key(), rng.bytes(32), rng);
  Bytes bad = c;
  bad[130] ^= 0x80;  // inside C2
  EXPECT_FALSE(kem_unwrap_keys(key(), bad).has_value());
  EXPECT_THROW(kem_unwrap_keys(key(), ByteView(c).subspan(0, 100)), Error);
}

TEST_F(RsaFixture, KemFreshSecretsPerEncapsulation) {
  DeterministicRng rng(18);
  KemEncapsulation a = kem_encapsulate(key().public_key(), rng);
  KemEncapsulation b = kem_encapsulate(key().public_key(), rng);
  EXPECT_NE(a.c1, b.c1);
  EXPECT_NE(a.kek, b.kek);
}

}  // namespace
}  // namespace omadrm::rsa
