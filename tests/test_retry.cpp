// Fault-tolerant ROAP: the retry policy, the ReliableTransport decorator,
// the policy-driven session runs, and the degraded modes both endpoints
// enter when their durable store refuses commits.
//
// Everything here runs on the VirtualRetryClock — retries are
// instantaneous and every schedule is a pure function of the seed.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "agent/drm_agent.h"
#include "agent/sessions.h"
#include "common/error.h"
#include "common/random.h"
#include "pki/authority.h"
#include "provider/provider.h"
#include "ri/rights_issuer.h"
#include "roap/envelope.h"
#include "roap/retry.h"
#include "roap/transport.h"
#include "store/memory_store.h"

namespace omadrm {
namespace {

using agent::AgentStatus;
using agent::DrmAgent;
using roap::FaultClass;
using roap::FaultyTransport;
using roap::ReliableTransport;
using roap::RetryPolicy;
using Fault = roap::FaultyTransport::Fault;

constexpr std::uint64_t kNow = 1100000000;
const pki::Validity kValidity{kNow - 86400, kNow + 365 * 86400};

// ---------------------------------------------------------------------------
// RetryPolicy: backoff + classification
// ---------------------------------------------------------------------------

TEST(RetryPolicy, BackoffDoublesAndCapsWithoutJitter) {
  RetryPolicy p;
  p.base_backoff_ms = 10;
  p.max_backoff_ms = 100;
  p.jitter = 0;
  DeterministicRng rng(1);
  EXPECT_EQ(p.backoff_ms(1, rng), 10u);
  EXPECT_EQ(p.backoff_ms(2, rng), 20u);
  EXPECT_EQ(p.backoff_ms(3, rng), 40u);
  EXPECT_EQ(p.backoff_ms(4, rng), 80u);
  EXPECT_EQ(p.backoff_ms(5, rng), 100u);   // capped
  EXPECT_EQ(p.backoff_ms(50, rng), 100u);  // stays capped, no overflow
}

TEST(RetryPolicy, JitterSpreadsWithinBoundsDeterministically) {
  RetryPolicy p;
  p.base_backoff_ms = 100;
  p.max_backoff_ms = 10000;
  p.jitter = 0.5;
  DeterministicRng a(0xB0FF);
  DeterministicRng b(0xB0FF);
  for (std::size_t attempt = 1; attempt <= 5; ++attempt) {
    const std::uint64_t base = p.backoff_ms(attempt, a);
    // Same seed, same schedule.
    EXPECT_EQ(p.backoff_ms(attempt, b), base);
  }
  // Bounds: [b*(1-j), b*(1+j)) around the un-jittered 100ms first step.
  DeterministicRng c(7);
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t ms = p.backoff_ms(1, c);
    EXPECT_GE(ms, 50u);
    EXPECT_LT(ms, 150u);
  }
}

TEST(RetryPolicy, ClassifiesTransientVsTerminal) {
  const StatusCode retriable[] = {
      StatusCode::kTransportFailure, StatusCode::kTimeout,
      StatusCode::kMalformedMessage, StatusCode::kUnexpectedMessage,
      StatusCode::kNonceMismatch,    StatusCode::kSignatureInvalid,
      StatusCode::kStoreFailure,     StatusCode::kServerBusy,
  };
  for (StatusCode c : retriable) {
    EXPECT_EQ(RetryPolicy::classify(c), FaultClass::kRetriable)
        << to_string(c);
  }
  const StatusCode terminal[] = {
      StatusCode::kRiAborted,          StatusCode::kNotRegistered,
      StatusCode::kUnknownRoId,        StatusCode::kAccessDenied,
      StatusCode::kCertificateRevoked, StatusCode::kNotProvisioned,
      StatusCode::kRetriesExhausted,   StatusCode::kSessionExpired,
      StatusCode::kStoreCorrupt,
  };
  for (StatusCode c : terminal) {
    EXPECT_EQ(RetryPolicy::classify(c), FaultClass::kTerminal)
        << to_string(c);
  }
}

// ---------------------------------------------------------------------------
// Protocol-level fixture
// ---------------------------------------------------------------------------

class RetryProtocol : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<DeterministicRng>(0x5E71);
    ca_ = std::make_unique<pki::CertificationAuthority>("CMLA Root", 1024,
                                                        kValidity, *rng_);
    ri_ = std::make_unique<ri::RightsIssuer>(
        "ri.example", "http://ri.example/roap", *ca_, kValidity,
        provider::plain_provider(), *rng_);
    device_ = std::make_unique<DrmAgent>("device-01", ca_->root_certificate(),
                                         provider::plain_provider(), *rng_);
    device_->provision(
        ca_->issue("device-01", device_->public_key(), kValidity, *rng_));
    loopback_ = std::make_unique<roap::InProcessTransport>(*ri_, kNow);
    faulty_ = std::make_unique<FaultyTransport>(*loopback_, *rng_);

    ri::LicenseOffer offer;
    offer.ro_id = "ro:retry";
    offer.content_id = "cid:retry@content.example";
    offer.dcf_hash = Bytes(20, 0x42);
    rel::Permission play;
    play.type = rel::PermissionType::kPlay;
    offer.permissions = {play};
    offer.kcek = rng_->bytes(16);
    ri_->add_offer(offer);
  }

  RetryPolicy quick_policy() {
    RetryPolicy p;
    p.base_backoff_ms = 1;
    p.max_backoff_ms = 4;
    p.jitter = 0;
    return p;
  }

  FaultyTransport& net() { return *faulty_; }

  std::unique_ptr<DeterministicRng> rng_;
  std::unique_ptr<pki::CertificationAuthority> ca_;
  std::unique_ptr<ri::RightsIssuer> ri_;
  std::unique_ptr<DrmAgent> device_;
  std::unique_ptr<roap::InProcessTransport> loopback_;
  std::unique_ptr<FaultyTransport> faulty_;
};

// ---------------------------------------------------------------------------
// ReliableTransport
// ---------------------------------------------------------------------------

TEST_F(RetryProtocol, ReliableTransportAbsorbsDroppedEnvelopes) {
  // Every pass of the handshake loses its first delivery; the decorator
  // resends and the session never notices.
  net().set_schedule({Fault::kDropRequest, Fault::kNone,   // pass 1+2
                      Fault::kDropRequest, Fault::kNone});  // pass 3+4
  ReliableTransport reliable(net(), quick_policy(), *rng_);
  EXPECT_EQ(device_->register_with(reliable, kNow), AgentStatus::kOk);
  EXPECT_TRUE(device_->has_ri_context("ri.example"));
  EXPECT_EQ(reliable.stats().requests, 2u);
  EXPECT_EQ(reliable.stats().attempts, 4u);
  EXPECT_EQ(reliable.stats().retries, 2u);
}

TEST_F(RetryProtocol, ReliableTransportExhaustionSurfacesAsRetriesExhausted) {
  net().set_drop_rate(1.0);  // the network is gone
  RetryPolicy p = quick_policy();
  p.max_attempts = 3;
  ReliableTransport reliable(net(), p, *rng_);
  Result<> out = device_->register_with(reliable, kNow);
  EXPECT_EQ(out, AgentStatus::kRetriesExhausted);
  EXPECT_NE(out.context().find("3 attempts"), std::string::npos)
      << out.describe();
  EXPECT_EQ(reliable.stats().exhausted, 1u);
  EXPECT_FALSE(device_->has_ri_context("ri.example"));
}

TEST_F(RetryProtocol, ReliableTransportDeadlineSurfacesAsTimeout) {
  net().set_drop_rate(1.0);
  RetryPolicy p;
  p.max_attempts = 100;
  p.deadline_ms = 50;
  p.base_backoff_ms = 30;  // two sleeps cross the 50ms deadline
  p.jitter = 0;
  ReliableTransport reliable(net(), p, *rng_);  // owns a virtual clock
  Result<> out = device_->register_with(reliable, kNow);
  EXPECT_EQ(out, AgentStatus::kTimeout);
  EXPECT_EQ(reliable.stats().timeouts, 1u);
}

TEST_F(RetryProtocol, ReliableTransportHandsDamagedBytesUpward) {
  // Corruption is delivered, not absorbed: judging content is the
  // session's job (it classifies and the session driver may re-drive).
  net().inject(Fault::kCorruptResponse);
  ReliableTransport reliable(net(), quick_policy(), *rng_);
  Result<> out = device_->register_with(reliable, kNow);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(reliable.stats().retries, 0u);
}

// A decorator that sheds the first `sheds` requests with Error(kBusy) —
// the overloaded-server refusal SocketTransport surfaces for a
// kBusyFrameType frame — then delegates.
struct BusyThenServe final : roap::Transport {
  roap::Transport& inner;
  std::size_t sheds;
  std::size_t shed_count = 0;
  explicit BusyThenServe(roap::Transport& t, std::size_t n)
      : inner(t), sheds(n) {}
  roap::Envelope request(const roap::Envelope& env) override {
    if (shed_count < sheds) {
      ++shed_count;
      throw Error(ErrorKind::kBusy, "busy: admission control shed");
    }
    return inner.request(env);
  }
};

TEST_F(RetryProtocol, BusySheddingIsAbsorbedWithBackoff) {
  // Every pass's first delivery is shed; the decorator backs off and
  // resends, and the session never notices the overload.
  BusyThenServe busy(*loopback_, 2);
  RetryPolicy p = quick_policy();
  roap::VirtualRetryClock clock;
  ReliableTransport reliable(busy, p, *rng_, &clock);
  EXPECT_EQ(device_->register_with(reliable, kNow), AgentStatus::kOk);
  EXPECT_TRUE(device_->has_ri_context("ri.example"));
  EXPECT_EQ(reliable.stats().busy, 2u);
  EXPECT_EQ(reliable.stats().retries, 2u);
  // The backoff between shed and resend really elapsed on the clock —
  // a shed fleet spreads out instead of hammering the server in place.
  EXPECT_GE(clock.now_ms(), 2u * p.base_backoff_ms);
}

TEST_F(RetryProtocol, PersistentOverloadExhaustsAsRetriesExhausted) {
  // A server that never stops shedding: the retry budget bounds the
  // pestering and the session surfaces the typed terminal code.
  BusyThenServe busy(*loopback_, std::size_t(-1));
  RetryPolicy p = quick_policy();
  p.max_attempts = 3;
  ReliableTransport reliable(busy, p, *rng_);
  Result<> out = device_->register_with(reliable, kNow);
  EXPECT_EQ(out, AgentStatus::kRetriesExhausted);
  EXPECT_EQ(reliable.stats().busy, 3u);
  EXPECT_EQ(reliable.stats().exhausted, 1u);
  EXPECT_EQ(busy.shed_count, 3u);  // exactly the budget, then we stopped
  EXPECT_FALSE(device_->has_ri_context("ri.example"));
}

// ---------------------------------------------------------------------------
// Policy-driven sessions: re-drive the same pass
// ---------------------------------------------------------------------------

TEST_F(RetryProtocol, LostResponseResendsSamePassAndHitsReplayCache) {
  // Pass 4's response is lost AFTER the RI consumed the session. The
  // driver resends the same RegistrationRequest; the RI's replay cache
  // answers it byte-for-byte instead of refusing the consumed session.
  net().set_schedule({Fault::kNone, Fault::kDropResponse, Fault::kNone});
  EXPECT_EQ(device_->register_with(net(), kNow, quick_policy()),
            AgentStatus::kOk);
  EXPECT_TRUE(device_->has_ri_context("ri.example"));
  EXPECT_EQ(ri_->counters().registrations, 1u);  // no double admission
  EXPECT_EQ(ri_->replay_cache_stats().hits, 1u);
  EXPECT_EQ(ri_->pending_session_count(), 0u);
}

TEST_F(RetryProtocol, CorruptedResponseRetriesAndSucceeds) {
  net().set_schedule({Fault::kCorruptResponse, Fault::kNone,
                      Fault::kCorruptResponse, Fault::kNone});
  EXPECT_EQ(device_->register_with(net(), kNow, quick_policy()),
            AgentStatus::kOk);
  EXPECT_TRUE(device_->has_ri_context("ri.example"));
  EXPECT_EQ(ri_->counters().registrations, 1u);
}

TEST_F(RetryProtocol, AcquisitionRetriesLostAndReplayedDeliveries) {
  ASSERT_EQ(device_->register_with(net(), kNow), AgentStatus::kOk);
  const std::uint64_t ros_before = ri_->counters().ros_issued;
  // Drop, then replay a stale response (nonce mismatch), then deliver.
  net().set_schedule(
      {Fault::kDropResponse, Fault::kReplayResponse, Fault::kNone});
  auto ro = device_->acquire_ro(net(), "ri.example", "ro:retry", kNow,
                                quick_policy());
  ASSERT_EQ(ro, AgentStatus::kOk);
  EXPECT_EQ(device_->install_ro(*ro, kNow), AgentStatus::kOk);
  // The drop consumed one fresh issue; the resend after the replayed
  // response was served from the RI's cache, not re-minted.
  EXPECT_EQ(ri_->counters().ros_issued, ros_before + 1);
}

TEST_F(RetryProtocol, TerminalRefusalIsNotRetried) {
  ASSERT_EQ(device_->register_with(net(), kNow), AgentStatus::kOk);
  const std::size_t before = net().stats().requests;
  auto ro = device_->acquire_ro(net(), "ri.example", "ro:no-such-id", kNow,
                                quick_policy());
  EXPECT_EQ(ro, AgentStatus::kUnknownRoId);
  // One request on the wire: an authoritative refusal ends the pass.
  EXPECT_EQ(net().stats().requests, before + 1);
}

TEST_F(RetryProtocol, ExpiredRiSessionRestartsFromDeviceHello) {
  // Let the RI's pending-session TTL fire between pass 2 and pass 3: the
  // RegistrationRequest meets kSessionExpired and the driver restarts the
  // whole handshake with fresh nonces — one run() call, no caller logic.
  struct TtlRace final : roap::Transport {
    roap::InProcessTransport& inner;
    int exchanges = 0;
    explicit TtlRace(roap::InProcessTransport& t) : inner(t) {}
    roap::Envelope request(const roap::Envelope& env) override {
      ++exchanges;
      if (exchanges == 2) {
        // The RegistrationRequest arrives after the RI garbage-collected
        // the pending session.
        inner.set_now(kNow + ri::kPendingSessionTtl + 1);
      }
      return inner.request(env);
    }
  } racy(*loopback_);

  agent::RegistrationSession reg(*device_, kNow + ri::kPendingSessionTtl + 1);
  RetryPolicy p = quick_policy();
  ASSERT_EQ(p.max_restarts, 1u);
  EXPECT_EQ(reg.run(racy, p, *rng_), AgentStatus::kOk);
  EXPECT_EQ(reg.state(), agent::RegistrationSession::State::kComplete);
  EXPECT_TRUE(device_->has_ri_context("ri.example"));
  EXPECT_EQ(ri_->counters().registrations, 1u);
  EXPECT_EQ(ri_->pending_session_count(), 0u);
  EXPECT_EQ(racy.exchanges, 4);  // 2 passes dead round + 2 passes restart
}

TEST_F(RetryProtocol, RestartBudgetBoundsSessionExpiredLoops) {
  // An RI that *always* reports kSessionExpired (restart storm) must not
  // loop forever: max_restarts bounds it and the code surfaces.
  struct AlwaysExpired final : roap::Transport {
    roap::InProcessTransport& inner;
    explicit AlwaysExpired(roap::InProcessTransport& t) : inner(t) {}
    roap::Envelope request(const roap::Envelope& env) override {
      if (env.type() == roap::MessageType::kRegistrationRequest) {
        roap::RegistrationResponse out;
        out.status = roap::Status::kSessionExpired;
        out.session_id =
            env.open<roap::RegistrationRequest>().session_id;
        out.ri_id = "ri.example";
        return roap::Envelope::wrap(out);
      }
      return inner.request(env);
    }
  } hostile(*loopback_);

  agent::RegistrationSession reg(*device_, kNow);
  RetryPolicy p = quick_policy();
  p.max_restarts = 2;
  Result<> out = reg.run(hostile, p, *rng_);
  EXPECT_EQ(out, AgentStatus::kSessionExpired);
  EXPECT_EQ(reg.state(), agent::RegistrationSession::State::kFailed);
}

// ---------------------------------------------------------------------------
// Degraded modes: a store that refuses commits
// ---------------------------------------------------------------------------

TEST_F(RetryProtocol, DegradedRiRefusesNewGrantsButServesStateless) {
  store::MemoryStore ri_store;
  ASSERT_TRUE(ri_->bind_store(ri_store).ok());
  ASSERT_EQ(device_->register_with(net(), kNow), AgentStatus::kOk);

  // Store down: a new handshake (needs a sess/ commit) is refused with
  // the typed retriable code, and nothing leaks into RAM or the store.
  ri_store.fail_next_commits(1);
  const std::size_t records = ri_store.record_count();
  EXPECT_EQ(device_->register_with(net(), kNow), AgentStatus::kStoreFailure);
  EXPECT_EQ(ri_->pending_session_count(), 0u);
  EXPECT_EQ(ri_store.record_count(), records);
  EXPECT_EQ(ri_->counters().degraded_refusals, 1u);

  // Stateless service is unaffected: RO issuing persists nothing.
  ri_store.fail_next_commits(1);
  auto ro = device_->acquire_ro(net(), "ri.example", "ro:retry", kNow);
  EXPECT_EQ(ro, AgentStatus::kOk);

  // Once the store heals, the refused handshake simply retries.
  ri_store.fail_next_commits(0);
  EXPECT_EQ(device_->register_with(net(), kNow), AgentStatus::kOk);
}

TEST_F(RetryProtocol, PolicyRunRidesOutTransientRiStoreFailure) {
  store::MemoryStore ri_store;
  ASSERT_TRUE(ri_->bind_store(ri_store).ok());
  ri_store.fail_next_commits(2);
  // kStoreFailure is retriable: the driver resends the hello until the
  // store recovers, within one run() call.
  EXPECT_EQ(device_->register_with(net(), kNow, quick_policy()),
            AgentStatus::kOk);
  EXPECT_EQ(ri_->counters().degraded_refusals, 2u);
  EXPECT_EQ(ri_->counters().registrations, 1u);
}

TEST_F(RetryProtocol, AgentStoreFailureLeavesSessionReDrivable) {
  store::MemoryStore dev_store;
  ASSERT_TRUE(device_->bind_store(dev_store).ok());

  // The agent's own commit of the RI context fails at pass 4: the session
  // surfaces kStoreFailure but stays re-drivable; the policy driver
  // resends the same request (served from the RI's replay cache — zero
  // re-verification server-side) and the healed commit completes it.
  dev_store.fail_next_commits(1);
  EXPECT_EQ(device_->register_with(net(), kNow, quick_policy()),
            AgentStatus::kOk);
  EXPECT_TRUE(device_->has_ri_context("ri.example"));
  EXPECT_EQ(ri_->counters().registrations, 1u);
  EXPECT_GE(ri_->replay_cache_stats().hits, 1u);
}

TEST_F(RetryProtocol, SingleShotRunKeepsHistoricalParkingSemantics) {
  // The plain run(transport) still parks kFailed on any failed pass —
  // resilience is opt-in via the policy overloads.
  net().inject(Fault::kCorruptResponse);
  agent::RegistrationSession reg(*device_, kNow);
  EXPECT_FALSE(reg.run(net()).ok());
  EXPECT_EQ(reg.state(), agent::RegistrationSession::State::kFailed);
}

}  // namespace
}  // namespace omadrm
