// The RI's idempotent replay cache: a device resending a request whose
// response was lost gets the remembered response back byte-for-byte —
// zero additional RSA operations, zero double-issued ROs, zero
// double-bumped counters. Plus the cache's bounds: TTL expiry, LRU
// eviction, digest pinning, and the disabled/passthrough mode.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "agent/drm_agent.h"
#include "agent/sessions.h"
#include "common/random.h"
#include "pki/authority.h"
#include "provider/provider.h"
#include "ri/rights_issuer.h"
#include "roap/envelope.h"
#include "roap/messages.h"
#include "roap/transport.h"

namespace omadrm {
namespace {

using agent::AgentStatus;
using agent::DrmAgent;

constexpr std::uint64_t kNow = 1100000000;
const pki::Validity kValidity{kNow - 86400, kNow + 365 * 86400};

/// Counts the RSA operations the RI performs — the proof that a replay
/// hit costs zero of them (the whole point of the cache on a server
/// fielding retry storms).
class CountingProvider final : public provider::PlainCryptoProvider {
 public:
  Bytes pss_sign(const rsa::PrivateKey& key, ByteView message,
                 Rng& rng) override {
    ++signs;
    return PlainCryptoProvider::pss_sign(key, message, rng);
  }
  bool pss_verify(const rsa::PublicKey& key, ByteView message,
                  ByteView signature) override {
    ++verifies;
    return PlainCryptoProvider::pss_verify(key, message, signature);
  }
  rsa::KemEncapsulation kem_encapsulate(const rsa::PublicKey& key,
                                        Rng& rng) override {
    ++encapsulations;
    return PlainCryptoProvider::kem_encapsulate(key, rng);
  }

  std::uint64_t signs = 0;
  std::uint64_t verifies = 0;
  std::uint64_t encapsulations = 0;
  std::uint64_t total() const { return signs + verifies + encapsulations; }
};

class ReplayCache : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<DeterministicRng>(0xCACE);
    ca_ = std::make_unique<pki::CertificationAuthority>("CMLA Root", 1024,
                                                        kValidity, *rng_);
    ri_ = std::make_unique<ri::RightsIssuer>("ri.example",
                                             "http://ri.example/roap", *ca_,
                                             kValidity, counting_, *rng_);
    device_ = std::make_unique<DrmAgent>("device-01", ca_->root_certificate(),
                                         provider::plain_provider(), *rng_);
    device_->provision(
        ca_->issue("device-01", device_->public_key(), kValidity, *rng_));
    loopback_ = std::make_unique<roap::InProcessTransport>(*ri_, kNow);

    ri::LicenseOffer offer;
    offer.ro_id = "ro:cache";
    offer.content_id = "cid:cache@content.example";
    offer.dcf_hash = Bytes(20, 0x42);
    rel::Permission play;
    play.type = rel::PermissionType::kPlay;
    offer.permissions = {play};
    offer.kcek = rng_->bytes(16);
    ri_->add_offer(offer);
  }

  /// A signed RoRequest envelope from a registered device.
  roap::Envelope make_ro_request() {
    agent::AcquisitionSession session(*device_, "ri.example", "ro:cache",
                                      kNow);
    auto req = session.request();
    EXPECT_TRUE(req.ok()) << req.describe();
    return *req;
  }

  CountingProvider counting_;
  std::unique_ptr<DeterministicRng> rng_;
  std::unique_ptr<pki::CertificationAuthority> ca_;
  std::unique_ptr<ri::RightsIssuer> ri_;
  std::unique_ptr<DrmAgent> device_;
  std::unique_ptr<roap::InProcessTransport> loopback_;
};

TEST_F(ReplayCache, DuplicateRoRequestServedByteForByteWithZeroRsaOps) {
  ASSERT_EQ(device_->register_with(*loopback_, kNow), AgentStatus::kOk);
  const roap::Envelope request = make_ro_request();

  const roap::Envelope first = loopback_->request(request);
  const std::uint64_t ros_after_first = ri_->counters().ros_issued;
  const std::uint64_t rsa_after_first = counting_.total();

  // The response was "lost"; the device resends the same bytes.
  const roap::Envelope second = loopback_->request(request);

  EXPECT_EQ(second.wire(), first.wire());  // byte-identical
  EXPECT_EQ(counting_.total(), rsa_after_first)
      << "a replay hit must cost zero RSA operations";
  EXPECT_EQ(ri_->counters().ros_issued, ros_after_first);  // no double issue
  EXPECT_EQ(ri_->replay_cache_stats().hits, 1u);
  // And the duplicate response is still a valid, installable RO.
  agent::AcquisitionSession session(*device_, "ri.example", "ro:cache", kNow);
  ASSERT_TRUE(session.request().ok());
  // (fresh session has a fresh nonce; verify the *original* session path
  // instead by installing via the normal acquire flow)
  auto acq = device_->acquire_ro(*loopback_, "ri.example", "ro:cache", kNow);
  ASSERT_EQ(acq, AgentStatus::kOk);
  EXPECT_EQ(device_->install_ro(*acq, kNow), AgentStatus::kOk);
}

TEST_F(ReplayCache, DuplicateRegistrationRequestDoesNotReRegister) {
  // Drive the handshake by hand so we hold the exact pass-3 bytes.
  agent::RegistrationSession reg(*device_, kNow);
  auto hello = reg.hello();
  ASSERT_TRUE(hello.ok());
  auto ri_hello = loopback_->request(*hello);
  auto rr = reg.request(ri_hello);
  ASSERT_TRUE(rr.ok()) << rr.describe();

  const roap::Envelope first = loopback_->request(*rr);
  ASSERT_TRUE(reg.conclude(first).ok());
  const std::uint64_t regs = ri_->counters().registrations;
  const std::uint64_t rsa = counting_.total();

  // Resend of the consumed pass: served from cache, not refused, and the
  // expensive verification pipeline (device chain, request signature,
  // response signing, OCSP) does not run again.
  const roap::Envelope second = loopback_->request(*rr);
  EXPECT_EQ(second.wire(), first.wire());
  EXPECT_EQ(ri_->counters().registrations, regs);
  EXPECT_EQ(counting_.total(), rsa);
  EXPECT_EQ(ri_->pending_session_count(), 0u);
}

TEST_F(ReplayCache, TtlExpiryForcesFreshProcessing) {
  ASSERT_EQ(device_->register_with(*loopback_, kNow), AgentStatus::kOk);
  ri_->set_replay_cache_ttl(10);
  const roap::Envelope request = make_ro_request();
  (void)loopback_->request(request);
  const std::uint64_t ros = ri_->counters().ros_issued;

  // Past the TTL the entry is dead: the duplicate is processed fresh
  // (for the stateless RO path that simply mints again).
  loopback_->set_now(kNow + 11);
  (void)loopback_->request(request);
  EXPECT_EQ(ri_->replay_cache_stats().expirations, 1u);
  EXPECT_EQ(ri_->replay_cache_stats().hits, 0u);
  EXPECT_EQ(ri_->counters().ros_issued, ros + 1);
}

TEST_F(ReplayCache, LruEvictionUnderChurnStaysBounded) {
  ASSERT_EQ(device_->register_with(*loopback_, kNow), AgentStatus::kOk);
  ri_->set_replay_cache_capacity(4);
  std::vector<roap::Envelope> requests;
  for (int i = 0; i < 12; ++i) {
    requests.push_back(make_ro_request());
    (void)loopback_->request(requests.back());
  }
  EXPECT_LE(ri_->replay_cache_size(), 4u);
  // 2 registration entries + 12 acquisition entries − 4 kept = 10 evicted.
  EXPECT_EQ(ri_->replay_cache_stats().evictions, 10u);

  // The newest entry is still hot; the oldest was evicted and is
  // processed fresh on resend.
  const std::uint64_t ros = ri_->counters().ros_issued;
  (void)loopback_->request(requests.back());
  EXPECT_EQ(ri_->replay_cache_stats().hits, 1u);
  EXPECT_EQ(ri_->counters().ros_issued, ros);
  (void)loopback_->request(requests.front());
  EXPECT_EQ(ri_->counters().ros_issued, ros + 1);

  // Shrinking the capacity evicts down immediately.
  ri_->set_replay_cache_capacity(1);
  EXPECT_LE(ri_->replay_cache_size(), 1u);
}

TEST_F(ReplayCache, DigestPinsEntryToExactRequestBytes) {
  ASSERT_EQ(device_->register_with(*loopback_, kNow), AgentStatus::kOk);
  const roap::Envelope request = make_ro_request();
  const roap::Envelope first = loopback_->request(request);

  // Forge a different request under the SAME replay key (same device,
  // same nonce — only the ro_id differs). The digest check must refuse
  // to serve the cached response for different bytes.
  roap::RoRequest forged = request.open<roap::RoRequest>();
  forged.ro_id = "ro:other";
  const roap::Envelope forged_env = roap::Envelope::wrap(forged);
  const roap::Envelope answer = loopback_->request(forged_env);

  EXPECT_EQ(ri_->replay_cache_stats().mismatches, 1u);
  EXPECT_NE(answer.wire(), first.wire());
  // The forgery fails its own signature check (the signature covers the
  // ro_id), so it earns a refusal — never the cached grant.
  EXPECT_NE(answer.open<roap::RoResponse>().status, roap::Status::kSuccess);
}

TEST_F(ReplayCache, DisabledCacheProcessesEveryRequestFresh) {
  ri_->set_replay_cache_enabled(false);
  ASSERT_EQ(device_->register_with(*loopback_, kNow), AgentStatus::kOk);
  const roap::Envelope request = make_ro_request();
  (void)loopback_->request(request);
  const std::uint64_t ros = ri_->counters().ros_issued;
  (void)loopback_->request(request);
  EXPECT_EQ(ri_->counters().ros_issued, ros + 1);  // minted twice
  EXPECT_EQ(ri_->replay_cache_stats().hits, 0u);
  EXPECT_EQ(ri_->replay_cache_stats().insertions, 0u);
  EXPECT_EQ(ri_->replay_cache_size(), 0u);
}

TEST_F(ReplayCache, StatsAccountForTheWholeLifecycle) {
  ASSERT_EQ(device_->register_with(*loopback_, kNow), AgentStatus::kOk);
  const roap::Envelope request = make_ro_request();
  (void)loopback_->request(request);   // miss + insertion
  (void)loopback_->request(request);   // hit
  (void)loopback_->request(request);   // hit
  const ri::ReplayCacheStats& st = ri_->replay_cache_stats();
  EXPECT_EQ(st.hits, 2u);
  EXPECT_GE(st.insertions, 1u);
  EXPECT_GE(st.misses, 1u);
}

}  // namespace
}  // namespace omadrm
