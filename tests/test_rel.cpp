// Tests for the Rights Expression Language model and its enforcement.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/hex.h"
#include "rel/rights.h"

namespace omadrm::rel {
namespace {

using omadrm::Error;

Rights sample_rights() {
  Rights r;
  r.ro_id = "ro:sample";
  r.content_id = "cid:track@example";
  r.dcf_hash = from_hex("0102030405060708090a0b0c0d0e0f1011121314");
  Permission play;
  play.type = PermissionType::kPlay;
  play.constraint.count = 5;
  Permission display;
  display.type = PermissionType::kDisplay;
  r.permissions = {play, display};
  return r;
}

TEST(PermissionNames, RoundTrip) {
  for (auto p : {PermissionType::kPlay, PermissionType::kDisplay,
                 PermissionType::kExecute, PermissionType::kPrint,
                 PermissionType::kExport}) {
    auto back = permission_from_string(to_string(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(permission_from_string("fly").has_value());
}

TEST(ConstraintXml, UnconstrainedIsEmpty) {
  Constraint c;
  EXPECT_TRUE(c.is_unconstrained());
  Constraint back = Constraint::from_xml(c.to_xml());
  EXPECT_EQ(back, c);
}

TEST(ConstraintXml, AllFieldsRoundTrip) {
  Constraint c;
  c.count = 7;
  c.not_before = 1000;
  c.not_after = 2000;
  c.interval_secs = 86400;
  c.accumulated_secs = 3600;
  EXPECT_FALSE(c.is_unconstrained());
  EXPECT_EQ(Constraint::from_xml(c.to_xml()), c);
}

TEST(RightsXml, RoundTrip) {
  Rights r = sample_rights();
  Rights back = Rights::parse(r.serialize());
  EXPECT_EQ(back, r);
}

TEST(RightsXml, FindPermission) {
  Rights r = sample_rights();
  ASSERT_NE(r.find(PermissionType::kPlay), nullptr);
  EXPECT_EQ(r.find(PermissionType::kPlay)->constraint.count, 5u);
  EXPECT_EQ(r.find(PermissionType::kPrint), nullptr);
}

TEST(RightsXml, RejectsWrongRoot) {
  EXPECT_THROW(Rights::parse("<wrong/>"), Error);
}

TEST(RightsXml, RejectsUnknownPermission) {
  std::string doc =
      "<o-ex:rights o-ex:id=\"r\"><o-ex:agreement><o-ex:asset>"
      "<o-ex:context>cid:x</o-ex:context><ds:DigestValue></ds:DigestValue>"
      "</o-ex:asset><o-ex:permission><o-dd:teleport/></o-ex:permission>"
      "</o-ex:agreement></o-ex:rights>";
  EXPECT_THROW(Rights::parse(doc), Error);
}

TEST(Enforcer, UnconstrainedAlwaysGrants) {
  Rights r = sample_rights();
  RightsEnforcer e(r);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(e.check_and_consume(PermissionType::kDisplay, 1000 + i),
              Decision::kGranted);
  }
  EXPECT_FALSE(e.remaining_count(PermissionType::kDisplay).has_value());
}

TEST(Enforcer, MissingPermissionDenied) {
  RightsEnforcer e(sample_rights());
  EXPECT_EQ(e.check_and_consume(PermissionType::kPrint, 0),
            Decision::kNoSuchPermission);
}

TEST(Enforcer, CountExhaustion) {
  RightsEnforcer e(sample_rights());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 100),
              Decision::kGranted)
        << "use " << i;
    EXPECT_EQ(*e.remaining_count(PermissionType::kPlay), 4u - i);
  }
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 100),
            Decision::kCountExhausted);
  EXPECT_EQ(*e.remaining_count(PermissionType::kPlay), 0u);
}

TEST(Enforcer, DatetimeWindow) {
  Rights r = sample_rights();
  r.permissions[0].constraint = Constraint{};
  r.permissions[0].constraint.not_before = 1000;
  r.permissions[0].constraint.not_after = 2000;
  RightsEnforcer e(r);
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 999),
            Decision::kNotYetValid);
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 1000),
            Decision::kGranted);
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 2000),
            Decision::kGranted);
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 2001),
            Decision::kExpired);
}

TEST(Enforcer, IntervalAnchorsAtFirstUse) {
  Rights r = sample_rights();
  r.permissions[0].constraint = Constraint{};
  r.permissions[0].constraint.interval_secs = 100;
  RightsEnforcer e(r);
  // Before first use the interval is not running.
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 5000),
            Decision::kGranted);
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 5100),
            Decision::kGranted);
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 5101),
            Decision::kIntervalElapsed);
}

TEST(Enforcer, AccumulatedTimeBudget) {
  Rights r = sample_rights();
  r.permissions[0].constraint = Constraint{};
  r.permissions[0].constraint.accumulated_secs = 600;
  RightsEnforcer e(r);
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 0, 300),
            Decision::kGranted);
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 0, 300),
            Decision::kGranted);
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 0, 1),
            Decision::kAccumulatedExhausted);
  // A shorter playback that still fits is fine (budget exactly spent).
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 0, 0),
            Decision::kGranted);
}

TEST(Enforcer, DenialDoesNotConsume) {
  Rights r = sample_rights();
  r.permissions[0].constraint.count = 2;
  r.permissions[0].constraint.not_after = 1000;
  RightsEnforcer e(r);
  // Expired attempts must not burn the count budget.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 2000),
              Decision::kExpired);
  }
  EXPECT_EQ(*e.remaining_count(PermissionType::kPlay), 2u);
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 500),
            Decision::kGranted);
}

TEST(Enforcer, IndependentPermissionBudgets) {
  Rights r = sample_rights();
  r.permissions[1].constraint.count = 1;
  RightsEnforcer e(r);
  EXPECT_EQ(e.check_and_consume(PermissionType::kDisplay, 0),
            Decision::kGranted);
  EXPECT_EQ(e.check_and_consume(PermissionType::kDisplay, 0),
            Decision::kCountExhausted);
  // Play budget untouched.
  EXPECT_EQ(*e.remaining_count(PermissionType::kPlay), 5u);
}

class CountSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CountSweep, ExactlyNGrants) {
  Rights r = sample_rights();
  r.permissions[0].constraint.count = GetParam();
  RightsEnforcer e(r);
  std::uint32_t grants = 0;
  for (std::uint32_t i = 0; i < GetParam() + 10; ++i) {
    if (e.check_and_consume(PermissionType::kPlay, i) == Decision::kGranted) {
      ++grants;
    }
  }
  EXPECT_EQ(grants, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Counts, CountSweep,
                         ::testing::Values(1, 2, 5, 25, 100));

}  // namespace
}  // namespace omadrm::rel
