// Tests for the Rights Expression Language model and its enforcement.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/hex.h"
#include "rel/rights.h"

namespace omadrm::rel {
namespace {

using omadrm::Error;

Rights sample_rights() {
  Rights r;
  r.ro_id = "ro:sample";
  r.content_id = "cid:track@example";
  r.dcf_hash = from_hex("0102030405060708090a0b0c0d0e0f1011121314");
  Permission play;
  play.type = PermissionType::kPlay;
  play.constraint.count = 5;
  Permission display;
  display.type = PermissionType::kDisplay;
  r.permissions = {play, display};
  return r;
}

TEST(PermissionNames, RoundTrip) {
  for (auto p : {PermissionType::kPlay, PermissionType::kDisplay,
                 PermissionType::kExecute, PermissionType::kPrint,
                 PermissionType::kExport}) {
    auto back = permission_from_string(to_string(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(permission_from_string("fly").has_value());
}

TEST(ConstraintXml, UnconstrainedIsEmpty) {
  Constraint c;
  EXPECT_TRUE(c.is_unconstrained());
  Constraint back = Constraint::from_xml(c.to_xml());
  EXPECT_EQ(back, c);
}

TEST(ConstraintXml, AllFieldsRoundTrip) {
  Constraint c;
  c.count = 7;
  c.not_before = 1000;
  c.not_after = 2000;
  c.interval_secs = 86400;
  c.accumulated_secs = 3600;
  EXPECT_FALSE(c.is_unconstrained());
  EXPECT_EQ(Constraint::from_xml(c.to_xml()), c);
}

TEST(RightsXml, RoundTrip) {
  Rights r = sample_rights();
  Rights back = Rights::parse(r.serialize());
  EXPECT_EQ(back, r);
}

TEST(RightsXml, FindPermission) {
  Rights r = sample_rights();
  ASSERT_NE(r.find(PermissionType::kPlay), nullptr);
  EXPECT_EQ(r.find(PermissionType::kPlay)->constraint.count, 5u);
  EXPECT_EQ(r.find(PermissionType::kPrint), nullptr);
}

TEST(RightsXml, RejectsWrongRoot) {
  EXPECT_THROW(Rights::parse("<wrong/>"), Error);
}

TEST(RightsXml, RejectsUnknownPermission) {
  std::string doc =
      "<o-ex:rights o-ex:id=\"r\"><o-ex:agreement><o-ex:asset>"
      "<o-ex:context>cid:x</o-ex:context><ds:DigestValue></ds:DigestValue>"
      "</o-ex:asset><o-ex:permission><o-dd:teleport/></o-ex:permission>"
      "</o-ex:agreement></o-ex:rights>";
  EXPECT_THROW(Rights::parse(doc), Error);
}

// ---------------------------------------------------------------------------
// parse_u64 overflow (regression: a 2^64-wrapping value must be rejected,
// not accepted as a small budget)
// ---------------------------------------------------------------------------

std::string rights_doc_with_constraint(const std::string& constraint_xml) {
  return "<o-ex:rights o-ex:id=\"r\"><o-ex:agreement><o-ex:asset>"
         "<o-ex:context>cid:x</o-ex:context><ds:DigestValue></ds:DigestValue>"
         "</o-ex:asset><o-ex:permission><o-dd:play><o-dd:constraint>" +
         constraint_xml +
         "</o-dd:constraint></o-dd:play></o-ex:permission>"
         "</o-ex:agreement></o-ex:rights>";
}

TEST(ParseOverflow, WrappingCountRejected) {
  // 99999999999999999999999 mod 2^64 = 1529599999999754 — without the
  // overflow check this parses as a "small" (but huge) budget; worse,
  // values wrapping to tiny numbers silently shrink or inflate licenses.
  EXPECT_THROW(Rights::parse(rights_doc_with_constraint(
                   "<o-dd:count>99999999999999999999999</o-dd:count>")),
               Error);
}

TEST(ParseOverflow, WrappingIntervalAndAccumulatedRejected) {
  for (const char* field : {"o-dd:interval", "o-dd:accumulated"}) {
    std::string doc = rights_doc_with_constraint(
        std::string("<") + field + ">18446744073709551616</" + field + ">");
    EXPECT_THROW(Rights::parse(doc), Error) << field;
  }
  EXPECT_THROW(
      Rights::parse(rights_doc_with_constraint(
          "<o-dd:datetime><o-dd:start>340282366920938463463374607431768211456"
          "</o-dd:start></o-dd:datetime>")),
      Error);
}

TEST(ParseOverflow, ExactU64MaxStillParses) {
  // The overflow guard must not reject the largest representable value.
  Rights r = Rights::parse(rights_doc_with_constraint(
      "<o-dd:interval>18446744073709551615</o-dd:interval>"));
  EXPECT_EQ(*r.permissions[0].constraint.interval_secs,
            18446744073709551615ull);
}

TEST(ParseOverflow, CountAboveU32StillRejected) {
  EXPECT_THROW(Rights::parse(rights_doc_with_constraint(
                   "<o-dd:count>4294967296</o-dd:count>")),
               Error);
}

TEST(Enforcer, UnconstrainedAlwaysGrants) {
  Rights r = sample_rights();
  RightsEnforcer e(r);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(e.check_and_consume(PermissionType::kDisplay, 1000 + i),
              Decision::kGranted);
  }
  EXPECT_FALSE(e.remaining_count(PermissionType::kDisplay).has_value());
}

TEST(Enforcer, MissingPermissionDenied) {
  RightsEnforcer e(sample_rights());
  EXPECT_EQ(e.check_and_consume(PermissionType::kPrint, 0),
            Decision::kNoSuchPermission);
}

TEST(Enforcer, CountExhaustion) {
  RightsEnforcer e(sample_rights());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 100),
              Decision::kGranted)
        << "use " << i;
    EXPECT_EQ(*e.remaining_count(PermissionType::kPlay), 4u - i);
  }
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 100),
            Decision::kCountExhausted);
  EXPECT_EQ(*e.remaining_count(PermissionType::kPlay), 0u);
}

TEST(Enforcer, DatetimeWindow) {
  Rights r = sample_rights();
  r.permissions[0].constraint = Constraint{};
  r.permissions[0].constraint.not_before = 1000;
  r.permissions[0].constraint.not_after = 2000;
  RightsEnforcer e(r);
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 999),
            Decision::kNotYetValid);
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 1000),
            Decision::kGranted);
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 2000),
            Decision::kGranted);
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 2001),
            Decision::kExpired);
}

TEST(Enforcer, IntervalAnchorsAtFirstUse) {
  Rights r = sample_rights();
  r.permissions[0].constraint = Constraint{};
  r.permissions[0].constraint.interval_secs = 100;
  RightsEnforcer e(r);
  // Before first use the interval is not running.
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 5000),
            Decision::kGranted);
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 5100),
            Decision::kGranted);
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 5101),
            Decision::kIntervalElapsed);
}

// ---------------------------------------------------------------------------
// Boundary-value pinning for the datetime window and interval semantics
// (both ends inclusive — see the Constraint doc block in rel/rights.h).
// Changing any expectation here is a deliberate REL semantics change.
// ---------------------------------------------------------------------------

TEST(EnforcerBoundaries, NotBeforeIsInclusive) {
  Rights r = sample_rights();
  r.permissions[0].constraint = Constraint{};
  r.permissions[0].constraint.not_before = 1000;
  RightsEnforcer e(r);
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 999),
            Decision::kNotYetValid);  // last invalid instant
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 1000),
            Decision::kGranted);      // first valid instant
}

TEST(EnforcerBoundaries, NotAfterIsInclusive) {
  Rights r = sample_rights();
  r.permissions[0].constraint = Constraint{};
  r.permissions[0].constraint.not_after = 2000;
  RightsEnforcer e(r);
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 2000),
            Decision::kGranted);      // last valid instant
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 2001),
            Decision::kExpired);      // first expired instant
}

TEST(EnforcerBoundaries, ZeroWidthWindowGrantsExactlyAtTheInstant) {
  Rights r = sample_rights();
  r.permissions[0].constraint = Constraint{};
  r.permissions[0].constraint.not_before = 1500;
  r.permissions[0].constraint.not_after = 1500;
  RightsEnforcer e(r);
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 1499),
            Decision::kNotYetValid);
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 1500),
            Decision::kGranted);
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 1501),
            Decision::kExpired);
}

TEST(EnforcerBoundaries, IntervalEndIsInclusive) {
  Rights r = sample_rights();
  r.permissions[0].constraint = Constraint{};
  r.permissions[0].constraint.interval_secs = 100;
  RightsEnforcer e(r);
  ASSERT_EQ(e.check_and_consume(PermissionType::kPlay, 5000),
            Decision::kGranted);  // anchors first_use = 5000
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 5100),
            Decision::kGranted);  // exactly first_use + interval
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 5101),
            Decision::kIntervalElapsed);  // one second past
}

TEST(EnforcerBoundaries, HugeIntervalDoesNotWrapIntoElapsed) {
  // first_use + interval_secs would overflow 2^64; the subtractive form
  // must treat it as effectively unlimited instead.
  Rights r = sample_rights();
  r.permissions[0].constraint = Constraint{};
  r.permissions[0].constraint.interval_secs = ~std::uint64_t{0} - 5;
  RightsEnforcer e(r);
  ASSERT_EQ(e.check_and_consume(PermissionType::kPlay, 1000),
            Decision::kGranted);
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 2000000000ull),
            Decision::kGranted);
}

TEST(EnforcerBoundaries, HugeDurationDoesNotWrapPastAccumulatedBudget) {
  Rights r = sample_rights();
  r.permissions[0].constraint = Constraint{};
  r.permissions[0].constraint.accumulated_secs = 600;
  RightsEnforcer e(r);
  ASSERT_EQ(e.check_and_consume(PermissionType::kPlay, 0, 500),
            Decision::kGranted);
  // 500 + (2^64 - 100) wraps to 400 without the subtractive check.
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 0,
                                ~std::uint64_t{0} - 100),
            Decision::kAccumulatedExhausted);
  // Budget intact after the denial.
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 0, 100),
            Decision::kGranted);
}

TEST(Enforcer, AccumulatedTimeBudget) {
  Rights r = sample_rights();
  r.permissions[0].constraint = Constraint{};
  r.permissions[0].constraint.accumulated_secs = 600;
  RightsEnforcer e(r);
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 0, 300),
            Decision::kGranted);
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 0, 300),
            Decision::kGranted);
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 0, 1),
            Decision::kAccumulatedExhausted);
  // A shorter playback that still fits is fine (budget exactly spent).
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 0, 0),
            Decision::kGranted);
}

TEST(Enforcer, DenialDoesNotConsume) {
  Rights r = sample_rights();
  r.permissions[0].constraint.count = 2;
  r.permissions[0].constraint.not_after = 1000;
  RightsEnforcer e(r);
  // Expired attempts must not burn the count budget.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 2000),
              Decision::kExpired);
  }
  EXPECT_EQ(*e.remaining_count(PermissionType::kPlay), 2u);
  EXPECT_EQ(e.check_and_consume(PermissionType::kPlay, 500),
            Decision::kGranted);
}

TEST(Enforcer, IndependentPermissionBudgets) {
  Rights r = sample_rights();
  r.permissions[1].constraint.count = 1;
  RightsEnforcer e(r);
  EXPECT_EQ(e.check_and_consume(PermissionType::kDisplay, 0),
            Decision::kGranted);
  EXPECT_EQ(e.check_and_consume(PermissionType::kDisplay, 0),
            Decision::kCountExhausted);
  // Play budget untouched.
  EXPECT_EQ(*e.remaining_count(PermissionType::kPlay), 5u);
}

class CountSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CountSweep, ExactlyNGrants) {
  Rights r = sample_rights();
  r.permissions[0].constraint.count = GetParam();
  RightsEnforcer e(r);
  std::uint32_t grants = 0;
  for (std::uint32_t i = 0; i < GetParam() + 10; ++i) {
    if (e.check_and_consume(PermissionType::kPlay, i) == Decision::kGranted) {
      ++grants;
    }
  }
  EXPECT_EQ(grants, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Counts, CountSweep,
                         ::testing::Values(1, 2, 5, 25, 100));

}  // namespace
}  // namespace omadrm::rel
