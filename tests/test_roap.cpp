// Tests for ROAP message serialization and signature payload semantics.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/hex.h"
#include "common/random.h"
#include "roap/messages.h"
#include "xml/xml.h"

namespace omadrm::roap {
namespace {

using omadrm::DeterministicRng;
using omadrm::Error;

rel::Rights sample_rights() {
  rel::Rights r;
  r.ro_id = "ro:1";
  r.content_id = "cid:x";
  r.dcf_hash = from_hex("00112233445566778899aabbccddeeff00112233");
  rel::Permission play;
  play.type = rel::PermissionType::kPlay;
  play.constraint.count = 3;
  r.permissions = {play};
  return r;
}

TEST(StatusNames, RoundTrip) {
  for (auto s : {Status::kSuccess, Status::kAbort, Status::kNotRegistered,
                 Status::kSignatureInvalid, Status::kUnknownRoId,
                 Status::kAccessDenied}) {
    EXPECT_EQ(status_from_string(to_string(s)), s);
  }
  EXPECT_THROW(status_from_string("Nope"), Error);
}

TEST(DeviceHello, XmlRoundTrip) {
  DeterministicRng rng(1);
  DeviceHello h;
  h.device_id = "device-01";
  h.algorithms = {"SHA-1", "AES-128-CBC"};
  h.device_nonce = rng.bytes(kNonceLen);
  DeviceHello back = DeviceHello::from_xml(h.to_xml());
  EXPECT_EQ(back.device_id, h.device_id);
  EXPECT_EQ(back.algorithms, h.algorithms);
  EXPECT_EQ(back.device_nonce, h.device_nonce);
}

TEST(RiHello, XmlRoundTrip) {
  DeterministicRng rng(2);
  RiHello h;
  h.status = Status::kSuccess;
  h.ri_id = "ri.example";
  h.session_id = "s-1";
  h.algorithms = {"RSA-PSS"};
  h.ri_nonce = rng.bytes(kNonceLen);
  RiHello back = RiHello::from_xml(h.to_xml());
  EXPECT_EQ(back.ri_id, h.ri_id);
  EXPECT_EQ(back.session_id, h.session_id);
  EXPECT_EQ(back.ri_nonce, h.ri_nonce);
}

TEST(RegistrationRequest, XmlRoundTripAndPayload) {
  DeterministicRng rng(3);
  RegistrationRequest r;
  r.session_id = "s-9";
  r.device_id = "device-01";
  r.device_nonce = rng.bytes(kNonceLen);
  r.ri_nonce = rng.bytes(kNonceLen);
  r.certificate_der = rng.bytes(500);
  r.ocsp_nonce = rng.bytes(kNonceLen);

  Bytes unsigned_payload = r.payload();
  r.signature = rng.bytes(128);
  // The signature never covers itself.
  EXPECT_EQ(r.payload(), unsigned_payload);

  RegistrationRequest back = RegistrationRequest::from_xml(r.to_xml());
  EXPECT_EQ(back.session_id, r.session_id);
  EXPECT_EQ(back.certificate_der, r.certificate_der);
  EXPECT_EQ(back.signature, r.signature);
  EXPECT_EQ(back.payload(), unsigned_payload);
}

TEST(RegistrationResponse, XmlRoundTrip) {
  DeterministicRng rng(4);
  RegistrationResponse r;
  r.status = Status::kSuccess;
  r.session_id = "s-9";
  r.ri_id = "ri.example";
  r.ri_url = "http://ri.example/roap";
  r.ri_certificate_der = rng.bytes(480);
  r.ocsp_response_der = rng.bytes(200);
  r.signature = rng.bytes(128);
  RegistrationResponse back = RegistrationResponse::from_xml(r.to_xml());
  EXPECT_EQ(back.ri_url, r.ri_url);
  EXPECT_EQ(back.ocsp_response_der, r.ocsp_response_der);
  EXPECT_EQ(back.payload(), r.payload());
}

TEST(ProtectedRo, XmlRoundTripDeviceRo) {
  DeterministicRng rng(5);
  ProtectedRo ro;
  ro.rights = sample_rights();
  ro.wrapped_keys = rng.bytes(168);
  ro.enc_kcek = rng.bytes(24);
  ro.mac = rng.bytes(20);
  ro.ri_id = "ri.example";
  ProtectedRo back = ProtectedRo::from_xml(ro.to_xml());
  EXPECT_EQ(back.rights, ro.rights);
  EXPECT_EQ(back.wrapped_keys, ro.wrapped_keys);
  EXPECT_EQ(back.enc_kcek, ro.enc_kcek);
  EXPECT_EQ(back.mac, ro.mac);
  EXPECT_FALSE(back.is_domain_ro);
  EXPECT_TRUE(back.signature.empty());
}

TEST(ProtectedRo, XmlRoundTripDomainRo) {
  DeterministicRng rng(6);
  ProtectedRo ro;
  ro.rights = sample_rights();
  ro.wrapped_keys = rng.bytes(40);
  ro.enc_kcek = rng.bytes(24);
  ro.mac = rng.bytes(20);
  ro.ri_id = "ri.example";
  ro.is_domain_ro = true;
  ro.domain_id = "domain:home";
  ro.signature = rng.bytes(128);
  ProtectedRo back = ProtectedRo::from_xml(ro.to_xml());
  EXPECT_TRUE(back.is_domain_ro);
  EXPECT_EQ(back.domain_id, "domain:home");
  EXPECT_EQ(back.signature, ro.signature);
}

TEST(ProtectedRo, MacPayloadBindsAllProtectedFields) {
  DeterministicRng rng(7);
  ProtectedRo ro;
  ro.rights = sample_rights();
  ro.wrapped_keys = rng.bytes(40);
  ro.enc_kcek = rng.bytes(24);
  ro.ri_id = "ri.example";
  Bytes base = ro.mac_payload();

  ProtectedRo changed = ro;
  changed.wrapped_keys[0] ^= 1;
  EXPECT_NE(changed.mac_payload(), base);

  changed = ro;
  changed.enc_kcek[0] ^= 1;
  EXPECT_NE(changed.mac_payload(), base);

  changed = ro;
  changed.rights.ro_id = "ro:other";
  EXPECT_NE(changed.mac_payload(), base);

  changed = ro;
  changed.ri_id = "evil.example";
  EXPECT_NE(changed.mac_payload(), base);

  // The signature covers the MAC as well.
  ProtectedRo with_mac = ro;
  with_mac.mac = rng.bytes(20);
  EXPECT_NE(with_mac.signed_payload(), ro.signed_payload());
}

TEST(RoRequestResponse, XmlRoundTrip) {
  DeterministicRng rng(8);
  RoRequest req;
  req.device_id = "device-01";
  req.ri_id = "ri.example";
  req.ro_id = "ro:1";
  req.device_nonce = rng.bytes(kNonceLen);
  req.signature = rng.bytes(128);
  RoRequest req_back = RoRequest::from_xml(req.to_xml());
  EXPECT_EQ(req_back.ro_id, req.ro_id);
  EXPECT_TRUE(req_back.domain_id.empty());
  EXPECT_EQ(req_back.payload(), req.payload());

  RoResponse resp;
  resp.status = Status::kSuccess;
  resp.device_id = req.device_id;
  resp.ri_id = req.ri_id;
  resp.device_nonce = req.device_nonce;
  ProtectedRo ro;
  ro.rights = sample_rights();
  ro.wrapped_keys = rng.bytes(168);
  ro.enc_kcek = rng.bytes(24);
  ro.mac = rng.bytes(20);
  ro.ri_id = req.ri_id;
  resp.ros = {ro};
  resp.signature = rng.bytes(128);
  RoResponse resp_back = RoResponse::from_xml(resp.to_xml());
  ASSERT_EQ(resp_back.ros.size(), 1u);
  EXPECT_EQ(resp_back.ros[0].rights, ro.rights);
  EXPECT_EQ(resp_back.payload(), resp.payload());
}

TEST(RoResponse, ErrorStatusWithoutRos) {
  RoResponse resp;
  resp.status = Status::kUnknownRoId;
  resp.device_id = "d";
  resp.ri_id = "r";
  resp.device_nonce = Bytes(kNonceLen, 0);
  RoResponse back = RoResponse::from_xml(resp.to_xml());
  EXPECT_EQ(back.status, Status::kUnknownRoId);
  EXPECT_TRUE(back.ros.empty());
}

TEST(JoinDomain, XmlRoundTrip) {
  DeterministicRng rng(9);
  JoinDomainRequest req;
  req.device_id = "device-01";
  req.ri_id = "ri.example";
  req.domain_id = "domain:home";
  req.device_nonce = rng.bytes(kNonceLen);
  req.signature = rng.bytes(128);
  JoinDomainRequest req_back = JoinDomainRequest::from_xml(req.to_xml());
  EXPECT_EQ(req_back.domain_id, req.domain_id);
  EXPECT_EQ(req_back.payload(), req.payload());

  JoinDomainResponse resp;
  resp.status = Status::kSuccess;
  resp.domain_id = req.domain_id;
  resp.generation = 3;
  resp.wrapped_domain_key = rng.bytes(152);
  resp.signature = rng.bytes(128);
  JoinDomainResponse resp_back = JoinDomainResponse::from_xml(resp.to_xml());
  EXPECT_EQ(resp_back.generation, 3u);
  EXPECT_EQ(resp_back.wrapped_domain_key, resp.wrapped_domain_key);
  EXPECT_EQ(resp_back.payload(), resp.payload());
}

TEST(LeaveDomain, XmlRoundTrip) {
  DeterministicRng rng(11);
  LeaveDomainRequest req;
  req.device_id = "device-01";
  req.ri_id = "ri.example";
  req.domain_id = "domain:home";
  req.device_nonce = rng.bytes(kNonceLen);
  req.signature = rng.bytes(128);
  LeaveDomainRequest back = LeaveDomainRequest::from_xml(req.to_xml());
  EXPECT_EQ(back.domain_id, req.domain_id);
  EXPECT_EQ(back.payload(), req.payload());

  LeaveDomainResponse resp;
  resp.status = Status::kSuccess;
  resp.domain_id = req.domain_id;
  resp.device_nonce = req.device_nonce;
  resp.signature = rng.bytes(128);
  LeaveDomainResponse rback = LeaveDomainResponse::from_xml(resp.to_xml());
  EXPECT_EQ(rback.device_nonce, resp.device_nonce);
  EXPECT_EQ(rback.payload(), resp.payload());
}

TEST(Trigger, XmlRoundTrip) {
  RoAcquisitionTrigger t;
  t.ri_id = "ri.example";
  t.ri_url = "http://ri.example/roap";
  t.ro_id = "ro:42";
  t.content_id = "cid:song@x";
  RoAcquisitionTrigger back = RoAcquisitionTrigger::from_xml(t.to_xml());
  EXPECT_EQ(back.ro_id, "ro:42");
  EXPECT_TRUE(back.domain_id.empty());

  t.domain_id = "domain:home";
  RoAcquisitionTrigger back2 = RoAcquisitionTrigger::from_xml(t.to_xml());
  EXPECT_EQ(back2.domain_id, "domain:home");
}

TEST(ProtectedRo, DomainGenerationRoundTripsAndIsMacProtected) {
  DeterministicRng rng(12);
  ProtectedRo ro;
  ro.rights = sample_rights();
  ro.wrapped_keys = rng.bytes(40);
  ro.enc_kcek = rng.bytes(24);
  ro.mac = rng.bytes(20);
  ro.ri_id = "ri.example";
  ro.is_domain_ro = true;
  ro.domain_id = "domain:home";
  ro.domain_generation = 3;
  ProtectedRo back = ProtectedRo::from_xml(ro.to_xml());
  EXPECT_EQ(back.domain_generation, 3u);

  ProtectedRo other = ro;
  other.domain_generation = 4;
  EXPECT_NE(other.mac_payload(), ro.mac_payload());
}

TEST(Messages, WrongRootElementRejected) {
  xml::Element wrong("roap:other");
  EXPECT_THROW(DeviceHello::from_xml(wrong), Error);
  EXPECT_THROW(RiHello::from_xml(wrong), Error);
  EXPECT_THROW(RegistrationRequest::from_xml(wrong), Error);
  EXPECT_THROW(RegistrationResponse::from_xml(wrong), Error);
  EXPECT_THROW(RoRequest::from_xml(wrong), Error);
  EXPECT_THROW(RoResponse::from_xml(wrong), Error);
  EXPECT_THROW(JoinDomainRequest::from_xml(wrong), Error);
  EXPECT_THROW(JoinDomainResponse::from_xml(wrong), Error);
  EXPECT_THROW(ProtectedRo::from_xml(wrong), Error);
}

TEST(Messages, SerializedFormIsParsableXml) {
  // The wire form is a plain XML document; re-parse through the XML layer.
  DeterministicRng rng(10);
  RoRequest req;
  req.device_id = "d";
  req.ri_id = "r";
  req.ro_id = "ro:1";
  req.device_nonce = rng.bytes(kNonceLen);
  std::string wire = req.to_xml().serialize();
  xml::Element doc = xml::parse(wire);
  EXPECT_EQ(doc.name(), "roap:roRequest");
}

}  // namespace
}  // namespace omadrm::roap
