// Tests for the CryptoProvider seam: the plain provider must be
// bit-identical to the substrate, and a fault-injecting provider proves
// the DRM Agent reacts to each verification failure with the right status
// (exercising error paths that byte-tampering cannot always reach
// deterministically).
#include <gtest/gtest.h>

#include "agent/drm_agent.h"
#include "ci/content_issuer.h"
#include "common/random.h"
#include "crypto/aes_wrap.h"
#include "crypto/hmac.h"
#include "crypto/kdf2.h"
#include "crypto/modes.h"
#include "crypto/sha1.h"
#include "pki/authority.h"
#include "provider/provider.h"
#include "ri/rights_issuer.h"
#include "roap/transport.h"
#include "rsa/pss.h"

namespace omadrm {
namespace {

using agent::AgentStatus;
using agent::DrmAgent;

TEST(PlainProvider, MatchesSubstrate) {
  DeterministicRng rng(1);
  provider::PlainCryptoProvider p;
  Bytes key = rng.bytes(16), iv = rng.bytes(16), data = rng.bytes(100);

  EXPECT_EQ(p.sha1(data), crypto::Sha1::hash(data));
  EXPECT_EQ(p.hmac_sha1(key, data), crypto::HmacSha1::mac(key, data));
  EXPECT_TRUE(p.hmac_verify(key, data, crypto::HmacSha1::mac(key, data)));
  EXPECT_EQ(p.aes_cbc_encrypt(key, iv, data),
            crypto::aes_cbc_encrypt(key, iv, data));
  Bytes ct = crypto::aes_cbc_encrypt(key, iv, data);
  EXPECT_EQ(p.aes_cbc_decrypt(key, iv, ct), data);
  Bytes material = rng.bytes(32);
  Bytes wrapped = p.aes_wrap(key, material);
  EXPECT_EQ(wrapped, crypto::aes_wrap(key, material));
  auto unwrapped = p.aes_unwrap(key, wrapped);
  ASSERT_TRUE(unwrapped.has_value());
  EXPECT_EQ(*unwrapped, material);
  EXPECT_EQ(p.kdf2(data, 24), crypto::kdf2_sha1(data, 24));
}

TEST(PlainProvider, SharedInstanceIsStable) {
  provider::PlainCryptoProvider& a = provider::plain_provider();
  provider::PlainCryptoProvider& b = provider::plain_provider();
  EXPECT_EQ(&a, &b);
}

TEST(PlainProvider, RsaPathsRoundTrip) {
  DeterministicRng rng(2);
  provider::PlainCryptoProvider p;
  rsa::PrivateKey key = rsa::generate_key(512, rng);
  Bytes msg = to_bytes("provider message");
  Bytes sig = p.pss_sign(key, msg, rng);
  EXPECT_TRUE(p.pss_verify(key.public_key(), msg, sig));
  EXPECT_TRUE(rsa::pss_verify(key.public_key(), msg, sig));

  rsa::KemEncapsulation enc = p.kem_encapsulate(key.public_key(), rng);
  EXPECT_EQ(p.kem_decapsulate(key, enc.c1), enc.kek);
}

// ---------------------------------------------------------------------------
// Fault injection: force specific verification primitives to fail and
// check the agent's reported status.
// ---------------------------------------------------------------------------

class FaultInjectingProvider final : public provider::PlainCryptoProvider {
 public:
  // Countdown switches: 0 = fail the next call, negative = never fail.
  int fail_pss_verify_at = -1;
  int fail_hmac_verify_at = -1;
  bool fail_all_unwraps = false;

  bool pss_verify(const rsa::PublicKey& key, ByteView message,
                  ByteView signature) override {
    if (fail_pss_verify_at == 0) {
      --fail_pss_verify_at;
      return false;
    }
    if (fail_pss_verify_at > 0) --fail_pss_verify_at;
    return PlainCryptoProvider::pss_verify(key, message, signature);
  }

  bool hmac_verify(ByteView key, ByteView data, ByteView tag) override {
    if (fail_hmac_verify_at == 0) {
      --fail_hmac_verify_at;
      return false;
    }
    if (fail_hmac_verify_at > 0) --fail_hmac_verify_at;
    return PlainCryptoProvider::hmac_verify(key, data, tag);
  }

  std::optional<Bytes> aes_unwrap(ByteView kek, ByteView wrapped) override {
    if (fail_all_unwraps) return std::nullopt;
    return PlainCryptoProvider::aes_unwrap(kek, wrapped);
  }
};

constexpr std::uint64_t kNow = 1100000000;
const pki::Validity kValidity{kNow - 86400, kNow + 365 * 86400};

class FaultInjection : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<DeterministicRng>(0xFA17);
    ca_ = std::make_unique<pki::CertificationAuthority>("CMLA Root", 1024,
                                                        kValidity, *rng_);
    ci_ = std::make_unique<ci::ContentIssuer>(
        "content.example", provider::plain_provider(), *rng_);
    ri_ = std::make_unique<ri::RightsIssuer>(
        "ri.example", "http://ri.example/roap", *ca_, kValidity,
        provider::plain_provider(), *rng_);
    device_ = std::make_unique<DrmAgent>("device-01", ca_->root_certificate(),
                                         faulty_, *rng_);
    device_->provision(
        ca_->issue("device-01", device_->public_key(), kValidity, *rng_));

    Bytes content = rng_->bytes(1000);
    dcf::Headers h;
    h.content_type = "audio/mpeg";
    h.content_id = "cid:fi@content.example";
    h.rights_issuer_url = ri_->url();
    dcf_ = ci_->package(h, content);

    ri::LicenseOffer offer;
    offer.ro_id = "ro:fi";
    offer.content_id = h.content_id;
    offer.dcf_hash = dcf_.hash();
    rel::Permission play;
    play.type = rel::PermissionType::kPlay;
    offer.permissions = {play};
    offer.kcek = *ci_->kcek_for(h.content_id);
    ri_->add_offer(offer);
  }

  roap::InProcessTransport& tx() {
    if (!transport_) {
      transport_ = std::make_unique<roap::InProcessTransport>(*ri_, kNow);
    }
    return *transport_;
  }

  FaultInjectingProvider faulty_;
  std::unique_ptr<roap::InProcessTransport> transport_;
  std::unique_ptr<DeterministicRng> rng_;
  std::unique_ptr<pki::CertificationAuthority> ca_;
  std::unique_ptr<ci::ContentIssuer> ci_;
  std::unique_ptr<ri::RightsIssuer> ri_;
  std::unique_ptr<DrmAgent> device_;
  dcf::Dcf dcf_;
};

TEST_F(FaultInjection, RegistrationCertCheckFailure) {
  // Registration performs three terminal-side pss_verify calls, in order:
  // RI certificate, OCSP response, message signature.
  faulty_.fail_pss_verify_at = 0;
  EXPECT_EQ(device_->register_with(tx(), kNow),
            AgentStatus::kCertificateInvalid);
}

TEST_F(FaultInjection, RegistrationOcspCheckFailure) {
  faulty_.fail_pss_verify_at = 1;
  EXPECT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOcspInvalid);
}

TEST_F(FaultInjection, RegistrationSignatureCheckFailure) {
  faulty_.fail_pss_verify_at = 2;
  EXPECT_EQ(device_->register_with(tx(), kNow),
            AgentStatus::kSignatureInvalid);
}

TEST_F(FaultInjection, AcquisitionSignatureFailure) {
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  faulty_.fail_pss_verify_at = 0;
  EXPECT_EQ(device_->acquire_ro(tx(), "ri.example", "ro:fi", kNow),
            AgentStatus::kSignatureInvalid);
}

TEST_F(FaultInjection, InstallationMacFailure) {
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  auto acq = device_->acquire_ro(tx(), "ri.example", "ro:fi", kNow);
  ASSERT_EQ(acq, AgentStatus::kOk);
  faulty_.fail_hmac_verify_at = 0;
  EXPECT_EQ(device_->install_ro(*acq, kNow), AgentStatus::kMacMismatch);
}

TEST_F(FaultInjection, InstallationUnwrapFailure) {
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  auto acq = device_->acquire_ro(tx(), "ri.example", "ro:fi", kNow);
  ASSERT_EQ(acq, AgentStatus::kOk);
  faulty_.fail_all_unwraps = true;
  EXPECT_EQ(device_->install_ro(*acq, kNow), AgentStatus::kUnwrapFailed);
}

TEST_F(FaultInjection, ConsumptionMacRecheckFailure) {
  // The paper's §2.4.4: the RO MAC is re-verified on *every* access, so a
  // storage corruption after installation is still caught.
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  auto acq = device_->acquire_ro(tx(), "ri.example", "ro:fi", kNow);
  ASSERT_EQ(acq, AgentStatus::kOk);
  ASSERT_EQ(device_->install_ro(*acq, kNow), AgentStatus::kOk);

  ASSERT_EQ(device_->consume(dcf_, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
  faulty_.fail_hmac_verify_at = 0;
  EXPECT_EQ(device_->consume(dcf_, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kMacMismatch);
  // Transient fault cleared: consumption works again.
  EXPECT_EQ(device_->consume(dcf_, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
}

TEST_F(FaultInjection, RecoveryAfterFailedRegistration) {
  faulty_.fail_pss_verify_at = 0;
  ASSERT_EQ(device_->register_with(tx(), kNow),
            AgentStatus::kCertificateInvalid);
  EXPECT_FALSE(device_->has_ri_context("ri.example"));
  // Next attempt (fault cleared) succeeds from a clean slate.
  EXPECT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  EXPECT_TRUE(device_->has_ri_context("ri.example"));
}

}  // namespace
}  // namespace omadrm
