// Secure-storage subsystem tests: StateStore backends, the FileStore's
// corruption / rollback / power-loss behaviour, and the end-to-end
// crash-safety contract — a stateful constraint burn committed before
// open_content returns can never be refunded by killing and reloading
// the agent, and a tampered or stale store image is rejected on load
// with a distinct StatusCode.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "agent/drm_agent.h"
#include "agent/sessions.h"
#include "ci/content_issuer.h"
#include "common/error.h"
#include "common/random.h"
#include "pki/authority.h"
#include "provider/provider.h"
#include "ri/rights_issuer.h"
#include "roap/envelope.h"
#include "roap/transport.h"
#include "store/file_store.h"
#include "store/memory_store.h"
#include "store/state_store.h"

namespace omadrm {
namespace {

using agent::AgentStatus;
using agent::DrmAgent;
using store::FileStore;
using store::MemoryStore;
using store::Record;
using store::Transaction;

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

struct TempDir {
  std::filesystem::path path;

  explicit TempDir(const std::string& tag) {
    static int counter = 0;
    path = std::filesystem::temp_directory_path() /
           ("omadrm_store_" + tag + "_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    std::filesystem::remove_all(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
  std::string file(const char* name) const { return (path / name).string(); }
};

Bytes test_key() { return store::derive_storage_key(to_bytes("unit-kdev")); }

FileStore::Options fast_options() {
  FileStore::Options o;
  o.durable_fsync = false;  // tmpfs-friendly; durability logic unchanged
  return o;
}

Bytes read_file_bytes(const std::string& p) {
  std::ifstream f(p, std::ios::binary);
  return Bytes(std::istreambuf_iterator<char>(f),
               std::istreambuf_iterator<char>());
}

void write_file_bytes(const std::string& p, const Bytes& data) {
  std::ofstream f(p, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
}

void flip_byte(const std::string& p, std::size_t offset) {
  Bytes data = read_file_bytes(p);
  ASSERT_LT(offset, data.size());
  data[offset] ^= 0x40;
  write_file_bytes(p, data);
}

void truncate_by(const std::string& p, std::size_t bytes) {
  Bytes data = read_file_bytes(p);
  ASSERT_GE(data.size(), bytes);
  data.resize(data.size() - bytes);
  write_file_bytes(p, data);
}

std::map<std::string, Bytes> as_map(const std::vector<Record>& records) {
  std::map<std::string, Bytes> out;
  for (const Record& r : records) out[r.key] = r.value;
  return out;
}

// ---------------------------------------------------------------------------
// MemoryStore
// ---------------------------------------------------------------------------

TEST(MemoryStoreTest, CommitLoadRoundTrip) {
  MemoryStore s;
  EXPECT_EQ(s.generation(), 0u);
  Transaction tx;
  tx.put("a", to_bytes("alpha")).put("b", to_bytes("beta"));
  ASSERT_TRUE(s.commit(tx).ok());
  EXPECT_EQ(s.generation(), 1u);

  Transaction tx2;
  tx2.erase("a").put("c", to_bytes("gamma"));
  ASSERT_TRUE(s.commit(tx2).ok());

  auto loaded = s.load();
  ASSERT_TRUE(loaded.ok());
  auto m = as_map(*loaded);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.at("b"), to_bytes("beta"));
  EXPECT_EQ(m.at("c"), to_bytes("gamma"));
  EXPECT_EQ(s.generation(), 2u);

  Transaction wipe;
  wipe.clear();
  ASSERT_TRUE(s.commit(wipe).ok());
  EXPECT_EQ(as_map(*s.load()).size(), 0u);
}

TEST(MemoryStoreTest, InjectedFailureLeavesStateUntouched) {
  MemoryStore s;
  Transaction tx;
  tx.put("k", to_bytes("v"));
  ASSERT_TRUE(s.commit(tx).ok());

  s.fail_next_commits(1);
  Transaction tx2;
  tx2.put("k", to_bytes("replaced")).put("x", to_bytes("y"));
  Result<> r = s.commit(tx2);
  EXPECT_EQ(r.code(), StatusCode::kStoreFailure);
  EXPECT_EQ(s.generation(), 1u);
  EXPECT_EQ(as_map(*s.load()).at("k"), to_bytes("v"));

  // Next commit works again.
  ASSERT_TRUE(s.commit(tx2).ok());
  EXPECT_EQ(as_map(*s.load()).at("k"), to_bytes("replaced"));
}

// ---------------------------------------------------------------------------
// FileStore basics
// ---------------------------------------------------------------------------

TEST(FileStoreTest, FreshDirectoryLoadsEmpty) {
  TempDir dir("fresh");
  FileStore s(dir.str(), test_key(), fast_options());
  auto loaded = s.load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
  EXPECT_EQ(s.generation(), 0u);
}

TEST(FileStoreTest, CommitsSurviveReload) {
  TempDir dir("reload");
  {
    FileStore s(dir.str(), test_key(), fast_options());
    Transaction tx;
    tx.put("ro/one", to_bytes("license")).put("st/one", to_bytes("\x01"));
    ASSERT_TRUE(s.commit(tx).ok());
    Transaction tx2;
    tx2.put("st/one", to_bytes("\x02")).erase("missing");
    ASSERT_TRUE(s.commit(tx2).ok());
    EXPECT_EQ(s.generation(), 2u);
  }
  // A fresh object on the same directory (the reboot) replays the image.
  FileStore r(dir.str(), test_key(), fast_options());
  auto loaded = r.load();
  ASSERT_TRUE(loaded.ok());
  auto m = as_map(*loaded);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.at("st/one"), to_bytes("\x02"));
  EXPECT_EQ(r.generation(), 2u);
}

TEST(FileStoreTest, CompactionPreservesRecordsAndTruncatesJournal) {
  TempDir dir("compact");
  FileStore s(dir.str(), test_key(), fast_options());
  ASSERT_TRUE(s.load().ok());
  for (int i = 0; i < 20; ++i) {
    Transaction tx;
    tx.put("k" + std::to_string(i % 5), to_bytes("v" + std::to_string(i)));
    ASSERT_TRUE(s.commit(tx).ok());
  }
  ASSERT_GT(s.journal_bytes(), 0u);
  ASSERT_TRUE(s.compact().ok());
  EXPECT_EQ(s.journal_bytes(), 0u);

  // Post-compaction commits land in the (fresh) journal...
  Transaction tx;
  tx.put("post", to_bytes("compaction"));
  ASSERT_TRUE(s.commit(tx).ok());

  // ...and a reload folds snapshot + journal back together.
  FileStore r(dir.str(), test_key(), fast_options());
  auto loaded = r.load();
  ASSERT_TRUE(loaded.ok());
  auto m = as_map(*loaded);
  EXPECT_EQ(m.size(), 6u);  // k0..k4 + post
  EXPECT_EQ(m.at("k4"), to_bytes("v19"));
  EXPECT_EQ(m.at("post"), to_bytes("compaction"));
  EXPECT_EQ(r.generation(), 21u);
}

TEST(FileStoreTest, AutoCompactionKicksIn) {
  TempDir dir("autocompact");
  FileStore::Options o = fast_options();
  o.compact_after_bytes = 256;
  FileStore s(dir.str(), test_key(), o);
  ASSERT_TRUE(s.load().ok());
  for (int i = 0; i < 50; ++i) {
    Transaction tx;
    tx.put("hot", to_bytes("value-" + std::to_string(i)));
    ASSERT_TRUE(s.commit(tx).ok());
  }
  // The journal was repeatedly folded away instead of growing unboundedly.
  EXPECT_LT(s.journal_bytes(), 512u);
  FileStore r(dir.str(), test_key(), fast_options());
  auto loaded = r.load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(as_map(*loaded).at("hot"), to_bytes("value-49"));
  EXPECT_EQ(r.generation(), 50u);
}

// ---------------------------------------------------------------------------
// Corruption classes — each fails closed with its own StatusCode
// ---------------------------------------------------------------------------

TEST(FileStoreCorruption, TruncatedJournalTailFailsClosed) {
  TempDir dir("torntail");
  {
    FileStore s(dir.str(), test_key(), fast_options());
    Transaction tx;
    tx.put("k", to_bytes("v"));
    ASSERT_TRUE(s.commit(tx).ok());
    Transaction tx2;
    tx2.put("k", to_bytes("w"));
    ASSERT_TRUE(s.commit(tx2).ok());
  }
  truncate_by(dir.file("journal.bin"), 7);

  // Default policy: fail closed, distinct code.
  FileStore strict(dir.str(), test_key(), fast_options());
  auto r = strict.load();
  EXPECT_EQ(r.code(), StatusCode::kStoreCorrupt);

  // The torn frame's commit never returned, so dropping it is safe when
  // the caller opts into recovery — but the second commit's generation
  // is now below the counter, which the rollback guard catches: a
  // truncation that removes a COMPLETED commit is not a recoverable
  // tail, it is rollback.
  FileStore::Options recover = fast_options();
  recover.recover_torn_tail = true;
  FileStore tolerant(dir.str(), test_key(), recover);
  EXPECT_EQ(tolerant.load().code(), StatusCode::kStoreRollback);
}

TEST(FileStoreCorruption, TornTailRecoveryKeepsCompletedCommits) {
  TempDir dir("tornok");
  std::size_t complete_size = 0;
  {
    FileStore s(dir.str(), test_key(), fast_options());
    Transaction tx;
    tx.put("k", to_bytes("v"));
    ASSERT_TRUE(s.commit(tx).ok());
    complete_size = s.journal_bytes();
    // Power loss mid-append of the SECOND frame: written via the fault
    // hook so the counter was never bumped for it.
    s.set_journal_fault_after(5);
    Transaction tx2;
    tx2.put("k", to_bytes("w"));
    EXPECT_EQ(s.commit(tx2).code(), StatusCode::kStoreFailure);
  }
  ASSERT_GT(read_file_bytes(dir.file("journal.bin")).size(), complete_size);

  FileStore::Options recover = fast_options();
  recover.recover_torn_tail = true;
  FileStore tolerant(dir.str(), test_key(), recover);
  auto loaded = tolerant.load();
  ASSERT_TRUE(loaded.ok()) << loaded.describe();
  EXPECT_EQ(as_map(*loaded).at("k"), to_bytes("v"));  // first commit kept
  EXPECT_EQ(tolerant.generation(), 1u);
  // The repair truncated the torn bytes away.
  EXPECT_EQ(read_file_bytes(dir.file("journal.bin")).size(), complete_size);
}

TEST(FileStoreCorruption, BitFlippedJournalFrameFailsClosed) {
  TempDir dir("bitflip");
  {
    FileStore s(dir.str(), test_key(), fast_options());
    Transaction tx;
    tx.put("k", to_bytes("genuine value"));
    ASSERT_TRUE(s.commit(tx).ok());
  }
  flip_byte(dir.file("journal.bin"), 20);  // inside the sealed body
  FileStore r(dir.str(), test_key(), fast_options());
  EXPECT_EQ(r.load().code(), StatusCode::kStoreSealBroken);
}

TEST(FileStoreCorruption, BitFlippedSnapshotFailsClosed) {
  TempDir dir("snapflip");
  {
    FileStore s(dir.str(), test_key(), fast_options());
    Transaction tx;
    tx.put("k", to_bytes("v"));
    ASSERT_TRUE(s.commit(tx).ok());
    ASSERT_TRUE(s.compact().ok());
  }
  flip_byte(dir.file("snapshot.bin"), 12);
  FileStore r(dir.str(), test_key(), fast_options());
  EXPECT_EQ(r.load().code(), StatusCode::kStoreSealBroken);
}

TEST(FileStoreCorruption, WrongStorageKeyFailsClosed) {
  TempDir dir("wrongkey");
  {
    FileStore s(dir.str(), test_key(), fast_options());
    Transaction tx;
    tx.put("k", to_bytes("v"));
    ASSERT_TRUE(s.commit(tx).ok());
  }
  FileStore other(dir.str(), store::derive_storage_key(to_bytes("other")),
                  fast_options());
  EXPECT_EQ(other.load().code(), StatusCode::kStoreSealBroken);
}

TEST(FileStoreCorruption, StaleSnapshotReplayDetected) {
  TempDir dir("stale");
  FileStore s(dir.str(), test_key(), fast_options());
  ASSERT_TRUE(s.load().ok());
  Transaction tx;
  tx.put("count", to_bytes("3 uses left"));
  ASSERT_TRUE(s.commit(tx).ok());
  ASSERT_TRUE(s.compact().ok());

  // An attacker (or a backup restore) squirrels away the current image...
  Bytes old_snapshot = read_file_bytes(dir.file("snapshot.bin"));
  Bytes old_journal = read_file_bytes(dir.file("journal.bin"));

  // ...the device legitimately burns more state...
  for (int i = 2; i >= 0; --i) {
    Transaction burn;
    burn.put("count", to_bytes(std::to_string(i) + " uses left"));
    ASSERT_TRUE(s.commit(burn).ok());
  }

  // ...and the old image is replayed. The monotonic counter (hardware,
  // not replayable) exposes the rollback.
  write_file_bytes(dir.file("snapshot.bin"), old_snapshot);
  write_file_bytes(dir.file("journal.bin"), old_journal);
  FileStore r(dir.str(), test_key(), fast_options());
  EXPECT_EQ(r.load().code(), StatusCode::kStoreRollback);
}

TEST(FileStoreCorruption, MissingCounterDetected) {
  TempDir dir("noctr");
  {
    FileStore s(dir.str(), test_key(), fast_options());
    Transaction tx;
    tx.put("k", to_bytes("v"));
    ASSERT_TRUE(s.commit(tx).ok());
  }
  std::filesystem::remove(dir.file("counter.bin"));
  FileStore r(dir.str(), test_key(), fast_options());
  EXPECT_EQ(r.load().code(), StatusCode::kStoreRollback);
}

TEST(FileStoreCorruption, TruncatedCounterIsCorrupt) {
  TempDir dir("shortctr");
  {
    FileStore s(dir.str(), test_key(), fast_options());
    Transaction tx;
    tx.put("k", to_bytes("v"));
    ASSERT_TRUE(s.commit(tx).ok());
  }
  truncate_by(dir.file("counter.bin"), 3);
  FileStore r(dir.str(), test_key(), fast_options());
  EXPECT_EQ(r.load().code(), StatusCode::kStoreCorrupt);
}

// ---------------------------------------------------------------------------
// Byte-accurate power-loss atomicity
// ---------------------------------------------------------------------------

TEST(FileStoreCrash, PowerLossAtEveryByteOffsetIsAtomic) {
  // Measure the on-disk size of the victim frame once.
  std::size_t frame_size = 0;
  {
    TempDir dir("measure");
    FileStore s(dir.str(), test_key(), fast_options());
    ASSERT_TRUE(s.load().ok());
    Transaction base;
    base.put("st/ro", to_bytes("budget=3"));
    ASSERT_TRUE(s.commit(base).ok());
    const std::size_t before = s.journal_bytes();
    Transaction tx;
    tx.put("st/ro", to_bytes("budget=2")).put("extra", to_bytes("rec"));
    ASSERT_TRUE(s.commit(tx).ok());
    frame_size = s.journal_bytes() - before;
  }
  ASSERT_GT(frame_size, 30u);

  // Kill the append at every byte offset inside the frame: the reloaded
  // store must always hold EXACTLY the pre-commit state — never a
  // partial transaction, never the complete one (its commit never
  // returned), and never a crash.
  for (std::size_t cut = 0; cut < frame_size; ++cut) {
    TempDir dir("cut" + std::to_string(cut));
    FileStore s(dir.str(), test_key(), fast_options());
    ASSERT_TRUE(s.load().ok());
    Transaction base;
    base.put("st/ro", to_bytes("budget=3"));
    ASSERT_TRUE(s.commit(base).ok());

    s.set_journal_fault_after(cut);
    Transaction tx;
    tx.put("st/ro", to_bytes("budget=2")).put("extra", to_bytes("rec"));
    ASSERT_EQ(s.commit(tx).code(), StatusCode::kStoreFailure) << cut;

    FileStore::Options recover = fast_options();
    recover.recover_torn_tail = true;
    FileStore r(dir.str(), test_key(), recover);
    auto loaded = r.load();
    ASSERT_TRUE(loaded.ok()) << "cut=" << cut << ": " << loaded.describe();
    auto m = as_map(*loaded);
    ASSERT_EQ(m.size(), 1u) << cut;
    EXPECT_EQ(m.at("st/ro"), to_bytes("budget=3")) << cut;
    EXPECT_EQ(r.generation(), 1u) << cut;
  }
}

// ---------------------------------------------------------------------------
// Store-backed DRM Agent: the crash-safety contract end to end
// ---------------------------------------------------------------------------

constexpr std::uint64_t kNow = 1100000000;
const pki::Validity kValidity{kNow - 86400, kNow + 365 * 86400};

class StoreBacked : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<DeterministicRng>(0x57E);
    ca_ = std::make_unique<pki::CertificationAuthority>("CMLA Root", 1024,
                                                        kValidity, *rng_);
    ci_ = std::make_unique<ci::ContentIssuer>(
        "content.example", provider::plain_provider(), *rng_);
    ri_ = std::make_unique<ri::RightsIssuer>(
        "ri.example", "http://ri.example/roap", *ca_, kValidity,
        provider::plain_provider(), *rng_);
    device_ = std::make_unique<DrmAgent>("device-01", ca_->root_certificate(),
                                         provider::plain_provider(), *rng_);
    device_->provision(
        ca_->issue("device-01", device_->public_key(), kValidity, *rng_));
    transport_ = std::make_unique<roap::InProcessTransport>(*ri_, kNow);
  }

  roap::InProcessTransport& tx() { return *transport_; }

  dcf::Dcf setup_content(const std::string& tag, std::uint32_t count_limit,
                         bool domain_ro = false) {
    content_ = rng_->bytes(1500);
    dcf::Headers h;
    h.content_type = "audio/mpeg";
    h.content_id = "cid:" + tag + "@content.example";
    h.rights_issuer_url = ri_->url();
    dcf::Dcf dcf = ci_->package(h, content_);

    ri::LicenseOffer offer;
    offer.ro_id = "ro:" + tag;
    offer.content_id = h.content_id;
    offer.dcf_hash = dcf.hash();
    rel::Permission play;
    play.type = rel::PermissionType::kPlay;
    if (count_limit > 0) play.constraint.count = count_limit;
    offer.permissions = {play};
    offer.kcek = *ci_->kcek_for(h.content_id);
    if (domain_ro) {
      offer.domain_ro = true;
      offer.domain_id = "domain:home";
      ri_->create_domain(offer.domain_id);
    }
    ri_->add_offer(offer);
    return dcf;
  }

  /// Registers, acquires, and installs ro:<tag> on device_.
  void provision_ro(const std::string& tag) {
    ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
    auto acq = device_->acquire_ro(tx(), "ri.example", "ro:" + tag, kNow);
    ASSERT_EQ(acq, AgentStatus::kOk);
    ASSERT_EQ(device_->install_ro(*acq, kNow), AgentStatus::kOk);
  }

  Bytes agent_storage_key() const {
    return store::derive_storage_key(device_->device_key());
  }

  std::unique_ptr<DeterministicRng> rng_;
  std::unique_ptr<pki::CertificationAuthority> ca_;
  std::unique_ptr<ci::ContentIssuer> ci_;
  std::unique_ptr<ri::RightsIssuer> ri_;
  std::unique_ptr<DrmAgent> device_;
  std::unique_ptr<roap::InProcessTransport> transport_;
  Bytes content_;
};

TEST_F(StoreBacked, EveryGrantCommitsBeforeTheSessionReturns) {
  TempDir dir("burncommit");
  dcf::Dcf dcf = setup_content("burn", 5);
  FileStore fs(dir.str(), agent_storage_key(), fast_options());
  ASSERT_TRUE(device_->bind_store(fs).ok());
  provision_ro("burn");

  const std::uint64_t before = fs.generation();
  agent::ContentSession s =
      device_->open_content(dcf, rel::PermissionType::kPlay, kNow);
  ASSERT_TRUE(s.ok());
  // The burn was durable before we ever saw the session.
  EXPECT_EQ(fs.generation(), before + 1);

  // An independent reader of the same directory already sees it.
  FileStore other(dir.str(), agent_storage_key(), fast_options());
  auto reboot = DrmAgent::from_store(other, device_->device_key(),
                                     ca_->root_certificate(),
                                     provider::plain_provider(), *rng_);
  ASSERT_TRUE(reboot.ok()) << reboot.describe();
  EXPECT_EQ(*reboot->remaining_count("ro:burn", rel::PermissionType::kPlay),
            4u);
}

TEST_F(StoreBacked, AgentStateSurvivesRebootViaFromStore) {
  TempDir dir("reboot");
  dcf::Dcf dcf = setup_content("persist", 3);
  FileStore fs(dir.str(), agent_storage_key(), fast_options());
  ASSERT_TRUE(device_->bind_store(fs).ok());
  provision_ro("persist");
  ASSERT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);

  // Reboot: identity, RI context, RO, and the burned count all come back
  // from the sealed files alone (plus the hardware-held K_DEV).
  FileStore fs2(dir.str(), agent_storage_key(), fast_options());
  auto rebooted = DrmAgent::from_store(fs2, device_->device_key(),
                                       ca_->root_certificate(),
                                       provider::plain_provider(), *rng_);
  ASSERT_TRUE(rebooted.ok()) << rebooted.describe();
  EXPECT_EQ(rebooted->device_id(), "device-01");
  EXPECT_TRUE(rebooted->is_provisioned());
  EXPECT_TRUE(rebooted->has_ri_context("ri.example"));
  EXPECT_EQ(
      *rebooted->remaining_count("ro:persist", rel::PermissionType::kPlay),
      2u);
  // ...and keeps consuming and speaking ROAP with the restored keys.
  EXPECT_EQ(rebooted->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
  auto acq2 = rebooted->acquire_ro(tx(), "ri.example", "ro:persist", kNow);
  EXPECT_EQ(acq2, AgentStatus::kOk);
}

TEST_F(StoreBacked, CrashBetweenGrantAndCommitNeverRefunds) {
  // Kill the store at several byte offsets inside the burn commit. In
  // every case: the session is refused (the grant was never delivered),
  // and a reloaded agent sees exactly the previously committed burns —
  // the delivered grant count can never go backwards.
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, std::size_t{17},
                          std::size_t{60}, std::size_t{120}}) {
    TempDir dir("crash" + std::to_string(cut));
    dcf::Dcf dcf = setup_content("crash" + std::to_string(cut), 5);
    FileStore fs(dir.str(), agent_storage_key(), fast_options());
    ASSERT_TRUE(device_->bind_store(fs).ok());
    provision_ro("crash" + std::to_string(cut));
    const std::string ro_id = "ro:crash" + std::to_string(cut);

    // Two delivered (committed) grants.
    ASSERT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
              AgentStatus::kOk);
    ASSERT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
              AgentStatus::kOk);

    // Power loss inside the third burn's commit: open_content must
    // refuse (fail closed) and revert its RAM burn.
    fs.set_journal_fault_after(cut);
    agent::ContentSession s =
        device_->open_content(dcf, rel::PermissionType::kPlay, kNow);
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.status(), StatusCode::kStoreFailure);
    EXPECT_EQ(*device_->remaining_count(ro_id, rel::PermissionType::kPlay),
              3u);

    // Reboot off the torn medium: both delivered grants stay burned.
    FileStore::Options recover = fast_options();
    recover.recover_torn_tail = true;
    FileStore fs2(dir.str(), agent_storage_key(), recover);
    auto rebooted = DrmAgent::from_store(fs2, device_->device_key(),
                                         ca_->root_certificate(),
                                         provider::plain_provider(), *rng_);
    ASSERT_TRUE(rebooted.ok()) << "cut=" << cut << ": "
                               << rebooted.describe();
    EXPECT_EQ(
        *rebooted->remaining_count(ro_id, rel::PermissionType::kPlay), 3u)
        << "cut=" << cut;

    // Fresh fixture state for the next offset (device_ is rebuilt).
    SetUp();
  }
}

TEST_F(StoreBacked, CommitFailureFailsClosedAndRollsBackRam) {
  MemoryStore ms;
  dcf::Dcf dcf = setup_content("memfail", 2);
  ASSERT_TRUE(device_->bind_store(ms).ok());
  provision_ro("memfail");

  ms.fail_next_commits(1);
  agent::ContentSession s =
      device_->open_content(dcf, rel::PermissionType::kPlay, kNow);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status(), StatusCode::kStoreFailure);
  // The REL verdict itself was a grant — storage is what refused.
  EXPECT_EQ(s.decision(), rel::Decision::kGranted);
  EXPECT_EQ(*device_->remaining_count("ro:memfail",
                                      rel::PermissionType::kPlay),
            2u);

  // With the store healthy again the full budget is still available.
  EXPECT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
  EXPECT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
  EXPECT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kPermissionDenied);
}

TEST_F(StoreBacked, RewindNeverSurvivesReloadAsUnburnedGrant) {
  TempDir dir("rewind");
  dcf::Dcf dcf = setup_content("rewind", 2);
  FileStore fs(dir.str(), agent_storage_key(), fast_options());
  ASSERT_TRUE(device_->bind_store(fs).ok());
  provision_ro("rewind");

  agent::ContentSession s =
      device_->open_content(dcf, rel::PermissionType::kPlay, kNow);
  ASSERT_TRUE(s.ok());
  Bytes chunk(257);
  (void)s.read(std::span<std::uint8_t>(chunk.data(), chunk.size()));
  s.rewind();  // replay within the session: no new burn...

  // ...and mid-session, with the rewound session still alive, a reload
  // of the agent state sees the grant burned — rewind is RAM-only replay
  // of an already-durable burn, never a resurrectable un-burned grant.
  FileStore fs2(dir.str(), agent_storage_key(), fast_options());
  auto rebooted = DrmAgent::from_store(fs2, device_->device_key(),
                                       ca_->root_certificate(),
                                       provider::plain_provider(), *rng_);
  ASSERT_TRUE(rebooted.ok()) << rebooted.describe();
  EXPECT_EQ(
      *rebooted->remaining_count("ro:rewind", rel::PermissionType::kPlay),
      1u);

  // The reloaded agent burns (and commits) its own access; the original
  // session keeps replaying its one grant untouched.
  EXPECT_EQ(rebooted->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
  s.rewind();
  EXPECT_EQ(s.read_all(), content_);
}

TEST_F(StoreBacked, TamperedStoreRejectedOnReboot) {
  TempDir dir("tamper");
  dcf::Dcf dcf = setup_content("tamper", 3);
  FileStore fs(dir.str(), agent_storage_key(), fast_options());
  ASSERT_TRUE(device_->bind_store(fs).ok());
  provision_ro("tamper");
  ASSERT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);

  flip_byte(dir.file("journal.bin"), 30);
  FileStore fs2(dir.str(), agent_storage_key(), fast_options());
  auto rebooted = DrmAgent::from_store(fs2, device_->device_key(),
                                       ca_->root_certificate(),
                                       provider::plain_provider(), *rng_);
  EXPECT_EQ(rebooted.code(), StatusCode::kStoreSealBroken);
}

TEST_F(StoreBacked, StaleStoreImageRejectedOnReboot) {
  TempDir dir("rollback");
  dcf::Dcf dcf = setup_content("rollback", 3);
  FileStore fs(dir.str(), agent_storage_key(), fast_options());
  ASSERT_TRUE(device_->bind_store(fs).ok());
  provision_ro("rollback");
  ASSERT_TRUE(fs.compact().ok());

  // Save the image while 3 plays remain, burn them all, restore it.
  Bytes snapshot = read_file_bytes(dir.file("snapshot.bin"));
  Bytes journal = read_file_bytes(dir.file("journal.bin"));
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
              AgentStatus::kOk);
  }
  ASSERT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kPermissionDenied);
  write_file_bytes(dir.file("snapshot.bin"), snapshot);
  write_file_bytes(dir.file("journal.bin"), journal);

  FileStore fs2(dir.str(), agent_storage_key(), fast_options());
  auto rebooted = DrmAgent::from_store(fs2, device_->device_key(),
                                       ca_->root_certificate(),
                                       provider::plain_provider(), *rng_);
  EXPECT_EQ(rebooted.code(), StatusCode::kStoreRollback);
}

TEST_F(StoreBacked, BindSeedsExistingStateIntoAnEmptyStore) {
  TempDir dir("seed");
  dcf::Dcf dcf = setup_content("seed", 4);
  provision_ro("seed");  // unbound: RAM only
  ASSERT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);

  FileStore fs(dir.str(), agent_storage_key(), fast_options());
  ASSERT_TRUE(device_->bind_store(fs).ok());  // seeds the full image

  FileStore fs2(dir.str(), agent_storage_key(), fast_options());
  auto rebooted = DrmAgent::from_store(fs2, device_->device_key(),
                                       ca_->root_certificate(),
                                       provider::plain_provider(), *rng_);
  ASSERT_TRUE(rebooted.ok()) << rebooted.describe();
  EXPECT_EQ(*rebooted->remaining_count("ro:seed", rel::PermissionType::kPlay),
            3u);
}

TEST_F(StoreBacked, ImportCommitsThroughBoundStore) {
  TempDir dir("import");
  dcf::Dcf dcf = setup_content("import", 3);
  provision_ro("import");
  ASSERT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
  Bytes image = device_->export_state();

  // A store-backed blank agent imports the image; the store must hold
  // the imported state (full replacement), provable by rebooting off it.
  // The seal key is the backend's property, fixed at construction — it
  // stays the blank agent's even though import replaces K_DEV.
  DrmAgent blank("blank", ca_->root_certificate(),
                 provider::plain_provider(), *rng_, 512);
  const Bytes seal = store::derive_storage_key(blank.device_key());
  FileStore fs(dir.str(), seal, fast_options());
  ASSERT_TRUE(blank.bind_store(fs).ok());
  blank.import_state(image);
  EXPECT_EQ(blank.device_id(), "device-01");

  FileStore fs2(dir.str(), seal, fast_options());
  auto rebooted = DrmAgent::from_store(fs2, blank.device_key(),
                                       ca_->root_certificate(),
                                       provider::plain_provider(), *rng_);
  ASSERT_TRUE(rebooted.ok()) << rebooted.describe();
  EXPECT_EQ(
      *rebooted->remaining_count("ro:import", rel::PermissionType::kPlay),
      2u);
  EXPECT_EQ(rebooted->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
}

TEST_F(StoreBacked, ReplacedRoGetsFreshDurableState) {
  TempDir dir("replace");
  dcf::Dcf dcf = setup_content("replace", 2);
  FileStore fs(dir.str(), agent_storage_key(), fast_options());
  ASSERT_TRUE(device_->bind_store(fs).ok());
  provision_ro("replace");
  ASSERT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
  ASSERT_EQ(*device_->remaining_count("ro:replace",
                                      rel::PermissionType::kPlay),
            1u);

  // Re-acquiring and re-installing the same RO resets its budgets; the
  // durable image must agree after a reboot (no resurrection of the old
  // burn against the new license).
  auto acq = device_->acquire_ro(tx(), "ri.example", "ro:replace", kNow);
  ASSERT_EQ(acq, AgentStatus::kOk);
  ASSERT_EQ(device_->install_ro(*acq, kNow), AgentStatus::kOk);
  EXPECT_EQ(*device_->remaining_count("ro:replace",
                                      rel::PermissionType::kPlay),
            2u);

  FileStore fs2(dir.str(), agent_storage_key(), fast_options());
  auto rebooted = DrmAgent::from_store(fs2, device_->device_key(),
                                       ca_->root_certificate(),
                                       provider::plain_provider(), *rng_);
  ASSERT_TRUE(rebooted.ok()) << rebooted.describe();
  EXPECT_EQ(
      *rebooted->remaining_count("ro:replace", rel::PermissionType::kPlay),
      2u);
}

TEST_F(StoreBacked, LeaveDomainErasesDurableRecords) {
  TempDir dir("leave");
  dcf::Dcf dcf = setup_content("leave", 0, /*domain_ro=*/true);
  FileStore fs(dir.str(), agent_storage_key(), fast_options());
  ASSERT_TRUE(device_->bind_store(fs).ok());
  ASSERT_EQ(device_->register_with(tx(), kNow), AgentStatus::kOk);
  ASSERT_EQ(device_->join_domain(tx(), "ri.example", "domain:home", kNow),
            AgentStatus::kOk);
  auto acq = device_->acquire_ro(tx(), "ri.example", "ro:leave", kNow);
  ASSERT_EQ(acq, AgentStatus::kOk);
  ASSERT_EQ(device_->install_ro(*acq, kNow), AgentStatus::kOk);
  ASSERT_EQ(device_->leave_domain(tx(), "ri.example", "domain:home", kNow),
            AgentStatus::kOk);

  FileStore fs2(dir.str(), agent_storage_key(), fast_options());
  auto rebooted = DrmAgent::from_store(fs2, device_->device_key(),
                                       ca_->root_certificate(),
                                       provider::plain_provider(), *rng_);
  ASSERT_TRUE(rebooted.ok()) << rebooted.describe();
  EXPECT_FALSE(rebooted->has_domain_key("domain:home"));
  EXPECT_EQ(rebooted->installed_count(), 0u);
  EXPECT_EQ(rebooted->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kNotInstalled);
}

TEST_F(StoreBacked, DeniedAccessesCommitNothing) {
  TempDir dir("deny");
  dcf::Dcf dcf = setup_content("deny", 1);
  FileStore fs(dir.str(), agent_storage_key(), fast_options());
  ASSERT_TRUE(device_->bind_store(fs).ok());
  provision_ro("deny");
  ASSERT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);

  // Exhausted budget: the denial must not touch the store (no commit,
  // no generation bump) — only grants burn, and only grants commit.
  const std::uint64_t generation = fs.generation();
  agent::ContentSession s =
      device_->open_content(dcf, rel::PermissionType::kPlay, kNow);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.decision(), rel::Decision::kCountExhausted);
  EXPECT_EQ(fs.generation(), generation);
}

TEST_F(StoreBacked, BindRefusesForeignStore) {
  // An RI-shaped store (records but no "id") must not be wiped and
  // reseeded by an agent bind — that would destroy the other entity's
  // durable state.
  MemoryStore ri_shaped;
  Transaction tx;
  tx.put("meta", Bytes(8, 0));
  ASSERT_TRUE(ri_shaped.commit(tx).ok());
  EXPECT_EQ(device_->bind_store(ri_shaped).code(),
            StatusCode::kStoreCorrupt);
  EXPECT_EQ(device_->bound_store(), nullptr);
  EXPECT_EQ(ri_shaped.record_count(), 1u);  // untouched

  // Symmetrically, the RI refuses an agent-shaped store (no "meta").
  MemoryStore agent_shaped;
  Transaction tx2;
  tx2.put("sess/zzz", to_bytes("x"));
  ASSERT_TRUE(agent_shaped.commit(tx2).ok());
  EXPECT_EQ(ri_->bind_store(agent_shaped).code(),
            StatusCode::kStoreCorrupt);
  EXPECT_EQ(agent_shaped.record_count(), 1u);
}

TEST_F(StoreBacked, MalformedImageRejectedWithoutGuttingAgent) {
  dcf::Dcf dcf = setup_content("gut", 3);
  provision_ro("gut");  // device_ unbound: RAM state only

  // A store whose image has an identity but also a record the agent
  // cannot place: bind must fail closed AND leave the live state alone.
  MemoryStore ms;
  DrmAgent other("other", ca_->root_certificate(),
                 provider::plain_provider(), *rng_, 512);
  ASSERT_TRUE(other.bind_store(ms).ok());
  Transaction tx;
  tx.put("bogus/x", to_bytes("?"));
  ASSERT_TRUE(ms.commit(tx).ok());

  EXPECT_EQ(device_->bind_store(ms).code(), StatusCode::kStoreCorrupt);
  EXPECT_EQ(device_->bound_store(), nullptr);
  EXPECT_EQ(device_->device_id(), "device-01");
  EXPECT_EQ(device_->installed_count(), 1u);
  EXPECT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
}

TEST_F(StoreBacked, RefusedImportLeavesAgentAndStoreUntouched) {
  dcf::Dcf dcf = setup_content("impfail", 3);
  provision_ro("impfail");
  ASSERT_EQ(device_->consume(dcf, rel::PermissionType::kPlay, kNow).status,
            AgentStatus::kOk);
  Bytes image = device_->export_state();

  MemoryStore ms;
  DrmAgent blank("blank", ca_->root_certificate(),
                 provider::plain_provider(), *rng_, 512);
  ASSERT_TRUE(blank.bind_store(ms).ok());

  // The store refuses the imported image: BOTH the live state and the
  // store must stay at the predecessor's image (adopt-before-commit
  // would let the next reboot roll back the imported burns).
  ms.fail_next_commits(1);
  EXPECT_THROW(blank.import_state(image), Error);
  EXPECT_EQ(blank.device_id(), "blank");
  EXPECT_EQ(blank.installed_count(), 0u);
  auto rebooted = DrmAgent::from_store(ms, blank.device_key(),
                                       ca_->root_certificate(),
                                       provider::plain_provider(), *rng_);
  ASSERT_TRUE(rebooted.ok()) << rebooted.describe();
  EXPECT_EQ(rebooted->device_id(), "blank");

  // With the store healthy the same import goes through everywhere.
  blank.import_state(image);
  EXPECT_EQ(blank.device_id(), "device-01");
  EXPECT_EQ(
      *blank.remaining_count("ro:impfail", rel::PermissionType::kPlay), 2u);
}

// ---------------------------------------------------------------------------
// Rights Issuer replay/registration state on the same interface
// ---------------------------------------------------------------------------

using RiPersistence = StoreBacked;

TEST_F(RiPersistence, HandshakeSurvivesRiRestart) {
  TempDir dir("ri");
  Bytes ri_key = store::derive_storage_key(to_bytes("ri-secret"));
  FileStore ri_store(dir.str(), ri_key, fast_options());
  ASSERT_TRUE(ri_->bind_store(ri_store).ok());

  // Passes 1-2 against the first RI process...
  agent::RegistrationSession reg(*device_, kNow);
  auto hello = reg.hello();
  ASSERT_EQ(hello, AgentStatus::kOk);
  roap::Envelope ri_hello = tx().request(*hello);
  auto req = reg.request(ri_hello);
  ASSERT_EQ(req, AgentStatus::kOk);

  // ...the RI "crashes" and restarts from its store (fresh process =
  // fresh object bound to the same directory; identity re-provisioned
  // from the same CA)...
  ri::RightsIssuer ri2("ri.example", "http://ri.example/roap", *ca_,
                       kValidity, provider::plain_provider(), *rng_);
  FileStore ri_store2(dir.str(), ri_key, fast_options());
  ASSERT_TRUE(ri2.bind_store(ri_store2).ok());
  EXPECT_EQ(ri2.pending_session_count(), 1u);  // pending nonce survived

  // ...and passes 3-4 complete against the restarted RI.
  roap::InProcessTransport tx2(ri2, kNow);
  roap::Envelope resp = tx2.request(*req);
  EXPECT_EQ(reg.conclude(resp), AgentStatus::kOk);
  EXPECT_TRUE(device_->has_ri_context("ri.example"));
  EXPECT_TRUE(ri2.is_registered("device-01"));
}

TEST_F(RiPersistence, ConsumedSessionStaysConsumedAcrossRestart) {
  TempDir dir("rireplay");
  Bytes ri_key = store::derive_storage_key(to_bytes("ri-secret"));
  FileStore ri_store(dir.str(), ri_key, fast_options());
  ASSERT_TRUE(ri_->bind_store(ri_store).ok());

  agent::RegistrationSession reg(*device_, kNow);
  auto hello = reg.hello();
  ASSERT_EQ(hello, AgentStatus::kOk);
  roap::Envelope ri_hello = tx().request(*hello);
  auto req = reg.request(ri_hello);
  ASSERT_EQ(req, AgentStatus::kOk);
  roap::Envelope resp = tx().request(*req);
  ASSERT_EQ(reg.conclude(resp), AgentStatus::kOk);  // session consumed

  // Replaying the captured RegistrationRequest against a restarted RI
  // must find the one-shot session consumed, not resurrected.
  ri::RightsIssuer ri2("ri.example", "http://ri.example/roap", *ca_,
                       kValidity, provider::plain_provider(), *rng_);
  FileStore ri_store2(dir.str(), ri_key, fast_options());
  ASSERT_TRUE(ri2.bind_store(ri_store2).ok());
  EXPECT_EQ(ri2.pending_session_count(), 0u);
  EXPECT_TRUE(ri2.is_registered("device-01"));  // admission survived

  roap::InProcessTransport tx2(ri2, kNow);
  roap::Envelope replayed = tx2.request(*req);
  // The restarted RI's replay cache is RAM-only and therefore empty, so
  // the duplicate reaches the handler, finds its one-shot session
  // consumed, and answers with the clean restart-from-DeviceHello signal
  // (kSessionExpired, not a kAbort refusal — the device did nothing
  // wrong).
  EXPECT_EQ(replayed.open<roap::RegistrationResponse>().status,
            roap::Status::kSessionExpired);
}

}  // namespace
}  // namespace omadrm
