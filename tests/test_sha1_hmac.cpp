// Known-answer and property tests for SHA-1 and HMAC-SHA1.
#include <gtest/gtest.h>

#include <string>

#include "common/error.h"
#include "common/hex.h"
#include "common/random.h"
#include "crypto/hmac.h"
#include "crypto/sha1.h"

namespace omadrm::crypto {
namespace {

TEST(Sha1, Fips180Vectors) {
  EXPECT_EQ(to_hex(Sha1::hash(to_bytes(""))),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(to_hex(Sha1::hash(to_bytes("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(to_hex(Sha1::hash(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(to_bytes(chunk));
  EXPECT_EQ(to_hex(h.finish()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, StreamingEqualsOneShot) {
  DeterministicRng rng(1);
  Bytes data = rng.bytes(1000);
  for (std::size_t chunk : {1u, 7u, 63u, 64u, 65u, 128u, 999u}) {
    Sha1 h;
    for (std::size_t off = 0; off < data.size(); off += chunk) {
      std::size_t take = std::min(chunk, data.size() - off);
      h.update(ByteView(data).subspan(off, take));
    }
    EXPECT_EQ(h.finish(), Sha1::hash(data)) << "chunk=" << chunk;
  }
}

TEST(Sha1, BoundaryLengthsAroundBlockSize) {
  // Padding switches between one and two extra blocks at 56 bytes.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 127u}) {
    Bytes data(len, 0x5a);
    Sha1 a;
    a.update(data);
    EXPECT_EQ(a.finish(), Sha1::hash(data)) << "len=" << len;
  }
}

TEST(Sha1, ResetAllowsReuse) {
  Sha1 h;
  h.update(to_bytes("garbage"));
  h.reset();
  h.update(to_bytes("abc"));
  EXPECT_EQ(to_hex(h.finish()),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, UseAfterFinishThrows) {
  Sha1 h;
  h.update(to_bytes("x"));
  h.finish();
  EXPECT_THROW(h.update(to_bytes("y")), Error);
  EXPECT_THROW(h.finish(), Error);
}

TEST(Sha1, DifferentInputsDifferentDigests) {
  EXPECT_NE(Sha1::hash(to_bytes("a")), Sha1::hash(to_bytes("b")));
  EXPECT_NE(Sha1::hash(Bytes{0x00}), Sha1::hash(Bytes{}));
}

// RFC 2202 HMAC-SHA1 test cases.
TEST(HmacSha1, Rfc2202Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(HmacSha1::mac(key, to_bytes("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacSha1, Rfc2202Case2) {
  EXPECT_EQ(to_hex(HmacSha1::mac(to_bytes("Jefe"),
                                 to_bytes("what do ya want for nothing?"))),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(HmacSha1, Rfc2202Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  EXPECT_EQ(to_hex(HmacSha1::mac(key, data)),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
}

TEST(HmacSha1, LongKeyIsHashedFirst) {
  // RFC 2202 case 6: 80-byte key exceeds the SHA-1 block size.
  Bytes key(80, 0xaa);
  EXPECT_EQ(to_hex(HmacSha1::mac(
                key, to_bytes("Test Using Larger Than Block-Size Key - "
                              "Hash Key First"))),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

TEST(HmacSha1, StreamingEqualsOneShot) {
  DeterministicRng rng(2);
  Bytes key = rng.bytes(16);
  Bytes data = rng.bytes(500);
  HmacSha1 h(key);
  h.update(ByteView(data).subspan(0, 100));
  h.update(ByteView(data).subspan(100));
  EXPECT_EQ(h.finish(), HmacSha1::mac(key, data));
}

TEST(HmacSha1, ResetRestartsWithSameKey) {
  Bytes key(20, 0x0b);
  HmacSha1 h(key);
  h.update(to_bytes("junk"));
  h.finish();
  h.reset();
  h.update(to_bytes("Hi There"));
  EXPECT_EQ(to_hex(h.finish()),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacSha1, VerifyAcceptsAndRejects) {
  Bytes key = to_bytes("secret");
  Bytes msg = to_bytes("payload");
  Bytes tag = HmacSha1::mac(key, msg);
  EXPECT_TRUE(HmacSha1::verify(key, msg, tag));
  Bytes bad_tag = tag;
  bad_tag[0] ^= 1;
  EXPECT_FALSE(HmacSha1::verify(key, msg, bad_tag));
  EXPECT_FALSE(HmacSha1::verify(to_bytes("wrong"), msg, tag));
  EXPECT_FALSE(HmacSha1::verify(key, to_bytes("other"), tag));
  EXPECT_FALSE(HmacSha1::verify(key, msg, ByteView(tag).subspan(1)));
}

TEST(HmacSha1, KeySensitivity) {
  Bytes msg = to_bytes("same message");
  EXPECT_NE(HmacSha1::mac(to_bytes("k1"), msg),
            HmacSha1::mac(to_bytes("k2"), msg));
}

}  // namespace
}  // namespace omadrm::crypto
