// Tests for the streaming content path: the fused CBC cores and
// CbcDecryptStream (crypto layer), and ContentSession / open_content
// (agent layer) — equivalence with the one-shot path across sizes and
// chunk granularities, padding/truncation rejection, and session
// reuse/reset semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "agent/drm_agent.h"
#include "ci/content_issuer.h"
#include "common/error.h"
#include "common/random.h"
#include "crypto/aes.h"
#include "crypto/modes.h"
#include "dcf/dcf.h"
#include "dcf/dcf_reader.h"
#include "pki/authority.h"
#include "provider/provider.h"
#include "ri/rights_issuer.h"
#include "roap/transport.h"

namespace omadrm {
namespace {

using crypto::Aes;
using crypto::CbcDecryptStream;

// ---------------------------------------------------------------------------
// Crypto layer: streaming vs one-shot equivalence
// ---------------------------------------------------------------------------

/// Drains `stream` with chunk sizes drawn from `rng` (including 1-byte
/// and unaligned chunks) and returns the concatenated plaintext.
Bytes drain_random_chunks(CbcDecryptStream& stream, DeterministicRng& rng) {
  static constexpr std::size_t kChunks[] = {1, 2, 3, 5, 7, 15, 16, 17,
                                            31, 33, 64, 333, 4096};
  Bytes out;
  Bytes buf(4096);
  for (;;) {
    const std::size_t want =
        kChunks[rng.bytes(1)[0] % (sizeof kChunks / sizeof kChunks[0])];
    const std::size_t n = stream.read(std::span(buf.data(), want));
    if (n == 0) break;
    out.insert(out.end(), buf.begin(),
               buf.begin() + static_cast<std::ptrdiff_t>(n));
  }
  EXPECT_TRUE(stream.done());
  return out;
}

TEST(CbcStream, MatchesOneShotAcrossSizesAndChunks) {
  DeterministicRng rng(0x57AE);
  const Bytes key = rng.bytes(16);
  const Bytes iv = rng.bytes(16);
  const Aes aes(key);

  // Payload sizes sweeping 0..3 blocks beyond several block boundaries,
  // plus every offset within a block near the origin.
  std::vector<std::size_t> sizes;
  for (std::size_t base : {std::size_t{0}, std::size_t{1024},
                           std::size_t{65536}}) {
    for (std::size_t delta = 0; delta <= 48;
         delta += (base == 0 ? 1 : 7)) {
      sizes.push_back(base + delta);
    }
  }

  for (std::size_t size : sizes) {
    const Bytes plaintext = rng.bytes(size);
    const Bytes ciphertext = crypto::aes_cbc_encrypt(key, iv, plaintext);
    const Bytes oneshot = crypto::aes_cbc_decrypt(key, iv, ciphertext);
    ASSERT_EQ(oneshot, plaintext) << "one-shot round trip, size " << size;

    CbcDecryptStream stream(aes, iv, ciphertext);
    EXPECT_EQ(drain_random_chunks(stream, rng), plaintext)
        << "streamed, size " << size;

    // rewind() replays the identical plaintext.
    stream.rewind();
    EXPECT_FALSE(size > 0 && stream.done());
    EXPECT_EQ(drain_random_chunks(stream, rng), plaintext)
        << "rewound, size " << size;
  }
}

TEST(CbcStream, SingleByteReads) {
  DeterministicRng rng(0x1B17);
  const Bytes key = rng.bytes(16);
  const Bytes iv = rng.bytes(16);
  const Bytes plaintext = rng.bytes(100);
  const Bytes ciphertext = crypto::aes_cbc_encrypt(key, iv, plaintext);
  const Aes aes(key);
  CbcDecryptStream stream(aes, iv, ciphertext);
  Bytes out;
  std::uint8_t byte;
  while (stream.read(std::span(&byte, 1)) == 1) out.push_back(byte);
  EXPECT_EQ(out, plaintext);
  EXPECT_EQ(stream.read(std::span(&byte, 1)), 0u);  // stays at EOF
}

TEST(CbcStream, EmptyReadIsANoOp) {
  DeterministicRng rng(0xE0);
  const Bytes key = rng.bytes(16);
  const Bytes iv = rng.bytes(16);
  const Bytes ciphertext = crypto::aes_cbc_encrypt(key, iv, rng.bytes(40));
  const Aes aes(key);
  CbcDecryptStream stream(aes, iv, ciphertext);
  EXPECT_EQ(stream.read(std::span<std::uint8_t>()), 0u);
  EXPECT_FALSE(stream.done());
  Bytes buf(64);
  EXPECT_EQ(stream.read(std::span(buf.data(), buf.size())), 40u);
}

TEST(CbcStream, RejectsBadLengthsAtConstruction) {
  DeterministicRng rng(0xBAD);
  const Bytes key = rng.bytes(16);
  const Bytes iv = rng.bytes(16);
  const Aes aes(key);
  EXPECT_THROW(CbcDecryptStream(aes, iv, Bytes{}), Error);
  EXPECT_THROW(CbcDecryptStream(aes, iv, Bytes(17, 0)), Error);
  // A truncated wire (one byte missing) is caught before any decryption.
  Bytes ciphertext = crypto::aes_cbc_encrypt(key, iv, rng.bytes(64));
  ciphertext.pop_back();
  EXPECT_THROW(CbcDecryptStream(aes, iv, ciphertext), Error);
  EXPECT_THROW(CbcDecryptStream(aes, Bytes(8, 0), Bytes(16, 0)), Error);
}

TEST(CbcStream, RejectsTamperedPaddingAtTheFinalBlock) {
  DeterministicRng rng(0x9AD);
  const Bytes key = rng.bytes(16);
  const Bytes iv = rng.bytes(16);
  const Aes aes(key);

  // Craft raw CBC ciphertexts over hand-padded buffers so the padding
  // byte is deterministic: pad value 0, pad value 17 (> block), and a
  // run that contradicts its own pad byte.
  const Bytes bad_tails[] = {
      Bytes{0x00},              // pad byte zero
      Bytes{0x11},              // pad byte 17 > block size
      Bytes{0x05, 0x02, 0x03},  // claims 3, bytes disagree
  };
  for (const Bytes& tail : bad_tails) {
    Bytes padded = rng.bytes(32 - tail.size());
    padded.insert(padded.end(), tail.begin(), tail.end());
    ASSERT_EQ(padded.size() % Aes::kBlockSize, 0u);
    Bytes ciphertext(padded.size());
    std::uint8_t chain[Aes::kBlockSize];
    std::memcpy(chain, iv.data(), Aes::kBlockSize);
    crypto::cbc_encrypt_blocks(aes, chain, padded.data(), ciphertext.data(),
                               padded.size() / Aes::kBlockSize);

    EXPECT_THROW((void)crypto::aes_cbc_decrypt(key, iv, ciphertext), Error);

    // The stream serves everything ahead of the final block, then throws
    // exactly when the padding must be resolved.
    CbcDecryptStream stream(aes, iv, ciphertext);
    Bytes buf(Aes::kBlockSize);
    EXPECT_THROW(
        {
          while (stream.read(std::span(buf.data(), buf.size())) > 0) {
          }
        },
        Error);
  }
}

TEST(CbcCores, EncryptIntoMatchesOneShotAndSplitRunsChain) {
  DeterministicRng rng(0xF0CC);
  const Bytes key = rng.bytes(16);
  const Bytes iv = rng.bytes(16);
  const Aes aes(key);
  for (std::size_t size : {0u, 1u, 16u, 17u, 4096u, 5000u}) {
    const Bytes plaintext = rng.bytes(size);
    Bytes via_into;
    crypto::aes_cbc_encrypt_into(aes, iv, plaintext, via_into);
    EXPECT_EQ(via_into, crypto::aes_cbc_encrypt(key, iv, plaintext));
    Bytes back;
    crypto::aes_cbc_decrypt_into(aes, iv, via_into, back);
    EXPECT_EQ(back, plaintext);
  }

  // A run processed as two fused calls equals one call: the chain value
  // carries across block runs on both directions.
  const Bytes padded = rng.bytes(160);  // 10 whole blocks, no padding here
  Bytes one(160), two(160);
  std::uint8_t chain_a[16], chain_b[16];
  std::memcpy(chain_a, iv.data(), 16);
  std::memcpy(chain_b, iv.data(), 16);
  crypto::cbc_encrypt_blocks(aes, chain_a, padded.data(), one.data(), 10);
  crypto::cbc_encrypt_blocks(aes, chain_b, padded.data(), two.data(), 3);
  crypto::cbc_encrypt_blocks(aes, chain_b, padded.data() + 48,
                             two.data() + 48, 7);
  EXPECT_EQ(one, two);
  EXPECT_EQ(std::memcmp(chain_a, chain_b, 16), 0);

  Bytes dec_one(160), dec_two(160);
  std::memcpy(chain_a, iv.data(), 16);
  std::memcpy(chain_b, iv.data(), 16);
  crypto::cbc_decrypt_blocks(aes, chain_a, one.data(), dec_one.data(), 10);
  crypto::cbc_decrypt_blocks(aes, chain_b, one.data(), dec_two.data(), 4);
  crypto::cbc_decrypt_blocks(aes, chain_b, one.data() + 64,
                             dec_two.data() + 64, 6);
  EXPECT_EQ(dec_one, padded);
  EXPECT_EQ(dec_two, padded);
  EXPECT_EQ(std::memcmp(chain_a, chain_b, 16), 0);
}

TEST(Pkcs7, UnpadLenMatchesUnpad) {
  Bytes data(32, 0xaa);
  data.back() = 4;
  for (std::size_t i = 28; i < 32; ++i) data[i] = 4;
  EXPECT_EQ(crypto::pkcs7_unpad_len(data, 16), 28u);
  EXPECT_EQ(crypto::pkcs7_unpad(data, 16).size(), 28u);
  data.back() = 0;
  EXPECT_THROW(crypto::pkcs7_unpad_len(data, 16), Error);
}

// ---------------------------------------------------------------------------
// Agent layer: ContentSession semantics
// ---------------------------------------------------------------------------

constexpr std::uint64_t kNow = 1100000000;

class ContentSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<DeterministicRng>(0xC0DE);
    validity_ = {kNow - 86400, kNow + 365 * 86400};
    ca_ = std::make_unique<pki::CertificationAuthority>("Root", 512,
                                                        validity_, *rng_);
    ci_ = std::make_unique<ci::ContentIssuer>(
        "ci", provider::plain_provider(), *rng_);
    ri_ = std::make_unique<ri::RightsIssuer>(
        "ri:cs", "http://ri/roap", *ca_, validity_,
        provider::plain_provider(), *rng_, nullptr, 512);
    device_ = std::make_unique<agent::DrmAgent>(
        "dev:cs", ca_->root_certificate(), provider::plain_provider(), *rng_,
        512);
    device_->provision(
        ca_->issue("dev:cs", device_->public_key(), validity_, *rng_));
    tx_ = std::make_unique<roap::InProcessTransport>(*ri_, kNow);
    ASSERT_TRUE(device_->register_with(*tx_, kNow).ok());
  }

  /// Packages `size` bytes, offers + acquires + installs an RO for it,
  /// and returns the container. `count_limit` 0 = unconstrained.
  dcf::Dcf install_content(const std::string& tag, std::size_t size,
                           std::uint32_t count_limit = 0) {
    content_ = rng_->bytes(size);
    dcf::Headers h;
    h.content_type = "audio/mpeg";
    h.content_id = "cid:" + tag;
    h.rights_issuer_url = ri_->url();
    dcf::Dcf dcf = ci_->package(h, content_);

    ri::LicenseOffer offer;
    offer.ro_id = "ro:" + tag;
    offer.content_id = h.content_id;
    offer.dcf_hash = dcf.hash();
    rel::Permission play;
    play.type = rel::PermissionType::kPlay;
    if (count_limit > 0) play.constraint.count = count_limit;
    offer.permissions = {play};
    offer.kcek = *ci_->kcek_for(h.content_id);
    ri_->add_offer(offer);

    auto acq = device_->acquire_ro(*tx_, "ri:cs", offer.ro_id, kNow);
    EXPECT_TRUE(acq.ok());
    EXPECT_EQ(device_->install_ro(*acq, kNow), agent::AgentStatus::kOk);
    return dcf;
  }

  std::unique_ptr<DeterministicRng> rng_;
  pki::Validity validity_;
  std::unique_ptr<pki::CertificationAuthority> ca_;
  std::unique_ptr<ci::ContentIssuer> ci_;
  std::unique_ptr<ri::RightsIssuer> ri_;
  std::unique_ptr<agent::DrmAgent> device_;
  std::unique_ptr<roap::InProcessTransport> tx_;
  Bytes content_;
};

TEST_F(ContentSessionTest, StreamedReadMatchesConsume) {
  dcf::Dcf dcf = install_content("a", 50000);
  agent::ConsumeResult one_shot =
      device_->consume(dcf, rel::PermissionType::kPlay, kNow);
  ASSERT_EQ(one_shot.status, agent::AgentStatus::kOk);
  ASSERT_EQ(one_shot.content, content_);

  agent::ContentSession s =
      device_->open_content(dcf, rel::PermissionType::kPlay, kNow);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.ro_id(), "ro:a");
  EXPECT_EQ(s.decision(), rel::Decision::kGranted);
  EXPECT_EQ(s.plaintext_size(), 50000u);

  Bytes streamed;
  Bytes chunk(777);  // deliberately unaligned
  std::size_t n;
  while ((n = s.read(std::span(chunk.data(), chunk.size()))) > 0) {
    streamed.insert(streamed.end(), chunk.begin(),
                    chunk.begin() + static_cast<std::ptrdiff_t>(n));
  }
  EXPECT_EQ(streamed, content_);
  EXPECT_EQ(s.bytes_read(), 50000u);
  EXPECT_EQ(s.bytes_remaining(), 0u);
  EXPECT_TRUE(s.ok());
}

TEST_F(ContentSessionTest, ReaderPathMatchesOwnedPath) {
  dcf::Dcf dcf = install_content("b", 12345);
  const Bytes wire = dcf.serialize();
  dcf::DcfReader reader = dcf::DcfReader::parse(wire);
  ASSERT_TRUE(
      std::equal(reader.hash().begin(), reader.hash().end(),
                 dcf.hash().begin(), dcf.hash().end()));

  agent::ContentSession s =
      device_->open_content(reader, rel::PermissionType::kPlay, kNow);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.read_all(), content_);
  EXPECT_TRUE(s.ok());
}

TEST_F(ContentSessionTest, RewindReplaysWithoutNewConsumption) {
  dcf::Dcf dcf = install_content("c", 4000, /*count_limit=*/2);

  agent::ContentSession s =
      device_->open_content(dcf, rel::PermissionType::kPlay, kNow);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.read_all(), content_);

  // Restarting the same granted access: no new REL consumption.
  s.rewind();
  EXPECT_EQ(s.bytes_read(), 0u);
  EXPECT_EQ(s.read_all(), content_);
  EXPECT_EQ(
      *device_->remaining_count("ro:c", rel::PermissionType::kPlay), 1u);

  // A new access is a new open; the budget drains open by open.
  agent::ContentSession s2 =
      device_->open_content(dcf, rel::PermissionType::kPlay, kNow + 1);
  ASSERT_TRUE(s2.ok());
  agent::ContentSession s3 =
      device_->open_content(dcf, rel::PermissionType::kPlay, kNow + 2);
  EXPECT_FALSE(s3.ok());
  EXPECT_EQ(s3.status(), agent::AgentStatus::kPermissionDenied);
  EXPECT_EQ(s3.decision(), rel::Decision::kCountExhausted);
  EXPECT_EQ(s3.read(std::span<std::uint8_t>()), 0u);
  Bytes buf(16);
  EXPECT_EQ(s3.read(std::span(buf.data(), buf.size())), 0u);
}

TEST_F(ContentSessionTest, MidStreamRewind) {
  dcf::Dcf dcf = install_content("d", 10000);
  agent::ContentSession s =
      device_->open_content(dcf, rel::PermissionType::kPlay, kNow);
  ASSERT_TRUE(s.ok());
  Bytes chunk(1000);
  ASSERT_EQ(s.read(std::span(chunk.data(), chunk.size())), 1000u);
  s.rewind();
  EXPECT_EQ(s.read_all(), content_);
}

TEST_F(ContentSessionTest, DeniedPermission) {
  dcf::Dcf dcf = install_content("e", 1000);

  // Wrong permission: the RO only grants play.
  agent::ContentSession denied =
      device_->open_content(dcf, rel::PermissionType::kPrint, kNow);
  EXPECT_FALSE(denied.ok());
  EXPECT_EQ(denied.status(), agent::AgentStatus::kPermissionDenied);
  EXPECT_EQ(denied.decision(), rel::Decision::kNoSuchPermission);
}

TEST_F(ContentSessionTest, TamperedContainerFailsBinding) {
  dcf::Dcf dcf = install_content("f", 2000);
  Bytes wire = dcf.serialize();
  wire[wire.size() / 2] ^= 1;  // flip one payload bit
  dcf::DcfReader tampered = dcf::DcfReader::parse(wire);
  agent::ContentSession s =
      device_->open_content(tampered, rel::PermissionType::kPlay, kNow);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status(), agent::AgentStatus::kDcfHashMismatch);
}

TEST_F(ContentSessionTest, SessionSurvivesCacheChurn) {
  dcf::Dcf dcf = install_content("g", 8192);
  agent::ContentSession s =
      device_->open_content(dcf, rel::PermissionType::kPlay, kNow);
  ASSERT_TRUE(s.ok());
  // The session pins its schedule; dropping the cache must not break it.
  device_->aes_context_cache().clear();
  EXPECT_EQ(s.read_all(), content_);
}

TEST_F(ContentSessionTest, NotInstalledContent) {
  Bytes content = rng_->bytes(100);
  dcf::Headers h;
  h.content_type = "audio/mpeg";
  h.content_id = "cid:never-licensed";
  h.rights_issuer_url = ri_->url();
  dcf::Dcf dcf = ci_->package(h, content);
  agent::ContentSession s =
      device_->open_content(dcf, rel::PermissionType::kPlay, kNow);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status(), agent::AgentStatus::kNotInstalled);
}

}  // namespace
}  // namespace omadrm
