// Unconnected Devices (paper §2.3): "devices that cannot directly connect
// to the RI (the so-called 'Unconnected Devices' like mobile mp3 players)".
//
// A portable player with no network runs the complete ROAP — registration,
// domain join, RO acquisition — with every message relayed as an opaque
// serialized envelope through a phone. The phone uses the Rights Issuer's
// raw wire entry point (`handle_wire`), so it never interprets the
// relayed traffic; all trust decisions happen on the player via the
// per-pass halves of the agent's session state machines.
//
// Build & run:  ./build/examples/unconnected_device
#include <cstdio>

#include "agent/drm_agent.h"
#include "agent/sessions.h"
#include "ci/content_issuer.h"
#include "pki/authority.h"
#include "provider/provider.h"
#include "ri/rights_issuer.h"
#include "roap/envelope.h"

using namespace omadrm;  // NOLINT

namespace {

/// The phone's role: carry bytes to the RI and back. In a real deployment
/// this is Bluetooth/USB on one side and HTTP on the other.
roap::Envelope relay_via_phone(ri::RightsIssuer& ri,
                               const roap::Envelope& request,
                               std::uint64_t now) {
  std::printf("  [phone] relaying %4zu bytes to RI, ", request.size());
  std::string response = ri.handle_wire(request.wire(), now);
  std::printf("returning %4zu bytes\n", response.size());
  return roap::Envelope::from_wire(response);
}

}  // namespace

int main() {
  DeterministicRng rng(404);
  provider::CryptoProvider& crypto = provider::plain_provider();
  const std::uint64_t now = 1100000000;
  const pki::Validity validity{now - 86400, now + 365 * 86400};

  pki::CertificationAuthority ca("CMLA Root CA", 1024, validity, rng);
  ci::ContentIssuer content_issuer("content.example", crypto, rng);
  ri::RightsIssuer ri("ri.example", "http://ri.example/roap", ca, validity,
                      crypto, rng);
  ri.create_domain("domain:pocket");

  Bytes album = rng.bytes(64 * 1024);
  dcf::Headers headers;
  headers.content_type = "audio/mpeg";
  headers.content_id = "cid:album@content.example";
  headers.rights_issuer_url = ri.url();
  dcf::Dcf dcf = content_issuer.package(headers, album);

  ri::LicenseOffer offer;
  offer.ro_id = "ro:album-pocket";
  offer.content_id = headers.content_id;
  offer.dcf_hash = dcf.hash();
  rel::Permission play;
  play.type = rel::PermissionType::kPlay;
  offer.permissions = {play};
  offer.kcek = *content_issuer.kcek_for(headers.content_id);
  offer.domain_ro = true;
  offer.domain_id = "domain:pocket";
  ri.add_offer(offer);

  // The unconnected player. It owns a CMLA certificate like any device —
  // certification does not require connectivity.
  agent::DrmAgent player("mp3-player-01", ca.root_certificate(), crypto, rng);
  player.provision(
      ca.issue("mp3-player-01", player.public_key(), validity, rng));

  std::printf("== relayed registration (4-pass) ==\n");
  agent::RegistrationSession reg(player, now);
  auto hello = reg.hello();
  if (!hello.ok()) return 1;
  auto reg_req = reg.request(relay_via_phone(ri, *hello, now));
  if (!reg_req.ok()) return 1;
  Result<> status = reg.conclude(relay_via_phone(ri, *reg_req, now));
  std::printf("  player: registration %s\n\n", status.describe().c_str());
  if (!status.ok()) return 1;

  std::printf("== relayed domain join ==\n");
  agent::DomainSession join(player, agent::DomainSession::Kind::kJoin,
                            ri.ri_id(), "domain:pocket", now);
  auto join_req = join.request();
  if (!join_req.ok()) return 1;
  status = join.conclude(relay_via_phone(ri, *join_req, now));
  std::printf("  player: join %s\n", status.describe().c_str());
  if (!status.ok()) return 1;
  std::printf("  player: holds K_D generation %u\n\n",
              *player.domain_generation("domain:pocket"));

  std::printf("== relayed RO acquisition (2-pass) ==\n");
  agent::AcquisitionSession acquire(player, ri.ri_id(), "ro:album-pocket",
                                    now);
  auto ro_req = acquire.request();
  if (!ro_req.ok()) return 1;
  auto acq = acquire.conclude(relay_via_phone(ri, *ro_req, now));
  std::printf("  player: acquisition %s\n\n", acq.describe().c_str());
  if (!acq.ok()) return 1;

  if (player.install_ro(*acq, now) != agent::AgentStatus::kOk) return 1;
  agent::ConsumeResult play_result =
      player.consume(dcf, rel::PermissionType::kPlay, now);
  std::printf("player installs and plays: %s (%zu bytes decrypted)\n",
              agent::to_string(play_result.status),
              play_result.content.size());
  return play_result.status == agent::AgentStatus::kOk ? 0 : 1;
}
