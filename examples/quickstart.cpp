// Quickstart — the complete OMA DRM 2 happy path in one page:
// set up a CA, a Content Issuer, and a Rights Issuer; package a track;
// register a device, acquire + install a license, and play the content.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "agent/drm_agent.h"
#include "ci/content_issuer.h"
#include "pki/authority.h"
#include "provider/provider.h"
#include "ri/rights_issuer.h"
#include "roap/transport.h"

using namespace omadrm;  // NOLINT

int main() {
  // Deterministic randomness: same keys, nonces, and content every run.
  DeterministicRng rng(2005);
  provider::CryptoProvider& crypto = provider::plain_provider();
  const std::uint64_t now = 1100000000;
  const pki::Validity validity{now - 86400, now + 365 * 86400};

  // 1. Trust anchor (the CMLA role) and the two network-side actors.
  pki::CertificationAuthority ca("CMLA Root CA", 1024, validity, rng);
  ci::ContentIssuer content_issuer("content.example", crypto, rng);
  ri::RightsIssuer ri("ri.example", "http://ri.example/roap", ca, validity,
                      crypto, rng);

  // 2. The Content Issuer packages a track into a DCF (AES-128-CBC under a
  //    fresh K_CEK) and escrows the key for license sales.
  Bytes track = to_bytes("[ synthetic mp3 bitstream ... ]");
  dcf::Headers headers;
  headers.content_type = "audio/mpeg";
  headers.content_id = "cid:demo-track@content.example";
  headers.rights_issuer_url = ri.url();
  headers.textual = {{"Title", "Demo Track"}};
  dcf::Dcf dcf = content_issuer.package(headers, track);
  std::printf("packaged DCF: %zu bytes, content-id %s\n",
              dcf.serialize().size(), dcf.headers().content_id.c_str());

  // 3. The RI lists a 3-play license for it.
  ri::LicenseOffer offer;
  offer.ro_id = "ro:demo-track";
  offer.content_id = headers.content_id;
  offer.dcf_hash = dcf.hash();
  rel::Permission play;
  play.type = rel::PermissionType::kPlay;
  play.constraint.count = 3;
  offer.permissions = {play};
  offer.kcek = *content_issuer.kcek_for(headers.content_id);
  ri.add_offer(offer);

  // 4. A terminal: DRM Agent with a CA-issued device certificate.
  agent::DrmAgent device("device-01", ca.root_certificate(), crypto, rng);
  device.provision(ca.issue("device-01", device.public_key(), validity, rng));

  // 5. Registration (4-pass ROAP), acquisition, installation. The agent
  //    talks to the RI only through a Transport carrying serialized ROAP
  //    envelopes; here that is the in-process loopback adapter.
  roap::InProcessTransport transport(ri, now);
  if (!device.register_with(transport, now).ok()) {
    std::printf("registration failed\n");
    return 1;
  }
  std::printf("registered with %s\n", ri.ri_id().c_str());

  auto acq = device.acquire_ro(transport, ri.ri_id(), offer.ro_id, now);
  if (!acq.ok()) {
    std::printf("acquisition failed: %s\n", acq.describe().c_str());
    return 1;
  }
  std::printf("acquired RO %s (%zu-byte wrapped key material)\n",
              acq->rights.ro_id.c_str(), acq->wrapped_keys.size());

  if (device.install_ro(*acq, now) != agent::AgentStatus::kOk) {
    std::printf("installation failed\n");
    return 1;
  }
  std::printf("installed RO; plays remaining: %u\n",
              *device.remaining_count(offer.ro_id, rel::PermissionType::kPlay));

  // 6. Consume until the count constraint denies.
  for (int attempt = 1; attempt <= 4; ++attempt) {
    agent::ConsumeResult r =
        device.consume(dcf, rel::PermissionType::kPlay, now + attempt * 60);
    if (r.status == agent::AgentStatus::kOk) {
      std::printf("play %d: ok (%zu bytes) — remaining %u\n", attempt,
                  r.content.size(),
                  *device.remaining_count(offer.ro_id,
                                          rel::PermissionType::kPlay));
    } else {
      std::printf("play %d: denied (%s / %s)\n", attempt,
                  agent::to_string(r.status), rel::to_string(r.decision));
    }
  }
  return 0;
}
