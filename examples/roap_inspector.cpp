// ROAP inspector — the 4-pass registration and 2-pass acquisition spelled
// out message by message, at the wire level.
//
// The paper notes that building their Java model "resulted in information
// about eg the ROAP message file sizes" — the inputs to the hash costs in
// the cycle model. This tool regenerates that information from our stack:
// it drives the protocol by hand (constructing and signing each message
// explicitly rather than through DrmAgent), pushes each one through the
// Rights Issuer's uniform envelope dispatch, and prints every document
// with its serialized size, so the analytic model's nominal sizes (see
// model/analytic.h) can be checked against reality.
//
// Usage: ./build/examples/roap_inspector [--dump]   (--dump prints the XML)
#include <cstdio>
#include <cstring>

#include "ci/content_issuer.h"
#include "common/random.h"
#include "pki/authority.h"
#include "provider/provider.h"
#include "ri/rights_issuer.h"
#include "roap/envelope.h"
#include "roap/messages.h"
#include "rsa/pss.h"

using namespace omadrm;  // NOLINT

namespace {

bool g_dump = false;

void show(const char* direction, const char* name, const xml::Element& doc) {
  std::string wire = doc.serialize();
  std::printf("%-4s %-28s %6zu bytes\n", direction, name, wire.size());
  if (g_dump) {
    std::printf("%s\n", doc.serialize(true).c_str());
  }
}

void show(const char* direction, const roap::Envelope& env) {
  std::printf("%-4s %-28s %6zu bytes\n", direction,
              roap::to_string(env.type()), env.size());
  if (g_dump) {
    std::printf("%s\n", xml::parse(env.wire()).serialize(true).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  g_dump = argc > 1 && std::strcmp(argv[1], "--dump") == 0;

  DeterministicRng rng(1);
  provider::CryptoProvider& crypto = provider::plain_provider();
  const std::uint64_t now = 1100000000;
  const pki::Validity validity{now - 86400, now + 365 * 86400};

  pki::CertificationAuthority ca("CMLA Root CA", 1024, validity, rng);
  ci::ContentIssuer content_issuer("content.example", crypto, rng);
  ri::RightsIssuer ri("ri.example", "http://ri.example/roap", ca, validity,
                      crypto, rng);

  // Device identity, built by hand so every signing step is visible.
  rsa::PrivateKey device_key = rsa::generate_key(1024, rng);
  pki::Certificate device_cert =
      ca.issue("device-01", device_key.public_key(), validity, rng);

  // Content + license on offer.
  Bytes track = rng.bytes(30 * 1024);
  dcf::Headers headers;
  headers.content_type = "audio/mpeg";
  headers.content_id = "cid:inspect@content.example";
  headers.rights_issuer_url = ri.url();
  dcf::Dcf dcf = content_issuer.package(headers, track);
  ri::LicenseOffer offer;
  offer.ro_id = "ro:inspect";
  offer.content_id = headers.content_id;
  offer.dcf_hash = dcf.hash();
  rel::Permission play;
  play.type = rel::PermissionType::kPlay;
  play.constraint.count = 25;
  offer.permissions = {play};
  offer.kcek = *content_issuer.kcek_for(headers.content_id);
  ri.add_offer(offer);

  std::printf("ROAP wire trace (dir: -> device to RI, <- RI to device)\n\n");
  std::printf("== Registration (4-pass) ==\n");

  roap::DeviceHello hello;
  hello.device_id = "device-01";
  hello.algorithms = {"SHA-1", "HMAC-SHA1", "AES-128-CBC", "AES-WRAP",
                      "RSA-1024", "RSA-PSS", "KDF2"};
  hello.device_nonce = rng.bytes(roap::kNonceLen);
  roap::Envelope hello_env = roap::Envelope::wrap(hello);
  show("->", hello_env);

  roap::Envelope ri_hello_env = ri.handle(hello_env, now);
  show("<-", ri_hello_env);
  roap::RiHello ri_hello = ri_hello_env.open<roap::RiHello>();

  roap::RegistrationRequest reg_req;
  reg_req.session_id = ri_hello.session_id;
  reg_req.device_id = hello.device_id;
  reg_req.device_nonce = hello.device_nonce;
  reg_req.ri_nonce = ri_hello.ri_nonce;
  reg_req.certificate_der = device_cert.to_der();
  reg_req.ocsp_nonce = rng.bytes(roap::kNonceLen);
  reg_req.signature = rsa::pss_sign(device_key, reg_req.payload(), rng);
  roap::Envelope reg_req_env = roap::Envelope::wrap(reg_req);
  show("->", reg_req_env);
  std::printf("     (device certificate DER: %zu bytes, signature: %zu bytes)\n",
              reg_req.certificate_der.size(), reg_req.signature.size());

  roap::Envelope reg_resp_env = ri.handle(reg_req_env, now);
  show("<-", reg_resp_env);
  roap::RegistrationResponse reg_resp =
      reg_resp_env.open<roap::RegistrationResponse>();
  std::printf("     (RI certificate: %zu bytes, OCSP response: %zu bytes)\n",
              reg_resp.ri_certificate_der.size(),
              reg_resp.ocsp_response_der.size());

  std::printf("\n== RO Acquisition (2-pass) ==\n");
  roap::RoRequest ro_req;
  ro_req.device_id = hello.device_id;
  ro_req.ri_id = ri.ri_id();
  ro_req.ro_id = offer.ro_id;
  ro_req.device_nonce = rng.bytes(roap::kNonceLen);
  ro_req.signature = rsa::pss_sign(device_key, ro_req.payload(), rng);
  roap::Envelope ro_req_env = roap::Envelope::wrap(ro_req);
  show("->", ro_req_env);

  roap::Envelope ro_resp_env = ri.handle(ro_req_env, now);
  show("<-", ro_resp_env);
  roap::RoResponse ro_resp = ro_resp_env.open<roap::RoResponse>();
  if (!ro_resp.ros.empty()) {
    const roap::ProtectedRo& ro = ro_resp.ros.front();
    show("  ", "  protectedRO (within)", ro.to_xml());
    std::printf(
        "     C = C1||C2: %zu bytes (C1 %d + C2 %zu), E_KREK(KCEK): %zu, "
        "MAC: %zu\n",
        ro.wrapped_keys.size(), 128, ro.wrapped_keys.size() - 128,
        ro.enc_kcek.size(), ro.mac.size());
    std::printf("     MAC-protected payload: %zu bytes\n",
                ro.mac_payload().size());
  }

  std::printf(
      "\nThese sizes feed the SHA-1 terms of the cost model; compare with\n"
      "the nominal values in model/analytic.h (AnalyticParams). RSA costs\n"
      "dominate the one-time phases regardless (Figure 7), so modest size\n"
      "differences do not move the totals.\n");
  return 0;
}
