// Music Player scenario (paper §4, Figure 6) as a runnable application.
//
// Executes the full protocol on a 3.5 MB track with a metered terminal and
// prints the per-phase, per-algorithm cycle breakdown for each of the three
// architecture variants — the data behind Figures 5 and 6.
//
// Build & run:  ./build/examples/music_player
#include <cstdio>

#include "model/report.h"
#include "model/usecase.h"

using namespace omadrm::model;  // NOLINT

namespace {

void print_phase_breakdown(const UseCaseReport& report) {
  const CycleLedger& l = report.ledger;
  std::printf("  %-14s %12s %10s\n", "phase", "cycles", "ms@200MHz");
  for (std::size_t p = 0; p < 4; ++p) {
    Phase phase = static_cast<Phase>(p);
    std::printf("  %-14s %12.3e %10.2f\n", to_string(phase),
                l.cycles_by_phase(phase), l.ms(phase));
  }
  std::printf("  %-14s %12.3e %10.2f\n", "TOTAL", l.total_cycles(),
              l.total_ms());
}

}  // namespace

int main() {
  UseCaseSpec spec = UseCaseSpec::music_player();
  std::printf(
      "Music Player use case: %zu-byte DCF, %zu playbacks\n"
      "(register -> acquire -> install -> play x%zu, real crypto, metered "
      "terminal)\n\n",
      spec.content_bytes, spec.playbacks, spec.playbacks);

  std::size_t count = 0;
  const ArchitectureProfile* variants =
      ArchitectureProfile::paper_variants(&count);
  double sw_ms = 0;
  for (std::size_t i = 0; i < count; ++i) {
    UseCaseReport report = run_use_case(spec, variants[i]);
    if (i == 0) sw_ms = report.total_ms();
    std::printf("=== variant %s ===\n", variants[i].name.c_str());
    print_phase_breakdown(report);
    std::printf("\n%s", format_share_table(report).c_str());
    std::printf("  speedup vs pure software: %.1fx\n\n",
                sw_ms / report.total_ms());
  }

  std::printf(
      "Paper reference (Figure 6): SW 7730 ms, SW/HW 800 ms, HW 190 ms.\n"
      "Dedicated AES/SHA-1 macros pay for themselves on large content: the\n"
      "per-play DCF hash + CBC decryption dominates everything else.\n");
  return 0;
}
