// Hardware design explorer — the system architect's view (paper §3).
//
// "A system designer has to identify crucial processing intensive parts of
// the application and decide whether to provide these using dedicated
// hardware cells within a SoC or rather software." This tool enumerates
// all 2^3 macro subsets {AES, SHA-1/HMAC, RSA} and evaluates each against
// a configurable workload, printing total time and the marginal benefit of
// each macro — exactly the trade-off table a designer would want.
//
// Usage: ./build/examples/hw_design_explorer [content_kb] [playbacks]
//        defaults: 3584 KB (the paper's music file), 5 playbacks
#include <cstdio>
#include <cstdlib>

#include "model/analytic.h"

using namespace omadrm::model;  // NOLINT

namespace {

ArchitectureProfile make_profile(bool aes_hw, bool sha_hw, bool rsa_hw) {
  ArchitectureProfile p = ArchitectureProfile::pure_software();
  char name[16];
  std::snprintf(name, sizeof name, "%c%c%c", aes_hw ? 'A' : '-',
                sha_hw ? 'S' : '-', rsa_hw ? 'R' : '-');
  p.name = name;
  if (aes_hw) {
    p.set_engine(Algorithm::kAesEncrypt, Engine::kHardware);
    p.set_engine(Algorithm::kAesDecrypt, Engine::kHardware);
  }
  if (sha_hw) {
    p.set_engine(Algorithm::kSha1, Engine::kHardware);
    p.set_engine(Algorithm::kHmacSha1, Engine::kHardware);
  }
  if (rsa_hw) {
    p.set_engine(Algorithm::kRsaPublic, Engine::kHardware);
    p.set_engine(Algorithm::kRsaPrivate, Engine::kHardware);
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t content_kb = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3584;
  std::size_t playbacks = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 5;

  UseCaseSpec spec;
  spec.name = "explorer";
  spec.content_bytes = content_kb * 1024;
  spec.playbacks = playbacks;

  std::printf(
      "Workload: %zu KB DCF, %zu playback(s), 200 MHz terminal\n"
      "Macro key: A = AES cell, S = SHA-1/HMAC cell, R = RSA cell\n\n",
      content_kb, playbacks);
  std::printf("%-6s %14s %12s   %s\n", "macros", "total [ms]", "speedup",
              "note");

  double baseline = 0;
  for (int mask = 0; mask < 8; ++mask) {
    bool aes = mask & 1, sha = mask & 2, rsa = mask & 4;
    ArchitectureProfile p = make_profile(aes, sha, rsa);
    UseCaseReport r = analytic_use_case(spec, p);
    if (mask == 0) baseline = r.total_ms();
    const char* note = "";
    if (mask == 0) note = "pure software (Fig 6/7 'SW')";
    if (mask == 3) note = "paper's 'SW/HW' variant";
    if (mask == 7) note = "paper's 'HW' variant";
    std::printf("%-6s %14.1f %11.1fx   %s\n", p.name.c_str(), r.total_ms(),
                baseline / r.total_ms(), note);
  }

  // Marginal benefit of each macro on top of the other two.
  std::printf("\nmarginal benefit of each macro (added last):\n");
  struct Macro {
    const char* label;
    int bit;
  };
  for (const Macro& m : {Macro{"AES", 1}, Macro{"SHA-1/HMAC", 2},
                         Macro{"RSA", 4}}) {
    ArchitectureProfile without = make_profile((7 & ~m.bit) & 1,
                                               ((7 & ~m.bit) & 2) != 0,
                                               ((7 & ~m.bit) & 4) != 0);
    ArchitectureProfile with_all = make_profile(true, true, true);
    double ms_without = analytic_use_case(spec, without).total_ms();
    double ms_with = analytic_use_case(spec, with_all).total_ms();
    std::printf("  %-12s saves %10.1f ms (%.1fx)\n", m.label,
                ms_without - ms_with, ms_without / ms_with);
  }
  std::printf(
      "\nTry:  ./hw_design_explorer 30 25     (the Ringtone regime —\n"
      "RSA macro decisive)  vs  ./hw_design_explorer 3584 5  (Music\n"
      "Player regime — AES/SHA macros decisive).\n");
  return 0;
}
