// Ringtone scenario (paper §4, Figure 7) as a runnable application.
//
// A 30 KB polyphonic ringtone protected by DRM: every incoming call makes
// the DRM Agent run the full §2.4.4 consumption check (the file cannot be
// cached in clear — "secure memory is extremely costly in mobile
// terminals"). Simulates a day of 25 calls under a count-limited license
// and prints the cost ledger per architecture variant.
//
// Build & run:  ./build/examples/ringtone_service
#include <cstdio>

#include "agent/drm_agent.h"
#include "ci/content_issuer.h"
#include "model/metered.h"
#include "model/report.h"
#include "pki/authority.h"
#include "ri/rights_issuer.h"
#include "roap/transport.h"

using namespace omadrm;         // NOLINT
using namespace omadrm::model;  // NOLINT

int main() {
  const std::uint64_t now = 1100000000;
  const pki::Validity validity{now - 86400, now + 365 * 86400};
  constexpr std::size_t kCalls = 25;

  // Show the modeled Figure-7 numbers first.
  std::printf("Ringtone use case: 30 KB DCF, %zu incoming calls\n\n", kCalls);
  VariantMs v = run_variants(UseCaseSpec::ringtone());
  std::printf("modeled totals at 200 MHz: SW %.0f ms | SW/HW %.0f ms | HW %.0f ms\n",
              v.sw, v.swhw, v.hw);
  std::printf("paper (Figure 7):          SW 900 ms  | SW/HW 620 ms  | HW 12 ms\n\n");

  // Now run the service interactively-ish: a metered terminal receiving
  // calls until the 20-play license runs dry.
  DeterministicRng rng(7);
  CycleLedger ledger(ArchitectureProfile::symmetric_hardware());
  MeteredCryptoProvider terminal(ledger);
  provider::CryptoProvider& network = provider::plain_provider();

  pki::CertificationAuthority ca("CMLA Root CA", 1024, validity, rng);
  ci::ContentIssuer content_issuer("tones.example", network, rng);
  ri::RightsIssuer ri("ri.tones.example", "http://ri.tones.example/roap", ca,
                      validity, network, rng);

  Bytes tone = rng.bytes(30 * 1024);
  dcf::Headers headers;
  headers.content_type = "audio/midi";
  headers.content_id = "cid:crazy-frog@tones.example";
  headers.rights_issuer_url = ri.url();
  dcf::Dcf dcf = content_issuer.package(headers, tone);

  ri::LicenseOffer offer;
  offer.ro_id = "ro:crazy-frog-20";
  offer.content_id = headers.content_id;
  offer.dcf_hash = dcf.hash();
  rel::Permission play;
  play.type = rel::PermissionType::kPlay;
  play.constraint.count = 20;  // the user bought a 20-ring license
  offer.permissions = {play};
  offer.kcek = *content_issuer.kcek_for(headers.content_id);
  ri.add_offer(offer);

  agent::DrmAgent phone("phone-01", ca.root_certificate(), terminal, rng);
  phone.provision(ca.issue("phone-01", phone.public_key(), validity, rng));
  roap::InProcessTransport transport(ri, now);

  {
    CycleLedger::PhaseScope s(ledger, Phase::kRegistration);
    if (!phone.register_with(transport, now).ok()) return 1;
  }
  Result<roap::ProtectedRo> acq(StatusCode::kNoRiContext);
  {
    CycleLedger::PhaseScope s(ledger, Phase::kAcquisition);
    acq = phone.acquire_ro(transport, ri.ri_id(), offer.ro_id, now);
    if (!acq.ok()) return 1;
  }
  {
    CycleLedger::PhaseScope s(ledger, Phase::kInstallation);
    if (phone.install_ro(*acq, now) != agent::AgentStatus::kOk) return 1;
  }

  std::size_t rang = 0;
  {
    CycleLedger::PhaseScope s(ledger, Phase::kConsumption);
    for (std::size_t call = 1; call <= kCalls; ++call) {
      agent::ConsumeResult r =
          phone.consume(dcf, rel::PermissionType::kPlay, now + call * 3600);
      if (r.status == agent::AgentStatus::kOk) {
        ++rang;
      } else {
        std::printf("call %2zu: silent — license exhausted (%s)\n", call,
                    rel::to_string(r.decision));
      }
    }
  }
  std::printf("\nphone rang %zu/%zu times (20-ring license)\n\n", rang,
              kCalls);

  std::printf("terminal cycle ledger (SW/HW variant):\n");
  for (std::size_t p = 0; p < 4; ++p) {
    Phase phase = static_cast<Phase>(p);
    std::printf("  %-14s %10.2f ms\n", to_string(phase), ledger.ms(phase));
  }
  std::printf("  %-14s %10.2f ms\n", "TOTAL", ledger.total_ms());
  std::printf(
      "\nNote the paper's point: even with symmetric macros, the ~%.0f ms of\n"
      "software PKI in the one-time phases dwarfs the per-ring cost.\n",
      ledger.profile().cycles_to_ms(ledger.pki_cycles()));
  return 0;
}
