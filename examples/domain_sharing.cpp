// Domain sharing (paper §2.3): one license, several devices.
//
// A phone and an "unconnected" mp3 player join the same domain; a Domain
// Rights Object acquired by the phone plays on both, and the mp3 player
// never talks to the Rights Issuer about this particular license — it only
// needed the one-time JoinDomain to receive the domain key K_D.
//
// Build & run:  ./build/examples/domain_sharing
#include <cstdio>

#include "agent/drm_agent.h"
#include "ci/content_issuer.h"
#include "pki/authority.h"
#include "provider/provider.h"
#include "ri/rights_issuer.h"
#include "roap/transport.h"

using namespace omadrm;  // NOLINT

namespace {

agent::DrmAgent make_device(const char* id, pki::CertificationAuthority& ca,
                            const pki::Validity& validity, Rng& rng) {
  agent::DrmAgent d(id, ca.root_certificate(), provider::plain_provider(),
                    rng);
  d.provision(ca.issue(id, d.public_key(), validity, rng));
  return d;
}

}  // namespace

int main() {
  DeterministicRng rng(77);
  provider::CryptoProvider& crypto = provider::plain_provider();
  const std::uint64_t now = 1100000000;
  const pki::Validity validity{now - 86400, now + 365 * 86400};

  pki::CertificationAuthority ca("CMLA Root CA", 1024, validity, rng);
  ci::ContentIssuer content_issuer("content.example", crypto, rng);
  ri::RightsIssuer ri("ri.example", "http://ri.example/roap", ca, validity,
                      crypto, rng);
  ri.create_domain("domain:family", /*max_members=*/4);

  // An album packaged once.
  Bytes album = rng.bytes(200 * 1024);
  dcf::Headers headers;
  headers.content_type = "audio/mpeg";
  headers.content_id = "cid:album@content.example";
  headers.rights_issuer_url = ri.url();
  dcf::Dcf dcf = content_issuer.package(headers, album);

  ri::LicenseOffer offer;
  offer.ro_id = "ro:album-family";
  offer.content_id = headers.content_id;
  offer.dcf_hash = dcf.hash();
  rel::Permission play;
  play.type = rel::PermissionType::kPlay;
  offer.permissions = {play};
  offer.kcek = *content_issuer.kcek_for(headers.content_id);
  offer.domain_ro = true;
  offer.domain_id = "domain:family";
  ri.add_offer(offer);

  // Two devices: a phone and an unconnected mp3 player (the player still
  // registers once — via the phone acting as proxy in the real world).
  agent::DrmAgent phone = make_device("phone-01", ca, validity, rng);
  agent::DrmAgent player = make_device("mp3-player-01", ca, validity, rng);

  roap::InProcessTransport transport(ri, now);
  for (agent::DrmAgent* d : {&phone, &player}) {
    if (!d->register_with(transport, now).ok()) return 1;
    if (!d->join_domain(transport, ri.ri_id(), "domain:family", now).ok()) {
      return 1;
    }
    std::printf("%s joined domain:family (has K_D: %s)\n",
                d->device_id().c_str(),
                d->has_domain_key("domain:family") ? "yes" : "no");
  }

  // Only the phone acquires the Domain RO from the RI...
  auto acq = phone.acquire_ro(transport, ri.ri_id(), offer.ro_id, now);
  if (!acq.ok()) return 1;
  std::printf("\nphone acquired %s (domain RO, RI-signed: %s)\n",
              acq->rights.ro_id.c_str(),
              acq->signature.empty() ? "no" : "yes");

  // ...and hands the RO file to the player out-of-band (e.g. USB). Both
  // install and play it with their copy of K_D.
  std::string ro_file = acq->to_xml().serialize();
  std::printf("RO transferred out-of-band as a %zu-byte XML file\n\n",
              ro_file.size());

  for (agent::DrmAgent* d : {&phone, &player}) {
    roap::ProtectedRo ro = roap::ProtectedRo::from_xml(xml::parse(ro_file));
    if (d->install_ro(ro, now) != agent::AgentStatus::kOk) return 1;
    agent::ConsumeResult r = d->consume(dcf, rel::PermissionType::kPlay, now);
    std::printf("%s: install ok, playback %s (%zu bytes)\n",
                d->device_id().c_str(),
                r.status == agent::AgentStatus::kOk ? "ok" : "FAILED",
                r.content.size());
  }

  // A stranger's device (registered, but not a domain member) cannot.
  agent::DrmAgent stranger = make_device("stranger-01", ca, validity, rng);
  if (!stranger.register_with(transport, now).ok()) return 1;
  roap::ProtectedRo ro = roap::ProtectedRo::from_xml(xml::parse(ro_file));
  agent::AgentStatus status = stranger.install_ro(ro, now);
  std::printf("\nstranger-01 (not in the domain): install -> %s\n",
              agent::to_string(status));
  return 0;
}
