// ri_server: standalone Rights Issuer daemon speaking framed ROAP over
// TCP (src/net/frame.h layout).
//
// The PKI realm is regenerated from --seed (net::Realm), so any client
// process constructed from the same seed trusts this server's RI chain
// and can mint device certificates this server accepts — deterministic
// cross-process trust with zero key files.
//
// Prints exactly one line to stdout once ready:
//
//   LISTENING <port>
//
// (ephemeral --port 0 is resolved by then), which is what the fleet
// bench and the CI smoke step parse. SIGINT/SIGTERM trigger a graceful
// drain: stop accepting, answer everything already accepted, flush,
// exit 0. A second signal exits immediately.
//
// Usage:
//   ri_server [--port N] [--host A] [--workers N] [--max-connections N]
//             [--idle-timeout-ms N] [--drain-timeout-ms N] [--seed N]
//             [--poll] [--stats]
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <thread>

#include "net/concurrent_issuer.h"
#include "net/realm.h"
#include "net/server.h"

namespace {

volatile std::sig_atomic_t g_signals = 0;

void on_signal(int) { ++g_signals; }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--host A] [--workers N] "
               "[--max-connections N] [--idle-timeout-ms N] "
               "[--drain-timeout-ms N] [--seed N] [--poll] [--stats]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace omadrm;  // NOLINT

  net::RiServer::Config config;
  config.now = net::kRealmNow;
  std::uint64_t seed = net::kDefaultRealmSeed;
  bool print_stats = false;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      config.port = static_cast<std::uint16_t>(std::atoi(next("--port")));
    } else if (std::strcmp(argv[i], "--host") == 0) {
      config.bind_address = next("--host");
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      config.workers = static_cast<std::size_t>(std::atoi(next("--workers")));
    } else if (std::strcmp(argv[i], "--max-connections") == 0) {
      config.max_connections =
          static_cast<std::size_t>(std::atoi(next("--max-connections")));
    } else if (std::strcmp(argv[i], "--idle-timeout-ms") == 0) {
      config.idle_timeout_ms =
          static_cast<std::uint64_t>(std::atoll(next("--idle-timeout-ms")));
    } else if (std::strcmp(argv[i], "--drain-timeout-ms") == 0) {
      config.drain_timeout_ms =
          static_cast<std::uint64_t>(std::atoll(next("--drain-timeout-ms")));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
    } else if (std::strcmp(argv[i], "--poll") == 0) {
      config.use_epoll = false;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      print_stats = true;
    } else {
      return usage(argv[0]);
    }
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  net::Realm realm(seed);
  net::ConcurrentIssuer issuer(realm.issuer());
  net::RiServer server(issuer, config);
  try {
    server.start();
  } catch (const Error& e) {
    std::fprintf(stderr, "ri_server: start failed: %s\n", e.what());
    return 1;
  }

  std::printf("LISTENING %u\n", static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  while (g_signals == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.stop();

  if (print_stats) {
    const net::RiServer::Stats& st = server.stats();
    const net::ConcurrentIssuer::Stats is = issuer.stats();
    std::fprintf(stderr,
                 "ri_server: accepted=%llu rejected=%llu closed=%llu "
                 "idle_closed=%llu frames_in=%llu served=%llu refusals=%llu "
                 "desyncs=%llu exchanges=%llu contended=%llu\n",
                 static_cast<unsigned long long>(st.accepted.load()),
                 static_cast<unsigned long long>(st.rejected.load()),
                 static_cast<unsigned long long>(st.closed.load()),
                 static_cast<unsigned long long>(st.idle_closed.load()),
                 static_cast<unsigned long long>(st.frames_in.load()),
                 static_cast<unsigned long long>(st.served.load()),
                 static_cast<unsigned long long>(st.refusals.load()),
                 static_cast<unsigned long long>(st.frame_desyncs.load()),
                 static_cast<unsigned long long>(is.exchanges),
                 static_cast<unsigned long long>(is.contended));
    // Per-shard breakdown (exchanges, lock contention, replay hit rates)
    // so "which shard is hot" is observable, not inferred. Format owned
    // by net::format_issuer_stats and covered by test_net.
    std::fputs(net::format_issuer_stats(issuer).c_str(), stderr);
  }
  return 0;
}
