// ri_server: standalone Rights Issuer daemon speaking framed ROAP over
// TCP (src/net/frame.h layout).
//
// The PKI realm is regenerated from --seed (net::Realm), so any client
// process constructed from the same seed trusts this server's RI chain
// and can mint device certificates this server accepts — deterministic
// cross-process trust with zero key files.
//
// Prints exactly one line to stdout once ready:
//
//   LISTENING <port>
//
// (ephemeral --port 0 is resolved by then), which is what the fleet
// bench and the CI smoke step parse. SIGINT/SIGTERM trigger a graceful
// drain: stop accepting, answer everything already accepted, flush,
// exit 0. A second signal exits immediately.
//
// Overload/robustness knobs: --max-queue-depth / --max-inflight /
// --max-outbox-bytes / --read-progress-timeout-ms map straight onto
// RiServer::Config (0 disables each cap). --store-dir persists the RI's
// state in a FileStore under that directory (wrapped in a
// GroupCommitStore — the RI commits from every shard concurrently), so
// a kill -9 mid-burn restarts with grants intact. --failpoint SITE=SPEC
// (repeatable) arms deterministic fault injection (common/failpoint.h);
// the OMADRM_FAILPOINTS environment variable works too and composes.
//
// Usage:
//   ri_server [--port N] [--host A] [--workers N] [--max-connections N]
//             [--idle-timeout-ms N] [--drain-timeout-ms N] [--seed N]
//             [--max-queue-depth N] [--max-inflight N]
//             [--max-outbox-bytes N] [--read-progress-timeout-ms N]
//             [--store-dir DIR] [--failpoint SITE=SPEC]...
//             [--poll] [--stats]
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "common/failpoint.h"
#include "net/concurrent_issuer.h"
#include "net/realm.h"
#include "net/server.h"
#include "store/file_store.h"
#include "store/group_commit_store.h"
#include "store/state_store.h"

namespace {

volatile std::sig_atomic_t g_signals = 0;

void on_signal(int) { ++g_signals; }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--host A] [--workers N] "
               "[--max-connections N] [--idle-timeout-ms N] "
               "[--drain-timeout-ms N] [--seed N] [--max-queue-depth N] "
               "[--max-inflight N] [--max-outbox-bytes N] "
               "[--read-progress-timeout-ms N] [--store-dir DIR] "
               "[--failpoint SITE=SPEC]... [--poll] [--stats]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace omadrm;  // NOLINT

  net::RiServer::Config config;
  config.now = net::kRealmNow;
  std::uint64_t seed = net::kDefaultRealmSeed;
  bool print_stats = false;
  std::string store_dir;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      config.port = static_cast<std::uint16_t>(std::atoi(next("--port")));
    } else if (std::strcmp(argv[i], "--host") == 0) {
      config.bind_address = next("--host");
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      config.workers = static_cast<std::size_t>(std::atoi(next("--workers")));
    } else if (std::strcmp(argv[i], "--max-connections") == 0) {
      config.max_connections =
          static_cast<std::size_t>(std::atoi(next("--max-connections")));
    } else if (std::strcmp(argv[i], "--idle-timeout-ms") == 0) {
      config.idle_timeout_ms =
          static_cast<std::uint64_t>(std::atoll(next("--idle-timeout-ms")));
    } else if (std::strcmp(argv[i], "--drain-timeout-ms") == 0) {
      config.drain_timeout_ms =
          static_cast<std::uint64_t>(std::atoll(next("--drain-timeout-ms")));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
    } else if (std::strcmp(argv[i], "--max-queue-depth") == 0) {
      config.max_queue_depth =
          static_cast<std::size_t>(std::atoll(next("--max-queue-depth")));
    } else if (std::strcmp(argv[i], "--max-inflight") == 0) {
      config.max_inflight_per_conn =
          static_cast<std::size_t>(std::atoll(next("--max-inflight")));
    } else if (std::strcmp(argv[i], "--max-outbox-bytes") == 0) {
      config.max_outbox_bytes =
          static_cast<std::size_t>(std::atoll(next("--max-outbox-bytes")));
    } else if (std::strcmp(argv[i], "--read-progress-timeout-ms") == 0) {
      config.read_progress_timeout_ms = static_cast<std::uint64_t>(
          std::atoll(next("--read-progress-timeout-ms")));
    } else if (std::strcmp(argv[i], "--store-dir") == 0) {
      store_dir = next("--store-dir");
    } else if (std::strcmp(argv[i], "--failpoint") == 0) {
      try {
        failpoint::arm_from_spec(next("--failpoint"));
      } catch (const Error& e) {
        std::fprintf(stderr, "ri_server: bad --failpoint: %s\n", e.what());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--poll") == 0) {
      config.use_epoll = false;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      print_stats = true;
    } else {
      return usage(argv[0]);
    }
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  net::Realm realm(seed);

  // Durable RI state (config-time: before start(), before any traffic).
  // The sealing key is derived from the realm seed so a restarted server
  // with the same seed can decrypt what its predecessor persisted; the
  // GroupCommitStore wrapper makes the FileStore safe for the RI's
  // from-every-shard concurrent commits. Binding replays any existing
  // journal — a post-crash restart resumes with grants intact.
  std::unique_ptr<store::FileStore> file_store;
  std::unique_ptr<store::GroupCommitStore> group_store;
  if (!store_dir.empty()) {
    const std::string key_seed = "ri-server:" + std::to_string(seed);
    store::FileStore::Options store_opts;
    // The daemon owns its store directory (not an attacker's splice), so
    // a torn trailing frame — the kill-mid-append artifact — is dropped
    // on reboot instead of refusing to start.
    store_opts.recover_torn_tail = true;
    file_store = std::make_unique<store::FileStore>(
        store_dir, store::derive_storage_key(to_bytes(key_seed)), store_opts);
    group_store = std::make_unique<store::GroupCommitStore>(*file_store);
    const Result<> bound = realm.issuer().bind_store(*group_store);
    if (!bound.ok()) {
      std::fprintf(stderr, "ri_server: bind_store(%s) failed: %s\n",
                   store_dir.c_str(), bound.context().c_str());
      return 1;
    }
  }

  net::ConcurrentIssuer issuer(realm.issuer());
  net::RiServer server(issuer, config);
  try {
    server.start();
  } catch (const Error& e) {
    std::fprintf(stderr, "ri_server: start failed: %s\n", e.what());
    return 1;
  }

  std::printf("LISTENING %u\n", static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  while (g_signals == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.stop();

  if (print_stats) {
    const net::RiServer::Stats& st = server.stats();
    const net::ConcurrentIssuer::Stats is = issuer.stats();
    std::fprintf(stderr,
                 "ri_server: accepted=%llu rejected=%llu closed=%llu "
                 "idle_closed=%llu frames_in=%llu served=%llu refusals=%llu "
                 "desyncs=%llu shed=%llu slow_reader=%llu stalled=%llu "
                 "exchanges=%llu contended=%llu\n",
                 static_cast<unsigned long long>(st.accepted.load()),
                 static_cast<unsigned long long>(st.rejected.load()),
                 static_cast<unsigned long long>(st.closed.load()),
                 static_cast<unsigned long long>(st.idle_closed.load()),
                 static_cast<unsigned long long>(st.frames_in.load()),
                 static_cast<unsigned long long>(st.served.load()),
                 static_cast<unsigned long long>(st.refusals.load()),
                 static_cast<unsigned long long>(st.frame_desyncs.load()),
                 static_cast<unsigned long long>(st.shed.load()),
                 static_cast<unsigned long long>(st.slow_reader_closed.load()),
                 static_cast<unsigned long long>(st.stalled_closed.load()),
                 static_cast<unsigned long long>(is.exchanges),
                 static_cast<unsigned long long>(is.contended));
    // Per-shard breakdown (exchanges, lock contention, replay hit rates)
    // so "which shard is hot" is observable, not inferred. Format owned
    // by net::format_issuer_stats and covered by test_net.
    std::fputs(net::format_issuer_stats(issuer).c_str(), stderr);
  }
  return 0;
}
