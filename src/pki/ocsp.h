// OCSP (RFC 2560 subset) — the revocation freshness mechanism ROAP relies
// on: the Rights Issuer staples a current OCSP response for its own
// certificate into the RegistrationResponse, and the DRM Agent verifies
// the responder's signature (one of the paper's terminal-side RSA public
// key operations during registration).
#pragma once

#include <cstdint>

#include "bigint/bigint.h"
#include "common/bytes.h"
#include "common/random.h"
#include "rsa/rsa.h"

namespace omadrm::pki {

enum class OcspCertStatus : std::uint8_t {
  kGood = 0,
  kRevoked = 1,
  kUnknown = 2,
};

const char* to_string(OcspCertStatus s);

/// Client-built request identifying the certificate by serial, with a
/// nonce to bind the response to this request.
struct OcspRequest {
  bigint::BigInt serial;
  Bytes nonce;

  Bytes to_der() const;
  static OcspRequest from_der(ByteView der);
};

/// Responder-signed status assertion.
class OcspResponse {
 public:
  OcspResponse() = default;
  OcspResponse(bigint::BigInt serial, OcspCertStatus status,
               std::uint64_t produced_at, Bytes nonce,
               std::string responder_cn);

  const bigint::BigInt& serial() const { return serial_; }
  OcspCertStatus status() const { return status_; }
  std::uint64_t produced_at() const { return produced_at_; }
  const Bytes& nonce() const { return nonce_; }
  const std::string& responder_cn() const { return responder_cn_; }

  /// DER of the signed part (ResponseData).
  Bytes tbs_der() const;
  Bytes to_der() const;
  static OcspResponse from_der(ByteView der);

  void set_signature(Bytes sig) { signature_ = std::move(sig); }
  const Bytes& signature() const { return signature_; }

  /// Signature + nonce + serial + freshness check.
  /// `max_age` bounds produced_at staleness relative to `now`.
  bool verify(const rsa::PublicKey& responder_key, const OcspRequest& request,
              std::uint64_t now, std::uint64_t max_age) const;

 private:
  bigint::BigInt serial_;
  OcspCertStatus status_ = OcspCertStatus::kUnknown;
  std::uint64_t produced_at_ = 0;
  Bytes nonce_;
  std::string responder_cn_;
  Bytes signature_;
};

}  // namespace omadrm::pki
