#include "pki/ocsp.h"

#include "asn1/der.h"
#include "asn1/oid.h"
#include "common/error.h"
#include "rsa/pss.h"

namespace omadrm::pki {

using asn1::Decoder;
using asn1::Encoder;
using omadrm::Error;
using omadrm::ErrorKind;

const char* to_string(OcspCertStatus s) {
  switch (s) {
    case OcspCertStatus::kGood: return "good";
    case OcspCertStatus::kRevoked: return "revoked";
    case OcspCertStatus::kUnknown: return "unknown";
  }
  return "?";
}

Bytes OcspRequest::to_der() const {
  Encoder body;
  body.write_integer(serial);
  body.write_octet_string(nonce);
  Encoder out;
  out.write_sequence(body.bytes());
  return out.take();
}

OcspRequest OcspRequest::from_der(ByteView der) {
  Decoder outer(der);
  Decoder seq = outer.read_sequence();
  OcspRequest out;
  out.serial = seq.read_integer();
  out.nonce = seq.read_octet_string();
  if (!seq.at_end() || !outer.at_end()) {
    throw Error(ErrorKind::kFormat, "ocsp request: trailing bytes");
  }
  return out;
}

OcspResponse::OcspResponse(bigint::BigInt serial, OcspCertStatus status,
                           std::uint64_t produced_at, Bytes nonce,
                           std::string responder_cn)
    : serial_(std::move(serial)),
      status_(status),
      produced_at_(produced_at),
      nonce_(std::move(nonce)),
      responder_cn_(std::move(responder_cn)) {}

Bytes OcspResponse::tbs_der() const {
  Encoder body;
  body.write_oid(asn1::oid::kOcspBasic);
  body.write_integer(serial_);
  body.write_integer(static_cast<std::int64_t>(status_));
  body.write_utc_time(produced_at_);
  body.write_octet_string(nonce_);
  body.write_utf8_string(responder_cn_);
  Encoder out;
  out.write_sequence(body.bytes());
  return out.take();
}

Bytes OcspResponse::to_der() const {
  if (signature_.empty()) {
    throw Error(ErrorKind::kState, "ocsp response: not signed yet");
  }
  Encoder sig;
  sig.write_bit_string(signature_);
  Encoder out;
  out.write_sequence(concat({tbs_der(), sig.bytes()}));
  return out.take();
}

OcspResponse OcspResponse::from_der(ByteView der) {
  Decoder outer(der);
  Decoder resp = outer.read_sequence();
  Decoder tbs = resp.read_sequence();
  if (tbs.read_oid() != asn1::oid::kOcspBasic) {
    throw Error(ErrorKind::kFormat, "ocsp: unexpected response type");
  }
  OcspResponse out;
  out.serial_ = tbs.read_integer();
  std::int64_t status = tbs.read_small_integer();
  if (status < 0 || status > 2) {
    throw Error(ErrorKind::kFormat, "ocsp: bad status value");
  }
  out.status_ = static_cast<OcspCertStatus>(status);
  out.produced_at_ = tbs.read_utc_time();
  out.nonce_ = tbs.read_octet_string();
  out.responder_cn_ = tbs.read_utf8_string();
  out.signature_ = resp.read_bit_string();
  if (!resp.at_end() || !outer.at_end()) {
    throw Error(ErrorKind::kFormat, "ocsp response: trailing bytes");
  }
  return out;
}

bool OcspResponse::verify(const rsa::PublicKey& responder_key,
                          const OcspRequest& request, std::uint64_t now,
                          std::uint64_t max_age) const {
  if (!(serial_ == request.serial)) return false;
  if (!ct_equal(nonce_, request.nonce)) return false;
  if (produced_at_ > now) return false;           // from the future
  if (now - produced_at_ > max_age) return false;  // stale
  return rsa::pss_verify(responder_key, tbs_der(), signature_);
}

}  // namespace omadrm::pki
