#include "pki/authority.h"

#include "rsa/pss.h"

namespace omadrm::pki {

CertificationAuthority::CertificationAuthority(std::string cn,
                                               std::size_t key_bits,
                                               const Validity& validity,
                                               Rng& rng)
    : cn_(std::move(cn)), key_(rsa::generate_key(key_bits, rng)) {
  root_cert_ = Certificate(bigint::BigInt(std::uint64_t{1}), cn_, cn_,
                           validity, key_.public_key());
  root_cert_.set_ca(true);
  root_cert_.set_signature(rsa::pss_sign(key_, root_cert_.tbs_der(), rng));
}

Certificate CertificationAuthority::issue(const std::string& subject_cn,
                                          const rsa::PublicKey& subject_key,
                                          const Validity& validity, Rng& rng,
                                          bool ca) {
  bigint::BigInt serial = allocate_serial();
  Certificate cert(serial, cn_, subject_cn, validity, subject_key);
  cert.set_ca(ca);
  cert.set_signature(rsa::pss_sign(key_, cert.tbs_der(), rng));
  return cert;
}

bigint::BigInt CertificationAuthority::allocate_serial() {
  bigint::BigInt serial(next_serial_++);
  issued_.insert(serial.to_dec());
  return serial;
}

void CertificationAuthority::revoke(const bigint::BigInt& serial) {
  revoked_.insert(serial.to_dec());
}

bool CertificationAuthority::is_revoked(const bigint::BigInt& serial) const {
  return revoked_.count(serial.to_dec()) > 0;
}

OcspResponse CertificationAuthority::ocsp_respond(const OcspRequest& request,
                                                  std::uint64_t now,
                                                  Rng& rng) {
  OcspCertStatus status;
  const std::string serial = request.serial.to_dec();
  if (revoked_.count(serial)) {
    status = OcspCertStatus::kRevoked;
  } else if (issued_.count(serial) || serial == "1") {
    status = OcspCertStatus::kGood;
  } else {
    status = OcspCertStatus::kUnknown;
  }
  OcspResponse resp(request.serial, status, now, request.nonce, cn_);
  resp.set_signature(rsa::pss_sign(key_, resp.tbs_der(), rng));
  return resp;
}

SubordinateAuthority::SubordinateAuthority(std::string cn,
                                           std::size_t key_bits,
                                           CertificationAuthority& parent,
                                           const Validity& validity, Rng& rng)
    : cn_(std::move(cn)),
      parent_(parent),
      key_(rsa::generate_key(key_bits, rng)) {
  cert_ = parent_.issue(cn_, key_.public_key(), validity, rng, /*ca=*/true);
}

Certificate SubordinateAuthority::issue(const std::string& subject_cn,
                                        const rsa::PublicKey& subject_key,
                                        const Validity& validity, Rng& rng) {
  Certificate cert(parent_.allocate_serial(), cn_, subject_cn, validity,
                   subject_key);
  cert.set_signature(rsa::pss_sign(key_, cert.tbs_der(), rng));
  return cert;
}

CertStatus validate_against_root(const Certificate& leaf,
                                 const Certificate& trusted_root,
                                 std::uint64_t now) {
  // The root must be self-consistent first.
  CertStatus root_status = verify_certificate(
      trusted_root, trusted_root.subject_key(), trusted_root.issuer_cn(), now);
  if (root_status != CertStatus::kValid) return root_status;
  return verify_certificate(leaf, trusted_root.subject_key(),
                            trusted_root.subject_cn(), now);
}

}  // namespace omadrm::pki
