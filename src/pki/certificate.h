// X.509-profile certificates over the DER substrate.
//
// OMA DRM 2 trust is rooted in a PKI: the Certification Authority (the
// paper names CMLA as the first one) issues certificates to Rights Issuers
// and DRM Agents. We implement a focused X.509 profile: version 3 skeleton
// with serial, single-CN issuer/subject names, UTCTime validity, an RSA
// SubjectPublicKeyInfo, and an RSASSA-PSS signature over the DER-encoded
// TBS (to-be-signed) structure. That exercises the same terminal-side
// cryptographic work (SHA-1 over the TBS + RSAVP1) that the paper's cost
// model charges for certificate verification.
#pragma once

#include <string>

#include "bigint/bigint.h"
#include "common/bytes.h"
#include "common/random.h"
#include "rsa/rsa.h"

namespace omadrm::pki {

/// Validity window in Unix seconds (inclusive bounds).
struct Validity {
  std::uint64_t not_before = 0;
  std::uint64_t not_after = 0;
};

class Certificate {
 public:
  Certificate() = default;
  Certificate(bigint::BigInt serial, std::string issuer_cn,
              std::string subject_cn, Validity validity,
              rsa::PublicKey subject_key);

  const bigint::BigInt& serial() const { return serial_; }
  const std::string& issuer_cn() const { return issuer_cn_; }
  const std::string& subject_cn() const { return subject_cn_; }
  const Validity& validity() const { return validity_; }
  const rsa::PublicKey& subject_key() const { return subject_key_; }
  const Bytes& signature() const { return signature_; }

  /// CA marker (the profile's basicConstraints analogue): only
  /// certificates with this bit may act as chain intermediates. Part of
  /// the signed TBS — set it before signing. Encoded as an optional
  /// trailing BOOLEAN, so end-entity certificates keep the legacy layout.
  bool is_ca() const { return is_ca_; }
  void set_ca(bool ca) { is_ca_ = ca; }

  bool is_self_signed() const { return issuer_cn_ == subject_cn_; }

  /// DER of the TBSCertificate — the exact bytes that get signed/verified.
  Bytes tbs_der() const;

  /// Full certificate DER: SEQUENCE { tbs, sigAlg, signature }.
  Bytes to_der() const;
  static Certificate from_der(ByteView der);

  /// Attaches a signature produced by the issuer over tbs_der().
  void set_signature(Bytes signature) { signature_ = std::move(signature); }

 private:
  bigint::BigInt serial_;
  std::string issuer_cn_;
  std::string subject_cn_;
  Validity validity_;
  rsa::PublicKey subject_key_;
  Bytes signature_;
  bool is_ca_ = false;
};

/// Outcome of a single-certificate verification.
enum class CertStatus {
  kValid,
  kBadSignature,
  kNotYetValid,
  kExpired,
  kIssuerMismatch,
  kRevoked,  // reported by ChainVerifier's revocation denylist
};

const char* to_string(CertStatus s);

/// Verifies `cert` against the issuer public key at time `now`.
/// `expected_issuer_cn` guards against signature-valid-but-wrong-issuer
/// confusion when multiple CAs are in play.
CertStatus verify_certificate(const Certificate& cert,
                              const rsa::PublicKey& issuer_key,
                              const std::string& expected_issuer_cn,
                              std::uint64_t now);

}  // namespace omadrm::pki
