// Certification Authority — the trust anchor of the OMA DRM 2 ecosystem
// (the role CMLA plays in the paper's Figure 1). Issues certificates to
// Rights Issuers and DRM Agents, maintains a revocation list, and acts as
// the OCSP responder.
#pragma once

#include <set>
#include <string>

#include "common/random.h"
#include "pki/certificate.h"
#include "pki/ocsp.h"

namespace omadrm::pki {

class CertificationAuthority {
 public:
  /// Creates a CA with a fresh self-signed root certificate.
  CertificationAuthority(std::string cn, std::size_t key_bits,
                         const Validity& validity, Rng& rng);

  const Certificate& root_certificate() const { return root_cert_; }
  const std::string& cn() const { return cn_; }
  rsa::PublicKey public_key() const { return key_.public_key(); }

  /// Issues a certificate over `subject_key` with a fresh serial. Pass
  /// `ca = true` only for subordinate authorities: the CA bit is what
  /// lets a certificate act as a chain intermediate.
  Certificate issue(const std::string& subject_cn,
                    const rsa::PublicKey& subject_key,
                    const Validity& validity, Rng& rng, bool ca = false);

  /// Reserves a fresh serial in this CA's issued set without minting a
  /// certificate — used by subordinate authorities so the certificates
  /// they sign stay covered by this CA's OCSP responder.
  bigint::BigInt allocate_serial();

  /// Marks a serial as revoked; subsequent OCSP responses report it.
  void revoke(const bigint::BigInt& serial);
  bool is_revoked(const bigint::BigInt& serial) const;

  /// Responds to an OCSP request at time `now`. Serials this CA never
  /// issued report kUnknown.
  OcspResponse ocsp_respond(const OcspRequest& request, std::uint64_t now,
                            Rng& rng);

 private:
  std::string cn_;
  rsa::PrivateKey key_;
  Certificate root_cert_;
  std::uint64_t next_serial_ = 2;  // serial 1 is the root itself
  std::set<std::string> issued_;   // serial decimal strings
  std::set<std::string> revoked_;
};

/// An intermediate CA: holds its own key pair, carries a certificate
/// issued by the parent root, and issues end-entity certificates signed
/// with its own key. Serials come from the parent's allocator so the
/// parent's OCSP responder covers them. This is what turns the PKI into
/// real multi-link chains (device/RI -> intermediate -> root) — the
/// configuration whose repeated verification cost the paper's RI-context
/// caching argument targets.
class SubordinateAuthority {
 public:
  SubordinateAuthority(std::string cn, std::size_t key_bits,
                       CertificationAuthority& parent,
                       const Validity& validity, Rng& rng);

  const std::string& cn() const { return cn_; }
  const Certificate& certificate() const { return cert_; }
  rsa::PublicKey public_key() const { return key_.public_key(); }

  /// Issues a certificate signed with this intermediate's key.
  Certificate issue(const std::string& subject_cn,
                    const rsa::PublicKey& subject_key,
                    const Validity& validity, Rng& rng);

 private:
  std::string cn_;
  CertificationAuthority& parent_;
  rsa::PrivateKey key_;
  Certificate cert_;
};

/// Validates a leaf certificate against a trusted root at time `now`,
/// checking both the leaf signature/validity and the root's self-signature.
CertStatus validate_against_root(const Certificate& leaf,
                                 const Certificate& trusted_root,
                                 std::uint64_t now);

}  // namespace omadrm::pki
