// Certificate-chain verification with a verdict cache.
//
// The paper's central cost observation is that RSA public-key operations
// for certificate-chain verification dominate ROAP processing on embedded
// hardware, and that the DRM Agent should verify an RI's chain once and
// then rely on the stored RI Context ("the Device is not required to
// verify that Rights Issuer's certificate chain again" — OMA DRM 2 via
// paper §2.4.1). ChainVerifier is that mechanism: a full RSASSA-PSS walk
// down the chain on first sight, then O(1) lookups keyed by the chain's
// fingerprint for as long as `now` stays inside the chain's validity
// window. Revocation invalidates by serial.
//
// Thread-safe with reader bias: the cache-hit path (the steady state of
// a busy RI — every re-registering device) takes only a shared lock, so
// concurrent hits from different RI shards never serialize; counters are
// atomics. Insertions, expiry erases, revocation, clear() and
// set_enabled() take the writer lock. The verdict cache is FIFO (no
// LRU-on-lookup mutation), which is what makes the shared-lock hit path
// sound.
//
// The RSA verification primitive is injected (VerifyFn) so callers can
// route it through a metered CryptoProvider — cache hits then charge
// exactly zero RSA operations to the cycle ledger, which is the effect the
// paper predicts for RI-context caching.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/ordered_mutex.h"
#include "common/thread_annotations.h"
#include "pki/certificate.h"

namespace omadrm::provider {
class CryptoProvider;
}

namespace omadrm::pki {

/// Outcome of a full chain walk. Cached only when status == kValid.
/// Shared by handle (std::shared_ptr) — not copyable, by design: every
/// holder sees the one instance whose epoch stamp the verifier refreshes.
struct ChainVerdict {
  CertStatus status = CertStatus::kBadSignature;
  /// Intersection of every chain certificate's validity window; a cached
  /// verdict applies only while `now` stays inside it.
  std::uint64_t valid_from = 0;
  std::uint64_t valid_until = 0;
  std::string leaf_subject_cn;
  std::vector<std::string> serials;  // decimal, leaf-first
  std::string fingerprint;           // hex SHA-1 over chain DERs + anchor
  /// Issuing verifier's invalidation epoch at creation time; lets
  /// revalidate() accept the handle without recomputing the fingerprint.
  /// Atomic because cache hits re-stamp it under the *shared* lock.
  std::atomic<std::uint64_t> epoch{0};
};

struct ChainCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;          // full verifications performed
  std::uint64_t invalidations = 0;   // entries dropped (revocation/expiry)
};

class ChainVerifier {
 public:
  using VerifyFn =
      std::function<bool(const rsa::PublicKey&, ByteView, ByteView)>;

  /// Cached-verdict bound (FIFO eviction): keeps a busy RI's per-device
  /// cache from growing with the total population ever registered.
  static constexpr std::size_t kCacheCapacity = 256;

  /// `verify` defaults to the unmetered rsa::pss_verify; agents inject a
  /// metered provider's pss_verify instead.
  explicit ChainVerifier(Certificate trust_root, VerifyFn verify = {});

  /// Verifies `chain` (leaf first, each certificate signed by the next,
  /// the last one signed by the trust root) at time `now`. The trust
  /// anchor itself is axiomatically trusted and not re-verified. Returns
  /// a shared verdict; cache hits return the identical object. Throws
  /// Error(kProtocol) on an empty chain.
  std::shared_ptr<const ChainVerdict> verify(
      const std::vector<Certificate>& chain, std::uint64_t now);

  /// O(1) fast path for callers that kept the verdict handle (the agent's
  /// RI Context does): accepts `handle` without hashing or re-encoding the
  /// chain when it is still current — same verifier epoch (no intervening
  /// invalidation/clear/disable) and `now` inside the validity window.
  /// Falls back to verify(chain, now) otherwise.
  std::shared_ptr<const ChainVerdict> revalidate(
      const std::shared_ptr<const ChainVerdict>& handle,
      const std::vector<Certificate>& chain, std::uint64_t now);

  /// Drops every cached verdict whose chain contains `serial` (e.g. after
  /// an OCSP response reports it revoked) AND adds the serial to a
  /// durable denylist: later walks of any chain containing it short-
  /// circuit to kRevoked instead of re-admitting the chain.
  void invalidate_serial(const bigint::BigInt& serial);

  /// Drops all cached verdicts.
  void clear();

  /// Disabling forces a full verification on every call (and clears the
  /// cache); used by benchmarks to measure the uncached baseline.
  void set_enabled(bool enabled);
  bool enabled() const;

  ChainCacheStats stats() const;
  void reset_stats();

  const Certificate& trust_root() const { return trust_root_; }

  /// Hex SHA-1 binding a chain to its trust anchor (cache key).
  static std::string fingerprint(const std::vector<Certificate>& chain,
                                 const Certificate& trust_root);

  /// Builds a VerifyFn routing RSASSA-PSS verification through `provider`
  /// (typically a metered one, so chain walks charge the cycle ledger and
  /// cache hits charge nothing). Captures the provider's address only —
  /// the provider must outlive every verifier using the result, and the
  /// capture stays valid across moves of the verifier's owner.
  static VerifyFn metered_verify(provider::CryptoProvider& provider);

 private:
  /// fingerprint() against the pre-encoded trust-root DER (the anchor is
  /// immutable for the verifier's lifetime; re-encoding it per call would
  /// dominate the cache-hit cost).
  std::string chain_fingerprint(const std::vector<Certificate>& chain) const;
  std::shared_ptr<ChainVerdict> verify_full(
      const std::vector<Certificate>& chain, std::uint64_t now,
      std::string fp) const;

  /// Everything shared across threads, heap-held in one block so the
  /// verifier (and agents embedding it) stays movable despite the
  /// non-movable mutex and atomics.
  struct State {
    // Rank kChainVerdict: taken with a shard lock held (handler-path
    // verification); the expensive RSA walk runs OUTSIDE this lock, so
    // only map/deque bookkeeping nests under it.
    OrderedSharedMutex mu{LockRank::kChainVerdict, "pki.chain_verdict"};
    std::atomic<bool> enabled{true};
    // Bumped on every invalidation, clear, or disable: conservatively
    // retires all outstanding verdict handles at once. Cache hits
    // re-stamp the surviving verdict to the current epoch.
    std::atomic<std::uint64_t> epoch{1};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> invalidations{0};
    std::map<std::string, std::shared_ptr<ChainVerdict>> cache
        GUARDED_BY(mu);
    std::deque<std::string> insertion_order GUARDED_BY(mu);  // FIFO eviction
    std::set<std::string> revoked_serials GUARDED_BY(mu);  // durable denylist
  };

  Certificate trust_root_;
  Bytes trust_root_der_;  // encoded once at construction
  VerifyFn verify_fn_;
  bool root_self_ok_ = false;
  mutable std::unique_ptr<State> state_ = std::make_unique<State>();
};

}  // namespace omadrm::pki
