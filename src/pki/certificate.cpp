#include "pki/certificate.h"

#include "asn1/der.h"
#include "asn1/oid.h"
#include "common/error.h"
#include "rsa/pss.h"

namespace omadrm::pki {

using asn1::Decoder;
using asn1::Encoder;
using omadrm::Error;
using omadrm::ErrorKind;

namespace {

// Name ::= SEQUENCE { SET { SEQUENCE { OID cn, UTF8String value } } }
Bytes encode_name(const std::string& cn) {
  Encoder attr;
  attr.write_oid(asn1::oid::kCommonName);
  attr.write_utf8_string(cn);
  Encoder attr_seq;
  attr_seq.write_sequence(attr.bytes());
  Encoder rdn_set;
  rdn_set.write_set(attr_seq.bytes());
  Encoder name;
  name.write_sequence(rdn_set.bytes());
  return name.take();
}

std::string decode_name(Decoder& d) {
  Decoder name = d.read_sequence();
  Decoder rdn = name.read_set();
  Decoder attr = rdn.read_sequence();
  std::string oid = attr.read_oid();
  if (oid != asn1::oid::kCommonName) {
    throw Error(ErrorKind::kFormat, "certificate: expected commonName");
  }
  return attr.read_utf8_string();
}

Bytes encode_spki(const rsa::PublicKey& key) {
  Encoder rsa_key;
  rsa_key.write_integer(key.n);
  rsa_key.write_integer(key.e);
  Encoder rsa_key_seq;
  rsa_key_seq.write_sequence(rsa_key.bytes());

  Encoder alg;
  alg.write_oid(asn1::oid::kRsaEncryption);
  alg.write_null();
  Encoder alg_seq;
  alg_seq.write_sequence(alg.bytes());

  Encoder spki;
  spki.write_bit_string(rsa_key_seq.bytes());
  Encoder out;
  out.write_sequence(concat({alg_seq.bytes(), spki.bytes()}));
  return out.take();
}

rsa::PublicKey decode_spki(Decoder& d) {
  Decoder spki = d.read_sequence();
  Decoder alg = spki.read_sequence();
  std::string oid = alg.read_oid();
  if (oid != asn1::oid::kRsaEncryption) {
    throw Error(ErrorKind::kFormat, "certificate: unsupported key algorithm");
  }
  alg.read_null();
  Bytes key_der = spki.read_bit_string();
  Decoder key_outer(key_der);
  Decoder key_seq = key_outer.read_sequence();
  rsa::PublicKey key;
  key.n = key_seq.read_integer();
  key.e = key_seq.read_integer();
  return key;
}

Bytes encode_sig_alg() {
  Encoder alg;
  alg.write_oid(asn1::oid::kRsassaPss);
  Encoder out;
  out.write_sequence(alg.bytes());
  return out.take();
}

}  // namespace

Certificate::Certificate(bigint::BigInt serial, std::string issuer_cn,
                         std::string subject_cn, Validity validity,
                         rsa::PublicKey subject_key)
    : serial_(std::move(serial)),
      issuer_cn_(std::move(issuer_cn)),
      subject_cn_(std::move(subject_cn)),
      validity_(validity),
      subject_key_(std::move(subject_key)) {}

Bytes Certificate::tbs_der() const {
  Encoder body;
  body.write_integer(serial_);
  Bytes sig_alg = encode_sig_alg();
  Bytes issuer = encode_name(issuer_cn_);
  Bytes subject = encode_name(subject_cn_);

  Encoder validity;
  validity.write_utc_time(validity_.not_before);
  validity.write_utc_time(validity_.not_after);
  Encoder validity_seq;
  validity_seq.write_sequence(validity.bytes());

  Bytes spki = encode_spki(subject_key_);

  Encoder tail;
  if (is_ca_) tail.write_boolean(true);

  Encoder tbs;
  tbs.write_sequence(concat({body.bytes(), sig_alg, issuer,
                             validity_seq.bytes(), subject, spki,
                             tail.bytes()}));
  return tbs.take();
}

Bytes Certificate::to_der() const {
  if (signature_.empty()) {
    throw Error(ErrorKind::kState, "certificate: not signed yet");
  }
  Encoder sig;
  sig.write_bit_string(signature_);
  Encoder out;
  out.write_sequence(concat({tbs_der(), encode_sig_alg(), sig.bytes()}));
  return out.take();
}

Certificate Certificate::from_der(ByteView der) {
  Decoder outer(der);
  Decoder cert = outer.read_sequence();
  if (!outer.at_end()) {
    throw Error(ErrorKind::kFormat, "certificate: trailing bytes");
  }

  Decoder tbs = cert.read_sequence();
  Certificate out;
  out.serial_ = tbs.read_integer();
  {
    Decoder alg = tbs.read_sequence();
    if (alg.read_oid() != asn1::oid::kRsassaPss) {
      throw Error(ErrorKind::kFormat,
                  "certificate: unsupported signature algorithm");
    }
  }
  out.issuer_cn_ = decode_name(tbs);
  {
    Decoder validity = tbs.read_sequence();
    out.validity_.not_before = validity.read_utc_time();
    out.validity_.not_after = validity.read_utc_time();
  }
  out.subject_cn_ = decode_name(tbs);
  out.subject_key_ = decode_spki(tbs);
  if (!tbs.at_end()) out.is_ca_ = tbs.read_boolean();

  {
    Decoder alg = cert.read_sequence();
    if (alg.read_oid() != asn1::oid::kRsassaPss) {
      throw Error(ErrorKind::kFormat,
                  "certificate: signature algorithm mismatch");
    }
  }
  out.signature_ = cert.read_bit_string();
  if (!cert.at_end()) {
    throw Error(ErrorKind::kFormat, "certificate: trailing TLVs");
  }
  return out;
}

const char* to_string(CertStatus s) {
  switch (s) {
    case CertStatus::kValid: return "valid";
    case CertStatus::kBadSignature: return "bad-signature";
    case CertStatus::kNotYetValid: return "not-yet-valid";
    case CertStatus::kExpired: return "expired";
    case CertStatus::kIssuerMismatch: return "issuer-mismatch";
    case CertStatus::kRevoked: return "revoked";
  }
  return "unknown";
}

CertStatus verify_certificate(const Certificate& cert,
                              const rsa::PublicKey& issuer_key,
                              const std::string& expected_issuer_cn,
                              std::uint64_t now) {
  if (cert.issuer_cn() != expected_issuer_cn) {
    return CertStatus::kIssuerMismatch;
  }
  if (now < cert.validity().not_before) return CertStatus::kNotYetValid;
  if (now > cert.validity().not_after) return CertStatus::kExpired;
  if (!rsa::pss_verify(issuer_key, cert.tbs_der(), cert.signature())) {
    return CertStatus::kBadSignature;
  }
  return CertStatus::kValid;
}

}  // namespace omadrm::pki
