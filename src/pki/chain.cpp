#include "pki/chain.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "common/hex.h"
#include "crypto/sha1.h"
#include "provider/provider.h"
#include "rsa/pss.h"

namespace omadrm::pki {

using omadrm::Error;
using omadrm::ErrorKind;

ChainVerifier::ChainVerifier(Certificate trust_root, VerifyFn verify)
    : trust_root_(std::move(trust_root)), verify_fn_(std::move(verify)) {
  if (!verify_fn_) {
    verify_fn_ = [](const rsa::PublicKey& key, ByteView message,
                    ByteView signature) {
      return rsa::pss_verify(key, message, signature);
    };
  }
  // One-time anchor self-consistency check (what validate_against_root
  // performed per call). Deliberately unmetered: a terminal validates its
  // baked-in root at boot, not per ROAP message.
  root_self_ok_ = rsa::pss_verify(trust_root_.subject_key(),
                                  trust_root_.tbs_der(),
                                  trust_root_.signature());
  trust_root_der_ = trust_root_.to_der();
}

namespace {

std::string fingerprint_impl(const std::vector<Certificate>& chain,
                             const Bytes& trust_root_der) {
  crypto::Sha1 h;
  auto absorb = [&h](const Bytes& der) {
    std::uint8_t len[4];
    store_be32(static_cast<std::uint32_t>(der.size()), len);
    h.update(ByteView(len, 4));
    h.update(der);
  };
  for (const Certificate& cert : chain) absorb(cert.to_der());
  absorb(trust_root_der);
  return to_hex(h.finish());
}

}  // namespace

std::string ChainVerifier::fingerprint(const std::vector<Certificate>& chain,
                                       const Certificate& trust_root) {
  return fingerprint_impl(chain, trust_root.to_der());
}

ChainVerifier::VerifyFn ChainVerifier::metered_verify(
    provider::CryptoProvider& provider) {
  return [provider = &provider](const rsa::PublicKey& key, ByteView message,
                                ByteView signature) {
    return provider->pss_verify(key, message, signature);
  };
}

std::string ChainVerifier::chain_fingerprint(
    const std::vector<Certificate>& chain) const {
  return fingerprint_impl(chain, trust_root_der_);
}

std::shared_ptr<ChainVerdict> ChainVerifier::verify_full(
    const std::vector<Certificate>& chain, std::uint64_t now,
    std::string fp) const {
  auto verdict = std::make_shared<ChainVerdict>();
  verdict->fingerprint = std::move(fp);
  verdict->leaf_subject_cn = chain.front().subject_cn();
  // The verdict window is the intersection of every link's validity,
  // trust anchor included — an expired root must not keep vouching.
  verdict->valid_from = trust_root_.validity().not_before;
  verdict->valid_until = trust_root_.validity().not_after;
  verdict->status = CertStatus::kValid;

  if (!root_self_ok_) {
    verdict->status = CertStatus::kBadSignature;
    return verdict;
  }
  if (now < trust_root_.validity().not_before) {
    verdict->status = CertStatus::kNotYetValid;
    return verdict;
  }
  if (now > trust_root_.validity().not_after) {
    verdict->status = CertStatus::kExpired;
    return verdict;
  }

  for (std::size_t i = 0; i < chain.size(); ++i) {
    const Certificate& cert = chain[i];
    const Certificate& issuer = i + 1 < chain.size() ? chain[i + 1]
                                                     : trust_root_;
    verdict->serials.push_back(cert.serial().to_dec());
    verdict->valid_from =
        std::max(verdict->valid_from, cert.validity().not_before);
    verdict->valid_until =
        std::min(verdict->valid_until, cert.validity().not_after);

    if (cert.issuer_cn() != issuer.subject_cn()) {
      verdict->status = CertStatus::kIssuerMismatch;
      return verdict;
    }
    // Only CA-marked certificates may vouch for others: without this an
    // arbitrary end-entity certificate (e.g. another device's) could be
    // inserted as a chain link and mint rogue issuers.
    if (i + 1 < chain.size() && !chain[i + 1].is_ca()) {
      verdict->status = CertStatus::kIssuerMismatch;
      return verdict;
    }
    if (now < cert.validity().not_before) {
      verdict->status = CertStatus::kNotYetValid;
      return verdict;
    }
    if (now > cert.validity().not_after) {
      verdict->status = CertStatus::kExpired;
      return verdict;
    }
    if (!verify_fn_(issuer.subject_key(), cert.tbs_der(),
                    cert.signature())) {
      verdict->status = CertStatus::kBadSignature;
      return verdict;
    }
  }
  return verdict;
}

std::shared_ptr<const ChainVerdict> ChainVerifier::verify(
    const std::vector<Certificate>& chain, std::uint64_t now) {
  if (chain.empty()) {
    throw Error(ErrorKind::kProtocol, "chain verifier: empty chain");
  }
  State& st = *state_;
  std::string fp = chain_fingerprint(chain);

  std::vector<std::string> serials;
  serials.reserve(chain.size());
  for (const Certificate& cert : chain) serials.push_back(cert.serial().to_dec());

  // Reader-biased fast path: denylist check + cache hit take only the
  // shared lock, so concurrent hits (the steady state — every repeat
  // device) never serialize. Everything that mutates the map runs under
  // the writer lock below.
  std::uint64_t epoch_observed;
  bool stale_entry = false;
  {
    ReaderLock lock(st.mu);
    epoch_observed = st.epoch.load(std::memory_order_relaxed);
    // Durable revocation: a denylisted serial anywhere in the chain
    // short-circuits before any RSA work, and the verdict is never
    // cached (the denylist itself is the persistent record).
    for (const std::string& serial : serials) {
      if (st.revoked_serials.count(serial)) {
        auto revoked = std::make_shared<ChainVerdict>();
        revoked->status = CertStatus::kRevoked;
        revoked->fingerprint = std::move(fp);
        revoked->leaf_subject_cn = chain.front().subject_cn();
        revoked->serials = std::move(serials);
        // Not a miss: no verification runs (misses count full walks).
        return revoked;
      }
    }
    if (st.enabled.load(std::memory_order_relaxed)) {
      auto it = st.cache.find(fp);
      if (it != st.cache.end()) {
        if (now >= it->second->valid_from && now <= it->second->valid_until) {
          st.hits.fetch_add(1, std::memory_order_relaxed);
          // A surviving entry has outlived any invalidation that bumped
          // the epoch — re-stamp it so handle-based revalidation works
          // again for its holders. (Writers are excluded by our shared
          // lock, so epoch_observed is still the current epoch.)
          it->second->epoch.store(epoch_observed, std::memory_order_relaxed);
          return it->second;
        }
        // The chain aged out of (or has not yet entered) its window; the
        // stale verdict must not shadow the fresh, failing verification.
        stale_entry = true;
      }
    }
  }
  if (stale_entry) {
    WriterLock lock(st.mu);
    auto it = st.cache.find(fp);
    if (it != st.cache.end() &&
        !(now >= it->second->valid_from && now <= it->second->valid_until)) {
      std::erase(st.insertion_order, it->first);
      st.cache.erase(it);
      st.invalidations.fetch_add(1, std::memory_order_relaxed);
    }
  }
  st.misses.fetch_add(1, std::memory_order_relaxed);

  // Full walk outside the lock: the RSA work is the expensive part and may
  // go through a caller-provided (metered) primitive.
  std::shared_ptr<ChainVerdict> verdict = verify_full(chain, now, fp);

  if (verdict->status == CertStatus::kValid) {
    WriterLock lock(st.mu);
    // An invalidation that raced the (unlocked) walk must win: caching a
    // verdict computed before the epoch moved could resurrect a chain
    // that was just revoked.
    if (st.enabled.load(std::memory_order_relaxed) &&
        st.epoch.load(std::memory_order_relaxed) == epoch_observed) {
      verdict->epoch.store(epoch_observed, std::memory_order_relaxed);
      if (st.cache.emplace(verdict->fingerprint, verdict).second) {
        st.insertion_order.push_back(verdict->fingerprint);
      }
      // FIFO bound. The queue mirrors the map exactly (every erase also
      // purges its queue entry), so the front really is the oldest.
      while (st.cache.size() > kCacheCapacity && !st.insertion_order.empty()) {
        st.cache.erase(st.insertion_order.front());
        st.insertion_order.pop_front();
      }
    }
  }
  return verdict;
}

std::shared_ptr<const ChainVerdict> ChainVerifier::revalidate(
    const std::shared_ptr<const ChainVerdict>& handle,
    const std::vector<Certificate>& chain, std::uint64_t now) {
  State& st = *state_;
  if (handle && handle->status == CertStatus::kValid &&
      now >= handle->valid_from && now <= handle->valid_until) {
    ReaderLock lock(st.mu);
    if (st.enabled.load(std::memory_order_relaxed) &&
        handle->epoch.load(std::memory_order_relaxed) ==
            st.epoch.load(std::memory_order_relaxed)) {
      st.hits.fetch_add(1, std::memory_order_relaxed);
      return handle;
    }
  }
  return verify(chain, now);
}

void ChainVerifier::invalidate_serial(const bigint::BigInt& serial) {
  State& st = *state_;
  const std::string needle = serial.to_dec();
  WriterLock lock(st.mu);
  st.revoked_serials.insert(needle);
  for (auto it = st.cache.begin(); it != st.cache.end();) {
    const auto& serials = it->second->serials;
    if (std::find(serials.begin(), serials.end(), needle) != serials.end()) {
      std::erase(st.insertion_order, it->first);
      it = st.cache.erase(it);
      st.invalidations.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++it;
    }
  }
  // Unconditional: also fences any walk currently in flight (it will see
  // the moved epoch and decline to cache its pre-revocation verdict) and
  // retires outstanding handles.
  st.epoch.fetch_add(1, std::memory_order_relaxed);
}

void ChainVerifier::clear() {
  State& st = *state_;
  WriterLock lock(st.mu);
  st.cache.clear();
  st.insertion_order.clear();
  st.epoch.fetch_add(1, std::memory_order_relaxed);
}

void ChainVerifier::set_enabled(bool enabled) {
  State& st = *state_;
  WriterLock lock(st.mu);
  st.enabled.store(enabled, std::memory_order_relaxed);
  if (!enabled) {
    st.cache.clear();
    st.insertion_order.clear();
    st.epoch.fetch_add(1, std::memory_order_relaxed);
  }
}

bool ChainVerifier::enabled() const {
  return state_->enabled.load(std::memory_order_relaxed);
}

ChainCacheStats ChainVerifier::stats() const {
  const State& st = *state_;
  ChainCacheStats out;
  out.hits = st.hits.load(std::memory_order_relaxed);
  out.misses = st.misses.load(std::memory_order_relaxed);
  out.invalidations = st.invalidations.load(std::memory_order_relaxed);
  return out;
}

void ChainVerifier::reset_stats() {
  State& st = *state_;
  st.hits.store(0, std::memory_order_relaxed);
  st.misses.store(0, std::memory_order_relaxed);
  st.invalidations.store(0, std::memory_order_relaxed);
}

}  // namespace omadrm::pki
