#include "xml/xml.h"

#include "common/error.h"

namespace omadrm::xml {

using omadrm::Error;
using omadrm::ErrorKind;

// ---------------------------------------------------------------------------
// Element
// ---------------------------------------------------------------------------

void Element::set_attr(const std::string& key, const std::string& value) {
  for (auto& [k, v] : attrs_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  attrs_.emplace_back(key, value);
}

const std::string* Element::attr(const std::string& key) const {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::string& Element::require_attr(const std::string& key) const {
  const std::string* v = attr(key);
  if (!v) {
    throw Error(ErrorKind::kFormat,
                "xml: missing attribute '" + key + "' on <" + name_ + ">");
  }
  return *v;
}

Element& Element::add_child(Element child) {
  children_.push_back(std::move(child));
  return children_.back();
}

Element& Element::add_text_child(const std::string& name,
                                 const std::string& text) {
  Element e(name);
  e.set_text(text);
  return add_child(std::move(e));
}

const Element* Element::child(const std::string& name) const {
  for (const auto& c : children_) {
    if (c.name() == name) return &c;
  }
  return nullptr;
}

const Element& Element::require_child(const std::string& name) const {
  const Element* c = child(name);
  if (!c) {
    throw Error(ErrorKind::kFormat,
                "xml: missing child <" + name + "> in <" + name_ + ">");
  }
  return *c;
}

std::vector<const Element*> Element::children_named(
    const std::string& name) const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (c.name() == name) out.push_back(&c);
  }
  return out;
}

const std::string& Element::child_text(const std::string& name) const {
  return require_child(name).text();
}

bool Element::operator==(const Element& other) const {
  return name_ == other.name_ && text_ == other.text_ &&
         attrs_ == other.attrs_ && children_ == other.children_;
}

void Element::serialize_into(std::string& out, int depth, bool pretty) const {
  auto indent = [&]() {
    if (pretty) out.append(static_cast<std::size_t>(depth) * 2, ' ');
  };
  indent();
  out.push_back('<');
  out += name_;
  for (const auto& [k, v] : attrs_) {
    out.push_back(' ');
    out += k;
    out += "=\"";
    escape_attr_into(v, out);
    out.push_back('"');
  }
  if (text_.empty() && children_.empty()) {
    out += "/>";
    if (pretty) out.push_back('\n');
    return;
  }
  out.push_back('>');
  if (!text_.empty()) {
    escape_text_into(text_, out);
  }
  if (!children_.empty()) {
    if (pretty) out.push_back('\n');
    for (const auto& c : children_) {
      c.serialize_into(out, depth + 1, pretty);
    }
    indent();
  }
  out += "</";
  out += name_;
  out.push_back('>');
  if (pretty) out.push_back('\n');
}

std::string Element::serialize(bool pretty) const {
  std::string out;
  serialize_into(out, 0, pretty);
  return out;
}

// ---------------------------------------------------------------------------
// Parsing — the zero-copy Node parser is the single parser core; the
// Element entry point materializes its result into an owning tree.
// ---------------------------------------------------------------------------

Element to_element(const Node& n) {
  Element e{std::string(n.name())};
  e.set_text(std::string(n.text()));
  for (const Attr* a = n.first_attr(); a; a = a->next) {
    e.set_attr(std::string(a->name), std::string(a->value));
  }
  for (const Node& c : n.children()) {
    e.add_child(to_element(c));
  }
  return e;
}

Element parse(std::string_view doc) {
  Arena arena;
  return to_element(parse_in(arena, doc));
}

}  // namespace omadrm::xml
