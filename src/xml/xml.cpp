#include "xml/xml.h"

#include "common/error.h"

namespace omadrm::xml {

using omadrm::Error;
using omadrm::ErrorKind;

// ---------------------------------------------------------------------------
// Element
// ---------------------------------------------------------------------------

void Element::set_attr(const std::string& key, const std::string& value) {
  for (auto& [k, v] : attrs_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  attrs_.emplace_back(key, value);
}

const std::string* Element::attr(const std::string& key) const {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::string& Element::require_attr(const std::string& key) const {
  const std::string* v = attr(key);
  if (!v) {
    throw Error(ErrorKind::kFormat,
                "xml: missing attribute '" + key + "' on <" + name_ + ">");
  }
  return *v;
}

Element& Element::add_child(Element child) {
  children_.push_back(std::move(child));
  return children_.back();
}

Element& Element::add_text_child(const std::string& name,
                                 const std::string& text) {
  Element e(name);
  e.set_text(text);
  return add_child(std::move(e));
}

const Element* Element::child(const std::string& name) const {
  for (const auto& c : children_) {
    if (c.name() == name) return &c;
  }
  return nullptr;
}

const Element& Element::require_child(const std::string& name) const {
  const Element* c = child(name);
  if (!c) {
    throw Error(ErrorKind::kFormat,
                "xml: missing child <" + name + "> in <" + name_ + ">");
  }
  return *c;
}

std::vector<const Element*> Element::children_named(
    const std::string& name) const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (c.name() == name) out.push_back(&c);
  }
  return out;
}

const std::string& Element::child_text(const std::string& name) const {
  return require_child(name).text();
}

bool Element::operator==(const Element& other) const {
  return name_ == other.name_ && text_ == other.text_ &&
         attrs_ == other.attrs_ && children_ == other.children_;
}

std::string escape_text(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string escape_attr(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void Element::serialize_into(std::string& out, int depth, bool pretty) const {
  auto indent = [&]() {
    if (pretty) out.append(static_cast<std::size_t>(depth) * 2, ' ');
  };
  indent();
  out.push_back('<');
  out += name_;
  for (const auto& [k, v] : attrs_) {
    out.push_back(' ');
    out += k;
    out += "=\"";
    out += escape_attr(v);
    out.push_back('"');
  }
  if (text_.empty() && children_.empty()) {
    out += "/>";
    if (pretty) out.push_back('\n');
    return;
  }
  out.push_back('>');
  if (!text_.empty()) {
    out += escape_text(text_);
  }
  if (!children_.empty()) {
    if (pretty) out.push_back('\n');
    for (const auto& c : children_) {
      c.serialize_into(out, depth + 1, pretty);
    }
    indent();
  }
  out += "</";
  out += name_;
  out.push_back('>');
  if (pretty) out.push_back('\n');
}

std::string Element::serialize(bool pretty) const {
  std::string out;
  serialize_into(out, 0, pretty);
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view doc) : doc_(doc) {}

  Element parse_document() {
    skip_misc();
    Element root = parse_element();
    skip_misc();
    if (pos_ != doc_.size()) {
      fail("content after document root");
    }
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw Error(ErrorKind::kFormat,
                "xml: " + why + " at offset " + std::to_string(pos_));
  }

  bool eof() const { return pos_ >= doc_.size(); }
  char peek() const {
    if (eof()) fail("unexpected end of document");
    return doc_[pos_];
  }
  char take() {
    char c = peek();
    ++pos_;
    return c;
  }
  bool consume(std::string_view token) {
    if (doc_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }
  void expect(std::string_view token, const char* what) {
    if (!consume(token)) fail(std::string("expected ") + what);
  }
  static bool is_space(char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  }
  static bool is_name_start(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  }
  static bool is_name_char(char c) {
    return is_name_start(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
  }

  void skip_space() {
    while (!eof() && is_space(doc_[pos_])) ++pos_;
  }

  // Whitespace, comments, processing instructions between markup.
  void skip_misc() {
    for (;;) {
      skip_space();
      if (consume("<!--")) {
        std::size_t end = doc_.find("-->", pos_);
        if (end == std::string_view::npos) fail("unterminated comment");
        pos_ = end + 3;
      } else if (consume("<?")) {
        std::size_t end = doc_.find("?>", pos_);
        if (end == std::string_view::npos) fail("unterminated PI");
        pos_ = end + 2;
      } else {
        return;
      }
    }
  }

  std::string parse_name() {
    if (!is_name_start(peek())) fail("invalid name start");
    std::size_t start = pos_;
    while (!eof() && is_name_char(doc_[pos_])) ++pos_;
    return std::string(doc_.substr(start, pos_ - start));
  }

  std::string decode_entity() {
    // Called after '&'.
    if (consume("amp;")) return "&";
    if (consume("lt;")) return "<";
    if (consume("gt;")) return ">";
    if (consume("quot;")) return "\"";
    if (consume("apos;")) return "'";
    if (consume("#")) {
      int base = consume("x") ? 16 : 10;
      std::uint32_t code = 0;
      bool any = false;
      while (!eof() && peek() != ';') {
        char c = take();
        int digit;
        if (c >= '0' && c <= '9') digit = c - '0';
        else if (base == 16 && c >= 'a' && c <= 'f') digit = c - 'a' + 10;
        else if (base == 16 && c >= 'A' && c <= 'F') digit = c - 'A' + 10;
        else fail("bad character reference");
        code = code * static_cast<std::uint32_t>(base) +
               static_cast<std::uint32_t>(digit);
        any = true;
        if (code > 0x10ffff) fail("character reference out of range");
      }
      expect(";", "';' after character reference");
      if (!any) fail("empty character reference");
      // UTF-8 encode.
      std::string out;
      if (code < 0x80) {
        out.push_back(static_cast<char>(code));
      } else if (code < 0x800) {
        out.push_back(static_cast<char>(0xc0 | (code >> 6)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
      } else if (code < 0x10000) {
        out.push_back(static_cast<char>(0xe0 | (code >> 12)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
      } else {
        out.push_back(static_cast<char>(0xf0 | (code >> 18)));
        out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3f)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
      }
      return out;
    }
    fail("unknown entity");
  }

  std::string parse_attr_value() {
    char quote = take();
    if (quote != '"' && quote != '\'') fail("attribute value must be quoted");
    std::string out;
    for (;;) {
      char c = take();
      if (c == quote) break;
      if (c == '<') fail("'<' in attribute value");
      if (c == '&') {
        out += decode_entity();
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Element parse_element() {
    expect("<", "'<'");
    Element e(parse_name());
    // Attributes.
    for (;;) {
      skip_space();
      if (consume("/>")) return e;
      if (consume(">")) break;
      std::string key = parse_name();
      skip_space();
      expect("=", "'=' after attribute name");
      skip_space();
      if (e.attr(key)) fail("duplicate attribute '" + key + "'");
      e.set_attr(key, parse_attr_value());
    }
    // Content.
    std::string text;
    for (;;) {
      if (eof()) fail("unterminated element <" + e.name() + ">");
      if (consume("<!--")) {
        std::size_t end = doc_.find("-->", pos_);
        if (end == std::string_view::npos) fail("unterminated comment");
        pos_ = end + 3;
        continue;
      }
      if (consume("</")) {
        std::string closing = parse_name();
        if (closing != e.name()) {
          fail("mismatched closing tag </" + closing + "> for <" + e.name() +
               ">");
        }
        skip_space();
        expect(">", "'>' after closing tag");
        // Whitespace-only text around child elements is formatting, not
        // content; drop it so pretty-printed documents round-trip.
        if (!e.children().empty() &&
            text.find_first_not_of(" \t\r\n") == std::string::npos) {
          text.clear();
        }
        e.set_text(std::move(text));
        return e;
      }
      if (peek() == '<') {
        if (doc_.substr(pos_, 2) == "<!") fail("DTD/CDATA unsupported");
        e.add_child(parse_element());
        continue;
      }
      char c = take();
      if (c == '&') {
        text += decode_entity();
      } else {
        text.push_back(c);
      }
    }
  }

  std::string_view doc_;
  std::size_t pos_ = 0;
};

}  // namespace

Element parse(std::string_view doc) { return Parser(doc).parse_document(); }

}  // namespace omadrm::xml
