// Streaming XML serializer.
//
// Writes one compact (never pretty-printed) document straight into a
// caller-provided std::string, reusing its capacity across documents: at
// steady state serialization performs zero heap allocations and no
// intermediate std::string temporaries. Element names are emitted as
// string_views; the open-element stack is a fixed array, so the writer
// itself never allocates.
//
// Escaping is reserve-accurate: the escape helpers measure the exact
// escaped length before growing the output. Text escapes & < > and \r;
// attribute values additionally escape " ' \n and \t (as character
// references) so serialized documents round-trip byte-exactly even
// through parsers that normalize attribute whitespace.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace omadrm::xml {

/// Appends the escaped form of `raw` to `out`, reserving exactly.
void escape_text_into(std::string_view raw, std::string& out);
void escape_attr_into(std::string_view raw, std::string& out);

/// Escapes character data (& < > \r) / attribute values (also " ' \n \t).
std::string escape_text(std::string_view raw);
std::string escape_attr(std::string_view raw);

class Writer {
 public:
  /// Deepest element nesting the writer supports (ROAP documents use < 8).
  static constexpr std::size_t kMaxDepth = 64;

  /// Binds the writer to `out` and clears it (capacity retained). The
  /// string must outlive the writer; names passed to open() must outlive
  /// the document (string literals and fields of live messages qualify).
  explicit Writer(std::string& out) : out_(out) { out_.clear(); }

  /// Starts `<name ...`; attributes may follow until the first child,
  /// text, or close().
  void open(std::string_view name);

  /// Adds an attribute to the currently opening tag. Throws
  /// omadrm::Error(kState) when no tag is open for attributes.
  void attr(std::string_view key, std::string_view value);

  /// Appends escaped character data inside the current element.
  void text(std::string_view raw);

  /// Appends base64 of `data` (the alphabet needs no XML escaping).
  void base64(ByteView data);

  /// Closes the innermost open element (`/>` when empty).
  void close();

  /// Shorthand for open(name); text(text); close().
  void text_element(std::string_view name, std::string_view text);
  /// Shorthand for open(name); base64(data); close().
  void b64_element(std::string_view name, ByteView data);
  /// Shorthand for a decimal unsigned-integer text element (no
  /// std::to_string temporary).
  void u64_element(std::string_view name, std::uint64_t v);

  /// True once the root element has been closed.
  bool finished() const { return started_ && depth_ == 0; }

 private:
  void seal();  // emits the pending '>' of an opening tag

  std::string& out_;
  std::array<std::string_view, kMaxDepth> stack_;
  std::size_t depth_ = 0;
  bool tag_open_ = false;  // inside `<name ...` with '>' not yet written
  bool started_ = false;
};

}  // namespace omadrm::xml
