// Bump allocator backing the zero-copy XML DOM.
//
// One Arena owns every Node, Attr, and decoded string produced while
// parsing one document. Allocation is a pointer bump inside chunked
// storage; reset() rewinds all chunks without returning them to the heap,
// so a long-lived Arena (an envelope buffer, a parser scratch slot)
// reaches a steady state where parsing performs zero heap allocations.
// Nothing is ever destroyed individually — only trivially destructible
// types may live in an Arena.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace omadrm::xml {

class Arena {
 public:
  Arena() = default;
  // Chunk storage is heap-owned, so moving an Arena keeps every pointer
  // previously handed out valid.
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw aligned storage that lives until reset().
  void* alloc(std::size_t size, std::size_t align);

  /// Constructs a trivially destructible T in the arena.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are never destroyed");
    // pool: placement-new into the arena's bump allocation — this IS the
    // pool seam the wire-alloc lint rule funnels everything through.
    return ::new (alloc(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
  }

  /// Character buffer of `n` bytes (no alignment padding).
  char* alloc_chars(std::size_t n) {
    return static_cast<char*>(alloc(n, 1));
  }

  /// Returns the unused tail of the most recent alloc/alloc_chars call to
  /// the arena. Only valid immediately after that call, with `unused`
  /// no larger than its size.
  void trim(std::size_t unused);

  /// Copies `s` into arena storage and returns the stable view.
  std::string_view copy(std::string_view s);

  /// Rewinds every chunk; capacity is retained for reuse.
  void reset();

  /// Total bytes of chunk storage currently owned (diagnostics).
  std::size_t capacity() const;

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static constexpr std::size_t kFirstChunk = 4096;

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  // chunks before this index are full
};

}  // namespace omadrm::xml
