// Zero-copy XML DOM view.
//
// A Node tree is produced by parse_in() in a single pass over the
// document: element names, attribute values, and character data are
// string_views that alias the input buffer wherever possible (entity
// decoding and multi-segment text fall back to Arena storage). The tree
// borrows both the Arena and the document bytes — keep both alive for as
// long as the Nodes are used. This is the wire-path DOM: the ROAP
// envelope retains its serialized bytes anyway, so the parse costs no
// string copies and, once the arena is warm, no heap allocations at all.
//
// The accessor surface deliberately mirrors xml::Element so message
// decoding can be written once, generically, against either DOM.
#pragma once

#include <cstddef>
#include <string_view>

#include "xml/arena.h"

namespace omadrm::xml {

struct Attr {
  std::string_view name;
  std::string_view value;
  const Attr* next = nullptr;
};

class Node {
 public:
  std::string_view name() const { return name_; }
  /// Concatenated character data directly inside this element.
  std::string_view text() const { return text_; }

  // -- attributes ---------------------------------------------------------
  const Attr* first_attr() const { return first_attr_; }
  /// nullptr when absent.
  const std::string_view* attr(std::string_view key) const;
  /// Throws omadrm::Error(kFormat) when absent.
  std::string_view require_attr(std::string_view key) const;

  // -- children -----------------------------------------------------------
  const Node* first_child() const { return first_child_; }
  const Node* next_sibling() const { return next_sibling_; }

  class ChildIter {
   public:
    explicit ChildIter(const Node* p) : p_(p) {}
    const Node& operator*() const { return *p_; }
    ChildIter& operator++() {
      p_ = p_->next_sibling_;
      return *this;
    }
    bool operator!=(const ChildIter& o) const { return p_ != o.p_; }

   private:
    const Node* p_;
  };

  class ChildRange {
   public:
    explicit ChildRange(const Node* first) : first_(first) {}
    ChildIter begin() const { return ChildIter(first_); }
    ChildIter end() const { return ChildIter(nullptr); }

   private:
    const Node* first_;
  };

  /// Iterates children (yields const Node&), allocation-free.
  ChildRange children() const { return ChildRange(first_child_); }

  class NamedIter {
   public:
    NamedIter(const Node* p, std::string_view name) : p_(p), name_(name) {
      skip();
    }
    const Node* operator*() const { return p_; }
    NamedIter& operator++() {
      p_ = p_->next_sibling_;
      skip();
      return *this;
    }
    bool operator!=(const NamedIter& o) const { return p_ != o.p_; }

   private:
    void skip() {
      while (p_ && p_->name_ != name_) p_ = p_->next_sibling_;
    }
    const Node* p_;
    std::string_view name_;
  };

  class NamedRange {
   public:
    NamedRange(const Node* first, std::string_view name)
        : first_(first), name_(name) {}
    NamedIter begin() const { return NamedIter(first_, name_); }
    NamedIter end() const { return NamedIter(nullptr, name_); }

   private:
    const Node* first_;
    std::string_view name_;
  };

  /// Children with the given name (yields const Node*), allocation-free.
  NamedRange children_named(std::string_view name) const {
    return NamedRange(first_child_, name);
  }

  /// First child with the given name; nullptr when absent.
  const Node* child(std::string_view name) const;
  /// Throws omadrm::Error(kFormat) when absent.
  const Node& require_child(std::string_view name) const;
  /// Text of a required child.
  std::string_view child_text(std::string_view name) const;

  std::size_t child_count() const;

 private:
  friend struct NodeBuilder;

  std::string_view name_;
  std::string_view text_;
  const Attr* first_attr_ = nullptr;
  Node* first_child_ = nullptr;
  Node* next_sibling_ = nullptr;
};

/// Parses a document into `arena` without copying names or (escape-free)
/// content: the returned tree aliases `doc` and the arena. Throws
/// omadrm::Error(kFormat) on malformed input. `doc` and `arena` must
/// outlive the tree.
const Node& parse_in(Arena& arena, std::string_view doc);

/// Hard recursion bound for parse_in (rejected as kFormat, not a crash).
inline constexpr std::size_t kMaxParseDepth = 128;

}  // namespace omadrm::xml
