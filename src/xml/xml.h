// XML DOM: mutable Element tree plus the wire-path view DOM.
//
// OMA DRM 2 carries Rights Objects (REL) and ROAP messages as XML. The
// paper explicitly excludes XML parsing overhead from its cycle model
// ("these components cannot easily be accelerated by dedicated hardware
// cells"), but the protocol stack still needs a real parser to produce
// and consume the documents — this is it. Supported: elements, attributes
// (single- or double-quoted), character data with the five predefined
// entities plus decimal/hex character references, comments, processing
// instructions, and self-closing tags. Not supported (rejected cleanly):
// DTDs, CDATA sections, namespaces beyond literal prefixed names.
//
// Two DOMs share one parser core (node.h):
//
//   Element   owning, mutable tree — convenient for tools, tests, and
//             persisted agent state. parse() converts the zero-copy
//             parse into an Element tree.
//   Node      arena-backed string_view tree (node.h) — the wire path.
//             Paired with the streaming Writer (writer.h) it makes a
//             serialize→parse round trip allocation-free at steady
//             state; this is what roap::Envelope uses.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "xml/node.h"
#include "xml/writer.h"

namespace omadrm::xml {

class Element {
 public:
  Element() = default;
  explicit Element(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Concatenated character data directly inside this element.
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  // -- attributes ---------------------------------------------------------
  void set_attr(const std::string& key, const std::string& value);
  /// nullptr when absent.
  const std::string* attr(const std::string& key) const;
  /// Throws omadrm::Error(kFormat) when absent.
  const std::string& require_attr(const std::string& key) const;
  const std::vector<std::pair<std::string, std::string>>& attrs() const {
    return attrs_;
  }

  // -- children -----------------------------------------------------------
  /// Appends a child and returns a reference to the stored copy.
  Element& add_child(Element child);
  /// Convenience: appends `<name>text</name>`.
  Element& add_text_child(const std::string& name, const std::string& text);

  const std::vector<Element>& children() const { return children_; }
  std::vector<Element>& children() { return children_; }

  /// First child with the given name; nullptr when absent.
  const Element* child(const std::string& name) const;
  /// Throws omadrm::Error(kFormat) when absent.
  const Element& require_child(const std::string& name) const;
  /// All children with the given name.
  std::vector<const Element*> children_named(const std::string& name) const;
  /// Text of a required child (shorthand for require_child(name).text()).
  const std::string& child_text(const std::string& name) const;

  /// Serializes to a document string. `pretty` adds two-space indentation.
  std::string serialize(bool pretty = false) const;

  bool operator==(const Element& other) const;

 private:
  void serialize_into(std::string& out, int depth, bool pretty) const;

  std::string name_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<Element> children_;
};

/// Parses a document; returns the root element. (Runs the zero-copy
/// parser from node.h, then materializes an owning Element tree.)
/// Throws omadrm::Error(kFormat) on malformed input.
Element parse(std::string_view doc);

/// Converts a parsed Node tree into an owning Element tree.
Element to_element(const Node& n);

}  // namespace omadrm::xml
