#include "xml/node.h"

#include <cstring>
#include <string>

#include "common/error.h"

namespace omadrm::xml {

using omadrm::Error;
using omadrm::ErrorKind;

// ---------------------------------------------------------------------------
// Node accessors
// ---------------------------------------------------------------------------

const std::string_view* Node::attr(std::string_view key) const {
  for (const Attr* a = first_attr_; a; a = a->next) {
    if (a->name == key) return &a->value;
  }
  return nullptr;
}

std::string_view Node::require_attr(std::string_view key) const {
  const std::string_view* v = attr(key);
  if (!v) {
    throw Error(ErrorKind::kFormat, "xml: missing attribute '" +
                                        std::string(key) + "' on <" +
                                        std::string(name_) + ">");
  }
  return *v;
}

const Node* Node::child(std::string_view name) const {
  for (const Node* c = first_child_; c; c = c->next_sibling_) {
    if (c->name_ == name) return c;
  }
  return nullptr;
}

const Node& Node::require_child(std::string_view name) const {
  const Node* c = child(name);
  if (!c) {
    throw Error(ErrorKind::kFormat, "xml: missing child <" +
                                        std::string(name) + "> in <" +
                                        std::string(name_) + ">");
  }
  return *c;
}

std::string_view Node::child_text(std::string_view name) const {
  return require_child(name).text();
}

std::size_t Node::child_count() const {
  std::size_t n = 0;
  for (const Node* c = first_child_; c; c = c->next_sibling_) ++n;
  return n;
}

// ---------------------------------------------------------------------------
// Single-pass zero-copy parser
// ---------------------------------------------------------------------------

struct NodeBuilder {
  static Node* make(Arena& arena) { return arena.create<Node>(); }
  static void set_name(Node& n, std::string_view v) { n.name_ = v; }
  static void set_text(Node& n, std::string_view v) { n.text_ = v; }
  static void add_attr(Arena& arena, Node& n, const Attr*& tail,
                       std::string_view name, std::string_view value) {
    Attr* a = arena.create<Attr>();
    a->name = name;
    a->value = value;
    if (!n.first_attr_) {
      n.first_attr_ = a;
    } else {
      const_cast<Attr*>(tail)->next = a;
    }
    tail = a;
  }
  static void add_child(Node& parent, Node*& tail, Node* child) {
    if (!parent.first_child_) {
      parent.first_child_ = child;
    } else {
      tail->next_sibling_ = child;
    }
    tail = child;
  }
};

namespace {

// Character-data text inside one element arrives as runs separated by
// child elements and comments. Runs are tracked as an arena-allocated
// list so the common cases (no text, or one contiguous run aliasing the
// document) never copy.
struct TextSeg {
  std::string_view s;
  TextSeg* next = nullptr;
};

class Parser {
 public:
  Parser(Arena& arena, std::string_view doc) : arena_(arena), doc_(doc) {}

  const Node& parse_document() {
    skip_misc();
    Node* root = parse_element(0);
    skip_misc();
    if (pos_ != doc_.size()) {
      fail("content after document root");
    }
    return *root;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    // coldpath: parse-abort diagnostics; the accept path never gets here.
    throw Error(ErrorKind::kFormat,
                "xml: " + why + " at offset " + std::to_string(pos_));
  }

  bool eof() const { return pos_ >= doc_.size(); }
  char peek() const {
    if (eof()) fail("unexpected end of document");
    return doc_[pos_];
  }
  char take() {
    char c = peek();
    ++pos_;
    return c;
  }
  bool consume(std::string_view token) {
    if (doc_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }
  void expect(std::string_view token, const char* what) {
    if (!consume(token)) fail(std::string("expected ") + what);
  }
  static bool is_space(char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  }
  static bool is_name_start(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  }
  static bool is_name_char(char c) {
    return is_name_start(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
  }

  void skip_space() {
    while (!eof() && is_space(doc_[pos_])) ++pos_;
  }

  // Whitespace, comments, processing instructions between markup.
  void skip_misc() {
    for (;;) {
      skip_space();
      if (consume("<!--")) {
        std::size_t end = doc_.find("-->", pos_);
        if (end == std::string_view::npos) fail("unterminated comment");
        pos_ = end + 3;
      } else if (consume("<?")) {
        std::size_t end = doc_.find("?>", pos_);
        if (end == std::string_view::npos) fail("unterminated PI");
        pos_ = end + 2;
      } else {
        return;
      }
    }
  }

  std::string_view parse_name() {
    if (!is_name_start(peek())) fail("invalid name start");
    const std::size_t start = pos_;
    while (!eof() && is_name_char(doc_[pos_])) ++pos_;
    return doc_.substr(start, pos_ - start);
  }

  // Appends the decoding of the entity at pos_ (just past '&') to `out`,
  // returning the new end. The caller sized `out` to the raw run length,
  // which every entity (>= 4 source chars, <= 4 decoded bytes) respects.
  char* decode_entity(char* out) {
    if (consume("amp;")) { *out++ = '&'; return out; }
    if (consume("lt;")) { *out++ = '<'; return out; }
    if (consume("gt;")) { *out++ = '>'; return out; }
    if (consume("quot;")) { *out++ = '"'; return out; }
    if (consume("apos;")) { *out++ = '\''; return out; }
    if (consume("#")) {
      const int base = consume("x") ? 16 : 10;
      std::uint32_t code = 0;
      bool any = false;
      while (!eof() && peek() != ';') {
        char c = take();
        int digit;
        if (c >= '0' && c <= '9') digit = c - '0';
        else if (base == 16 && c >= 'a' && c <= 'f') digit = c - 'a' + 10;
        else if (base == 16 && c >= 'A' && c <= 'F') digit = c - 'A' + 10;
        else fail("bad character reference");
        code = code * static_cast<std::uint32_t>(base) +
               static_cast<std::uint32_t>(digit);
        any = true;
        if (code > 0x10ffff) fail("character reference out of range");
      }
      expect(";", "';' after character reference");
      if (!any) fail("empty character reference");
      // UTF-8 encode.
      if (code < 0x80) {
        *out++ = static_cast<char>(code);
      } else if (code < 0x800) {
        *out++ = static_cast<char>(0xc0 | (code >> 6));
        *out++ = static_cast<char>(0x80 | (code & 0x3f));
      } else if (code < 0x10000) {
        *out++ = static_cast<char>(0xe0 | (code >> 12));
        *out++ = static_cast<char>(0x80 | ((code >> 6) & 0x3f));
        *out++ = static_cast<char>(0x80 | (code & 0x3f));
      } else {
        *out++ = static_cast<char>(0xf0 | (code >> 18));
        *out++ = static_cast<char>(0x80 | ((code >> 12) & 0x3f));
        *out++ = static_cast<char>(0x80 | ((code >> 6) & 0x3f));
        *out++ = static_cast<char>(0x80 | (code & 0x3f));
      }
      return out;
    }
    fail("unknown entity");
  }

  // Decodes the character-data run [pos_, pos_ + raw_len) — which
  // contains at least one '&' — into the arena. Entities only shrink, so
  // raw_len bounds the output; the surplus is returned to the arena.
  std::string_view decode_run(std::size_t raw_len) {
    char* buf = arena_.alloc_chars(raw_len);
    char* out = buf;
    const std::size_t end = pos_ + raw_len;
    while (pos_ < end) {
      char c = take();
      if (c == '&') {
        out = decode_entity(out);
      } else {
        *out++ = c;
      }
    }
    arena_.trim(raw_len - static_cast<std::size_t>(out - buf));
    return std::string_view(buf, static_cast<std::size_t>(out - buf));
  }

  std::string_view parse_attr_value() {
    const char quote = take();
    if (quote != '"' && quote != '\'') fail("attribute value must be quoted");
    const std::size_t start = pos_;
    bool has_entity = false;
    for (;;) {
      if (eof()) fail("unterminated attribute value");
      char c = doc_[pos_];
      if (c == quote) break;
      if (c == '<') fail("'<' in attribute value");
      if (c == '&') has_entity = true;
      ++pos_;
    }
    const std::size_t raw_len = pos_ - start;
    std::string_view value;
    if (!has_entity) {
      value = doc_.substr(start, raw_len);  // zero-copy alias
    } else {
      pos_ = start;
      value = decode_run(raw_len);
      // decode_run consumed exactly raw_len; the closing quote follows,
      // but entities inside may legally contain the quote char decoded —
      // the raw scan above already located the real closing quote.
    }
    ++pos_;  // closing quote
    return value;
  }

  Node* parse_element(std::size_t depth) {
    if (depth >= kMaxParseDepth) fail("nesting too deep");
    expect("<", "'<'");
    Node* e = NodeBuilder::make(arena_);
    NodeBuilder::set_name(*e, parse_name());
    const Attr* attr_tail = nullptr;

    // Attributes.
    for (;;) {
      skip_space();
      if (consume("/>")) return e;
      if (consume(">")) break;
      std::string_view key = parse_name();
      skip_space();
      expect("=", "'=' after attribute name");
      skip_space();
      if (e->attr(key)) fail("duplicate attribute '" + std::string(key) + "'");
      NodeBuilder::add_attr(arena_, *e, attr_tail, key, parse_attr_value());
    }

    // Content: character-data runs interleaved with children/comments.
    TextSeg* seg_head = nullptr;
    TextSeg* seg_tail = nullptr;
    std::size_t text_len = 0;
    Node* child_tail = nullptr;
    bool has_children = false;

    auto add_seg = [&](std::string_view s) {
      if (s.empty()) return;
      TextSeg* seg = arena_.create<TextSeg>();
      seg->s = s;
      if (!seg_head) seg_head = seg; else seg_tail->next = seg;
      seg_tail = seg;
      text_len += s.size();
    };

    for (;;) {
      if (eof()) {
        fail("unterminated element <" + std::string(e->name()) + ">");
      }
      const char c = doc_[pos_];
      if (c == '<') {
        if (consume("<!--")) {
          std::size_t end = doc_.find("-->", pos_);
          if (end == std::string_view::npos) fail("unterminated comment");
          pos_ = end + 3;
          continue;
        }
        if (consume("</")) {
          std::string_view closing = parse_name();
          if (closing != e->name()) {
            fail("mismatched closing tag </" + std::string(closing) +
                 "> for <" + std::string(e->name()) + ">");
          }
          skip_space();
          expect(">", "'>' after closing tag");
          NodeBuilder::set_text(*e,
                                finish_text(seg_head, text_len, has_children));
          return e;
        }
        if (doc_.substr(pos_, 2) == "<!") fail("DTD/CDATA unsupported");
        NodeBuilder::add_child(*e, child_tail, parse_element(depth + 1));
        has_children = true;
        continue;
      }
      // A run of character data: scan to the next markup, decode entities
      // only when present.
      const std::size_t start = pos_;
      bool has_entity = false;
      while (pos_ < doc_.size() && doc_[pos_] != '<') {
        if (doc_[pos_] == '&') has_entity = true;
        ++pos_;
      }
      const std::size_t raw_len = pos_ - start;
      if (!has_entity) {
        add_seg(doc_.substr(start, raw_len));  // zero-copy alias
      } else {
        pos_ = start;
        add_seg(decode_run(raw_len));
      }
    }
  }

  // Collapses the text-segment list: zero segments -> empty, one segment
  // -> its view (usually aliasing the document), several -> one arena
  // concatenation. Whitespace-only text around child elements is
  // formatting, not content; drop it so pretty-printed documents
  // round-trip.
  std::string_view finish_text(const TextSeg* head, std::size_t total,
                               bool has_children) {
    if (!head) return std::string_view();
    if (has_children) {
      bool all_space = true;
      for (const TextSeg* s = head; s && all_space; s = s->next) {
        if (s->s.find_first_not_of(" \t\r\n") != std::string_view::npos) {
          all_space = false;
        }
      }
      if (all_space) return std::string_view();
    }
    if (!head->next) return head->s;
    char* buf = arena_.alloc_chars(total);
    char* out = buf;
    for (const TextSeg* s = head; s; s = s->next) {
      std::memcpy(out, s->s.data(), s->s.size());
      out += s->s.size();
    }
    return std::string_view(buf, total);
  }

  Arena& arena_;
  std::string_view doc_;
  std::size_t pos_ = 0;
};

}  // namespace

const Node& parse_in(Arena& arena, std::string_view doc) {
  return Parser(arena, doc).parse_document();
}

}  // namespace omadrm::xml
