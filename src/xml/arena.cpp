#include "xml/arena.h"

#include <algorithm>
#include <cstring>

namespace omadrm::xml {

void* Arena::alloc(std::size_t size, std::size_t align) {
  if (size == 0) size = 1;
  while (active_ < chunks_.size()) {
    Chunk& c = chunks_[active_];
    const std::size_t aligned = (c.used + align - 1) & ~(align - 1);
    if (aligned + size <= c.size) {
      c.used = aligned + size;
      return c.data.get() + aligned;
    }
    ++active_;
  }
  // Grow geometrically so steady-state documents settle into one chunk.
  std::size_t next = chunks_.empty() ? kFirstChunk : chunks_.back().size * 2;
  next = std::max(next, size + align);
  Chunk c;
  c.data = std::make_unique<char[]>(next);
  c.size = next;
  c.used = size;  // fresh chunk start is maximally aligned already
  chunks_.push_back(std::move(c));
  active_ = chunks_.size() - 1;
  return chunks_.back().data.get();
}

void Arena::trim(std::size_t unused) {
  if (active_ < chunks_.size() && chunks_[active_].used >= unused) {
    chunks_[active_].used -= unused;
  }
}

std::string_view Arena::copy(std::string_view s) {
  if (s.empty()) return std::string_view();
  char* p = alloc_chars(s.size());
  std::memcpy(p, s.data(), s.size());
  return std::string_view(p, s.size());
}

void Arena::reset() {
  for (Chunk& c : chunks_) c.used = 0;
  active_ = 0;
}

std::size_t Arena::capacity() const {
  std::size_t total = 0;
  for (const Chunk& c : chunks_) total += c.size;
  return total;
}

}  // namespace omadrm::xml
