#include "xml/writer.h"

#include "common/base64.h"
#include "common/error.h"

namespace omadrm::xml {

using omadrm::Error;
using omadrm::ErrorKind;

namespace {

// Escaped lengths per byte; 0 means "emit verbatim".
inline std::size_t text_escape_len(char c) {
  switch (c) {
    case '&': return 5;   // &amp;
    case '<': return 4;   // &lt;
    case '>': return 4;   // &gt;
    case '\r': return 5;  // &#13;
    default: return 0;
  }
}

inline std::size_t attr_escape_len(char c) {
  switch (c) {
    case '&': return 5;   // &amp;
    case '<': return 4;   // &lt;
    case '>': return 4;   // &gt;
    case '"': return 6;   // &quot;
    case '\'': return 6;  // &apos;
    case '\r': return 5;  // &#13;
    case '\n': return 5;  // &#10;
    case '\t': return 4;  // &#9;
    default: return 0;
  }
}

inline void append_text_escape(char c, std::string& out) {
  switch (c) {
    case '&': out += "&amp;"; break;
    case '<': out += "&lt;"; break;
    case '>': out += "&gt;"; break;
    case '\r': out += "&#13;"; break;
    default: out.push_back(c);
  }
}

inline void append_attr_escape(char c, std::string& out) {
  switch (c) {
    case '&': out += "&amp;"; break;
    case '<': out += "&lt;"; break;
    case '>': out += "&gt;"; break;
    case '"': out += "&quot;"; break;
    case '\'': out += "&apos;"; break;
    case '\r': out += "&#13;"; break;
    case '\n': out += "&#10;"; break;
    case '\t': out += "&#9;"; break;
    default: out.push_back(c);
  }
}

}  // namespace

void escape_text_into(std::string_view raw, std::string& out) {
  std::size_t extra = 0;
  for (char c : raw) {
    const std::size_t n = text_escape_len(c);
    if (n) extra += n - 1;
  }
  out.reserve(out.size() + raw.size() + extra);
  if (extra == 0) {
    out.append(raw);
    return;
  }
  for (char c : raw) append_text_escape(c, out);
}

void escape_attr_into(std::string_view raw, std::string& out) {
  std::size_t extra = 0;
  for (char c : raw) {
    const std::size_t n = attr_escape_len(c);
    if (n) extra += n - 1;
  }
  out.reserve(out.size() + raw.size() + extra);
  if (extra == 0) {
    out.append(raw);
    return;
  }
  for (char c : raw) append_attr_escape(c, out);
}

std::string escape_text(std::string_view raw) {
  std::string out;
  escape_text_into(raw, out);
  return out;
}

std::string escape_attr(std::string_view raw) {
  std::string out;
  escape_attr_into(raw, out);
  return out;
}

void Writer::seal() {
  if (tag_open_) {
    out_.push_back('>');
    tag_open_ = false;
  }
}

void Writer::open(std::string_view name) {
  if (started_ && depth_ == 0) {
    throw Error(ErrorKind::kState, "xml: writer document already closed");
  }
  if (depth_ >= kMaxDepth) {
    throw Error(ErrorKind::kState, "xml: writer nesting too deep");
  }
  seal();
  stack_[depth_++] = name;
  started_ = true;
  out_.push_back('<');
  out_.append(name);
  tag_open_ = true;
}

void Writer::attr(std::string_view key, std::string_view value) {
  if (!tag_open_) {
    throw Error(ErrorKind::kState, "xml: attribute outside an opening tag");
  }
  out_.push_back(' ');
  out_.append(key);
  out_.append("=\"");
  escape_attr_into(value, out_);
  out_.push_back('"');
}

void Writer::text(std::string_view raw) {
  if (depth_ == 0) {
    throw Error(ErrorKind::kState, "xml: text outside the root element");
  }
  if (raw.empty()) return;  // keep `<name/>` for empty elements
  seal();
  escape_text_into(raw, out_);
}

void Writer::base64(ByteView data) {
  if (depth_ == 0) {
    throw Error(ErrorKind::kState, "xml: text outside the root element");
  }
  if (data.empty()) return;  // keep `<name/>` for empty elements
  seal();
  base64_encode_into(data, out_);
}

void Writer::close() {
  if (depth_ == 0) {
    throw Error(ErrorKind::kState, "xml: close without open element");
  }
  const std::string_view name = stack_[--depth_];
  if (tag_open_) {
    out_.append("/>");
    tag_open_ = false;
  } else {
    out_.append("</");
    out_.append(name);
    out_.push_back('>');
  }
}

void Writer::text_element(std::string_view name, std::string_view text_raw) {
  open(name);
  text(text_raw);
  close();
}

void Writer::b64_element(std::string_view name, ByteView data) {
  open(name);
  base64(data);
  close();
}

void Writer::u64_element(std::string_view name, std::uint64_t v) {
  char buf[20];
  char* end = buf + sizeof buf;
  char* p = end;
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  open(name);
  text(std::string_view(p, static_cast<std::size_t>(end - p)));
  close();
}

}  // namespace omadrm::xml
