// ri_server core: event-loop TCP front end + worker pool over a
// ConcurrentIssuer.
//
// Threading model (one acceptor/IO thread + N workers):
//
//   event loop   owns every fd. epoll (poll(2) fallback) over the
//                listen socket, a wakeup pipe, and all connections.
//                Accepts (up to max_connections, excess closed on
//                arrival), reads into per-connection FrameDecoders —
//                partial frames simply stay buffered, the read state
//                machine *is* the decoder — and enqueues one job per
//                complete frame. All fd writes happen here too: worker
//                replies land in the connection's outbox and the loop
//                flushes it, arming write-readiness only while bytes
//                remain (the partial-write state machine).
//   workers      pop jobs from the shared MPMC queue (mutex+condvar),
//                parse the payload into an Envelope, call
//                ConcurrentIssuer::handle, frame the reply. A request
//                the issuer refuses to parse becomes an error frame
//                (kErrorFrameType + reason) instead of a dead air —
//                clients see a retriable refusal, not a timeout.
//
// Overload protection (all knobs on Config): the job queue is bounded —
// a frame arriving over max_queue_depth (or over the per-connection
// inflight cap) is answered straight from the event loop with a
// kBusyFrameType refusal and never buffered, so offered load beyond
// capacity costs the server one small frame per shed, not memory. A
// peer that won't drain replies trips max_outbox_bytes and is closed
// (slow reader); a peer that drips a frame byte-by-byte trips
// read_progress_timeout_ms and is closed (slow loris). Clients map the
// busy frame to StatusCode::kServerBusy, which the retry stack treats
// as retriable-with-backoff — shedding is invisible to a patient fleet.
//
// Connections are shared_ptr'd between the loop and in-flight jobs; a
// connection the loop closes (peer EOF, idle timeout, frame-layer
// desync) flips `dead` under its mutex and late worker replies are
// dropped instead of written to a recycled fd.
//
// Idle connections are swept on the monotonic clock (net::steady_ms):
// no request for idle_timeout_ms — and nothing in flight — closes the
// socket, bounding fd usage under abandoned-agent churn.
//
// stop() drains gracefully: stop accepting, finish every queued and
// in-flight job, flush every outbox (bounded by drain_timeout_ms), then
// close. The ri_server binary wires SIGINT/SIGTERM to stop(), so a
// TERM'd server answers everything it accepted before exiting 0.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/ordered_mutex.h"
#include "common/thread_annotations.h"
#include "net/concurrent_issuer.h"
#include "net/frame.h"
#include "net/socket.h"

namespace omadrm::net {

/// Readiness-notification seam: epoll on Linux, poll(2) everywhere (and
/// under test, so both implementations run the same suite).
class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool hangup = false;
  };

  virtual ~Poller() = default;
  virtual void add(int fd, bool want_write) = 0;
  virtual void update(int fd, bool want_write) = 0;
  virtual void remove(int fd) = 0;
  /// Blocks up to timeout_ms; fills `out` with ready fds.
  virtual void wait(std::vector<Event>& out, int timeout_ms) = 0;
};

/// nullptr when the platform has no epoll.
std::unique_ptr<Poller> make_epoll_poller();
std::unique_ptr<Poller> make_poll_poller();

class RiServer {
 public:
  struct Config {
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0;  // 0 = ephemeral; read the choice via port()
    std::size_t workers = 4;
    std::size_t max_connections = 256;
    std::uint64_t idle_timeout_ms = 30000;
    std::uint64_t drain_timeout_ms = 2000;
    std::size_t max_frame_payload = kDefaultMaxFramePayload;
    int backlog = 128;
    /// Overload protection. The job queue is BOUNDED: a complete request
    /// frame arriving while max_queue_depth jobs are already queued is
    /// answered immediately from the event loop with a kBusyFrameType
    /// refusal (load shedding, not buffering) — the request is never
    /// parsed, never reaches a worker, and the client's retry stack
    /// backs off on the typed kServerBusy it maps to. 0 = unbounded
    /// (the pre-overload-hardening behaviour, kept for benchmarks that
    /// measure the queue itself).
    std::size_t max_queue_depth = 1024;
    /// Per-connection ceiling on jobs queued or executing; a pipelining
    /// client over the cap gets busy frames for the excess.
    std::size_t max_inflight_per_conn = 64;
    /// Per-connection ceiling on unflushed outbox bytes. A peer that
    /// sends requests but never drains replies (slow reader) is
    /// disconnected when its outbox passes this — the server's memory is
    /// bounded no matter how the fleet behaves. 0 = unbounded.
    std::size_t max_outbox_bytes = 4u << 20;
    /// A connection holding a PARTIAL frame must complete it within this
    /// window or be closed (slow-loris defense: drip-feeding one byte
    /// per sweep keeps a conn "active" but never yields a frame). 0 =
    /// disabled.
    std::uint64_t read_progress_timeout_ms = 10000;
    /// Protocol clock handed to RightsIssuer::handle (certificate
    /// validation, session TTLs) — the repo's virtual protocol time,
    /// distinct from the monotonic clock that paces socket timeouts.
    std::uint64_t now = 0;
    /// false forces the poll(2) event loop even where epoll exists.
    bool use_epoll = true;
  };

  struct Stats {
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> rejected{0};       // over max_connections
    std::atomic<std::uint64_t> closed{0};
    std::atomic<std::uint64_t> idle_closed{0};
    std::atomic<std::uint64_t> frames_in{0};      // complete request frames
    std::atomic<std::uint64_t> served{0};         // replies written to outboxes
    std::atomic<std::uint64_t> refusals{0};       // error frames sent
    std::atomic<std::uint64_t> frame_desyncs{0};  // frame-layer kFormat closes
    std::atomic<std::uint64_t> shed{0};           // busy frames sent (queue or
                                                  // inflight cap hit)
    std::atomic<std::uint64_t> slow_reader_closed{0};  // outbox cap closes
    std::atomic<std::uint64_t> stalled_closed{0};  // read-progress timeouts
  };

  RiServer(ConcurrentIssuer& issuer, Config config);
  ~RiServer();

  RiServer(const RiServer&) = delete;
  RiServer& operator=(const RiServer&) = delete;

  /// Binds, listens, and spawns the event loop + workers. Throws
  /// omadrm::Error(kState) on bind failure or misconfiguration.
  void start();
  /// Graceful drain (see file comment). Idempotent; also run by the
  /// destructor.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (after start(); meaningful with Config::port == 0).
  std::uint16_t port() const { return port_; }
  std::size_t active_connections() const;
  const Stats& stats() const { return stats_; }

 private:
  struct Conn {
    explicit Conn(int fd_in, std::size_t max_payload)
        : fd(fd_in), decoder(max_payload) {}

    const int fd;
    FrameDecoder decoder;   // event-loop only
    std::uint64_t last_active_ms = 0;  // event-loop only, monotonic
    /// Monotonic instant the decoder last went empty->partial; 0 while no
    /// partial frame is buffered. Event-loop only — the idle sweep closes
    /// conns whose partial frame outlives read_progress_timeout_ms.
    std::uint64_t partial_since_ms = 0;

    // Rank kNetConn: per-connection state lock, taken under conns_mu_
    // (sweeps) or alone (workers); one conn at a time, enforced by the
    // validator's two-of-a-kind rule.
    OrderedMutex mu{LockRank::kNetConn, "net.conn"};
    std::string outbox GUARDED_BY(mu);     // framed replies awaiting write
    std::size_t outpos GUARDED_BY(mu) = 0;  // flushed prefix of outbox
    std::size_t inflight GUARDED_BY(mu) = 0;  // jobs queued or executing
    bool dead GUARDED_BY(mu) = false;  // fd closed; late replies dropped
    bool draining GUARDED_BY(mu) = false;  // close once outbox empties
    bool kill GUARDED_BY(mu) = false;  // slow reader: close on next pass
  };

  struct Job {
    std::shared_ptr<Conn> conn;
    std::string payload;
    bool reply_with_crc = false;
  };

  void event_loop();
  void worker_loop();
  void accept_ready();
  void read_ready(const std::shared_ptr<Conn>& conn);
  /// Admission control for one decoded frame: true = enqueue a job,
  /// false = the caller sheds (queue full or per-conn inflight cap).
  bool admit(const std::shared_ptr<Conn>& conn);
  /// Flushes the outbox; returns false when the conn should close now.
  bool flush(const std::shared_ptr<Conn>& conn);
  void close_conn(const std::shared_ptr<Conn>& conn, bool idle);
  /// Appends a reply (worker thread) and pokes the event loop.
  void deliver(const std::shared_ptr<Conn>& conn, const std::string& bytes);
  void wake();

  ConcurrentIssuer& issuer_;
  Config config_;
  Stats stats_;

  Socket listen_;
  std::uint16_t port_ = 0;
  Socket wake_read_, wake_write_;  // self-pipe: workers poke the loop
  std::unique_ptr<Poller> poller_;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};   // no new accepts / reads / jobs
  std::atomic<bool> loop_exit_{false};  // event loop leaves its wait loop
  // Server lock band (ranks 110–150, common/ordered_mutex.h): workers
  // hold NONE of these while calling the issuer, so the net band never
  // nests into the RI band. stop() chains stop → conns → conn and
  // stop → jobs; the event loop chains conns → conn.
  OrderedMutex stop_mu_{LockRank::kNetStop, "net.stop"};  // stop() callers

  mutable OrderedMutex conns_mu_{LockRank::kNetConns, "net.conns"};
  std::unordered_map<int, std::shared_ptr<Conn>> conns_ GUARDED_BY(conns_mu_);

  OrderedMutex jobs_mu_{LockRank::kNetJobs, "net.jobs"};
  std::condition_variable_any jobs_cv_;
  std::condition_variable_any jobs_done_cv_;
  std::deque<Job> jobs_ GUARDED_BY(jobs_mu_);
  std::size_t jobs_executing_ GUARDED_BY(jobs_mu_) = 0;

  OrderedMutex replies_mu_{LockRank::kNetReplies, "net.replies"};
  std::deque<std::shared_ptr<Conn>> replies_ GUARDED_BY(replies_mu_);
};

}  // namespace omadrm::net
