// Deterministic PKI realm shared across process boundaries.
//
// The in-process benches build one Session object holding the CA, the
// intermediate, the RI, and the devices — everything trusts everything
// because it all came out of one DeterministicRng. A *networked* bench
// can't share that object: the server is another process. What it can
// share is the seed. Realm replays the exact construction sequence
// (rng -> root CA -> intermediate -> RI) on both sides, so the server's
// regenerated root is bit-identical to the client's; device certificates
// the client mints with its copy of the root key validate against the
// server's trust anchor, and the RI chain arriving in the registration
// response validates against the client's. Draws made *after* that
// shared prefix (per-device keys, nonces) are free to diverge — trust
// only needs the prefix.
//
// The realm's protocol clock (kRealmNow) is virtual time, matching the
// rest of the repo's tests; the network layer's timeouts run on the
// monotonic clock independently.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "agent/drm_agent.h"
#include "common/random.h"
#include "pki/authority.h"
#include "provider/provider.h"
#include "ri/rights_issuer.h"

namespace omadrm::net {

inline constexpr std::uint64_t kRealmNow = 1100000000;
inline constexpr std::size_t kRealmRsaBits = 1024;
inline constexpr std::uint64_t kDefaultRealmSeed = 0xD12A1;

/// IDs every realm member agrees on.
inline constexpr const char* kRealmRiId = "ri:net";
inline constexpr const char* kRealmRoId = "ro:net";
inline constexpr const char* kRealmContentId = "cid:net@content";

class Realm {
 public:
  explicit Realm(std::uint64_t seed = kDefaultRealmSeed);

  /// The server-side RI, with the realm's default license offer loaded.
  ri::RightsIssuer& issuer() { return ri_; }
  pki::CertificationAuthority& ca() { return ca_; }
  provider::PlainCryptoProvider& provider() { return provider_; }
  DeterministicRng& rng() { return rng_; }
  const pki::Validity& validity() const { return validity_; }

  /// A provisioned device agent (certificate issued by the realm root).
  /// Each agent gets its OWN realm-owned rng (seeded from the realm seed
  /// + a counter, never the shared stream): agents run on client worker
  /// threads while the server-side RI draws from the realm rng under the
  /// ConcurrentIssuer lock, so sharing one generator would be a data
  /// race. Call make_agent itself from one thread only (it touches the
  /// CA's issuance state); the returned agent is then thread-confined to
  /// whichever thread drives it.
  std::unique_ptr<agent::DrmAgent> make_agent(const std::string& device_id);

 private:
  DeterministicRng rng_;
  std::uint64_t seed_;
  std::deque<DeterministicRng> agent_rngs_;  // stable addresses, realm-owned
  pki::Validity validity_;
  pki::CertificationAuthority ca_;
  pki::SubordinateAuthority ica_;
  provider::PlainCryptoProvider provider_;
  ri::RightsIssuer ri_;
};

}  // namespace omadrm::net
