// Thin POSIX TCP helpers: an RAII file descriptor plus timed
// connect/send/recv built on non-blocking sockets and poll(2).
//
// Every network wait in this subsystem is bounded — a peer that stalls
// mid-frame costs the configured timeout, never a hung thread — and
// every deadline is measured on the monotonic clock (steady_ms), so a
// wall-clock step (NTP, suspend/resume) can neither extend nor collapse
// a timeout.
//
// Failure model: helpers that move bytes throw omadrm::Error(kTransport)
// on connection failure, peer reset, EOF mid-operation, or timeout —
// the code the ROAP retry stack (roap/retry.h) classifies as retriable.
// Helpers that set up local resources (listen_tcp) throw Error(kState):
// a bad bind address is a configuration bug, not weather.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace omadrm::net {

/// Milliseconds on the monotonic clock (std::chrono::steady_clock).
/// The time base for every connect/read/write deadline and the server's
/// idle-connection sweep.
std::uint64_t steady_ms();

/// RAII TCP socket (move-only).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close() noexcept;
  /// Detaches and returns the descriptor without closing it.
  int release();

 private:
  int fd_ = -1;
};

/// Connects to host:port (numeric IPv4 address) within `timeout_ms`,
/// returning a non-blocking socket with TCP_NODELAY set. Throws
/// omadrm::Error(kTransport) on refusal, unreachability, or timeout.
Socket connect_tcp(const std::string& host, std::uint16_t port,
                   std::uint64_t timeout_ms);

/// Binds and listens on host:port (SO_REUSEADDR, non-blocking). Pass
/// port 0 for an ephemeral port; the chosen one is written to
/// `bound_port`. Throws omadrm::Error(kState) on failure.
Socket listen_tcp(const std::string& host, std::uint16_t port, int backlog,
                  std::uint16_t* bound_port);

/// Writes all of `data`, waiting (poll) up to `timeout_ms` overall.
/// Throws omadrm::Error(kTransport) on error, peer close, or timeout.
void send_all(int fd, std::string_view data, std::uint64_t timeout_ms);

/// Reads up to `cap` bytes, waiting up to `deadline` (absolute,
/// steady_ms). Returns 0 on orderly EOF. Throws omadrm::Error(kTransport)
/// on socket error or when the deadline passes with nothing readable.
std::size_t recv_some_until(int fd, char* buf, std::size_t cap,
                            std::uint64_t deadline);

void set_nonblocking(int fd);
void set_tcp_nodelay(int fd);

}  // namespace omadrm::net
