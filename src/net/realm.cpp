#include "net/realm.h"

#include "common/bytes.h"
#include "rel/rights.h"

namespace omadrm::net {

Realm::Realm(std::uint64_t seed)
    : rng_(seed),
      seed_(seed),
      validity_{kRealmNow - 86400, kRealmNow + 365 * 86400},
      ca_("CMLA Root", kRealmRsaBits, validity_, rng_),
      ica_("CMLA Intermediate", kRealmRsaBits, ca_, validity_, rng_),
      ri_(kRealmRiId, "http://ri.net/roap", ca_, validity_, provider_, rng_,
          &ica_, kRealmRsaBits) {
  // The default offer every realm agent can acquire. kcek draws from the
  // rng *after* the shared trust prefix; the server side is the only one
  // that uses it, so client-side divergence here is harmless.
  ri::LicenseOffer offer;
  offer.ro_id = kRealmRoId;
  offer.content_id = kRealmContentId;
  offer.dcf_hash = Bytes(20, 0xab);
  rel::Permission play;
  play.type = rel::PermissionType::kPlay;
  offer.permissions = {play};
  offer.kcek = rng_.bytes(16);
  ri_.add_offer(offer);
}

std::unique_ptr<agent::DrmAgent> Realm::make_agent(
    const std::string& device_id) {
  // Per-agent generator: disjoint from the realm stream and from every
  // other agent, so concurrently-driven agents never share rng state.
  agent_rngs_.emplace_back(seed_ ^ (0x9E3779B97F4A7C15ull *
                                    (agent_rngs_.size() + 1)));
  DeterministicRng& rng = agent_rngs_.back();
  auto dev = std::make_unique<agent::DrmAgent>(
      device_id, ca_.root_certificate(), provider_, rng, kRealmRsaBits);
  dev->provision(ca_.issue(device_id, dev->public_key(), validity_, rng));
  return dev;
}

}  // namespace omadrm::net
