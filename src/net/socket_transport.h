// roap::Transport over framed TCP — the agent side of the real network
// stack.
//
// One transport owns one persistent connection to an ri_server (or any
// net::RiServer). request() frames the envelope's wire bytes
// (net/frame.h), sends them, and blocks — bounded by the configured
// timeouts — for exactly one framed reply, which is parsed with the
// same Envelope::from_wire the in-process seam uses: nothing above the
// Transport interface can tell the difference, which is the point of
// the PR 2 seam.
//
// Failure mapping (composes unchanged with roap::ReliableTransport and
// the PR 6 retry-policy session drivers):
//
//   connect refused / reset / EOF      Error(kTransport)  -> retriable,
//   read or write timeout              Error(kTransport)     surfaces as
//   server refusal frame (0xFF)        Error(kTransport)     kTransportFailure
//   server busy frame (0xFE)           Error(kBusy)       -> retriable w/
//                                                            backoff, surfaces
//                                                            as kServerBusy
//   reply delivered but unparseable    Error(kFormat)     -> session judges
//                                                            (kMalformedMessage)
//
// the whole-exchange deadline of a RetryPolicy then yields kTimeout at
// the session layer — the per-attempt socket timeouts below are what
// turns a silent peer into those retriable attempts in the first place.
//
// After any transport-level failure the connection is closed, so the
// next attempt reconnects on a clean stream — a reply to a timed-out
// request can never be mistaken for the reply to its resend. A busy
// frame is the one exception: the server answered it from the event
// loop — exactly one reply per request, stream still in lockstep — so
// the connection stays open and the backed-off resend reuses it.
//
// All deadlines are measured on the monotonic clock (net::steady_ms).
// The transport is single-session: one request at a time per instance
// (each agent thread owns its own, mirroring one device = one link).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/frame.h"
#include "net/socket.h"
#include "roap/envelope.h"
#include "roap/transport.h"

namespace omadrm::net {

class SocketTransport final : public roap::Transport {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::uint64_t connect_timeout_ms = 2000;
    std::uint64_t read_timeout_ms = 5000;
    std::uint64_t write_timeout_ms = 5000;
    bool crc = true;  // append the CRC-32 trailer to outgoing frames
    std::size_t max_frame_payload = kDefaultMaxFramePayload;
  };

  struct Stats {
    std::uint64_t requests = 0;         // exchanges attempted
    std::uint64_t connects = 0;         // successful TCP connects
    std::uint64_t reconnects = 0;       // connects beyond the first
    std::uint64_t transport_errors = 0; // thrown kTransport failures
    std::uint64_t server_refusals = 0;  // error frames received
    std::uint64_t server_busy = 0;      // busy (load-shed) frames received
  };

  explicit SocketTransport(Config config)
      : config_(std::move(config)), decoder_(config_.max_frame_payload) {}
  ~SocketTransport() override = default;

  roap::Envelope request(const roap::Envelope& request) override;
  /// Ships pre-serialized (possibly deliberately damaged) bytes as the
  /// frame payload — the raw seam FaultyTransport's corrupt-request
  /// fault uses, so the garbage actually crosses the wire.
  roap::Envelope request_raw(std::string_view wire) override;

  /// Drops the persistent connection; the next request reconnects.
  void close();
  bool connected() const { return sock_.valid(); }

  const Stats& stats() const { return stats_; }
  const Config& config() const { return config_; }

 private:
  /// One framed exchange: connect if needed, send, read one reply frame.
  roap::Envelope exchange(std::uint8_t type, std::string_view payload);

  Config config_;
  Socket sock_;
  FrameDecoder decoder_;
  std::string outbuf_;  // reused frame-encode buffer
  Stats stats_;
};

}  // namespace omadrm::net
