// Wire framing for ROAP-over-TCP.
//
// TCP is a byte stream; the ROAP envelopes the rest of the stack trades
// in are discrete documents. A frame is the smallest self-delimiting
// unit the stream is cut into:
//
//   offset  size  field
//   0       2     magic 0x4F 0x44 ("OD")
//   2       1     protocol version (kFrameVersion)
//   3       1     envelope type tag (roap::MessageType value,
//                 kErrorFrameType for a server refusal, or kBusyFrameType
//                 for an admission-control load shed; both carry a
//                 human-readable reason as the payload)
//   4       1     flags (bit 0: CRC-32 trailer present)
//   5       4     payload length, big-endian, capped (max_payload)
//   9       n     payload — the serialized ROAP XML document
//   [9+n]   4     CRC-32 (IEEE) of header+payload, big-endian, optional
//
// The length cap is a hard protocol limit, checked *before* any payload
// is buffered: a peer announcing an oversized frame is cut off after 9
// bytes instead of being allowed to balloon the read buffer. The CRC
// trailer is optional per frame (flag bit) so transports can skip it
// when the link already checksums; both sides of this repo default it
// on — TCP's own checksum is 16-bit and the DRM threat model includes a
// deliberately damaging middlebox.
//
// FrameDecoder is incremental: feed() arbitrary byte slices as they
// arrive (a 1-byte-at-a-time trickle reassembles fine), next() yields
// complete frames. Malformed input — bad magic, unknown version,
// oversized length, CRC mismatch — throws omadrm::Error(kFormat); a
// merely incomplete frame is not an error, next() just returns nothing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace omadrm::net {

inline constexpr std::uint8_t kFrameMagic0 = 0x4F;  // 'O'
inline constexpr std::uint8_t kFrameMagic1 = 0x44;  // 'D'
inline constexpr std::uint8_t kFrameVersion = 1;
/// Type tag of a server refusal frame (payload = ASCII reason).
inline constexpr std::uint8_t kErrorFrameType = 0xFF;
/// Type tag of a load-shed refusal: the server's admission control
/// answered "busy" WITHOUT processing the request (payload = ASCII
/// reason). Distinct from kErrorFrameType because the client-side
/// contract differs: busy is retriable-with-backoff on the SAME healthy
/// connection (StatusCode::kServerBusy), while an error frame poisons
/// the exchange and forces a reconnect.
inline constexpr std::uint8_t kBusyFrameType = 0xFE;
inline constexpr std::size_t kFrameHeaderSize = 9;
inline constexpr std::size_t kFrameTrailerSize = 4;
/// Default hard cap on a frame payload. ROAP documents in this repo are
/// a few KiB; 1 MiB leaves two orders of magnitude of headroom while
/// still bounding what one connection can make the server buffer.
inline constexpr std::size_t kDefaultMaxFramePayload = 1u << 20;

inline constexpr std::uint8_t kFrameFlagCrc = 0x01;

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `data`, starting from
/// `seed` (pass a previous result to continue a running checksum).
std::uint32_t crc32(std::string_view data, std::uint32_t seed = 0);

struct Frame {
  std::uint8_t type = 0;  // MessageType value, kErrorFrameType, kBusyFrameType
  bool crc = false;       // request carried the CRC trailer (echo it back)
  std::string payload;
};

/// Appends one encoded frame carrying `payload` to `out`.
void encode_frame(std::uint8_t type, std::string_view payload,
                  std::string& out, bool with_crc = true);

/// Bytes one encoded frame for `payload` occupies on the wire.
std::size_t encoded_frame_size(std::size_t payload_size, bool with_crc);

class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kDefaultMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Buffers arriving bytes. Any slicing works, including one byte at a
  /// time; feed() never throws on content (validation happens in next()).
  void feed(std::string_view bytes);

  /// Decodes the next complete frame from the buffered bytes, or
  /// std::nullopt when more bytes are needed. Throws
  /// omadrm::Error(kFormat) on bad magic, unknown version, a payload
  /// length over the cap, or a CRC mismatch — after which the stream is
  /// unrecoverable and the connection should be dropped.
  std::optional<Frame> next();

  /// Bytes fed but not yet consumed by next().
  std::size_t buffered() const { return buf_.size() - pos_; }

  /// Drops all buffered bytes (new-connection reset).
  void reset() {
    buf_.clear();
    pos_ = 0;
  }

 private:
  std::size_t max_payload_;
  std::string buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
};

}  // namespace omadrm::net
