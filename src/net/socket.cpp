#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/error.h"

namespace omadrm::net {

using omadrm::Error;
using omadrm::ErrorKind;

std::uint64_t steady_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int Socket::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw Error(ErrorKind::kState, "net: fcntl(O_NONBLOCK) failed");
  }
}

void set_tcp_nodelay(int fd) {
  const int one = 1;
  // Advisory: a kernel without the option just leaves Nagle on.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

namespace {

sockaddr_in make_addr(const std::string& host, std::uint16_t port,
                      ErrorKind bad_host_kind) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw Error(bad_host_kind, "net: bad IPv4 address '" + host + "'");
  }
  return addr;
}

/// poll() for `events` on one fd until `deadline` (steady_ms). Returns
/// true when the fd is ready, false when the deadline passed.
bool wait_fd(int fd, short events, std::uint64_t deadline) {
  for (;;) {
    const std::uint64_t now = steady_ms();
    if (now >= deadline) return false;
    const std::uint64_t left = deadline - now;
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(
        &pfd, 1, static_cast<int>(left > 60000 ? 60000 : left));
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw Error(ErrorKind::kTransport,
                  std::string("net: poll failed: ") + std::strerror(errno));
    }
    if (rc > 0) return true;
  }
}

}  // namespace

Socket connect_tcp(const std::string& host, std::uint16_t port,
                   std::uint64_t timeout_ms) {
  const sockaddr_in addr = make_addr(host, port, ErrorKind::kTransport);
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    throw Error(ErrorKind::kTransport,
                std::string("net: socket() failed: ") + std::strerror(errno));
  }
  set_nonblocking(sock.fd());
  const std::uint64_t deadline = steady_ms() + timeout_ms;
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) < 0) {
    // EINTR on connect() is NOT a failure: POSIX says the connection
    // attempt continues asynchronously, exactly like EINPROGRESS — so
    // both fall into the poll(POLLOUT) + SO_ERROR completion path.
    // Retrying connect() after EINTR would misread the in-progress
    // attempt (EALREADY, or worse a spurious EADDRINUSE) as an error.
    if (errno != EINPROGRESS && errno != EINTR) {
      throw Error(ErrorKind::kTransport, std::string("net: connect to ") +
                                             host + ": " +
                                             std::strerror(errno));
    }
    if (!wait_fd(sock.fd(), POLLOUT, deadline)) {
      throw Error(ErrorKind::kTransport,
                  "net: connect to " + host + ":" + std::to_string(port) +
                      " timed out after " + std::to_string(timeout_ms) +
                      " ms");
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) < 0 ||
        err != 0) {
      throw Error(ErrorKind::kTransport,
                  std::string("net: connect to ") + host + ":" +
                      std::to_string(port) + ": " +
                      std::strerror(err != 0 ? err : errno));
    }
  }
  set_tcp_nodelay(sock.fd());
  return sock;
}

Socket listen_tcp(const std::string& host, std::uint16_t port, int backlog,
                  std::uint16_t* bound_port) {
  const sockaddr_in addr = make_addr(host, port, ErrorKind::kState);
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    throw Error(ErrorKind::kState,
                std::string("net: socket() failed: ") + std::strerror(errno));
  }
  const int one = 1;
  (void)::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0) {
    throw Error(ErrorKind::kState, "net: bind " + host + ":" +
                                       std::to_string(port) + ": " +
                                       std::strerror(errno));
  }
  if (::listen(sock.fd(), backlog) < 0) {
    throw Error(ErrorKind::kState,
                std::string("net: listen failed: ") + std::strerror(errno));
  }
  if (bound_port != nullptr) {
    sockaddr_in got{};
    socklen_t len = sizeof got;
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&got), &len) <
        0) {
      throw Error(ErrorKind::kState, "net: getsockname failed");
    }
    *bound_port = ntohs(got.sin_port);
  }
  set_nonblocking(sock.fd());
  return sock;
}

void send_all(int fd, std::string_view data, std::uint64_t timeout_ms) {
  const std::uint64_t deadline = steady_ms() + timeout_ms;
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!wait_fd(fd, POLLOUT, deadline)) {
        throw Error(ErrorKind::kTransport,
                    "net: send timed out with " +
                        std::to_string(data.size() - sent) +
                        " bytes unwritten");
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw Error(ErrorKind::kTransport,
                std::string("net: send failed: ") + std::strerror(errno));
  }
}

std::size_t recv_some_until(int fd, char* buf, std::size_t cap,
                            std::uint64_t deadline) {
  for (;;) {
    const ssize_t n = ::recv(fd, buf, cap, 0);
    if (n > 0) return static_cast<std::size_t>(n);
    if (n == 0) return 0;  // orderly EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!wait_fd(fd, POLLIN, deadline)) {
        throw Error(ErrorKind::kTransport, "net: read timed out");
      }
      continue;
    }
    if (errno == EINTR) continue;
    throw Error(ErrorKind::kTransport,
                std::string("net: recv failed: ") + std::strerror(errno));
  }
}

}  // namespace omadrm::net
