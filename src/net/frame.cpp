#include "net/frame.h"

#include <array>

#include "common/error.h"

namespace omadrm::net {

using omadrm::Error;
using omadrm::ErrorKind;

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void put_u32_be(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v >> 24));
  out.push_back(static_cast<char>(v >> 16));
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v));
}

std::uint32_t get_u32_be(const char* p) {
  return (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[0])) << 24) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[1])) << 16) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[2])) << 8) |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[3]));
}

}  // namespace

std::uint32_t crc32(std::string_view data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (char ch : data) {
    c = table[(c ^ static_cast<std::uint8_t>(ch)) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::size_t encoded_frame_size(std::size_t payload_size, bool with_crc) {
  return kFrameHeaderSize + payload_size +
         (with_crc ? kFrameTrailerSize : 0);
}

void encode_frame(std::uint8_t type, std::string_view payload,
                  std::string& out, bool with_crc) {
  if (payload.size() > 0xFFFFFFFFu) {
    throw Error(ErrorKind::kRange, "net: frame payload exceeds u32 length");
  }
  const std::size_t start = out.size();
  out.reserve(start + encoded_frame_size(payload.size(), with_crc));
  out.push_back(static_cast<char>(kFrameMagic0));
  out.push_back(static_cast<char>(kFrameMagic1));
  out.push_back(static_cast<char>(kFrameVersion));
  out.push_back(static_cast<char>(type));
  out.push_back(static_cast<char>(with_crc ? kFrameFlagCrc : 0));
  put_u32_be(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  if (with_crc) {
    const std::uint32_t crc = crc32(
        std::string_view(out).substr(start, kFrameHeaderSize + payload.size()));
    put_u32_be(out, crc);
  }
}

void FrameDecoder::feed(std::string_view bytes) {
  // Reclaim the consumed prefix before it grows unbounded on a
  // long-lived connection; amortized O(1) per byte.
  if (pos_ > 4096 && pos_ >= buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(bytes);
}

std::optional<Frame> FrameDecoder::next() {
  const std::size_t avail = buf_.size() - pos_;
  // Validate the fixed fields as soon as their bytes exist: garbage is
  // rejected at the earliest offset that proves it, not after a full
  // header straggles in.
  const char* p = buf_.data() + pos_;
  if (avail >= 1 && static_cast<std::uint8_t>(p[0]) != kFrameMagic0) {
    throw Error(ErrorKind::kFormat, "net: bad frame magic");
  }
  if (avail >= 2 && static_cast<std::uint8_t>(p[1]) != kFrameMagic1) {
    throw Error(ErrorKind::kFormat, "net: bad frame magic");
  }
  if (avail >= 3 && static_cast<std::uint8_t>(p[2]) != kFrameVersion) {
    throw Error(ErrorKind::kFormat, "net: unsupported frame version");
  }
  if (avail < kFrameHeaderSize) return std::nullopt;

  const std::uint8_t type = static_cast<std::uint8_t>(p[3]);
  const std::uint8_t flags = static_cast<std::uint8_t>(p[4]);
  if ((flags & ~kFrameFlagCrc) != 0) {
    throw Error(ErrorKind::kFormat, "net: unknown frame flags");
  }
  const std::uint32_t len = get_u32_be(p + 5);
  if (len > max_payload_) {
    // coldpath: oversized-frame reject tears the connection down anyway.
    throw Error(ErrorKind::kFormat,
                "net: frame payload length " + std::to_string(len) +
                    " exceeds cap " + std::to_string(max_payload_));
  }
  const bool has_crc = (flags & kFrameFlagCrc) != 0;
  const std::size_t total =
      kFrameHeaderSize + len + (has_crc ? kFrameTrailerSize : 0);
  if (avail < total) return std::nullopt;

  if (has_crc) {
    const std::uint32_t want = get_u32_be(p + kFrameHeaderSize + len);
    const std::uint32_t got = crc32(
        std::string_view(p, kFrameHeaderSize + len));
    if (want != got) {
      throw Error(ErrorKind::kFormat, "net: frame CRC mismatch");
    }
  }

  Frame frame;
  frame.type = type;
  frame.crc = has_crc;
  frame.payload.assign(p + kFrameHeaderSize, len);
  pos_ += total;
  return frame;
}

}  // namespace omadrm::net
