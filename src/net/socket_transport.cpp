#include "net/socket_transport.h"

#include "common/error.h"

namespace omadrm::net {

using omadrm::Error;
using omadrm::ErrorKind;

void SocketTransport::close() {
  sock_.close();
  decoder_.reset();
}

roap::Envelope SocketTransport::request(const roap::Envelope& request) {
  return exchange(static_cast<std::uint8_t>(request.type()), request.wire());
}

roap::Envelope SocketTransport::request_raw(std::string_view wire) {
  // The type tag is advisory routing metadata; the authoritative type is
  // whatever the document parses to server-side. Damaged bytes get the
  // error tag's opposite — any request tag works, the server re-derives.
  return exchange(static_cast<std::uint8_t>(roap::MessageType::kDeviceHello),
                  wire);
}

roap::Envelope SocketTransport::exchange(std::uint8_t type,
                                         std::string_view payload) {
  ++stats_.requests;
  try {
    if (!sock_.valid()) {
      sock_ = connect_tcp(config_.host, config_.port,
                          config_.connect_timeout_ms);
      decoder_.reset();
      ++stats_.connects;
      if (stats_.connects > 1) ++stats_.reconnects;
    }

    outbuf_.clear();
    encode_frame(type, payload, outbuf_, config_.crc);
    send_all(sock_.fd(), outbuf_, config_.write_timeout_ms);

    const std::uint64_t deadline = steady_ms() + config_.read_timeout_ms;
    char buf[16 * 1024];
    for (;;) {
      std::optional<Frame> frame;
      try {
        frame = decoder_.next();
      } catch (const Error&) {
        // A frame-layer kFormat (bad magic/version, CRC mismatch) means
        // the stream is desynchronized — unlike a bad *document*, the
        // connection itself is unusable now.
        close();
        throw;
      }
      if (frame) {
        if (frame->type == kBusyFrameType) {
          // Admission-control shed: answered straight from the server's
          // event loop before any processing, so a resend races nothing.
          // The stream stays in lockstep (one reply per request) — keep
          // the connection; the retry stack backs off and resends on it.
          ++stats_.server_busy;
          throw Error(ErrorKind::kBusy,
                      "net: server busy: " + frame->payload);
        }
        if (frame->type == kErrorFrameType) {
          // The peer received our bytes and refused them (unparseable
          // document, protocol misuse, overload). For the layers above
          // this is indistinguishable from a lost exchange: retriable.
          ++stats_.server_refusals;
          close();
          throw Error(ErrorKind::kTransport,
                      "net: server refused request: " + frame->payload);
        }
        // Delivered-but-damaged replies throw kFormat out of from_wire —
        // the session layer's business, not a transport loss; the
        // connection itself stays healthy (framing was intact).
        roap::Envelope env = roap::Envelope::from_wire(frame->payload);
        if (static_cast<std::uint8_t>(env.type()) != frame->type) {
          throw Error(ErrorKind::kFormat,
                      "net: frame type tag disagrees with document root");
        }
        return env;
      }
      const std::size_t n =
          recv_some_until(sock_.fd(), buf, sizeof buf, deadline);
      if (n == 0) {
        throw Error(ErrorKind::kTransport,
                    "net: server closed the connection mid-exchange");
      }
      decoder_.feed(std::string_view(buf, n));
    }
  } catch (const Error& e) {
    // Any transport-level loss poisons the connection: close it so the
    // next attempt reconnects on a clean stream (a late reply to a
    // timed-out request must never be read as the reply to its resend).
    if (e.kind() == ErrorKind::kTransport) {
      ++stats_.transport_errors;
      close();
    }
    throw;
  }
}

}  // namespace omadrm::net
