#include "net/concurrent_issuer.h"

namespace omadrm::net {

roap::Envelope ConcurrentIssuer::handle(const roap::Envelope& request,
                                        std::uint64_t now) {
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    lock.lock();
    ++stats_.contended;
  }
  ++stats_.exchanges;
  return ri_.handle(request, now);
}

ConcurrentIssuer::Stats ConcurrentIssuer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace omadrm::net
