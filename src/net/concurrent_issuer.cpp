#include "net/concurrent_issuer.h"

#include <cinttypes>
#include <cstdio>

namespace omadrm::net {

roap::Envelope ConcurrentIssuer::handle(const roap::Envelope& request,
                                        std::uint64_t now) {
  // Counted before dispatch so thrown calls (non-request envelopes the
  // server turns into error frames) still register as exchanges.
  exchanges_.fetch_add(1, std::memory_order_relaxed);
  return ri_.handle(request, now);
}

ConcurrentIssuer::Stats ConcurrentIssuer::stats() const {
  Stats out;
  out.exchanges = exchanges_.load(std::memory_order_relaxed);
  for (const auto& sh : ri_.shard_stats()) out.contended += sh.contended;
  return out;
}

std::string format_issuer_stats(const ConcurrentIssuer& issuer) {
  const ConcurrentIssuer::Stats total = issuer.stats();
  const auto shards = issuer.shard_stats();
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (const auto& sh : shards) {
    hits += sh.replay_hits;
    misses += sh.replay_misses;
  }
  const auto rate = [](std::uint64_t h, std::uint64_t m) {
    const std::uint64_t lookups = h + m;
    return lookups == 0 ? 0.0
                        : 100.0 * static_cast<double>(h) /
                              static_cast<double>(lookups);
  };

  char line[160];
  std::snprintf(line, sizeof(line),
                "issuer: exchanges=%" PRIu64 " contended=%" PRIu64
                " replay_hits=%" PRIu64 " replay_misses=%" PRIu64
                " hit_rate=%.1f%%\n",
                total.exchanges, total.contended, hits, misses,
                rate(hits, misses));
  std::string out = line;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const auto& sh = shards[i];
    // Idle shards (no fleet traffic hashed there) are elided so a
    // two-device test prints two lines, not kShardCount.
    if (sh.exchanges == 0 && sh.replay_hits == 0 && sh.replay_misses == 0) {
      continue;
    }
    std::snprintf(line, sizeof(line),
                  "shard[%02zu]: exchanges=%" PRIu64 " contended=%" PRIu64
                  " replay_hits=%" PRIu64 " replay_misses=%" PRIu64
                  " hit_rate=%.1f%%\n",
                  i, sh.exchanges, sh.contended, sh.replay_hits,
                  sh.replay_misses, rate(sh.replay_hits, sh.replay_misses));
    out += line;
  }
  return out;
}

}  // namespace omadrm::net
