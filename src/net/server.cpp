#include "net/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "common/error.h"
#include "common/failpoint.h"

namespace omadrm::net {

using omadrm::Error;
using omadrm::ErrorKind;

// ---------------------------------------------------------------------------
// Pollers
// ---------------------------------------------------------------------------

#ifdef __linux__
namespace {

class EpollPoller final : public Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(0)) {
    if (epfd_ < 0) {
      throw Error(ErrorKind::kState,
                  std::string("net: epoll_create1: ") + std::strerror(errno));
    }
  }
  ~EpollPoller() override { ::close(epfd_); }

  void add(int fd, bool want_write) override { ctl(EPOLL_CTL_ADD, fd, want_write); }
  void update(int fd, bool want_write) override { ctl(EPOLL_CTL_MOD, fd, want_write); }
  void remove(int fd) override {
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);  // tolerant: fd may be gone
  }

  void wait(std::vector<Event>& out, int timeout_ms) override {
    out.clear();
    epoll_event evs[128];
    int n = ::epoll_wait(epfd_, evs, 128, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return;
      throw Error(ErrorKind::kState,
                  std::string("net: epoll_wait: ") + std::strerror(errno));
    }
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      Event e;
      e.fd = evs[i].data.fd;
      e.readable = (evs[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      e.writable = (evs[i].events & EPOLLOUT) != 0;
      e.hangup = (evs[i].events & EPOLLERR) != 0;
      out.push_back(e);
    }
  }

 private:
  void ctl(int op, int fd, bool want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    ::epoll_ctl(epfd_, op, fd, &ev);  // tolerant on MOD-after-close races
  }

  int epfd_;
};

}  // namespace

std::unique_ptr<Poller> make_epoll_poller() {
  return std::make_unique<EpollPoller>();
}
#else
std::unique_ptr<Poller> make_epoll_poller() { return nullptr; }
#endif

namespace {

class PollPoller final : public Poller {
 public:
  void add(int fd, bool want_write) override { wanted_[fd] = want_write; }
  void update(int fd, bool want_write) override {
    auto it = wanted_.find(fd);
    if (it != wanted_.end()) it->second = want_write;
  }
  void remove(int fd) override { wanted_.erase(fd); }

  void wait(std::vector<Event>& out, int timeout_ms) override {
    out.clear();
    fds_.clear();
    for (const auto& [fd, want_write] : wanted_) {
      pollfd p{};
      p.fd = fd;
      p.events = static_cast<short>(POLLIN | (want_write ? POLLOUT : 0));
      fds_.push_back(p);
    }
    int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return;
      throw Error(ErrorKind::kState,
                  std::string("net: poll: ") + std::strerror(errno));
    }
    if (n == 0) return;
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      Event e;
      e.fd = p.fd;
      e.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
      e.writable = (p.revents & POLLOUT) != 0;
      e.hangup = (p.revents & (POLLERR | POLLNVAL)) != 0;
      out.push_back(e);
    }
  }

 private:
  std::unordered_map<int, bool> wanted_;  // fd -> write interest
  std::vector<pollfd> fds_;               // reused scratch
};

}  // namespace

std::unique_ptr<Poller> make_poll_poller() {
  return std::make_unique<PollPoller>();
}

// ---------------------------------------------------------------------------
// RiServer
// ---------------------------------------------------------------------------

RiServer::RiServer(ConcurrentIssuer& issuer, Config config)
    : issuer_(issuer), config_(std::move(config)) {}

RiServer::~RiServer() { stop(); }

void RiServer::start() {
  if (running_.load(std::memory_order_acquire)) {
    throw Error(ErrorKind::kState, "net: server already running");
  }
  if (config_.workers == 0) {
    throw Error(ErrorKind::kState, "net: server needs at least one worker");
  }

  listen_ = listen_tcp(config_.bind_address, config_.port, config_.backlog,
                       &port_);

  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    listen_.close();
    throw Error(ErrorKind::kState,
                std::string("net: pipe: ") + std::strerror(errno));
  }
  set_nonblocking(pipefd[0]);
  set_nonblocking(pipefd[1]);
  wake_read_ = Socket(pipefd[0]);
  wake_write_ = Socket(pipefd[1]);

  poller_ = config_.use_epoll ? make_epoll_poller() : nullptr;
  if (!poller_) poller_ = make_poll_poller();
  poller_->add(listen_.fd(), false);
  poller_->add(wake_read_.fd(), false);

  stopping_.store(false, std::memory_order_release);
  loop_exit_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);

  loop_thread_ = std::thread([this] { event_loop(); });
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void RiServer::stop() {
  MutexLock stop_lock(stop_mu_);
  if (!running_.load(std::memory_order_acquire)) return;

  // 1. Stop intake: the loop drops the listen fd and ignores further
  //    reads, so the job queue can only shrink from here.
  stopping_.store(true, std::memory_order_release);
  wake();

  // 2. Serve everything already accepted: queued and executing jobs.
  {
    UniqueLock lock(jobs_mu_);
    jobs_done_cv_.wait(lock, [this] {
      jobs_mu_.assert_held();  // wait() re-holds it around the predicate
      return jobs_.empty() && jobs_executing_ == 0;
    });
  }
  jobs_cv_.notify_all();  // workers exit: stopping_ && queue empty
  for (std::thread& w : workers_) w.join();
  workers_.clear();

  // 3. Flush every outbox, bounded by drain_timeout_ms. The event loop
  //    is still running and owns the writes; we just watch and poke.
  const std::uint64_t deadline = steady_ms() + config_.drain_timeout_ms;
  for (;;) {
    bool pending = false;
    {
      MutexLock lock(conns_mu_);
      for (const auto& [fd, conn] : conns_) {
        MutexLock cl(conn->mu);
        if (!conn->dead && conn->outpos < conn->outbox.size()) {
          pending = true;
          break;
        }
      }
    }
    if (!pending || steady_ms() >= deadline) break;
    wake();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // 4. Retire the loop, then close whatever connections remain.
  loop_exit_.store(true, std::memory_order_release);
  wake();
  loop_thread_.join();
  {
    MutexLock lock(conns_mu_);
    for (auto& [fd, conn] : conns_) {
      MutexLock cl(conn->mu);
      if (!conn->dead) {
        ::close(conn->fd);
        conn->dead = true;
        stats_.closed.fetch_add(1, std::memory_order_relaxed);
      }
    }
    conns_.clear();
  }

  poller_.reset();
  wake_read_.close();
  wake_write_.close();
  listen_.close();
  {
    MutexLock lock(replies_mu_);
    replies_.clear();
  }
  running_.store(false, std::memory_order_release);
}

std::size_t RiServer::active_connections() const {
  MutexLock lock(conns_mu_);
  return conns_.size();
}

void RiServer::wake() {
  if (!wake_write_.valid()) return;
  char b = 1;
  // EAGAIN means a poke is already pending — exactly what we want.
  (void)::write(wake_write_.fd(), &b, 1);
}

// ------------------------------- event loop --------------------------------

void RiServer::event_loop() {
  std::vector<Poller::Event> events;
  bool accepting = true;
  std::uint64_t last_sweep = steady_ms();

  while (!loop_exit_.load(std::memory_order_acquire)) {
    if (accepting && stopping_.load(std::memory_order_acquire)) {
      poller_->remove(listen_.fd());
      listen_.close();
      accepting = false;
    }

    poller_->wait(events, 100);

    for (const Poller::Event& ev : events) {
      if (accepting && ev.fd == listen_.fd()) {
        accept_ready();
        continue;
      }
      if (ev.fd == wake_read_.fd()) {
        char drain[256];
        while (::read(wake_read_.fd(), drain, sizeof drain) > 0) {
        }
        continue;
      }
      std::shared_ptr<Conn> conn;
      {
        MutexLock lock(conns_mu_);
        auto it = conns_.find(ev.fd);
        if (it == conns_.end()) continue;  // closed earlier in this batch
        conn = it->second;
      }
      if (ev.hangup) {
        close_conn(conn, false);
        continue;
      }
      if (ev.readable) read_ready(conn);
      // No bare `dead` peek here: it is guarded state (the TSA pass
      // caught the old unlocked read racing close_conn); flush() checks
      // it under the lock and answers "keep open" for a dead conn.
      if (ev.writable) {
        if (!flush(conn)) close_conn(conn, false);
      }
    }

    // Worker replies since the last pass: flush each touched connection.
    std::deque<std::shared_ptr<Conn>> fresh;
    {
      MutexLock lock(replies_mu_);
      fresh.swap(replies_);
    }
    for (const std::shared_ptr<Conn>& conn : fresh) {
      bool dead;
      bool kill;
      {
        // One locked snapshot of both flags — the old bare `dead` read
        // raced close_conn() on a worker thread (caught by the TSA
        // pass; GUARDED_BY now makes the misuse uncompilable).
        MutexLock cl(conn->mu);
        dead = conn->dead;
        kill = conn->kill;
      }
      if (dead) continue;
      if (kill) {
        // A worker flagged this conn over its outbox cap (slow reader);
        // fd ownership is the loop's, so the close happens here.
        close_conn(conn, false);
        continue;
      }
      if (!flush(conn)) close_conn(conn, false);
    }

    // Idle sweep on the monotonic clock, ~2x per timeout granularity.
    const std::uint64_t now = steady_ms();
    if (now - last_sweep >= 500) {
      last_sweep = now;
      std::vector<std::shared_ptr<Conn>> idle;
      std::vector<std::shared_ptr<Conn>> stalled;
      {
        MutexLock lock(conns_mu_);
        for (const auto& [fd, conn] : conns_) {
          // Slow-loris: a partial frame counts as activity for the idle
          // clock (bytes did arrive), so it gets its own, stricter
          // deadline — complete the frame or lose the connection.
          if (config_.read_progress_timeout_ms != 0 &&
              conn->partial_since_ms != 0 &&
              now - conn->partial_since_ms >=
                  config_.read_progress_timeout_ms) {
            stalled.push_back(conn);
            continue;
          }
          if (now - conn->last_active_ms < config_.idle_timeout_ms) continue;
          MutexLock cl(conn->mu);
          if (conn->inflight == 0 && conn->outpos >= conn->outbox.size()) {
            idle.push_back(conn);
          }
        }
      }
      for (const std::shared_ptr<Conn>& conn : stalled) {
        stats_.stalled_closed.fetch_add(1, std::memory_order_relaxed);
        close_conn(conn, false);
      }
      for (const std::shared_ptr<Conn>& conn : idle) close_conn(conn, true);
    }
  }
}

void RiServer::accept_ready() {
  for (;;) {
    int fd = ::accept(listen_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the loop will retry
    }
    std::size_t active;
    {
      MutexLock lock(conns_mu_);
      active = conns_.size();
    }
    if (active >= config_.max_connections) {
      ::close(fd);
      stats_.rejected.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    set_nonblocking(fd);
    set_tcp_nodelay(fd);
    auto conn = std::make_shared<Conn>(fd, config_.max_frame_payload);
    conn->last_active_ms = steady_ms();
    {
      MutexLock lock(conns_mu_);
      conns_.emplace(fd, conn);
    }
    poller_->add(fd, false);
    stats_.accepted.fetch_add(1, std::memory_order_relaxed);
  }
}

void RiServer::read_ready(const std::shared_ptr<Conn>& conn) {
  // A draining connection had a frame-layer protocol error: its input is
  // shut down and we only live to flush the error frame.
  {
    MutexLock cl(conn->mu);
    if (conn->draining) return;
  }
  if (stopping_.load(std::memory_order_acquire)) return;

  char buf[64 * 1024];
  for (;;) {
    ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
    if (n > 0) {
      conn->last_active_ms = steady_ms();
      conn->decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      try {
        while (std::optional<Frame> frame = conn->decoder.next()) {
          stats_.frames_in.fetch_add(1, std::memory_order_relaxed);
          if (!admit(conn)) {
            // Load shed: answer busy straight from the event loop — the
            // payload is dropped unparsed and no worker is involved, so
            // a flood beyond capacity costs one small frame per request,
            // not queue memory. The busy frame echoes the request's CRC
            // choice like any reply.
            stats_.shed.fetch_add(1, std::memory_order_relaxed);
            std::string busy;
            encode_frame(kBusyFrameType,
                         "server busy: request shed by admission control",
                         busy, frame->crc);
            bool over_cap = false;
            {
              MutexLock cl(conn->mu);
              conn->outbox.append(busy);
              over_cap = config_.max_outbox_bytes != 0 &&
                         conn->outbox.size() - conn->outpos >
                             config_.max_outbox_bytes;
            }
            if (over_cap) {
              // Flooding with requests while never reading replies: even
              // the busy frames are piling up. Slow-reader disconnect.
              stats_.slow_reader_closed.fetch_add(1,
                                                  std::memory_order_relaxed);
              close_conn(conn, false);
              return;
            }
            if (!flush(conn)) {
              close_conn(conn, false);
              return;
            }
            continue;
          }
          {
            MutexLock lock(jobs_mu_);
            jobs_.push_back(Job{conn, std::move(frame->payload), frame->crc});
          }
          jobs_cv_.notify_one();
        }
        // Slow-loris bookkeeping: remember when a partial frame started
        // waiting; the idle sweep closes conns whose partial frame never
        // completes within read_progress_timeout_ms.
        if (conn->decoder.buffered() == 0) {
          conn->partial_since_ms = 0;
        } else if (conn->partial_since_ms == 0) {
          conn->partial_since_ms = steady_ms();
        }
      } catch (const Error& e) {
        // Frame-layer desync: the stream is unrecoverable. Tell the peer
        // why, stop reading, close once the error frame is out.
        stats_.frame_desyncs.fetch_add(1, std::memory_order_relaxed);
        std::string err;
        encode_frame(kErrorFrameType, e.what(), err, true);
        {
          MutexLock cl(conn->mu);
          conn->outbox.append(err);
          conn->draining = true;
        }
        ::shutdown(conn->fd, SHUT_RD);
        if (!flush(conn)) close_conn(conn, false);
        return;
      }
      continue;
    }
    if (n == 0) {
      close_conn(conn, false);  // peer EOF; late replies will be dropped
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close_conn(conn, false);
    return;
  }
}

/// Single producer: only the event-loop thread admits and enqueues, so
/// between a true return and the push the queue can only shrink — the
/// depth check cannot be raced past capacity.
bool RiServer::admit(const std::shared_ptr<Conn>& conn) {
  if (config_.max_queue_depth != 0) {
    MutexLock lock(jobs_mu_);
    if (jobs_.size() >= config_.max_queue_depth) return false;
  }
  MutexLock cl(conn->mu);
  if (config_.max_inflight_per_conn != 0 &&
      conn->inflight >= config_.max_inflight_per_conn) {
    return false;
  }
  ++conn->inflight;
  return true;
}

bool RiServer::flush(const std::shared_ptr<Conn>& conn) {
  MutexLock cl(conn->mu);
  if (conn->dead) return true;
  while (conn->outpos < conn->outbox.size()) {
    if (int err = failpoint::check("net.server.send"); err != 0) {
      errno = err;
      return false;  // injected send failure: same path as a peer reset
    }
    ssize_t n = ::send(conn->fd, conn->outbox.data() + conn->outpos,
                       conn->outbox.size() - conn->outpos, MSG_NOSIGNAL);
    if (n > 0) {
      conn->outpos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return false;  // peer reset mid-write
  }
  if (conn->outpos >= conn->outbox.size()) {
    conn->outbox.clear();
    conn->outpos = 0;
    if (conn->draining) return false;  // error frame delivered; close now
    poller_->update(conn->fd, false);
  } else {
    poller_->update(conn->fd, true);  // arm write-readiness for the rest
  }
  return true;
}

void RiServer::close_conn(const std::shared_ptr<Conn>& conn, bool idle) {
  {
    MutexLock cl(conn->mu);
    if (conn->dead) return;
    conn->dead = true;
    conn->outbox.clear();
    conn->outpos = 0;
  }
  // Counters first: the peer observes EOF the instant close() runs, and
  // a stats reader woken by that EOF must already see this close counted.
  stats_.closed.fetch_add(1, std::memory_order_relaxed);
  if (idle) stats_.idle_closed.fetch_add(1, std::memory_order_relaxed);
  poller_->remove(conn->fd);
  ::close(conn->fd);
  {
    MutexLock lock(conns_mu_);
    conns_.erase(conn->fd);
  }
}

// -------------------------------- workers ----------------------------------

void RiServer::worker_loop() {
  for (;;) {
    Job job;
    {
      UniqueLock lock(jobs_mu_);
      jobs_cv_.wait(lock, [this] {
        jobs_mu_.assert_held();  // wait() re-holds it around the predicate
        return !jobs_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (jobs_.empty()) {
        if (stopping_.load(std::memory_order_acquire)) return;
        continue;  // spurious
      }
      job = std::move(jobs_.front());
      jobs_.pop_front();
      ++jobs_executing_;
    }

    std::string reply;
    try {
      roap::Envelope env = roap::Envelope::from_wire(job.payload);
      roap::Envelope out = issuer_.handle(env, config_.now);
      encode_frame(static_cast<std::uint8_t>(out.type()), out.wire(), reply,
                   job.reply_with_crc);
      stats_.served.fetch_add(1, std::memory_order_relaxed);
    } catch (const Error& e) {
      encode_frame(kErrorFrameType, e.what(), reply, job.reply_with_crc);
      stats_.refusals.fetch_add(1, std::memory_order_relaxed);
    } catch (const std::exception& e) {
      encode_frame(kErrorFrameType,
                   std::string("internal error: ") + e.what(), reply,
                   job.reply_with_crc);
      stats_.refusals.fetch_add(1, std::memory_order_relaxed);
    }

    deliver(job.conn, reply);

    {
      MutexLock lock(jobs_mu_);
      --jobs_executing_;
    }
    jobs_done_cv_.notify_all();
  }
}

void RiServer::deliver(const std::shared_ptr<Conn>& conn,
                       const std::string& bytes) {
  bool enqueue = false;
  bool first_kill = false;
  {
    MutexLock cl(conn->mu);
    if (conn->inflight > 0) --conn->inflight;
    if (!conn->dead) {
      conn->outbox.append(bytes);
      enqueue = true;
      // Slow-reader cap: replies are accumulating faster than the peer
      // drains them. Flag the conn; the event loop (which owns the fd)
      // closes it on the next pass instead of buffering without bound.
      if (config_.max_outbox_bytes != 0 && !conn->kill &&
          conn->outbox.size() - conn->outpos > config_.max_outbox_bytes) {
        conn->kill = true;
        first_kill = true;
      }
    }
  }
  if (first_kill) {
    stats_.slow_reader_closed.fetch_add(1, std::memory_order_relaxed);
  }
  if (enqueue) {
    {
      MutexLock lock(replies_mu_);
      replies_.push_back(conn);
    }
    wake();
  }
}

}  // namespace omadrm::net
