// Concurrency front end over a RightsIssuer.
//
// Since the sharded-RI rework, RightsIssuer::handle is itself
// thread-safe: per-device state (pending sessions, registered devices,
// replay-cache LRUs) lives in kShardCount independently locked shards
// keyed by device-id hash, so requests for different devices proceed in
// parallel and only same-shard traffic serializes. The pieces that cross
// device boundaries are concurrent on their own terms:
//
//   - session-id counter: atomic reservation + persisted lease blocks
//     ("meta" extends by kSessionLeaseBlock under its own mutex);
//   - domain membership: its own striped table (joins cross device
//     shards), stripe lock held across compute → persist → apply;
//   - replay cache: per-shard LRUs, with the shard lock spanning
//     lookup → handler → insert so a duplicate racing its original on
//     another worker gets the one byte-identical cached reply;
//   - chain-verdict cache: reader-biased (shared_mutex) — concurrent
//     cache hits take only a shared lock;
//   - Montgomery-context cache: striped by modulus hash;
//   - store commits: optionally batched by store::GroupCommitStore so
//     concurrent shard commits share one journal append + fsync.
//
// Lock order everywhere: device shard → domain stripe → meta lease →
// store; never two shards or two stripes at once (the cross-shard TTL
// sweep locks one shard at a time). The full rank table lives in
// common/ordered_mutex.h and debug builds abort on any inversion; the
// coarse-lock era of this class is gone, so it carries a single atomic
// and NO mutex of its own (ISSUE 10's "two unannotated mutex uses" had
// already dissolved into the sharded RI).
//
// This class is therefore a thin pass-through that (a) keeps the
// server↔issuer seam stable, and (b) owns the fleet-wide exchange
// counter plus aggregation of the RI's per-shard contention stats, which
// ri_server --stats reports.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "ri/rights_issuer.h"
#include "roap/envelope.h"

namespace omadrm::net {

class ConcurrentIssuer {
 public:
  struct Stats {
    std::uint64_t exchanges = 0;  // handle() calls completed or thrown
    std::uint64_t contended = 0;  // shard-lock acquisitions that blocked
  };

  explicit ConcurrentIssuer(ri::RightsIssuer& ri) : ri_(ri) {}

  /// Thread-safe RightsIssuer::handle. Exceptions (kProtocol for
  /// non-request envelopes, kFormat for malformed content) propagate to
  /// the caller — the server turns them into error frames.
  roap::Envelope handle(const roap::Envelope& request, std::uint64_t now);

  /// The wrapped issuer. handle() and the RI's snapshot accessors are
  /// safe while server workers are live; configuration (offers, domains,
  /// bind_store) belongs before start() or after stop().
  ri::RightsIssuer& issuer() { return ri_; }

  Stats stats() const;

  /// Per-shard counters straight from the RI (exchanges, contention,
  /// replay hits/misses) — what `ri_server --stats` prints.
  std::vector<ri::RightsIssuer::ShardStats> shard_stats() const {
    return ri_.shard_stats();
  }

 private:
  ri::RightsIssuer& ri_;
  std::atomic<std::uint64_t> exchanges_{0};
};

/// Renders the `--stats` block ri_server prints on exit: a fleet summary
/// line followed by one line per non-idle shard with its exchange,
/// contention, and replay-cache hit-rate counters. Format is covered by
/// test_net.cpp.
std::string format_issuer_stats(const ConcurrentIssuer& issuer);

}  // namespace omadrm::net
