// Concurrency-safe front end over a RightsIssuer.
//
// RightsIssuer::handle is single-threaded by design: every handler
// mutates shared tables (pending sessions, registered devices, domains,
// the replay cache's LRU — which moves even on a *lookup* — and the
// chain-verdict cache). This front end is the one object the server's
// worker pool shares; it serializes handle() calls under one mutex, so
// behind it the RI, its replay cache, and its chain verifier run
// exactly the single-threaded code the rest of the repo tests.
//
// Why coarse, not striped: striping by device-id hash only helps when
// per-device state is disjoint, but every request type crosses device
// boundaries — the replay cache and session-id counter are global, a
// domain join touches shared domain membership, and the store commit
// path is one journal. Striping the lock without sharding the state
// underneath would be a correctness bug wearing a performance hat. The
// real unlock is a sharded RightsIssuer core (the ROADMAP's next item);
// this class is deliberately the smallest thing that makes today's RI
// safe to put behind a worker pool, with a contention counter so the
// moment the lock becomes the bottleneck is measured, not guessed.
//
// The process-wide Montgomery-context cache (bigint/mont_cache) is
// independently mutex-guarded and safe for the *client* threads that
// share this process in benchmarks; it needs no help from this lock.
#pragma once

#include <cstdint>
#include <mutex>

#include "ri/rights_issuer.h"
#include "roap/envelope.h"

namespace omadrm::net {

class ConcurrentIssuer {
 public:
  struct Stats {
    std::uint64_t exchanges = 0;  // handle() calls completed or thrown
    std::uint64_t contended = 0;  // calls that found the lock held
  };

  explicit ConcurrentIssuer(ri::RightsIssuer& ri) : ri_(ri) {}

  /// Thread-safe RightsIssuer::handle. Exceptions (kProtocol for
  /// non-request envelopes, kFormat for malformed content) propagate to
  /// the caller — the server turns them into error frames.
  roap::Envelope handle(const roap::Envelope& request, std::uint64_t now);

  /// The wrapped issuer. Callers must not touch it while server workers
  /// are live except through handle(); configuration (offers, domains)
  /// belongs before start() or after stop().
  ri::RightsIssuer& issuer() { return ri_; }

  Stats stats() const;

 private:
  ri::RightsIssuer& ri_;
  mutable std::mutex mu_;
  Stats stats_;
};

}  // namespace omadrm::net
