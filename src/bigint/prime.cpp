#include "bigint/prime.h"

#include <array>

#include "bigint/montgomery.h"
#include "common/error.h"

namespace omadrm::bigint {

namespace {

// Primes below 256 for cheap trial division.
constexpr std::array<std::uint32_t, 54> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

// One witness round against the candidate behind `ctx`. Squarings run in
// the Montgomery domain (one CIOS pass each) instead of multiply + divide;
// `mont_one` / `mont_n_minus_1` are the comparison targets in that domain.
bool miller_rabin_witness(const bigint::MontgomeryCtx& ctx,
                          const BigInt& mont_one,
                          const BigInt& mont_n_minus_1, const BigInt& d,
                          std::size_t r, const BigInt& a) {
  BigInt x = ctx.to_mont(ctx.mod_exp(a, d));
  if (x == mont_one || x == mont_n_minus_1) return true;
  for (std::size_t i = 1; i < r; ++i) {
    x = ctx.mont_mul(x, x);
    if (x == mont_n_minus_1) return true;
  }
  return false;  // composite witness found
}

}  // namespace

bool is_probable_prime(const BigInt& n, Rng& rng, std::size_t rounds) {
  const BigInt one(std::uint64_t{1});
  const BigInt two(std::uint64_t{2});
  if (n.is_negative() || n.is_zero() || n == one) return false;

  for (std::uint32_t p : kSmallPrimes) {
    BigInt bp(static_cast<std::uint64_t>(p));
    if (n == bp) return true;
    if ((n % bp).is_zero()) return false;
  }

  // Write n-1 = d * 2^r with d odd.
  BigInt n_minus_1 = n - one;
  BigInt d = n_minus_1;
  std::size_t r = 0;
  while (d.is_even()) {
    d = d >> 1;
    ++r;
  }

  // One context per candidate, built directly: candidate moduli are
  // throwaway, so going through the shared cache would only churn its LRU.
  MontgomeryCtx ctx(n);
  const BigInt& mont_one = ctx.mont_one();
  BigInt mont_n_minus_1 = ctx.to_mont(n_minus_1);

  // Base 2 first (cheap and catches most composites), then random bases.
  if (!miller_rabin_witness(ctx, mont_one, mont_n_minus_1, d, r, two)) {
    return false;
  }
  for (std::size_t i = 0; i < rounds; ++i) {
    BigInt a = BigInt::random_below(n - BigInt(std::uint64_t{3}), rng) + two;
    if (!miller_rabin_witness(ctx, mont_one, mont_n_minus_1, d, r, a)) {
      return false;
    }
  }
  return true;
}

BigInt generate_prime(std::size_t bits, Rng& rng) {
  if (bits < 8) {
    throw omadrm::Error(omadrm::ErrorKind::kRange,
                        "generate_prime: need at least 8 bits");
  }
  for (;;) {
    BigInt candidate = BigInt::random_bits(bits, rng);
    // Force the second-highest bit so p*q has exactly 2*bits bits, and make
    // the candidate odd.
    candidate = candidate + (BigInt(std::uint64_t{1}) << (bits - 2));
    if (candidate.bit_length() > bits) {
      continue;  // carry overflowed the width; redraw
    }
    if (candidate.is_even()) candidate = candidate + BigInt(std::uint64_t{1});
    if (candidate.bit_length() != bits) continue;
    if (is_probable_prime(candidate, rng)) return candidate;
  }
}

}  // namespace omadrm::bigint
