#include "bigint/montgomery.h"

#include <algorithm>
#include <utility>

#include "common/error.h"

namespace omadrm::bigint {

using omadrm::Error;
using omadrm::ErrorKind;

namespace {

using u128 = unsigned __int128;

// -m^-1 mod 2^64 via Newton iteration (doubles correct bits each step).
std::uint64_t neg_inverse_u64(std::uint64_t m0) {
  std::uint64_t inv = 1;
  for (int i = 0; i < 6; ++i) {
    inv *= 2 - m0 * inv;
  }
  return 0u - inv;
}

}  // namespace

MontgomeryCtx::MontgomeryCtx(const BigInt& m) : m_(m) {
  if (m.is_zero() || m.is_negative() || m.is_even()) {
    throw Error(ErrorKind::kCrypto, "Montgomery modulus must be odd positive");
  }
  n_ = m.limbs().size();
  nw_ = (n_ + 1) / 2;
  mw_ = pack(m_);
  m_prime64_ = neg_inverse_u64(mw_[0]);
  // R^2 mod m where R = 2^(64 nw).
  BigInt r = BigInt(std::uint64_t{1}) << (64 * nw_);
  r2w_ = pack((r * r).mod(m_));
  one_plain_.assign(nw_ + 2, 0);
  one_plain_[0] = 1;
  // 1 in Montgomery form: 1 * R^2 * R^-1 = R mod m.
  Words t;
  cios_into(t, one_plain_, r2w_);
  t.resize(nw_);
  onew_ = std::move(t);
  one_mont_ = unpack(onew_);
}

MontgomeryCtx::Words MontgomeryCtx::pack(const BigInt& v) const {
  const auto& limbs = v.limbs();
  Words out(nw_, 0);
  for (std::size_t i = 0; i < limbs.size() && i / 2 < nw_; ++i) {
    out[i / 2] |= static_cast<std::uint64_t>(limbs[i]) << (32 * (i % 2));
  }
  return out;
}

BigInt MontgomeryCtx::unpack(const Words& w) const {
  std::vector<std::uint32_t> limbs(nw_ * 2, 0);
  for (std::size_t i = 0; i < nw_; ++i) {
    limbs[2 * i] = static_cast<std::uint32_t>(w[i]);
    limbs[2 * i + 1] = static_cast<std::uint32_t>(w[i] >> 32);
  }
  return BigInt::from_limbs(std::move(limbs));
}

// Coarsely Integrated Operand Scanning (CIOS) Montgomery multiplication
// on 64-bit words with 128-bit products. No allocation once `t` has
// capacity — the exponentiation loops below reuse two scratch buffers
// for their whole run.
void MontgomeryCtx::cios_into(Words& t, const Words& a, const Words& b) const {
  const std::uint64_t* m = mw_.data();
  t.resize(nw_ + 2);
  std::fill(t.begin(), t.end(), 0);

  for (std::size_t i = 0; i < nw_; ++i) {
    const std::uint64_t ai = a[i];

    // t += ai * b
    u128 carry = 0;
    for (std::size_t j = 0; j < nw_; ++j) {
      const u128 cur = static_cast<u128>(t[j]) + static_cast<u128>(ai) * b[j] +
                       carry;
      t[j] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    {
      const u128 cur = static_cast<u128>(t[nw_]) + carry;
      t[nw_] = static_cast<std::uint64_t>(cur);
      t[nw_ + 1] = static_cast<std::uint64_t>(cur >> 64);
    }

    // u = t[0] * m' mod 2^64 ; t = (t + u * m) >> 64
    const std::uint64_t u = t[0] * m_prime64_;
    u128 cur = static_cast<u128>(t[0]) + static_cast<u128>(u) * m[0];
    carry = cur >> 64;
    for (std::size_t j = 1; j < nw_; ++j) {
      cur = static_cast<u128>(t[j]) + static_cast<u128>(u) * m[j] + carry;
      t[j - 1] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    cur = static_cast<u128>(t[nw_]) + carry;
    t[nw_ - 1] = static_cast<std::uint64_t>(cur);
    t[nw_] = t[nw_ + 1] + static_cast<std::uint64_t>(cur >> 64);
    t[nw_ + 1] = 0;
  }

  // At most one final subtraction is needed: result < 2m.
  bool ge = t[nw_] != 0;
  if (!ge) {
    ge = true;  // t == m subtracts to zero, which is the reduced form
    for (std::size_t i = nw_; i-- > 0;) {
      if (t[i] != m[i]) {
        ge = t[i] > m[i];
        break;
      }
    }
  }
  if (ge) {
    std::uint64_t borrow = 0;
    for (std::size_t i = 0; i < nw_; ++i) {
      const std::uint64_t mi = m[i];
      const std::uint64_t ti = t[i];
      const std::uint64_t d1 = ti - mi;
      const std::uint64_t d2 = d1 - borrow;
      borrow = static_cast<std::uint64_t>((ti < mi) || (d1 < borrow));
      t[i] = d2;
    }
    t[nw_] -= borrow;  // consumes the overflow word; result < m fits nw_
  }
}

BigInt MontgomeryCtx::mont_mul(const BigInt& a, const BigInt& b) const {
  Words t;
  cios_into(t, pack(a), pack(b));
  return unpack(t);
}

BigInt MontgomeryCtx::to_mont(const BigInt& a) const {
  Words t;
  cios_into(t, pack(a), r2w_);
  return unpack(t);
}

BigInt MontgomeryCtx::from_mont(const BigInt& a) const {
  Words t;
  cios_into(t, pack(a), one_plain_);
  return unpack(t);
}

BigInt MontgomeryCtx::mod_exp(const BigInt& base, const BigInt& exp) const {
  if (exp.is_zero()) return BigInt(std::uint64_t{1}).mod(m_);

  const std::size_t bits = exp.bit_length();
  if (bits <= kPlainExpBits) {
    // Short exponent (RSA public exponents live here): left-to-right
    // square-and-multiply beats building the window table. Two scratch
    // buffers ping-pong through the whole run.
    Words mont_base;
    cios_into(mont_base, pack(base), r2w_);
    Words acc = mont_base;
    Words tmp;
    for (std::size_t i = bits - 1; i-- > 0;) {
      cios_into(tmp, acc, acc);
      acc.swap(tmp);
      if (exp.bit(i)) {
        cios_into(tmp, acc, mont_base);
        acc.swap(tmp);
      }
    }
    cios_into(tmp, acc, one_plain_);
    return unpack(tmp);
  }

  // Fixed window: one ad-hoc table per call. Callers exponentiating a
  // truly fixed base repeatedly should hoist make_power_table instead.
  return mod_exp_windowed(make_power_table(base).words_, exp);
}

PowerTable MontgomeryCtx::make_power_table(const BigInt& base) const {
  PowerTable out;
  out.base_ = base;
  out.modulus_ = m_;
  out.words_.resize(std::size_t{1} << kWindowBits);
  out.words_[0] = onew_;
  cios_into(out.words_[1], pack(base), r2w_);
  out.words_[1].resize(nw_);
  for (std::size_t i = 2; i < out.words_.size(); ++i) {
    cios_into(out.words_[i], out.words_[i - 1], out.words_[1]);
    out.words_[i].resize(nw_);
  }
  return out;
}

BigInt MontgomeryCtx::mod_exp(const PowerTable& table,
                              const BigInt& exp) const {
  if (table.empty() || !(table.modulus_ == m_)) {
    throw Error(ErrorKind::kCrypto,
                "PowerTable built for a different modulus");
  }
  if (exp.is_zero()) return BigInt(std::uint64_t{1}).mod(m_);
  return mod_exp_windowed(table.words_, exp);
}

BigInt MontgomeryCtx::mod_exp_windowed(const std::vector<Words>& table,
                                       const BigInt& exp) const {
  const std::size_t bits = exp.bit_length();
  const std::size_t windows = (bits + kWindowBits - 1) / kWindowBits;
  Words acc(nw_ + 2, 0);
  std::copy(onew_.begin(), onew_.end(), acc.begin());
  Words tmp;
  for (std::size_t w = windows; w-- > 0;) {
    for (std::size_t s = 0; s < kWindowBits; ++s) {
      cios_into(tmp, acc, acc);
      acc.swap(tmp);
    }
    std::size_t idx = 0;
    for (std::size_t b = 0; b < kWindowBits; ++b) {
      const std::size_t bit_pos = w * kWindowBits + (kWindowBits - 1 - b);
      idx = (idx << 1) | (bit_pos < bits && exp.bit(bit_pos) ? 1u : 0u);
    }
    if (idx != 0) {
      cios_into(tmp, acc, table[idx]);
      acc.swap(tmp);
    }
  }
  cios_into(tmp, acc, one_plain_);
  return unpack(tmp);
}

}  // namespace omadrm::bigint
