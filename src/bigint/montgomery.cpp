#include "bigint/montgomery.h"

#include <utility>

#include "common/error.h"

namespace omadrm::bigint {

using omadrm::Error;
using omadrm::ErrorKind;

namespace {

// -m^-1 mod 2^32 via Newton iteration (doubles correct bits each step).
std::uint32_t neg_inverse_u32(std::uint32_t m0) {
  std::uint32_t inv = 1;
  for (int i = 0; i < 5; ++i) {
    inv *= 2 - m0 * inv;
  }
  return static_cast<std::uint32_t>(0u - inv);
}

}  // namespace

MontgomeryCtx::MontgomeryCtx(const BigInt& m) : m_(m) {
  if (m.is_zero() || m.is_negative() || m.is_even()) {
    throw Error(ErrorKind::kCrypto, "Montgomery modulus must be odd positive");
  }
  n_ = m.limbs().size();
  m_prime_ = neg_inverse_u32(m.limbs()[0]);
  // R^2 mod m where R = 2^(32 n).
  BigInt r = BigInt(std::uint64_t{1}) << (32 * n_);
  r2_ = (r * r).mod(m_);
  one_mont_ = to_mont(BigInt(std::uint64_t{1}));
}

// Coarsely Integrated Operand Scanning (CIOS) Montgomery multiplication.
// Computes a * b * R^-1 mod m for operands already reduced mod m.
BigInt MontgomeryCtx::cios(const Limbs& a, const Limbs& b) const {
  const Limbs& m = m_.limbs();
  Limbs t(n_ + 2, 0);

  for (std::size_t i = 0; i < n_; ++i) {
    const std::uint64_t ai = i < a.size() ? a[i] : 0;

    // t += ai * b
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < n_; ++j) {
      const std::uint64_t bj = j < b.size() ? b[j] : 0;
      const std::uint64_t cur = t[j] + ai * bj + carry;
      t[j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    {
      const std::uint64_t cur = t[n_] + carry;
      t[n_] = static_cast<std::uint32_t>(cur);
      t[n_ + 1] = static_cast<std::uint32_t>(cur >> 32);
    }

    // u = t[0] * m' mod 2^32 ; t = (t + u * m) >> 32
    const std::uint64_t u = static_cast<std::uint32_t>(t[0] * m_prime_);
    std::uint64_t cur = t[0] + u * m[0];
    carry = cur >> 32;
    for (std::size_t j = 1; j < n_; ++j) {
      cur = t[j] + u * m[j] + carry;
      t[j - 1] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    cur = t[n_] + carry;
    t[n_ - 1] = static_cast<std::uint32_t>(cur);
    t[n_] = t[n_ + 1] + static_cast<std::uint32_t>(cur >> 32);
    t[n_ + 1] = 0;
  }

  t.resize(n_ + 1);
  BigInt res = BigInt::from_limbs(std::move(t));
  // At most one final subtraction is needed: result < 2m.
  if (!(res < m_)) res = res - m_;
  return res;
}

BigInt MontgomeryCtx::mont_mul(const BigInt& a, const BigInt& b) const {
  return cios(a.limbs(), b.limbs());
}

BigInt MontgomeryCtx::to_mont(const BigInt& a) const {
  return cios(a.limbs(), r2_.limbs());
}

BigInt MontgomeryCtx::from_mont(const BigInt& a) const {
  static const Limbs kOne{1};
  return cios(a.limbs(), kOne);
}

BigInt MontgomeryCtx::mod_exp(const BigInt& base, const BigInt& exp) const {
  if (exp.is_zero()) return BigInt(std::uint64_t{1}).mod(m_);

  const std::size_t bits = exp.bit_length();
  if (bits <= kPlainExpBits) {
    // Short exponent (RSA public exponents live here): left-to-right
    // square-and-multiply beats building the window table.
    BigInt mont_base = to_mont(base);
    BigInt acc = mont_base;
    for (std::size_t i = bits - 1; i-- > 0;) {
      acc = mont_mul(acc, acc);
      if (exp.bit(i)) acc = mont_mul(acc, mont_base);
    }
    return from_mont(acc);
  }

  // Fixed window: one ad-hoc PowerTable per call. Callers exponentiating
  // a truly fixed base repeatedly should hoist make_power_table instead.
  return mod_exp_windowed(make_power_table(base).mont_powers_, exp);
}

PowerTable MontgomeryCtx::make_power_table(const BigInt& base) const {
  PowerTable out;
  out.base_ = base;
  out.modulus_ = m_;
  out.mont_powers_.resize(std::size_t{1} << kWindowBits);
  out.mont_powers_[0] = one_mont_;
  out.mont_powers_[1] = to_mont(base);
  for (std::size_t i = 2; i < out.mont_powers_.size(); ++i) {
    out.mont_powers_[i] = mont_mul(out.mont_powers_[i - 1],
                                   out.mont_powers_[1]);
  }
  return out;
}

BigInt MontgomeryCtx::mod_exp(const PowerTable& table,
                              const BigInt& exp) const {
  if (table.empty() || !(table.modulus_ == m_)) {
    throw Error(ErrorKind::kCrypto,
                "PowerTable built for a different modulus");
  }
  if (exp.is_zero()) return BigInt(std::uint64_t{1}).mod(m_);
  return mod_exp_windowed(table.mont_powers_, exp);
}

BigInt MontgomeryCtx::mod_exp_windowed(const std::vector<BigInt>& table,
                                       const BigInt& exp) const {
  const std::size_t bits = exp.bit_length();
  const std::size_t windows = (bits + kWindowBits - 1) / kWindowBits;
  BigInt acc = one_mont_;
  for (std::size_t w = windows; w-- > 0;) {
    for (std::size_t s = 0; s < kWindowBits; ++s) acc = mont_mul(acc, acc);
    std::size_t idx = 0;
    for (std::size_t b = 0; b < kWindowBits; ++b) {
      const std::size_t bit_pos = w * kWindowBits + (kWindowBits - 1 - b);
      idx = (idx << 1) | (bit_pos < bits && exp.bit(bit_pos) ? 1u : 0u);
    }
    if (idx != 0) acc = mont_mul(acc, table[idx]);
  }
  return from_mont(acc);
}

}  // namespace omadrm::bigint
