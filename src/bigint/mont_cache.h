// Process-wide keyed cache of Montgomery contexts.
//
// Building a MontgomeryCtx costs a 2n-by-n-limb division (R^2 mod m) plus
// the m' inverse — work the paper's cost model charges once per RSA
// operation when done naively. RSA traffic, however, concentrates on a
// handful of moduli (the device key, the RI key, the CA key, and their CRT
// primes), so a small LRU keyed by modulus amortizes the setup to zero on
// the hot path. This is the software analogue of the paper's
// "precomputation in the RI context" recommendation.
//
// The cache is thread-safe and bounded (kMontCacheCapacity entries total,
// LRU eviction); transient moduli from prime generation churn through
// without displacing more than a window of live keys. Internally it is
// striped by modulus hash — concurrent verifiers on different moduli
// (distinct device keys across RI shards) hit disjoint mutexes instead of
// one process-wide lock. Benchmarks can disable it to measure the
// uncached baseline.
#pragma once

#include <cstdint>
#include <memory>

#include "bigint/bigint.h"
#include "bigint/montgomery.h"

namespace omadrm::bigint {

/// Maximum number of cached contexts before LRU eviction kicks in.
inline constexpr std::size_t kMontCacheCapacity = 64;

struct MontCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

/// Returns a shared context for the odd positive modulus `m`, building and
/// caching one on first use. When the cache is disabled, a fresh context is
/// built on every call (counted as a miss). Throws Error(kCrypto) for
/// non-odd moduli, exactly like the MontgomeryCtx constructor.
std::shared_ptr<const MontgomeryCtx> shared_montgomery_ctx(const BigInt& m);

/// Toggles the cache (enabled by default). Disabling also clears it, so a
/// benchmark's "uncached" phase never sees stale hits after re-enabling.
void set_montgomery_cache_enabled(bool enabled);
bool montgomery_cache_enabled();

/// Drops every cached context (stats are kept).
void clear_montgomery_cache();

MontCacheStats montgomery_cache_stats();
void reset_montgomery_cache_stats();

}  // namespace omadrm::bigint
