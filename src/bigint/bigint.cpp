#include "bigint/bigint.h"

#include <algorithm>
#include <cstdlib>

#include "bigint/mont_cache.h"
#include "bigint/montgomery.h"
#include "common/error.h"
#include "common/random.h"

namespace omadrm::bigint {

using omadrm::Error;
using omadrm::ErrorKind;

namespace {
// Below this limb count Karatsuba's bookkeeping costs more than it saves.
constexpr std::size_t kKaratsubaThreshold = 24;
}  // namespace

// ---------------------------------------------------------------------------
// construction / conversion
// ---------------------------------------------------------------------------

BigInt::BigInt(std::uint64_t v) {
  if (v != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(v));
    std::uint32_t hi = static_cast<std::uint32_t>(v >> 32);
    if (hi != 0) limbs_.push_back(hi);
  }
}

BigInt::BigInt(int v) : BigInt(static_cast<std::uint64_t>(std::abs(static_cast<long long>(v)))) {
  negative_ = v < 0;
}

BigInt::BigInt(std::string_view text) {
  bool neg = false;
  if (!text.empty() && (text[0] == '-' || text[0] == '+')) {
    neg = text[0] == '-';
    text.remove_prefix(1);
  }
  if (text.empty()) throw Error(ErrorKind::kFormat, "empty integer literal");
  if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    text.remove_prefix(2);
    BigInt acc;
    for (char c : text) {
      int digit;
      if (c >= '0' && c <= '9') digit = c - '0';
      else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
      else throw Error(ErrorKind::kFormat, "invalid hex digit in literal");
      acc = (acc << 4) + BigInt(static_cast<std::uint64_t>(digit));
    }
    *this = acc;
  } else {
    BigInt acc;
    const BigInt ten(std::uint64_t{10});
    for (char c : text) {
      if (c < '0' || c > '9') {
        throw Error(ErrorKind::kFormat, "invalid decimal digit in literal");
      }
      acc = acc * ten + BigInt(static_cast<std::uint64_t>(c - '0'));
    }
    *this = acc;
  }
  negative_ = neg && !is_zero();
}

BigInt BigInt::from_bytes_be(ByteView bytes) {
  BigInt out;
  // Consume 4 bytes per limb from the tail (least significant side).
  std::size_t n = bytes.size();
  out.limbs_.reserve((n + 3) / 4);
  std::size_t i = n;
  while (i > 0) {
    std::uint32_t limb = 0;
    int shift = 0;
    for (int b = 0; b < 4 && i > 0; ++b) {
      limb |= static_cast<std::uint32_t>(bytes[--i]) << shift;
      shift += 8;
    }
    out.limbs_.push_back(limb);
  }
  out.normalize();
  return out;
}

Bytes BigInt::to_bytes_be(std::size_t min_len) const {
  // Exact-size single allocation: the output is written back-to-front,
  // least-significant limb first, into a zero-filled buffer.
  const std::size_t significant = is_zero() ? 1 : (bit_length() + 7) / 8;
  const std::size_t len = std::max(significant, min_len);
  Bytes out(len, 0);
  std::size_t pos = len;
  for (std::size_t i = 0; i < limbs_.size() && pos > 0; ++i) {
    std::uint32_t limb = limbs_[i];
    for (int b = 0; b < 4 && pos > 0; ++b) {
      out[--pos] = static_cast<std::uint8_t>(limb);
      limb >>= 8;
    }
  }
  return out;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  if (negative_) out.push_back('-');
  bool leading = true;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      int nib = (limbs_[i] >> shift) & 0xf;
      if (leading && nib == 0) continue;
      leading = false;
      out.push_back(kDigits[nib]);
    }
  }
  return out;
}

std::string BigInt::to_dec() const {
  if (is_zero()) return "0";
  BigInt v = *this;
  v.negative_ = false;
  const BigInt billion(std::uint64_t{1000000000});
  std::vector<std::uint32_t> groups;
  while (!v.is_zero()) {
    DivMod dm = v.divmod(billion);
    groups.push_back(static_cast<std::uint32_t>(dm.remainder.to_u64()));
    v = dm.quotient;
  }
  std::string out;
  if (negative_) out.push_back('-');
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u", groups.back());
  out += buf;
  for (std::size_t i = groups.size() - 1; i-- > 0;) {
    std::snprintf(buf, sizeof buf, "%09u", groups[i]);
    out += buf;
  }
  return out;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::uint32_t top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::bit(std::size_t i) const {
  std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1u;
}

std::uint64_t BigInt::to_u64() const {
  std::uint64_t v = 0;
  if (!limbs_.empty()) v = limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return v;
}

BigInt BigInt::from_limbs(std::vector<std::uint32_t> limbs) {
  BigInt out;
  out.limbs_ = std::move(limbs);
  out.normalize();
  return out;
}

void BigInt::trim(std::vector<std::uint32_t>& v) {
  while (!v.empty() && v.back() == 0) v.pop_back();
}

void BigInt::normalize() {
  trim(limbs_);
  if (limbs_.empty()) negative_ = false;
}

// ---------------------------------------------------------------------------
// comparison
// ---------------------------------------------------------------------------

int BigInt::cmp_mag(const std::vector<std::uint32_t>& a,
                    const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::strong_ordering BigInt::operator<=>(const BigInt& rhs) const {
  if (negative_ != rhs.negative_) {
    return negative_ ? std::strong_ordering::less
                     : std::strong_ordering::greater;
  }
  int mag = cmp_mag(limbs_, rhs.limbs_);
  if (negative_) mag = -mag;
  if (mag < 0) return std::strong_ordering::less;
  if (mag > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

bool BigInt::operator==(const BigInt& rhs) const {
  return negative_ == rhs.negative_ && limbs_ == rhs.limbs_;
}

// ---------------------------------------------------------------------------
// magnitude helpers
// ---------------------------------------------------------------------------

std::vector<std::uint32_t> BigInt::add_mag(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  const auto& big = a.size() >= b.size() ? a : b;
  const auto& small = a.size() >= b.size() ? b : a;
  std::vector<std::uint32_t> out;
  out.reserve(big.size() + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < big.size(); ++i) {
    std::uint64_t sum = carry + big[i] + (i < small.size() ? small[i] : 0u);
    out.push_back(static_cast<std::uint32_t>(sum));
    carry = sum >> 32;
  }
  if (carry) out.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

std::vector<std::uint32_t> BigInt::sub_mag(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> out;
  out.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow -
                        (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += std::int64_t{1} << 32;
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<std::uint32_t>(diff));
  }
  trim(out);
  return out;
}

std::vector<std::uint32_t> BigInt::mul_school(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<std::uint32_t> out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    std::uint64_t ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      std::uint64_t cur = out[i + j] + ai * b[j] + carry;
      out[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + b.size();
    while (carry) {
      std::uint64_t cur = out[k] + carry;
      out[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  trim(out);
  return out;
}

std::vector<std::uint32_t> BigInt::mul_karatsuba(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  if (a.size() < kKaratsubaThreshold || b.size() < kKaratsubaThreshold) {
    return mul_school(a, b);
  }
  std::size_t half = std::max(a.size(), b.size()) / 2;
  auto split = [half](const std::vector<std::uint32_t>& v) {
    std::vector<std::uint32_t> lo(v.begin(),
                                  v.begin() + static_cast<std::ptrdiff_t>(
                                                  std::min(half, v.size())));
    std::vector<std::uint32_t> hi;
    if (v.size() > half) {
      hi.assign(v.begin() + static_cast<std::ptrdiff_t>(half), v.end());
    }
    trim(lo);
    trim(hi);
    return std::pair{lo, hi};
  };
  auto [a0, a1] = split(a);
  auto [b0, b1] = split(b);

  auto z0 = mul_karatsuba(a0, b0);
  auto z2 = mul_karatsuba(a1, b1);
  auto sa = add_mag(a0, a1);
  auto sb = add_mag(b0, b1);
  auto z1 = mul_karatsuba(sa, sb);
  // z1 -= z0 + z2 (never negative by construction).
  z1 = sub_mag(z1, add_mag(z0, z2));

  std::vector<std::uint32_t> out(a.size() + b.size() + 1, 0);
  auto accumulate = [&out](const std::vector<std::uint32_t>& v,
                           std::size_t shift) {
    std::uint64_t carry = 0;
    std::size_t i = 0;
    for (; i < v.size(); ++i) {
      // The uint64 cast is load-bearing: uint32 + uint32 wraps before the
      // carry join otherwise.
      std::uint64_t cur =
          static_cast<std::uint64_t>(out[shift + i]) + v[i] + carry;
      out[shift + i] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    while (carry) {
      std::uint64_t cur = static_cast<std::uint64_t>(out[shift + i]) + carry;
      out[shift + i] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++i;
    }
  };
  accumulate(z0, 0);
  accumulate(z1, half);
  accumulate(z2, 2 * half);
  trim(out);
  return out;
}

std::vector<std::uint32_t> BigInt::mul_mag(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  return mul_karatsuba(a, b);
}

// ---------------------------------------------------------------------------
// arithmetic operators
// ---------------------------------------------------------------------------

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.is_zero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::operator+(const BigInt& rhs) const {
  BigInt out;
  if (negative_ == rhs.negative_) {
    out.limbs_ = add_mag(limbs_, rhs.limbs_);
    out.negative_ = negative_;
  } else {
    int c = cmp_mag(limbs_, rhs.limbs_);
    if (c == 0) return BigInt{};
    if (c > 0) {
      out.limbs_ = sub_mag(limbs_, rhs.limbs_);
      out.negative_ = negative_;
    } else {
      out.limbs_ = sub_mag(rhs.limbs_, limbs_);
      out.negative_ = rhs.negative_;
    }
  }
  out.normalize();
  return out;
}

BigInt BigInt::operator-(const BigInt& rhs) const { return *this + (-rhs); }

BigInt BigInt::operator*(const BigInt& rhs) const {
  BigInt out;
  out.limbs_ = mul_mag(limbs_, rhs.limbs_);
  out.negative_ = negative_ != rhs.negative_ && !out.limbs_.empty();
  out.normalize();
  return out;
}

DivMod BigInt::divmod(const BigInt& divisor) const {
  if (divisor.is_zero()) throw Error(ErrorKind::kRange, "division by zero");
  int c = cmp_mag(limbs_, divisor.limbs_);
  if (c < 0) return {BigInt{}, *this};

  std::vector<std::uint32_t> q;
  std::vector<std::uint32_t> r;

  if (divisor.limbs_.size() == 1) {
    // Fast path: single-limb divisor.
    std::uint64_t d = divisor.limbs_[0];
    q.assign(limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      std::uint64_t cur = (rem << 32) | limbs_[i];
      q[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    if (rem) r.push_back(static_cast<std::uint32_t>(rem));
  } else {
    // Knuth TAOCP vol.2 Algorithm D.
    // Normalize so the divisor's top limb has its high bit set.
    int shift = 0;
    std::uint32_t top = divisor.limbs_.back();
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
    BigInt u = BigInt::from_limbs(limbs_) << static_cast<std::size_t>(shift);
    BigInt v =
        BigInt::from_limbs(divisor.limbs_) << static_cast<std::size_t>(shift);
    const auto& vn = v.limbs_;
    std::vector<std::uint32_t> un = std::move(u.limbs_);
    const std::size_t n = vn.size();
    const std::size_t m = un.size() - n;
    un.push_back(0);  // u has m+n+1 limbs.
    q.assign(m + 1, 0);

    const std::uint64_t base = std::uint64_t{1} << 32;
    for (std::size_t j = m + 1; j-- > 0;) {
      std::uint64_t num =
          (static_cast<std::uint64_t>(un[j + n]) << 32) | un[j + n - 1];
      std::uint64_t qhat = num / vn[n - 1];
      std::uint64_t rhat = num % vn[n - 1];
      while (qhat >= base ||
             qhat * vn[n - 2] > ((rhat << 32) | un[j + n - 2])) {
        --qhat;
        rhat += vn[n - 1];
        if (rhat >= base) break;
      }
      // Multiply-subtract qhat * v from u[j .. j+n].
      std::int64_t borrow = 0;
      std::uint64_t carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t p = qhat * vn[i] + carry;
        carry = p >> 32;
        std::int64_t t = static_cast<std::int64_t>(un[i + j]) -
                         static_cast<std::int64_t>(p & 0xffffffffu) - borrow;
        if (t < 0) {
          t += static_cast<std::int64_t>(base);
          borrow = 1;
        } else {
          borrow = 0;
        }
        un[i + j] = static_cast<std::uint32_t>(t);
      }
      std::int64_t t = static_cast<std::int64_t>(un[j + n]) -
                       static_cast<std::int64_t>(carry) - borrow;
      if (t < 0) {
        // qhat was one too large: add back.
        t += static_cast<std::int64_t>(base);
        --qhat;
        std::uint64_t carry2 = 0;
        for (std::size_t i = 0; i < n; ++i) {
          std::uint64_t s = static_cast<std::uint64_t>(un[i + j]) + vn[i] +
                            carry2;
          un[i + j] = static_cast<std::uint32_t>(s);
          carry2 = s >> 32;
        }
        t += static_cast<std::int64_t>(carry2);
      }
      un[j + n] = static_cast<std::uint32_t>(t);
      q[j] = static_cast<std::uint32_t>(qhat);
    }
    un.resize(n);
    trim(un);
    // Denormalize the remainder.
    BigInt rem = BigInt::from_limbs(un) >> static_cast<std::size_t>(shift);
    r = rem.limbs_;
  }

  DivMod out;
  out.quotient = BigInt::from_limbs(std::move(q));
  out.remainder = BigInt::from_limbs(std::move(r));
  out.quotient.negative_ =
      negative_ != divisor.negative_ && !out.quotient.limbs_.empty();
  out.remainder.negative_ = negative_ && !out.remainder.limbs_.empty();
  return out;
}

BigInt BigInt::operator/(const BigInt& rhs) const {
  return divmod(rhs).quotient;
}

BigInt BigInt::operator%(const BigInt& rhs) const {
  return divmod(rhs).remainder;
}

BigInt BigInt::mod(const BigInt& m) const {
  if (m.is_zero() || m.is_negative()) {
    throw Error(ErrorKind::kRange, "mod by non-positive modulus");
  }
  BigInt r = *this % m;
  if (r.is_negative()) r = r + m;
  return r;
}

BigInt BigInt::operator<<(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  std::size_t limb_shift = bits / 32;
  std::size_t bit_shift = bits % 32;
  std::vector<std::uint32_t> out(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  BigInt res = from_limbs(std::move(out));
  res.negative_ = negative_ && !res.limbs_.empty();
  return res;
}

BigInt BigInt::operator>>(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  std::size_t limb_shift = bits / 32;
  std::size_t bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) return BigInt{};
  std::vector<std::uint32_t> out(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::uint64_t v = limbs_[i + limb_shift];
    if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1]) << 32;
    }
    out[i] = static_cast<std::uint32_t>(v >> bit_shift);
  }
  BigInt res = from_limbs(std::move(out));
  res.negative_ = negative_ && !res.limbs_.empty();
  return res;
}

// ---------------------------------------------------------------------------
// number theory
// ---------------------------------------------------------------------------

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

ExtGcd BigInt::ext_gcd(const BigInt& a, const BigInt& b) {
  BigInt old_r = a, r = b;
  BigInt old_s(std::uint64_t{1}), s;
  BigInt old_t, t(std::uint64_t{1});
  while (!r.is_zero()) {
    DivMod dm = old_r.divmod(r);
    old_r = std::move(r);
    r = std::move(dm.remainder);  // old_r - q * r, straight from the divide
    BigInt tmp = old_s - dm.quotient * s;
    old_s = std::move(s);
    s = std::move(tmp);
    tmp = old_t - dm.quotient * t;
    old_t = std::move(t);
    t = std::move(tmp);
  }
  return {old_r, old_s, old_t};
}

BigInt BigInt::mod_inverse(const BigInt& a, const BigInt& m) {
  ExtGcd e = ext_gcd(a.mod(m), m);
  if (!(e.g == BigInt(std::uint64_t{1}))) {
    throw Error(ErrorKind::kCrypto, "mod_inverse: arguments not coprime");
  }
  return e.x.mod(m);
}

BigInt BigInt::mod_exp(const BigInt& base, const BigInt& exp,
                       const BigInt& m) {
  if (m.is_zero() || m.is_negative()) {
    throw Error(ErrorKind::kRange, "mod_exp by non-positive modulus");
  }
  if (exp.is_negative()) {
    throw Error(ErrorKind::kRange, "mod_exp with negative exponent");
  }
  if (m == BigInt(std::uint64_t{1})) return BigInt{};
  if (m.is_odd()) {
    // Shared context: R^2 mod m and m' are computed once per modulus and
    // reused across every exponentiation against the same key.
    return shared_montgomery_ctx(m)->mod_exp(base.mod(m), exp);
  }
  // Generic square-and-multiply for even moduli (rare in practice).
  BigInt result(std::uint64_t{1});
  BigInt b = base.mod(m);
  std::size_t bits = exp.bit_length();
  for (std::size_t i = bits; i-- > 0;) {
    result = (result * result).mod(m);
    if (exp.bit(i)) result = (result * b).mod(m);
  }
  return result;
}

BigInt BigInt::random_below(const BigInt& bound, Rng& rng) {
  if (bound.is_zero() || bound.is_negative()) {
    throw Error(ErrorKind::kRange, "random_below: bound must be positive");
  }
  std::size_t bytes_needed = (bound.bit_length() + 7) / 8;
  for (;;) {
    Bytes raw = rng.bytes(bytes_needed);
    // Mask excess high bits to cut rejection probability below 1/2.
    std::size_t excess = bytes_needed * 8 - bound.bit_length();
    if (excess > 0 && !raw.empty()) {
      raw[0] &= static_cast<std::uint8_t>(0xff >> excess);
    }
    BigInt candidate = from_bytes_be(raw);
    if (candidate < bound) return candidate;
  }
}

BigInt BigInt::random_bits(std::size_t bits, Rng& rng) {
  if (bits == 0) return BigInt{};
  std::size_t bytes_needed = (bits + 7) / 8;
  Bytes raw = rng.bytes(bytes_needed);
  std::size_t excess = bytes_needed * 8 - bits;
  raw[0] &= static_cast<std::uint8_t>(0xff >> excess);
  raw[0] |= static_cast<std::uint8_t>(0x80 >> excess);  // force top bit
  return from_bytes_be(raw);
}

}  // namespace omadrm::bigint
