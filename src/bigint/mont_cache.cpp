#include "bigint/mont_cache.h"

#include <list>

#include "common/error.h"
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace omadrm::bigint {

namespace {

/// Raw little-endian limb bytes of the magnitude — cheap, collision-free
/// cache key (the modulus sign is irrelevant: Montgomery moduli are
/// positive by construction).
std::string modulus_key(const BigInt& m) {
  const auto& limbs = m.limbs();
  return std::string(reinterpret_cast<const char*>(limbs.data()),
                     limbs.size() * sizeof(limbs[0]));
}

struct MontCache {
  using Entry = std::pair<std::string, std::shared_ptr<const MontgomeryCtx>>;

  std::mutex mu;
  bool enabled = true;
  MontCacheStats stats;
  std::list<Entry> lru;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index;

  static MontCache& instance() {
    static MontCache cache;
    return cache;
  }
};

}  // namespace

std::shared_ptr<const MontgomeryCtx> shared_montgomery_ctx(const BigInt& m) {
  // Checked before the lookup: the cache key is sign-blind, and a hit for
  // |m| must not mask the contract violation for a negative modulus.
  if (m.is_zero() || m.is_negative() || m.is_even()) {
    throw omadrm::Error(omadrm::ErrorKind::kCrypto,
                        "Montgomery modulus must be odd positive");
  }
  MontCache& cache = MontCache::instance();
  const std::string key = modulus_key(m);
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    if (cache.enabled) {
      auto it = cache.index.find(key);
      if (it != cache.index.end()) {
        ++cache.stats.hits;
        cache.lru.splice(cache.lru.begin(), cache.lru, it->second);
        return it->second->second;
      }
    }
    ++cache.stats.misses;
  }

  // Build outside the lock: context construction is the expensive part and
  // must not serialize concurrent verifiers. A racing duplicate insert is
  // harmless (last one wins; both contexts are equivalent).
  auto ctx = std::make_shared<const MontgomeryCtx>(m);

  std::lock_guard<std::mutex> lock(cache.mu);
  if (!cache.enabled) return ctx;
  auto it = cache.index.find(key);
  if (it != cache.index.end()) {
    cache.lru.splice(cache.lru.begin(), cache.lru, it->second);
    return it->second->second;
  }
  cache.lru.emplace_front(key, ctx);
  cache.index[key] = cache.lru.begin();
  if (cache.lru.size() > kMontCacheCapacity) {
    cache.index.erase(cache.lru.back().first);
    cache.lru.pop_back();
    ++cache.stats.evictions;
  }
  return ctx;
}

void set_montgomery_cache_enabled(bool enabled) {
  MontCache& cache = MontCache::instance();
  std::lock_guard<std::mutex> lock(cache.mu);
  cache.enabled = enabled;
  if (!enabled) {
    cache.lru.clear();
    cache.index.clear();
  }
}

bool montgomery_cache_enabled() {
  MontCache& cache = MontCache::instance();
  std::lock_guard<std::mutex> lock(cache.mu);
  return cache.enabled;
}

void clear_montgomery_cache() {
  MontCache& cache = MontCache::instance();
  std::lock_guard<std::mutex> lock(cache.mu);
  cache.lru.clear();
  cache.index.clear();
}

MontCacheStats montgomery_cache_stats() {
  MontCache& cache = MontCache::instance();
  std::lock_guard<std::mutex> lock(cache.mu);
  return cache.stats;
}

void reset_montgomery_cache_stats() {
  MontCache& cache = MontCache::instance();
  std::lock_guard<std::mutex> lock(cache.mu);
  cache.stats = MontCacheStats{};
}

}  // namespace omadrm::bigint
