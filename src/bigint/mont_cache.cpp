#include "bigint/mont_cache.h"

#include <array>
#include <atomic>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/error.h"
#include "common/ordered_mutex.h"
#include "common/thread_annotations.h"

namespace omadrm::bigint {

namespace {

/// Raw little-endian limb bytes of the magnitude — cheap, collision-free
/// cache key (the modulus sign is irrelevant: Montgomery moduli are
/// positive by construction).
std::string modulus_key(const BigInt& m) {
  const auto& limbs = m.limbs();
  return std::string(reinterpret_cast<const char*>(limbs.data()),
                     limbs.size() * sizeof(limbs[0]));
}

/// The cache is striped by modulus hash so concurrent verifiers working
/// different keys (distinct device moduli across RI shards) never touch
/// the same mutex, and the LRU churn of one stripe cannot evict another
/// stripe's hot context. Capacity splits evenly: kMontCacheCapacity
/// total across kStripes LRUs. Repeated lookups of one modulus always
/// land on one stripe, so single-modulus hit/miss/eviction counts are
/// identical to the old process-wide LRU.
constexpr std::size_t kStripes = 8;
static_assert(kMontCacheCapacity % kStripes == 0);
constexpr std::size_t kStripeCapacity = kMontCacheCapacity / kStripes;

struct Stripe {
  using Entry = std::pair<std::string, std::shared_ptr<const MontgomeryCtx>>;

  // Rank kMontStripe: reached mid-RSA with a shard lock held; context
  // construction happens OUTSIDE the lock, so nothing nests under it.
  OrderedMutex mu{LockRank::kMontStripe, "bigint.mont_stripe"};
  MontCacheStats stats GUARDED_BY(mu);
  std::list<Entry> lru GUARDED_BY(mu);  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index
      GUARDED_BY(mu);
};

struct MontCache {
  std::atomic<bool> enabled{true};
  std::array<Stripe, kStripes> stripes;

  Stripe& stripe_for(const std::string& key) {
    return stripes[std::hash<std::string>{}(key) & (kStripes - 1)];
  }

  static MontCache& instance() {
    static MontCache cache;
    return cache;
  }
};

}  // namespace

std::shared_ptr<const MontgomeryCtx> shared_montgomery_ctx(const BigInt& m) {
  // Checked before the lookup: the cache key is sign-blind, and a hit for
  // |m| must not mask the contract violation for a negative modulus.
  if (m.is_zero() || m.is_negative() || m.is_even()) {
    throw omadrm::Error(omadrm::ErrorKind::kCrypto,
                        "Montgomery modulus must be odd positive");
  }
  MontCache& cache = MontCache::instance();
  const std::string key = modulus_key(m);
  Stripe& stripe = cache.stripe_for(key);
  {
    MutexLock lock(stripe.mu);
    if (cache.enabled.load(std::memory_order_relaxed)) {
      auto it = stripe.index.find(key);
      if (it != stripe.index.end()) {
        ++stripe.stats.hits;
        stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second);
        return it->second->second;
      }
    }
    ++stripe.stats.misses;
  }

  // Build outside the lock: context construction is the expensive part and
  // must not serialize concurrent verifiers. A racing duplicate insert is
  // harmless (last one wins; both contexts are equivalent).
  auto ctx = std::make_shared<const MontgomeryCtx>(m);

  MutexLock lock(stripe.mu);
  if (!cache.enabled.load(std::memory_order_relaxed)) return ctx;
  auto it = stripe.index.find(key);
  if (it != stripe.index.end()) {
    stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second);
    return it->second->second;
  }
  stripe.lru.emplace_front(key, ctx);
  stripe.index[key] = stripe.lru.begin();
  if (stripe.lru.size() > kStripeCapacity) {
    stripe.index.erase(stripe.lru.back().first);
    stripe.lru.pop_back();
    ++stripe.stats.evictions;
  }
  return ctx;
}

void set_montgomery_cache_enabled(bool enabled) {
  MontCache& cache = MontCache::instance();
  cache.enabled.store(enabled, std::memory_order_relaxed);
  if (!enabled) clear_montgomery_cache();
}

bool montgomery_cache_enabled() {
  return MontCache::instance().enabled.load(std::memory_order_relaxed);
}

void clear_montgomery_cache() {
  MontCache& cache = MontCache::instance();
  for (Stripe& stripe : cache.stripes) {
    MutexLock lock(stripe.mu);
    stripe.lru.clear();
    stripe.index.clear();
  }
}

MontCacheStats montgomery_cache_stats() {
  MontCache& cache = MontCache::instance();
  MontCacheStats out;
  for (Stripe& stripe : cache.stripes) {
    MutexLock lock(stripe.mu);
    out.hits += stripe.stats.hits;
    out.misses += stripe.stats.misses;
    out.evictions += stripe.stats.evictions;
  }
  return out;
}

void reset_montgomery_cache_stats() {
  MontCache& cache = MontCache::instance();
  for (Stripe& stripe : cache.stripes) {
    MutexLock lock(stripe.mu);
    stripe.stats = MontCacheStats{};
  }
}

}  // namespace omadrm::bigint
