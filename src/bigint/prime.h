// Probabilistic primality testing and prime generation for RSA key
// generation (FIPS-186 style: trial division by small primes, then
// Miller–Rabin witnesses).
#pragma once

#include <cstddef>

#include "bigint/bigint.h"
#include "common/random.h"

namespace omadrm::bigint {

/// Miller–Rabin with `rounds` random witnesses (plus base-2 always).
/// Error probability <= 4^-rounds for composite n.
bool is_probable_prime(const BigInt& n, Rng& rng, std::size_t rounds = 20);

/// Generates a random prime with exactly `bits` bits (top two bits set so
/// that products of two such primes have exactly 2*bits bits, as RSA-1024
/// key generation requires).
BigInt generate_prime(std::size_t bits, Rng& rng);

}  // namespace omadrm::bigint
