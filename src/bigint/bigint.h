// Arbitrary-precision integers for the RSA substrate.
//
// Sign-magnitude representation over 32-bit limbs (little-endian limb
// order). The class is value-semantic and keeps the invariant that the
// magnitude has no leading zero limbs; zero is the empty limb vector with
// non-negative sign.
//
// Feature set is exactly what PKCS#1 v2.1 needs: comparison, ring
// arithmetic, Knuth Algorithm-D division, shifts and bit access, gcd /
// extended gcd / modular inverse, and modular exponentiation (Montgomery
// ladder for odd moduli — see montgomery.h — with a generic
// square-and-multiply fallback).
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/random.h"

namespace omadrm::bigint {

using omadrm::Rng;

struct DivMod;
struct ExtGcd;

class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// From a machine integer.
  BigInt(std::uint64_t v);           // NOLINT(google-explicit-constructor)
  BigInt(int v);                     // NOLINT(google-explicit-constructor)

  /// Parses decimal ("12345", "-7") or hex with 0x prefix ("0xdeadbeef").
  explicit BigInt(std::string_view text);

  /// Big-endian byte import (always non-negative).
  static BigInt from_bytes_be(ByteView bytes);

  /// Big-endian byte export of the magnitude, left-padded with zeros to at
  /// least `min_len` bytes. Throws if the value needs more than `min_len`
  /// bytes and `exact` is true.
  Bytes to_bytes_be(std::size_t min_len = 0) const;

  /// Lowercase hex of the magnitude, no 0x prefix, "-" prefix if negative.
  std::string to_hex() const;

  /// Decimal rendering.
  std::string to_dec() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_negative() const { return negative_; }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1u); }
  bool is_even() const { return !is_odd(); }

  /// Number of significant bits of the magnitude (0 for zero).
  std::size_t bit_length() const;

  /// Value of magnitude bit `i` (false beyond bit_length).
  bool bit(std::size_t i) const;

  /// Low 64 bits of the magnitude.
  std::uint64_t to_u64() const;

  // -- comparison --------------------------------------------------------
  std::strong_ordering operator<=>(const BigInt& rhs) const;
  bool operator==(const BigInt& rhs) const;

  // -- arithmetic ---------------------------------------------------------
  BigInt operator+(const BigInt& rhs) const;
  BigInt operator-(const BigInt& rhs) const;
  BigInt operator*(const BigInt& rhs) const;
  BigInt operator/(const BigInt& rhs) const;   // truncated toward zero
  BigInt operator%(const BigInt& rhs) const;   // sign follows dividend
  BigInt operator-() const;

  BigInt& operator+=(const BigInt& rhs) { return *this = *this + rhs; }
  BigInt& operator-=(const BigInt& rhs) { return *this = *this - rhs; }
  BigInt& operator*=(const BigInt& rhs) { return *this = *this * rhs; }

  BigInt operator<<(std::size_t bits) const;
  BigInt operator>>(std::size_t bits) const;

  /// Quotient and remainder in one pass; remainder has the dividend's sign.
  DivMod divmod(const BigInt& divisor) const;

  /// Mathematical modulus: result always in [0, m).
  BigInt mod(const BigInt& m) const;

  // -- number theory -------------------------------------------------------
  static BigInt gcd(BigInt a, BigInt b);

  /// Extended gcd: returns g and coefficients with a*x + b*y == g.
  static ExtGcd ext_gcd(const BigInt& a, const BigInt& b);

  /// Modular inverse; throws omadrm::Error(kCrypto) if gcd(a, m) != 1.
  static BigInt mod_inverse(const BigInt& a, const BigInt& m);

  /// base^exp mod m. Uses Montgomery exponentiation when m is odd.
  static BigInt mod_exp(const BigInt& base, const BigInt& exp,
                        const BigInt& m);

  /// Uniform draw in [0, bound) using rejection sampling.
  static BigInt random_below(const BigInt& bound, Rng& rng);

  /// Random integer with exactly `bits` bits (top bit set).
  static BigInt random_bits(std::size_t bits, Rng& rng);

  // Internal access for Montgomery machinery.
  const std::vector<std::uint32_t>& limbs() const { return limbs_; }
  static BigInt from_limbs(std::vector<std::uint32_t> limbs);

 private:
  static int cmp_mag(const std::vector<std::uint32_t>& a,
                     const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> add_mag(
      const std::vector<std::uint32_t>& a,
      const std::vector<std::uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<std::uint32_t> sub_mag(
      const std::vector<std::uint32_t>& a,
      const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> mul_mag(
      const std::vector<std::uint32_t>& a,
      const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> mul_school(
      const std::vector<std::uint32_t>& a,
      const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> mul_karatsuba(
      const std::vector<std::uint32_t>& a,
      const std::vector<std::uint32_t>& b);
  static void trim(std::vector<std::uint32_t>& v);

  void normalize();

  std::vector<std::uint32_t> limbs_;
  bool negative_ = false;
};

/// Result of BigInt::divmod.
struct DivMod {
  BigInt quotient;
  BigInt remainder;
};

/// Result of BigInt::ext_gcd: g = gcd(a, b) with a*x + b*y == g.
struct ExtGcd {
  BigInt g;
  BigInt x;
  BigInt y;
};

}  // namespace omadrm::bigint
