// Montgomery modular arithmetic for odd moduli.
//
// The paper's hardware RSA numbers come from a Montgomery-multiplier design
// (McIvor et al., Asilomar 2003); the software path here uses the same
// mathematics: CIOS (coarsely integrated operand scanning) multiplication
// and a fixed 4-bit-window exponentiation. This is what makes real
// RSA-1024 operations cheap enough to run thousands of times in the test
// suite and benchmarks.
#pragma once

#include <cstdint>
#include <vector>

#include "bigint/bigint.h"

namespace omadrm::bigint {

class MontgomeryCtx {
 public:
  /// Prepares a context for the odd modulus `m` (throws kCrypto otherwise).
  explicit MontgomeryCtx(const BigInt& m);

  /// base^exp mod m. `base` must already be reduced mod m.
  BigInt mod_exp(const BigInt& base, const BigInt& exp) const;

  /// Montgomery product: a * b * R^-1 mod m, on reduced operands.
  BigInt mont_mul(const BigInt& a, const BigInt& b) const;

  /// Conversion into / out of Montgomery form.
  BigInt to_mont(const BigInt& a) const;
  BigInt from_mont(const BigInt& a) const;

  const BigInt& modulus() const { return m_; }

 private:
  using Limbs = std::vector<std::uint32_t>;

  // CIOS core on raw limb vectors, both inputs sized to n_ limbs.
  Limbs cios(const Limbs& a, const Limbs& b) const;

  BigInt m_;
  std::size_t n_;             // limb count of the modulus
  std::uint32_t m_prime_;     // -m^-1 mod 2^32
  BigInt r2_;                 // R^2 mod m, for to_mont
};

}  // namespace omadrm::bigint
