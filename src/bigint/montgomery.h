// Montgomery modular arithmetic for odd moduli.
//
// The paper's hardware RSA numbers come from a Montgomery-multiplier design
// (McIvor et al., Asilomar 2003); the software path here uses the same
// mathematics: CIOS (coarsely integrated operand scanning) multiplication
// and a fixed 4-bit-window exponentiation. This is what makes real
// RSA-1024 operations cheap enough to run thousands of times in the test
// suite and benchmarks.
//
// Internally the context computes on 64-bit words (128-bit products), a
// 4x multiply-count reduction over the BigInt library's 32-bit limbs, and
// every exponentiation runs on a fixed set of scratch buffers — after the
// initial conversion no Montgomery multiply touches the heap. The BigInt
// public surface is unchanged; pack/unpack at the call boundary is O(n).
//
// Contexts are expensive to build (R^2 mod m needs a full division) and
// cheap to reuse; see mont_cache.h for the process-wide keyed cache that
// amortizes construction across repeated operations on the same modulus.
#pragma once

#include <cstdint>
#include <vector>

#include "bigint/bigint.h"

namespace omadrm::bigint {

class MontgomeryCtx;

/// Precomputed fixed-window powers of one base under one modulus.
///
/// Exponentiating a *fixed* base repeatedly (e.g. a stored generator, or a
/// benchmark hammering one operand) rebuilds the same 2^w-entry window
/// table on every call; capturing it once in a PowerTable removes those
/// 2^w - 2 Montgomery multiplications per exponentiation. Built by
/// MontgomeryCtx::make_power_table and only valid with that context.
class PowerTable {
 public:
  PowerTable() = default;

  const BigInt& base() const { return base_; }
  const BigInt& modulus() const { return modulus_; }
  bool empty() const { return words_.empty(); }

 private:
  friend class MontgomeryCtx;

  BigInt base_;
  BigInt modulus_;
  // base^0 .. base^(2^w - 1) in Montgomery form, packed 64-bit words.
  std::vector<std::vector<std::uint64_t>> words_;
};

class MontgomeryCtx {
 public:
  /// Window width of the fixed-window exponentiation.
  static constexpr std::size_t kWindowBits = 4;

  /// Exponents at or below this bit length skip the window table and use
  /// plain left-to-right square-and-multiply: for the ubiquitous RSA
  /// public exponent 65537 (17 bits) that is 16 squarings + 1 multiply
  /// instead of 14 table multiplies + 20 squarings.
  static constexpr std::size_t kPlainExpBits = 24;

  /// Prepares a context for the odd modulus `m` (throws kCrypto otherwise).
  explicit MontgomeryCtx(const BigInt& m);

  /// base^exp mod m. `base` must already be reduced mod m.
  BigInt mod_exp(const BigInt& base, const BigInt& exp) const;

  /// Precomputes the window table for a fixed base (reduced mod m).
  PowerTable make_power_table(const BigInt& base) const;

  /// table.base()^exp mod m using the precomputed powers. Throws kCrypto
  /// if the table was built for a different modulus.
  BigInt mod_exp(const PowerTable& table, const BigInt& exp) const;

  /// Montgomery product: a * b * R^-1 mod m, on reduced operands.
  BigInt mont_mul(const BigInt& a, const BigInt& b) const;

  /// Conversion into / out of Montgomery form.
  BigInt to_mont(const BigInt& a) const;
  BigInt from_mont(const BigInt& a) const;

  const BigInt& modulus() const { return m_; }

  /// 1 in Montgomery form (R mod m) — the exponentiation identity.
  const BigInt& mont_one() const { return one_mont_; }

 private:
  using Words = std::vector<std::uint64_t>;

  // CIOS core: t <- a * b * R^-1 mod m. `t` is (re)sized to nw_ + 2 and
  // the reduced result occupies t[0..nw_-1] (upper words zero), so
  // buffers can be swapped into the next multiply without copying.
  // Operands must expose at least nw_ words with any words beyond the
  // value zero; the scratch buffers and packed tables guarantee this.
  void cios_into(Words& t, const Words& a, const Words& b) const;

  // 64-bit word packing of a (non-negative, reduced) BigInt.
  Words pack(const BigInt& v) const;
  BigInt unpack(const Words& w) const;

  // Shared fixed-window scan over a packed powers table.
  BigInt mod_exp_windowed(const std::vector<Words>& table,
                          const BigInt& exp) const;

  BigInt m_;
  std::size_t n_;             // 32-bit limb count of the modulus
  std::size_t nw_;            // 64-bit word count of the modulus
  Words mw_;                  // modulus, packed
  std::uint64_t m_prime64_;   // -m^-1 mod 2^64
  Words r2w_;                 // R^2 mod m, for to_mont
  Words onew_;                // R mod m (1 in Montgomery form)
  Words one_plain_;           // plain 1, the from-Montgomery multiplier
  BigInt one_mont_;           // R mod m as a BigInt, for mont_one()
};

}  // namespace omadrm::bigint
