#include "ri/rights_issuer.h"

#include "common/error.h"

namespace omadrm::ri {

using omadrm::Error;
using omadrm::ErrorKind;
using roap::Status;

RightsIssuer::RightsIssuer(std::string ri_id, std::string url,
                           pki::CertificationAuthority& ca,
                           const pki::Validity& validity,
                           provider::CryptoProvider& crypto, Rng& rng,
                           pki::SubordinateAuthority* issuing_ca,
                           std::size_t key_bits)
    : ri_id_(std::move(ri_id)),
      url_(std::move(url)),
      ca_(ca),
      crypto_(crypto),
      rng_(rng),
      key_(rsa::generate_key(key_bits, rng)),
      device_chain_verifier_(ca.root_certificate(),
                             pki::ChainVerifier::metered_verify(crypto)) {
  if (issuing_ca != nullptr) {
    cert_ = issuing_ca->issue(ri_id_, key_.public_key(), validity, rng_);
    intermediates_.push_back(issuing_ca->certificate());
  } else {
    cert_ = ca_.issue(ri_id_, key_.public_key(), validity, rng_);
  }
}

void RightsIssuer::add_offer(LicenseOffer offer) {
  if (offer.ro_id.empty() || offer.content_id.empty()) {
    throw Error(ErrorKind::kProtocol, "ri: offer needs ro_id + content_id");
  }
  if (offer.kcek.size() != 16) {
    throw Error(ErrorKind::kCrypto, "ri: K_CEK must be 16 bytes");
  }
  if (offer.domain_ro && offer.domain_id.empty()) {
    throw Error(ErrorKind::kProtocol, "ri: domain offer needs domain_id");
  }
  if (!offers_.emplace(offer.ro_id, std::move(offer)).second) {
    throw Error(ErrorKind::kProtocol, "ri: duplicate ro_id");
  }
}

bool RightsIssuer::has_offer(const std::string& ro_id) const {
  return offers_.count(ro_id) > 0;
}

void RightsIssuer::create_domain(const std::string& domain_id,
                                 std::size_t max_members) {
  if (domains_.count(domain_id)) return;
  Domain d;
  d.domain_id = domain_id;
  d.key = rng_.bytes(16);
  d.generation = 1;
  d.max_members = max_members;
  domains_.emplace(domain_id, std::move(d));
}

const Domain* RightsIssuer::domain(const std::string& domain_id) const {
  auto it = domains_.find(domain_id);
  return it == domains_.end() ? nullptr : &it->second;
}

void RightsIssuer::upgrade_domain(const std::string& domain_id) {
  auto it = domains_.find(domain_id);
  if (it == domains_.end()) {
    throw Error(ErrorKind::kNotFound, "ri: no such domain: " + domain_id);
  }
  Domain& d = it->second;
  d.key = rng_.bytes(16);
  ++d.generation;
  // Every member must re-join to pick up the new generation's key.
  d.members.clear();
}

roap::RoAcquisitionTrigger RightsIssuer::make_trigger(
    const std::string& ro_id) const {
  auto it = offers_.find(ro_id);
  if (it == offers_.end()) {
    throw Error(ErrorKind::kNotFound, "ri: no such offer: " + ro_id);
  }
  roap::RoAcquisitionTrigger t;
  t.ri_id = ri_id_;
  t.ri_url = url_;
  t.ro_id = ro_id;
  t.content_id = it->second.content_id;
  t.domain_id = it->second.domain_ro ? it->second.domain_id : "";
  return t;
}

bool RightsIssuer::is_registered(const std::string& device_id) const {
  return devices_.count(device_id) > 0;
}

void RightsIssuer::expire_sessions(std::uint64_t now) {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now >= it->second.created_at &&
        now - it->second.created_at > kPendingSessionTtl) {
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

roap::RiHello RightsIssuer::on_device_hello(const roap::DeviceHello& hello,
                                            std::uint64_t now) {
  // Garbage-collect abandoned handshakes, then supersede any pending
  // session of this same device: only its newest hello stays live.
  // DeviceHello is unauthenticated (nothing in pass 1 is signed, per the
  // protocol), so a peer spoofing another device's id can abort that
  // device's in-flight handshake — the deliberate tradeoff for bounding
  // per-device pending state to one entry; the aborted device just
  // restarts from DeviceHello. Real authentication lands in pass 3.
  expire_sessions(now);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second.device_id == hello.device_id) {
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }

  roap::RiHello out;
  out.ri_id = ri_id_;
  out.session_id = ri_id_ + "-session-" + std::to_string(next_session_++);
  // Capability negotiation: the standard's mandatory suite always wins
  // unless the device advertises nothing (paper §2.4.1).
  out.algorithms = {"SHA-1", "HMAC-SHA1", "AES-128-CBC", "AES-WRAP",
                    "RSA-1024", "RSA-PSS", "KDF2"};
  out.ri_nonce = rng_.bytes(roap::kNonceLen);
  sessions_[out.session_id] =
      PendingSession{out.ri_nonce, hello.device_id, now};
  return out;
}

roap::RegistrationResponse RightsIssuer::on_registration_request(
    const roap::RegistrationRequest& request, std::uint64_t now) {
  roap::RegistrationResponse out;
  out.session_id = request.session_id;
  out.ri_id = ri_id_;
  out.ri_url = url_;

  expire_sessions(now);
  auto session = sessions_.find(request.session_id);
  if (session == sessions_.end() ||
      !ct_equal(session->second.ri_nonce, request.ri_nonce)) {
    out.status = Status::kAbort;
    return out;
  }
  // The handshake is consumed one-shot: whatever the outcome below, a
  // retry must restart from DeviceHello with fresh nonces.
  sessions_.erase(session);

  // Verify the device certificate chain and the message signature.
  pki::Certificate device_cert;
  try {
    device_cert = pki::Certificate::from_der(request.certificate_der);
  } catch (const Error&) {
    out.status = Status::kAbort;
    return out;
  }
  // Chain walk through the verdict cache: a device re-registering (or
  // retrying under load) costs zero RSA operations here.
  if (device_chain_verifier_.verify({device_cert}, now)->status !=
      pki::CertStatus::kValid) {
    out.status = Status::kAbort;
    return out;
  }
  if (ca_.is_revoked(device_cert.serial())) {
    device_chain_verifier_.invalidate_serial(device_cert.serial());
    out.status = Status::kAbort;
    return out;
  }
  if (!crypto_.pss_verify(device_cert.subject_key(), request.payload(),
                          request.signature)) {
    out.status = Status::kSignatureInvalid;
    return out;
  }

  // A revoked issuing intermediate must stop the service: the single
  // OCSP staple below covers only the RI leaf, so the devices cannot see
  // intermediate revocation themselves (multi-staple support is a
  // protocol extension this profile does not carry yet).
  for (const pki::Certificate& intermediate : intermediates_) {
    if (ca_.is_revoked(intermediate.serial())) {
      out.status = Status::kAbort;
      return out;
    }
  }

  devices_[request.device_id] = device_cert;

  // Staple a fresh OCSP response for our own certificate, bound to the
  // nonce the device supplied.
  pki::OcspRequest ocsp_req{cert_.serial(), request.ocsp_nonce};
  pki::OcspResponse ocsp = ca_.ocsp_respond(ocsp_req, now, rng_);

  out.status = Status::kSuccess;
  out.ri_certificate_der = cert_.to_der();
  for (const pki::Certificate& intermediate : intermediates_) {
    out.ri_certificate_chain_der.push_back(intermediate.to_der());
  }
  out.ocsp_response_der = ocsp.to_der();
  out.signature = crypto_.pss_sign(key_, out.payload(), rng_);
  return out;
}

roap::ProtectedRo RightsIssuer::build_protected_ro(
    const LicenseOffer& offer, const rsa::PublicKey& device_key) {
  roap::ProtectedRo ro;
  ro.rights.ro_id = offer.ro_id;
  ro.rights.content_id = offer.content_id;
  ro.rights.dcf_hash = offer.dcf_hash;
  ro.rights.permissions = offer.permissions;
  ro.ri_id = ri_id_;

  // Fresh rights keys per issued RO (Figure 3).
  Bytes kmac = rng_.bytes(16);
  Bytes krek = rng_.bytes(16);
  Bytes kmac_krek = concat({kmac, krek});

  // Two-layer chain: K_CEK under K_REK, K_MAC||K_REK under the transport.
  ro.enc_kcek = crypto_.aes_wrap(krek, offer.kcek);

  if (offer.domain_ro) {
    const Domain& d = domains_.at(offer.domain_id);
    ro.is_domain_ro = true;
    ro.domain_id = offer.domain_id;
    ro.domain_generation = d.generation;
    ro.wrapped_keys = crypto_.aes_wrap(d.key, kmac_krek);
  } else {
    rsa::KemEncapsulation enc = crypto_.kem_encapsulate(device_key, rng_);
    Bytes c2 = crypto_.aes_wrap(enc.kek, kmac_krek);
    ro.wrapped_keys = concat({enc.c1, c2});
  }

  ro.mac = crypto_.hmac_sha1(kmac, ro.mac_payload());

  // RI signature: mandatory for Domain ROs, optional for Device ROs.
  if (offer.domain_ro || sign_device_ros_) {
    ro.signature = crypto_.pss_sign(key_, ro.signed_payload(), rng_);
  }
  return ro;
}

roap::RoResponse RightsIssuer::on_ro_request(
    const roap::RoRequest& request, std::uint64_t now) {
  (void)now;
  roap::RoResponse out;
  out.device_id = request.device_id;
  out.ri_id = ri_id_;
  out.device_nonce = request.device_nonce;

  auto device = devices_.find(request.device_id);
  if (device == devices_.end()) {
    out.status = Status::kNotRegistered;
    return out;
  }
  if (!crypto_.pss_verify(device->second.subject_key(), request.payload(),
                          request.signature)) {
    out.status = Status::kSignatureInvalid;
    return out;
  }
  auto offer = offers_.find(request.ro_id);
  if (offer == offers_.end()) {
    out.status = Status::kUnknownRoId;
    return out;
  }
  if (offer->second.domain_ro) {
    // Domain ROs are only handed to current members of the domain.
    const Domain* d = domain(offer->second.domain_id);
    bool member = false;
    if (d) {
      for (const auto& m : d->members) member |= (m == request.device_id);
    }
    if (!member) {
      out.status = Status::kAccessDenied;
      return out;
    }
  }

  out.status = Status::kSuccess;
  out.ros.push_back(
      build_protected_ro(offer->second, device->second.subject_key()));
  out.signature = crypto_.pss_sign(key_, out.payload(), rng_);
  return out;
}

roap::JoinDomainResponse RightsIssuer::on_join_domain(
    const roap::JoinDomainRequest& request, std::uint64_t now) {
  (void)now;
  roap::JoinDomainResponse out;
  out.domain_id = request.domain_id;
  out.device_nonce = request.device_nonce;

  auto device = devices_.find(request.device_id);
  if (device == devices_.end()) {
    out.status = Status::kNotRegistered;
    return out;
  }
  if (!crypto_.pss_verify(device->second.subject_key(), request.payload(),
                          request.signature)) {
    out.status = Status::kSignatureInvalid;
    return out;
  }
  auto it = domains_.find(request.domain_id);
  if (it == domains_.end()) {
    out.status = Status::kAccessDenied;
    return out;
  }
  Domain& d = it->second;
  bool already_member = false;
  for (const auto& m : d.members) already_member |= (m == request.device_id);
  if (!already_member) {
    if (d.members.size() >= d.max_members) {
      out.status = Status::kAccessDenied;
      return out;
    }
    d.members.push_back(request.device_id);
  }

  out.status = Status::kSuccess;
  out.generation = d.generation;
  // Transport K_D to the device with the same RSA-KEM chain as RO keys.
  rsa::KemEncapsulation enc =
      crypto_.kem_encapsulate(device->second.subject_key(), rng_);
  Bytes c2 = crypto_.aes_wrap(enc.kek, d.key);
  out.wrapped_domain_key = concat({enc.c1, c2});
  out.signature = crypto_.pss_sign(key_, out.payload(), rng_);
  return out;
}

roap::LeaveDomainResponse RightsIssuer::on_leave_domain(
    const roap::LeaveDomainRequest& request, std::uint64_t now) {
  (void)now;
  roap::LeaveDomainResponse out;
  out.domain_id = request.domain_id;
  out.device_nonce = request.device_nonce;

  auto device = devices_.find(request.device_id);
  if (device == devices_.end()) {
    out.status = Status::kNotRegistered;
    return out;
  }
  if (!crypto_.pss_verify(device->second.subject_key(), request.payload(),
                          request.signature)) {
    out.status = Status::kSignatureInvalid;
    return out;
  }
  auto it = domains_.find(request.domain_id);
  if (it == domains_.end()) {
    out.status = Status::kAccessDenied;
    return out;
  }
  auto& members = it->second.members;
  std::erase(members, request.device_id);

  out.status = Status::kSuccess;
  out.signature = crypto_.pss_sign(key_, out.payload(), rng_);
  return out;
}

roap::Envelope RightsIssuer::handle(const roap::Envelope& request,
                                    std::uint64_t now) {
  using roap::Envelope;
  using roap::MessageType;
  switch (request.type()) {
    case MessageType::kDeviceHello:
      return Envelope::wrap(
          on_device_hello(request.open<roap::DeviceHello>(), now));
    case MessageType::kRegistrationRequest:
      return Envelope::wrap(on_registration_request(
          request.open<roap::RegistrationRequest>(), now));
    case MessageType::kRoRequest:
      return Envelope::wrap(
          on_ro_request(request.open<roap::RoRequest>(), now));
    case MessageType::kJoinDomainRequest:
      return Envelope::wrap(
          on_join_domain(request.open<roap::JoinDomainRequest>(), now));
    case MessageType::kLeaveDomainRequest:
      return Envelope::wrap(
          on_leave_domain(request.open<roap::LeaveDomainRequest>(), now));
    default:
      throw Error(ErrorKind::kProtocol,
                  std::string("ri: ") + roap::to_string(request.type()) +
                      " is not a request message");
  }
}

std::string RightsIssuer::handle_wire(const std::string& request_xml,
                                      std::uint64_t now) {
  return handle(roap::Envelope::from_wire(request_xml), now).wire();
}

}  // namespace omadrm::ri
