#include "ri/rights_issuer.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "crypto/sha1.h"

namespace omadrm::ri {

using omadrm::Error;
using omadrm::ErrorKind;
using roap::Status;

namespace {

// Store record keys: "sess/<session-id>" pending registration nonces,
// "dev/<device-id>" registered device certificates (raw DER), and
// "domain/<id>" domain key + membership; "meta" the session-id counter.
std::string sess_record_key(const std::string& id) { return "sess/" + id; }
std::string dev_record_key(const std::string& id) { return "dev/" + id; }
std::string domain_record_key(const std::string& id) {
  return "domain/" + id;
}
constexpr const char* kMetaKey = "meta";

void put_lv(Bytes& out, ByteView v) {
  append_be32(out, static_cast<std::uint32_t>(v.size()));
  out.insert(out.end(), v.begin(), v.end());
}

/// Throwing wrapper over the shared bounds-checked ByteReader: any short
/// read is a malformed image (kFormat, surfaced as kStoreCorrupt).
struct Reader {
  ByteReader r;

  explicit Reader(ByteView data) : r{data} {}
  std::size_t pos() const { return r.pos; }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    if (!r.take_u32(v)) throw Error(ErrorKind::kFormat, "ri state: short");
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    if (!r.take_u64(v)) throw Error(ErrorKind::kFormat, "ri state: short");
    return v;
  }
  ByteView lv() {
    const std::uint32_t n = u32();
    ByteView v;
    if (!r.take_bytes(n, v)) {
      throw Error(ErrorKind::kFormat, "ri state: short");
    }
    return v;
  }
};

}  // namespace

RightsIssuer::RightsIssuer(std::string ri_id, std::string url,
                           pki::CertificationAuthority& ca,
                           const pki::Validity& validity,
                           provider::CryptoProvider& crypto, Rng& rng,
                           pki::SubordinateAuthority* issuing_ca,
                           std::size_t key_bits)
    : ri_id_(std::move(ri_id)),
      url_(std::move(url)),
      ca_(ca),
      crypto_(crypto),
      rng_(rng),
      key_(rsa::generate_key(key_bits, rng)),
      device_chain_verifier_(ca.root_certificate(),
                             pki::ChainVerifier::metered_verify(crypto)) {
  if (issuing_ca != nullptr) {
    cert_ = issuing_ca->issue(ri_id_, key_.public_key(), validity, rng_);
    intermediates_.push_back(issuing_ca->certificate());
  } else {
    cert_ = ca_.issue(ri_id_, key_.public_key(), validity, rng_);
  }
}

// ---------------------------------------------------------------------------
// Durable replay/registration state
// ---------------------------------------------------------------------------

namespace {

Bytes encode_pending(const Bytes& ri_nonce, const std::string& device_id,
                     std::uint64_t created_at) {
  Bytes out;
  append_be64(out, created_at);
  put_lv(out, ri_nonce);
  out.insert(out.end(), device_id.begin(), device_id.end());
  return out;
}

Bytes encode_domain(const Domain& d) {
  Bytes out;
  put_lv(out, d.key);
  append_be32(out, d.generation);
  append_be32(out, static_cast<std::uint32_t>(d.max_members));
  append_be32(out, static_cast<std::uint32_t>(d.members.size()));
  for (const std::string& m : d.members) {
    put_lv(out, to_bytes(m));
  }
  return out;
}

Bytes encode_meta(std::uint64_t next_session) {
  Bytes out;
  append_be64(out, next_session);
  return out;
}

}  // namespace

void RightsIssuer::persist(const store::Transaction& tx) {
  if (store_ == nullptr || tx.empty()) return;
  Result<> committed = store_->commit(tx);
  if (!committed.ok()) {
    throw Error(ErrorKind::kState,
                "ri: store refused commit: " + committed.describe());
  }
}

Result<> RightsIssuer::bind_store(store::StateStore& s) {
  Result<std::vector<store::Record>> loaded = s.load();
  if (!loaded.ok()) return Result<>(loaded.code(), loaded.context());

  bool has_meta = false;
  for (const store::Record& rec : *loaded) has_meta |= (rec.key == kMetaKey);

  if (has_meta) {
    // Restart path: the store image replaces this instance's replay
    // state. In-flight handshakes stay completable; consumed sessions
    // stay consumed.
    std::map<std::string, PendingSession> sessions;
    std::map<std::string, pki::Certificate> devices;
    std::map<std::string, Domain> domains;
    std::uint64_t next_session = 1;
    try {
      for (const store::Record& rec : *loaded) {
        const std::string_view key = rec.key;
        if (key == kMetaKey) {
          Reader r(ByteView(rec.value));
          next_session = r.u64();
        } else if (key.starts_with("sess/")) {
          Reader r(ByteView(rec.value));
          PendingSession p;
          p.created_at = r.u64();
          ByteView nonce = r.lv();
          p.ri_nonce = Bytes(nonce.begin(), nonce.end());
          ByteView rest = ByteView(rec.value).subspan(r.pos());
          p.device_id = std::string(rest.begin(), rest.end());
          sessions[std::string(key.substr(5))] = std::move(p);
        } else if (key.starts_with("dev/")) {
          devices[std::string(key.substr(4))] =
              pki::Certificate::from_der(rec.value);
        } else if (key.starts_with("domain/")) {
          Reader r(ByteView(rec.value));
          Domain d;
          d.domain_id = std::string(key.substr(7));
          ByteView dk = r.lv();
          d.key = Bytes(dk.begin(), dk.end());
          d.generation = r.u32();
          d.max_members = r.u32();
          const std::uint32_t count = r.u32();
          for (std::uint32_t i = 0; i < count; ++i) {
            ByteView m = r.lv();
            d.members.push_back(std::string(m.begin(), m.end()));
          }
          domains[d.domain_id] = std::move(d);
        } else {
          throw Error(ErrorKind::kFormat,
                      "ri state: unknown record key '" + rec.key + "'");
        }
      }
    } catch (const Error& e) {
      return Result<>(StatusCode::kStoreCorrupt,
                      std::string("ri: store image malformed: ") + e.what());
    }
    sessions_ = std::move(sessions);
    devices_ = std::move(devices);
    domains_ = std::move(domains);
    next_session_ = next_session;
    store_ = &s;
    return Result<>();
  }

  if (!loaded->empty()) {
    // Records but no meta: another entity's store (or a mangled image);
    // seeding would tx.clear() state that is not ours — fail closed.
    return Result<>(StatusCode::kStoreCorrupt,
                    "ri: store holds foreign records, refusing to seed");
  }
  // Empty store: seed it with the current state.
  store::Transaction tx;
  tx.clear();
  tx.put(kMetaKey, encode_meta(next_session_));
  for (const auto& [id, p] : sessions_) {
    tx.put(sess_record_key(id),
           encode_pending(p.ri_nonce, p.device_id, p.created_at));
  }
  for (const auto& [id, cert] : devices_) {
    tx.put(dev_record_key(id), cert.to_der());
  }
  for (const auto& [id, d] : domains_) {
    tx.put(domain_record_key(id), encode_domain(d));
  }
  Result<> committed = s.commit(tx);
  if (!committed.ok()) return committed;
  store_ = &s;
  return Result<>();
}

void RightsIssuer::add_offer(LicenseOffer offer) {
  if (offer.ro_id.empty() || offer.content_id.empty()) {
    throw Error(ErrorKind::kProtocol, "ri: offer needs ro_id + content_id");
  }
  if (offer.kcek.size() != 16) {
    throw Error(ErrorKind::kCrypto, "ri: K_CEK must be 16 bytes");
  }
  if (offer.domain_ro && offer.domain_id.empty()) {
    throw Error(ErrorKind::kProtocol, "ri: domain offer needs domain_id");
  }
  if (!offers_.emplace(offer.ro_id, std::move(offer)).second) {
    throw Error(ErrorKind::kProtocol, "ri: duplicate ro_id");
  }
}

bool RightsIssuer::has_offer(const std::string& ro_id) const {
  return offers_.count(ro_id) > 0;
}

void RightsIssuer::create_domain(const std::string& domain_id,
                                 std::size_t max_members) {
  if (domains_.count(domain_id)) return;
  Domain d;
  d.domain_id = domain_id;
  d.key = rng_.bytes(16);
  d.generation = 1;
  d.max_members = max_members;
  store::Transaction tx;
  tx.put(domain_record_key(domain_id), encode_domain(d));
  persist(tx);
  domains_.emplace(domain_id, std::move(d));
}

const Domain* RightsIssuer::domain(const std::string& domain_id) const {
  auto it = domains_.find(domain_id);
  return it == domains_.end() ? nullptr : &it->second;
}

void RightsIssuer::upgrade_domain(const std::string& domain_id) {
  auto it = domains_.find(domain_id);
  if (it == domains_.end()) {
    throw Error(ErrorKind::kNotFound, "ri: no such domain: " + domain_id);
  }
  // Persist the re-keyed domain before the live state changes
  // (create_domain's order): a refused commit must not leave RAM at
  // generation N+1 while the store — and therefore the next restart —
  // resurrects the old (possibly compromised) key and membership.
  Domain upgraded = it->second;
  upgraded.key = rng_.bytes(16);
  ++upgraded.generation;
  // Every member must re-join to pick up the new generation's key.
  upgraded.members.clear();
  store::Transaction tx;
  tx.put(domain_record_key(upgraded.domain_id), encode_domain(upgraded));
  persist(tx);
  it->second = std::move(upgraded);
}

roap::RoAcquisitionTrigger RightsIssuer::make_trigger(
    const std::string& ro_id) const {
  auto it = offers_.find(ro_id);
  if (it == offers_.end()) {
    throw Error(ErrorKind::kNotFound, "ri: no such offer: " + ro_id);
  }
  roap::RoAcquisitionTrigger t;
  t.ri_id = ri_id_;
  t.ri_url = url_;
  t.ro_id = ro_id;
  t.content_id = it->second.content_id;
  t.domain_id = it->second.domain_ro ? it->second.domain_id : "";
  return t;
}

bool RightsIssuer::is_registered(const std::string& device_id) const {
  return devices_.count(device_id) > 0;
}

std::vector<std::string> RightsIssuer::stale_sessions(
    std::uint64_t now, const std::string* superseded_device) const {
  std::vector<std::string> out;
  for (const auto& [id, p] : sessions_) {
    const bool expired =
        now >= p.created_at && now - p.created_at > kPendingSessionTtl;
    const bool superseded =
        superseded_device != nullptr && p.device_id == *superseded_device;
    if (expired || superseded) out.push_back(id);
  }
  return out;
}

std::size_t RightsIssuer::expire_pending_sessions(std::uint64_t now) {
  const std::vector<std::string> doomed = stale_sessions(now, nullptr);
  store::Transaction tx;
  for (const std::string& id : doomed) tx.erase(sess_record_key(id));
  persist(tx);
  for (const std::string& id : doomed) sessions_.erase(id);
  return doomed.size();
}

roap::RiHello RightsIssuer::on_device_hello(const roap::DeviceHello& hello,
                                            std::uint64_t now) {
  // Garbage-collect abandoned handshakes, then supersede any pending
  // session of this same device: only its newest hello stays live.
  // DeviceHello is unauthenticated (nothing in pass 1 is signed, per the
  // protocol), so a peer spoofing another device's id can abort that
  // device's in-flight handshake — the deliberate tradeoff for bounding
  // per-device pending state to one entry; the aborted device just
  // restarts from DeviceHello. Real authentication lands in pass 3.
  const std::vector<std::string> doomed =
      stale_sessions(now, &hello.device_id);

  roap::RiHello out;
  out.ri_id = ri_id_;
  const std::uint64_t session_number = next_session_;
  out.session_id = ri_id_ + "-session-" + std::to_string(session_number);
  // Capability negotiation: the standard's mandatory suite always wins
  // unless the device advertises nothing (paper §2.4.1).
  out.algorithms = {"SHA-1", "HMAC-SHA1", "AES-128-CBC", "AES-WRAP",
                    "RSA-1024", "RSA-PSS", "KDF2"};
  out.ri_nonce = rng_.bytes(roap::kNonceLen);

  // The pending nonce (and the counter that names sessions) must survive
  // an RI restart, or every in-flight handshake dies with the process.
  // Persist BEFORE touching RAM: a refused commit (degraded mode) must
  // leave no half-created session and no superseded-but-alive entries.
  store::Transaction tx;
  for (const std::string& id : doomed) tx.erase(sess_record_key(id));
  tx.put(sess_record_key(out.session_id),
         encode_pending(out.ri_nonce, hello.device_id, now));
  tx.put(kMetaKey, encode_meta(session_number + 1));
  persist(tx);

  for (const std::string& id : doomed) sessions_.erase(id);
  sessions_[out.session_id] =
      PendingSession{out.ri_nonce, hello.device_id, now};
  next_session_ = session_number + 1;
  return out;
}

roap::RegistrationResponse RightsIssuer::on_registration_request(
    const roap::RegistrationRequest& request, std::uint64_t now) {
  roap::RegistrationResponse out;
  out.session_id = request.session_id;
  out.ri_id = ri_id_;
  out.ri_url = url_;

  // TTL sweep staged up front; its RAM erases apply only after the
  // commit below succeeds (compute → persist → apply, like every
  // handler — a refused commit must leave RAM and store agreeing).
  std::vector<std::string> doomed = stale_sessions(now, nullptr);
  const auto is_doomed = [&doomed](const std::string& id) {
    return std::find(doomed.begin(), doomed.end(), id) != doomed.end();
  };

  auto session = sessions_.find(request.session_id);
  if (session == sessions_.end() || is_doomed(session->first)) {
    // The pending session is gone — TTL garbage collection, supersession
    // by a newer hello, or an RI restart raced this retry. Not a refusal:
    // the device did nothing wrong and must simply restart from
    // DeviceHello with fresh nonces. kSessionExpired is that clean
    // restart signal (kAbort stays reserved for genuine refusals).
    store::Transaction tx;
    for (const std::string& id : doomed) tx.erase(sess_record_key(id));
    persist(tx);
    for (const std::string& id : doomed) sessions_.erase(id);
    out.status = Status::kSessionExpired;
    return out;
  }
  if (!ct_equal(session->second.ri_nonce, request.ri_nonce)) {
    // A live session but the wrong nonce: a forgery or a cross-wired
    // handshake. Refused without consuming the session — the honest
    // device's in-flight request can still land.
    out.status = Status::kAbort;
    return out;
  }
  // The handshake is consumed one-shot: whatever the outcome below, a
  // retry must restart from DeviceHello with fresh nonces. (A *byte
  // identical* retry is instead served by the replay cache upstream and
  // never reaches this point while the entry lives.)
  doomed.push_back(session->first);

  // Verify the device certificate chain and the message signature — all
  // pure computation against the request; no state changes yet.
  Status verdict = Status::kSuccess;
  pki::Certificate device_cert;
  try {
    device_cert = pki::Certificate::from_der(request.certificate_der);
  } catch (const Error&) {
    verdict = Status::kAbort;
  }
  if (verdict == Status::kSuccess) {
    // Chain walk through the verdict cache: a device re-registering (or
    // retrying under load) costs zero RSA operations here.
    if (device_chain_verifier_.verify({device_cert}, now)->status !=
        pki::CertStatus::kValid) {
      verdict = Status::kAbort;
    } else if (ca_.is_revoked(device_cert.serial())) {
      device_chain_verifier_.invalidate_serial(device_cert.serial());
      verdict = Status::kAbort;
    } else if (!crypto_.pss_verify(device_cert.subject_key(),
                                   request.payload(), request.signature)) {
      verdict = Status::kSignatureInvalid;
    }
  }
  // A revoked issuing intermediate must stop the service: the single
  // OCSP staple below covers only the RI leaf, so the devices cannot see
  // intermediate revocation themselves (multi-staple support is a
  // protocol extension this profile does not carry yet).
  if (verdict == Status::kSuccess) {
    for (const pki::Certificate& intermediate : intermediates_) {
      if (ca_.is_revoked(intermediate.serial())) {
        verdict = Status::kAbort;
        break;
      }
    }
  }

  // Session consumption (and device admission) is durable before the
  // response leaves: a replayed RegistrationRequest against a restarted
  // RI must still find its one-shot session consumed.
  store::Transaction tx;
  for (const std::string& id : doomed) tx.erase(sess_record_key(id));
  if (verdict == Status::kSuccess) {
    tx.put(dev_record_key(request.device_id), device_cert.to_der());
  }
  persist(tx);
  for (const std::string& id : doomed) sessions_.erase(id);
  if (verdict != Status::kSuccess) {
    out.status = verdict;
    return out;
  }
  devices_[request.device_id] = device_cert;
  ++counters_.registrations;

  // Staple a fresh OCSP response for our own certificate, bound to the
  // nonce the device supplied.
  pki::OcspRequest ocsp_req{cert_.serial(), request.ocsp_nonce};
  pki::OcspResponse ocsp = ca_.ocsp_respond(ocsp_req, now, rng_);

  out.status = Status::kSuccess;
  out.ri_certificate_der = cert_.to_der();
  for (const pki::Certificate& intermediate : intermediates_) {
    out.ri_certificate_chain_der.push_back(intermediate.to_der());
  }
  out.ocsp_response_der = ocsp.to_der();
  out.signature = crypto_.pss_sign(key_, out.payload(), rng_);
  return out;
}

roap::ProtectedRo RightsIssuer::build_protected_ro(
    const LicenseOffer& offer, const rsa::PublicKey& device_key) {
  roap::ProtectedRo ro;
  ro.rights.ro_id = offer.ro_id;
  ro.rights.content_id = offer.content_id;
  ro.rights.dcf_hash = offer.dcf_hash;
  ro.rights.permissions = offer.permissions;
  ro.ri_id = ri_id_;

  // Fresh rights keys per issued RO (Figure 3).
  Bytes kmac = rng_.bytes(16);
  Bytes krek = rng_.bytes(16);
  Bytes kmac_krek = concat({kmac, krek});

  // Two-layer chain: K_CEK under K_REK, K_MAC||K_REK under the transport.
  ro.enc_kcek = crypto_.aes_wrap(krek, offer.kcek);

  if (offer.domain_ro) {
    const Domain& d = domains_.at(offer.domain_id);
    ro.is_domain_ro = true;
    ro.domain_id = offer.domain_id;
    ro.domain_generation = d.generation;
    ro.wrapped_keys = crypto_.aes_wrap(d.key, kmac_krek);
  } else {
    rsa::KemEncapsulation enc = crypto_.kem_encapsulate(device_key, rng_);
    Bytes c2 = crypto_.aes_wrap(enc.kek, kmac_krek);
    ro.wrapped_keys = concat({enc.c1, c2});
  }

  ro.mac = crypto_.hmac_sha1(kmac, ro.mac_payload());

  // RI signature: mandatory for Domain ROs, optional for Device ROs.
  if (offer.domain_ro || sign_device_ros_) {
    ro.signature = crypto_.pss_sign(key_, ro.signed_payload(), rng_);
  }
  return ro;
}

roap::RoResponse RightsIssuer::on_ro_request(
    const roap::RoRequest& request, std::uint64_t now) {
  (void)now;
  roap::RoResponse out;
  out.device_id = request.device_id;
  out.ri_id = ri_id_;
  out.device_nonce = request.device_nonce;

  auto device = devices_.find(request.device_id);
  if (device == devices_.end()) {
    out.status = Status::kNotRegistered;
    return out;
  }
  if (!crypto_.pss_verify(device->second.subject_key(), request.payload(),
                          request.signature)) {
    out.status = Status::kSignatureInvalid;
    return out;
  }
  auto offer = offers_.find(request.ro_id);
  if (offer == offers_.end()) {
    out.status = Status::kUnknownRoId;
    return out;
  }
  if (offer->second.domain_ro) {
    // Domain ROs are only handed to current members of the domain.
    const Domain* d = domain(offer->second.domain_id);
    bool member = false;
    if (d) {
      for (const auto& m : d->members) member |= (m == request.device_id);
    }
    if (!member) {
      out.status = Status::kAccessDenied;
      return out;
    }
  }

  out.status = Status::kSuccess;
  out.ros.push_back(
      build_protected_ro(offer->second, device->second.subject_key()));
  out.signature = crypto_.pss_sign(key_, out.payload(), rng_);
  ++counters_.ros_issued;
  return out;
}

roap::JoinDomainResponse RightsIssuer::on_join_domain(
    const roap::JoinDomainRequest& request, std::uint64_t now) {
  (void)now;
  roap::JoinDomainResponse out;
  out.domain_id = request.domain_id;
  out.device_nonce = request.device_nonce;

  auto device = devices_.find(request.device_id);
  if (device == devices_.end()) {
    out.status = Status::kNotRegistered;
    return out;
  }
  if (!crypto_.pss_verify(device->second.subject_key(), request.payload(),
                          request.signature)) {
    out.status = Status::kSignatureInvalid;
    return out;
  }
  auto it = domains_.find(request.domain_id);
  if (it == domains_.end()) {
    out.status = Status::kAccessDenied;
    return out;
  }
  // Compute the post-join membership on a copy, persist it, and only then
  // let it replace the live domain: a refused commit (degraded mode) must
  // leave RAM still agreeing with the store.
  Domain joined = it->second;
  bool already_member = false;
  for (const auto& m : joined.members) {
    already_member |= (m == request.device_id);
  }
  if (!already_member) {
    if (joined.members.size() >= joined.max_members) {
      out.status = Status::kAccessDenied;
      return out;
    }
    joined.members.push_back(request.device_id);
  }
  // Persisted on EVERY successful join, not just first admission: if a
  // prior join's commit failed (the response never left), the retry hits
  // the already-member path — it must still make the membership durable
  // before K_D is handed out.
  store::Transaction tx;
  tx.put(domain_record_key(joined.domain_id), encode_domain(joined));
  persist(tx);
  it->second = std::move(joined);
  const Domain& d = it->second;
  ++counters_.domain_joins;

  out.status = Status::kSuccess;
  out.generation = d.generation;
  // Transport K_D to the device with the same RSA-KEM chain as RO keys.
  rsa::KemEncapsulation enc =
      crypto_.kem_encapsulate(device->second.subject_key(), rng_);
  Bytes c2 = crypto_.aes_wrap(enc.kek, d.key);
  out.wrapped_domain_key = concat({enc.c1, c2});
  out.signature = crypto_.pss_sign(key_, out.payload(), rng_);
  return out;
}

roap::LeaveDomainResponse RightsIssuer::on_leave_domain(
    const roap::LeaveDomainRequest& request, std::uint64_t now) {
  (void)now;
  roap::LeaveDomainResponse out;
  out.domain_id = request.domain_id;
  out.device_nonce = request.device_nonce;

  auto device = devices_.find(request.device_id);
  if (device == devices_.end()) {
    out.status = Status::kNotRegistered;
    return out;
  }
  if (!crypto_.pss_verify(device->second.subject_key(), request.payload(),
                          request.signature)) {
    out.status = Status::kSignatureInvalid;
    return out;
  }
  auto it = domains_.find(request.domain_id);
  if (it == domains_.end()) {
    out.status = Status::kAccessDenied;
    return out;
  }
  // Same copy → persist → apply discipline as on_join_domain.
  Domain left = it->second;
  std::erase(left.members, request.device_id);
  // Persisted on EVERY successful leave (mirroring on_join_domain): if a
  // prior leave's commit failed (the response never left), the retry
  // finds nothing to erase — it must still make the removal durable
  // before success is signed, or an RI restart resurrects the departed
  // member.
  store::Transaction tx;
  tx.put(domain_record_key(left.domain_id), encode_domain(left));
  persist(tx);
  it->second = std::move(left);
  ++counters_.domain_leaves;

  out.status = Status::kSuccess;
  out.signature = crypto_.pss_sign(key_, out.payload(), rng_);
  return out;
}

// ---------------------------------------------------------------------------
// Idempotent replay cache + degraded-mode dispatch
// ---------------------------------------------------------------------------

namespace {

/// Replay-cache keys: message-type prefix + requester identity + the
/// request's freshness token. The raw nonce bytes go straight into the
/// key (they never leave the process); the stored digest pins the entry
/// to the exact request bytes anyway, so even a colliding key can never
/// serve a wrong response — it just misses.
std::string replay_key(const char* prefix, const std::string& id,
                       const Bytes& nonce) {
  std::string key = prefix;
  key += id;
  key += '/';
  key.append(nonce.begin(), nonce.end());
  return key;
}

Bytes wire_digest(const std::string& wire) {
  return crypto::Sha1::hash(
      ByteView(reinterpret_cast<const std::uint8_t*>(wire.data()),
               wire.size()));
}

}  // namespace

void RightsIssuer::set_replay_cache_capacity(std::size_t n) {
  replay_capacity_ = n;
  while (replay_.size() > replay_capacity_) {
    replay_.erase(replay_lru_.back());
    replay_lru_.pop_back();
    ++replay_stats_.evictions;
  }
}

std::optional<roap::Envelope> RightsIssuer::replay_lookup(
    const std::string& key, const std::string& request_wire,
    std::uint64_t now) {
  if (!replay_enabled_) return std::nullopt;
  auto it = replay_.find(key);
  if (it == replay_.end()) {
    ++replay_stats_.misses;
    return std::nullopt;
  }
  ReplayEntry& entry = it->second;
  if (now >= entry.created_at && now - entry.created_at > replay_ttl_) {
    replay_lru_.erase(entry.lru_it);
    replay_.erase(it);
    ++replay_stats_.expirations;
    ++replay_stats_.misses;
    return std::nullopt;
  }
  if (entry.request_digest != wire_digest(request_wire)) {
    // Same key, different bytes — e.g. a nonce collision or a tampered
    // resend. Never serve the stale answer; process it fresh.
    ++replay_stats_.mismatches;
    ++replay_stats_.misses;
    return std::nullopt;
  }
  replay_lru_.splice(replay_lru_.begin(), replay_lru_, entry.lru_it);
  ++replay_stats_.hits;
  return roap::Envelope::from_wire(entry.response_wire);
}

void RightsIssuer::replay_insert(const std::string& key,
                                 const std::string& request_wire,
                                 std::string response_wire,
                                 std::uint64_t now) {
  if (!replay_enabled_ || replay_capacity_ == 0) return;
  auto it = replay_.find(key);
  if (it != replay_.end()) {
    // Key reuse with different bytes (the lookup above missed on digest):
    // the newer exchange supersedes the remembered one.
    it->second.request_digest = wire_digest(request_wire);
    it->second.response_wire = std::move(response_wire);
    it->second.created_at = now;
    replay_lru_.splice(replay_lru_.begin(), replay_lru_, it->second.lru_it);
    return;
  }
  while (replay_.size() >= replay_capacity_) {
    replay_.erase(replay_lru_.back());
    replay_lru_.pop_back();
    ++replay_stats_.evictions;
  }
  replay_lru_.push_front(key);
  ReplayEntry entry;
  entry.request_digest = wire_digest(request_wire);
  entry.response_wire = std::move(response_wire);
  entry.created_at = now;
  entry.lru_it = replay_lru_.begin();
  replay_.emplace(key, std::move(entry));
  ++replay_stats_.insertions;
}

template <typename Handler, typename Refusal>
roap::Envelope RightsIssuer::serve(const std::string& key,
                                   const roap::Envelope& request,
                                   std::uint64_t now, Handler&& handler,
                                   Refusal&& refusal) {
  if (std::optional<roap::Envelope> cached =
          replay_lookup(key, request.wire(), now)) {
    // Duplicate of a recently served request: the response goes back
    // byte-for-byte with zero RSA operations and zero state changes.
    return *std::move(cached);
  }
  roap::Envelope response;
  try {
    response = handler();
  } catch (const Error& e) {
    if (e.kind() != ErrorKind::kState) throw;
    // Degraded mode: the durable store refused the commit this request
    // needed. Every handler persists before touching RAM, so nothing
    // changed — answer with a typed retriable refusal instead of
    // unwinding through the transport. Deliberately not cached: a retry
    // after the store heals must be re-processed, not re-refused.
    ++counters_.degraded_refusals;
    return refusal();
  }
  replay_insert(key, request.wire(), response.wire(), now);
  return response;
}

roap::Envelope RightsIssuer::handle(const roap::Envelope& request,
                                    std::uint64_t now) {
  using roap::Envelope;
  using roap::MessageType;
  switch (request.type()) {
    case MessageType::kDeviceHello: {
      const auto msg = request.open<roap::DeviceHello>();
      return serve(
          replay_key("dh/", msg.device_id, msg.device_nonce), request, now,
          [&] { return Envelope::wrap(on_device_hello(msg, now)); },
          [&] {
            roap::RiHello out;
            out.status = Status::kStoreFailure;
            out.ri_id = ri_id_;
            return Envelope::wrap(out);
          });
    }
    case MessageType::kRegistrationRequest: {
      const auto msg = request.open<roap::RegistrationRequest>();
      return serve(
          replay_key("rr/", msg.session_id, msg.device_nonce), request, now,
          [&] { return Envelope::wrap(on_registration_request(msg, now)); },
          [&] {
            roap::RegistrationResponse out;
            out.status = Status::kStoreFailure;
            out.session_id = msg.session_id;
            out.ri_id = ri_id_;
            out.ri_url = url_;
            return Envelope::wrap(out);
          });
    }
    case MessageType::kRoRequest: {
      const auto msg = request.open<roap::RoRequest>();
      return serve(
          replay_key("ro/", msg.device_id, msg.device_nonce), request, now,
          [&] { return Envelope::wrap(on_ro_request(msg, now)); },
          [&] {
            // RO issuing persists nothing, but keep the refusal builder:
            // future stateful extensions (metered ROs) land here safely.
            roap::RoResponse out;
            out.status = Status::kStoreFailure;
            out.device_id = msg.device_id;
            out.ri_id = ri_id_;
            out.device_nonce = msg.device_nonce;
            return Envelope::wrap(out);
          });
    }
    case MessageType::kJoinDomainRequest: {
      const auto msg = request.open<roap::JoinDomainRequest>();
      return serve(
          replay_key("jd/", msg.device_id, msg.device_nonce), request, now,
          [&] { return Envelope::wrap(on_join_domain(msg, now)); },
          [&] {
            roap::JoinDomainResponse out;
            out.status = Status::kStoreFailure;
            out.domain_id = msg.domain_id;
            out.device_nonce = msg.device_nonce;
            return Envelope::wrap(out);
          });
    }
    case MessageType::kLeaveDomainRequest: {
      const auto msg = request.open<roap::LeaveDomainRequest>();
      return serve(
          replay_key("ld/", msg.device_id, msg.device_nonce), request, now,
          [&] { return Envelope::wrap(on_leave_domain(msg, now)); },
          [&] {
            roap::LeaveDomainResponse out;
            out.status = Status::kStoreFailure;
            out.domain_id = msg.domain_id;
            out.device_nonce = msg.device_nonce;
            return Envelope::wrap(out);
          });
    }
    default:
      throw Error(ErrorKind::kProtocol,
                  std::string("ri: ") + roap::to_string(request.type()) +
                      " is not a request message");
  }
}

std::string RightsIssuer::handle_wire(const std::string& request_xml,
                                      std::uint64_t now) {
  return handle(roap::Envelope::from_wire(request_xml), now).wire();
}

}  // namespace omadrm::ri
