#include "ri/rights_issuer.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "crypto/sha1.h"

namespace omadrm::ri {

using omadrm::Error;
using omadrm::ErrorKind;
using roap::Status;

namespace {

// Store record keys: "sess/<session-id>" pending registration nonces,
// "dev/<device-id>" registered device certificates (raw DER), and
// "domain/<id>" domain key + membership; "meta" the session-id lease.
std::string sess_record_key(const std::string& id) { return "sess/" + id; }
std::string dev_record_key(const std::string& id) { return "dev/" + id; }
std::string domain_record_key(const std::string& id) {
  return "domain/" + id;
}
constexpr const char* kMetaKey = "meta";

void put_lv(Bytes& out, ByteView v) {
  append_be32(out, static_cast<std::uint32_t>(v.size()));
  out.insert(out.end(), v.begin(), v.end());
}

/// Throwing wrapper over the shared bounds-checked ByteReader: any short
/// read is a malformed image (kFormat, surfaced as kStoreCorrupt).
struct Reader {
  ByteReader r;

  explicit Reader(ByteView data) : r{data} {}
  std::size_t pos() const { return r.pos; }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    if (!r.take_u32(v)) throw Error(ErrorKind::kFormat, "ri state: short");
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    if (!r.take_u64(v)) throw Error(ErrorKind::kFormat, "ri state: short");
    return v;
  }
  ByteView lv() {
    const std::uint32_t n = u32();
    ByteView v;
    if (!r.take_bytes(n, v)) {
      throw Error(ErrorKind::kFormat, "ri state: short");
    }
    return v;
  }
};

/// FNV-1a — deterministic across processes (shard assignment is not an
/// ABI, but determinism keeps multi-process debugging sane).
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::size_t RightsIssuer::shard_of(std::string_view device_id) {
  static_assert((kShardCount & (kShardCount - 1)) == 0);
  return fnv1a(device_id) & (kShardCount - 1);
}

RightsIssuer::DomainStripe& RightsIssuer::stripe_for(
    std::string_view domain_id) {
  static_assert((kDomainStripes & (kDomainStripes - 1)) == 0);
  return domain_stripes_[fnv1a(domain_id) & (kDomainStripes - 1)];
}

const RightsIssuer::DomainStripe& RightsIssuer::stripe_for(
    std::string_view domain_id) const {
  return const_cast<RightsIssuer*>(this)->stripe_for(domain_id);
}

RightsIssuer::RightsIssuer(std::string ri_id, std::string url,
                           pki::CertificationAuthority& ca,
                           const pki::Validity& validity,
                           provider::CryptoProvider& crypto, Rng& rng,
                           pki::SubordinateAuthority* issuing_ca,
                           std::size_t key_bits)
    : ri_id_(std::move(ri_id)),
      url_(std::move(url)),
      ca_(ca),
      crypto_(crypto),
      rng_(rng),
      key_(rsa::generate_key(key_bits, rng)),
      device_chain_verifier_(ca.root_certificate(),
                             pki::ChainVerifier::metered_verify(crypto)) {
  if (issuing_ca != nullptr) {
    cert_ = issuing_ca->issue(ri_id_, key_.public_key(), validity, rng_);
    intermediates_.push_back(issuing_ca->certificate());
  } else {
    cert_ = ca_.issue(ri_id_, key_.public_key(), validity, rng_);
  }
}

// ---------------------------------------------------------------------------
// Durable replay/registration state
// ---------------------------------------------------------------------------

namespace {

Bytes encode_pending(const Bytes& ri_nonce, const std::string& device_id,
                     std::uint64_t created_at) {
  Bytes out;
  append_be64(out, created_at);
  put_lv(out, ri_nonce);
  out.insert(out.end(), device_id.begin(), device_id.end());
  return out;
}

Bytes encode_domain(const Domain& d) {
  Bytes out;
  put_lv(out, d.key);
  append_be32(out, d.generation);
  append_be32(out, static_cast<std::uint32_t>(d.max_members));
  append_be32(out, static_cast<std::uint32_t>(d.members.size()));
  for (const std::string& m : d.members) {
    put_lv(out, to_bytes(m));
  }
  return out;
}

Bytes encode_meta(std::uint64_t session_lease) {
  Bytes out;
  append_be64(out, session_lease);
  return out;
}

}  // namespace

void RightsIssuer::persist(const store::Transaction& tx) {
  if (store_ == nullptr || tx.empty()) return;
  Result<> committed = store_->commit(tx);
  if (!committed.ok()) {
    throw Error(ErrorKind::kState,
                "ri: store refused commit: " + committed.describe());
  }
}

Result<> RightsIssuer::bind_store(store::StateStore& s) {
  Result<std::vector<store::Record>> loaded = s.load();
  if (!loaded.ok()) return Result<>(loaded.code(), loaded.context());

  bool has_meta = false;
  for (const store::Record& rec : *loaded) has_meta |= (rec.key == kMetaKey);

  if (has_meta) {
    // Restart path: the store image replaces this instance's replay
    // state. In-flight handshakes stay completable; consumed sessions
    // stay consumed. The decoded image is staged whole, then installed
    // into the shards/stripes — bind_store is config-time (no handler
    // traffic), so no shard locks are needed.
    std::map<std::string, PendingSession> sessions;
    std::map<std::string, pki::Certificate> devices;
    std::map<std::string, Domain> domains;
    std::uint64_t session_lease = 1;
    try {
      for (const store::Record& rec : *loaded) {
        const std::string_view key = rec.key;
        if (key == kMetaKey) {
          Reader r(ByteView(rec.value));
          session_lease = r.u64();
        } else if (key.starts_with("sess/")) {
          Reader r(ByteView(rec.value));
          PendingSession p;
          p.created_at = r.u64();
          ByteView nonce = r.lv();
          p.ri_nonce = Bytes(nonce.begin(), nonce.end());
          ByteView rest = ByteView(rec.value).subspan(r.pos());
          p.device_id = std::string(rest.begin(), rest.end());
          sessions[std::string(key.substr(5))] = std::move(p);
        } else if (key.starts_with("dev/")) {
          devices[std::string(key.substr(4))] =
              pki::Certificate::from_der(rec.value);
        } else if (key.starts_with("domain/")) {
          Reader r(ByteView(rec.value));
          Domain d;
          d.domain_id = std::string(key.substr(7));
          ByteView dk = r.lv();
          d.key = Bytes(dk.begin(), dk.end());
          d.generation = r.u32();
          d.max_members = r.u32();
          const std::uint32_t count = r.u32();
          for (std::uint32_t i = 0; i < count; ++i) {
            ByteView m = r.lv();
            d.members.push_back(std::string(m.begin(), m.end()));
          }
          domains[d.domain_id] = std::move(d);
        } else {
          throw Error(ErrorKind::kFormat,
                      "ri state: unknown record key '" + rec.key + "'");
        }
      }
    } catch (const Error& e) {
      return Result<>(StatusCode::kStoreCorrupt,
                      std::string("ri: store image malformed: ") + e.what());
    }
    for (Shard& sh : shards_) {
      sh.sessions.clear();
      sh.devices.clear();
      sh.oldest_session.store(kNoSessions, std::memory_order_relaxed);
    }
    for (DomainStripe& ds : domain_stripes_) ds.domains.clear();
    for (auto& [id, p] : sessions) {
      shard_for(p.device_id).sessions[id] = std::move(p);
    }
    for (auto& [id, cert] : devices) {
      shard_for(id).devices[id] = std::move(cert);
    }
    for (auto& [id, d] : domains) {
      stripe_for(id).domains[id] = std::move(d);
    }
    for (Shard& sh : shards_) refresh_oldest(sh);
    // The persisted lease bounds every id the previous process may have
    // handed out; resuming *at* the bound can never collide.
    next_session_.store(session_lease, std::memory_order_relaxed);
    {
      MutexLock lock(meta_mu_);
      session_lease_ = session_lease;
    }
    store_ = &s;
    return Result<>();
  }

  if (!loaded->empty()) {
    // Records but no meta: another entity's store (or a mangled image);
    // seeding would tx.clear() state that is not ours — fail closed.
    return Result<>(StatusCode::kStoreCorrupt,
                    "ri: store holds foreign records, refusing to seed");
  }
  // Empty store: seed it with the current state.
  store::Transaction tx;
  tx.clear();
  tx.put(kMetaKey, encode_meta(next_session_.load(std::memory_order_relaxed)));
  for (const Shard& sh : shards_) {
    for (const auto& [id, p] : sh.sessions) {
      tx.put(sess_record_key(id),
             encode_pending(p.ri_nonce, p.device_id, p.created_at));
    }
    for (const auto& [id, cert] : sh.devices) {
      tx.put(dev_record_key(id), cert.to_der());
    }
  }
  for (const DomainStripe& ds : domain_stripes_) {
    for (const auto& [id, d] : ds.domains) {
      tx.put(domain_record_key(id), encode_domain(d));
    }
  }
  Result<> committed = s.commit(tx);
  if (!committed.ok()) return committed;
  {
    MutexLock lock(meta_mu_);
    session_lease_ = next_session_.load(std::memory_order_relaxed);
  }
  store_ = &s;
  return Result<>();
}

void RightsIssuer::add_offer(LicenseOffer offer) {
  if (offer.ro_id.empty() || offer.content_id.empty()) {
    throw Error(ErrorKind::kProtocol, "ri: offer needs ro_id + content_id");
  }
  if (offer.kcek.size() != 16) {
    throw Error(ErrorKind::kCrypto, "ri: K_CEK must be 16 bytes");
  }
  if (offer.domain_ro && offer.domain_id.empty()) {
    throw Error(ErrorKind::kProtocol, "ri: domain offer needs domain_id");
  }
  if (!offers_.emplace(offer.ro_id, std::move(offer)).second) {
    throw Error(ErrorKind::kProtocol, "ri: duplicate ro_id");
  }
}

bool RightsIssuer::has_offer(const std::string& ro_id) const {
  return offers_.count(ro_id) > 0;
}

void RightsIssuer::create_domain(const std::string& domain_id,
                                 std::size_t max_members) {
  DomainStripe& ds = stripe_for(domain_id);
  MutexLock lock(ds.mu);
  if (ds.domains.count(domain_id)) return;
  Domain d;
  d.domain_id = domain_id;
  d.key = rng_.bytes(16);
  d.generation = 1;
  d.max_members = max_members;
  store::Transaction tx;
  tx.put(domain_record_key(domain_id), encode_domain(d));
  persist(tx);
  ds.domains.emplace(domain_id, std::move(d));
}

const Domain* RightsIssuer::domain(const std::string& domain_id) const {
  const DomainStripe& ds = stripe_for(domain_id);
  MutexLock lock(ds.mu);
  auto it = ds.domains.find(domain_id);
  return it == ds.domains.end() ? nullptr : &it->second;
}

std::optional<Domain> RightsIssuer::domain_snapshot(
    const std::string& domain_id) const {
  const DomainStripe& ds = stripe_for(domain_id);
  MutexLock lock(ds.mu);
  auto it = ds.domains.find(domain_id);
  if (it == ds.domains.end()) return std::nullopt;
  return it->second;
}

void RightsIssuer::upgrade_domain(const std::string& domain_id) {
  DomainStripe& ds = stripe_for(domain_id);
  MutexLock lock(ds.mu);
  auto it = ds.domains.find(domain_id);
  if (it == ds.domains.end()) {
    throw Error(ErrorKind::kNotFound, "ri: no such domain: " + domain_id);
  }
  // Persist the re-keyed domain before the live state changes
  // (create_domain's order): a refused commit must not leave RAM at
  // generation N+1 while the store — and therefore the next restart —
  // resurrects the old (possibly compromised) key and membership.
  Domain upgraded = it->second;
  upgraded.key = rng_.bytes(16);
  ++upgraded.generation;
  // Every member must re-join to pick up the new generation's key.
  upgraded.members.clear();
  store::Transaction tx;
  tx.put(domain_record_key(upgraded.domain_id), encode_domain(upgraded));
  persist(tx);
  it->second = std::move(upgraded);
}

roap::RoAcquisitionTrigger RightsIssuer::make_trigger(
    const std::string& ro_id) const {
  auto it = offers_.find(ro_id);
  if (it == offers_.end()) {
    throw Error(ErrorKind::kNotFound, "ri: no such offer: " + ro_id);
  }
  roap::RoAcquisitionTrigger t;
  t.ri_id = ri_id_;
  t.ri_url = url_;
  t.ro_id = ro_id;
  t.content_id = it->second.content_id;
  t.domain_id = it->second.domain_ro ? it->second.domain_id : "";
  return t;
}

bool RightsIssuer::is_registered(const std::string& device_id) const {
  const Shard& sh = shards_[shard_of(device_id)];
  MutexLock lock(sh.mu);
  return sh.devices.count(device_id) > 0;
}

std::size_t RightsIssuer::pending_session_count() const {
  std::size_t total = 0;
  for (const Shard& sh : shards_) {
    MutexLock lock(sh.mu);
    total += sh.sessions.size();
  }
  return total;
}

std::vector<std::string> RightsIssuer::stale_sessions(
    const Shard& sh, std::uint64_t now,
    const std::string* superseded_device) const {
  std::vector<std::string> out;
  for (const auto& [id, p] : sh.sessions) {
    const bool expired =
        now >= p.created_at && now - p.created_at > kPendingSessionTtl;
    const bool superseded =
        superseded_device != nullptr && p.device_id == *superseded_device;
    if (expired || superseded) out.push_back(id);
  }
  return out;
}

void RightsIssuer::refresh_oldest(Shard& sh) {
  std::uint64_t oldest = kNoSessions;
  for (const auto& [id, p] : sh.sessions) {
    oldest = std::min(oldest, p.created_at);
  }
  sh.oldest_session.store(oldest, std::memory_order_relaxed);
}

std::size_t RightsIssuer::sweep_stale_shards(std::uint64_t now,
                                             const Shard* skip) {
  std::size_t total = 0;
  for (Shard& sh : shards_) {
    if (&sh == skip) continue;
    // Lock-free fast path: nothing old enough to die in this shard.
    const std::uint64_t oldest =
        sh.oldest_session.load(std::memory_order_relaxed);
    if (oldest == kNoSessions || now < oldest ||
        now - oldest <= kPendingSessionTtl) {
      continue;
    }
    MutexLock lock(sh.mu);
    const std::vector<std::string> doomed = stale_sessions(sh, now, nullptr);
    if (doomed.empty()) continue;
    store::Transaction tx;
    for (const std::string& id : doomed) tx.erase(sess_record_key(id));
    try {
      persist(tx);
    } catch (const Error& e) {
      if (e.kind() != ErrorKind::kState) throw;
      // Degraded store: leave the stale sessions for a later sweep
      // rather than failing the request that merely triggered the GC.
      continue;
    }
    for (const std::string& id : doomed) sh.sessions.erase(id);
    refresh_oldest(sh);
    total += doomed.size();
  }
  return total;
}

std::size_t RightsIssuer::expire_pending_sessions(std::uint64_t now) {
  return sweep_stale_shards(now, nullptr);
}

roap::RiHello RightsIssuer::on_device_hello(Shard& sh,
                                            const roap::DeviceHello& hello,
                                            std::uint64_t now) {
  // Garbage-collect this shard's abandoned handshakes, then supersede any
  // pending session of this same device: only its newest hello stays
  // live. (Other shards were swept in handle() before the shard lock was
  // taken.) DeviceHello is unauthenticated (nothing in pass 1 is signed,
  // per the protocol), so a peer spoofing another device's id can abort
  // that device's in-flight handshake — the deliberate tradeoff for
  // bounding per-device pending state to one entry; the aborted device
  // just restarts from DeviceHello. Real authentication lands in pass 3.
  const std::vector<std::string> doomed =
      stale_sessions(sh, now, &hello.device_id);

  // Session-id reservation is lock-free; the persisted lease bound in
  // "meta" is what a restart resumes from, re-extended (under meta_mu_,
  // inside this hello's transaction) only when the reservation crosses
  // the current bound — roughly one meta write per kSessionLeaseBlock
  // hellos instead of one per hello, and never a stale smaller bound
  // overwriting a larger one. A reservation burned by a refused commit
  // is simply skipped: ids need uniqueness, not density.
  const std::uint64_t session_number =
      next_session_.fetch_add(1, std::memory_order_relaxed);

  roap::RiHello out;
  out.ri_id = ri_id_;
  out.session_id = ri_id_ + "-session-" + std::to_string(session_number);
  // Capability negotiation: the standard's mandatory suite always wins
  // unless the device advertises nothing (paper §2.4.1).
  out.algorithms = {"SHA-1", "HMAC-SHA1", "AES-128-CBC", "AES-WRAP",
                    "RSA-1024", "RSA-PSS", "KDF2"};
  out.ri_nonce = rng_.bytes(roap::kNonceLen);

  // The pending nonce (and the lease that bounds session ids) must
  // survive an RI restart, or every in-flight handshake dies with the
  // process. Persist BEFORE touching RAM: a refused commit (degraded
  // mode) must leave no half-created session and no superseded-but-alive
  // entries.
  store::Transaction tx;
  for (const std::string& id : doomed) tx.erase(sess_record_key(id));
  tx.put(sess_record_key(out.session_id),
         encode_pending(out.ri_nonce, hello.device_id, now));
  {
    UniqueLock meta_lock(meta_mu_);
    if (session_number + 1 > session_lease_) {
      const std::uint64_t new_lease = session_number + kSessionLeaseBlock;
      tx.put(kMetaKey, encode_meta(new_lease));
      persist(tx);  // meta_mu_ held: lease extensions commit in order
      session_lease_ = new_lease;
    } else {
      meta_lock.unlock();
      persist(tx);
    }
  }

  for (const std::string& id : doomed) sh.sessions.erase(id);
  sh.sessions[out.session_id] =
      PendingSession{out.ri_nonce, hello.device_id, now};
  refresh_oldest(sh);
  return out;
}

roap::RegistrationResponse RightsIssuer::on_registration_request(
    Shard& sh, const roap::RegistrationRequest& request, std::uint64_t now) {
  roap::RegistrationResponse out;
  out.session_id = request.session_id;
  out.ri_id = ri_id_;
  out.ri_url = url_;

  // Shard-local TTL sweep staged up front; its RAM erases apply only
  // after the commit below succeeds (compute → persist → apply, like
  // every handler — a refused commit must leave RAM and store agreeing).
  std::vector<std::string> doomed = stale_sessions(sh, now, nullptr);
  const auto is_doomed = [&doomed](const std::string& id) {
    return std::find(doomed.begin(), doomed.end(), id) != doomed.end();
  };

  auto session = sh.sessions.find(request.session_id);
  if (session == sh.sessions.end() || is_doomed(session->first)) {
    // The pending session is gone — TTL garbage collection, supersession
    // by a newer hello, an RI restart racing this retry, or a request
    // whose device id does not match the hello's (a session lives in its
    // device's shard, so a cross-device forgery simply finds nothing
    // here). Not a refusal: an honest device did nothing wrong and must
    // simply restart from DeviceHello with fresh nonces. kSessionExpired
    // is that clean restart signal (kAbort stays reserved for genuine
    // refusals).
    store::Transaction tx;
    for (const std::string& id : doomed) tx.erase(sess_record_key(id));
    persist(tx);
    for (const std::string& id : doomed) sh.sessions.erase(id);
    refresh_oldest(sh);
    out.status = Status::kSessionExpired;
    return out;
  }
  if (!ct_equal(session->second.ri_nonce, request.ri_nonce)) {
    // A live session but the wrong nonce: a forgery or a cross-wired
    // handshake. Refused without consuming the session — the honest
    // device's in-flight request can still land.
    out.status = Status::kAbort;
    return out;
  }
  // The handshake is consumed one-shot: whatever the outcome below, a
  // retry must restart from DeviceHello with fresh nonces. (A *byte
  // identical* retry is instead served by the replay cache upstream and
  // never reaches this point while the entry lives.)
  doomed.push_back(session->first);

  // Verify the device certificate chain and the message signature — all
  // pure computation against the request; no state changes yet.
  Status verdict = Status::kSuccess;
  pki::Certificate device_cert;
  try {
    device_cert = pki::Certificate::from_der(request.certificate_der);
  } catch (const Error&) {
    verdict = Status::kAbort;
  }
  if (verdict == Status::kSuccess) {
    // Chain walk through the verdict cache: a device re-registering (or
    // retrying under load) costs zero RSA operations here.
    if (device_chain_verifier_.verify({device_cert}, now)->status !=
        pki::CertStatus::kValid) {
      verdict = Status::kAbort;
    } else if (ca_.is_revoked(device_cert.serial())) {
      device_chain_verifier_.invalidate_serial(device_cert.serial());
      verdict = Status::kAbort;
    } else if (!crypto_.pss_verify(device_cert.subject_key(),
                                   request.payload(), request.signature)) {
      verdict = Status::kSignatureInvalid;
    }
  }
  // A revoked issuing intermediate must stop the service: the single
  // OCSP staple below covers only the RI leaf, so the devices cannot see
  // intermediate revocation themselves (multi-staple support is a
  // protocol extension this profile does not carry yet).
  if (verdict == Status::kSuccess) {
    for (const pki::Certificate& intermediate : intermediates_) {
      if (ca_.is_revoked(intermediate.serial())) {
        verdict = Status::kAbort;
        break;
      }
    }
  }

  // Session consumption (and device admission) is durable before the
  // response leaves: a replayed RegistrationRequest against a restarted
  // RI must still find its one-shot session consumed.
  store::Transaction tx;
  for (const std::string& id : doomed) tx.erase(sess_record_key(id));
  if (verdict == Status::kSuccess) {
    tx.put(dev_record_key(request.device_id), device_cert.to_der());
  }
  persist(tx);
  for (const std::string& id : doomed) sh.sessions.erase(id);
  refresh_oldest(sh);
  if (verdict != Status::kSuccess) {
    out.status = verdict;
    return out;
  }
  sh.devices[request.device_id] = device_cert;
  counters_.registrations.fetch_add(1, std::memory_order_relaxed);

  // Staple a fresh OCSP response for our own certificate, bound to the
  // nonce the device supplied.
  pki::OcspRequest ocsp_req{cert_.serial(), request.ocsp_nonce};
  pki::OcspResponse ocsp = ca_.ocsp_respond(ocsp_req, now, rng_);

  out.status = Status::kSuccess;
  out.ri_certificate_der = cert_.to_der();
  for (const pki::Certificate& intermediate : intermediates_) {
    out.ri_certificate_chain_der.push_back(intermediate.to_der());
  }
  out.ocsp_response_der = ocsp.to_der();
  out.signature = crypto_.pss_sign(key_, out.payload(), rng_);
  return out;
}

roap::ProtectedRo RightsIssuer::build_protected_ro(
    const LicenseOffer& offer, const rsa::PublicKey& device_key,
    const Domain* domain_state) {
  roap::ProtectedRo ro;
  ro.rights.ro_id = offer.ro_id;
  ro.rights.content_id = offer.content_id;
  ro.rights.dcf_hash = offer.dcf_hash;
  ro.rights.permissions = offer.permissions;
  ro.ri_id = ri_id_;

  // Fresh rights keys per issued RO (Figure 3).
  Bytes kmac = rng_.bytes(16);
  Bytes krek = rng_.bytes(16);
  Bytes kmac_krek = concat({kmac, krek});

  // Two-layer chain: K_CEK under K_REK, K_MAC||K_REK under the transport.
  ro.enc_kcek = crypto_.aes_wrap(krek, offer.kcek);

  if (offer.domain_ro) {
    // `domain_state` is the caller's snapshot (copied under the stripe
    // lock): key + generation are read from one consistent instant even
    // while a concurrent upgrade_domain re-keys the live table.
    const Domain& d = *domain_state;
    ro.is_domain_ro = true;
    ro.domain_id = offer.domain_id;
    ro.domain_generation = d.generation;
    ro.wrapped_keys = crypto_.aes_wrap(d.key, kmac_krek);
  } else {
    rsa::KemEncapsulation enc = crypto_.kem_encapsulate(device_key, rng_);
    Bytes c2 = crypto_.aes_wrap(enc.kek, kmac_krek);
    ro.wrapped_keys = concat({enc.c1, c2});
  }

  ro.mac = crypto_.hmac_sha1(kmac, ro.mac_payload());

  // RI signature: mandatory for Domain ROs, optional for Device ROs.
  if (offer.domain_ro || sign_device_ros_) {
    ro.signature = crypto_.pss_sign(key_, ro.signed_payload(), rng_);
  }
  return ro;
}

roap::RoResponse RightsIssuer::on_ro_request(
    Shard& sh, const roap::RoRequest& request, std::uint64_t now) {
  (void)now;
  roap::RoResponse out;
  out.device_id = request.device_id;
  out.ri_id = ri_id_;
  out.device_nonce = request.device_nonce;

  auto device = sh.devices.find(request.device_id);
  if (device == sh.devices.end()) {
    out.status = Status::kNotRegistered;
    return out;
  }
  if (!crypto_.pss_verify(device->second.subject_key(), request.payload(),
                          request.signature)) {
    out.status = Status::kSignatureInvalid;
    return out;
  }
  auto offer = offers_.find(request.ro_id);
  if (offer == offers_.end()) {
    out.status = Status::kUnknownRoId;
    return out;
  }
  std::optional<Domain> dsnap;
  if (offer->second.domain_ro) {
    // Domain ROs are only handed to current members of the domain. The
    // snapshot (one copy under the stripe lock) is both the membership
    // check and the key/generation source for the RO below — one
    // consistent view even against a racing join/upgrade.
    dsnap = domain_snapshot(offer->second.domain_id);
    bool member = false;
    if (dsnap) {
      for (const auto& m : dsnap->members) member |= (m == request.device_id);
    }
    if (!member) {
      out.status = Status::kAccessDenied;
      return out;
    }
  }

  out.status = Status::kSuccess;
  out.ros.push_back(build_protected_ro(offer->second,
                                       device->second.subject_key(),
                                       dsnap ? &*dsnap : nullptr));
  out.signature = crypto_.pss_sign(key_, out.payload(), rng_);
  counters_.ros_issued.fetch_add(1, std::memory_order_relaxed);
  return out;
}

roap::JoinDomainResponse RightsIssuer::on_join_domain(
    Shard& sh, const roap::JoinDomainRequest& request, std::uint64_t now) {
  (void)now;
  roap::JoinDomainResponse out;
  out.domain_id = request.domain_id;
  out.device_nonce = request.device_nonce;

  auto device = sh.devices.find(request.device_id);
  if (device == sh.devices.end()) {
    out.status = Status::kNotRegistered;
    return out;
  }
  if (!crypto_.pss_verify(device->second.subject_key(), request.payload(),
                          request.signature)) {
    out.status = Status::kSignatureInvalid;
    return out;
  }
  // Joins cross device shards, so membership lives in its own striped
  // table. The stripe lock is held across compute → persist → apply: two
  // concurrent joins to one domain serialize here, so neither's
  // membership write can swallow the other's (lock order: device shard →
  // domain stripe → store; never two stripes).
  Domain joined_snapshot;
  {
    DomainStripe& ds = stripe_for(request.domain_id);
    MutexLock stripe_lock(ds.mu);
    auto it = ds.domains.find(request.domain_id);
    if (it == ds.domains.end()) {
      out.status = Status::kAccessDenied;
      return out;
    }
    // Compute the post-join membership on a copy, persist it, and only
    // then let it replace the live domain: a refused commit (degraded
    // mode) must leave RAM still agreeing with the store.
    Domain joined = it->second;
    bool already_member = false;
    for (const auto& m : joined.members) {
      already_member |= (m == request.device_id);
    }
    if (!already_member) {
      if (joined.members.size() >= joined.max_members) {
        out.status = Status::kAccessDenied;
        return out;
      }
      joined.members.push_back(request.device_id);
    }
    // Persisted on EVERY successful join, not just first admission: if a
    // prior join's commit failed (the response never left), the retry
    // hits the already-member path — it must still make the membership
    // durable before K_D is handed out.
    store::Transaction tx;
    tx.put(domain_record_key(joined.domain_id), encode_domain(joined));
    persist(tx);
    it->second = std::move(joined);
    joined_snapshot = it->second;
  }
  counters_.domain_joins.fetch_add(1, std::memory_order_relaxed);

  out.status = Status::kSuccess;
  out.generation = joined_snapshot.generation;
  // Transport K_D to the device with the same RSA-KEM chain as RO keys
  // (RSA work deliberately outside the stripe lock).
  rsa::KemEncapsulation enc =
      crypto_.kem_encapsulate(device->second.subject_key(), rng_);
  Bytes c2 = crypto_.aes_wrap(enc.kek, joined_snapshot.key);
  out.wrapped_domain_key = concat({enc.c1, c2});
  out.signature = crypto_.pss_sign(key_, out.payload(), rng_);
  return out;
}

roap::LeaveDomainResponse RightsIssuer::on_leave_domain(
    Shard& sh, const roap::LeaveDomainRequest& request, std::uint64_t now) {
  (void)now;
  roap::LeaveDomainResponse out;
  out.domain_id = request.domain_id;
  out.device_nonce = request.device_nonce;

  auto device = sh.devices.find(request.device_id);
  if (device == sh.devices.end()) {
    out.status = Status::kNotRegistered;
    return out;
  }
  if (!crypto_.pss_verify(device->second.subject_key(), request.payload(),
                          request.signature)) {
    out.status = Status::kSignatureInvalid;
    return out;
  }
  {
    // Same stripe-lock-across-copy→persist→apply discipline as
    // on_join_domain.
    DomainStripe& ds = stripe_for(request.domain_id);
    MutexLock stripe_lock(ds.mu);
    auto it = ds.domains.find(request.domain_id);
    if (it == ds.domains.end()) {
      out.status = Status::kAccessDenied;
      return out;
    }
    Domain left = it->second;
    std::erase(left.members, request.device_id);
    // Persisted on EVERY successful leave (mirroring on_join_domain): if
    // a prior leave's commit failed (the response never left), the retry
    // finds nothing to erase — it must still make the removal durable
    // before success is signed, or an RI restart resurrects the departed
    // member.
    store::Transaction tx;
    tx.put(domain_record_key(left.domain_id), encode_domain(left));
    persist(tx);
    it->second = std::move(left);
  }
  counters_.domain_leaves.fetch_add(1, std::memory_order_relaxed);

  out.status = Status::kSuccess;
  out.signature = crypto_.pss_sign(key_, out.payload(), rng_);
  return out;
}

// ---------------------------------------------------------------------------
// Idempotent replay cache + degraded-mode dispatch
// ---------------------------------------------------------------------------

namespace {

/// Replay-cache keys: message-type prefix + requester identity + the
/// request's freshness token. The raw nonce bytes go straight into the
/// key (they never leave the process); the stored digest pins the entry
/// to the exact request bytes anyway, so even a colliding key can never
/// serve a wrong response — it just misses.
std::string replay_key(const char* prefix, const std::string& id,
                       const Bytes& nonce) {
  std::string key = prefix;
  key += id;
  key += '/';
  key.append(nonce.begin(), nonce.end());
  return key;
}

Bytes wire_digest(const std::string& wire) {
  return crypto::Sha1::hash(
      ByteView(reinterpret_cast<const std::uint8_t*>(wire.data()),
               wire.size()));
}

}  // namespace

void RightsIssuer::set_replay_cache_capacity(std::size_t n) {
  replay_capacity_.store(n, std::memory_order_relaxed);
  for (Shard& sh : shards_) {
    MutexLock lock(sh.mu);
    while (sh.replay.size() > n) {
      sh.replay.erase(sh.replay_lru.back());
      sh.replay_lru.pop_back();
      ++sh.replay_stats.evictions;
    }
  }
}

std::size_t RightsIssuer::replay_cache_size() const {
  std::size_t total = 0;
  for (const Shard& sh : shards_) {
    MutexLock lock(sh.mu);
    total += sh.replay.size();
  }
  return total;
}

ReplayCacheStats RightsIssuer::replay_cache_stats() const {
  ReplayCacheStats out;
  for (const Shard& sh : shards_) {
    MutexLock lock(sh.mu);
    out.hits += sh.replay_stats.hits;
    out.misses += sh.replay_stats.misses;
    out.insertions += sh.replay_stats.insertions;
    out.evictions += sh.replay_stats.evictions;
    out.expirations += sh.replay_stats.expirations;
    out.mismatches += sh.replay_stats.mismatches;
  }
  return out;
}

RiCounters RightsIssuer::counters() const {
  RiCounters out;
  out.registrations = counters_.registrations.load(std::memory_order_relaxed);
  out.ros_issued = counters_.ros_issued.load(std::memory_order_relaxed);
  out.domain_joins = counters_.domain_joins.load(std::memory_order_relaxed);
  out.domain_leaves = counters_.domain_leaves.load(std::memory_order_relaxed);
  out.degraded_refusals =
      counters_.degraded_refusals.load(std::memory_order_relaxed);
  return out;
}

std::vector<RightsIssuer::ShardStats> RightsIssuer::shard_stats() const {
  std::vector<ShardStats> out;
  out.reserve(kShardCount);
  for (const Shard& sh : shards_) {
    MutexLock lock(sh.mu);
    ShardStats s;
    s.exchanges = sh.exchanges;
    s.contended = sh.contended;
    s.replay_hits = sh.replay_stats.hits;
    s.replay_misses = sh.replay_stats.misses;
    out.push_back(s);
  }
  return out;
}

std::optional<roap::Envelope> RightsIssuer::replay_lookup(
    Shard& sh, const std::string& key, const std::string& request_wire,
    std::uint64_t now) {
  if (!replay_enabled_.load(std::memory_order_relaxed)) return std::nullopt;
  auto it = sh.replay.find(key);
  if (it == sh.replay.end()) {
    ++sh.replay_stats.misses;
    return std::nullopt;
  }
  ReplayEntry& entry = it->second;
  const std::uint64_t ttl = replay_ttl_.load(std::memory_order_relaxed);
  if (now >= entry.created_at && now - entry.created_at > ttl) {
    sh.replay_lru.erase(entry.lru_it);
    sh.replay.erase(it);
    ++sh.replay_stats.expirations;
    ++sh.replay_stats.misses;
    return std::nullopt;
  }
  if (entry.request_digest != wire_digest(request_wire)) {
    // Same key, different bytes — e.g. a nonce collision or a tampered
    // resend. Never serve the stale answer; process it fresh.
    ++sh.replay_stats.mismatches;
    ++sh.replay_stats.misses;
    return std::nullopt;
  }
  sh.replay_lru.splice(sh.replay_lru.begin(), sh.replay_lru, entry.lru_it);
  ++sh.replay_stats.hits;
  return roap::Envelope::from_wire(entry.response_wire);
}

void RightsIssuer::replay_insert(Shard& sh, const std::string& key,
                                 const std::string& request_wire,
                                 std::string response_wire,
                                 std::uint64_t now) {
  const std::size_t capacity =
      replay_capacity_.load(std::memory_order_relaxed);
  if (!replay_enabled_.load(std::memory_order_relaxed) || capacity == 0) {
    return;
  }
  auto it = sh.replay.find(key);
  if (it != sh.replay.end()) {
    // Key reuse with different bytes (the lookup above missed on digest):
    // the newer exchange supersedes the remembered one.
    it->second.request_digest = wire_digest(request_wire);
    it->second.response_wire = std::move(response_wire);
    it->second.created_at = now;
    sh.replay_lru.splice(sh.replay_lru.begin(), sh.replay_lru,
                         it->second.lru_it);
    return;
  }
  while (sh.replay.size() >= capacity) {
    sh.replay.erase(sh.replay_lru.back());
    sh.replay_lru.pop_back();
    ++sh.replay_stats.evictions;
  }
  sh.replay_lru.push_front(key);
  ReplayEntry entry;
  entry.request_digest = wire_digest(request_wire);
  entry.response_wire = std::move(response_wire);
  entry.created_at = now;
  entry.lru_it = sh.replay_lru.begin();
  sh.replay.emplace(key, std::move(entry));
  ++sh.replay_stats.insertions;
}

template <typename Handler, typename Refusal>
roap::Envelope RightsIssuer::serve(Shard& sh, const std::string& key,
                                   const roap::Envelope& request,
                                   std::uint64_t now, Handler&& handler,
                                   Refusal&& refusal) {
  // The shard lock spans lookup → handler → insert: a duplicate racing
  // its original on another worker parks here, then hits the cache — one
  // issuance, one byte-identical cached reply, by construction.
  // try_lock-then-lock keeps the contended counter exact; the adopting
  // scoped guard then owns the release (the annotated equivalent of the
  // old unique_lock try_to_lock dance).
  bool was_contended = false;
  if (!sh.mu.try_lock()) {
    sh.mu.lock();
    was_contended = true;
  }
  MutexLock lock(sh.mu, std::adopt_lock);
  if (was_contended) ++sh.contended;
  ++sh.exchanges;
  if (std::optional<roap::Envelope> cached =
          replay_lookup(sh, key, request.wire(), now)) {
    // Duplicate of a recently served request: the response goes back
    // byte-for-byte with zero RSA operations and zero state changes.
    return *std::move(cached);
  }
  roap::Envelope response;
  try {
    response = handler();
  } catch (const Error& e) {
    if (e.kind() != ErrorKind::kState) throw;
    // Degraded mode: the durable store refused the commit this request
    // needed. Every handler persists before touching RAM, so nothing
    // changed — answer with a typed retriable refusal instead of
    // unwinding through the transport. Deliberately not cached: a retry
    // after the store heals must be re-processed, not re-refused.
    counters_.degraded_refusals.fetch_add(1, std::memory_order_relaxed);
    return refusal();
  }
  replay_insert(sh, key, request.wire(), response.wire(), now);
  return response;
}

roap::Envelope RightsIssuer::handle(const roap::Envelope& request,
                                    std::uint64_t now) {
  using roap::Envelope;
  using roap::MessageType;
  switch (request.type()) {
    case MessageType::kDeviceHello: {
      const auto msg = request.open<roap::DeviceHello>();
      Shard& sh = shard_for(msg.device_id);
      // Cross-shard TTL GC before this shard's lock is taken (lock order:
      // one shard at a time, never two). The target shard's own sweep
      // happens inside the handler, staged with its transaction.
      sweep_stale_shards(now, &sh);
      return serve(
          sh, replay_key("dh/", msg.device_id, msg.device_nonce), request,
          now, [&] {
            sh.mu.assert_held();  // serve() holds it; TSA can't see through the seam
            return Envelope::wrap(on_device_hello(sh, msg, now));
          },
          [&] {
            roap::RiHello out;
            out.status = Status::kStoreFailure;
            out.ri_id = ri_id_;
            return Envelope::wrap(out);
          });
    }
    case MessageType::kRegistrationRequest: {
      const auto msg = request.open<roap::RegistrationRequest>();
      Shard& sh = shard_for(msg.device_id);
      sweep_stale_shards(now, &sh);
      return serve(
          sh, replay_key("rr/", msg.session_id, msg.device_nonce), request,
          now,
          [&] {
            sh.mu.assert_held();
            return Envelope::wrap(on_registration_request(sh, msg, now));
          },
          [&] {
            roap::RegistrationResponse out;
            out.status = Status::kStoreFailure;
            out.session_id = msg.session_id;
            out.ri_id = ri_id_;
            out.ri_url = url_;
            return Envelope::wrap(out);
          });
    }
    case MessageType::kRoRequest: {
      const auto msg = request.open<roap::RoRequest>();
      Shard& sh = shard_for(msg.device_id);
      return serve(
          sh, replay_key("ro/", msg.device_id, msg.device_nonce), request,
          now, [&] {
            sh.mu.assert_held();  // serve() holds it; TSA can't see through the seam
            return Envelope::wrap(on_ro_request(sh, msg, now));
          },
          [&] {
            // RO issuing persists nothing, but keep the refusal builder:
            // future stateful extensions (metered ROs) land here safely.
            roap::RoResponse out;
            out.status = Status::kStoreFailure;
            out.device_id = msg.device_id;
            out.ri_id = ri_id_;
            out.device_nonce = msg.device_nonce;
            return Envelope::wrap(out);
          });
    }
    case MessageType::kJoinDomainRequest: {
      const auto msg = request.open<roap::JoinDomainRequest>();
      Shard& sh = shard_for(msg.device_id);
      return serve(
          sh, replay_key("jd/", msg.device_id, msg.device_nonce), request,
          now, [&] {
            sh.mu.assert_held();  // serve() holds it; TSA can't see through the seam
            return Envelope::wrap(on_join_domain(sh, msg, now));
          },
          [&] {
            roap::JoinDomainResponse out;
            out.status = Status::kStoreFailure;
            out.domain_id = msg.domain_id;
            out.device_nonce = msg.device_nonce;
            return Envelope::wrap(out);
          });
    }
    case MessageType::kLeaveDomainRequest: {
      const auto msg = request.open<roap::LeaveDomainRequest>();
      Shard& sh = shard_for(msg.device_id);
      return serve(
          sh, replay_key("ld/", msg.device_id, msg.device_nonce), request,
          now, [&] {
            sh.mu.assert_held();  // serve() holds it; TSA can't see through the seam
            return Envelope::wrap(on_leave_domain(sh, msg, now));
          },
          [&] {
            roap::LeaveDomainResponse out;
            out.status = Status::kStoreFailure;
            out.domain_id = msg.domain_id;
            out.device_nonce = msg.device_nonce;
            return Envelope::wrap(out);
          });
    }
    default:
      throw Error(ErrorKind::kProtocol,
                  std::string("ri: ") + roap::to_string(request.type()) +
                      " is not a request message");
  }
}

std::string RightsIssuer::handle_wire(const std::string& request_xml,
                                      std::uint64_t now) {
  return handle(roap::Envelope::from_wire(request_xml), now).wire();
}

}  // namespace omadrm::ri
