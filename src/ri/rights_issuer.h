// Rights Issuer — the network-side license service of OMA DRM 2.
//
// Handles the ROAP protocol server-side: registration of DRM Agents
// (certificate + OCSP verification, session/nonce bookkeeping), Rights
// Object issuing (the full key-wrapping chain of the paper's Figure 3),
// and domain management (per-domain symmetric keys with generations,
// paper §2.3).
//
// The RI performs its cryptography through a CryptoProvider; in the
// paper's experiments it is given the *plain* provider because only
// terminal-side (DRM Agent) cycles count toward the cost model.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "pki/authority.h"
#include "pki/chain.h"
#include "provider/provider.h"
#include "rel/rights.h"
#include "roap/envelope.h"
#include "roap/messages.h"
#include "store/state_store.h"

namespace omadrm::ri {

/// A license the RI can mint: content binding + permissions + the K_CEK
/// obtained from the Content Issuer.
struct LicenseOffer {
  std::string ro_id;
  std::string content_id;
  Bytes dcf_hash;
  std::vector<rel::Permission> permissions;
  Bytes kcek;
  bool domain_ro = false;     // minted for a domain instead of one device
  std::string domain_id;      // required when domain_ro
};

struct Domain {
  std::string domain_id;
  Bytes key;                  // K_D, 128-bit
  std::uint32_t generation = 0;
  std::vector<std::string> members;  // device ids
  std::size_t max_members = 8;
};

/// Observability for the idempotent replay cache.
struct ReplayCacheStats {
  std::uint64_t hits = 0;         // duplicate served from cache (0 RSA ops)
  std::uint64_t misses = 0;       // includes expirations and mismatches
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;    // LRU capacity pressure
  std::uint64_t expirations = 0;  // entry outlived its TTL
  std::uint64_t mismatches = 0;   // same key, different request bytes
};

/// Issuance accounting — what the RI actually *did*, as opposed to what
/// it was asked. The chaos soak reconciles these against client-side
/// grant counts: a replay served from cache must not move any of them.
struct RiCounters {
  std::uint64_t registrations = 0;      // devices admitted (fresh handshakes)
  std::uint64_t ros_issued = 0;         // ProtectedRos freshly minted
  std::uint64_t domain_joins = 0;
  std::uint64_t domain_leaves = 0;
  std::uint64_t degraded_refusals = 0;  // kStoreFailure responses served
};

class RightsIssuer {
 public:
  /// Creates the RI with a fresh RSA identity (`key_bits`, default 1024).
  /// When `issuing_ca` is null the root `ca` certifies the RI directly;
  /// otherwise the intermediate signs the RI certificate and registration
  /// responses carry the full chain (RI -> intermediate -> root). The root
  /// CA reference is always used for OCSP stapling at registration time.
  RightsIssuer(std::string ri_id, std::string url,
               pki::CertificationAuthority& ca, const pki::Validity& validity,
               provider::CryptoProvider& crypto, Rng& rng,
               pki::SubordinateAuthority* issuing_ca = nullptr,
               std::size_t key_bits = 1024);

  const std::string& ri_id() const { return ri_id_; }
  const std::string& url() const { return url_; }
  const pki::Certificate& certificate() const { return cert_; }
  /// Intermediate certificates between this RI and the root (may be empty).
  const std::vector<pki::Certificate>& intermediates() const {
    return intermediates_;
  }

  /// Cache of verified device-certificate chains — under heavy
  /// registration traffic, re-registrations and retries skip the repeated
  /// RSA verification the same way the agent skips the RI's.
  pki::ChainVerifier& device_chain_verifier() {
    return device_chain_verifier_;
  }

  /// Adds a license to the catalog (throws on duplicate ro_id).
  void add_offer(LicenseOffer offer);
  bool has_offer(const std::string& ro_id) const;

  /// Creates a sharing domain; idempotent per id.
  void create_domain(const std::string& domain_id, std::size_t max_members = 8);
  const Domain* domain(const std::string& domain_id) const;

  /// Rotates the domain key to a new generation (e.g. after expelling a
  /// compromised member). Existing members must re-join to receive the new
  /// K_D; Domain ROs minted afterwards use the new generation.
  void upgrade_domain(const std::string& domain_id);

  /// Builds the trigger document that tells a device to acquire `ro_id`
  /// (pushed out-of-band in a real deployment).
  roap::RoAcquisitionTrigger make_trigger(const std::string& ro_id) const;

  // -- ROAP server side -----------------------------------------------------
  // One uniform dispatch surface serves every agent; the per-message
  // handlers are private. A transport (HTTP in deployments,
  // roap::InProcessTransport in tests/benches, a proxy device for the
  // standard's Unconnected Devices) delivers request envelopes here.

  /// Protocol entry point: dispatches any ROAP request envelope and
  /// returns the response envelope. Throws omadrm::Error(kProtocol) when
  /// the envelope is not a request message (a response or trigger), and
  /// omadrm::Error(kFormat) when its content is malformed.
  ///
  /// Fault tolerance built into this entry point:
  ///   - an exact duplicate of a recently served request is answered from
  ///     the idempotent replay cache (byte-identical response, zero RSA
  ///     operations, zero state changes) — see the replay-cache section;
  ///   - a refused StateStore commit does NOT unwind: the RI answers with
  ///     a typed Status::kStoreFailure refusal, having changed nothing
  ///     (degraded mode: no new grants, but stateless service — notably
  ///     RO issuing, which persists nothing — keeps working).
  roap::Envelope handle(const roap::Envelope& request, std::uint64_t now);

  /// Raw-bytes entry point: parses the serialized request document,
  /// dispatches it, and returns the serialized response. Throws
  /// omadrm::Error(kFormat) on unparseable input or unknown message types.
  std::string handle_wire(const std::string& request_xml, std::uint64_t now);

  bool is_registered(const std::string& device_id) const;

  /// Registration handshakes currently awaiting their RegistrationRequest.
  /// Bounded: entries expire kPendingSessionTtl seconds after the
  /// DeviceHello, are superseded by a newer hello from the same device,
  /// and are consumed (success or failure) by the RegistrationRequest.
  std::size_t pending_session_count() const { return sessions_.size(); }

  /// Garbage-collects every pending session older than kPendingSessionTtl
  /// (normally a side effect of traffic; exposed so idle periods — and
  /// leak assertions — can force the sweep). Returns how many died.
  std::size_t expire_pending_sessions(std::uint64_t now);

  // -- Idempotent replay cache ----------------------------------------------
  // handle() remembers its recent responses keyed by (request type,
  // device, session-id/nonce) plus a digest of the exact request bytes.
  // A device resending a request whose response was lost in transit gets
  // the cached response back byte-for-byte: ZERO additional RSA
  // operations, no double-issued RO, no double-bumped counter, no
  // consumed-session refusal. Entries expire after the TTL and the table
  // is LRU-bounded; the cache is RAM-only (a restarted RI serves
  // duplicates from its durable one-shot session state instead, which is
  // slower but equally safe). kStoreFailure refusals are never cached —
  // a retry after the store heals must be re-processed.
  void set_replay_cache_enabled(bool v) { replay_enabled_ = v; }
  void set_replay_cache_capacity(std::size_t n);
  void set_replay_cache_ttl(std::uint64_t seconds) { replay_ttl_ = seconds; }
  std::size_t replay_cache_size() const { return replay_.size(); }
  const ReplayCacheStats& replay_cache_stats() const { return replay_stats_; }

  /// Issuance counters (see RiCounters).
  const RiCounters& counters() const { return counters_; }

  /// When true, Device ROs are also RI-signed (allowed but not mandated by
  /// the standard; the paper notes the signature "is mandatory only for
  /// Domain ROs"). Exercised by the ablation benchmark.
  void set_sign_device_ros(bool v) { sign_device_ros_ = v; }

  // -- Durable state --------------------------------------------------------
  /// Binds the RI's replay-relevant state to a durable store: pending
  /// registration nonces ("sess/<session-id>"), registered devices
  /// ("dev/<device-id>"), domains with their membership ("domain/<id>"),
  /// and the session-id counter ("meta"). When the store already holds an
  /// RI image it REPLACES this instance's state — a service restart keeps
  /// in-flight handshakes completable and consumed (one-shot) sessions
  /// consumed. Identity (RSA key, certificate) and the license catalog
  /// are provisioning config and deliberately not stored. After binding,
  /// every mutation commits through the store before the triggering ROAP
  /// response leaves; a refused commit throws omadrm::Error(kState)
  /// (fail closed — the RI must not acknowledge state it cannot keep).
  Result<> bind_store(store::StateStore& s);
  store::StateStore* bound_store() const { return store_; }

 private:
  roap::RiHello on_device_hello(const roap::DeviceHello& hello,
                                std::uint64_t now);
  roap::RegistrationResponse on_registration_request(
      const roap::RegistrationRequest& request, std::uint64_t now);
  roap::RoResponse on_ro_request(const roap::RoRequest& request,
                                 std::uint64_t now);
  roap::JoinDomainResponse on_join_domain(
      const roap::JoinDomainRequest& request, std::uint64_t now);
  roap::LeaveDomainResponse on_leave_domain(
      const roap::LeaveDomainRequest& request, std::uint64_t now);

  /// Pending sessions that are past their TTL at `now` — and, when
  /// `superseded_device` is non-null, that device's sessions too (only
  /// its newest hello may stay live). Pure: the caller stages the store
  /// erases, commits, and only then applies the RAM erases, so a refused
  /// commit leaves RAM and store agreeing.
  std::vector<std::string> stale_sessions(
      std::uint64_t now, const std::string* superseded_device) const;

  /// Commits `tx` when a store is bound; throws omadrm::Error(kState) on
  /// a refused commit (the RI must not answer with unkept state). Every
  /// handler orders its work compute → persist → apply-to-RAM, so the
  /// throw is always raised before any live state changed; handle()
  /// catches it and answers with a typed Status::kStoreFailure refusal
  /// (degraded mode) instead of unwinding through the transport.
  void persist(const store::Transaction& tx);

  /// Replay-cache core: serve `key` if it holds a fresh entry whose
  /// request digest matches `request_wire` byte-for-byte.
  std::optional<roap::Envelope> replay_lookup(const std::string& key,
                                              const std::string& request_wire,
                                              std::uint64_t now);
  void replay_insert(const std::string& key, const std::string& request_wire,
                     std::string response_wire, std::uint64_t now);

  /// handle() per-type skeleton: replay-cache lookup → handler → cache
  /// the response; a refused store commit (Error(kState)) from inside the
  /// handler is converted into the typed refusal `refusal()` builds.
  template <typename Handler, typename Refusal>
  roap::Envelope serve(const std::string& key, const roap::Envelope& request,
                       std::uint64_t now, Handler&& handler,
                       Refusal&& refusal);

  roap::ProtectedRo build_protected_ro(const LicenseOffer& offer,
                                       const rsa::PublicKey& device_key);

  std::string ri_id_;
  std::string url_;
  pki::CertificationAuthority& ca_;
  provider::CryptoProvider& crypto_;
  Rng& rng_;
  rsa::PrivateKey key_;
  pki::Certificate cert_;
  std::vector<pki::Certificate> intermediates_;  // leaf-side first
  pki::ChainVerifier device_chain_verifier_;
  bool sign_device_ros_ = false;

  /// One in-flight registration handshake (between RIHello and
  /// RegistrationRequest).
  struct PendingSession {
    Bytes ri_nonce;
    std::string device_id;
    std::uint64_t created_at = 0;
  };

  std::map<std::string, PendingSession> sessions_;    // by session id
  std::map<std::string, pki::Certificate> devices_;   // registered agents
  std::map<std::string, LicenseOffer> offers_;        // ro id -> offer
  std::map<std::string, Domain> domains_;
  std::uint64_t next_session_ = 1;
  store::StateStore* store_ = nullptr;

  /// One remembered response. The digest pins the entry to the *exact*
  /// request bytes: a different request that happens to reuse the key
  /// (e.g. a nonce collision) is processed fresh, never served a stale
  /// answer.
  struct ReplayEntry {
    Bytes request_digest;       // SHA-1 of the request wire bytes
    std::string response_wire;
    std::uint64_t created_at = 0;
    std::list<std::string>::iterator lru_it;
  };

  bool replay_enabled_ = true;
  std::size_t replay_capacity_ = 1024;
  std::uint64_t replay_ttl_ = 600;  // seconds; mirrors kPendingSessionTtl
  std::map<std::string, ReplayEntry> replay_;
  std::list<std::string> replay_lru_;  // front = most recently used
  ReplayCacheStats replay_stats_;
  RiCounters counters_;
};

/// How long an RI keeps a pending registration session alive while
/// waiting for the RegistrationRequest (seconds). Abandoned handshakes —
/// dropped envelopes, crashed devices — are garbage-collected past this.
inline constexpr std::uint64_t kPendingSessionTtl = 600;

}  // namespace omadrm::ri
