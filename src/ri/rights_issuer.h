// Rights Issuer — the network-side license service of OMA DRM 2.
//
// Handles the ROAP protocol server-side: registration of DRM Agents
// (certificate + OCSP verification, session/nonce bookkeeping), Rights
// Object issuing (the full key-wrapping chain of the paper's Figure 3),
// and domain management (per-domain symmetric keys with generations,
// paper §2.3).
//
// The RI performs its cryptography through a CryptoProvider; in the
// paper's experiments it is given the *plain* provider because only
// terminal-side (DRM Agent) cycles count toward the cost model.
//
// Concurrency model (the "millions of users" axis): every ROAP request
// carries a device id, and per-device state is disjoint across devices,
// so handle() is internally sharded — pending sessions, registered
// devices, and the idempotent replay cache live in kShardCount
// independently locked shards keyed by device-id hash. One shard's lock
// is held across the whole replay-lookup → handler → replay-insert
// sequence, which is what makes a duplicate request racing its original
// on another worker come back byte-identical (the loser of the race
// waits on the shard lock and then hits the cache). Cross-cutting state
// is concurrent on its own terms:
//
//   session-id counter    atomic reservation + a persisted lease block
//                         (see on_device_hello) so ids never repeat
//                         across a restart without serializing hellos
//                         on the store;
//   domains               their own striped table (joins cross device
//                         shards); a stripe lock is held across the
//                         copy → persist → apply of a membership change
//                         so concurrent joins to one domain never lose
//                         an update. Lock order: device shard → domain
//                         stripe → meta lease → store — never two
//                         shards, never two stripes (ranks in
//                         common/ordered_mutex.h; the debug validator
//                         aborts on any inversion);
//   chain-verdict cache   ChainVerifier is internally reader-biased;
//   rng                   draws go through a LockedRng;
//   counters              atomics, read as snapshots.
//
// A store bound via bind_store() is committed to from every shard
// concurrently and therefore must itself be thread-safe (MemoryStore
// is; wrap others in store::GroupCommitStore, which also batches
// concurrent commits into one backing append+fsync).
//
// Still single-threaded by contract: construction, bind_store(),
// add_offer(), create_domain()/upgrade_domain(), and domain() — they
// are provisioning/config, called before traffic or in quiescence.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/ordered_mutex.h"
#include "common/random.h"
#include "common/thread_annotations.h"
#include "pki/authority.h"
#include "pki/chain.h"
#include "provider/provider.h"
#include "rel/rights.h"
#include "roap/envelope.h"
#include "roap/messages.h"
#include "store/state_store.h"

namespace omadrm::ri {

/// A license the RI can mint: content binding + permissions + the K_CEK
/// obtained from the Content Issuer.
struct LicenseOffer {
  std::string ro_id;
  std::string content_id;
  Bytes dcf_hash;
  std::vector<rel::Permission> permissions;
  Bytes kcek;
  bool domain_ro = false;     // minted for a domain instead of one device
  std::string domain_id;      // required when domain_ro
};

struct Domain {
  std::string domain_id;
  Bytes key;                  // K_D, 128-bit
  std::uint32_t generation = 0;
  std::vector<std::string> members;  // device ids
  std::size_t max_members = 8;
};

/// Observability for the idempotent replay cache.
struct ReplayCacheStats {
  std::uint64_t hits = 0;         // duplicate served from cache (0 RSA ops)
  std::uint64_t misses = 0;       // includes expirations and mismatches
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;    // LRU capacity pressure
  std::uint64_t expirations = 0;  // entry outlived its TTL
  std::uint64_t mismatches = 0;   // same key, different request bytes
};

/// Issuance accounting — what the RI actually *did*, as opposed to what
/// it was asked. The chaos soak reconciles these against client-side
/// grant counts: a replay served from cache must not move any of them.
struct RiCounters {
  std::uint64_t registrations = 0;      // devices admitted (fresh handshakes)
  std::uint64_t ros_issued = 0;         // ProtectedRos freshly minted
  std::uint64_t domain_joins = 0;
  std::uint64_t domain_leaves = 0;
  std::uint64_t degraded_refusals = 0;  // kStoreFailure responses served
};

class RightsIssuer {
 public:
  /// Device-id hash shards; power of two so the hash folds with a mask.
  static constexpr std::size_t kShardCount = 16;
  /// Domain-id stripes for the membership table.
  static constexpr std::size_t kDomainStripes = 8;
  /// Session-id lease block: "meta" persists an upper bound the counter
  /// may reach, re-extended every kSessionLeaseBlock reservations, so a
  /// restart resumes past every id ever handed out without each hello
  /// serializing on a meta write.
  static constexpr std::uint64_t kSessionLeaseBlock = 64;

  /// Per-shard traffic/observability counters (see shard_stats()).
  struct ShardStats {
    std::uint64_t exchanges = 0;      // requests served by this shard
    std::uint64_t contended = 0;      // lock acquisitions that had to wait
    std::uint64_t replay_hits = 0;
    std::uint64_t replay_misses = 0;
  };

  /// Creates the RI with a fresh RSA identity (`key_bits`, default 1024).
  /// When `issuing_ca` is null the root `ca` certifies the RI directly;
  /// otherwise the intermediate signs the RI certificate and registration
  /// responses carry the full chain (RI -> intermediate -> root). The root
  /// CA reference is always used for OCSP stapling at registration time.
  RightsIssuer(std::string ri_id, std::string url,
               pki::CertificationAuthority& ca, const pki::Validity& validity,
               provider::CryptoProvider& crypto, Rng& rng,
               pki::SubordinateAuthority* issuing_ca = nullptr,
               std::size_t key_bits = 1024);

  const std::string& ri_id() const { return ri_id_; }
  const std::string& url() const { return url_; }
  const pki::Certificate& certificate() const { return cert_; }
  /// Intermediate certificates between this RI and the root (may be empty).
  const std::vector<pki::Certificate>& intermediates() const {
    return intermediates_;
  }

  /// Cache of verified device-certificate chains — under heavy
  /// registration traffic, re-registrations and retries skip the repeated
  /// RSA verification the same way the agent skips the RI's.
  pki::ChainVerifier& device_chain_verifier() {
    return device_chain_verifier_;
  }

  /// Adds a license to the catalog (throws on duplicate ro_id).
  void add_offer(LicenseOffer offer);
  bool has_offer(const std::string& ro_id) const;

  /// Creates a sharing domain; idempotent per id.
  void create_domain(const std::string& domain_id, std::size_t max_members = 8);
  /// Quiescent-state observer: the returned pointer is only stable while
  /// no handler traffic runs (the stripe lock is released on return).
  const Domain* domain(const std::string& domain_id) const;

  /// Rotates the domain key to a new generation (e.g. after expelling a
  /// compromised member). Existing members must re-join to receive the new
  /// K_D; Domain ROs minted afterwards use the new generation.
  void upgrade_domain(const std::string& domain_id);

  /// Builds the trigger document that tells a device to acquire `ro_id`
  /// (pushed out-of-band in a real deployment).
  roap::RoAcquisitionTrigger make_trigger(const std::string& ro_id) const;

  // -- ROAP server side -----------------------------------------------------
  // One uniform dispatch surface serves every agent; the per-message
  // handlers are private. A transport (HTTP in deployments,
  // roap::InProcessTransport in tests/benches, a proxy device for the
  // standard's Unconnected Devices) delivers request envelopes here.

  /// Protocol entry point: dispatches any ROAP request envelope and
  /// returns the response envelope. Throws omadrm::Error(kProtocol) when
  /// the envelope is not a request message (a response or trigger), and
  /// omadrm::Error(kFormat) when its content is malformed.
  ///
  /// Thread-safe: requests for different devices run concurrently on
  /// their shards; requests for one device serialize on its shard lock
  /// (which is also what guarantees replay-duplicate races resolve to
  /// one issuance + one cached byte-identical reply).
  ///
  /// Fault tolerance built into this entry point:
  ///   - an exact duplicate of a recently served request is answered from
  ///     the idempotent replay cache (byte-identical response, zero RSA
  ///     operations, zero state changes) — see the replay-cache section;
  ///   - a refused StateStore commit does NOT unwind: the RI answers with
  ///     a typed Status::kStoreFailure refusal, having changed nothing
  ///     (degraded mode: no new grants, but stateless service — notably
  ///     RO issuing, which persists nothing — keeps working).
  roap::Envelope handle(const roap::Envelope& request, std::uint64_t now);

  /// Raw-bytes entry point: parses the serialized request document,
  /// dispatches it, and returns the serialized response. Throws
  /// omadrm::Error(kFormat) on unparseable input or unknown message types.
  std::string handle_wire(const std::string& request_xml, std::uint64_t now);

  bool is_registered(const std::string& device_id) const;

  /// Registration handshakes currently awaiting their RegistrationRequest,
  /// summed across shards. Bounded: entries expire kPendingSessionTtl
  /// seconds after the DeviceHello, are superseded by a newer hello from
  /// the same device, and are consumed (success or failure) by the
  /// RegistrationRequest.
  std::size_t pending_session_count() const;

  /// Garbage-collects every pending session older than kPendingSessionTtl
  /// (normally a side effect of traffic; exposed so idle periods — and
  /// leak assertions — can force the sweep). Returns how many died.
  std::size_t expire_pending_sessions(std::uint64_t now);

  // -- Idempotent replay cache ----------------------------------------------
  // handle() remembers its recent responses keyed by (request type,
  // device, session-id/nonce) plus a digest of the exact request bytes.
  // A device resending a request whose response was lost in transit gets
  // the cached response back byte-for-byte: ZERO additional RSA
  // operations, no double-issued RO, no double-bumped counter, no
  // consumed-session refusal. Entries live in the device's shard (the
  // LRU mutates on lookup, so it rides the shard lock), expire after the
  // TTL, and are LRU-bounded PER SHARD by the configured capacity; the
  // cache is RAM-only (a restarted RI serves duplicates from its durable
  // one-shot session state instead, which is slower but equally safe).
  // kStoreFailure refusals are never cached — a retry after the store
  // heals must be re-processed.
  void set_replay_cache_enabled(bool v) {
    replay_enabled_.store(v, std::memory_order_relaxed);
  }
  void set_replay_cache_capacity(std::size_t n);
  void set_replay_cache_ttl(std::uint64_t seconds) {
    replay_ttl_.store(seconds, std::memory_order_relaxed);
  }
  std::size_t replay_cache_size() const;
  ReplayCacheStats replay_cache_stats() const;  // aggregated snapshot

  /// Issuance counters, read as a consistent-enough snapshot (each field
  /// is individually exact; cross-field skew is bounded by in-flight
  /// handlers).
  RiCounters counters() const;

  /// Per-shard traffic snapshot (exchanges, lock contention, replay
  /// hit/miss) — what `ri_server --stats` reports.
  std::vector<ShardStats> shard_stats() const;

  /// The shard a device id routes to (exposed so tests can pick device
  /// ids that collide or spread).
  static std::size_t shard_of(std::string_view device_id);

  /// When true, Device ROs are also RI-signed (allowed but not mandated by
  /// the standard; the paper notes the signature "is mandatory only for
  /// Domain ROs"). Exercised by the ablation benchmark.
  void set_sign_device_ros(bool v) { sign_device_ros_ = v; }

  // -- Durable state --------------------------------------------------------
  /// Binds the RI's replay-relevant state to a durable store: pending
  /// registration nonces ("sess/<session-id>"), registered devices
  /// ("dev/<device-id>"), domains with their membership ("domain/<id>"),
  /// and the session-id lease bound ("meta"). When the store already
  /// holds an RI image it REPLACES this instance's state — a service
  /// restart keeps in-flight handshakes completable and consumed
  /// (one-shot) sessions consumed. Identity (RSA key, certificate) and
  /// the license catalog are provisioning config and deliberately not
  /// stored. After binding, every mutation commits through the store
  /// before the triggering ROAP response leaves; a refused commit throws
  /// omadrm::Error(kState) (fail closed — the RI must not acknowledge
  /// state it cannot keep). Config-time only (not safe against live
  /// handler traffic); the bound store is then committed to from every
  /// shard concurrently and must be thread-safe itself.
  // NO_THREAD_SAFETY_ANALYSIS: config-time single-threaded by the
  // contract above — it reads/replaces every shard and stripe without
  // their locks on purpose (there is no traffic to exclude yet), which
  // the analysis cannot express per-call-site.
  Result<> bind_store(store::StateStore& s) NO_THREAD_SAFETY_ANALYSIS;
  store::StateStore* bound_store() const { return store_; }

 private:
  /// One in-flight registration handshake (between RIHello and
  /// RegistrationRequest).
  struct PendingSession {
    Bytes ri_nonce;
    std::string device_id;
    std::uint64_t created_at = 0;
  };

  /// One remembered response. The digest pins the entry to the *exact*
  /// request bytes: a different request that happens to reuse the key
  /// (e.g. a nonce collision) is processed fresh, never served a stale
  /// answer.
  struct ReplayEntry {
    Bytes request_digest;       // SHA-1 of the request wire bytes
    std::string response_wire;
    std::uint64_t created_at = 0;
    std::list<std::string>::iterator lru_it;
  };

  static constexpr std::uint64_t kNoSessions = ~std::uint64_t{0};

  /// One device-hash shard: everything a single device's requests touch,
  /// guarded by one mutex the dispatcher holds across the whole
  /// replay-lookup → handler → replay-insert sequence.
  struct Shard {
    // Rank kRiShard: the OUTERMOST lock of every handler chain — domain
    // stripes, the meta lease, the store, chain/Montgomery caches and
    // the RNG all nest under it; shards are locked one at a time (the
    // sweep included), which the validator's two-of-a-kind rule
    // enforces.
    mutable OrderedMutex mu{LockRank::kRiShard, "ri.shard"};
    std::map<std::string, PendingSession> sessions GUARDED_BY(mu);
    std::map<std::string, pki::Certificate> devices GUARDED_BY(mu);
    std::map<std::string, ReplayEntry> replay GUARDED_BY(mu);
    std::list<std::string> replay_lru GUARDED_BY(mu);  // front = MRU
    ReplayCacheStats replay_stats GUARDED_BY(mu);
    std::uint64_t exchanges GUARDED_BY(mu) = 0;
    std::uint64_t contended GUARDED_BY(mu) = 0;
    /// Oldest pending-session timestamp (kNoSessions when empty),
    /// maintained under mu, read lock-free by the cross-shard TTL sweep
    /// so shards with nothing stale are skipped without locking.
    std::atomic<std::uint64_t> oldest_session{kNoSessions};
  };

  struct DomainStripe {
    // Rank kRiDomainStripe: taken under a shard lock (join/leave), one
    // stripe at a time.
    mutable OrderedMutex mu{LockRank::kRiDomainStripe, "ri.domain_stripe"};
    std::map<std::string, Domain> domains GUARDED_BY(mu);
  };

  Shard& shard_for(std::string_view device_id) {
    return shards_[shard_of(device_id)];
  }
  DomainStripe& stripe_for(std::string_view domain_id);
  const DomainStripe& stripe_for(std::string_view domain_id) const;

  roap::RiHello on_device_hello(Shard& sh, const roap::DeviceHello& hello,
                                std::uint64_t now) REQUIRES(sh.mu);
  roap::RegistrationResponse on_registration_request(
      Shard& sh, const roap::RegistrationRequest& request, std::uint64_t now)
      REQUIRES(sh.mu);
  roap::RoResponse on_ro_request(Shard& sh, const roap::RoRequest& request,
                                 std::uint64_t now) REQUIRES(sh.mu);
  roap::JoinDomainResponse on_join_domain(
      Shard& sh, const roap::JoinDomainRequest& request, std::uint64_t now)
      REQUIRES(sh.mu);
  roap::LeaveDomainResponse on_leave_domain(
      Shard& sh, const roap::LeaveDomainRequest& request, std::uint64_t now)
      REQUIRES(sh.mu);

  /// Pending sessions in `sh` past their TTL at `now` — and, when
  /// `superseded_device` is non-null, that device's sessions too (only
  /// its newest hello may stay live; a device's sessions always live in
  /// its own shard). Pure: the caller stages the store erases, commits,
  /// and only then applies the RAM erases, so a refused commit leaves
  /// RAM and store agreeing. Caller holds sh.mu.
  std::vector<std::string> stale_sessions(
      const Shard& sh, std::uint64_t now,
      const std::string* superseded_device) const REQUIRES(sh.mu);

  /// Recomputes sh.oldest_session from sh.sessions (caller holds sh.mu).
  void refresh_oldest(Shard& sh) REQUIRES(sh.mu);

  /// Cross-shard TTL sweep: for every shard (except `skip`, whose
  /// sessions the in-handler sweep covers inside the handler's own
  /// transaction) whose oldest pending session is past the TTL, erase
  /// the stale entries — store first, RAM second, one shard lock at a
  /// time (never two). A refused sweep commit skips that shard; the
  /// sessions stay for a later sweep. Returns how many died.
  std::size_t sweep_stale_shards(std::uint64_t now, const Shard* skip);

  /// Commits `tx` when a store is bound; throws omadrm::Error(kState) on
  /// a refused commit (the RI must not answer with unkept state). Every
  /// handler orders its work compute → persist → apply-to-RAM, so the
  /// throw is always raised before any live state changed; handle()
  /// catches it and answers with a typed Status::kStoreFailure refusal
  /// (degraded mode) instead of unwinding through the transport.
  void persist(const store::Transaction& tx);

  /// Replay-cache core: serve `key` if `sh` holds a fresh entry whose
  /// request digest matches `request_wire` byte-for-byte. Caller holds
  /// sh.mu.
  std::optional<roap::Envelope> replay_lookup(Shard& sh,
                                              const std::string& key,
                                              const std::string& request_wire,
                                              std::uint64_t now)
      REQUIRES(sh.mu);
  void replay_insert(Shard& sh, const std::string& key,
                     const std::string& request_wire,
                     std::string response_wire, std::uint64_t now)
      REQUIRES(sh.mu);

  /// handle() per-type skeleton: lock the shard (counting contention),
  /// replay-cache lookup → handler → cache the response; a refused store
  /// commit (Error(kState)) from inside the handler is converted into
  /// the typed refusal `refusal()` builds.
  template <typename Handler, typename Refusal>
  roap::Envelope serve(Shard& sh, const std::string& key,
                       const roap::Envelope& request, std::uint64_t now,
                       Handler&& handler, Refusal&& refusal);

  /// `domain_snapshot` copies the named domain out under its stripe lock
  /// (nullopt when absent) so RO building reads a consistent key +
  /// generation without holding the stripe across RSA work.
  std::optional<Domain> domain_snapshot(const std::string& domain_id) const;

  roap::ProtectedRo build_protected_ro(const LicenseOffer& offer,
                                       const rsa::PublicKey& device_key,
                                       const Domain* domain_state);

  std::string ri_id_;
  std::string url_;
  pki::CertificationAuthority& ca_;
  provider::CryptoProvider& crypto_;
  LockedRng rng_;  // serialized view over the caller's generator
  rsa::PrivateKey key_;
  pki::Certificate cert_;
  std::vector<pki::Certificate> intermediates_;  // leaf-side first
  pki::ChainVerifier device_chain_verifier_;
  bool sign_device_ros_ = false;

  std::array<Shard, kShardCount> shards_;
  std::array<DomainStripe, kDomainStripes> domain_stripes_;
  std::map<std::string, LicenseOffer> offers_;  // config-time; read-only after

  /// Session-id reservation is an atomic fetch-add; "meta" persists the
  /// lease bound reservations may reach (extended under meta_mu_ inside
  /// the extending hello's transaction). Ids skipped by a crash or a
  /// refused commit are simply never used — uniqueness, not density.
  std::atomic<std::uint64_t> next_session_{1};
  // Rank kRiMeta: taken under a shard lock; deliberately held ACROSS
  // persist() when extending the lease, so lease extensions reach the
  // journal in lease order — meta ranks BEFORE the store ranks. (ISSUE
  // 10's prose table said store-then-meta; the code's order is the
  // correct one and the validator + tests/test_lock_order.cpp pin it.)
  OrderedMutex meta_mu_{LockRank::kRiMeta, "ri.meta"};
  std::uint64_t session_lease_ GUARDED_BY(meta_mu_) = 1;

  store::StateStore* store_ = nullptr;

  std::atomic<bool> replay_enabled_{true};
  std::atomic<std::size_t> replay_capacity_{1024};  // per shard
  std::atomic<std::uint64_t> replay_ttl_{600};  // s; mirrors session TTL

  struct AtomicCounters {
    std::atomic<std::uint64_t> registrations{0};
    std::atomic<std::uint64_t> ros_issued{0};
    std::atomic<std::uint64_t> domain_joins{0};
    std::atomic<std::uint64_t> domain_leaves{0};
    std::atomic<std::uint64_t> degraded_refusals{0};
  };
  AtomicCounters counters_;
};

/// How long an RI keeps a pending registration session alive while
/// waiting for the RegistrationRequest (seconds). Abandoned handshakes —
/// dropped envelopes, crashed devices — are garbage-collected past this.
inline constexpr std::uint64_t kPendingSessionTtl = 600;

}  // namespace omadrm::ri
