// AES-CBC with PKCS#7 padding — OMA DRM 2's content encryption mode
// (AES_128_CBC in the DCF specification).
#pragma once

#include "common/bytes.h"
#include "crypto/aes.h"

namespace omadrm::crypto {

/// Encrypts `plaintext` under `key` with the 16-byte `iv`. PKCS#7 padding
/// is always applied (so ciphertext is plaintext rounded up to the next
/// block, +16 when already aligned).
Bytes aes_cbc_encrypt(ByteView key, ByteView iv, ByteView plaintext);

/// Decrypts and strips PKCS#7 padding. Throws omadrm::Error(kFormat) on an
/// invalid ciphertext length or inconsistent padding. Padding failure is an
/// exception (not a soft result) because the DRM agent verifies the RO MAC
/// and the DCF hash *before* decrypting, so reaching bad padding means a
/// broken caller rather than an untrusted-input condition.
Bytes aes_cbc_decrypt(ByteView key, ByteView iv, ByteView ciphertext);

/// PKCS#7 helpers exposed for tests.
Bytes pkcs7_pad(ByteView data, std::size_t block_size);
Bytes pkcs7_unpad(ByteView data, std::size_t block_size);

}  // namespace omadrm::crypto
