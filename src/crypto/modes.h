// AES-CBC with PKCS#7 padding — OMA DRM 2's content encryption mode
// (AES_128_CBC in the DCF specification).
//
// Two tiers of API:
//
//   * The historical one-shot helpers (aes_cbc_encrypt / aes_cbc_decrypt)
//     build a key schedule and allocate a result per call. They remain
//     the right tool for small, infrequent payloads (ROAP, tests).
//   * The bulk tier — the fused block-run cores, the `_into` variants on
//     caller-owned buffers, and CbcDecryptStream — is the steady-state
//     content path: a prebuilt (usually cached) Aes context, zero
//     allocations per operation, and whole-block runs that dispatch to
//     AES-NI when the host supports it.
#pragma once

#include <span>

#include "common/bytes.h"
#include "crypto/aes.h"

namespace omadrm::crypto {

/// Encrypts `plaintext` under `key` with the 16-byte `iv`. PKCS#7 padding
/// is always applied (so ciphertext is plaintext rounded up to the next
/// block, +16 when already aligned).
Bytes aes_cbc_encrypt(ByteView key, ByteView iv, ByteView plaintext);

/// Decrypts and strips PKCS#7 padding. Throws omadrm::Error(kFormat) on an
/// invalid ciphertext length or inconsistent padding. Padding failure is an
/// exception (not a soft result) because the DRM agent verifies the RO MAC
/// and the DCF hash *before* decrypting, so reaching bad padding means a
/// broken caller rather than an untrusted-input condition.
Bytes aes_cbc_decrypt(ByteView key, ByteView iv, ByteView ciphertext);

/// Buffer-reusing variants on a prebuilt key schedule: `out` is resized to
/// the result (its capacity persists across calls, so the steady state is
/// allocation-free) and the key schedule is built once by the caller —
/// typically served from the agent's AES context cache.
void aes_cbc_encrypt_into(const Aes& aes, ByteView iv, ByteView plaintext,
                          Bytes& out);
void aes_cbc_decrypt_into(const Aes& aes, ByteView iv, ByteView ciphertext,
                          Bytes& out);

/// Fused CBC cores over whole 16-byte blocks. `chain` carries the running
/// chain value: the IV before the first call, the last ciphertext block
/// after each call — so a multi-megabyte payload can be processed as any
/// sequence of block runs. XORs are word-at-a-time (or AES-NI vector ops
/// when available); no per-block temporaries. `in` and `out` must not
/// alias. Padding is the caller's concern.
void cbc_encrypt_blocks(const Aes& aes, std::uint8_t chain[Aes::kBlockSize],
                        const std::uint8_t* in, std::uint8_t* out,
                        std::size_t n_blocks);
void cbc_decrypt_blocks(const Aes& aes, std::uint8_t chain[Aes::kBlockSize],
                        const std::uint8_t* in, std::uint8_t* out,
                        std::size_t n_blocks);

/// Incremental CBC + PKCS#7 decryption over a borrowed ciphertext.
///
/// Serves plaintext in chunks of any granularity (down to one byte):
/// whole blocks ahead of the final one stream straight into the caller's
/// buffer through the fused core; only the final, padding-bearing block
/// passes through a 16-byte staging area so the padding can be validated
/// and stripped. No allocation, ever — the stream borrows the Aes context
/// and the ciphertext, both of which must outlive it.
///
/// Throws omadrm::Error(kFormat) on an invalid ciphertext length (at
/// construction) or inconsistent padding (when the final block is
/// reached), matching aes_cbc_decrypt.
class CbcDecryptStream {
 public:
  /// An empty stream; read() returns 0.
  CbcDecryptStream() = default;
  CbcDecryptStream(const Aes& aes, ByteView iv, ByteView ciphertext);

  /// Decrypts up to out.size() plaintext bytes into `out`; returns the
  /// number of bytes produced (0 once the stream is exhausted). `out`
  /// must not alias the borrowed ciphertext.
  std::size_t read(std::span<std::uint8_t> out);

  /// Restarts from the first plaintext byte (same key / IV / ciphertext).
  void rewind();

  /// True once every plaintext byte has been handed out.
  bool done() const {
    return ct_off_ == ct_.size() && stage_pos_ == stage_len_;
  }

 private:
  const Aes* aes_ = nullptr;
  ByteView ct_;
  std::uint8_t iv_[Aes::kBlockSize] = {};
  std::uint8_t chain_[Aes::kBlockSize] = {};
  std::uint8_t stage_[Aes::kBlockSize] = {};
  std::size_t ct_off_ = 0;
  std::size_t stage_pos_ = 0;
  std::size_t stage_len_ = 0;
};

/// PKCS#7 helpers exposed for tests.
Bytes pkcs7_pad(ByteView data, std::size_t block_size);
Bytes pkcs7_unpad(ByteView data, std::size_t block_size);
/// Validates the padding and returns the unpadded length without copying.
std::size_t pkcs7_unpad_len(ByteView data, std::size_t block_size);

}  // namespace omadrm::crypto
