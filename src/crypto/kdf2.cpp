#include "crypto/kdf2.h"

#include "common/error.h"
#include "crypto/sha1.h"

namespace omadrm::crypto {

Bytes kdf2_sha1(ByteView z, std::size_t out_len, ByteView other_info) {
  if (out_len == 0) return {};
  // Counter overflow is unreachable for sane lengths; guard anyway.
  if (out_len > Sha1::kDigestSize * 0xffffffffull) {
    throw Error(ErrorKind::kRange, "kdf2: output too long");
  }
  Bytes out;
  out.reserve(out_len);
  std::uint32_t counter = 1;
  while (out.size() < out_len) {
    Sha1 h;
    h.update(z);
    std::uint8_t ctr[4];
    store_be32(counter++, ctr);
    h.update(ByteView(ctr, 4));
    h.update(other_info);
    Bytes t = h.finish();
    std::size_t take = std::min(t.size(), out_len - out.size());
    out.insert(out.end(), t.begin(),
               t.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

}  // namespace omadrm::crypto
