// KDF2 (ISO/IEC 18033-2, as profiled by the OMA DRM 2 specification) over
// SHA-1. Derives the key-encryption key KEK from the RSA-KEM shared secret
// Z during Rights Object installation (paper Figure 3).
//
//   KDF2(Z, L) = T(1) || T(2) || ...  truncated to L bytes,
//   T(i) = SHA-1(Z || I2OSP(i, 4)),  counter starting at 1.
#pragma once

#include "common/bytes.h"

namespace omadrm::crypto {

/// Derives `out_len` bytes from secret `z` with optional `other_info`
/// appended after the counter (OMA DRM 2 uses empty other_info).
Bytes kdf2_sha1(ByteView z, std::size_t out_len, ByteView other_info = {});

}  // namespace omadrm::crypto
