#include "crypto/aes_accel.h"

// Compiled with -maes on x86 targets whose compiler accepts the flag (see
// CMakeLists). Everywhere else the guard below turns the whole unit into
// stubs, and cpu_supported() reporting false keeps them unreachable.
#if defined(__AES__) && defined(__SSE2__) && \
    (defined(__x86_64__) || defined(__i386__))
#define OMADRM_AESNI 1
#include <emmintrin.h>
#include <wmmintrin.h>
#endif

namespace omadrm::crypto::accel {

#ifdef OMADRM_AESNI

bool cpu_supported() {
  static const bool ok = __builtin_cpu_supports("aes") != 0;
  return ok;
}

void build_decrypt_schedule(const std::uint8_t* enc_keys, int rounds,
                            std::uint8_t* dec_keys) {
  _mm_storeu_si128(
      reinterpret_cast<__m128i*>(dec_keys),
      _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(enc_keys + 16 * rounds)));
  for (int r = 1; r < rounds; ++r) {
    const __m128i k = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(enc_keys + 16 * (rounds - r)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dec_keys + 16 * r),
                     _mm_aesimc_si128(k));
  }
  _mm_storeu_si128(
      reinterpret_cast<__m128i*>(dec_keys + 16 * rounds),
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(enc_keys)));
}

namespace {

// Max 15 round keys (AES-256: 14 rounds + 1).
struct Schedule {
  __m128i k[15];
  int rounds;

  Schedule(const std::uint8_t* keys, int nr) : rounds(nr) {
    for (int r = 0; r <= nr; ++r) {
      k[r] = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(keys + 16 * r));
    }
  }
};

inline __m128i encrypt_one(const Schedule& s, __m128i b) {
  b = _mm_xor_si128(b, s.k[0]);
  for (int r = 1; r < s.rounds; ++r) b = _mm_aesenc_si128(b, s.k[r]);
  return _mm_aesenclast_si128(b, s.k[s.rounds]);
}

inline __m128i decrypt_one(const Schedule& s, __m128i b) {
  b = _mm_xor_si128(b, s.k[0]);
  for (int r = 1; r < s.rounds; ++r) b = _mm_aesdec_si128(b, s.k[r]);
  return _mm_aesdeclast_si128(b, s.k[s.rounds]);
}

}  // namespace

void cbc_encrypt_blocks(const std::uint8_t* enc_keys, int rounds,
                        std::uint8_t chain[16], const std::uint8_t* in,
                        std::uint8_t* out, std::size_t n_blocks) {
  const Schedule s(enc_keys, rounds);
  __m128i c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(chain));
  for (std::size_t i = 0; i < n_blocks; ++i) {
    const __m128i p =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16 * i));
    c = encrypt_one(s, _mm_xor_si128(p, c));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * i), c);
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(chain), c);
}

void cbc_decrypt_blocks(const std::uint8_t* dec_keys, int rounds,
                        std::uint8_t chain[16], const std::uint8_t* in,
                        std::uint8_t* out, std::size_t n_blocks) {
  const Schedule s(dec_keys, rounds);
  __m128i prev = _mm_loadu_si128(reinterpret_cast<const __m128i*>(chain));
  std::size_t i = 0;
  // CBC decryption has no serial dependency between block ciphers — only
  // the final XOR chains — so run four AES pipelines in parallel.
  for (; i + 4 <= n_blocks; i += 4) {
    const __m128i c0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16 * i));
    const __m128i c1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16 * i + 16));
    const __m128i c2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16 * i + 32));
    const __m128i c3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16 * i + 48));
    __m128i b0 = _mm_xor_si128(c0, s.k[0]);
    __m128i b1 = _mm_xor_si128(c1, s.k[0]);
    __m128i b2 = _mm_xor_si128(c2, s.k[0]);
    __m128i b3 = _mm_xor_si128(c3, s.k[0]);
    for (int r = 1; r < s.rounds; ++r) {
      b0 = _mm_aesdec_si128(b0, s.k[r]);
      b1 = _mm_aesdec_si128(b1, s.k[r]);
      b2 = _mm_aesdec_si128(b2, s.k[r]);
      b3 = _mm_aesdec_si128(b3, s.k[r]);
    }
    b0 = _mm_aesdeclast_si128(b0, s.k[s.rounds]);
    b1 = _mm_aesdeclast_si128(b1, s.k[s.rounds]);
    b2 = _mm_aesdeclast_si128(b2, s.k[s.rounds]);
    b3 = _mm_aesdeclast_si128(b3, s.k[s.rounds]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * i),
                     _mm_xor_si128(b0, prev));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * i + 16),
                     _mm_xor_si128(b1, c0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * i + 32),
                     _mm_xor_si128(b2, c1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * i + 48),
                     _mm_xor_si128(b3, c2));
    prev = c3;
  }
  for (; i < n_blocks; ++i) {
    const __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16 * i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * i),
                     _mm_xor_si128(decrypt_one(s, c), prev));
    prev = c;
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(chain), prev);
}

#else  // !OMADRM_AESNI — portable stubs, never reached at runtime.

bool cpu_supported() { return false; }

void build_decrypt_schedule(const std::uint8_t*, int, std::uint8_t*) {}
void cbc_encrypt_blocks(const std::uint8_t*, int, std::uint8_t*,
                        const std::uint8_t*, std::uint8_t*, std::size_t) {}
void cbc_decrypt_blocks(const std::uint8_t*, int, std::uint8_t*,
                        const std::uint8_t*, std::uint8_t*, std::size_t) {}

#endif

}  // namespace omadrm::crypto::accel
