// AES block cipher (FIPS 197), key sizes 128/192/256.
//
// OMA DRM 2 mandates AES-128 in two roles: AES-CBC for content
// encryption (see modes.h) and AES-WRAP for key wrapping (see aes_wrap.h).
// The implementation is the classic 32-bit T-table form; the tables are
// derived programmatically from the GF(2^8) field arithmetic at startup,
// so there are no hand-typed constants to mistype (FIPS-197 known-answer
// tests pin the behaviour).
//
// Note: T-table AES is not constant-time with respect to cache timing.
// That is acceptable here — this library is a performance-model
// reproduction, not a hardened production build (see DESIGN.md §7).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace omadrm::crypto {

class Aes {
 public:
  static constexpr std::size_t kBlockSize = 16;

  /// Key must be 16, 24 or 32 bytes; throws omadrm::Error(kCrypto)
  /// otherwise.
  explicit Aes(ByteView key);

  int rounds() const { return rounds_; }

  /// Single-block ECB operations; `in` and `out` may alias.
  void encrypt_block(const std::uint8_t in[kBlockSize],
                     std::uint8_t out[kBlockSize]) const;
  void decrypt_block(const std::uint8_t in[kBlockSize],
                     std::uint8_t out[kBlockSize]) const;

  /// True when AES-NI round keys were derived at construction (runtime
  /// CPU detection); the CBC bulk cores in modes.h dispatch on this.
  bool has_accel() const { return has_accel_; }
  /// (rounds + 1) 16-byte round keys in FIPS-197 byte order, valid only
  /// when has_accel().
  const std::uint8_t* accel_enc_keys() const { return accel_ek_.data(); }
  const std::uint8_t* accel_dec_keys() const { return accel_dk_.data(); }

 private:
  int rounds_;
  // 4 * (rounds + 1) round-key words, max 60 for AES-256.
  std::array<std::uint32_t, 60> ek_{};
  std::array<std::uint32_t, 60> dk_{};
  // AES-NI schedules (16 bytes per round key, max 15 keys), derived once
  // here so cached Aes contexts amortize key setup for both paths.
  bool has_accel_ = false;
  alignas(16) std::array<std::uint8_t, 16 * 15> accel_ek_{};
  alignas(16) std::array<std::uint8_t, 16 * 15> accel_dk_{};
};

}  // namespace omadrm::crypto
