// Hardware-accelerated AES block runs (x86 AES-NI), runtime-detected.
//
// The paper's whole premise is that bulk content decryption dominates the
// steady-state cost of OMA DRM 2 on a terminal, and that a hardware AES
// engine changes the picture by an order of magnitude (Table 1's
// hardware column). On hosts with AES-NI we model exactly that: the Aes
// constructor derives the NI round-key schedules once (the analogue of
// loading a key register), and the CBC bulk cores in modes.cpp dispatch
// here for whole-block runs. Hosts without the extension — or non-x86
// builds, where this translation unit compiles to stubs — fall back to
// the portable T-table path with identical results.
//
// This file's implementation is compiled with -maes (see CMakeLists);
// nothing here may be called unless cpu_supported() returned true.
#pragma once

#include <cstddef>
#include <cstdint>

namespace omadrm::crypto::accel {

/// True when the host CPU exposes AES-NI and the instructions were
/// compiled in. Cached after the first query.
bool cpu_supported();

/// Derives the AES-NI decryption round keys (the equivalent inverse
/// cipher: AESIMC of the middle encryption keys, outer keys swapped) from
/// the standard FIPS-197 encryption round keys. Both buffers hold
/// (rounds + 1) 16-byte round keys in standard byte order.
void build_decrypt_schedule(const std::uint8_t* enc_keys, int rounds,
                            std::uint8_t* dec_keys);

/// CBC over `n_blocks` whole 16-byte blocks. `chain` carries the running
/// chain value (IV before the first call, last ciphertext block after).
/// `in` and `out` must not alias. Decryption pipelines four independent
/// blocks per iteration; encryption is inherently serial in CBC.
void cbc_encrypt_blocks(const std::uint8_t* enc_keys, int rounds,
                        std::uint8_t chain[16], const std::uint8_t* in,
                        std::uint8_t* out, std::size_t n_blocks);
void cbc_decrypt_blocks(const std::uint8_t* dec_keys, int rounds,
                        std::uint8_t chain[16], const std::uint8_t* in,
                        std::uint8_t* out, std::size_t n_blocks);

}  // namespace omadrm::crypto::accel
