// AES Key Wrap (RFC 3394 / NIST SP 800-38F KW) — OMA DRM 2's key-wrapping
// primitive ("AES-WRAP" in the standard's algorithm list). Used to wrap
// K_MAC‖K_REK under KEK (Figure 3 of the paper) and, after installation,
// under the device key K_DEV producing C2dev.
#pragma once

#include <optional>

#include "common/bytes.h"

namespace omadrm::crypto {

/// Wraps `key_data` (length a multiple of 8, at least 16 bytes) under
/// `kek`. Output is 8 bytes longer than the input.
Bytes aes_wrap(ByteView kek, ByteView key_data);

/// Unwraps; returns std::nullopt when the integrity register does not
/// match (wrong KEK or corrupted wrap) — an expected runtime outcome,
/// not an exception.
std::optional<Bytes> aes_unwrap(ByteView kek, ByteView wrapped);

}  // namespace omadrm::crypto
