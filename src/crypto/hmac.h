// HMAC-SHA1 (RFC 2104) — the MAC algorithm OMA DRM 2 uses to
// integrity-protect Rights Objects with K_MAC.
#pragma once

#include "common/bytes.h"
#include "crypto/sha1.h"

namespace omadrm::crypto {

class HmacSha1 {
 public:
  static constexpr std::size_t kDigestSize = Sha1::kDigestSize;

  /// Keys longer than the SHA-1 block size are hashed first, per RFC 2104.
  explicit HmacSha1(ByteView key);

  void update(ByteView data);
  Bytes finish();
  /// Allocation-free finalization into a caller-owned 20-byte buffer.
  void finish_into(std::uint8_t out[kDigestSize]);
  void reset();

  /// One-shot convenience.
  static Bytes mac(ByteView key, ByteView data);

  /// Constant-time verification of an expected tag.
  static bool verify(ByteView key, ByteView data, ByteView expected_tag);

 private:
  std::array<std::uint8_t, Sha1::kBlockSize> ipad_key_;
  std::array<std::uint8_t, Sha1::kBlockSize> opad_key_;
  Sha1 inner_;
};

}  // namespace omadrm::crypto
