#include "crypto/aes_wrap.h"

#include <cstring>

#include "common/error.h"
#include "crypto/aes.h"

namespace omadrm::crypto {

namespace {
// RFC 3394 initial value.
constexpr std::uint8_t kIv[8] = {0xa6, 0xa6, 0xa6, 0xa6,
                                 0xa6, 0xa6, 0xa6, 0xa6};
}  // namespace

Bytes aes_wrap(ByteView kek, ByteView key_data) {
  if (key_data.size() < 16 || key_data.size() % 8 != 0) {
    throw Error(ErrorKind::kCrypto,
                "aes_wrap: key data must be >=16 bytes, multiple of 8");
  }
  Aes aes(kek);
  const std::size_t n = key_data.size() / 8;

  std::uint8_t a[8];
  std::memcpy(a, kIv, 8);
  Bytes r(key_data.begin(), key_data.end());

  std::uint8_t block[16];
  for (std::size_t j = 0; j < 6; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      std::memcpy(block, a, 8);
      std::memcpy(block + 8, r.data() + 8 * i, 8);
      aes.encrypt_block(block, block);
      std::uint64_t t = static_cast<std::uint64_t>(n) * j + i + 1;
      std::memcpy(a, block, 8);
      for (int b = 0; b < 8; ++b) {
        a[7 - b] ^= static_cast<std::uint8_t>(t >> (8 * b));
      }
      std::memcpy(r.data() + 8 * i, block + 8, 8);
    }
  }

  Bytes out;
  out.reserve(8 + r.size());
  out.insert(out.end(), a, a + 8);
  out.insert(out.end(), r.begin(), r.end());
  return out;
}

std::optional<Bytes> aes_unwrap(ByteView kek, ByteView wrapped) {
  if (wrapped.size() < 24 || wrapped.size() % 8 != 0) {
    throw Error(ErrorKind::kCrypto,
                "aes_unwrap: wrapped data must be >=24 bytes, multiple of 8");
  }
  Aes aes(kek);
  const std::size_t n = wrapped.size() / 8 - 1;

  std::uint8_t a[8];
  std::memcpy(a, wrapped.data(), 8);
  Bytes r(wrapped.begin() + 8, wrapped.end());

  std::uint8_t block[16];
  for (std::size_t j = 6; j-- > 0;) {
    for (std::size_t i = n; i-- > 0;) {
      std::uint64_t t = static_cast<std::uint64_t>(n) * j + i + 1;
      std::memcpy(block, a, 8);
      for (int b = 0; b < 8; ++b) {
        block[7 - b] ^= static_cast<std::uint8_t>(t >> (8 * b));
      }
      std::memcpy(block + 8, r.data() + 8 * i, 8);
      aes.decrypt_block(block, block);
      std::memcpy(a, block, 8);
      std::memcpy(r.data() + 8 * i, block + 8, 8);
    }
  }

  if (!ct_equal(ByteView(a, 8), ByteView(kIv, 8))) {
    return std::nullopt;
  }
  return r;
}

}  // namespace omadrm::crypto
