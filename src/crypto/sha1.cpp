#include "crypto/sha1.h"

#include <cstring>

#include "common/error.h"

namespace omadrm::crypto {

namespace {

inline std::uint32_t rotl(std::uint32_t v, int s) {
  return (v << s) | (v >> (32 - s));
}

}  // namespace

Sha1::Sha1() { reset(); }

void Sha1::reset() {
  state_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u, 0xc3d2e1f0u};
  buffer_len_ = 0;
  total_len_ = 0;
  finished_ = false;
}

// Fully unrolled compression over a 16-word rolling message schedule.
// The canonicalization/digest hot path of the wire layer (every ROAP
// signature covers a freshly serialized document) hashes short messages
// constantly; unrolling removes the per-round branch on the round index
// and the 80-word schedule array, and the register rotation is expressed
// by argument rotation so the compiler keeps a..e in registers.
void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[16];
  for (int i = 0; i < 16; ++i) {
    w[i] = load_be32(block + 4 * i);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];

  auto sched = [&w](int i) {
    const std::uint32_t v = rotl(w[(i - 3) & 15] ^ w[(i - 8) & 15] ^
                                     w[(i - 14) & 15] ^ w[i & 15],
                                 1);
    w[i & 15] = v;
    return v;
  };

#define SHA1_R0(a, b, c, d, e, i)                                          \
  e += rotl(a, 5) + ((((c) ^ (d)) & (b)) ^ (d)) + 0x5a827999u + w[i];        \
  b = rotl(b, 30);
#define SHA1_R0X(a, b, c, d, e, i)                                         \
  e += rotl(a, 5) + ((((c) ^ (d)) & (b)) ^ (d)) + 0x5a827999u + sched(i);    \
  b = rotl(b, 30);
#define SHA1_R1(a, b, c, d, e, i)                                          \
  e += rotl(a, 5) + ((b) ^ (c) ^ (d)) + 0x6ed9eba1u + sched(i);            \
  b = rotl(b, 30);
#define SHA1_R2(a, b, c, d, e, i)                                          \
  e += rotl(a, 5) + ((((b) | (c)) & (d)) | ((b) & (c))) + 0x8f1bbcdcu +    \
       sched(i);                                                           \
  b = rotl(b, 30);
#define SHA1_R3(a, b, c, d, e, i)                                          \
  e += rotl(a, 5) + ((b) ^ (c) ^ (d)) + 0xca62c1d6u + sched(i);            \
  b = rotl(b, 30);

  SHA1_R0(a, b, c, d, e, 0)   SHA1_R0(e, a, b, c, d, 1)
  SHA1_R0(d, e, a, b, c, 2)   SHA1_R0(c, d, e, a, b, 3)
  SHA1_R0(b, c, d, e, a, 4)   SHA1_R0(a, b, c, d, e, 5)
  SHA1_R0(e, a, b, c, d, 6)   SHA1_R0(d, e, a, b, c, 7)
  SHA1_R0(c, d, e, a, b, 8)   SHA1_R0(b, c, d, e, a, 9)
  SHA1_R0(a, b, c, d, e, 10)  SHA1_R0(e, a, b, c, d, 11)
  SHA1_R0(d, e, a, b, c, 12)  SHA1_R0(c, d, e, a, b, 13)
  SHA1_R0(b, c, d, e, a, 14)  SHA1_R0(a, b, c, d, e, 15)
  SHA1_R0X(e, a, b, c, d, 16) SHA1_R0X(d, e, a, b, c, 17)
  SHA1_R0X(c, d, e, a, b, 18) SHA1_R0X(b, c, d, e, a, 19)

  SHA1_R1(a, b, c, d, e, 20)  SHA1_R1(e, a, b, c, d, 21)
  SHA1_R1(d, e, a, b, c, 22)  SHA1_R1(c, d, e, a, b, 23)
  SHA1_R1(b, c, d, e, a, 24)  SHA1_R1(a, b, c, d, e, 25)
  SHA1_R1(e, a, b, c, d, 26)  SHA1_R1(d, e, a, b, c, 27)
  SHA1_R1(c, d, e, a, b, 28)  SHA1_R1(b, c, d, e, a, 29)
  SHA1_R1(a, b, c, d, e, 30)  SHA1_R1(e, a, b, c, d, 31)
  SHA1_R1(d, e, a, b, c, 32)  SHA1_R1(c, d, e, a, b, 33)
  SHA1_R1(b, c, d, e, a, 34)  SHA1_R1(a, b, c, d, e, 35)
  SHA1_R1(e, a, b, c, d, 36)  SHA1_R1(d, e, a, b, c, 37)
  SHA1_R1(c, d, e, a, b, 38)  SHA1_R1(b, c, d, e, a, 39)

  SHA1_R2(a, b, c, d, e, 40)  SHA1_R2(e, a, b, c, d, 41)
  SHA1_R2(d, e, a, b, c, 42)  SHA1_R2(c, d, e, a, b, 43)
  SHA1_R2(b, c, d, e, a, 44)  SHA1_R2(a, b, c, d, e, 45)
  SHA1_R2(e, a, b, c, d, 46)  SHA1_R2(d, e, a, b, c, 47)
  SHA1_R2(c, d, e, a, b, 48)  SHA1_R2(b, c, d, e, a, 49)
  SHA1_R2(a, b, c, d, e, 50)  SHA1_R2(e, a, b, c, d, 51)
  SHA1_R2(d, e, a, b, c, 52)  SHA1_R2(c, d, e, a, b, 53)
  SHA1_R2(b, c, d, e, a, 54)  SHA1_R2(a, b, c, d, e, 55)
  SHA1_R2(e, a, b, c, d, 56)  SHA1_R2(d, e, a, b, c, 57)
  SHA1_R2(c, d, e, a, b, 58)  SHA1_R2(b, c, d, e, a, 59)

  SHA1_R3(a, b, c, d, e, 60)  SHA1_R3(e, a, b, c, d, 61)
  SHA1_R3(d, e, a, b, c, 62)  SHA1_R3(c, d, e, a, b, 63)
  SHA1_R3(b, c, d, e, a, 64)  SHA1_R3(a, b, c, d, e, 65)
  SHA1_R3(e, a, b, c, d, 66)  SHA1_R3(d, e, a, b, c, 67)
  SHA1_R3(c, d, e, a, b, 68)  SHA1_R3(b, c, d, e, a, 69)
  SHA1_R3(a, b, c, d, e, 70)  SHA1_R3(e, a, b, c, d, 71)
  SHA1_R3(d, e, a, b, c, 72)  SHA1_R3(c, d, e, a, b, 73)
  SHA1_R3(b, c, d, e, a, 74)  SHA1_R3(a, b, c, d, e, 75)
  SHA1_R3(e, a, b, c, d, 76)  SHA1_R3(d, e, a, b, c, 77)
  SHA1_R3(c, d, e, a, b, 78)  SHA1_R3(b, c, d, e, a, 79)

#undef SHA1_R0
#undef SHA1_R0X
#undef SHA1_R1
#undef SHA1_R2
#undef SHA1_R3

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(ByteView data) {
  if (finished_) {
    throw Error(ErrorKind::kState, "Sha1::update after finish");
  }
  // An empty view may carry a null data() (e.g. a default-constructed
  // span); bail before handing it to memcpy, which requires non-null.
  if (data.empty()) return;
  total_len_ += data.size();
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    std::size_t take = std::min(kBlockSize - buffer_len_, data.size());
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == kBlockSize) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (offset + kBlockSize <= data.size()) {
    process_block(data.data() + offset);
    offset += kBlockSize;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

void Sha1::finish_into(std::uint8_t out[kDigestSize]) {
  if (finished_) {
    throw Error(ErrorKind::kState, "Sha1::finish called twice");
  }
  finished_ = true;

  std::uint64_t bit_len = total_len_ * 8;
  std::uint8_t pad[kBlockSize * 2] = {0x80};
  // Pad to 56 mod 64, then append the 64-bit big-endian length.
  std::size_t pad_len =
      (buffer_len_ < 56) ? (56 - buffer_len_) : (120 - buffer_len_);
  finished_ = false;  // allow the padding updates
  std::uint64_t saved_total = total_len_;
  update(ByteView(pad, pad_len));
  std::uint8_t len_bytes[8];
  store_be64(bit_len, len_bytes);
  update(ByteView(len_bytes, 8));
  total_len_ = saved_total;
  finished_ = true;

  for (int i = 0; i < 5; ++i) {
    store_be32(state_[static_cast<std::size_t>(i)], out + 4 * i);
  }
}

Bytes Sha1::finish() {
  Bytes digest(kDigestSize);
  finish_into(digest.data());
  return digest;
}

Bytes Sha1::hash(ByteView data) {
  Sha1 h;
  h.update(data);
  return h.finish();
}

}  // namespace omadrm::crypto
