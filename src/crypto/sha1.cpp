#include "crypto/sha1.h"

#include <cstring>

#include "common/error.h"

namespace omadrm::crypto {

namespace {

inline std::uint32_t rotl(std::uint32_t v, int s) {
  return (v << s) | (v >> (32 - s));
}

}  // namespace

Sha1::Sha1() { reset(); }

void Sha1::reset() {
  state_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u, 0xc3d2e1f0u};
  buffer_len_ = 0;
  total_len_ = 0;
  finished_ = false;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = load_be32(block + 4 * i);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5a827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdcu;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6u;
    }
    std::uint32_t temp = rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(ByteView data) {
  if (finished_) {
    throw Error(ErrorKind::kState, "Sha1::update after finish");
  }
  // An empty view may carry a null data() (e.g. a default-constructed
  // span); bail before handing it to memcpy, which requires non-null.
  if (data.empty()) return;
  total_len_ += data.size();
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    std::size_t take = std::min(kBlockSize - buffer_len_, data.size());
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == kBlockSize) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (offset + kBlockSize <= data.size()) {
    process_block(data.data() + offset);
    offset += kBlockSize;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

Bytes Sha1::finish() {
  if (finished_) {
    throw Error(ErrorKind::kState, "Sha1::finish called twice");
  }
  finished_ = true;

  std::uint64_t bit_len = total_len_ * 8;
  std::uint8_t pad[kBlockSize * 2] = {0x80};
  // Pad to 56 mod 64, then append the 64-bit big-endian length.
  std::size_t pad_len =
      (buffer_len_ < 56) ? (56 - buffer_len_) : (120 - buffer_len_);
  finished_ = false;  // allow the padding updates
  std::uint64_t saved_total = total_len_;
  update(ByteView(pad, pad_len));
  std::uint8_t len_bytes[8];
  store_be64(bit_len, len_bytes);
  update(ByteView(len_bytes, 8));
  total_len_ = saved_total;
  finished_ = true;

  Bytes digest(kDigestSize);
  for (int i = 0; i < 5; ++i) {
    store_be32(state_[static_cast<std::size_t>(i)],
               digest.data() + 4 * i);
  }
  return digest;
}

Bytes Sha1::hash(ByteView data) {
  Sha1 h;
  h.update(data);
  return h.finish();
}

}  // namespace omadrm::crypto
