// SHA-1 (FIPS 180-1) — the hash function mandated by OMA DRM 2 for DCF
// integrity, signatures (via EMSA-PSS), HMAC, and KDF2.
//
// Streaming interface so multi-megabyte DCFs can be hashed without
// buffering; a one-shot helper covers the common case.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace omadrm::crypto {

class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  static constexpr std::size_t kBlockSize = 64;

  Sha1();

  /// Absorbs more input.
  void update(ByteView data);

  /// Finalizes and returns the 20-byte digest. The object must be reset()
  /// before reuse.
  Bytes finish();

  /// Finalizes into a caller-owned 20-byte buffer — the allocation-free
  /// variant the streaming content path (DcfReader, AES context
  /// fingerprints) uses.
  void finish_into(std::uint8_t out[kDigestSize]);

  /// Returns the object to its initial state.
  void reset();

  /// One-shot convenience.
  static Bytes hash(ByteView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> state_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finished_ = false;
};

}  // namespace omadrm::crypto
